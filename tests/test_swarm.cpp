// Seeded schedule-exploration (swarm) suite: thousands of random fault
// plans per cluster configuration, each run to quiescence under the full
// InvariantChecker + liveness + trace-lint oracle. Any failure is shrunk
// to a minimal plan and printed as a one-line repro (and written to
// $FSR_SWARM_ARTIFACT_DIR when set, for the nightly CI job).
//
// Budget knobs (nightly CI enlarges them):
//   FSR_SWARM_SEEDS        seeds per configuration (default keeps the whole
//                          suite well under the per-PR 60s budget)
//   FSR_SWARM_ARTIFACT_DIR directory for failing-seed repro files
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gateway/sim_gateway.h"
#include "harness/chaos.h"
#include "harness/swarm.h"
#include "support/seeded_test.h"

namespace fsr {
namespace {

std::uint64_t seeds_per_config() {
  if (const char* env = std::getenv("FSR_SWARM_SEEDS")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 260;
}

void write_artifact(const SwarmRunner& runner, const SwarmFailure& failure) {
  const char* dir = std::getenv("FSR_SWARM_ARTIFACT_DIR");
  if (dir == nullptr) return;
  std::ofstream out(std::string(dir) + "/swarm-failures-" + runner.config().name + ".txt",
                    std::ios::app);
  out << failure.repro << "\n";
}

/// The per-PR swarm matrix: >= 4 distinct (n, t, senders) shapes. All
/// generated faults respect the paper's model (crash budget <= t, reliable
/// FIFO channels, perfect FD), so zero violations is the only acceptable
/// outcome.
std::vector<SwarmConfig> swarm_matrix() {
  std::vector<SwarmConfig> configs;

  SwarmConfig small;
  small.name = "n3t1s1";
  small.cluster.n = 3;
  small.cluster.group.engine.t = 1;
  small.cluster.group.engine.segment_size = 1024;
  small.senders = 1;
  small.messages = 20;
  small.faults.max_crashes = 1;
  configs.push_back(small);

  SwarmConfig paired;
  paired.name = "n4t1s2";
  paired.cluster.n = 4;
  paired.cluster.group.engine.t = 1;
  paired.cluster.group.engine.segment_size = 512;
  paired.cluster.group.engine.window = 8;
  paired.senders = 2;
  paired.messages = 24;
  paired.faults.max_crashes = 1;
  configs.push_back(paired);

  SwarmConfig mid;
  mid.name = "n6t2s4";
  mid.cluster.n = 6;
  mid.cluster.group.engine.t = 2;
  mid.cluster.group.engine.segment_size = 2048;
  mid.senders = 4;
  mid.messages = 24;
  mid.max_payload = 6000;
  mid.faults.max_crashes = 2;
  configs.push_back(mid);

  SwarmConfig wide;
  wide.name = "n8t3s8";
  wide.cluster.n = 8;
  wide.cluster.group.engine.t = 3;
  wide.cluster.group.engine.segment_size = 4096;
  wide.cluster.group.engine.gc_interval = 16;
  wide.senders = 8;
  wide.messages = 28;
  wide.max_payload = 3000;
  wide.faults.max_crashes = 3;
  configs.push_back(wide);

  // Heartbeat detection + silent crashes (hangs): link disruptions are
  // excluded so the imperfect-by-timeout detector never falsely suspects a
  // live node, keeping the run inside the paper's perfect-FD model.
  SwarmConfig hang;
  hang.name = "n5t2hb";
  hang.cluster.n = 5;
  hang.cluster.group.engine.t = 2;
  hang.cluster.group.engine.segment_size = 2048;
  hang.cluster.group.heartbeat_interval = 5 * kMillisecond;
  hang.cluster.group.heartbeat_timeout = 25 * kMillisecond;
  hang.senders = 3;
  hang.messages = 18;
  hang.faults.max_crashes = 2;
  hang.faults.allow_silent_crashes = true;
  hang.faults.allow_partitions = false;
  hang.faults.allow_link_delays = false;
  hang.run_horizon = kSecond;
  configs.push_back(hang);

  // Heterogeneous hardware: plans may pin a slow NIC / scaled CPU on a node
  // or a lossy/jittery profile on a link (kNodeProfile / kLinkProfile).
  // Loss is modeled as retransmit latency, so channels stay reliable and
  // the full oracle still applies. Appended last: enabling profile
  // generation changes the generator's draw sequence, and the earlier
  // configs must keep their historical seed => plan mapping.
  SwarmConfig hetero;
  hetero.name = "n4t1np";
  hetero.cluster.n = 4;
  hetero.cluster.group.engine.t = 1;
  hetero.cluster.group.engine.segment_size = 1024;
  hetero.senders = 2;
  hetero.messages = 20;
  hetero.faults.max_crashes = 1;
  hetero.faults.allow_net_profiles = true;
  configs.push_back(hetero);

  return configs;
}

class SwarmTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SwarmTest, SeededFaultPlansUpholdEveryInvariant) {
  SwarmRunner runner(swarm_matrix()[GetParam()]);
  const std::uint64_t seeds = seeds_per_config();
  // Seed ranges are disjoint per configuration so the whole matrix explores
  // distinct plans even at enlarged nightly budgets.
  const std::uint64_t first = 1 + GetParam() * 1'000'000'000ULL;

  auto failures = runner.run_range(first, seeds, [&](const SwarmFailure& f) {
    ADD_FAILURE() << f.repro;
    write_artifact(runner, f);
  });
  EXPECT_EQ(failures.size(), 0u)
      << failures.size() << " of " << seeds << " fault plans violated invariants "
      << "(repro lines above; rerun one with SwarmRunner::run_seed)";
}

INSTANTIATE_TEST_SUITE_P(Matrix, SwarmTest,
                         ::testing::Range<std::size_t>(0, swarm_matrix().size()),
                         [](const auto& info) {
                           return swarm_matrix()[info.param].name;
                         });

// Gateway shape: a session client drives a chained-CAS workload while the
// sequencer (node 0, which also owns the client's connection) crashes
// mid-request; the client retries through a different replica. Seeded sweep
// over crash points, chain lengths, retry timeouts and network schedules.
// Exactly-once is the oracle: a double apply anywhere breaks the CAS chain
// (failed_cas > 0) or diverges the replicas; a lost command stalls the
// client. Across the sweep the duplicate path must actually fire.
TEST(Swarm, GatewayRetryAcrossSequencerCrashIsExactlyOnce) {
  const std::uint64_t seeds = std::max<std::uint64_t>(seeds_per_config() / 8, 24);
  GatewayCounters totals;
  std::uint64_t dup_replies = 0;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    // splitmix64 over the seed for the run's shape parameters.
    auto next = [x = seed * 0x9e3779b97f4a7c15ULL]() mutable {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };

    SimGatewayConfig cfg;
    cfg.cluster.n = 4;
    cfg.cluster.group.engine.t = 1;
    cfg.cluster.net.seed = next();
    FSR_SEED_TRACE(seed, cfg.cluster);
    SimGatewayCluster gc(cfg);

    SimClient::Options opt;
    opt.client_id = 1;
    opt.replica = 0;  // owned by the sequencer we crash
    opt.retry_timeout = (150 + Time(next() % 250)) * kMillisecond;
    SimClient client(gc, opt);

    const int chain = 6 + int(next() % 10);
    client.submit(KvStore::encode_put("x", "0"));
    for (int i = 0; i < chain; ++i) {
      client.submit(
          KvStore::encode_cas("x", std::to_string(i), std::to_string(i + 1)));
    }

    // Crash after a seeded amount of progress, always mid-chain.
    // Single-step so the crash lands exactly at the seeded progress point
    // (mid-request: the next command is already outstanding).
    const std::size_t crash_after = 1 + next() % std::uint64_t(chain - 1);
    while (client.completed().size() < crash_after && !gc.sim().empty()) {
      gc.sim().run_steps(1);
    }
    // Step a seeded distance into the next, still-outstanding request so the
    // crash lands mid-flight: sometimes before the broadcast propagates
    // (clean retry through the new view), sometimes after survivors already
    // delivered it (the retry must be answered from the replicated reply
    // cache, not re-executed).
    for (std::uint64_t extra = next() % 120;
         extra > 0 && client.completed().size() <= crash_after && !gc.sim().empty();
         --extra) {
      gc.sim().run_steps(1);
    }
    ASSERT_LT(client.completed().size(), std::size_t(chain) + 1);
    gc.crash(0);
    gc.sim().run();

    ASSERT_TRUE(client.idle())
        << "client stalled at " << client.completed().size() << "/" << chain + 1;
    ASSERT_EQ(client.completed().size(), std::size_t(chain) + 1);
    for (const auto& d : client.completed()) {
      ASSERT_EQ(d.status, ClientStatus::kOk) << "seq " << d.seq;
      ASSERT_EQ(std::string(d.reply.begin(), d.reply.end()), "OK") << "seq " << d.seq;
      dup_replies += d.duplicate;
    }
    EXPECT_NE(client.replica(), 0);
    for (NodeId id = 1; id < 4; ++id) {
      ASSERT_EQ(gc.store(id).get("x"), std::to_string(chain)) << "node " << int(id);
      ASSERT_EQ(gc.store(id).failed_cas(), 0u) << "node " << int(id);
    }
    ASSERT_EQ(gc.check_replicas_converged(), "");
    ASSERT_EQ(gc.cluster().check_all(), "");
    totals += gc.gateway_counters();
  }

  // The sweep must actually exercise the dedupe machinery: retries answered
  // from the replicated reply cache and/or double-broadcast deliveries
  // suppressed at execution.
  EXPECT_GT(totals.duplicate_hits + totals.duplicate_applies_suppressed, 0u)
      << "no seed exercised the duplicate path (dup replies seen: " << dup_replies
      << ")";
}

TEST(Swarm, RunsAreDeterministicPerSeed) {
  SwarmRunner runner(swarm_matrix()[1]);
  SwarmResult a = runner.run_seed(42);
  SwarmResult b = runner.run_seed(42);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(describe(a.plan), describe(b.plan));
}

TEST(Swarm, DeliberatelySeededViolationIsCaughtAndShrunk) {
  // Sabotage: drop three frames off node 0's ring link mid-traffic — a
  // reliable-channel violation the protocol cannot tolerate. Buried in
  // benign events, the swarm must (a) catch it and (b) shrink the plan to
  // <= 5 events while preserving the failure.
  const std::uint64_t seed = 7;
  SwarmConfig cfg = swarm_matrix()[1];  // n=4, t=1, 2 senders
  SwarmRunner runner(cfg);
  FSR_SEED_TRACE(seed, cfg.cluster);

  FaultPlan plan;
  plan.seed = seed;
  {
    FaultEvent rotate;
    rotate.trigger.at = 3 * kMillisecond;
    rotate.action.kind = FaultAction::Kind::kRotateLeader;
    plan.events.push_back(rotate);

    FaultEvent jitter;
    jitter.trigger.at = 4 * kMillisecond;
    jitter.action.kind = FaultAction::Kind::kLinkJitter;
    jitter.action.amount = 100 * kMicrosecond;
    jitter.action.duration = 5 * kMillisecond;
    plan.events.push_back(jitter);

    FaultEvent spike;
    spike.trigger.at = 6 * kMillisecond;
    spike.action.kind = FaultAction::Kind::kLinkDelay;
    spike.action.a = 2;
    spike.action.b = 3;
    spike.action.amount = 300 * kMicrosecond;
    spike.action.duration = 4 * kMillisecond;
    plan.events.push_back(spike);

    FaultEvent part;
    part.trigger.at = 9 * kMillisecond;
    part.action.kind = FaultAction::Kind::kPartition;
    part.action.side = {3};
    part.action.duration = 2 * kMillisecond;
    plan.events.push_back(part);

    FaultEvent sabotage;
    sabotage.trigger.kind = FaultTrigger::Kind::kOnFrame;
    sabotage.trigger.nth = 10;
    sabotage.trigger.from = 0;
    sabotage.action.kind = FaultAction::Kind::kDropFrames;
    sabotage.action.a = 0;
    sabotage.action.b = 1;
    sabotage.action.count = 3;
    plan.events.push_back(sabotage);

    FaultEvent late_rotate;
    late_rotate.trigger.at = 15 * kMillisecond;
    late_rotate.action.kind = FaultAction::Kind::kRotateLeader;
    plan.events.push_back(late_rotate);
  }

  SwarmResult result = runner.run_plan(seed, plan);
  ASSERT_FALSE(result.ok) << "sabotage went unnoticed: " << describe(plan);
  EXPECT_NE(result.violation, "");

  FaultPlan minimized = runner.shrink(seed, plan);
  EXPECT_LE(minimized.events.size(), 5u);
  EXPECT_FALSE(runner.run_plan(seed, minimized).ok)
      << "shrinking lost the violation: " << describe(minimized);

  std::string repro = runner.format_repro(result, minimized);
  EXPECT_NE(repro.find("seed=7"), std::string::npos) << repro;
  EXPECT_NE(repro.find("drop(0->1"), std::string::npos)
      << "minimized plan lost the culprit event: " << repro;
}

TEST(Swarm, ShrinkReducesToTheCulpritEvent) {
  // With only independent benign events plus one sabotage, greedy removal
  // should strip every benign event: the minimum is the culprit alone.
  const std::uint64_t seed = 11;
  SwarmRunner runner(swarm_matrix()[0]);  // n=3, t=1, 1 sender

  FaultPlan plan;
  plan.seed = seed;
  FaultEvent sabotage;
  sabotage.trigger.kind = FaultTrigger::Kind::kOnFrame;
  sabotage.trigger.nth = 6;
  sabotage.trigger.from = 0;
  // Count payload-carrying frames only: the leader's link also carries
  // cumulative acks, whose loss a later ack would mask.
  sabotage.trigger.msg_kind = wire_msg_kind<SeqMsg>;
  sabotage.action.kind = FaultAction::Kind::kDropFrames;
  sabotage.action.a = 0;
  sabotage.action.b = 1;
  sabotage.action.count = 6;
  plan.events.push_back(sabotage);
  // Benign timing-only noise: jitter and delay spikes never change which
  // node sequences, so they cannot mask or move the sabotage.
  for (int i = 0; i < 3; ++i) {
    FaultEvent spike;
    spike.trigger.at = static_cast<Time>(4 + 5 * i) * kMillisecond;
    spike.action.kind = FaultAction::Kind::kLinkDelay;
    spike.action.a = 1;
    spike.action.b = 2;
    spike.action.amount = static_cast<Time>(50 + 40 * i) * kMicrosecond;
    spike.action.duration = 2 * kMillisecond;
    plan.events.push_back(spike);
  }

  SwarmResult result = runner.run_plan(seed, plan);
  ASSERT_FALSE(result.ok);
  FaultPlan minimized = runner.shrink(seed, plan);
  ASSERT_EQ(minimized.events.size(), 1u) << describe(minimized);
  EXPECT_EQ(minimized.events[0].action.kind, FaultAction::Kind::kDropFrames);
}

// --- Gateway chaos swarm: misbehaving clients over a faulty network ---
//
// Three shapes (slow-loris, reconnect storm, duplicate flood), each swept
// over seeded plans that compose client misbehavior with the network/crash
// underlay. Oracle: exactly-once (chained CAS), bounded admission memory
// (probed during the run), replica convergence, checker-clean traces, and
// client liveness. Budget knob: FSR_CHAOS_SEEDS (seeds per shape; the
// nightly ASan job enlarges it — the per-PR default already covers
// 3 x 100 = 300 plans).

std::uint64_t chaos_seeds_per_shape() {
  if (const char* env = std::getenv("FSR_CHAOS_SEEDS")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 100;
}

void write_chaos_artifact(const ChaosRunner& runner, const ChaosFailure& failure) {
  const char* dir = std::getenv("FSR_SWARM_ARTIFACT_DIR");
  if (dir == nullptr) return;
  std::ofstream out(std::string(dir) + "/chaos-failures-" + runner.config().name + ".txt",
                    std::ios::app);
  out << failure.repro << "\n";
}

/// Shared chaos base: a 4-node cluster with deliberately tight admission
/// limits (small window/queue/budget/cache) so the shapes actually push
/// against every bound, plus a one-crash network underlay.
ChaosConfig chaos_config(ChaosShape shape) {
  ChaosConfig cfg;
  cfg.name = chaos_shape_name(shape);
  cfg.shape = shape;
  cfg.gateway.cluster.n = 4;
  cfg.gateway.cluster.group.engine.t = 1;
  cfg.gateway.gateway.session_window = 4;
  cfg.gateway.gateway.session_queue = 8;
  cfg.gateway.gateway.admitted_bytes_budget = 64 * 1024;
  cfg.gateway.gateway.reply_cache = 8;
  cfg.faults.max_crashes = 1;
  return cfg;
}

const ChaosShape kChaosShapes[] = {ChaosShape::kSlowLoris,
                                   ChaosShape::kReconnectStorm,
                                   ChaosShape::kDuplicateFlood};

class ChaosTest : public ::testing::TestWithParam<ChaosShape> {};

TEST_P(ChaosTest, SeededPlansUpholdExactlyOnceAndBoundedMemory) {
  ChaosRunner runner(chaos_config(GetParam()));
  const std::uint64_t seeds = chaos_seeds_per_shape();
  // Disjoint seed ranges per shape, mirroring the swarm matrix.
  const std::uint64_t first =
      1 + static_cast<std::uint64_t>(GetParam()) * 1'000'000'000ULL;

  auto failures = runner.run_range(first, seeds, [&](const ChaosFailure& f) {
    ADD_FAILURE() << f.repro;
    write_chaos_artifact(runner, f);
  });
  EXPECT_EQ(failures.size(), 0u)
      << failures.size() << " of " << seeds << " chaos plans violated the "
      << "gateway contract (repro lines above; rerun with ChaosRunner::run_seed)";
}

TEST_P(ChaosTest, RunsAreDeterministicPerSeed) {
  ChaosRunner runner(chaos_config(GetParam()));
  ChaosResult a = runner.run_seed(7);
  ChaosResult b = runner.run_seed(7);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.commands_completed, b.commands_completed);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(describe(a.plan), describe(b.plan));
}

// Deliberate-sabotage self-test, per shape: plant a real exactly-once
// violation (client 0's first command re-broadcast as a plain payload,
// skipping the session table) and prove the oracle catches it, the shrinker
// strips every incidental event, and the repro names the sabotage.
TEST_P(ChaosTest, PlantedDoubleExecutionIsCaughtAndShrunk) {
  ChaosRunner runner(chaos_config(GetParam()));
  const std::uint64_t seed = 3;
  ChaosPlan plan = make_chaos_plan(seed, runner.config());
  plan.sabotage_double_execute = true;

  ChaosResult result = runner.run_plan(seed, plan);
  ASSERT_FALSE(result.ok) << "planted double execution went unnoticed: "
                          << describe(plan);
  EXPECT_NE(result.violation.find("exactly-once"), std::string::npos)
      << result.violation;

  ChaosPlan minimized = runner.shrink(seed, plan);
  // The sabotage needs no help: every generated fault and client event is
  // incidental and greedy removal must strip them all.
  EXPECT_EQ(minimized.faults.events.size(), 0u) << describe(minimized);
  EXPECT_EQ(minimized.client_events.size(), 0u) << describe(minimized);
  EXPECT_TRUE(minimized.sabotage_double_execute);
  ASSERT_FALSE(runner.run_plan(seed, minimized).ok)
      << "shrinking lost the violation: " << describe(minimized);

  std::string repro = runner.format_repro(result, minimized);
  EXPECT_NE(repro.find("seed=3"), std::string::npos) << repro;
  EXPECT_NE(repro.find("sabotage=double_execute"), std::string::npos) << repro;
}

// The shapes must actually exercise the machinery they target — a sweep
// whose duplicate floods never hit the reply cache, or whose loris sessions
// never pipeline past the window, would be green vacuously.
TEST(Chaos, ShapesExerciseTheirTargetMachinery) {
  {
    ChaosRunner runner(chaos_config(ChaosShape::kDuplicateFlood));
    GatewayCounters totals;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      ChaosResult r = runner.run_seed(seed);
      ASSERT_TRUE(r.ok) << r.violation;
      totals += r.counters;
    }
    EXPECT_GT(totals.duplicate_hits, 0u)
        << "no flood was answered from the reply cache";
  }
  {
    ChaosRunner runner(chaos_config(ChaosShape::kSlowLoris));
    std::size_t max_cache = 0, max_adm = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      ChaosResult r = runner.run_seed(seed);
      ASSERT_TRUE(r.ok) << r.violation;
      max_cache = std::max(max_cache, r.max_reply_cache_entries);
      max_adm = std::max(max_adm, r.max_admitted_bytes);
    }
    EXPECT_GT(max_cache, 0u);
    EXPECT_GT(max_adm, 0u) << "loris bursts never occupied admission memory";
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ChaosTest, ::testing::ValuesIn(kChaosShapes),
                         [](const auto& info) {
                           return std::string(chaos_shape_name(info.param));
                         });

}  // namespace
}  // namespace fsr
