// The deterministic fault-injection layer: ClusterNet link faults (delay
// spikes, jitter, partitions, sabotage drops) with their FIFO-preservation
// guarantee, the documented in-flight-frame-to-crashed-node semantics, and
// the FaultInjector trigger machinery (time / Nth-frame / view-change).
#include <gtest/gtest.h>

#include <vector>

#include "harness/fault_injector.h"
#include "harness/fault_plan.h"
#include "harness/sim_cluster.h"
#include "proto/codec.h"

namespace fsr {
namespace {

Frame data_frame(NodeId from, NodeId to, std::uint64_t app, std::size_t bytes,
                 NodeId origin = kNoNode) {
  DataMsg m;
  m.id = MsgId{origin == kNoNode ? from : origin, app};
  m.payload = make_payload(Bytes(bytes, 0x42));
  return Frame{from, to, 0, {m}};
}

std::uint64_t app_of(const Frame& f) { return std::get<DataMsg>(f.msgs[0]).id.lsn; }

// --- satellite: frames already on the wire to a crashed node are dropped
// on arrival (documented at src/net/cluster_net.h on crash()) ---

TEST(FaultInjection, InFlightFrameToCrashedNodeIsDroppedOnArrival) {
  Simulator sim;
  NetConfig cfg;
  ClusterNet net(sim, cfg, 2);
  int delivered = 0;
  net.set_deliver([&](const Frame&) { ++delivered; });

  Frame f = data_frame(0, 1, 1, 1000);
  std::size_t bytes = wire_size(f);
  net.send(std::move(f));
  // The frame finishes marshalling + transmission and is inside the switch
  // (switch_latency window) when the destination crashes.
  Time tx_end = net.cpu_time(bytes) + net.wire_time(bytes);
  sim.schedule_at(tx_end + cfg.switch_latency / 2, [&] { net.crash(1); });
  sim.run();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.fault_stats().dropped_to_crashed, 1u);
  EXPECT_EQ(net.stats(1).frames_received, 0u);
  EXPECT_EQ(net.stats(0).frames_sent, 1u);  // the send itself happened
}

TEST(FaultInjection, FrameFullyTransmittedBeforeSenderCrashStillArrives) {
  // Crash-stop semantics: messages a process finished sending before it
  // crashed may still be delivered (they are in the switch).
  Simulator sim;
  NetConfig cfg;
  ClusterNet net(sim, cfg, 2);
  int delivered = 0;
  net.set_deliver([&](const Frame&) { ++delivered; });

  Frame f = data_frame(0, 1, 1, 1000);
  std::size_t bytes = wire_size(f);
  net.send(std::move(f));
  Time tx_end = net.cpu_time(bytes) + net.wire_time(bytes);
  sim.schedule_at(tx_end + cfg.switch_latency / 2, [&] { net.crash(0); });
  sim.run();

  EXPECT_EQ(delivered, 1);
}

// --- link delay spikes and FIFO preservation ---

TEST(FaultInjection, LinkDelayPostponesArrival) {
  Simulator sim;
  NetConfig cfg;
  ClusterNet net(sim, cfg, 3);
  Time arrival = -1;
  net.set_deliver([&](const Frame&) { arrival = sim.now(); });

  net.set_link_delay(0, 1, 700 * kMicrosecond);
  Frame f = data_frame(0, 1, 1, 1000, /*origin=*/2);  // forwarded: no marshal
  std::size_t bytes = wire_size(f);
  net.send(std::move(f));
  sim.run();

  Time expect = net.wire_time(bytes) + cfg.switch_latency + 700 * kMicrosecond +
                net.cpu_time(bytes);
  EXPECT_EQ(arrival, expect);
}

TEST(FaultInjection, ShrinkingLinkDelayCannotReorderFrames) {
  // Frame A leaves under a 500us spike; the spike is cleared before frame B
  // leaves. Without the FIFO clamp B would overtake A inside the switch.
  Simulator sim;
  NetConfig cfg;
  ClusterNet net(sim, cfg, 3);
  std::vector<std::uint64_t> order;
  net.set_deliver([&](const Frame& f) { order.push_back(app_of(f)); });

  net.set_link_delay(0, 1, 500 * kMicrosecond);
  net.send(data_frame(0, 1, 1, 200, /*origin=*/2));
  Frame a = data_frame(0, 1, 1, 200, 2);
  Time tx_a = net.wire_time(wire_size(a));
  sim.schedule_at(tx_a + 1, [&] {
    net.set_link_delay(0, 1, 0);
    net.send(data_frame(0, 1, 2, 200, /*origin=*/2));
  });
  sim.run();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
}

TEST(FaultInjection, LinkJitterPreservesPerLinkFifo) {
  Simulator sim;
  NetConfig cfg;
  cfg.seed = 99;
  ClusterNet net(sim, cfg, 3);
  std::vector<std::uint64_t> order;
  net.set_deliver([&](const Frame& f) { order.push_back(app_of(f)); });

  net.set_link_jitter(2 * kMillisecond);  // huge vs the ~20us wire time
  for (std::uint64_t i = 1; i <= 20; ++i) {
    net.send(data_frame(0, 1, i, 200, /*origin=*/2));
  }
  sim.run();

  ASSERT_EQ(order.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(order[i], i + 1);
}

// --- transient partitions ---

TEST(FaultInjection, BufferingPartitionReleasesFramesInOrderOnHeal) {
  Simulator sim;
  NetConfig cfg;
  ClusterNet net(sim, cfg, 3);
  std::vector<std::uint64_t> order;
  std::vector<Time> when;
  net.set_deliver([&](const Frame& f) {
    order.push_back(app_of(f));
    when.push_back(sim.now());
  });

  net.cut_link(0, 1);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    net.send(data_frame(0, 1, i, 200, /*origin=*/2));
  }
  const Time heal_at = 5 * kMillisecond;
  sim.schedule_at(heal_at, [&] { net.heal_link(0, 1); });
  sim.run();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(net.fault_stats().frames_held, 3u);
  EXPECT_EQ(net.fault_stats().frames_released, 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(order[i], i + 1);
    EXPECT_GE(when[i], heal_at + cfg.switch_latency);
  }
}

TEST(FaultInjection, DropModeCutDiscardsFrames) {
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 3);
  int delivered = 0;
  net.set_deliver([&](const Frame&) { ++delivered; });

  net.cut_link(0, 1, /*drop=*/true);
  net.send(data_frame(0, 1, 1, 200, /*origin=*/2));
  net.send(data_frame(0, 1, 2, 200, /*origin=*/2));
  sim.run();
  net.heal_link(0, 1);
  net.send(data_frame(0, 1, 3, 200, /*origin=*/2));
  sim.run();

  EXPECT_EQ(delivered, 1);  // only the post-heal frame
  EXPECT_EQ(net.fault_stats().dropped_cut, 2u);
}

TEST(FaultInjection, DropFramesSabotageDiscardsExactlyN) {
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 3);
  std::vector<std::uint64_t> got;
  net.set_deliver([&](const Frame& f) { got.push_back(app_of(f)); });

  net.drop_frames(0, 1, 2);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    net.send(data_frame(0, 1, i, 200, /*origin=*/2));
  }
  sim.run();

  EXPECT_EQ(net.fault_stats().dropped_sabotage, 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 3u);
  EXPECT_EQ(got[1], 4u);
}

// --- whole-cluster faults through SimCluster ---

TEST(FaultInjection, ClusterSurvivesBufferingPartitionUnderTraffic) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.group.engine.segment_size = 1024;
  SimCluster c(cfg);

  for (NodeId s = 0; s < 4; ++s) {
    for (std::uint64_t m = 1; m <= 8; ++m) {
      c.sim().schedule_at(static_cast<Time>(m) * kMillisecond, [&c, s, m] {
        c.broadcast(s, test_payload(s, m, 2000));
      });
    }
  }
  // Isolate node 2 (both directions, buffered) for 3ms mid-burst.
  c.sim().schedule_at(4 * kMillisecond, [&c] {
    for (NodeId other = 0; other < 4; ++other) {
      if (other == 2) continue;
      c.world().net().cut_link(2, other);
      c.world().net().cut_link(other, 2);
    }
  });
  c.sim().schedule_at(7 * kMillisecond, [&c] { c.world().net().heal_all_links(); });
  c.sim().run();

  EXPECT_EQ(c.check_all(), "");
  // Reliable channels: nothing may be lost, only delayed.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.log(n).size(), 32u) << "node " << n;
  }
  EXPECT_GT(c.world().net().fault_stats().frames_held, 0u);
}

// --- FaultInjector trigger machinery ---

TEST(FaultInjection, InjectorAtTimeTriggerCrashes) {
  ClusterConfig cfg;
  cfg.n = 4;
  SimCluster c(cfg);

  FaultPlan plan;
  FaultEvent ev;
  ev.trigger.kind = FaultTrigger::Kind::kAtTime;
  ev.trigger.at = 5 * kMillisecond;
  ev.action.kind = FaultAction::Kind::kCrash;
  ev.action.node = 3;
  plan.events.push_back(ev);

  FaultInjector injector(c, plan);
  injector.arm();
  for (std::uint64_t m = 1; m <= 10; ++m) {
    c.sim().schedule_at(static_cast<Time>(m) * kMillisecond,
                        [&c, m] { c.broadcast(0, test_payload(0, m, 1000)); });
  }
  c.sim().run();

  EXPECT_FALSE(c.alive(3));
  EXPECT_EQ(injector.applied(), 1u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FaultInjection, InjectorNthFrameTriggerFiresOnMatchingFrame) {
  ClusterConfig cfg;
  cfg.n = 4;
  SimCluster c(cfg);

  // Crash node 2 right after node 1's third DATA-carrying frame is sent.
  // (Sender must not be the leader: the leader's payloads go out already
  // sequenced as SEQ messages, never as DATA.)
  FaultPlan plan;
  FaultEvent ev;
  ev.trigger.kind = FaultTrigger::Kind::kOnFrame;
  ev.trigger.nth = 3;
  ev.trigger.from = 1;
  ev.trigger.msg_kind = wire_msg_kind<DataMsg>;
  ev.action.kind = FaultAction::Kind::kCrash;
  ev.action.node = 2;
  plan.events.push_back(ev);

  FaultInjector injector(c, plan);
  injector.arm();
  for (std::uint64_t m = 1; m <= 8; ++m) {
    c.sim().schedule_at(static_cast<Time>(m) * kMillisecond,
                        [&c, m] { c.broadcast(1, test_payload(1, m, 1000)); });
  }
  c.sim().run();

  EXPECT_FALSE(c.alive(2));
  EXPECT_EQ(injector.applied(), 1u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FaultInjection, InjectorViewChangeTriggerRacesSecondCrash) {
  // First crash by time; the second fires the moment the resulting view
  // change is observed — the schedule window hand-picked tests miss.
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.group.engine.t = 2;
  SimCluster c(cfg);

  FaultPlan plan;
  FaultEvent first;
  first.trigger.kind = FaultTrigger::Kind::kAtTime;
  first.trigger.at = 6 * kMillisecond;
  first.action.kind = FaultAction::Kind::kCrash;
  first.action.node = 1;
  plan.events.push_back(first);
  FaultEvent second;
  second.trigger.kind = FaultTrigger::Kind::kOnViewChange;
  second.trigger.nth = 1;
  second.action.kind = FaultAction::Kind::kCrash;
  second.action.node = 4;
  plan.events.push_back(second);

  FaultInjector injector(c, plan);
  injector.arm();
  for (NodeId s = 0; s < 6; ++s) {
    for (std::uint64_t m = 1; m <= 6; ++m) {
      c.sim().schedule_at(static_cast<Time>(2 * m) * kMillisecond, [&c, s, m] {
        if (c.alive(s)) c.broadcast(s, test_payload(s, m, 1500));
      });
    }
  }
  c.sim().run();

  EXPECT_FALSE(c.alive(1));
  EXPECT_FALSE(c.alive(4));
  EXPECT_EQ(injector.applied(), 2u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FaultInjection, CheckerViolationCarriesFaultProvenance) {
  // Force a bogus delivery record after a fault applied: the violation
  // message must name the fault event (per-event provenance hook).
  ClusterConfig cfg;
  cfg.n = 3;
  SimCluster c(cfg);

  FaultPlan plan;
  FaultEvent ev;
  ev.trigger.kind = FaultTrigger::Kind::kAtTime;
  ev.trigger.at = kMillisecond;
  ev.action.kind = FaultAction::Kind::kCrash;
  ev.action.node = 2;
  plan.events.push_back(ev);
  FaultInjector injector(c, plan);
  injector.arm();

  c.sim().schedule_at(2 * kMillisecond, [&c] {
    // A delivery of a message nobody broadcast: integrity violation.
    c.checker().on_delivery(DeliveryRecord{0, 0, 1, 77, 1, 1, 0, 10, c.sim().now()});
  });
  c.sim().run();

  std::string v = c.checker().online_violation();
  ASSERT_NE(v, "");
  EXPECT_NE(v.find("after fault #0"), std::string::npos) << v;
  EXPECT_NE(v.find("crash(2"), std::string::npos) << v;
}

TEST(FaultInjection, PlanDescriptionRoundsTrip) {
  FaultPlanConfig cfg;
  cfg.n = 5;
  cfg.max_crashes = 2;
  cfg.allow_sabotage = false;
  FaultPlan plan = make_fault_plan(1234, cfg);
  EXPECT_EQ(plan.seed, 1234u);
  std::string line = describe(plan);
  EXPECT_NE(line.find("seed=1234"), std::string::npos);
  // Same seed, same plan (determinism).
  FaultPlan again = make_fault_plan(1234, cfg);
  EXPECT_EQ(describe(again), line);
}

}  // namespace
}  // namespace fsr
