// Application state transfer at join time: when the proposed view admits a
// joiner, members attach an application snapshot to their flush state; the
// joiner installs the freshest one and replays recovery deliveries from its
// watermark — ending bit-for-bit identical to the old members.
#include <gtest/gtest.h>

#include <memory>

#include "app/kv_store.h"
#include "harness/sim_cluster.h"

namespace fsr {
namespace {

struct Fixture {
  Fixture(std::size_t n, std::size_t initial) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.initial_members = initial;
    cfg.group.engine.t = 1;
    cluster = std::make_unique<SimCluster>(cfg);
    stores.resize(n);
    cluster->set_delivery_tap([this](NodeId node, const Delivery& d) {
      stores[node].apply(d.origin, d.payload);
    });
    // KV snapshot = its full contents re-encoded as PUT commands.
    cluster->set_snapshot_hooks(
        [this](NodeId node) {
          ByteWriter w;
          w.var(stores[node].contents().size());
          for (const auto& [k, v] : stores[node].contents()) {
            w.str(k);
            w.str(v);
          }
          return w.take();
        },
        [this](NodeId node, const Bytes& snap) {
          ByteReader r(snap);
          std::uint64_t count = r.var();
          for (std::uint64_t i = 0; i < count; ++i) {
            std::string k = r.str();
            std::string v = r.str();
            stores[node].apply(kNoNode, KvStore::encode_put(k, v));
          }
        });
  }
  std::unique_ptr<SimCluster> cluster;
  std::vector<KvStore> stores;
};

TEST(StateTransfer, JoinerAdoptsFullState) {
  Fixture f(4, 3);
  for (int i = 0; i < 25; ++i) {
    f.cluster->broadcast(static_cast<NodeId>(i % 3),
                         KvStore::encode_put("k" + std::to_string(i), "v" + std::to_string(i)));
  }
  f.cluster->sim().run();
  ASSERT_EQ(f.stores[0].size(), 25u);

  f.cluster->node(3).request_join(0);
  f.cluster->sim().run();
  ASSERT_TRUE(f.cluster->node(3).in_group());

  // The joiner's store must equal the members' stores without having seen
  // any of the 25 broadcasts.
  EXPECT_EQ(f.stores[3].fingerprint(), f.stores[0].fingerprint());
  EXPECT_EQ(f.stores[3].size(), 25u);
}

TEST(StateTransfer, JoinerStaysConsistentThroughLaterWrites) {
  Fixture f(4, 3);
  for (int i = 0; i < 10; ++i) {
    f.cluster->broadcast(1, KvStore::encode_put("a" + std::to_string(i), "x"));
  }
  f.cluster->sim().run();
  f.cluster->node(3).request_join(2);
  f.cluster->sim().run();
  for (int i = 0; i < 10; ++i) {
    f.cluster->broadcast(3, KvStore::encode_put("b" + std::to_string(i), "y"));
  }
  f.cluster->sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(f.stores[n].fingerprint(), f.stores[0].fingerprint()) << "node " << n;
    EXPECT_EQ(f.stores[n].size(), 20u) << "node " << n;
  }
}

TEST(StateTransfer, JoinDuringTrafficTransfersConsistentCut) {
  // The snapshot is taken while frozen, so it corresponds to an exact
  // delivery watermark; union replay brings the joiner to the same point as
  // everyone else even with messages in flight at join time.
  Fixture f(5, 4);
  for (int i = 0; i < 40; ++i) {
    f.cluster->broadcast(static_cast<NodeId>(i % 4),
                         KvStore::encode_put("k" + std::to_string(i), "v"));
  }
  f.cluster->sim().schedule(8 * kMillisecond, [&] { f.cluster->node(4).request_join(0); });
  f.cluster->sim().run();
  ASSERT_TRUE(f.cluster->node(4).in_group());
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(f.stores[n].fingerprint(), f.stores[0].fingerprint()) << "node " << n;
    EXPECT_EQ(f.stores[n].size(), 40u) << "node " << n;
  }
  EXPECT_EQ(f.cluster->check_total_order(), "");
  EXPECT_EQ(f.cluster->check_integrity(), "");
}

TEST(StateTransfer, WithoutHooksJoinerStartsEmpty) {
  // The pre-existing semantics remain when no hooks are installed.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.initial_members = 2;
  cfg.group.engine.t = 1;
  SimCluster c(cfg);
  c.broadcast(0, test_payload(0, 1, 500));
  c.sim().run();
  c.node(2).request_join(0);
  c.sim().run();
  EXPECT_TRUE(c.node(2).in_group());
  EXPECT_TRUE(c.log(2).empty());
}

TEST(StateTransfer, CrashDuringJoinFlushStillTransfers) {
  Fixture f(5, 4);
  for (int i = 0; i < 20; ++i) {
    f.cluster->broadcast(1, KvStore::encode_put("k" + std::to_string(i), "v"));
  }
  f.cluster->sim().run();
  // Join and crash a member almost simultaneously: the flush restarts and
  // must still carry a snapshot for the joiner.
  f.cluster->node(4).request_join(0);
  f.cluster->sim().schedule(kMillisecond, [&] { f.cluster->crash(2); });
  f.cluster->sim().run();
  ASSERT_TRUE(f.cluster->node(4).in_group());
  EXPECT_EQ(f.stores[4].fingerprint(), f.stores[0].fingerprint());
  EXPECT_EQ(f.stores[4].size(), 20u);
}

}  // namespace
}  // namespace fsr
