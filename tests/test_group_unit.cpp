// VSC / GroupMember edge cases not covered by the scenario tests: stale
// installs, duplicate membership requests, degenerate rotations, and
// coordinator bookkeeping.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"

namespace fsr {
namespace {

ClusterConfig cfg4() {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.group.engine.t = 1;
  return cfg;
}

TEST(GroupUnit, DuplicateJoinRequestsCollapseToOneMembership) {
  ClusterConfig cfg = cfg4();
  cfg.initial_members = 3;
  SimCluster c(cfg);
  // The joiner spams its request at several members.
  c.node(3).request_join(0);
  c.node(3).request_join(1);
  c.node(3).request_join(2);
  c.sim().run();
  EXPECT_TRUE(c.node(3).in_group());
  for (NodeId n = 0; n < 4; ++n) {
    const auto& members = c.node(n).view().members;
    EXPECT_EQ(members.size(), 4u) << "node " << n;
    EXPECT_EQ(std::count(members.begin(), members.end(), 3), 1) << "node " << n;
  }
}

TEST(GroupUnit, LeaveRequestFromNonMemberIsIgnored) {
  ClusterConfig cfg = cfg4();
  cfg.initial_members = 3;
  SimCluster c(cfg);
  c.node(3).request_leave();  // not a member
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(c.node(n).view().id, 1u) << "no flush should have run";
  }
}

TEST(GroupUnit, DuplicateLeaveRequestsProduceOneViewChange) {
  SimCluster c(cfg4());
  c.node(2).request_leave();
  c.node(2).request_leave();
  c.sim().run();
  for (NodeId n : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    EXPECT_EQ(c.node(n).view().id, 2u) << "node " << n;
    EXPECT_EQ(c.node(n).view().size(), 3u);
  }
}

TEST(GroupUnit, RotateOnNonCoordinatorIsNoop) {
  SimCluster c(cfg4());
  c.node(2).rotate_leader();  // node 0 coordinates, not node 2
  c.sim().run();
  EXPECT_EQ(c.node(0).view().id, 1u);
  EXPECT_EQ(c.node(0).view().leader(), 0u);
}

TEST(GroupUnit, RotateOnSingletonIsNoop) {
  ClusterConfig cfg;
  cfg.n = 1;
  SimCluster c(cfg);
  c.node(0).rotate_leader();
  c.sim().run();
  EXPECT_EQ(c.node(0).view().id, 1u);
}

TEST(GroupUnit, CrashOfNonMemberDoesNotDisturbTheGroup) {
  ClusterConfig cfg = cfg4();
  cfg.initial_members = 3;
  SimCluster c(cfg);
  c.crash(3);  // outside the group
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(c.node(n).view().id, 1u) << "node " << n;
  }
  c.broadcast(1, test_payload(1, 1, 100));
  c.sim().run();
  EXPECT_EQ(c.log(0).size(), 1u);
}

TEST(GroupUnit, JoinerCrashingMidJoinLeavesCleanGroup) {
  ClusterConfig cfg = cfg4();
  cfg.initial_members = 3;
  SimCluster c(cfg);
  c.broadcast(0, test_payload(0, 1, 100));
  c.sim().run();
  // The joiner dies right after asking in; whether or not its admission
  // flush started, the group must converge to the three original members.
  c.node(3).request_join(0);
  c.sim().schedule(100 * kMicrosecond, [&] { c.crash(3); });
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(c.node(n).view().size(), 3u) << "node " << n;
    EXPECT_FALSE(c.node(n).view().contains(3)) << "node " << n;
    EXPECT_FALSE(c.node(n).flushing()) << "node " << n;
  }
  c.broadcast(1, test_payload(1, 1, 100));
  c.sim().run();
  EXPECT_EQ(c.log(0).size(), 2u);
}

TEST(GroupUnit, ViewChangeCallbackFiresOnEveryInstall) {
  SimCluster c(cfg4());
  // SimCluster doesn't expose the callback directly; observe through the
  // engine's view-change counter instead.
  c.crash(3);
  c.sim().run();
  c.node(0).rotate_leader();
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(c.node(n).engine().stats().view_changes, 2u) << "node " << n;
    EXPECT_EQ(c.node(n).view().id, 3u) << "node " << n;
  }
}

TEST(GroupUnit, SequentialLeavesDownToSingleton) {
  SimCluster c(cfg4());
  c.broadcast(2, test_payload(2, 1, 200));
  c.sim().run();
  for (NodeId leaver : {NodeId{0}, NodeId{1}, NodeId{2}}) {
    c.node(leaver).request_leave();
    c.sim().run();
  }
  EXPECT_TRUE(c.node(3).in_group());
  EXPECT_EQ(c.node(3).view().size(), 1u);
  // The singleton still delivers.
  c.broadcast(3, test_payload(3, 1, 50));
  c.sim().run();
  EXPECT_EQ(c.log(3).back().origin, 3u);
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");
}

TEST(GroupUnit, BroadcastsByLeaverBeforeLeavingAreDeliveredToAll) {
  SimCluster c(cfg4());
  for (int i = 0; i < 10; ++i) {
    c.broadcast(2, test_payload(2, static_cast<std::uint64_t>(i + 1), 3000));
  }
  c.node(2).request_leave();  // leave races its own traffic
  c.sim().run();
  // All 10 must be delivered by the remaining members (flush recovery
  // covers anything in flight; the leaver participated in the flush).
  for (NodeId n : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    std::size_t from2 = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin == 2) ++from2;
    }
    EXPECT_EQ(from2, 10u) << "node " << n;
  }
  EXPECT_EQ(c.check_total_order(), "");
}

}  // namespace
}  // namespace fsr
