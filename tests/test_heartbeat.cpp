// Ring heartbeat failure detection: each member feeds its successor and
// suspects a silent predecessor. This catches "hang" failures that produce
// no connection reset and that the simulator's injected perfect FD would
// otherwise have to announce. Heartbeat clusters re-arm timers forever, so
// tests drive the simulator with run_until().
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"

namespace fsr {
namespace {

ClusterConfig hb_cluster(std::size_t n) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.group.engine.t = 1;
  cfg.group.heartbeat_interval = 5 * kMillisecond;
  cfg.group.heartbeat_timeout = 25 * kMillisecond;
  return cfg;
}

TEST(Heartbeat, SilentCrashIsDetectedAndViewShrinks) {
  SimCluster c(hb_cluster(4));
  c.broadcast(1, test_payload(1, 1, 500));
  c.sim().run_until(100 * kMillisecond);
  ASSERT_EQ(c.log(0).size(), 1u);

  c.crash_silent(2);  // hang: no FD notification, no resets
  c.sim().run_until(400 * kMillisecond);

  for (NodeId n : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    EXPECT_EQ(c.node(n).view().size(), 3u) << "node " << n;
    EXPECT_FALSE(c.node(n).view().contains(2)) << "node " << n;
    EXPECT_FALSE(c.node(n).flushing()) << "node " << n;
  }
  // The survivors still work.
  c.broadcast(1, test_payload(1, 2, 500));
  c.sim().run_until(600 * kMillisecond);
  for (NodeId n : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    EXPECT_EQ(c.log(n).size(), 2u) << "node " << n;
  }
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");
}

TEST(Heartbeat, SilentLeaderCrashFailsOver) {
  SimCluster c(hb_cluster(4));
  c.sim().run_until(50 * kMillisecond);
  c.crash_silent(0);
  c.sim().run_until(500 * kMillisecond);
  for (NodeId n = 1; n < 4; ++n) {
    EXPECT_EQ(c.node(n).view().leader(), 1u) << "node " << n;
  }
  c.broadcast(2, test_payload(2, 1, 500));
  c.sim().run_until(700 * kMillisecond);
  for (NodeId n = 1; n < 4; ++n) EXPECT_EQ(c.log(n).size(), 1u) << "node " << n;
}

TEST(Heartbeat, QuietButHealthyRingStaysIntact) {
  // No traffic at all for a long stretch: heartbeats alone must prevent
  // false suspicion (no view change may happen).
  SimCluster c(hb_cluster(5));
  c.sim().run_until(kSecond);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(c.node(n).view().id, 1u) << "node " << n;
    EXPECT_EQ(c.node(n).view().size(), 5u) << "node " << n;
  }
}

TEST(Heartbeat, BusyTrafficCountsAsLife) {
  // A constant payload stream (without explicit heartbeats getting through
  // timely) must also keep the predecessor monitor fed.
  ClusterConfig cfg = hb_cluster(4);
  cfg.group.heartbeat_timeout = 30 * kMillisecond;
  SimCluster c(cfg);
  for (int i = 0; i < 200; ++i) {
    c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 1), 20 * 1024));
  }
  c.sim().run_until(2 * kSecond);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.node(n).view().id, 1u) << "false suspicion at node " << n;
    EXPECT_EQ(c.log(n).size(), 200u) << "node " << n;
  }
}

TEST(Heartbeat, TwoSilentCrashesSequentially) {
  SimCluster c(hb_cluster(5));
  c.sim().run_until(50 * kMillisecond);
  c.crash_silent(3);
  c.sim().run_until(500 * kMillisecond);
  c.crash_silent(1);
  c.sim().run_until(kSecond);
  for (NodeId n : {NodeId{0}, NodeId{2}, NodeId{4}}) {
    EXPECT_EQ(c.node(n).view().size(), 3u) << "node " << n;
  }
  c.broadcast(4, test_payload(4, 1, 300));
  c.sim().run_until(1200 * kMillisecond);
  for (NodeId n : {NodeId{0}, NodeId{2}, NodeId{4}}) {
    EXPECT_EQ(c.log(n).size(), 1u) << "node " << n;
  }
}

}  // namespace
}  // namespace fsr

namespace fsr {
namespace {

TEST(Rotation, PeriodicRotationVisitsEveryLeader) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.group.engine.t = 1;
  cfg.group.rotation_interval = 50 * kMillisecond;
  SimCluster c(cfg);
  std::set<NodeId> leaders_seen;
  for (int tick = 1; tick <= 12; ++tick) {
    c.sim().run_until(static_cast<Time>(tick) * 55 * kMillisecond);
    leaders_seen.insert(c.node(0).view().leader());
    // Traffic keeps flowing across rotations.
    c.broadcast(2, test_payload(2, static_cast<std::uint64_t>(tick), 400));
  }
  c.sim().run_until(2 * kSecond);
  EXPECT_EQ(leaders_seen.size(), 4u) << "every member should lead in turn";
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.log(n).size(), 12u) << "node " << n;
  }
}

TEST(Rotation, RotationPausesDuringMembershipChange) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.group.engine.t = 1;
  cfg.group.rotation_interval = 30 * kMillisecond;
  SimCluster c(cfg);
  c.sim().schedule(40 * kMillisecond, [&] { c.crash(3); });
  c.sim().run_until(kSecond);
  // The group survived both rotations and the crash.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(c.node(n).view().size(), 3u) << "node " << n;
    EXPECT_FALSE(c.node(n).flushing()) << "node " << n;
  }
  c.broadcast(1, test_payload(1, 1, 400));
  c.sim().run_until(1200 * kMillisecond);
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(c.log(n).size(), 1u);
}

}  // namespace
}  // namespace fsr
