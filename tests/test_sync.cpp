// The annotated synchronization wrappers (common/sync.h): Mutex/MutexLock
// exclusion, CondVar handshakes, ThreadRole adoption semantics (nesting,
// cross-thread handoff, and the three fatal contract violations), and the
// Thread wrapper. The role stress tests double as TSan regression coverage
// for the serialized-adoption pattern the transport uses after stop().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "common/sync.h"

namespace fsr {
namespace {

TEST(Sync, MutexLockExcludes) {
  Mutex mu;
  long counter = 0;
  std::vector<Thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, long(kThreads) * kIters);
}

TEST(Sync, TryLockReflectsOwnership) {
  Mutex mu;
  mu.lock();
  // Another thread must fail to take it while we hold it.
  bool taken = true;
  Thread probe([&] {
    if (mu.try_lock()) {
      taken = true;
      mu.unlock();
    } else {
      taken = false;
    }
  });
  probe.join();
  EXPECT_FALSE(taken);
  mu.unlock();
  if (mu.try_lock()) {
    mu.unlock();
  } else {
    ADD_FAILURE() << "try_lock on a free mutex must succeed";
  }
}

TEST(Sync, CondVarHandshake) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool consumed = false;
  Thread consumer([&] {
    MutexLock lock(mu);
    cv.wait(mu, [&] { return ready; });
    consumed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  }
  consumer.join();
  EXPECT_TRUE(consumed);
}

TEST(Sync, CondVarWaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  bool got = cv.wait_for(mu, std::chrono::milliseconds(20), [] { return false; });
  EXPECT_FALSE(got);
}

// Same-thread re-adoption nests dynamically; statically it looks like a
// double acquire (the analysis doesn't model reentrant capabilities), so
// this probe opts out of analysis — it tests the runtime behaviour.
void nest_once(ThreadRole& role) FSR_NO_THREAD_SAFETY_ANALYSIS {
  ThreadRoleRegion nested(role);
  EXPECT_TRUE(role.held_by_me());
}

TEST(Sync, ThreadRoleNestsOnOwner) {
  ThreadRole role("test.role");
  EXPECT_FALSE(role.held_by_me());
  role.adopt();
  EXPECT_TRUE(role.held_by_me());
  nest_once(role);
  EXPECT_TRUE(role.held_by_me()) << "inner release must not drop outer hold";
  role.assert_held();  // must not abort while held
  role.release();
  EXPECT_FALSE(role.held_by_me());
}

TEST(Sync, ThreadRoleHandsOffAcrossThreads) {
  // Adoption is mutual exclusion, not permanent affinity: once released,
  // any other thread may adopt. This is exactly the transport's post-stop
  // drain pattern (adoptions serialized by a mutex), and under TSan it is
  // the regression test for that handoff.
  ThreadRole role("test.handoff");
  Mutex serialize;
  int turns = 0;
  std::vector<Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        MutexLock lock(serialize);
        ThreadRoleRegion region(role);
        ++turns;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(turns, 4 * 500);
  EXPECT_FALSE(role.held_by_me());
}

TEST(Sync, ThreadWrapperJoinsAndMoves) {
  std::atomic<bool> ran{false};
  Thread t([&] { ran.store(true); });
  EXPECT_TRUE(t.joinable());
  Thread moved(std::move(t));
  EXPECT_TRUE(moved.joinable());
  moved.join();
  EXPECT_FALSE(moved.joinable());
  EXPECT_TRUE(ran.load());
}

// The death-test bodies commit deliberate contract violations; each helper
// opts out of static analysis (which would otherwise reject exactly the
// bug being provoked) so the runtime check is what gets exercised.
void violate_concurrent_adoption() FSR_NO_THREAD_SAFETY_ANALYSIS {
  ThreadRole role("test.concurrent");
  role.adopt();
  Thread second([&]() FSR_NO_THREAD_SAFETY_ANALYSIS { role.adopt(); });
  second.join();
}

void violate_foreign_release() FSR_NO_THREAD_SAFETY_ANALYSIS {
  ThreadRole role("test.foreign-release");
  role.adopt();
  Thread second([&]() FSR_NO_THREAD_SAFETY_ANALYSIS { role.release(); });
  second.join();
}

void violate_assert_off_thread() FSR_NO_THREAD_SAFETY_ANALYSIS {
  ThreadRole role("test.off-thread");
  role.adopt();
  Thread second([&] { role.assert_held(); });
  second.join();
}

TEST(SyncDeathTest, ConcurrentAdoptionAborts) {
  EXPECT_DEATH(violate_concurrent_adoption(), "adopted concurrently");
}

TEST(SyncDeathTest, ForeignReleaseAborts) {
  EXPECT_DEATH(violate_foreign_release(),
               "released by a thread that does not hold it");
}

TEST(SyncDeathTest, AssertHeldOffThreadAborts) {
  EXPECT_DEATH(violate_assert_off_thread(), "ran off its required thread role");
}

}  // namespace
}  // namespace fsr
