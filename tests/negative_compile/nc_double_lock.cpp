// Negative-compilation case: re-acquiring a non-recursive Mutex already
// held by this thread (guaranteed deadlock) must be rejected by
// -Werror=thread-safety.
#include "common/sync.h"

namespace {

struct Gate {
  fsr::Mutex mu;

  void enter_twice() {
    mu.lock();
    mu.lock();  // expected error: acquiring 'mu' that is already held
    mu.unlock();
    mu.unlock();
  }
};

void use() {
  Gate g;
  g.enter_twice();
}

}  // namespace
