// Negative-compilation case: calling an FSR_EXCLUDES(mu) function while
// holding mu (the self-deadlock shape) must be rejected by
// -Werror=thread-safety.
#include "common/sync.h"

namespace {

struct Service {
  fsr::Mutex mu;

  void reenter() FSR_EXCLUDES(mu) {
    fsr::MutexLock lock(mu);
  }

  void outer() {
    fsr::MutexLock lock(mu);
    reenter();  // expected error: cannot call while holding 'mu'
  }
};

void use() {
  Service s;
  s.outer();
}

}  // namespace
