// Negative-compilation case: the shard router's per-loop state. The router
// lives on its replica's single event thread and its routing counters are a
// compile-time capability of the router's ThreadRole — calls into a shard
// gateway adopt that gateway's role in a nested ThreadRoleRegion, but the
// router's own state may only be touched with the router role held. An
// entry point that bumps the routing counters without requiring the role
// must be rejected by -Werror=thread-safety.
#include <cstdint>
#include <vector>

#include "common/sync.h"

namespace {

struct RouterCounters {
  std::uint64_t requests_routed = 0;
};

class ShardRouterModel {
 public:
  void on_request_routed(std::uint32_t shard) FSR_REQUIRES(role_) {
    ++counters_.requests_routed;
    ++routed_per_shard_[shard];
  }

  // A monitoring thread peeking at routing stats without the role — the
  // correct implementation marshals onto the event thread first.
  std::uint64_t routed_total() const {
    return counters_.requests_routed;  // expected error: requires role 'role_'
  }

 private:
  fsr::ThreadRole role_{"ShardRouter::event"};
  RouterCounters counters_ FSR_GUARDED_BY(role_);
  std::vector<std::uint64_t> routed_per_shard_ FSR_GUARDED_BY(role_) =
      std::vector<std::uint64_t>(4, 0);
};

void use() {
  ShardRouterModel router;
  (void)router.routed_total();
}

}  // namespace
