// Negative-compilation case: returning with a mutex still held (a leak of
// the capability, i.e. a missing unlock on some path) must be rejected by
// -Werror=thread-safety.
#include "common/sync.h"

namespace {

struct Door {
  fsr::Mutex mu;

  void leave_locked(bool early) {
    mu.lock();
    if (early) return;  // expected error: 'mu' still held at end of function
    mu.unlock();
  }
};

void use() {
  Door d;
  d.leave_locked(true);
}

}  // namespace
