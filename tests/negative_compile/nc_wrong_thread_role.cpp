// Negative-compilation case: calling a thread-role-restricted method
// without adopting the role (ThreadRoleRegion / assert_held) must be
// rejected by -Werror=thread-safety. This is the I/O-thread capability
// model: FSR_REQUIRES(role_) marks event-thread-only entry points.
#include "common/sync.h"

namespace {

class Replica {
 public:
  void on_delivery() FSR_REQUIRES(role_) { ++deliveries_; }

  void cross_thread_entry() {
    on_delivery();  // expected error: requires holding role 'role_'
  }

 private:
  fsr::ThreadRole role_{"Replica::event"};
  int deliveries_ FSR_GUARDED_BY(role_) = 0;
};

void use() {
  Replica r;
  r.cross_thread_entry();
}

}  // namespace
