// Negative-compilation case: calling an FSR_REQUIRES(mu) method without
// the mutex held must be rejected by -Werror=thread-safety.
#include "common/sync.h"

namespace {

struct Table {
  fsr::Mutex mu;
  int rows FSR_GUARDED_BY(mu) = 0;

  void insert_locked() FSR_REQUIRES(mu) { ++rows; }

  void insert() {
    insert_locked();  // expected error: requires holding 'mu'
  }
};

void use() {
  Table t;
  t.insert();
}

}  // namespace
