// Negative-compilation case: touching an FSR_GUARDED_BY field without
// holding its mutex must be rejected by -Werror=thread-safety.
#include "common/sync.h"

namespace {

struct Counter {
  fsr::Mutex mu;
  int value FSR_GUARDED_BY(mu) = 0;

  void bump() {
    ++value;  // expected error: writing 'value' requires holding 'mu'
  }
};

int use() {
  Counter c;
  c.bump();
  return c.value;  // expected error: reading 'value' requires holding 'mu'
}

}  // namespace
