// Positive twin of the negative-compilation suite: the same shapes as the
// nc_*.cpp cases written correctly. Must compile warning-free under
// -Werror=thread-safety — if this file fails, the suite's failures mean
// nothing (the harness, not the violations, would be broken).
#include "common/sync.h"

namespace {

struct Counter {
  fsr::Mutex mu;
  int value FSR_GUARDED_BY(mu) = 0;

  void bump() {
    fsr::MutexLock lock(mu);
    ++value;
  }
};

struct Table {
  fsr::Mutex mu;
  int rows FSR_GUARDED_BY(mu) = 0;

  void insert_locked() FSR_REQUIRES(mu) { ++rows; }

  void insert() FSR_EXCLUDES(mu) {
    fsr::MutexLock lock(mu);
    insert_locked();
  }
};

class Replica {
 public:
  fsr::ThreadRole& role() FSR_RETURN_CAPABILITY(role_) { return role_; }

  void on_delivery() FSR_REQUIRES(role_) { ++deliveries_; }

 private:
  fsr::ThreadRole role_{"Replica::event"};
  int deliveries_ FSR_GUARDED_BY(role_) = 0;
};

struct Door {
  fsr::Mutex mu;

  void pass() {
    mu.lock();
    mu.unlock();
  }
};

void use() {
  Counter c;
  c.bump();

  Table t;
  t.insert();

  Replica r;
  {
    fsr::ThreadRoleRegion region(r.role());
    r.on_delivery();
  }

  Door d;
  d.pass();

  fsr::Mutex m;
  fsr::CondVar cv;
  bool ready = false;
  {
    fsr::MutexLock lock(m);
    ready = true;
    cv.notify_one();
  }
  {
    fsr::MutexLock lock(m);
    cv.wait(m, [&] { return ready; });
  }
}

}  // namespace
