// Negative-compilation case: the gateway event-loop shard model. Each epoll
// loop's connection table is a compile-time capability of that loop's
// ThreadRole; cross-thread surfaces (adopt_fd, queue_reply) must go through
// the inbox, never touch the shard directly. A cross-thread method that
// reaches into the guarded connection map without adopting the role must be
// rejected by -Werror=thread-safety.
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/sync.h"

namespace {

class EventLoop {
 public:
  struct Conn {
    int fd = -1;
    std::deque<int> outbox;
  };

  void handle_readable(std::uint64_t serial) FSR_REQUIRES(role_) {
    conns_[serial].outbox.push_back(0);
  }

  // Cross-thread entry (accept thread hands over a socket). The correct
  // implementation posts to the inbox and wakes the loop; touching the
  // shard directly races with the loop thread.
  void adopt_fd(int fd, std::uint64_t serial) {
    conns_[serial].fd = fd;  // expected error: requires holding role 'role_'
  }

 private:
  fsr::ThreadRole role_{"GatewayServer::loop"};
  std::unordered_map<std::uint64_t, Conn> conns_ FSR_GUARDED_BY(role_);
};

void use() {
  EventLoop loop;
  loop.adopt_fd(3, 1);
}

}  // namespace
