// Fault tolerance: crashes of standard / backup / leader processes mid-
// stream, multiple crashes, crash during flush, join, leave, and leader
// rotation. The key property is *uniform* agreement: whatever any process
// (even one that subsequently crashed) delivered, every surviving process
// delivers, in the same order.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"

namespace fsr {
namespace {

ClusterConfig crash_cluster(std::size_t n, std::uint32_t t) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.group.engine.t = t;
  cfg.group.engine.segment_size = 1024;
  return cfg;
}

void burst(SimCluster& c, NodeId sender, int count, std::size_t size,
           std::uint64_t first_app = 1) {
  for (int i = 0; i < count; ++i) {
    c.broadcast(sender, test_payload(sender, first_app + static_cast<std::uint64_t>(i), size));
  }
}

// All live nodes share one view and the same delivered count.
void expect_converged(SimCluster& c, std::size_t expected_min_deliveries) {
  ViewId vid = 0;
  for (NodeId n = 0; n < c.size(); ++n) {
    if (!c.alive(n)) continue;
    const View& v = c.node(n).view();
    if (vid == 0) vid = v.id;
    EXPECT_EQ(v.id, vid) << "node " << n << " in a different view";
    EXPECT_FALSE(c.node(n).flushing()) << "node " << n << " still frozen";
    EXPECT_GE(c.log(n).size(), expected_min_deliveries) << "node " << n;
  }
}

TEST(ViewChange, StandardProcessCrashMidBurst) {
  SimCluster c(crash_cluster(5, 1));
  for (NodeId s = 0; s < 5; ++s) burst(c, s, 10, 2000);
  // Crash standard node 3 (ring position 3) mid-stream.
  c.sim().schedule(20 * kMillisecond, [&] { c.crash(3); });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  // Messages from live senders must all be delivered by survivors.
  for (NodeId n = 0; n < 5; ++n) {
    if (!c.alive(n)) continue;
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin != 3) ++from_live;
    }
    EXPECT_EQ(from_live, 40u) << "node " << n << " lost a live sender's message";
  }
  expect_converged(c, 40);
}

TEST(ViewChange, BackupCrashMidBurst) {
  SimCluster c(crash_cluster(5, 2));
  for (NodeId s = 0; s < 5; ++s) burst(c, s, 10, 2000);
  c.sim().schedule(15 * kMillisecond, [&] { c.crash(1); });  // backup position 1
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  for (NodeId n = 0; n < 5; ++n) {
    if (!c.alive(n)) continue;
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin != 1) ++from_live;
    }
    EXPECT_EQ(from_live, 40u);
  }
}

TEST(ViewChange, LeaderCrashMidBurst) {
  SimCluster c(crash_cluster(5, 1));
  for (NodeId s = 0; s < 5; ++s) burst(c, s, 10, 2000);
  c.sim().schedule(15 * kMillisecond, [&] { c.crash(0); });  // the sequencer
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  for (NodeId n = 1; n < 5; ++n) {
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin != 0) ++from_live;
    }
    EXPECT_EQ(from_live, 40u) << "node " << n;
    // New leader is the old position-1 node.
    EXPECT_EQ(c.node(n).view().leader(), 1u);
  }
}

TEST(ViewChange, LeaderCrashWhileIdle) {
  SimCluster c(crash_cluster(4, 1));
  burst(c, 2, 5, 500);
  c.sim().run();
  c.crash(0);
  c.sim().run();
  burst(c, 2, 5, 500, 6);
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  for (NodeId n = 1; n < 4; ++n) EXPECT_EQ(c.log(n).size(), 10u);
}

TEST(ViewChange, TwoCrashesWithTwoBackups) {
  SimCluster c(crash_cluster(6, 2));
  for (NodeId s = 0; s < 6; ++s) burst(c, s, 8, 1500);
  c.sim().schedule(10 * kMillisecond, [&] { c.crash(0); });
  c.sim().schedule(25 * kMillisecond, [&] { c.crash(3); });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  for (NodeId n = 0; n < 6; ++n) {
    if (!c.alive(n)) continue;
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin != 0 && e.origin != 3) ++from_live;
    }
    EXPECT_EQ(from_live, 32u) << "node " << n;
  }
  expect_converged(c, 32);
}

TEST(ViewChange, SimultaneousCrashes) {
  // Leader and a backup at the same instant, t = 2.
  SimCluster c(crash_cluster(6, 2));
  for (NodeId s = 0; s < 6; ++s) burst(c, s, 8, 1500);
  c.sim().schedule(12 * kMillisecond, [&] {
    c.crash(0);
    c.crash(1);
  });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  for (NodeId n = 2; n < 6; ++n) {
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin > 1) ++from_live;
    }
    EXPECT_EQ(from_live, 32u) << "node " << n;
    EXPECT_EQ(c.node(n).view().leader(), 2u);
  }
}

TEST(ViewChange, CrashDuringFlushRestartsRound) {
  // Crash node 4 to start a flush; while detection/flush is in flight,
  // crash node 3 too. The coordinator must restart with a higher proposal.
  SimCluster c(crash_cluster(6, 2));
  for (NodeId s = 0; s < 6; ++s) burst(c, s, 8, 1500);
  c.sim().schedule(12 * kMillisecond, [&] { c.crash(4); });
  // fd_delay is 2 ms: the second crash lands mid-flush.
  c.sim().schedule(12 * kMillisecond + 2500 * kMicrosecond, [&] { c.crash(3); });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  expect_converged(c, 0);
  for (NodeId n = 0; n < 3; ++n) {
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin != 3 && e.origin != 4) ++from_live;
    }
    EXPECT_EQ(from_live, 32u) << "node " << n;
  }
}

TEST(ViewChange, CoordinatorCrashDuringFlush) {
  // Node 5 crashes; coordinator (leader 0) starts the flush and then crashes
  // before completing it. Node 1 must take over.
  SimCluster c(crash_cluster(6, 2));
  for (NodeId s = 0; s < 6; ++s) burst(c, s, 8, 1500);
  c.sim().schedule(12 * kMillisecond, [&] { c.crash(5); });
  c.sim().schedule(12 * kMillisecond + 2200 * kMicrosecond, [&] { c.crash(0); });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  expect_converged(c, 0);
  for (NodeId n = 1; n < 5; ++n) {
    EXPECT_EQ(c.node(n).view().leader(), 1u);
  }
}

TEST(ViewChange, SenderCrashMayLoseOnlyItsOwnUndelivered) {
  // A crashed sender's messages may be partially delivered, but whatever was
  // delivered anywhere is delivered everywhere (uniformity) and its
  // delivered prefix is consistent.
  SimCluster c(crash_cluster(5, 1));
  burst(c, 3, 30, 3000);
  c.sim().schedule(10 * kMillisecond, [&] { c.crash(3); });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  // All survivors agree on exactly how many of node 3's messages exist.
  std::size_t count = c.log(0).size();
  for (NodeId n = 1; n < 5; ++n) {
    if (c.alive(n)) {
      EXPECT_EQ(c.log(n).size(), count);
    }
  }
}

TEST(ViewChange, CascadingCrashesDownToTwoNodes) {
  SimCluster c(crash_cluster(6, 2));
  for (NodeId s = 0; s < 6; ++s) burst(c, s, 6, 800);
  c.sim().schedule(10 * kMillisecond, [&] { c.crash(1); });
  c.sim().schedule(30 * kMillisecond, [&] { c.crash(4); });
  c.sim().schedule(50 * kMillisecond, [&] { c.crash(0); });
  c.sim().schedule(70 * kMillisecond, [&] { c.crash(2); });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  expect_converged(c, 0);
  // Survivors 3 and 5 still form a working group.
  burst(c, 3, 3, 500, 7);
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  EXPECT_EQ(c.log(3).size(), c.log(5).size());
}

TEST(ViewChange, BroadcastsSubmittedDuringFlushSurvive) {
  SimCluster c(crash_cluster(5, 1));
  burst(c, 2, 5, 1000);
  c.sim().schedule(5 * kMillisecond, [&] { c.crash(4); });
  // Submit while the flush is likely in progress.
  c.sim().schedule(5 * kMillisecond + 2100 * kMicrosecond, [&] {
    burst(c, 2, 5, 1000, 6);
  });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  for (NodeId n = 0; n < 4; ++n) {
    std::size_t from2 = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin == 2) ++from2;
    }
    EXPECT_EQ(from2, 10u) << "node " << n;
  }
}

TEST(ViewChange, LargeMessageInterruptedByCrashCompletes) {
  // A 100-segment message from node 2 is mid-flight when the leader dies;
  // re-broadcast of undelivered segments must complete it (no corruption).
  ClusterConfig cfg = crash_cluster(5, 1);
  cfg.group.engine.segment_size = 512;
  SimCluster c(cfg);
  c.broadcast(2, test_payload(2, 1, 50 * 1024));
  c.sim().schedule(3 * kMillisecond, [&] { c.crash(0); });
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  for (NodeId n = 1; n < 5; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
    EXPECT_EQ(c.log(n)[0].bytes, 50u * 1024u);
  }
}

TEST(ViewChange, GracefulLeave) {
  SimCluster c(crash_cluster(5, 1));
  burst(c, 2, 5, 1000);
  c.sim().run();
  c.node(3).request_leave();
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) {
    if (n == 3) {
      EXPECT_FALSE(c.node(n).in_group());
      continue;
    }
    EXPECT_EQ(c.node(n).view().size(), 4u);
    EXPECT_FALSE(c.node(n).view().contains(3));
  }
  // The group still works. (check_all would treat the leaver as "correct",
  // but its log legitimately stops at the old view — check the rest.)
  burst(c, 2, 5, 1000, 6);
  c.sim().run();
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");
  EXPECT_EQ(c.check_agreement({0, 1, 2, 4}), "");
  EXPECT_EQ(c.log(0).size(), 10u);
  // The leaver's log stopped at the old view but is a consistent prefix.
  EXPECT_EQ(c.check_uniformity({3}, {0, 1, 2, 4}), "");
}

TEST(ViewChange, LeaderLeavesGracefully) {
  SimCluster c(crash_cluster(4, 1));
  burst(c, 1, 5, 1000);
  c.sim().run();
  c.node(0).request_leave();
  c.sim().run();
  for (NodeId n = 1; n < 4; ++n) {
    EXPECT_EQ(c.node(n).view().leader(), 1u) << "node " << n;
  }
  burst(c, 2, 5, 1000);
  c.sim().run();
  EXPECT_EQ(c.check_uniformity({0}, {1, 2, 3}), "");
  EXPECT_EQ(c.log(1).size(), 10u);
}

TEST(ViewChange, RotateLeaderMovesRingHead) {
  SimCluster c(crash_cluster(5, 1));
  burst(c, 3, 5, 1000);
  c.sim().run();
  c.node(0).rotate_leader();
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(c.node(n).view().leader(), 1u) << "node " << n;
    EXPECT_EQ(c.node(n).view().members,
              (std::vector<NodeId>{1, 2, 3, 4, 0}));
  }
  burst(c, 3, 5, 1000, 6);
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  EXPECT_EQ(c.log(0).size(), 10u);
}

TEST(ViewChange, RepeatedRotationVisitsEveryLeader) {
  SimCluster c(crash_cluster(4, 1));
  for (int round = 0; round < 4; ++round) {
    burst(c, 2, 3, 500, static_cast<std::uint64_t>(round * 3 + 1));
    c.sim().run();
    NodeId coord = c.node(0).view().leader();
    c.node(coord).rotate_leader();
    c.sim().run();
  }
  EXPECT_EQ(c.check_all(), "");
  // After 4 rotations the ring is back to the original order.
  EXPECT_EQ(c.node(0).view().members, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(c.log(1).size(), 12u);
}

// Explicit uniformity assertion for the crashed set: whatever the two dead
// nodes delivered must be a prefix of every survivor's log.
void expect_uniform_pair(SimCluster& c, NodeId a, NodeId b) {
  std::set<NodeId> crashed{a, b};
  std::set<NodeId> correct;
  for (NodeId n = 0; n < c.size(); ++n) {
    if (crashed.count(n) == 0) correct.insert(n);
  }
  EXPECT_EQ(c.check_uniformity(crashed, correct), "");
  EXPECT_EQ(c.check_all(), "");
}

TEST(ViewChange, SecondCrashInsideDetectionWindow) {
  // Node 3 dies mid-burst; node 1 dies 500us later — well inside node 3's
  // 2ms detection window, so the view change triggered by the first crash
  // is proposed when the second is already dead but not yet suspected. The
  // flush must restart when the second detection lands, and uniformity
  // must hold across both restarts.
  ClusterConfig cfg = crash_cluster(6, 2);
  SimCluster c(cfg);
  for (NodeId s = 0; s < 4; ++s) burst(c, s, 8, 1500);
  c.sim().schedule(15 * kMillisecond, [&] { c.crash(3); });
  c.sim().schedule(15 * kMillisecond + 500 * kMicrosecond, [&] { c.crash(1); });
  c.sim().run();
  expect_uniform_pair(c, 3, 1);
  // Messages from live senders survive both crashes.
  for (NodeId n = 0; n < 6; ++n) {
    if (!c.alive(n)) continue;
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin != 3 && e.origin != 1) ++from_live;
    }
    EXPECT_EQ(from_live, 16u) << "node " << n << " lost a live sender's message";
  }
  expect_converged(c, 16);
}

TEST(ViewChange, LeaderAndBackupCrashInsideDetectionWindow) {
  // The hardest pairing: the leader (sequencer) and its first backup die
  // 300us apart, with staggered detection delays so the leader's death is
  // noticed first and the flush for it races the backup's detection.
  ClusterConfig cfg = crash_cluster(6, 2);
  SimCluster c(cfg);
  for (NodeId s = 2; s < 6; ++s) burst(c, s, 8, 1500);
  c.sim().schedule(12 * kMillisecond, [&] { c.crash(0, 1 * kMillisecond); });
  c.sim().schedule(12 * kMillisecond + 300 * kMicrosecond,
                   [&] { c.crash(1, 2 * kMillisecond); });
  c.sim().run();
  expect_uniform_pair(c, 0, 1);
  for (NodeId n = 0; n < 6; ++n) {
    if (!c.alive(n)) continue;
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin != 0 && e.origin != 1) ++from_live;
    }
    EXPECT_EQ(from_live, 32u) << "node " << n << " lost a live sender's message";
  }
  expect_converged(c, 32);
}

TEST(ViewChange, ReversedDetectionOrderInsideWindow) {
  // The second crash is *detected first*: node 2 dies after node 4 but
  // with a much shorter detection delay, so flushes start in the opposite
  // order of the crashes themselves.
  ClusterConfig cfg = crash_cluster(6, 2);
  SimCluster c(cfg);
  for (NodeId s = 0; s < 2; ++s) burst(c, s, 10, 2000);
  c.sim().schedule(10 * kMillisecond, [&] { c.crash(4, 3 * kMillisecond); });
  c.sim().schedule(10 * kMillisecond + 800 * kMicrosecond,
                   [&] { c.crash(2, 200 * kMicrosecond); });
  c.sim().run();
  expect_uniform_pair(c, 4, 2);
  for (NodeId n = 0; n < 6; ++n) {
    if (!c.alive(n)) continue;
    std::size_t from_live = 0;
    for (const auto& e : c.log(n)) {
      if (e.origin != 4 && e.origin != 2) ++from_live;
    }
    EXPECT_EQ(from_live, 20u) << "node " << n << " lost a live sender's message";
  }
  expect_converged(c, 20);
}

TEST(ViewChange, DepartedNodeLsnStateIsDropped) {
  // Per-origin duplicate-suppression state (sequenced/delivered lsn maps)
  // must not accumulate entries for nodes that left the view: a long-lived
  // group with churn would otherwise leak an entry per departed member.
  SimCluster c(crash_cluster(4, 1));
  for (NodeId s = 0; s < 4; ++s) burst(c, s, 5, 800);
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 20u) << "node " << n;
    EXPECT_EQ(c.node(n).engine().tracked_origins(), 4u) << "node " << n;
  }
  c.crash(3);
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(c.node(n).engine().tracked_origins(), 3u)
        << "node " << n << " still tracks the departed node";
  }
  // The shrunken view keeps working.
  burst(c, 1, 5, 800, 100);
  c.sim().run();
  expect_converged(c, 25);
  EXPECT_EQ(c.check_all(), "");
}

}  // namespace
}  // namespace fsr
