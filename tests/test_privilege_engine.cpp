// The packet-level privilege/token baseline: correctness (identical logs,
// completeness, token parking/wakeup) and the §2.3 trade-off signature —
// fair holds are slow for opposed senders, long holds are unfair.
#include <gtest/gtest.h>

#include "baselines/privilege_cluster.h"
#include "harness/sim_cluster.h"

namespace fsr::baselines {
namespace {

PrivilegeConfig cfg(std::size_t hold, std::size_t segment = 4096) {
  PrivilegeConfig c;
  c.hold_max = hold;
  c.segment_size = segment;
  return c;
}

TEST(PrivilegeEngine, HolderBroadcastDeliversEverywhere) {
  PrivilegeCluster c(NetConfig{}, 4, cfg(4));
  c.broadcast(0, test_payload(0, 1, 1000));  // initial holder
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
    EXPECT_EQ(c.log(n)[0].bytes, 1000u);
  }
}

TEST(PrivilegeEngine, NonHolderWakesParkedToken) {
  PrivilegeCluster c(NetConfig{}, 4, cfg(4));
  // Let the token rotate idle and park first.
  c.sim().run();
  // Now a non-holder wants to broadcast: the request must unpark the token.
  c.broadcast(2, test_payload(2, 1, 1000));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
    EXPECT_EQ(c.log(n)[0].origin, 2u);
  }
}

TEST(PrivilegeEngine, ConcurrentSendersTotalOrderAndCompleteness) {
  PrivilegeCluster c(NetConfig{}, 5, cfg(2));
  for (NodeId s = 0; s < 5; ++s) {
    for (int i = 0; i < 8; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 3000));
    }
  }
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(c.log(n).size(), 40u) << "node " << n;
  EXPECT_EQ(c.check_logs_identical(), "");
}

TEST(PrivilegeEngine, LargeMessageSegmentsAcrossTokenVisits) {
  // 100 KB in 4 KiB segments with hold_max 3: the message spans many token
  // rotations and must still reassemble everywhere.
  PrivilegeCluster c(NetConfig{}, 3, cfg(3));
  c.broadcast(1, test_payload(1, 1, 100 * 1024));
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u);
    EXPECT_EQ(c.log(n)[0].bytes, 100u * 1024u);
  }
}

TEST(PrivilegeEngine, HoldMaxTradesFairnessForThroughput) {
  // Two opposed senders, 100 KB messages: long holds produce long
  // single-sender runs in the delivery order; hold 1 interleaves.
  auto longest_run = [](std::size_t hold) {
    PrivilegeCluster c(NetConfig{}, 6, cfg(hold, 100 * 1024));
    for (int i = 0; i < 20; ++i) {
      c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 1), 100 * 1024));
      c.broadcast(4, test_payload(4, static_cast<std::uint64_t>(i + 1), 100 * 1024));
    }
    c.sim().run();
    EXPECT_EQ(c.log(0).size(), 40u);
    std::size_t longest = 0, run = 0;
    NodeId prev = kNoNode;
    for (const auto& e : c.log(0)) {
      run = (e.origin == prev) ? run + 1 : 1;
      prev = e.origin;
      longest = std::max(longest, run);
    }
    return longest;
  };
  EXPECT_LE(longest_run(1), 2u);
  EXPECT_GE(longest_run(16), 16u);
}

TEST(PrivilegeEngine, ThroughputWellBelowFsrOnPointToPoint) {
  // n-to-n, 100 KB: the holder unicasts n-1 copies of each payload, so
  // aggregate goodput is capped near wire/(n-1) — far below FSR's 79.
  const std::size_t n = 6;
  const int msgs = 10;
  PrivilegeCluster c(NetConfig{}, n, cfg(8, 100 * 1024));
  for (std::size_t s = 0; s < n; ++s) {
    for (int i = 0; i < msgs; ++i) {
      c.broadcast(static_cast<NodeId>(s),
                  test_payload(static_cast<NodeId>(s),
                               static_cast<std::uint64_t>(i + 1), 100 * 1024));
    }
  }
  c.sim().run();
  ASSERT_EQ(c.log(0).size(), n * msgs);
  double mbps = static_cast<double>(n * msgs * 100 * 1024) * 8.0 /
                static_cast<double>(c.log(0).back().at) * 1000.0;
  EXPECT_LT(mbps, 35.0);
  EXPECT_GT(mbps, 5.0);
  EXPECT_EQ(c.check_logs_identical(), "");
}

}  // namespace
}  // namespace fsr::baselines
