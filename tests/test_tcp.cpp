// End-to-end tests over real TCP sockets on localhost: the identical
// protocol stack (engine + VSC) running on TcpTransport instead of the
// simulator. Wall-clock timeouts are generous to stay robust on loaded
// machines.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "harness/sim_cluster.h"
#include "harness/tcp_cluster.h"

namespace fsr {
namespace {

constexpr Time kWait = 15 * kSecond;

GroupConfig small_group() {
  GroupConfig g;
  g.engine.t = 1;
  g.engine.segment_size = 8192;
  return g;
}

void expect_logs_prefix_consistent(TcpCluster& c, const std::set<NodeId>& nodes) {
  std::vector<std::vector<TcpCluster::LogEntry>> logs;
  for (NodeId n : nodes) logs.push_back(c.log(n));
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      std::size_t common = std::min(logs[a].size(), logs[b].size());
      for (std::size_t i = 0; i < common; ++i) {
        ASSERT_EQ(logs[a][i].origin, logs[b][i].origin) << "index " << i;
        ASSERT_EQ(logs[a][i].app_msg, logs[b][i].app_msg) << "index " << i;
        ASSERT_EQ(logs[a][i].payload_hash, logs[b][i].payload_hash) << "index " << i;
      }
    }
  }
}

TEST(Tcp, SingleBroadcastReachesEveryNode) {
  TcpCluster c(3, small_group());
  c.broadcast(1, test_payload(1, 1, 2000));
  ASSERT_TRUE(c.wait_deliveries(1, kWait));
  for (NodeId n = 0; n < 3; ++n) {
    auto log = c.log(n);
    ASSERT_EQ(log.size(), 1u) << "node " << n;
    EXPECT_EQ(log[0].origin, 1u);
    EXPECT_EQ(log[0].bytes, 2000u);
    EXPECT_EQ(log[0].payload_hash, hash_bytes(test_payload(1, 1, 2000)));
  }
}

TEST(Tcp, ConcurrentSendersTotalOrder) {
  TcpCluster c(4, small_group());
  for (int i = 0; i < 10; ++i) {
    for (NodeId s = 0; s < 4; ++s) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 500));
    }
  }
  ASSERT_TRUE(c.wait_deliveries(40, kWait));
  expect_logs_prefix_consistent(c, {0, 1, 2, 3});
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(c.log(n).size(), 40u);
}

TEST(Tcp, LargeMessageSegmentsAndReassembles) {
  TcpCluster c(3, small_group());
  Bytes big = test_payload(2, 1, 300 * 1024);  // ~38 segments of 8 KiB
  c.broadcast(2, big);
  ASSERT_TRUE(c.wait_deliveries(1, kWait));
  for (NodeId n = 0; n < 3; ++n) {
    auto log = c.log(n);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].bytes, big.size());
    EXPECT_EQ(log[0].payload_hash, hash_bytes(big));
  }
}

TEST(Tcp, CrashTriggersViewChangeAndGroupContinues) {
  TcpCluster c(4, small_group());
  c.broadcast(1, test_payload(1, 1, 1000));
  ASSERT_TRUE(c.wait_deliveries(1, kWait));

  c.crash(3);
  ASSERT_TRUE(c.wait_view_size(3, kWait));

  for (int i = 0; i < 5; ++i) {
    c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 2), 1000));
  }
  ASSERT_TRUE(c.wait_deliveries(6, kWait));
  expect_logs_prefix_consistent(c, {0, 1, 2});
}

TEST(Tcp, LeaderCrashFailsOver) {
  TcpCluster c(4, small_group());
  c.broadcast(2, test_payload(2, 1, 1000));
  ASSERT_TRUE(c.wait_deliveries(1, kWait));

  c.crash(0);  // the sequencer
  ASSERT_TRUE(c.wait_view_size(3, kWait));
  c.with_member(1, [](GroupMember& m) {
    EXPECT_EQ(m.view().leader(), 1u);
    EXPECT_TRUE(m.engine().is_leader());
  });

  for (int i = 0; i < 5; ++i) {
    c.broadcast(2, test_payload(2, static_cast<std::uint64_t>(i + 2), 1000));
  }
  ASSERT_TRUE(c.wait_deliveries(6, kWait));
  expect_logs_prefix_consistent(c, {1, 2, 3});
}

TEST(Tcp, CrashDuringTrafficLosesNoLiveSenderMessages) {
  TcpCluster c(4, small_group());
  for (int i = 0; i < 30; ++i) {
    c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 1), 4000));
  }
  c.crash(2);
  ASSERT_TRUE(c.wait_view_size(3, kWait));
  ASSERT_TRUE(c.wait_deliveries(30, kWait));
  expect_logs_prefix_consistent(c, {0, 1, 3});
  for (NodeId n : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    auto log = c.log(n);
    std::size_t from1 = 0;
    for (const auto& e : log) {
      if (e.origin == 1) ++from1;
    }
    EXPECT_EQ(from1, 30u) << "node " << n;
  }
}

TEST(Tcp, GracefulLeaveShrinksView) {
  TcpCluster c(4, small_group());
  c.broadcast(0, test_payload(0, 1, 100));
  ASSERT_TRUE(c.wait_deliveries(1, kWait));
  c.with_member(2, [](GroupMember& m) { m.request_leave(); });
  ASSERT_TRUE(c.wait_view_size(3, kWait));
  c.with_member(0, [](GroupMember& m) {
    EXPECT_FALSE(m.view().contains(2));
  });
  c.broadcast(1, test_payload(1, 1, 100));
  // Node 2 left, so only 0, 1, 3 must see the second message.
  bool ok = false;
  for (int spin = 0; spin < 1000 && !ok; ++spin) {
    ok = c.log(0).size() >= 2 && c.log(1).size() >= 2 && c.log(3).size() >= 2;
    if (!ok) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(ok);
  EXPECT_EQ(c.log(2).size(), 1u);  // the leaver's log stopped
  expect_logs_prefix_consistent(c, {0, 1, 3});
}

}  // namespace
}  // namespace fsr
