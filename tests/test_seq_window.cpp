// The flat sequence window (src/fsr/seq_window.h) and the engine behaviours
// built on it: pooled record storage, geometric growth with wraparound,
// GC pruning across wrapped indexes, overflow fallback + promotion, the
// zero-copy segmentation/reassembly counters, and state-transfer round-trip
// equality with the old map-based flush encoding.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/bytes.h"
#include "fsr/seq_window.h"
#include "harness/sim_cluster.h"

namespace fsr {
namespace {

SeqRecord rec(GlobalSeq seq, NodeId origin = 1) {
  SeqRecord r;
  r.id = MsgId{origin, static_cast<LocalSeq>(seq)};
  r.seq = seq;
  return r;
}

TEST(SeqWindow, PooledInsertFindAndSize) {
  SeqWindow w(4, 64);
  EXPECT_EQ(w.slot_capacity(), 4u);
  EXPECT_TRUE(w.empty());
  for (GlobalSeq s = 1; s <= 4; ++s) {
    EXPECT_EQ(w.insert(rec(s)), SeqWindow::Placement::kPooled) << s;
  }
  EXPECT_EQ(w.size(), 4u);
  for (GlobalSeq s = 1; s <= 4; ++s) {
    ASSERT_NE(w.find(s), nullptr) << s;
    EXPECT_EQ(w.find(s)->seq, s);
  }
  EXPECT_EQ(w.find(5), nullptr);
  EXPECT_FALSE(w.contains(99));
}

TEST(SeqWindow, GrowthReindexesAndKeepsRecordsAddressable) {
  SeqWindow w(4, 64);
  for (GlobalSeq s = 1; s <= 4; ++s) w.insert(rec(s));
  // Seq 5 does not fit a 4-slot window based at 0: geometric growth.
  EXPECT_EQ(w.insert(rec(5)), SeqWindow::Placement::kGrown);
  EXPECT_EQ(w.slot_capacity(), 8u);
  for (GlobalSeq s = 1; s <= 5; ++s) {
    ASSERT_NE(w.find(s), nullptr) << s;
    EXPECT_EQ(w.find(s)->seq, s);
  }
  // Ascending iteration across the reindexed slots.
  std::vector<GlobalSeq> seen;
  w.for_each([&](const SeqRecord& r) { seen.push_back(r.seq); });
  EXPECT_EQ(seen, (std::vector<GlobalSeq>{1, 2, 3, 4, 5}));
}

TEST(SeqWindow, WraparoundAcrossGrowthPreservesOrder) {
  // Advance the base first so slot indexes wrap around the ring before the
  // growth reindex happens.
  SeqWindow w(4, 64);
  for (GlobalSeq s = 1; s <= 3; ++s) w.insert(rec(s));
  w.prune_through(2);  // base = 2; live range (2, 6]
  for (GlobalSeq s = 4; s <= 6; ++s) {
    EXPECT_EQ(w.insert(rec(s)), SeqWindow::Placement::kPooled) << s;
  }
  // Seq 7 exceeds base + capacity: grow with wrapped occupancy.
  EXPECT_EQ(w.insert(rec(7)), SeqWindow::Placement::kGrown);
  EXPECT_EQ(w.find(2), nullptr);  // pruned
  std::vector<GlobalSeq> seen;
  w.for_each([&](const SeqRecord& r) { seen.push_back(r.seq); });
  EXPECT_EQ(seen, (std::vector<GlobalSeq>{3, 4, 5, 6, 7}));
}

TEST(SeqWindow, PruneAcrossWrappedIndexes) {
  SeqWindow w(8, 8);
  for (GlobalSeq s = 1; s <= 8; ++s) w.insert(rec(s));
  w.prune_through(5);
  EXPECT_EQ(w.size(), 3u);
  // 9..13 reuse the freed slots (wrapped: 9 & 7 == index 1, ...).
  for (GlobalSeq s = 9; s <= 13; ++s) {
    EXPECT_EQ(w.insert(rec(s)), SeqWindow::Placement::kPooled) << s;
  }
  // The GC watermark advances past a wrapped index boundary.
  w.prune_through(12);
  EXPECT_EQ(w.base(), 12u);
  for (GlobalSeq s = 1; s <= 12; ++s) EXPECT_EQ(w.find(s), nullptr) << s;
  ASSERT_NE(w.find(13), nullptr);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SeqWindow, PruneReleasesPayloadStorage) {
  SeqWindow w(4, 4);
  Payload p = make_payload(Bytes(256, 0xab));
  std::weak_ptr<const void> backing = p.owner();
  SeqRecord r = rec(1);
  r.payload = std::move(p);
  w.insert(std::move(r));
  p = nullptr;
  EXPECT_FALSE(backing.expired()) << "window must keep the payload alive";
  w.prune_through(1);
  EXPECT_TRUE(backing.expired()) << "pruned slots must release their payload";
}

TEST(SeqWindow, OverflowFallbackAndPromotionIntoFullWindow) {
  // Window capped at 4 slots: sequence numbers beyond base+4 go to the
  // overflow map and get promoted into slots as the base advances.
  SeqWindow w(4, 4);
  for (GlobalSeq s = 1; s <= 4; ++s) w.insert(rec(s));
  EXPECT_EQ(w.insert(rec(6)), SeqWindow::Placement::kOverflow);
  EXPECT_EQ(w.insert(rec(7)), SeqWindow::Placement::kOverflow);
  EXPECT_EQ(w.overflow_size(), 2u);
  EXPECT_EQ(w.size(), 6u);
  ASSERT_NE(w.find(6), nullptr);  // reachable while overflowed
  // Ascending iteration spans slots then overflow.
  std::vector<GlobalSeq> seen;
  w.for_each([&](const SeqRecord& r) { seen.push_back(r.seq); });
  EXPECT_EQ(seen, (std::vector<GlobalSeq>{1, 2, 3, 4, 6, 7}));
  // Base advance promotes both overflow records into freed slots.
  w.prune_through(4);
  EXPECT_EQ(w.overflow_size(), 0u);
  EXPECT_EQ(w.size(), 2u);
  ASSERT_NE(w.find(6), nullptr);
  ASSERT_NE(w.find(7), nullptr);
  EXPECT_EQ(w.find(5), nullptr);
}

TEST(SeqWindow, PruneDropsOverflowBehindWatermark) {
  SeqWindow w(2, 2);
  w.insert(rec(1));
  w.insert(rec(5));  // overflow
  w.insert(rec(9));  // overflow
  EXPECT_EQ(w.overflow_size(), 2u);
  w.prune_through(6);  // drops 1 and 5; promotes nothing (9 > 6+2)... 9 <= 8? no
  EXPECT_EQ(w.find(1), nullptr);
  EXPECT_EQ(w.find(5), nullptr);
  ASSERT_NE(w.find(9), nullptr);
  w.prune_through(8);
  EXPECT_EQ(w.overflow_size(), 0u) << "9 must be promoted once in range";
  ASSERT_NE(w.find(9), nullptr);
}

TEST(SeqWindow, ClearRestartsAtNewBase) {
  SeqWindow w(4, 8);
  for (GlobalSeq s = 1; s <= 4; ++s) w.insert(rec(s));
  w.clear(100);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.base(), 100u);
  EXPECT_EQ(w.find(3), nullptr);
  EXPECT_EQ(w.insert(rec(101)), SeqWindow::Placement::kPooled);
  ASSERT_NE(w.find(101), nullptr);
}

// --- engine-level behaviour on top of the window ---

ClusterConfig base_cfg(std::size_t n, std::uint32_t t) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.group.engine.t = t;
  return cfg;
}

TEST(SeqWindowEngine, MultiSegmentSendsCopyNothingAtSegmentation) {
  ClusterConfig cfg = base_cfg(4, 1);
  cfg.group.engine.segment_size = 1024;
  SimCluster c(cfg);
  for (int i = 0; i < 5; ++i) {
    c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 1), 10 * 1024));
  }
  c.sim().run();
  EngineCounters ec = c.engine_counters();
  EXPECT_EQ(ec.segmentation_copies, 0u)
      << "segmentation must alias the application buffer, never copy";
  EXPECT_GT(ec.reassembly_copies, 0u) << "10-segment messages were reassembled";
  for (NodeId n = 0; n < 4; ++n) ASSERT_EQ(c.log(n).size(), 5u) << "node " << n;
  EXPECT_EQ(c.check_all(), "");
}

TEST(SeqWindowEngine, SteadyStateRecordAcquisitionsArePooled) {
  ClusterConfig cfg = base_cfg(4, 1);
  cfg.group.engine.segment_size = 4096;
  SimCluster c(cfg);
  for (int i = 0; i < 200; ++i) {
    for (NodeId s = 0; s < 4; ++s) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 1024));
    }
  }
  c.sim().run();
  EngineCounters ec = c.engine_counters();
  std::uint64_t acquisitions = ec.records_pooled + ec.records_allocated;
  ASSERT_GT(acquisitions, 0u);
  EXPECT_GE(static_cast<double>(ec.records_pooled),
            0.95 * static_cast<double>(acquisitions))
      << "pooled=" << ec.records_pooled << " allocated=" << ec.records_allocated;
  EXPECT_EQ(c.check_all(), "");
}

TEST(SeqWindowEngine, WindowGrowsUnderBacklogAndStaysCorrect) {
  ClusterConfig cfg = base_cfg(5, 1);
  cfg.group.engine.window_slots = 8;  // force growth under load
  cfg.group.engine.gc_interval = 256;
  SimCluster c(cfg);
  for (int i = 0; i < 60; ++i) {
    for (NodeId s = 0; s < 5; ++s) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 512));
    }
  }
  c.sim().run();
  EngineCounters ec = c.engine_counters();
  EXPECT_GT(ec.window_grows, 0u) << "an 8-slot window must grow under this load";
  bool grew = false;
  for (NodeId n = 0; n < 5; ++n) {
    grew = grew || c.node(n).engine().window_capacity() > 8;
  }
  EXPECT_TRUE(grew);
  for (NodeId n = 0; n < 5; ++n) ASSERT_EQ(c.log(n).size(), 300u) << "node " << n;
  EXPECT_EQ(c.check_all(), "");
}

TEST(SeqWindowEngine, CappedWindowFallsBackToOverflowAndRecovers) {
  // A deliberately tiny hard cap: live records spill into the overflow map
  // and get promoted back as the GC watermark advances. Throughput suffers;
  // correctness must not.
  ClusterConfig cfg = base_cfg(4, 1);
  cfg.group.engine.window_slots = 4;
  cfg.group.engine.max_window_slots = 4;
  cfg.group.engine.gc_interval = 8;
  SimCluster c(cfg);
  for (int i = 0; i < 40; ++i) {
    for (NodeId s = 0; s < 4; ++s) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 256));
    }
  }
  c.sim().run();
  EngineCounters ec = c.engine_counters();
  EXPECT_GT(ec.out_of_window, 0u) << "a 4-slot cap must overflow under this load";
  EXPECT_EQ(ec.window_grows, 0u) << "capped window must not grow";
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 160u) << "node " << n;
    EXPECT_EQ(c.node(n).engine().window_overflow(), 0u)
        << "after quiescence everything must be back in (or out of) the window";
  }
  EXPECT_EQ(c.check_all(), "");
}

TEST(SeqWindowEngine, PiggybackCountersSplitHitsAndMisses) {
  ClusterConfig cfg = base_cfg(5, 1);
  cfg.group.engine.segment_size = 2048;
  SimCluster c(cfg);
  for (NodeId s = 0; s < 5; ++s) {
    for (int i = 0; i < 10; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 8 * 1024));
    }
  }
  c.sim().run();
  EngineCounters loaded = c.engine_counters();
  EXPECT_GT(loaded.piggyback_hits, 0u) << "under load, acks must ride payload frames";

  SimCluster quiet(base_cfg(5, 1));
  quiet.broadcast(3, test_payload(3, 1, 400));
  quiet.sim().run();
  EXPECT_GT(quiet.engine_counters().piggyback_misses, 0u)
      << "an idle ring sends acks in ack-only frames";
}

TEST(SeqWindowEngine, SingletonGroupPrunesRetentionImmediately) {
  // n = 1: this process is trivially the last deliverer, so retention must
  // not accumulate (it used to leak: GC only ran for view size > 1).
  ClusterConfig cfg = base_cfg(1, 1);
  SimCluster c(cfg);
  for (int i = 0; i < 50; ++i) {
    c.broadcast(0, test_payload(0, static_cast<std::uint64_t>(i + 1), 512));
  }
  c.sim().run();
  EXPECT_EQ(c.log(0).size(), 50u);
  EXPECT_EQ(c.node(0).engine().stored_records(), 0u);
  EXPECT_EQ(c.node(0).engine().delivered_watermark(), 50u);
}

// --- state-transfer round-trip vs the old map-based encoding ---

struct FlushRecord {
  NodeId origin = kNoNode;
  LocalSeq lsn = 0;
  GlobalSeq seq = 0;
  std::uint64_t app_msg = 0;
  std::uint32_t index = 0;
  std::uint32_t count = 1;
  Bytes payload;

  friend bool operator==(const FlushRecord&, const FlushRecord&) = default;
};

struct ParsedFlush {
  GlobalSeq watermark = 0;
  std::vector<FlushRecord> records;
  bool has_snapshot = false;
};

ParsedFlush parse_flush(const Bytes& blob) {
  ParsedFlush out;
  ByteReader r(blob);
  out.watermark = r.var();
  std::uint64_t count = r.var();
  for (std::uint64_t i = 0; i < count; ++i) {
    FlushRecord rec;
    rec.origin = r.u32();
    rec.lsn = r.var();
    rec.seq = r.var();
    rec.app_msg = r.var();
    rec.index = static_cast<std::uint32_t>(r.var());
    rec.count = static_cast<std::uint32_t>(r.var());
    rec.payload = r.bytes();
    out.records.push_back(std::move(rec));
  }
  out.has_snapshot = r.u8() != 0;
  return out;
}

/// The old (PR <= 3) encoder: records split into retained (seq <= watermark)
/// and pending maps, emitted retained-ascending then pending-ascending.
Bytes encode_old_style(const ParsedFlush& f) {
  std::map<GlobalSeq, const FlushRecord*> retained;
  std::map<GlobalSeq, const FlushRecord*> pending;
  for (const auto& rec : f.records) {
    (rec.seq <= f.watermark ? retained : pending)[rec.seq] = &rec;
  }
  ByteWriter w;
  w.var(f.watermark);
  w.var(f.records.size());
  auto put = [&w](const FlushRecord& r) {
    w.u32(r.origin);
    w.var(r.lsn);
    w.var(r.seq);
    w.var(r.app_msg);
    w.var(r.index);
    w.var(r.count);
    if (r.payload.empty()) {
      w.var(0);
    } else {
      w.bytes(r.payload);
    }
  };
  for (const auto& [seq, rec] : retained) put(*rec);
  for (const auto& [seq, rec] : pending) put(*rec);
  w.u8(0);
  return w.take();
}

TEST(SeqWindowEngine, FlushStateMatchesOldMapBasedEncodingByteForByte) {
  // Build up real retained state (huge gc_interval: nothing gets pruned),
  // then check the window's flush blob is byte-identical to re-encoding the
  // same records with the old retained-map/pending-map algorithm.
  ClusterConfig cfg = base_cfg(4, 1);
  cfg.group.engine.gc_interval = 1'000'000;
  cfg.group.engine.segment_size = 512;
  SimCluster c(cfg);
  for (int i = 0; i < 20; ++i) {
    for (NodeId s = 0; s < 4; ++s) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 700));
    }
  }
  c.sim().run();

  Bytes blob = c.node(2).engine().collect_flush_state(false);
  ParsedFlush parsed = parse_flush(blob);
  ASSERT_GT(parsed.records.size(), 0u) << "retention must hold records";
  ASSERT_EQ(parsed.watermark, 160u);  // 20 msgs x 4 senders x 2 segments
  EXPECT_EQ(encode_old_style(parsed), blob);

  // Ascending-seq order is what the old encoding guaranteed; check it
  // explicitly too so a failure pinpoints ordering vs field drift.
  for (std::size_t i = 1; i < parsed.records.size(); ++i) {
    EXPECT_LT(parsed.records[i - 1].seq, parsed.records[i].seq) << "at " << i;
  }
}

TEST(SeqWindowEngine, StagedRecoveryStateRoundTripsThroughFreshEngine) {
  // Serialize a loaded member, stage the blob into a fresh engine (as the
  // two-phase install does), and re-export: the record set must survive the
  // round trip exactly.
  ClusterConfig cfg = base_cfg(3, 1);
  cfg.group.engine.gc_interval = 1'000'000;
  SimCluster c(cfg);
  for (int i = 0; i < 15; ++i) {
    c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 1), 900));
  }
  c.sim().run();
  // Node 2 is not the stable-ack stop ((t + n - 1) % n = 0 here), so it
  // retains delivered records until a GC watermark arrives — which the huge
  // gc_interval withholds.
  Bytes blob = c.node(2).engine().collect_flush_state(false);
  ParsedFlush original = parse_flush(blob);
  ASSERT_GT(original.records.size(), 0u);

  SimWorld world(NetConfig{}, 2);
  Engine fresh(world.transport(0), EngineConfig{}, View{1, {0, 1}},
               [](const Delivery&) {});
  fresh.stage_recovery_states({blob});
  EXPECT_EQ(fresh.stored_records(), original.records.size());

  ParsedFlush restaged = parse_flush(fresh.collect_flush_state(false));
  EXPECT_EQ(restaged.watermark, 0u);  // the fresh engine delivered nothing
  ASSERT_EQ(restaged.records.size(), original.records.size());
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    EXPECT_EQ(restaged.records[i], original.records[i]) << "record " << i;
  }
}

}  // namespace
}  // namespace fsr
