// Exhaustive verification of the pure FSR routing rules (paper §4.1) by
// simulating every broadcast hop-by-hop over all (n, t, origin) and checking
// the delivery/stability conditions the protocol's uniformity rests on.
#include "ring/rules.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fsr::ring {
namespace {

TEST(RingRules, SuccPredWrap) {
  Topology topo{5, 1};
  EXPECT_EQ(topo.succ(0), 1u);
  EXPECT_EQ(topo.succ(4), 0u);
  EXPECT_EQ(topo.pred(0), 4u);
  EXPECT_EQ(topo.pred(3), 2u);
}

TEST(RingRules, Roles) {
  Topology topo{6, 2};
  EXPECT_TRUE(topo.is_leader(0));
  EXPECT_TRUE(topo.is_backup(1));
  EXPECT_TRUE(topo.is_backup(2));
  EXPECT_FALSE(topo.is_backup(3));
  EXPECT_TRUE(topo.is_standard(3));
  EXPECT_FALSE(topo.is_standard(0));
}

TEST(RingRules, EffectiveTClampsToRingSize) {
  EXPECT_EQ(effective_t(3, 10), 3u);
  EXPECT_EQ(effective_t(3, 3), 2u);
  EXPECT_EQ(effective_t(3, 1), 0u);
  EXPECT_EQ(effective_t(0, 5), 0u);
}

TEST(RingRules, SeqStopIsPredecessorOfOrigin) {
  Topology topo{7, 2};
  EXPECT_EQ(topo.seq_stop(4), 3u);
  EXPECT_EQ(topo.seq_stop(1), 0u);  // empty pass
  EXPECT_EQ(topo.seq_stop(0), 6u);  // leader origin: full pass
}

TEST(RingRules, SeqPassCoverage) {
  Topology topo{6, 1};
  // origin 4: pass covers 1..3
  EXPECT_FALSE(topo.seq_pass_covers(4, 0));
  EXPECT_TRUE(topo.seq_pass_covers(4, 1));
  EXPECT_TRUE(topo.seq_pass_covers(4, 3));
  EXPECT_FALSE(topo.seq_pass_covers(4, 4));
  EXPECT_FALSE(topo.seq_pass_covers(4, 5));
  // origin 0 (leader): covers everyone but the leader
  for (Position j = 1; j < 6; ++j) EXPECT_TRUE(topo.seq_pass_covers(0, j));
  EXPECT_FALSE(topo.seq_pass_covers(0, 0));
  // origin 1: empty pass
  for (Position j = 0; j < 6; ++j) EXPECT_FALSE(topo.seq_pass_covers(1, j));
}

TEST(RingRules, AckKindByOriginRole) {
  Topology topo{8, 3};
  // Standard origins: stop is a standard/backup >= t position -> stable ack.
  EXPECT_EQ(topo.ack_at_seq_stop(5), AckKind::kStable);
  EXPECT_EQ(topo.ack_at_seq_stop(4), AckKind::kStable);  // stop=3=t
  // Backup origins (1..3): stop < t -> pending ack.
  EXPECT_EQ(topo.ack_at_seq_stop(1), AckKind::kPending);
  EXPECT_EQ(topo.ack_at_seq_stop(3), AckKind::kPending);
  // Leader origin: stop = 7 >= t, stable.
  EXPECT_EQ(topo.ack_at_seq_stop(0), AckKind::kStable);
}

TEST(RingRules, NoAckNeededOnlyForLeaderOriginWithoutBackups) {
  Topology topo{5, 0};
  EXPECT_EQ(topo.ack_at_seq_stop(0), AckKind::kNone);
  EXPECT_EQ(topo.ack_at_seq_stop(1), AckKind::kStable);
  EXPECT_EQ(topo.ack_at_seq_stop(4), AckKind::kStable);
}

TEST(RingRules, AnalyticLatencyFormula) {
  Topology topo{10, 2};
  // L(i) = 2n + t - i - 1 (paper §4.3.1)
  EXPECT_EQ(topo.analytic_latency(3), 2 * 10 + 2 - 3 - 1u);
  EXPECT_EQ(topo.analytic_latency(9), 2 * 10 + 2 - 9 - 1u);
}

// ---------------------------------------------------------------------------
// Hop-by-hop walkthrough: simulate the three passes abstractly for every
// (n, t, origin) and verify the protocol-level guarantees:
//   1. the payload crosses each link exactly once (DATA + SEQ passes),
//   2. nobody delivers before the pair is stored at p_0..p_t (uniformity),
//   3. everybody delivers exactly once,
//   4. for standard origins the last delivery happens at round L(i).
// ---------------------------------------------------------------------------

struct WalkResult {
  std::vector<int> deliver_round;       // per position, -1 if never
  std::vector<int> stored_round;        // round the (m, seq) pair is stored
  std::vector<int> payload_link_count;  // payload transmissions per link i->i+1
  int rounds = 0;
};

WalkResult walk(std::uint32_t n, std::uint32_t t_raw, Position origin) {
  std::uint32_t t = effective_t(t_raw, n);
  Topology topo{n, t};
  WalkResult r;
  r.deliver_round.assign(n, -1);
  r.stored_round.assign(n, -1);
  r.payload_link_count.assign(n, 0);

  int round = 0;
  Position cur = origin;

  auto deliver = [&](Position p, int at) {
    EXPECT_EQ(r.deliver_round[p], -1) << "double delivery at position " << p;
    r.deliver_round[p] = at;
  };

  // DATA pass: origin -> leader. The origin "stores" the payload at round 0
  // (it knows its own message); intermediates store on receipt (no seq yet,
  // so stored_round tracks the *pair*, set during SEQ/ACK passes).
  while (cur != 0) {
    r.payload_link_count[cur]++;  // link cur -> succ(cur)
    cur = topo.succ(cur);
    ++round;
  }

  // Sequencing at the leader.
  r.stored_round[0] = round;
  if (topo.leader_delivers_at_sequencing()) deliver(0, round);

  // SEQ pass: leader -> seq_stop (carries payload + seq).
  Position stop = topo.seq_stop(origin);
  cur = 0;
  while (cur != stop) {
    r.payload_link_count[cur]++;
    cur = topo.succ(cur);
    ++round;
    r.stored_round[cur] = round;
    if (topo.deliver_on_seq(cur)) deliver(cur, round);
  }

  // ACK pass(es).
  AckKind kind = topo.ack_at_seq_stop(origin);
  if (kind == AckKind::kPending) {
    while (cur != topo.pending_ack_stop()) {
      cur = topo.succ(cur);
      ++round;
      if (r.stored_round[cur] == -1) r.stored_round[cur] = round;
    }
    // p_t converts to stable and delivers.
    deliver(cur, round);
    kind = AckKind::kStable;
  }
  if (kind == AckKind::kStable) {
    while (cur != topo.stable_ack_stop()) {
      cur = topo.succ(cur);
      ++round;
      if (r.stored_round[cur] == -1) r.stored_round[cur] = round;
      if (r.deliver_round[cur] == -1) deliver(cur, round);
    }
  }
  r.rounds = round;
  return r;
}

class RingWalkTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  std::uint32_t n() const { return static_cast<std::uint32_t>(std::get<0>(GetParam())); }
  std::uint32_t t() const {
    return effective_t(static_cast<std::uint32_t>(std::get<1>(GetParam())), n());
  }
};

TEST_P(RingWalkTest, AllOriginsDeliverEverywhereExactlyOnce) {
  auto n = this->n();
  auto t = this->t();
  for (Position origin = 0; origin < n; ++origin) {
    WalkResult r = walk(n, t, origin);
    for (Position p = 0; p < n; ++p) {
      EXPECT_NE(r.deliver_round[p], -1)
          << "n=" << n << " t=" << t << " origin=" << origin << " position " << p
          << " never delivers";
    }
  }
}

TEST_P(RingWalkTest, PayloadCrossesEachLinkExactlyOnce) {
  // The high-throughput claim (§4.1): "the actual message to be TO-broadcast
  // only goes around once".
  auto n = this->n();
  auto t = this->t();
  for (Position origin = 0; origin < n; ++origin) {
    WalkResult r = walk(n, t, origin);
    int total = 0;
    for (Position p = 0; p < n; ++p) {
      EXPECT_LE(r.payload_link_count[p], 1)
          << "payload crossed link " << p << " twice (origin " << origin << ")";
      total += r.payload_link_count[p];
    }
    EXPECT_EQ(total, static_cast<int>(n) - 1)
        << "payload should cross exactly n-1 links (origin " << origin << ")";
  }
}

TEST_P(RingWalkTest, NoDeliveryBeforeStoredAtLeaderAndAllBackups) {
  // Uniformity: when any process delivers, p_0..p_t already store the pair,
  // so it survives any t crashes.
  auto n = this->n();
  auto t = this->t();
  for (Position origin = 0; origin < n; ++origin) {
    WalkResult r = walk(n, t, origin);
    int first_delivery = r.rounds + 1;
    for (Position p = 0; p < n; ++p) {
      if (r.deliver_round[p] >= 0) first_delivery = std::min(first_delivery, r.deliver_round[p]);
    }
    for (Position b = 0; b <= t; ++b) {
      ASSERT_NE(r.stored_round[b], -1);
      EXPECT_LE(r.stored_round[b], first_delivery)
          << "n=" << n << " t=" << t << " origin=" << origin << ": backup " << b
          << " stores at " << r.stored_round[b] << " but first delivery is at "
          << first_delivery;
    }
  }
}

TEST_P(RingWalkTest, StandardOriginLatencyMatchesFormula) {
  auto n = this->n();
  auto t = this->t();
  for (Position origin = t + 1; origin < n; ++origin) {
    WalkResult r = walk(n, t, origin);
    int last = 0;
    for (Position p = 0; p < n; ++p) last = std::max(last, r.deliver_round[p]);
    EXPECT_EQ(last, static_cast<int>(Topology{n, t}.analytic_latency(origin)))
        << "n=" << n << " t=" << t << " origin=" << origin;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, RingWalkTest,
                         ::testing::Combine(::testing::Range(2, 13),
                                            ::testing::Range(0, 6)),
                         [](const auto& info) {
                           return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace fsr::ring
