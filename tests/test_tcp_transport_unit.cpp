// Unit-level tests of TcpTransport itself (below the protocol): framing
// across a real socket, timers, post/post_wait threading, watermark-based
// pacing, and peer-down reporting on connection loss.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "proto/codec.h"
#include "transport/tcp_transport.h"

namespace fsr {
namespace {

struct Pair {
  Pair() {
    TcpConfig a, b;
    a.self = 0;
    b.self = 1;
    a.peers = b.peers = {TcpPeer{0, "127.0.0.1", 0}, TcpPeer{1, "127.0.0.1", 0}};
    t0 = std::make_unique<TcpTransport>(a);
    t1 = std::make_unique<TcpTransport>(b);
    t0->bind();
    t1->bind();
    t0->set_peer_port(1, t1->bound_port());
    t1->set_peer_port(0, t0->bound_port());
  }
  std::unique_ptr<TcpTransport> t0, t1;
};

bool wait_for(const std::function<bool()>& cond, int ms = 10000) {
  for (int i = 0; i < ms / 5; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

TEST(TcpTransportUnit, FramesSurviveTheSocketIntact) {
  Pair p;
  std::atomic<int> received{0};
  Bytes big(200 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);
  std::atomic<bool> payload_ok{true};

  TransportHandlers h1;
  h1.on_frame = [&](const Frame& f) {
    for (const auto& m : f.msgs) {
      if (const auto* d = std::get_if<DataMsg>(&m)) {
        if (!d->payload || d->payload.size() != big.size() ||
            !std::equal(d->payload.begin(), d->payload.end(), big.begin())) {
          payload_ok = false;
        }
        ++received;
      }
    }
  };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();

  for (int i = 0; i < 5; ++i) {
    p.t0->post([&, i] {
      p.t0->io_role().assert_held();
      DataMsg m;
      m.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      m.payload = make_payload(big);
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(m));
      p.t0->send(std::move(f));
    });
  }
  EXPECT_TRUE(wait_for([&] { return received.load() == 5; }));
  EXPECT_TRUE(payload_ok.load());
}

TEST(TcpTransportUnit, ManySmallFramesKeepOrderPerSender) {
  Pair p;
  std::vector<LocalSeq> got;
  Mutex m;
  TransportHandlers h1;
  h1.on_frame = [&](const Frame& f) {
    MutexLock lock(m);
    for (const auto& msg : f.msgs) {
      if (const auto* d = std::get_if<DataMsg>(&msg)) got.push_back(d->id.lsn);
    }
  };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    for (int i = 0; i < 500; ++i) {
      DataMsg d;
      d.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(d));
      p.t0->send(std::move(f));
    }
  });
  EXPECT_TRUE(wait_for([&] {
    MutexLock lock(m);
    return got.size() == 500;
  }));
  MutexLock lock(m);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i + 1);
}

TEST(TcpTransportUnit, TimersFireAndCancelOnIoThread) {
  Pair p;
  p.t0->start();
  std::atomic<int> fired{0};
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    p.t0->set_timer(10 * kMillisecond, [&] { ++fired; });
    TimerId cancelled = p.t0->set_timer(10 * kMillisecond, [&] { fired += 100; });
    p.t0->cancel_timer(cancelled);
  });
  EXPECT_TRUE(wait_for([&] { return fired.load() > 0; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(fired.load(), 1);
}

TEST(TcpTransportUnit, PostWaitRunsOnIoThreadAndBlocks) {
  Pair p;
  p.t0->start();
  std::thread::id io_id{};
  p.t0->post_wait([&] { io_id = std::this_thread::get_id(); });
  EXPECT_NE(io_id, std::this_thread::get_id());
  EXPECT_NE(io_id, std::thread::id{});
}

TEST(TcpTransportUnit, PeerDownReportedOnConnectionLoss) {
  Pair p;
  std::atomic<bool> down{false};
  TransportHandlers h0;
  h0.on_peer_down = [&](NodeId peer) {
    if (peer == 1) down = true;
  };
  h0.on_frame = [](const Frame&) {};
  p.t0->set_handlers(std::move(h0));
  TransportHandlers h1;
  h1.on_frame = [](const Frame&) {};
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();
  // Establish a connection 0 -> 1 first.
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    Frame f;
    f.to = 1;
    f.msgs.push_back(Heartbeat{1});
    p.t0->send(std::move(f));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  p.t1->stop();  // crash-stop: sockets reset
  EXPECT_TRUE(wait_for([&] { return down.load(); }));
}

TEST(TcpTransportUnit, TxIdleReflectsWatermark) {
  // t1's I/O thread is deliberately NOT started: its listener's kernel
  // buffers fill and stop draining, so t0's outbox necessarily accumulates
  // past the watermark (starting a reader would race the writer and make
  // the assertion timing-dependent).
  Pair p;
  p.t0->start();
  bool was_idle = false;
  p.t0->post_wait([&] {
    p.t0->io_role().assert_held();
    was_idle = p.t0->tx_idle();
  });
  EXPECT_TRUE(was_idle);
  // Queue far past the watermark (and past any kernel socket buffer) in one
  // posted batch, observe not-idle.
  bool idle_after_burst = true;
  p.t0->post_wait([&] {
    p.t0->io_role().assert_held();
    for (int i = 0; i < 64; ++i) {
      DataMsg m;
      m.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      m.payload = make_payload(Bytes(256 * 1024, 0x7e));
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(m));
      p.t0->send(std::move(f));
    }
    idle_after_burst = p.t0->tx_idle();
  });
  EXPECT_FALSE(idle_after_burst);
}

TEST(TcpTransportUnit, TimerHeapFiresInDeadlineOrderAndCancelsPending) {
  Pair p;
  p.t0->start();
  Mutex m;
  std::vector<int> order;
  std::atomic<bool> done{false};
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    auto rec = [&](int k) {
      return [&, k] {
        MutexLock lock(m);
        order.push_back(k);
        if (k == 4) done = true;
      };
    };
    // Armed out of order; must fire in deadline order.
    p.t0->set_timer(80 * kMillisecond, rec(4));
    p.t0->set_timer(10 * kMillisecond, rec(1));
    TimerId pending = p.t0->set_timer(40 * kMillisecond, rec(99));
    p.t0->set_timer(60 * kMillisecond, rec(3));
    p.t0->set_timer(25 * kMillisecond, rec(2));
    p.t0->cancel_timer(pending);
    p.t0->cancel_timer(pending);   // double-cancel is a no-op
    p.t0->cancel_timer(TimerId{});  // invalid id is a no-op
  });
  EXPECT_TRUE(wait_for([&] { return done.load(); }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  MutexLock lock(m);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TcpTransportUnit, TimerCancelInsideCallbackAndRearm) {
  Pair p;
  p.t0->start();
  std::atomic<int> fired{0};
  std::atomic<int> rearmed{0};
  TimerId victim{};  // test-frame scope: the callbacks below outlive the post
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    // A firing callback cancels a later timer and arms a new one — both
    // mutate the heap while fire_due_timers is draining it. Cancel must win
    // even if a slow loop iteration made both timers due in the same batch.
    victim = p.t0->set_timer(60 * kMillisecond, [&] { fired += 100; });
    p.t0->set_timer(10 * kMillisecond, [&] {
      p.t0->io_role().assert_held();
      ++fired;
      p.t0->cancel_timer(victim);
      p.t0->set_timer(10 * kMillisecond, [&] { ++rearmed; });
    });
  });
  EXPECT_TRUE(wait_for([&] { return rearmed.load() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(rearmed.load(), 1);
}

TEST(TcpTransportUnit, PartialWritesResumeMidFrame) {
  // t1's I/O thread starts late: t0's frames (each far larger than a socket
  // buffer) necessarily stall mid-frame on EAGAIN and must resume exactly
  // where the short write left off, across many POLLOUT cycles.
  Pair p;
  constexpr int kFrames = 8;
  constexpr std::size_t kSize = 300 * 1024;
  Mutex m;
  std::vector<std::pair<LocalSeq, bool>> got;  // (lsn, content ok)
  TransportHandlers h1;
  h1.on_frame = [&](const Frame& f) {
    for (const auto& msg : f.msgs) {
      if (const auto* d = std::get_if<DataMsg>(&msg)) {
        bool ok = d->payload && d->payload.size() == kSize;
        if (ok) {
          for (std::size_t i = 0; i < kSize; ++i) {
            if (d->payload.data()[i] !=
                static_cast<std::uint8_t>(d->id.lsn * 131 + i * 31)) {
              ok = false;
              break;
            }
          }
        }
        MutexLock lock(m);
        got.emplace_back(d->id.lsn, ok);
      }
    }
  };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    for (int i = 0; i < kFrames; ++i) {
      auto lsn = static_cast<LocalSeq>(i + 1);
      Bytes payload(kSize);
      for (std::size_t j = 0; j < kSize; ++j) {
        payload[j] = static_cast<std::uint8_t>(lsn * 131 + j * 31);
      }
      DataMsg d;
      d.id = MsgId{0, lsn};
      d.payload = make_payload(std::move(payload));
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(d));
      p.t0->send(std::move(f));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  p.t1->start();
  EXPECT_TRUE(wait_for([&] {
    MutexLock lock(m);
    return got.size() == kFrames;
  }));
  MutexLock lock(m);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, i + 1);
    EXPECT_TRUE(got[i].second) << "frame " << i << " corrupted";
  }
}

TEST(TcpTransportUnit, FramesQueuedTogetherCoalesceIntoOneSyscall) {
  Pair p;
  std::atomic<int> received{0};
  TransportHandlers h1;
  h1.on_frame = [&](const Frame& f) {
    received += static_cast<int>(f.msgs.size());
  };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();
  constexpr int kFrames = 50;
  // All sends land in one posted closure, i.e. one poll-loop iteration:
  // the deferred flush must drain every frame (plus the connection hello)
  // with a single sendmsg.
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    for (int i = 0; i < kFrames; ++i) {
      DataMsg d;
      d.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(d));
      p.t0->send(std::move(f));
    }
  });
  EXPECT_TRUE(wait_for([&] { return received.load() == kFrames; }));
  TransportCounters c0;
  p.t0->post_wait([&] { c0 = p.t0->counters(); });
  EXPECT_EQ(c0.tx_frames, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(c0.tx_syscalls, 1u) << "batch should leave in one sendmsg";
  EXPECT_GE(c0.tx_max_batch, static_cast<std::uint64_t>(kFrames));
  TransportCounters c1;
  p.t1->post_wait([&] { c1 = p.t1->counters(); });
  EXPECT_EQ(c1.rx_frames, static_cast<std::uint64_t>(kFrames));
}

TEST(TcpTransportUnit, AliasedPayloadsSurviveReceiveBufferCompaction) {
  // Decoded payloads alias the transport's receive chunk. Holding them while
  // far more traffic flows forces the ChunkBuffer through many chunk swaps;
  // the retained views must keep their (retired) chunks alive and intact.
  Pair p;
  constexpr int kFrames = 40;
  constexpr std::size_t kSize = 32 * 1024;
  Mutex m;
  std::vector<Payload> kept;
  TransportHandlers h1;
  h1.on_frame = [&](const Frame& f) {
    for (const auto& msg : f.msgs) {
      if (const auto* d = std::get_if<DataMsg>(&msg)) {
        MutexLock lock(m);
        kept.push_back(d->payload);  // shares ownership of the rx chunk
      }
    }
  };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    for (int i = 0; i < kFrames; ++i) {
      auto lsn = static_cast<LocalSeq>(i + 1);
      Bytes payload(kSize);
      for (std::size_t j = 0; j < kSize; ++j) {
        payload[j] = static_cast<std::uint8_t>(lsn * 17 + j * 7);
      }
      DataMsg d;
      d.id = MsgId{0, lsn};
      d.payload = make_payload(std::move(payload));
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(d));
      p.t0->send(std::move(f));
    }
  });
  EXPECT_TRUE(wait_for([&] {
    MutexLock lock(m);
    return kept.size() == kFrames;
  }));
  // > 1.2 MiB flowed through 256 KiB receive chunks: every early payload now
  // references a chunk the buffer itself has long since replaced.
  MutexLock lock(m);
  for (std::size_t k = 0; k < kept.size(); ++k) {
    auto lsn = static_cast<LocalSeq>(k + 1);
    ASSERT_TRUE(kept[k]);
    ASSERT_EQ(kept[k].size(), kSize);
    for (std::size_t j = 0; j < kSize; ++j) {
      ASSERT_EQ(kept[k].data()[j], static_cast<std::uint8_t>(lsn * 17 + j * 7))
          << "payload " << k << " byte " << j;
    }
  }
  TransportCounters c1;
  p.t1->post_wait([&] { c1 = p.t1->counters(); });
  EXPECT_EQ(c1.rx_payload_aliases, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(c1.rx_payload_copies, 0u);
}

TEST(TcpTransportUnit, SlowReaderBackpressureFiresExactlyOneTxReady) {
  // t1 starts late, so t0's outbox fills far past tx_high_watermark. When
  // the reader appears and the outbox drains, on_tx_ready must fire exactly
  // once for the whole busy -> idle transition.
  Pair p;
  std::atomic<int> tx_ready{0};
  TransportHandlers h0;
  h0.on_frame = [](const Frame&) {};
  h0.on_tx_ready = [&] { ++tx_ready; };
  p.t0->set_handlers(std::move(h0));
  std::atomic<int> received{0};
  TransportHandlers h1;
  h1.on_frame = [&](const Frame&) { ++received; };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  constexpr int kFrames = 32;
  bool busy_after_burst = false;
  p.t0->post_wait([&] {
    p.t0->io_role().assert_held();
    for (int i = 0; i < kFrames; ++i) {
      DataMsg d;
      d.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      d.payload = make_payload(Bytes(256 * 1024, 0x42));
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(d));
      p.t0->send(std::move(f));
    }
    busy_after_burst = !p.t0->tx_idle();
  });
  EXPECT_TRUE(busy_after_burst);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(tx_ready.load(), 0);  // nothing drained yet
  p.t1->start();
  EXPECT_TRUE(wait_for([&] { return received.load() == kFrames; }));
  EXPECT_TRUE(wait_for([&] { return tx_ready.load() >= 1; }));
  bool idle = false;
  p.t0->post_wait([&] {
    p.t0->io_role().assert_held();
    idle = p.t0->tx_idle();
  });
  EXPECT_TRUE(idle);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(tx_ready.load(), 1);
}

TEST(TcpTransportUnit, LargePayloadsCrossTheStackWithoutCopies) {
  // The zero-copy contract, counter-asserted end to end: payloads above the
  // copy threshold are never copied between send() and the socket (they ride
  // the scatter-gather outbox by reference) nor between the socket and
  // on_frame (they alias the receive chunk).
  Pair p;
  std::atomic<int> received{0};
  TransportHandlers h1;
  h1.on_frame = [&](const Frame&) { ++received; };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();
  constexpr int kFrames = 100;
  p.t0->post([&] {
    p.t0->io_role().assert_held();
    for (int i = 0; i < kFrames; ++i) {
      DataMsg d;
      d.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      d.payload = make_payload(Bytes(1024, static_cast<std::uint8_t>(i)));
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(d));
      p.t0->send(std::move(f));
    }
  });
  EXPECT_TRUE(wait_for([&] { return received.load() == kFrames; }));
  TransportCounters c0;
  p.t0->post_wait([&] { c0 = p.t0->counters(); });
  EXPECT_EQ(c0.tx_payload_refs, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(c0.tx_payload_copies, 0u);
  TransportCounters c1;
  p.t1->post_wait([&] { c1 = p.t1->counters(); });
  EXPECT_EQ(c1.rx_payload_aliases, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(c1.rx_payload_copies, 0u);
}

// Regression for the stop()/post() shutdown race: callbacks posted while
// (or after) the transport stops drain on the posting thread, adopting the
// transport's I/O role under the drain mutex. Without that serialization,
// two drainers — or a drainer and stop()'s own teardown — would adopt the
// role concurrently and abort. Every callback must still run exactly once;
// under the tsan preset this also checks the handoff's memory ordering.
TEST(TcpTransportUnit, PostsRacingStopAllExecuteExactlyOnce) {
  Pair p;
  p.t0->start();
  std::atomic<int> ran{0};
  std::atomic<bool> go{false};
  constexpr int kPosters = 4;
  constexpr int kPostsEach = 200;
  std::vector<Thread> posters;
  posters.reserve(kPosters);
  for (int t = 0; t < kPosters; ++t) {
    posters.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPostsEach; ++i) {
        p.t0->post([&] {
          p.t0->io_role().assert_held();
          ran.fetch_add(1);
        });
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  p.t0->stop();  // races the posters: some posts land before, some after
  for (auto& t : posters) t.join();
  EXPECT_EQ(ran.load(), kPosters * kPostsEach);
}

}  // namespace
}  // namespace fsr
