// Unit-level tests of TcpTransport itself (below the protocol): framing
// across a real socket, timers, post/post_wait threading, watermark-based
// pacing, and peer-down reporting on connection loss.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "proto/codec.h"
#include "transport/tcp_transport.h"

namespace fsr {
namespace {

struct Pair {
  Pair() {
    TcpConfig a, b;
    a.self = 0;
    b.self = 1;
    a.peers = b.peers = {TcpPeer{0, "127.0.0.1", 0}, TcpPeer{1, "127.0.0.1", 0}};
    t0 = std::make_unique<TcpTransport>(a);
    t1 = std::make_unique<TcpTransport>(b);
    t0->bind();
    t1->bind();
    t0->set_peer_port(1, t1->bound_port());
    t1->set_peer_port(0, t0->bound_port());
  }
  std::unique_ptr<TcpTransport> t0, t1;
};

bool wait_for(const std::function<bool()>& cond, int ms = 10000) {
  for (int i = 0; i < ms / 5; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

TEST(TcpTransportUnit, FramesSurviveTheSocketIntact) {
  Pair p;
  std::atomic<int> received{0};
  Bytes big(200 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);
  std::atomic<bool> payload_ok{true};

  TransportHandlers h1;
  h1.on_frame = [&](const Frame& f) {
    for (const auto& m : f.msgs) {
      if (const auto* d = std::get_if<DataMsg>(&m)) {
        if (!d->payload || *d->payload != big) payload_ok = false;
        ++received;
      }
    }
  };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();

  for (int i = 0; i < 5; ++i) {
    p.t0->post([&, i] {
      DataMsg m;
      m.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      m.payload = make_payload(big);
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(m));
      p.t0->send(std::move(f));
    });
  }
  EXPECT_TRUE(wait_for([&] { return received.load() == 5; }));
  EXPECT_TRUE(payload_ok.load());
}

TEST(TcpTransportUnit, ManySmallFramesKeepOrderPerSender) {
  Pair p;
  std::vector<LocalSeq> got;
  std::mutex m;
  TransportHandlers h1;
  h1.on_frame = [&](const Frame& f) {
    std::lock_guard lock(m);
    for (const auto& msg : f.msgs) {
      if (const auto* d = std::get_if<DataMsg>(&msg)) got.push_back(d->id.lsn);
    }
  };
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();
  p.t0->post([&] {
    for (int i = 0; i < 500; ++i) {
      DataMsg d;
      d.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(d));
      p.t0->send(std::move(f));
    }
  });
  EXPECT_TRUE(wait_for([&] {
    std::lock_guard lock(m);
    return got.size() == 500;
  }));
  std::lock_guard lock(m);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i + 1);
}

TEST(TcpTransportUnit, TimersFireAndCancelOnIoThread) {
  Pair p;
  p.t0->start();
  std::atomic<int> fired{0};
  p.t0->post([&] {
    p.t0->set_timer(10 * kMillisecond, [&] { ++fired; });
    TimerId cancelled = p.t0->set_timer(10 * kMillisecond, [&] { fired += 100; });
    p.t0->cancel_timer(cancelled);
  });
  EXPECT_TRUE(wait_for([&] { return fired.load() > 0; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(fired.load(), 1);
}

TEST(TcpTransportUnit, PostWaitRunsOnIoThreadAndBlocks) {
  Pair p;
  p.t0->start();
  std::thread::id io_id{};
  p.t0->post_wait([&] { io_id = std::this_thread::get_id(); });
  EXPECT_NE(io_id, std::this_thread::get_id());
  EXPECT_NE(io_id, std::thread::id{});
}

TEST(TcpTransportUnit, PeerDownReportedOnConnectionLoss) {
  Pair p;
  std::atomic<bool> down{false};
  TransportHandlers h0;
  h0.on_peer_down = [&](NodeId peer) {
    if (peer == 1) down = true;
  };
  h0.on_frame = [](const Frame&) {};
  p.t0->set_handlers(std::move(h0));
  TransportHandlers h1;
  h1.on_frame = [](const Frame&) {};
  p.t1->set_handlers(std::move(h1));
  p.t0->start();
  p.t1->start();
  // Establish a connection 0 -> 1 first.
  p.t0->post([&] {
    Frame f;
    f.to = 1;
    f.msgs.push_back(Heartbeat{1});
    p.t0->send(std::move(f));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  p.t1->stop();  // crash-stop: sockets reset
  EXPECT_TRUE(wait_for([&] { return down.load(); }));
}

TEST(TcpTransportUnit, TxIdleReflectsWatermark) {
  // t1's I/O thread is deliberately NOT started: its listener's kernel
  // buffers fill and stop draining, so t0's outbox necessarily accumulates
  // past the watermark (starting a reader would race the writer and make
  // the assertion timing-dependent).
  Pair p;
  p.t0->start();
  bool was_idle = false;
  p.t0->post_wait([&] { was_idle = p.t0->tx_idle(); });
  EXPECT_TRUE(was_idle);
  // Queue far past the watermark (and past any kernel socket buffer) in one
  // posted batch, observe not-idle.
  bool idle_after_burst = true;
  p.t0->post_wait([&] {
    for (int i = 0; i < 64; ++i) {
      DataMsg m;
      m.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
      m.payload = make_payload(Bytes(256 * 1024, 0x7e));
      Frame f;
      f.to = 1;
      f.msgs.push_back(std::move(m));
      p.t0->send(std::move(f));
    }
    idle_after_burst = p.t0->tx_idle();
  });
  EXPECT_FALSE(idle_after_burst);
}

}  // namespace
}  // namespace fsr
