// The packet-level fixed-sequencer baseline: correctness (identical logs,
// completeness, segmentation) and its §2.1 performance signature — the
// sequencer's NIC fan-out caps goodput near wire/(n-1), unlike FSR.
#include <gtest/gtest.h>

#include "baselines/fixed_seq_cluster.h"
#include "harness/sim_cluster.h"

namespace fsr::baselines {
namespace {

FixedSeqConfig small_cfg() {
  FixedSeqConfig cfg;
  cfg.segment_size = 4096;
  cfg.window = 8;
  return cfg;
}

TEST(FixedSeqEngine, SingleBroadcastReachesAll) {
  FixedSeqCluster c(NetConfig{}, 4, small_cfg());
  c.broadcast(2, test_payload(2, 1, 1000));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
    EXPECT_EQ(c.log(n)[0].origin, 2u);
    EXPECT_EQ(c.log(n)[0].bytes, 1000u);
  }
}

TEST(FixedSeqEngine, SequencerOwnBroadcasts) {
  FixedSeqCluster c(NetConfig{}, 3, small_cfg());
  for (int i = 0; i < 5; ++i) c.broadcast(0, test_payload(0, static_cast<std::uint64_t>(i + 1), 800));
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(c.log(n).size(), 5u);
  EXPECT_EQ(c.check_logs_identical(), "");
}

TEST(FixedSeqEngine, ConcurrentSendersTotalOrder) {
  FixedSeqCluster c(NetConfig{}, 5, small_cfg());
  for (NodeId s = 0; s < 5; ++s) {
    for (int i = 0; i < 12; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 2000));
    }
  }
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(c.log(n).size(), 60u) << "node " << n;
  EXPECT_EQ(c.check_logs_identical(), "");
}

TEST(FixedSeqEngine, LargeMessageSegmentsAndReassembles) {
  FixedSeqCluster c(NetConfig{}, 3, small_cfg());
  c.broadcast(1, test_payload(1, 1, 100 * 1024));
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u);
    EXPECT_EQ(c.log(n)[0].bytes, 100u * 1024u);
  }
}

TEST(FixedSeqEngine, SequencerFanOutCapsThroughputUnlikeFsr) {
  // The comparison that motivates FSR: at n = 6, the fixed sequencer's NIC
  // must push 5 copies of every payload, capping goodput near wire/5,
  // while FSR stays at the ~79 Mb/s plateau.
  const std::size_t n = 6;
  const int msgs = 30;
  const std::size_t size = 100 * 1024;

  FixedSeqConfig fcfg;
  fcfg.segment_size = size;
  fcfg.window = 16;
  FixedSeqCluster fixed(NetConfig{}, n, fcfg);
  for (std::size_t s = 0; s < n; ++s) {
    for (int i = 0; i < msgs; ++i) {
      fixed.broadcast(static_cast<NodeId>(s),
                      test_payload(static_cast<NodeId>(s), static_cast<std::uint64_t>(i + 1), size));
    }
  }
  fixed.sim().run();
  EXPECT_EQ(fixed.check_logs_identical(), "");
  ASSERT_EQ(fixed.log(1).size(), n * msgs);
  double fixed_mbps = static_cast<double>(n * msgs * size) * 8.0 /
                      static_cast<double>(fixed.log(1).back().at) * 1000.0;

  ClusterConfig rcfg;
  rcfg.n = n;
  rcfg.group.engine.t = 1;
  rcfg.group.engine.segment_size = size;
  rcfg.group.engine.window = 16;
  SimCluster ring(rcfg);
  for (std::size_t s = 0; s < n; ++s) {
    for (int i = 0; i < msgs; ++i) {
      ring.broadcast(static_cast<NodeId>(s),
                     test_payload(static_cast<NodeId>(s), static_cast<std::uint64_t>(i + 1), size));
    }
  }
  ring.sim().run();
  ASSERT_EQ(ring.log(1).size(), n * msgs);
  double fsr_mbps = static_cast<double>(n * msgs * size) * 8.0 /
                    static_cast<double>(ring.log(1).back().at) * 1000.0;

  EXPECT_LT(fixed_mbps, 35.0);           // ~94/(n-1) plus processing
  EXPECT_GT(fsr_mbps, 70.0);             // the ring plateau
  EXPECT_GT(fsr_mbps, 2.5 * fixed_mbps); // the headline gap
}

}  // namespace
}  // namespace fsr::baselines
