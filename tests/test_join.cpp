// Group joins: a node outside the initial view is admitted through the
// flush protocol, starts delivering from the join point, and participates
// as a full ring member (including as a future leader).
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"

namespace fsr {
namespace {

ClusterConfig join_cluster(std::size_t n, std::size_t initial, std::uint32_t t) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.initial_members = initial;
  cfg.group.engine.t = t;
  cfg.group.engine.segment_size = 1024;
  return cfg;
}

TEST(Join, NodeJoinsAndDeliversFromJoinPoint) {
  SimCluster c(join_cluster(4, 3, 1));
  for (int i = 0; i < 5; ++i) c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 1), 800));
  c.sim().run();
  EXPECT_FALSE(c.node(3).in_group());

  c.node(3).request_join(0);
  c.sim().run();
  EXPECT_TRUE(c.node(3).in_group());
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.node(n).view().size(), 4u) << "node " << n;
    EXPECT_TRUE(c.node(n).view().contains(3));
  }

  // Joiner missed the pre-join messages but sees everything afterwards.
  EXPECT_TRUE(c.log(3).empty());
  for (int i = 0; i < 5; ++i) c.broadcast(2, test_payload(2, static_cast<std::uint64_t>(i + 1), 800));
  c.sim().run();
  EXPECT_EQ(c.log(3).size(), 5u);
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");
}

TEST(Join, JoinerIsAppendedAtRingTail) {
  SimCluster c(join_cluster(4, 3, 1));
  c.node(3).request_join(1);  // contact a non-coordinator: must be forwarded
  c.sim().run();
  EXPECT_EQ(c.node(0).view().members, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Join, JoinerCanBroadcastImmediatelyAfterJoin) {
  SimCluster c(join_cluster(4, 3, 1));
  c.node(3).request_join(0);
  c.sim().run();
  for (int i = 0; i < 5; ++i) c.broadcast(3, test_payload(3, static_cast<std::uint64_t>(i + 1), 500));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(c.log(n).size(), 5u) << "node " << n;
  EXPECT_EQ(c.check_all(), "");
}

TEST(Join, JoinDuringTraffic) {
  SimCluster c(join_cluster(5, 4, 1));
  for (int i = 0; i < 20; ++i) c.broadcast(2, test_payload(2, static_cast<std::uint64_t>(i + 1), 2000));
  c.sim().schedule(10 * kMillisecond, [&] { c.node(4).request_join(0); });
  c.sim().run();
  EXPECT_TRUE(c.node(4).in_group());
  // All existing members deliver everything; the joiner delivers a suffix.
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(c.log(n).size(), 20u) << "node " << n;
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");
  // The joiner's log is a contiguous suffix of node 0's log.
  const auto& full = c.log(0);
  const auto& joined = c.log(4);
  ASSERT_LE(joined.size(), full.size());
  std::size_t offset = full.size() - joined.size();
  for (std::size_t i = 0; i < joined.size(); ++i) {
    EXPECT_EQ(joined[i].origin, full[offset + i].origin);
    EXPECT_EQ(joined[i].app_msg, full[offset + i].app_msg);
  }
}

TEST(Join, TwoSequentialJoins) {
  SimCluster c(join_cluster(5, 3, 1));
  c.node(3).request_join(0);
  c.sim().run();
  c.node(4).request_join(3);  // contact the previous joiner
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(c.node(n).view().size(), 5u) << "node " << n;
  }
  for (int i = 0; i < 4; ++i) c.broadcast(4, test_payload(4, static_cast<std::uint64_t>(i + 1), 400));
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(c.log(n).size(), 4u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(Join, JoinerBecomesLeaderAfterCrashes) {
  SimCluster c(join_cluster(4, 3, 2));
  c.node(3).request_join(0);
  c.sim().run();
  // Kill the three original members one by one.
  c.crash(0);
  c.sim().run();
  c.crash(1);
  c.sim().run();
  c.crash(2);
  c.sim().run();
  EXPECT_EQ(c.node(3).view().leader(), 3u);
  EXPECT_EQ(c.node(3).view().size(), 1u);
  // A singleton group still delivers.
  c.broadcast(3, test_payload(3, 1, 100));
  c.sim().run();
  EXPECT_EQ(c.log(3).size(), 1u);
}

TEST(Join, GroupGrowsFromOneToFour) {
  SimCluster c(join_cluster(4, 1, 1));
  c.broadcast(0, test_payload(0, 1, 100));
  c.sim().run();
  for (NodeId j = 1; j < 4; ++j) {
    c.node(j).request_join(0);
    c.sim().run();
  }
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.node(n).view().size(), 4u);
  }
  for (NodeId s = 0; s < 4; ++s) {
    c.broadcast(s, test_payload(s, s == 0 ? 2 : 1, 300));
  }
  c.sim().run();
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");
  EXPECT_EQ(c.log(3).size(), 4u);
}

}  // namespace
}  // namespace fsr
