// Long-horizon soak: sustained mixed traffic with periodic leader rotation,
// one crash and one join spread over seconds of virtual time. Verifies the
// system neither wedges nor accumulates unbounded state, and that all
// safety invariants hold at the end.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "harness/sim_cluster.h"

namespace fsr {
namespace {

TEST(Soak, SustainedTrafficWithChurnStaysHealthyAndBounded) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.initial_members = 5;
  cfg.group.engine.t = 2;
  cfg.group.engine.segment_size = 4096;
  cfg.group.engine.window = 16;
  cfg.group.engine.gc_interval = 32;
  SimCluster c(cfg);

  Rng rng(424242);
  std::map<NodeId, std::uint64_t> sent;

  // ~2 virtual seconds of Poisson-ish traffic from the initial members.
  Time t = 0;
  while (t < 2 * kSecond) {
    t += static_cast<Time>(rng.exponential(2.0 * kMillisecond));
    auto s = static_cast<NodeId>(rng.below(5));
    auto app = ++sent[s];
    std::size_t size = 200 + rng.below(16000);
    c.sim().schedule_at(t, [&c, s, app, size] {
      if (c.alive(s) && c.node(s).in_group()) {
        c.broadcast(s, test_payload(s, app, size));
      }
    });
  }

  // Membership events spread through the run.
  c.sim().schedule_at(300 * kMillisecond, [&] { c.node(0).rotate_leader(); });
  c.sim().schedule_at(700 * kMillisecond, [&] { c.crash(3); });
  c.sim().schedule_at(1100 * kMillisecond, [&] { c.node(5).request_join(1); });
  c.sim().schedule_at(1500 * kMillisecond, [&] {
    NodeId coord = c.node(1).view().leader();
    if (c.alive(coord)) c.node(coord).rotate_leader();
  });

  c.sim().run();

  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");

  // All live members converged to one view and drained their queues.
  ViewId vid = 0;
  for (NodeId n = 0; n < 6; ++n) {
    if (!c.alive(n) || !c.node(n).in_group()) continue;
    if (vid == 0) vid = c.node(n).view().id;
    EXPECT_EQ(c.node(n).view().id, vid) << "node " << n;
    EXPECT_FALSE(c.node(n).flushing()) << "node " << n;
    EXPECT_EQ(c.node(n).engine().pending_own(), 0u) << "node " << n;
    EXPECT_EQ(c.node(n).engine().out_fifo_size(), 0u) << "node " << n;
    // Retention must be bounded (GC watermark keeps pruning).
    EXPECT_LT(c.node(n).engine().stored_records(), 200u) << "node " << n;
  }

  // Substantial work actually happened.
  std::uint64_t total_sent = 0;
  for (auto& [s, count] : sent) total_sent += count;
  EXPECT_GT(total_sent, 500u);
  EXPECT_GT(c.log(1).size(), 400u);

  // And the group still responds.
  NodeId probe = 1;
  std::size_t before = c.log(probe).size();
  c.broadcast(probe, test_payload(probe, ++sent[probe], 100));
  c.sim().run();
  EXPECT_GT(c.log(probe).size(), before);
}

}  // namespace
}  // namespace fsr
