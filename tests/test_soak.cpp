// Long-horizon soak: sustained mixed traffic with periodic leader rotation,
// one crash and one join spread over seconds of virtual time. Verifies the
// system neither wedges nor accumulates unbounded state, and that all
// safety invariants hold at the end.
#include <gtest/gtest.h>

#include "checker/trace_lint.h"
#include "common/rng.h"
#include "harness/sim_cluster.h"

namespace fsr {
namespace {

TEST(Soak, SustainedTrafficWithChurnStaysHealthyAndBounded) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.initial_members = 5;
  cfg.group.engine.t = 2;
  cfg.group.engine.segment_size = 4096;
  cfg.group.engine.window = 16;
  cfg.group.engine.gc_interval = 32;
  SimCluster c(cfg);

  Rng rng(424242);
  std::map<NodeId, std::uint64_t> sent;

  // ~2 virtual seconds of Poisson-ish traffic from the initial members.
  Time t = 0;
  while (t < 2 * kSecond) {
    t += static_cast<Time>(rng.exponential(2.0 * kMillisecond));
    auto s = static_cast<NodeId>(rng.below(5));
    auto app = ++sent[s];
    std::size_t size = 200 + rng.below(16000);
    c.sim().schedule_at(t, [&c, s, app, size] {
      if (c.alive(s) && c.node(s).in_group()) {
        c.broadcast(s, test_payload(s, app, size));
      }
    });
  }

  // Membership events spread through the run.
  c.sim().schedule_at(300 * kMillisecond, [&] { c.node(0).rotate_leader(); });
  c.sim().schedule_at(700 * kMillisecond, [&] { c.crash(3); });
  c.sim().schedule_at(1100 * kMillisecond, [&] { c.node(5).request_join(1); });
  c.sim().schedule_at(1500 * kMillisecond, [&] {
    NodeId coord = c.node(1).view().leader();
    if (c.alive(coord)) c.node(coord).rotate_leader();
  });

  // Continuous validation: the checker verifies every delivery online;
  // periodically assert that nothing has tripped mid-run rather than only
  // inspecting the final state.
  for (Time at = 250 * kMillisecond; at < 2 * kSecond; at += 250 * kMillisecond) {
    c.sim().schedule_at(at, [&c, at] {
      ASSERT_EQ(c.checker().online_violation(), "") << "at t=" << at;
    });
  }

  c.sim().run();

  // check_all()'s agreement pass assumes every correct node was a member
  // from the start; node 5 joined mid-run, so assert the join-compatible
  // subset: everything caught online, pairwise total order, integrity,
  // per-origin FIFO, and uniformity against the nodes that saw the crash.
  EXPECT_EQ(c.checker().online_violation(), "");
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_integrity(), "");
  EXPECT_EQ(c.checker().check_fifo(), "");
  EXPECT_EQ(c.check_uniformity({3}, {0, 1, 2, 4}), "");

  // Fairness lint over a correct node's delivery order: with five competing
  // Poisson senders the forward list must interleave them — no origin may
  // own a steady-state window outright.
  LintConfig lint;
  lint.fairness_window = 32;
  lint.fairness_max_share = 0.9;
  LintReport rep = lint_trace(c.checker().log(1), lint);
  EXPECT_TRUE(rep.ok()) << rep.summary();

  // All live members converged to one view and drained their queues.
  ViewId vid = 0;
  for (NodeId n = 0; n < 6; ++n) {
    if (!c.alive(n) || !c.node(n).in_group()) continue;
    if (vid == 0) vid = c.node(n).view().id;
    EXPECT_EQ(c.node(n).view().id, vid) << "node " << n;
    EXPECT_FALSE(c.node(n).flushing()) << "node " << n;
    EXPECT_EQ(c.node(n).engine().pending_own(), 0u) << "node " << n;
    EXPECT_EQ(c.node(n).engine().out_fifo_size(), 0u) << "node " << n;
    // Retention must be bounded (GC watermark keeps pruning).
    EXPECT_LT(c.node(n).engine().stored_records(), 200u) << "node " << n;
  }

  // Substantial work actually happened.
  std::uint64_t total_sent = 0;
  for (auto& [s, count] : sent) total_sent += count;
  EXPECT_GT(total_sent, 500u);
  EXPECT_GT(c.log(1).size(), 400u);

  // And the group still responds.
  NodeId probe = 1;
  std::size_t before = c.log(probe).size();
  c.broadcast(probe, test_payload(probe, ++sent[probe], 100));
  c.sim().run();
  EXPECT_GT(c.log(probe).size(), before);
}

}  // namespace
}  // namespace fsr
