// Adversarial decoding: the wire codec sits at a trust boundary (any TCP
// peer can send arbitrary bytes), so decode_frame must either return a
// well-formed Frame or throw CodecError — never crash, read out of bounds,
// or silently mis-decode. Feeds thousands of mutated frames (bit flips,
// truncations, oversized varints, garbage) through the decoder; runs clean
// under ASan/UBSan by construction of the sanitizer CI matrix.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/codec.h"

namespace fsr {
namespace {

// A frame exercising every message type and every field kind (varints,
// fixed-width ints, byte strings, node lists, nested payloads).
Frame corpus_frame() {
  DataMsg data;
  data.id = MsgId{3, 1000};
  data.view = 7;
  data.frag = FragInfo{12, 3, 9};
  data.payload = make_payload(Bytes(300, 0xa5));

  SeqMsg seq;
  seq.id = MsgId{1, 999};
  seq.seq = 123456789;
  seq.view = 7;
  seq.frag = FragInfo{5, 0, 1};
  seq.payload = make_payload(Bytes(64, 0x11));

  TokenMsg token;
  token.next_seq = 42;
  token.view = 7;
  token.idle_laps = 2;
  token.acked = {1, 2, 3, 70000};

  FlushReq flush;
  flush.proposed = 9;
  flush.members = {0, 1, 2, 3, 4};
  flush.want_snapshot = true;

  ViewInstall install;
  install.view = 9;
  install.members = {0, 1, 2};
  install.state_owners = {0, 1};
  install.states = {Bytes{1, 2, 3}, Bytes(100, 0xee)};

  FlushState fstate;
  fstate.proposed = 9;
  fstate.from = 2;
  fstate.state = Bytes(50, 0x42);

  Frame f;
  f.from = 1;
  f.to = 2;
  f.msgs = {data,
            seq,
            AckMsg{MsgId{2, 17}, 55, 7, true},
            GcMsg{1000, 7, 3},
            token,
            Heartbeat{7},
            flush,
            fstate,
            install,
            InstallAck{9, 1},
            CommitView{9},
            JoinReq{5},
            LeaveReq{4},
            CrashReport{3}};
  return f;
}

/// Decoding attempt that must never exhibit UB: either a Frame comes back
/// or CodecError is thrown. Anything else (other exceptions, crashes,
/// sanitizer reports) fails the test / the sanitizer job.
bool decodes(const Bytes& wire) {
  try {
    Frame f = decode_frame(wire);
    (void)f;
    return true;
  } catch (const CodecError&) {
    return false;
  }
}

TEST(CodecAdversarial, CorpusRoundtrips) {
  Bytes wire = encode_frame(corpus_frame());
  EXPECT_TRUE(decodes(wire));
  EXPECT_EQ(decode_frame(wire).msgs.size(), corpus_frame().msgs.size());
}

TEST(CodecAdversarial, EveryTruncationIsRejectedCleanly) {
  Bytes wire = encode_frame(corpus_frame());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decodes(cut)) << "truncation to " << len
                               << " bytes decoded as a full frame";
  }
}

TEST(CodecAdversarial, SingleBitFlipsNeverCrash) {
  Bytes wire = encode_frame(corpus_frame());
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = wire;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      decodes(mutated);  // must not crash / trip a sanitizer
    }
  }
}

TEST(CodecAdversarial, RandomMutationsNeverCrash) {
  Bytes wire = encode_frame(corpus_frame());
  Rng rng(20260806);
  for (int round = 0; round < 2000; ++round) {
    Bytes mutated = wire;
    int edits = 1 + static_cast<int>(rng.below(8));
    for (int e = 0; e < edits; ++e) {
      switch (rng.below(3)) {
        case 0:  // flip a random byte
          mutated[rng.below(mutated.size())] = static_cast<std::uint8_t>(rng.next());
          break;
        case 1:  // truncate
          mutated.resize(rng.below(mutated.size() + 1));
          break;
        default:  // splice random garbage
          if (!mutated.empty()) {
            std::size_t at = rng.below(mutated.size());
            std::size_t len = rng.below(16);
            for (std::size_t i = 0; i < len && at + i < mutated.size(); ++i) {
              mutated[at + i] = static_cast<std::uint8_t>(rng.next());
            }
          }
          break;
      }
      if (mutated.empty()) break;
    }
    decodes(mutated);
  }
}

TEST(CodecAdversarial, PureGarbageNeverCrashes) {
  Rng rng(424242);
  for (int round = 0; round < 2000; ++round) {
    Bytes garbage(rng.below(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    decodes(garbage);
  }
}

TEST(CodecAdversarial, OversizedVarintIsRejected) {
  // 10 continuation bytes: the value needs more than 64 bits.
  ByteWriter w;
  w.u32(1);  // from
  w.u32(2);  // to
  for (int i = 0; i < 10; ++i) w.u8(0xff);
  w.u8(0x7f);
  EXPECT_FALSE(decodes(w.take()));

  // Exactly 10 bytes but bits above 63 set: aliasing must be rejected, not
  // silently truncated.
  ByteWriter w2;
  w2.u32(1);
  w2.u32(2);
  for (int i = 0; i < 9; ++i) w2.u8(0x80);
  w2.u8(0x02);  // would be bit 64
  EXPECT_FALSE(decodes(w2.take()));
}

TEST(CodecAdversarial, MaximalVarintStillDecodes) {
  ByteWriter w;
  w.var(~0ULL);
  Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(r.var(), ~0ULL);
}

TEST(CodecAdversarial, HugeClaimedListsAreRejected) {
  // A TOKEN whose ack list claims 2^40 entries in a tiny buffer.
  ByteWriter w;
  w.u32(0);
  w.u32(1);
  w.var(0);  // group
  w.var(1);  // one message
  w.u8(12);  // Tag::kToken
  w.var(1);  // next_seq
  w.var(1);  // view
  w.var(0);  // idle_laps
  w.var(1ULL << 40);
  EXPECT_FALSE(decodes(w.take()));
}

TEST(CodecAdversarial, BadFragmentHeadersAreRejected) {
  auto data_frame_with_frag = [](std::uint64_t index, std::uint64_t count) {
    ByteWriter w;
    w.u32(0);
    w.u32(1);
    w.var(0);   // group
    w.var(1);   // one message
    w.u8(1);    // Tag::kData
    w.u32(3);   // id.origin
    w.var(10);  // id.lsn
    w.var(1);   // view
    w.var(1);   // frag.app_msg
    w.var(index);
    w.var(count);
    w.var(0);  // empty payload
    return w.take();
  };
  EXPECT_TRUE(decodes(data_frame_with_frag(0, 1)));
  EXPECT_FALSE(decodes(data_frame_with_frag(0, 0)));   // zero segments
  EXPECT_FALSE(decodes(data_frame_with_frag(5, 5)));   // index past count
  EXPECT_FALSE(decodes(data_frame_with_frag(0, 1ULL << 32)));  // absurd count
}

TEST(CodecAdversarial, TrailingBytesAreRejected) {
  Bytes wire = encode_frame(corpus_frame());
  wire.push_back(0x00);
  EXPECT_FALSE(decodes(wire));
}

}  // namespace
}  // namespace fsr
