// Unit tests for the common utilities: statistics, RNG determinism, views,
// payload helpers, and identifier types.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "fsr/view.h"
#include "harness/sim_cluster.h"

namespace fsr {
namespace {

TEST(Stats, AccumulatorMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);  // classic textbook dataset
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Stats, AccumulatorEmpty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
  EXPECT_EQ(s.count(), 100u);
}

TEST(Stats, SamplesInterleavedAddAndQuery) {
  Samples s;
  s.add(3);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(2);  // add after a query must re-sort
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(jain_fairness({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({4, 0, 0, 0}), 0.25);  // 1/n
  EXPECT_NEAR(jain_fairness({2, 1}), 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(Rng, BetweenIsInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.between(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo = saw_lo || v == 2;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(View, PositionLookup) {
  View v{3, {7, 2, 9}};
  EXPECT_EQ(v.position_of(7), Position{0});
  EXPECT_EQ(v.position_of(9), Position{2});
  EXPECT_FALSE(v.position_of(4).has_value());
  EXPECT_EQ(v.leader(), 7u);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.contains(2));
  EXPECT_FALSE(v.contains(3));
  EXPECT_EQ(v.at(4), 2u);  // wraps
}

TEST(View, Equality) {
  View a{1, {0, 1}}, b{1, {0, 1}}, c{1, {1, 0}}, d{2, {0, 1}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(View, ToString) {
  View v{5, {3, 1}};
  EXPECT_EQ(to_string(v), "view 5 {3,1}");
}

TEST(MsgIdType, OrderingAndHash) {
  MsgId a{1, 5}, b{1, 6}, c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (MsgId{1, 5}));
  std::hash<MsgId> h;
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(to_string(a), "m(1,5)");
}

TEST(TestPayload, DeterministicAndDistinct) {
  Bytes a = test_payload(1, 2, 100);
  Bytes b = test_payload(1, 2, 100);
  Bytes c = test_payload(1, 3, 100);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(hash_bytes(a), hash_bytes(b));
  EXPECT_NE(hash_bytes(a), hash_bytes(c));
}

TEST(SimTransportFd, CrashNotifiesSurvivorsAfterDetectionDelay) {
  SimWorld world(NetConfig{}, 3, /*fd_detection_delay=*/5 * kMillisecond);
  std::vector<std::pair<NodeId, Time>> events;
  for (NodeId n = 0; n < 3; ++n) {
    TransportHandlers h;
    h.on_peer_down = [&events, n, &world](NodeId dead) {
      events.push_back({dead, world.sim().now()});
      (void)n;
    };
    world.transport(n).set_handlers(std::move(h));
  }
  world.sim().run_until(kMillisecond);
  world.crash(1);
  world.sim().run();
  // Both survivors (not the crashed node) learn at +5 ms.
  ASSERT_EQ(events.size(), 2u);
  for (const auto& [dead, at] : events) {
    EXPECT_EQ(dead, 1u);
    EXPECT_EQ(at, kMillisecond + 5 * kMillisecond);
  }
}

TEST(SimTransportFd, DoubleCrashIsIdempotent) {
  SimWorld world(NetConfig{}, 2, kMillisecond);
  int notifications = 0;
  TransportHandlers h;
  h.on_peer_down = [&](NodeId) { ++notifications; };
  world.transport(0).set_handlers(std::move(h));
  world.crash(1);
  world.crash(1);
  world.sim().run();
  EXPECT_EQ(notifications, 1);
}

}  // namespace
}  // namespace fsr
