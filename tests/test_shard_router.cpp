// Sharded multi-ring scale-out: the consistent-hash shard map, the router's
// key extraction and fan-out rules, cross-shard batch splitting with
// exactly-once execution per shard (including a shard sequencer crashing
// mid-batch), and the same properties end to end over real TCP.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "common/sync.h"
#include "gateway/client_driver.h"
#include "gateway/shard_map.h"
#include "gateway/shard_router.h"
#include "gateway/sim_gateway.h"
#include "gateway/tcp_gateway.h"
#include "proto/client_codec.h"

namespace fsr {
namespace {

std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

std::span<const std::uint8_t> key_span(const std::string& k) {
  return {reinterpret_cast<const std::uint8_t*>(k.data()), k.size()};
}

ClientRequest make_request(std::uint64_t client, std::uint64_t seq,
                           const Bytes& command) {
  ClientRequest req;
  req.client_id = client;
  req.session_seq = seq;
  req.envelope = make_payload(encode_envelope(client, seq, command));
  req.command = parse_envelope(req.envelope)->command;
  return req;
}

/// A key that ShardMap(shards) places in `want`, by brute force over a
/// deterministic candidate sequence.
std::string key_in_shard(const ShardMap& map, GroupId want,
                         const std::string& prefix = "k") {
  for (int i = 0; i < 4096; ++i) {
    std::string cand = prefix + std::to_string(i);
    if (map.shard_for_key(key_span(cand)) == want) return cand;
  }
  ADD_FAILURE() << "no key found for shard " << want;
  return prefix;
}

// ------------------------------------------------------------- shard map ---

TEST(ShardMap, DeterministicAcrossInstancesAndCoversAllShards) {
  // Routing must be a pure function of (shard count, key): two independently
  // constructed maps — one per replica in real deployments — agree on every
  // key, and with enough keys every shard owns some of the keyspace.
  ShardMap a(4), b(4);
  std::set<GroupId> seen;
  for (int i = 0; i < 2000; ++i) {
    std::string k = "key-" + std::to_string(i);
    GroupId g = a.shard_for_key(key_span(k));
    EXPECT_EQ(g, b.shard_for_key(key_span(k))) << k;
    EXPECT_LT(g, 4u);
    seen.insert(g);
  }
  EXPECT_EQ(seen.size(), 4u) << "some shard owns none of 2000 keys";
}

TEST(ShardMap, SingleShardMapsEverythingToZero) {
  ShardMap m(1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(m.shard_for_key(key_span("x" + std::to_string(i))), 0u);
  }
  EXPECT_EQ(m.shard_for_key({}), 0u);
}

TEST(ShardMap, DistributionIsRoughlyBalanced) {
  ShardMap m(4);
  std::array<std::size_t, 4> counts{};
  constexpr int kKeys = 8000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[m.shard_for_key(key_span("sess" + std::to_string(i)))];
  }
  for (std::size_t c : counts) {
    // Consistent hashing with 32 points per shard: expect each shard within
    // a loose factor of fair share (kKeys/4 = 2000).
    EXPECT_GT(c, kKeys / 16) << "severely underloaded shard";
    EXPECT_LT(c, kKeys / 2) << "severely overloaded shard";
  }
}

TEST(ShardRouter, KeyExtraction) {
  // Commands route by the first length-prefixed field after the opcode;
  // queries by their leading key. Malformed bytes yield an empty span.
  Bytes put = KvStore::encode_put("alpha", "v");
  Bytes cas = KvStore::encode_cas("beta", "x", "y");
  Bytes get = KvStore::encode_get("gamma");
  auto as_str = [](std::span<const std::uint8_t> s) {
    return std::string(s.begin(), s.end());
  };
  EXPECT_EQ(as_str(ShardRouter::command_key(put)), "alpha");
  EXPECT_EQ(as_str(ShardRouter::command_key(cas)), "beta");
  EXPECT_EQ(as_str(ShardRouter::query_key(get)), "gamma");
  EXPECT_TRUE(ShardRouter::command_key({}).empty());
  Bytes truncated = {0x01, 0x20};  // claims a 32-byte key, has none
  EXPECT_TRUE(ShardRouter::command_key(truncated).empty());
  EXPECT_TRUE(ShardRouter::query_key(truncated.data() == nullptr
                                         ? std::span<const std::uint8_t>{}
                                         : std::span<const std::uint8_t>(
                                               truncated.data(), 1))
                  .empty());
}

// ------------------------------------------------- sim: routing & batches ---

struct ShardedFixture {
  explicit ShardedFixture(GroupId shards, std::size_t n = 3,
                          GatewayConfig gw = {}) {
    SimGatewayConfig cfg;
    cfg.cluster.n = n;
    cfg.gateway = gw;
    cfg.shards = shards;
    gc = std::make_unique<SimGatewayCluster>(cfg);
  }
  std::unique_ptr<SimGatewayCluster> gc;
};

// One drain scope spanning shards: the router must split the burst into one
// coalesced sub-batch per touched shard, and every command must execute
// exactly once in exactly one shard.
TEST(ShardRouterSim, CrossShardDrainSplitsIntoPerShardBatches) {
  ShardedFixture f(4);
  ShardRouter& rt = f.gc->router(0);
  ThreadRoleRegion role(rt.role());

  std::vector<ClientReply> replies;
  auto send = [&](const ClientReply& r) { replies.push_back(r); };

  // One key per shard, three commands each, all in one drain scope.
  std::vector<std::string> keys;
  for (GroupId g = 0; g < 4; ++g) keys.push_back(key_in_shard(rt.map(), g));
  rt.begin_drain();
  std::uint64_t seq = 0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& k : keys) {
      rt.on_request(
          make_request(9, ++seq, KvStore::encode_put(k, std::to_string(round))),
          send);
    }
  }
  rt.end_drain();
  f.gc->sim().run();

  ASSERT_EQ(replies.size(), 12u);
  for (const auto& r : replies) {
    EXPECT_EQ(r.status, ClientStatus::kOk);
    EXPECT_EQ(str_of(Bytes(r.reply.begin(), r.reply.end())), "OK");
  }
  // Every shard got its slice of the burst, split into its own batch.
  for (GroupId g = 0; g < 4; ++g) {
    EXPECT_EQ(rt.routed_to(g), 3u) << "shard " << g;
    Gateway& gw = f.gc->gateway(0, g);
    ThreadRoleRegion gw_role(gw.role());
    EXPECT_GE(gw.counters().coalesce_flushes, 1u) << "shard " << g;
    EXPECT_EQ(gw.counters().admitted, 3u) << "shard " << g;
    EXPECT_LT(gw.counters().coalesce_flushes, 3u)
        << "shard " << g << ": drain burst never shared a batch";
  }
  EXPECT_EQ(rt.router_counters().requests_routed, 12u);
  EXPECT_EQ(rt.router_counters().malformed_keys, 0u);
  // Exactly-once per shard, replicated everywhere: 12 commands x 3 nodes.
  GatewayCounters total = f.gc->gateway_counters();
  EXPECT_EQ(total.commands_applied, 36u);
  EXPECT_EQ(total.duplicate_applies_suppressed, 0u);
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
}

TEST(ShardRouterSim, MergedHelloAckReportsMinAcrossShards) {
  ShardedFixture f(2);
  ShardRouter& rt = f.gc->router(0);
  ThreadRoleRegion role(rt.role());
  std::vector<ClientReply> replies;
  auto send = [&](const ClientReply& r) { replies.push_back(r); };

  // Seqs 1..3 land in shard A, seq 4 in shard B: the shards' last_executed
  // horizons diverge (3 vs 4 is impossible — B executes only seq 4, so its
  // horizon is 4, A's is 3; the min is what a resuming client may rely on).
  std::string ka = key_in_shard(rt.map(), 0, "a");
  std::string kb = key_in_shard(rt.map(), 1, "b");
  rt.begin_drain();
  rt.on_request(make_request(7, 1, KvStore::encode_put(ka, "1")), send);
  rt.on_request(make_request(7, 2, KvStore::encode_put(ka, "2")), send);
  rt.on_request(make_request(7, 3, KvStore::encode_put(ka, "3")), send);
  rt.on_request(make_request(7, 4, KvStore::encode_put(kb, "4")), send);
  rt.end_drain();
  f.gc->sim().run();
  ASSERT_EQ(replies.size(), 4u);
  replies.clear();

  {
    Gateway& ga = f.gc->gateway(0, 0);
    ThreadRoleRegion ra(ga.role());
    EXPECT_EQ(ga.last_executed(7), 3u);
  }
  {
    Gateway& gb = f.gc->gateway(0, 1);
    ThreadRoleRegion rb(gb.role());
    EXPECT_EQ(gb.last_executed(7), 4u);
  }
  ClientHello hello;
  hello.client_id = 7;
  rt.on_hello(hello, send);
  ASSERT_EQ(replies.size(), 1u) << "exactly one merged ack";
  EXPECT_EQ(replies[0].status, ClientStatus::kOk);
  EXPECT_EQ(replies[0].session_seq, 3u) << "min over shards, not max";
  EXPECT_EQ(rt.last_executed(7), 3u);

  // Replaying from min+1 is safe: seq 4 answers as a duplicate from shard
  // B's reply cache instead of executing twice.
  rt.on_request(make_request(7, 4, KvStore::encode_put(kb, "4")), send);
  f.gc->sim().run();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1].status, ClientStatus::kOk);
  EXPECT_TRUE(replies[1].duplicate);
  EXPECT_EQ(f.gc->gateway_counters().duplicate_applies_suppressed, 0u);
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
}

// A closed-loop client whose chained-CAS traffic spans both shards: any
// double or dropped execution surfaces as failed_cas or a broken chain.
TEST(ShardRouterSim, ClosedLoopClientAcrossShardsExactlyOnce) {
  ShardedFixture f(2);
  const ShardMap map(2);
  std::string ka = key_in_shard(map, 0, "a");
  std::string kb = key_in_shard(map, 1, "b");

  SimClient::Options opt;
  opt.client_id = 5;
  opt.replica = 1;
  SimClient client(*f.gc, opt);
  client.submit(KvStore::encode_put(ka, "0"));
  client.submit(KvStore::encode_put(kb, "0"));
  for (int i = 0; i < 6; ++i) {
    client.submit(
        KvStore::encode_cas(ka, std::to_string(i), std::to_string(i + 1)));
    client.submit(
        KvStore::encode_cas(kb, std::to_string(i), std::to_string(i + 1)));
  }
  f.gc->sim().run();

  ASSERT_TRUE(client.idle());
  ASSERT_EQ(client.completed().size(), 14u);
  for (const auto& d : client.completed()) {
    EXPECT_EQ(d.status, ClientStatus::kOk);
    EXPECT_EQ(str_of(d.reply), "OK") << "seq " << d.seq;
  }
  for (std::size_t i = 0; i < f.gc->size(); ++i) {
    auto id = static_cast<NodeId>(i);
    EXPECT_EQ(f.gc->store(id).get(ka), "6");
    EXPECT_EQ(f.gc->store(id).get(kb), "6");
    EXPECT_EQ(f.gc->store(id).failed_cas(), 0u);
  }
  // Both shards carried traffic and each executed its slice exactly once.
  EXPECT_GT(f.gc->gateway_counters(0).commands_applied, 0u);
  EXPECT_GT(f.gc->gateway_counters(1).commands_applied, 0u);
  EXPECT_EQ(f.gc->gateway_counters().commands_applied, 14u * 3);
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
}

// Coalesced cross-shard traffic in flight when ONE shard's sequencer dies
// (rotated initial rings put shard 0's sequencer on node 0, shard 1's on
// node 1). The batch or its retries must execute every command exactly once
// per shard, on every survivor.
TEST(ShardRouterSim, ShardSequencerCrashMidBatchExactlyOnce) {
  ShardedFixture f(2, /*n=*/4);
  const ShardMap map(2);
  std::vector<std::unique_ptr<SimClient>> clients;
  for (int c = 0; c < 6; ++c) {
    SimClient::Options opt;
    opt.client_id = 300 + c;
    opt.replica = 2;  // the gateway node survives; only shard 0's sequencer dies
    opt.retry_timeout = 300 * kMillisecond;
    clients.push_back(std::make_unique<SimClient>(*f.gc, opt));
    // Even clients chain in shard 0, odd in shard 1 — both rings carry load.
    const std::string key =
        key_in_shard(map, c % 2, "c" + std::to_string(c) + "-");
    clients.back()->submit(KvStore::encode_put(key, "0"));
    for (int i = 0; i < 7; ++i) {
      clients.back()->submit(
          KvStore::encode_cas(key, std::to_string(i), std::to_string(i + 1)));
    }
  }
  std::size_t done = 0;
  while (done < 6 && !f.gc->sim().empty()) {
    f.gc->sim().run_steps(40);
    done = 0;
    for (auto& cl : clients) done += cl->completed().size();
  }
  ASSERT_LT(done, 48u) << "crash must land mid-run; slow the warmup loop";
  f.gc->crash(0);  // shard 0's sequencer (and a shard-1 follower)
  f.gc->sim().run();

  for (auto& cl : clients) {
    ASSERT_TRUE(cl->idle());
    ASSERT_EQ(cl->completed().size(), 8u);
    for (const auto& d : cl->completed()) {
      EXPECT_EQ(d.status, ClientStatus::kOk);
    }
  }
  for (NodeId id = 1; id < 4; ++id) {
    EXPECT_EQ(f.gc->store(id).failed_cas(), 0u) << "node " << int(id);
  }
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
}

// -------------------------------------------------------------- real TCP ---

bool sharded_fingerprints_converge(TcpGatewayCluster& gc, Time timeout) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
  for (;;) {
    auto fps = gc.fingerprints();
    bool equal = !fps.empty();
    for (std::uint64_t fp : fps) equal = equal && fp == fps[0];
    if (equal) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// The multiplexed pipelined driver against a 2-shard cluster: the driver's
// keyspace spans shards, so coalesced client frames split into per-shard
// sub-batches on every replica; every request completes exactly once.
TEST(ShardRouterTcp, ShardedClusterEndToEndExactlyOnce) {
  TcpGatewayClusterConfig cfg;
  cfg.shards = 2;
  TcpGatewayCluster gc(cfg);
  DriverOptions opt;
  opt.endpoints = gc.endpoints();
  opt.clients = 32;
  opt.requests_per_client = 20;
  opt.connections = 4;
  opt.pipeline = 4;
  opt.value_bytes = 32;

  DriverReport r = run_client_driver(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.requests, 32u * 20u);

  ASSERT_TRUE(sharded_fingerprints_converge(gc, 10 * kSecond));
  auto total = gc.gateway_counters();
  EXPECT_EQ(total.commands_applied, 32u * 20u * 3);
  // Both ordering domains demonstrably carried traffic.
  EXPECT_GT(gc.gateway_counters(0).commands_applied, 0u);
  EXPECT_GT(gc.gateway_counters(1).commands_applied, 0u);
  EXPECT_GE(total.coalesced_envelopes, 32u * 20u);
  EXPECT_EQ(gc.check_invariants(), "");
}

// One session's chained CAS across both shards over sockets while shard 0's
// sequencer (also the session's replica) crashes mid-stream: the client
// fails over, resumes from the merged hello ack, and the chains stay
// unbroken on the survivors.
TEST(ShardRouterTcp, ShardSequencerCrashMidStreamExactlyOnce) {
  TcpGatewayClusterConfig cfg;
  cfg.n = 3;
  cfg.shards = 2;
  TcpGatewayCluster gc(cfg);
  const ShardMap map(2);
  const std::string ka = key_in_shard(map, 0, "a");
  const std::string kb = key_in_shard(map, 1, "b");

  GatewayClient::Options opt;
  opt.client_id = 41;
  opt.endpoints = gc.endpoints();
  opt.start_index = 0;  // owned by the replica we will crash
  opt.recv_timeout = 500 * kMillisecond;
  GatewayClient client(opt);
  ASSERT_TRUE(client.call(KvStore::encode_put(ka, "0")).ok);
  ASSERT_TRUE(client.call(KvStore::encode_put(kb, "0")).ok);

  const int kSteps = 120;  // per key
  std::atomic<int> progress{0};
  Thread chain([&] {
    for (int i = 0; i < kSteps; ++i) {
      for (const std::string& k : {ka, kb}) {
        auto r = client.call(
            KvStore::encode_cas(k, std::to_string(i), std::to_string(i + 1)));
        ASSERT_TRUE(r.ok) << k << " cas " << i;
        ASSERT_EQ(str_of(r.reply), "OK") << k << " cas " << i;
      }
      progress.store(i + 1);
    }
  });
  while (progress.load() < kSteps / 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gc.crash(0);
  chain.join();

  EXPECT_GE(client.reconnects(), 1u) << "client must have failed over";
  ASSERT_TRUE(sharded_fingerprints_converge(gc, 10 * kSecond));
  EXPECT_EQ(gc.total_failed_cas(), 0u);
  for (NodeId id = 1; id < 3; ++id) {
    EXPECT_EQ(gc.store(id).get(ka), std::to_string(kSteps)) << "node " << int(id);
    EXPECT_EQ(gc.store(id).get(kb), std::to_string(kSteps)) << "node " << int(id);
  }
  EXPECT_EQ(gc.check_invariants(), "");
}

}  // namespace
}  // namespace fsr
