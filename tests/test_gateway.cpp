// The client gateway: wire codec hardening, exactly-once session semantics
// (including retries redirected to a different replica across a sequencer
// crash), response routing, and admission control that backpressures
// explicitly instead of dropping or OOMing.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>

#include <chrono>
#include <filesystem>
#include <thread>

#include "common/sync.h"
#include "gateway/client_driver.h"
#include "gateway/sim_gateway.h"
#include "proto/client_codec.h"

namespace fsr {
namespace {

Bytes bytes_of(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

ClientRequest make_request(std::uint64_t client, std::uint64_t seq,
                           const Bytes& command) {
  ClientRequest req;
  req.client_id = client;
  req.session_seq = seq;
  req.envelope = make_payload(encode_envelope(client, seq, command));
  req.command = parse_envelope(req.envelope)->command;
  return req;
}

// ---------------------------------------------------------------- codec ---

TEST(ClientCodec, FrameRoundtrip) {
  ClientFrame frame;
  ClientHello hello;
  hello.client_id = 42;
  frame.msgs.emplace_back(hello);
  frame.msgs.emplace_back(make_request(42, 7, bytes_of("do-thing")));
  ClientRead read;
  read.client_id = 42;
  read.read_seq = 3;
  read.query = make_payload(bytes_of("key"));
  frame.msgs.emplace_back(read);
  ClientReply reply;
  reply.client_id = 42;
  reply.session_seq = 7;
  reply.status = ClientStatus::kRejectedWindow;
  reply.duplicate = true;
  reply.reply = make_payload(bytes_of("cached"));
  frame.msgs.emplace_back(reply);

  Bytes wire = encode_client_frame(frame);
  EXPECT_EQ(wire.size(), client_wire_size(frame));

  ClientFrame out = decode_client_frame(wire);
  ASSERT_EQ(out.msgs.size(), 4u);
  EXPECT_EQ(std::get<ClientHello>(out.msgs[0]).client_id, 42u);
  const auto& r = std::get<ClientRequest>(out.msgs[1]);
  EXPECT_EQ(r.client_id, 42u);
  EXPECT_EQ(r.session_seq, 7u);
  EXPECT_EQ(str_of(Bytes(r.command.begin(), r.command.end())), "do-thing");
  const auto& rd = std::get<ClientRead>(out.msgs[2]);
  EXPECT_EQ(rd.read_seq, 3u);
  const auto& rp = std::get<ClientReply>(out.msgs[3]);
  EXPECT_EQ(rp.status, ClientStatus::kRejectedWindow);
  EXPECT_TRUE(rp.duplicate);
  EXPECT_EQ(str_of(Bytes(rp.reply.begin(), rp.reply.end())), "cached");
}

TEST(ClientCodec, DecodedRequestEnvelopeAliasesWire) {
  // With an owner, the decoded envelope must be a view into the wire buffer
  // (this is the zero-copy contract: admission broadcasts those bytes).
  ClientFrame frame;
  frame.msgs.emplace_back(make_request(9, 1, bytes_of("payload-bytes")));
  auto wire = std::make_shared<const Bytes>(encode_client_frame(frame));
  ClientFrame out = decode_client_frame(*wire, wire);
  const auto& req = std::get<ClientRequest>(out.msgs[0]);
  EXPECT_GE(req.envelope.data(), wire->data());
  EXPECT_LE(req.envelope.end(), wire->data() + wire->size());
  // And the envelope parses back to the same command, still aliasing.
  auto cmd = parse_envelope(req.envelope);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->client_id, 9u);
  EXPECT_EQ(cmd->session_seq, 1u);
  EXPECT_GE(cmd->command.data(), wire->data());
}

TEST(ClientCodec, AdversarialInputsThrowDontCrash) {
  ClientFrame frame;
  frame.msgs.emplace_back(make_request(1, 1, bytes_of("x")));
  Bytes wire = encode_client_frame(frame);

  // Truncations at every length.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::span<const std::uint8_t> cut(wire.data(), len);
    EXPECT_THROW(decode_client_frame(cut), CodecError) << "len=" << len;
  }
  // Wrong version.
  Bytes bad = wire;
  bad[0] = 0x7f;
  EXPECT_THROW(decode_client_frame(bad), CodecError);
  // Unknown tag.
  bad = wire;
  bad[2] = 0x6e;
  EXPECT_THROW(decode_client_frame(bad), CodecError);
  // Trailing garbage.
  bad = wire;
  bad.push_back(0x00);
  EXPECT_THROW(decode_client_frame(bad), CodecError);
  // Hostile message count must not allocate.
  Bytes hostile = {kClientProtoVersion, 0xff, 0xff, 0xff, 0xff, 0x7f};
  EXPECT_THROW(decode_client_frame(hostile), CodecError);
  // Unknown reply status byte.
  ClientFrame rf;
  ClientReply rep;
  rep.client_id = 1;
  rep.session_seq = 1;
  rf.msgs.emplace_back(rep);
  Bytes rw = encode_client_frame(rf);
  rw[rw.size() - 3] = 0x63;  // status byte of the trailing reply
  EXPECT_THROW(decode_client_frame(rw), CodecError);
}

TEST(ClientCodec, ParseEnvelopeDistinguishesPlainBroadcasts) {
  // A payload not starting with the magic is not gateway traffic.
  EXPECT_FALSE(parse_envelope(make_payload(bytes_of("plain"))).has_value());
  EXPECT_FALSE(parse_envelope(Payload{}).has_value());
  // Magic but truncated body: malformed, thrown (callers count and drop).
  Bytes junk = {0xC5, 0x01};
  EXPECT_THROW(parse_envelope(make_payload(junk)), CodecError);
  // Roundtrip.
  Bytes env = encode_envelope(77, 12, bytes_of("cmd"));
  auto cmd = parse_envelope(make_payload(env));
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->client_id, 77u);
  EXPECT_EQ(cmd->session_seq, 12u);
  EXPECT_EQ(str_of(Bytes(cmd->command.begin(), cmd->command.end())), "cmd");
}

// ------------------------------------------------------- sim exactly-once ---

struct GatewayFixture {
  explicit GatewayFixture(std::size_t n = 3, GatewayConfig gw = {}) {
    SimGatewayConfig cfg;
    cfg.cluster.n = n;
    cfg.gateway = gw;
    gc = std::make_unique<SimGatewayCluster>(cfg);
  }
  std::unique_ptr<SimGatewayCluster> gc;
};

TEST(Gateway, ClosedLoopSessionExecutesInOrder) {
  GatewayFixture f;
  SimClient::Options opt;
  opt.client_id = 7;
  opt.replica = 1;
  SimClient client(*f.gc, opt);
  client.submit(KvStore::encode_put("k", "1"));
  client.submit(KvStore::encode_cas("k", "1", "2"));
  client.submit(KvStore::encode_cas("k", "2", "3"));
  f.gc->sim().run();

  ASSERT_EQ(client.completed().size(), 3u);
  for (const auto& d : client.completed()) {
    EXPECT_EQ(d.status, ClientStatus::kOk);
    EXPECT_EQ(str_of(d.reply), "OK");
  }
  EXPECT_TRUE(client.idle());
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
  for (std::size_t i = 0; i < f.gc->size(); ++i) {
    EXPECT_EQ(f.gc->store(static_cast<NodeId>(i)).get("k"), "3");
    EXPECT_EQ(f.gc->store(static_cast<NodeId>(i)).failed_cas(), 0u);
    Gateway& gw = f.gc->gateway(static_cast<NodeId>(i));
    ThreadRoleRegion role(gw.role());  // sim gateways run on the test thread
    EXPECT_EQ(gw.last_executed(7), 3u);
  }
}

TEST(Gateway, DuplicateRetryServedFromReplyCache) {
  GatewayFixture f;
  auto& gw = f.gc->gateway(0);
  // Sim gateways run on the test thread; adopt the role for direct calls.
  ThreadRoleRegion role(gw.role());
  std::vector<ClientReply> replies;
  auto send = [&](const ClientReply& r) { replies.push_back(r); };

  gw.on_request(make_request(5, 1, KvStore::encode_put("a", "x")), send);
  f.gc->sim().run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].status, ClientStatus::kOk);
  EXPECT_FALSE(replies[0].duplicate);

  // Retransmit of the executed seq: cached reply, no second execution.
  gw.on_request(make_request(5, 1, KvStore::encode_put("a", "x")), send);
  f.gc->sim().run();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1].status, ClientStatus::kOk);
  EXPECT_TRUE(replies[1].duplicate);
  EXPECT_EQ(str_of(Bytes(replies[1].reply.begin(), replies[1].reply.end())), "OK");
  EXPECT_EQ(gw.counters().duplicate_hits, 1u);
  EXPECT_EQ(f.gc->store(0).applied_commands(), 1u);
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
}

TEST(Gateway, SessionSeqGapRejected) {
  GatewayFixture f;
  auto& gw = f.gc->gateway(0);
  ThreadRoleRegion role(gw.role());
  std::vector<ClientReply> replies;
  auto send = [&](const ClientReply& r) { replies.push_back(r); };
  // A seq ahead of this replica's horizon is retryable, never admitted: the
  // gateway cannot distinguish a failed-over client (acked elsewhere,
  // delivery still catching up here) from a fabricator, so it answers
  // "resend later" and lets delivery — or the client's retry budget —
  // settle the question.
  gw.on_request(make_request(5, 4, KvStore::encode_put("a", "x")), send);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].status, ClientStatus::kRejectedWindow);
  EXPECT_EQ(gw.counters().rejected_ahead, 1u);
  // seq 0 is never valid: that one IS provably malformed.
  gw.on_request(make_request(5, 0, KvStore::encode_put("a", "x")), send);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1].status, ClientStatus::kBadRequest);
  f.gc->sim().run();
  EXPECT_EQ(f.gc->store(0).applied_commands(), 0u);
}

TEST(Gateway, LocalReadsAnswerWithoutBroadcast) {
  GatewayFixture f;
  SimClient::Options opt;
  opt.client_id = 2;
  SimClient client(*f.gc, opt);
  client.submit(KvStore::encode_put("color", "teal"));
  f.gc->sim().run();

  auto& gw = f.gc->gateway(2);  // reads work on any replica
  ThreadRoleRegion role(gw.role());
  std::vector<ClientReply> replies;
  ClientRead read;
  read.client_id = 99;  // reads don't need a session
  read.read_seq = 1;
  read.query = make_payload(KvStore::encode_get("color"));
  gw.on_read(read, [&](const ClientReply& r) { replies.push_back(r); });
  ASSERT_EQ(replies.size(), 1u);
  auto val = KvStore::decode_get_reply(replies[0].reply.span());
  ASSERT_TRUE(val.has_value());
  EXPECT_EQ(*val, "teal");
  EXPECT_EQ(gw.counters().reads, 1u);
}

// The tentpole scenario: the client's replica crashes mid-request and the
// retry goes through a different replica. The command must execute exactly
// once (chained CAS makes double-execution visible as failed_cas) and the
// duplicate path must actually fire across the run.
TEST(Gateway, RetryAcrossCrashExecutesExactlyOnce) {
  GatewayFixture f(4);
  SimClient::Options opt;
  opt.client_id = 11;
  opt.replica = 0;
  opt.retry_timeout = 300 * kMillisecond;
  SimClient client(*f.gc, opt);
  client.submit(KvStore::encode_put("x", "0"));
  for (int i = 0; i < 9; ++i) {
    client.submit(KvStore::encode_cas("x", std::to_string(i), std::to_string(i + 1)));
  }
  // Let the first few commands land, then crash the owner replica
  // mid-session.
  while (client.completed().size() < 3 && !f.gc->sim().empty()) {
    f.gc->sim().run_steps(50);
  }
  ASSERT_TRUE(client.completed().size() < 10u);
  f.gc->crash(0);
  f.gc->sim().run();

  ASSERT_TRUE(client.idle()) << "completed " << client.completed().size();
  ASSERT_EQ(client.completed().size(), 10u);
  for (const auto& d : client.completed()) {
    EXPECT_EQ(d.status, ClientStatus::kOk);
    EXPECT_EQ(str_of(d.reply), "OK") << "seq " << d.seq;
  }
  EXPECT_NE(client.replica(), 0) << "client must have failed over";
  // Exactly-once, on every surviving replica: the CAS chain ran clean.
  for (NodeId id = 1; id < 4; ++id) {
    EXPECT_EQ(f.gc->store(id).get("x"), "9");
    EXPECT_EQ(f.gc->store(id).failed_cas(), 0u) << "node " << int(id);
  }
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
}

// ------------------------------------------------------- admission control ---

TEST(Gateway, WindowOverflowQueuesThenRejectsExplicitly) {
  GatewayConfig gw_cfg;
  gw_cfg.session_window = 2;
  gw_cfg.session_queue = 3;
  GatewayFixture f(3, gw_cfg);
  auto& gw = f.gc->gateway(0);
  ThreadRoleRegion role(gw.role());

  std::vector<ClientReply> replies;
  auto send = [&](const ClientReply& r) { replies.push_back(r); };
  const int kBurst = 8;
  for (int i = 1; i <= kBurst; ++i) {
    gw.on_request(make_request(3, i, KvStore::encode_put("k" + std::to_string(i), "v")),
                  send);
  }
  // window(2) admitted + queue(3) parked; the rest rejected immediately.
  EXPECT_EQ(gw.counters().admitted, 2u);
  EXPECT_EQ(gw.counters().queued, 3u);
  EXPECT_EQ(gw.counters().rejected_window, 3u);
  EXPECT_EQ(replies.size(), 3u);
  for (const auto& r : replies) EXPECT_EQ(r.status, ClientStatus::kRejectedWindow);

  f.gc->sim().run();
  // Deliveries drained the queue: every admitted/queued command executed
  // and was answered; nothing was silently dropped.
  EXPECT_EQ(replies.size(), 8u);
  std::size_t ok = 0;
  for (const auto& r : replies) ok += r.status == ClientStatus::kOk;
  EXPECT_EQ(ok, 5u);
  EXPECT_EQ(f.gc->store(0).applied_commands(), 5u);
  EXPECT_EQ(gw.admitted_bytes(), 0u) << "budget must drain to zero";
  // The engine behind the gateway stayed healthy.
  EngineCounters ec = f.gc->cluster().engine_counters();
  EXPECT_EQ(ec.out_of_window, 0u);
  EXPECT_GT(ec.records_pooled + ec.records_allocated, 0u);
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");

  // The client can resume where the rejections left off (seq 6).
  replies.clear();
  gw.on_request(make_request(3, 6, KvStore::encode_put("k6", "v")), send);
  f.gc->sim().run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].status, ClientStatus::kOk);
}

TEST(Gateway, ByteBudgetRejectsInsteadOfBuffering) {
  GatewayConfig gw_cfg;
  gw_cfg.session_window = 64;
  gw_cfg.admitted_bytes_budget = 4096;
  GatewayFixture f(3, gw_cfg);
  auto& gw = f.gc->gateway(0);
  ThreadRoleRegion role(gw.role());

  std::vector<ClientReply> replies;
  auto send = [&](const ClientReply& r) { replies.push_back(r); };
  Bytes big(1500, 0xAB);
  int rejected = 0;
  for (int i = 1; i <= 6; ++i) {
    gw.on_request(make_request(4, i,
                               KvStore::encode_put("big" + std::to_string(i),
                                                   std::string(big.begin(), big.end()))),
                  send);
    if (!replies.empty() && replies.back().session_seq == std::uint64_t(i) &&
        replies.back().status == ClientStatus::kRejectedBytes) {
      ++rejected;
      break;
    }
  }
  EXPECT_GT(rejected, 0) << "budget must eventually reject";
  EXPECT_GT(gw.counters().rejected_bytes, 0u);
  f.gc->sim().run();
  EXPECT_EQ(gw.admitted_bytes(), 0u);
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
}

TEST(Gateway, OversizedCommandRejectedOutright) {
  GatewayConfig gw_cfg;
  gw_cfg.max_command_bytes = 64;
  GatewayFixture f(3, gw_cfg);
  auto& gw = f.gc->gateway(0);
  ThreadRoleRegion role(gw.role());
  std::vector<ClientReply> replies;
  gw.on_request(make_request(6, 1, Bytes(1024, 0x11)),
                [&](const ClientReply& r) { replies.push_back(r); });
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].status, ClientStatus::kBadRequest);
  EXPECT_EQ(gw.counters().admitted, 0u);
}

TEST(Gateway, PlainBroadcastsCoexistWithEnvelopes) {
  GatewayFixture f;
  // A plain (non-gateway) broadcast applies to the state machine directly.
  f.gc->cluster().broadcast(1, KvStore::encode_put("plain", "1"));
  SimClient::Options opt;
  opt.client_id = 1;
  SimClient client(*f.gc, opt);
  client.submit(KvStore::encode_put("sessioned", "2"));
  f.gc->sim().run();
  for (std::size_t i = 0; i < f.gc->size(); ++i) {
    EXPECT_EQ(f.gc->store(static_cast<NodeId>(i)).get("plain"), "1");
    EXPECT_EQ(f.gc->store(static_cast<NodeId>(i)).get("sessioned"), "2");
  }
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
}

// Admission-control memory regression: a duplicate flood (thousands of
// replays of already-executed seqs) must be answered entirely from the
// bounded reply cache — zero admitted bytes, zero new broadcasts, zero new
// applies, and a cache that never grows past sessions() * reply_cache.
TEST(Gateway, DuplicateFloodKeepsAdmissionMemoryBounded) {
  GatewayConfig gw_cfg;
  gw_cfg.session_window = 4;
  gw_cfg.session_queue = 8;
  gw_cfg.reply_cache = 4;
  gw_cfg.admitted_bytes_budget = 32 * 1024;
  GatewayFixture f(3, gw_cfg);
  auto& gw = f.gc->gateway(0);
  ThreadRoleRegion role(gw.role());
  auto drop = [](const ClientReply&) {};

  // A session executes 6 commands; with reply_cache = 4 the two oldest
  // replies age out (the flood below replays those too).
  const std::uint64_t kClient = 9;
  const int kChain = 6;
  for (int i = 1; i <= kChain; ++i) {
    gw.on_request(make_request(kClient, std::uint64_t(i),
                               KvStore::encode_put("k", std::to_string(i))),
                  drop);
    f.gc->sim().run();
  }
  ASSERT_EQ(gw.last_executed(kClient), std::uint64_t(kChain));
  EXPECT_EQ(gw.counters().reply_cache_evictions, std::uint64_t(kChain) - gw_cfg.reply_cache);

  const auto applied_before = f.gc->store(0).applied_commands();
  const auto admitted_before = gw.counters().admitted;
  const auto cache_before = gw.reply_cache_entries();
  ASSERT_LE(cache_before, gw.sessions() * gw_cfg.reply_cache);

  // Flood: 5000 replays cycling over every executed seq, including the
  // evicted ones. Every one must be answered as a duplicate without
  // touching admission state.
  const int kFlood = 5000;
  std::uint64_t dup_replies = 0, empty_replies = 0;
  std::size_t max_cache = 0;
  auto count = [&](const ClientReply& r) {
    EXPECT_EQ(r.status, ClientStatus::kOk);
    EXPECT_TRUE(r.duplicate);
    ++dup_replies;
    empty_replies += r.reply.empty();
  };
  for (int i = 0; i < kFlood; ++i) {
    const std::uint64_t seq = 1 + std::uint64_t(i) % kChain;
    gw.on_request(make_request(kClient, seq,
                               KvStore::encode_put("k", std::to_string(seq))),
                  count);
    // Probe during the flood, not just after: a transient spike is a bug.
    max_cache = std::max(max_cache, gw.reply_cache_entries());
    ASSERT_EQ(gw.admitted_bytes(), 0u) << "flood admitted bytes at i=" << i;
  }
  EXPECT_EQ(dup_replies, std::uint64_t(kFlood));
  EXPECT_GT(empty_replies, 0u) << "evicted seqs must still get duplicate acks";
  EXPECT_GE(gw.counters().duplicate_hits, std::uint64_t(kFlood));
  EXPECT_LE(max_cache, gw.sessions() * gw_cfg.reply_cache);
  EXPECT_EQ(gw.reply_cache_entries(), cache_before) << "flood grew the cache";
  EXPECT_EQ(gw.counters().admitted, admitted_before) << "flood was re-admitted";

  f.gc->sim().run();
  EXPECT_EQ(f.gc->store(0).applied_commands(), applied_before)
      << "a replayed command re-executed";
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
}


// ------------------------------------------- coalescing batch envelopes ---

TEST(ClientCodec, BatchEnvelopeRoundtripAliasesDelivered) {
  EnvelopeBatch batch;
  Bytes a = encode_envelope(7, 1, bytes_of("alpha"));
  Bytes b = encode_envelope(8, 3, bytes_of("bravo"));
  Bytes c = encode_read_envelope(9, (std::uint64_t{1} << 63) + 4,
                                 bytes_of("query"));
  batch.append(make_payload(Bytes(a)));
  batch.append(make_payload(Bytes(b)));
  batch.append(make_payload(Bytes(c)));
  EXPECT_EQ(batch.count(), 3u);

  Payload wire = batch.take();
  ASSERT_FALSE(wire.empty());
  EXPECT_EQ(*wire.data(), kBatchEnvelopeMagic);
  EXPECT_TRUE(batch.empty()) << "take() must reset the batch";

  auto subs = parse_batch_envelope(wire);
  ASSERT_TRUE(subs.has_value());
  ASSERT_EQ(subs->size(), 3u);
  // Zero-copy contract: every sub-envelope aliases the delivered buffer.
  for (const Payload& sub : *subs) {
    EXPECT_GE(sub.data(), wire.data());
    EXPECT_LE(sub.end(), wire.end());
  }
  auto cmd_a = parse_envelope((*subs)[0]);
  ASSERT_TRUE(cmd_a.has_value());
  EXPECT_EQ(cmd_a->client_id, 7u);
  EXPECT_EQ(str_of(Bytes(cmd_a->command.begin(), cmd_a->command.end())), "alpha");
  auto rd = parse_read_envelope((*subs)[2]);
  ASSERT_TRUE(rd.has_value());
  EXPECT_EQ(rd->client_id, 9u);
  EXPECT_EQ(str_of(Bytes(rd->query.begin(), rd->query.end())), "query");
}

TEST(ClientCodec, SingleEnvelopeBatchEmittedUnwrapped) {
  // A batch of one pays no framing: take() hands back the plain envelope,
  // byte-identical to the uncoalesced wire format.
  EnvelopeBatch batch;
  Bytes env = encode_envelope(5, 2, bytes_of("solo"));
  batch.append(make_payload(Bytes(env)));
  Payload out = batch.take();
  EXPECT_EQ(Bytes(out.begin(), out.end()), env);
  EXPECT_EQ(parse_batch_envelope(out), std::nullopt)
      << "single-envelope output must not carry the batch magic";
}

TEST(ClientCodec, BatchAdversarialInputsThrowDontCrash) {
  // Not a batch at all: nullopt, never a throw (callers dispatch on magic).
  EXPECT_EQ(parse_batch_envelope(make_payload(
                encode_envelope(1, 1, bytes_of("x")))),
            std::nullopt);

  // Empty batch: the magic with no sub-envelopes is malformed by fiat — the
  // coalescer never emits it, so delivery treats it as hostile.
  EXPECT_THROW(parse_batch_envelope(make_payload(Bytes{kBatchEnvelopeMagic})),
               CodecError);

  // Unknown sub-envelope magic (a lease grant nested in a batch is invalid:
  // grants ride alone).
  {
    Bytes evil = {kBatchEnvelopeMagic};
    Bytes lease = encode_lease_envelope(1, 1000);
    evil.insert(evil.end(), lease.begin(), lease.end());
    EXPECT_THROW(parse_batch_envelope(make_payload(evil)), CodecError);
  }

  // Truncated sub-envelope: header promises more command bytes than remain.
  {
    Bytes env = encode_envelope(3, 9, bytes_of("truncate-me"));
    Bytes evil = {kBatchEnvelopeMagic};
    evil.insert(evil.end(), env.begin(), env.end() - 4);
    EXPECT_THROW(parse_batch_envelope(make_payload(evil)), CodecError);
  }

  // Hostile varint length: 10 continuation bytes claiming a gigantic
  // command must throw, not allocate or scan past the buffer.
  {
    Bytes evil = {kBatchEnvelopeMagic, kEnvelopeMagic, 0x01, 0x01};
    for (int i = 0; i < 10; ++i) evil.push_back(0xFF);
    EXPECT_THROW(parse_batch_envelope(make_payload(evil)), CodecError);
  }

  // Trailing garbage after a valid sub-envelope.
  {
    Bytes env = encode_envelope(4, 1, bytes_of("ok"));
    Bytes evil = {kBatchEnvelopeMagic};
    evil.insert(evil.end(), env.begin(), env.end());
    evil.push_back(0x00);  // not a valid sub magic
    EXPECT_THROW(parse_batch_envelope(make_payload(evil)), CodecError);
  }

  // Read/lease envelope hardening: wrong magic is nullopt, trailing bytes
  // throw (same contract as parse_envelope).
  EXPECT_EQ(parse_read_envelope(make_payload(encode_lease_envelope(1, 1))),
            std::nullopt);
  EXPECT_EQ(parse_lease_envelope(make_payload(bytes_of("zz"))), std::nullopt);
  {
    Bytes env = encode_read_envelope(1, 2, bytes_of("q"));
    env.push_back(0xAB);
    // Trailing bytes make the query span one byte long? No: the read
    // envelope is self-delimiting via its length varint, so extra bytes
    // past the declared query are hostile.
    EXPECT_THROW(parse_read_envelope(make_payload(env)), CodecError);
  }
  {
    Bytes env = encode_lease_envelope(7, 500);
    env.push_back(0x01);
    EXPECT_THROW(parse_lease_envelope(make_payload(env)), CodecError);
  }
}

TEST(Gateway, MalformedBatchDeliveryRejectedNotCrashed) {
  GatewayFixture f;
  auto& gw = f.gc->gateway(0);
  ThreadRoleRegion role(gw.role());
  const std::uint64_t before = gw.counters().rejected_malformed;
  const Bytes evils[] = {
      Bytes{kBatchEnvelopeMagic},                    // empty batch
      Bytes{kBatchEnvelopeMagic, kLeaseEnvelopeMagic, 0x01, 0x01},
      Bytes{kBatchEnvelopeMagic, kEnvelopeMagic, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
            0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},     // hostile varint
  };
  for (const Bytes& evil : evils) {
    Delivery d;
    d.origin = 1;
    d.payload = make_payload(Bytes(evil));
    gw.on_delivery(d);  // must count + drop, never throw or apply
  }
  EXPECT_EQ(gw.counters().rejected_malformed, before + 3);
  EXPECT_EQ(f.gc->store(0).applied_commands(), 0u);
}

// Concurrent same-replica requests must leave in shared batch envelopes:
// the coalescing counters prove real amortization (strictly fewer
// broadcasts than envelopes), and delivery unpacks to exactly-once applies.
TEST(Gateway, CoalescingBatchesConcurrentRequestsExactlyOnce) {
  GatewayFixture f;
  std::vector<std::unique_ptr<SimClient>> clients;
  for (int c = 0; c < 8; ++c) {
    SimClient::Options opt;
    opt.client_id = 100 + c;
    opt.replica = 0;  // same gateway: their envelopes share batches
    clients.push_back(std::make_unique<SimClient>(*f.gc, opt));
    for (int i = 0; i < 5; ++i) {
      clients.back()->submit(
          KvStore::encode_put("c" + std::to_string(c), std::to_string(i)));
    }
  }
  f.gc->sim().run();
  for (auto& cl : clients) {
    ASSERT_TRUE(cl->idle());
    ASSERT_EQ(cl->completed().size(), 5u);
    for (const auto& d : cl->completed()) EXPECT_EQ(d.status, ClientStatus::kOk);
  }
  auto& gw = f.gc->gateway(0);
  ThreadRoleRegion role(gw.role());
  EXPECT_GE(gw.counters().coalesced_envelopes, 40u);
  EXPECT_LT(gw.counters().coalesce_flushes, gw.counters().coalesced_envelopes)
      << "no batch ever held more than one envelope — coalescing is vacuous";
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
}

// A coalesced envelope in flight when the sequencer dies: the batch (or its
// retries) must execute every command exactly once on the survivors —
// chained CAS per client makes any double-apply visible as failed_cas.
TEST(Gateway, CoalescedEnvelopeSpansSequencerCrashExactlyOnce) {
  GatewayFixture f(4);
  std::vector<std::unique_ptr<SimClient>> clients;
  for (int c = 0; c < 6; ++c) {
    SimClient::Options opt;
    opt.client_id = 200 + c;
    opt.replica = 1;  // gateway survives; only the sequencer (node 0) dies
    opt.retry_timeout = 300 * kMillisecond;
    clients.push_back(std::make_unique<SimClient>(*f.gc, opt));
    const std::string key = "k" + std::to_string(c);
    clients.back()->submit(KvStore::encode_put(key, "0"));
    for (int i = 0; i < 7; ++i) {
      clients.back()->submit(
          KvStore::encode_cas(key, std::to_string(i), std::to_string(i + 1)));
    }
  }
  // Let batches start flowing, then kill the sequencer mid-stream.
  std::size_t done = 0;
  while (done < 6 && !f.gc->sim().empty()) {
    f.gc->sim().run_steps(40);
    done = 0;
    for (auto& cl : clients) done += cl->completed().size();
  }
  ASSERT_LT(done, 48u) << "crash must land mid-run; slow the warmup loop";
  f.gc->crash(0);
  f.gc->sim().run();

  for (auto& cl : clients) {
    ASSERT_TRUE(cl->idle());
    ASSERT_EQ(cl->completed().size(), 8u);
    for (const auto& d : cl->completed()) {
      EXPECT_EQ(d.status, ClientStatus::kOk);
    }
  }
  for (NodeId id = 1; id < 4; ++id) {
    EXPECT_EQ(f.gc->store(id).failed_cas(), 0u) << "node " << int(id);
    EXPECT_EQ(f.gc->store(id).get("k0"), "7");
  }
  {
    auto& gw = f.gc->gateway(1);
    ThreadRoleRegion role(gw.role());
    EXPECT_LT(gw.counters().coalesce_flushes, gw.counters().coalesced_envelopes)
        << "the run never actually batched";
  }
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
  EXPECT_EQ(f.gc->cluster().check_all(), "");
}

// ------------------------------------------------------------ read leases ---

struct LeaseFixture {
  explicit LeaseFixture(std::size_t n = 3) {
    GatewayConfig gw;
    gw.read_mode = GatewayReadMode::kLeased;
    gw.lease_duration = 10 * kSecond;  // sim runs finish well inside this
    f = std::make_unique<GatewayFixture>(n, gw);
  }
  // One completed write through `replica` (also the traffic that lets the
  // leader grant/renew the lease).
  void write(NodeId replica, const std::string& k, const std::string& v) {
    SimClient::Options opt;
    opt.client_id = next_client_++;
    opt.replica = replica;
    SimClient client(*f->gc, opt);
    client.submit(KvStore::encode_put(k, v));
    f->gc->sim().run();
    ASSERT_EQ(client.completed().size(), 1u);
    ASSERT_EQ(client.completed()[0].status, ClientStatus::kOk);
  }
  std::unique_ptr<GatewayFixture> f;
  std::uint64_t next_client_ = 900;
};

TEST(GatewayLease, WarmLeaseServesReadsLocallyWithoutRingTrips) {
  LeaseFixture lf;
  lf.write(0, "color", "teal");

  // The write's delivery was gateway traffic: the leader granted a lease
  // and every replica applied it.
  auto& gw = lf.f->gc->gateway(2);
  ThreadRoleRegion role(gw.role());
  ASSERT_TRUE(gw.lease_valid())
      << "first delivery round must have granted the lease";
  EXPECT_GE(gw.counters().lease_grants_applied, 1u);

  std::vector<ClientReply> replies;
  ClientRead read;
  read.client_id = 77;
  read.read_seq = std::uint64_t{1} << 63;
  read.query = make_payload(KvStore::encode_get("color"));
  gw.on_read(read, [&](const ClientReply& r) { replies.push_back(r); });
  // Leased local read: answered synchronously, no broadcast.
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].status, ClientStatus::kOk);
  EXPECT_EQ(KvStore::decode_get_reply(replies[0].reply.span()), "teal");
  EXPECT_EQ(gw.counters().reads_local, 1u);
  EXPECT_EQ(gw.counters().reads_ordered, 0u);
  EXPECT_EQ(gw.pending_ordered_reads(), 0u);
}

TEST(GatewayLease, ColdLeaseFallsBackToOrderedReads) {
  LeaseFixture lf;
  // No traffic yet: no lease anywhere. A read must take the ring trip.
  auto& gw = lf.f->gc->gateway(1);
  std::vector<ClientReply> replies;
  {
    ThreadRoleRegion role(gw.role());
    ASSERT_FALSE(gw.lease_valid());
    ClientRead read;
    read.client_id = 78;
    read.read_seq = (std::uint64_t{1} << 63) + 1;
    read.query = make_payload(KvStore::encode_get("missing"));
    gw.on_read(read, [&](const ClientReply& r) { replies.push_back(r); });
    EXPECT_TRUE(replies.empty()) << "cold read must not answer locally";
    EXPECT_EQ(gw.counters().reads_ordered, 1u);
    EXPECT_EQ(gw.pending_ordered_reads(), 1u);
  }
  lf.f->gc->sim().run();
  {
    ThreadRoleRegion role(gw.role());
    ASSERT_EQ(replies.size(), 1u) << "ordered read must answer at delivery";
    EXPECT_EQ(replies[0].status, ClientStatus::kOk);
    EXPECT_EQ(gw.pending_ordered_reads(), 0u);
  }
}

// The acceptance scenario: a leader crash invalidates every outstanding
// lease before the new view serves traffic, so no replica can serve a
// local read from pre-view state; once the new leader re-grants, local
// reads resume and observe everything sequenced before them.
TEST(GatewayLease, ViewChangeInvalidatesLeaseNoStaleRead) {
  LeaseFixture lf;
  lf.write(1, "color", "teal");
  auto& gw2 = lf.f->gc->gateway(2);
  {
    ThreadRoleRegion role(gw2.role());
    ASSERT_TRUE(gw2.lease_valid());
  }

  // Leader (node 0) dies; the view change must conservatively kill the
  // lease even though node 2 did nothing wrong.
  lf.f->gc->crash(0);
  lf.f->gc->sim().run();
  {
    ThreadRoleRegion role(gw2.role());
    EXPECT_FALSE(gw2.lease_valid())
        << "a lease granted in the old view survived the view change";
  }

  // A read in the cold window takes the ordered path (counted), never the
  // local one.
  std::vector<ClientReply> replies;
  {
    ThreadRoleRegion role(gw2.role());
    const std::uint64_t ordered_before = gw2.counters().reads_ordered;
    ClientRead read;
    read.client_id = 79;
    read.read_seq = (std::uint64_t{1} << 63) + 9;
    read.query = make_payload(KvStore::encode_get("color"));
    gw2.on_read(read, [&](const ClientReply& r) { replies.push_back(r); });
    EXPECT_TRUE(replies.empty());
    EXPECT_EQ(gw2.counters().reads_ordered, ordered_before + 1);
  }
  lf.f->gc->sim().run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(KvStore::decode_get_reply(replies[0].reply.span()), "teal");

  // New-view traffic lets the new leader (node 1) re-grant; a local read
  // under the fresh lease must observe that write — nothing stale.
  lf.write(1, "color", "mauve");
  {
    ThreadRoleRegion role(gw2.role());
    ASSERT_TRUE(gw2.lease_valid()) << "new leader never re-granted";
    const std::uint64_t local_before = gw2.counters().reads_local;
    std::vector<ClientReply> fresh;
    ClientRead read;
    read.client_id = 80;
    read.read_seq = (std::uint64_t{1} << 63) + 10;
    read.query = make_payload(KvStore::encode_get("color"));
    gw2.on_read(read, [&](const ClientReply& r) { fresh.push_back(r); });
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(KvStore::decode_get_reply(fresh[0].reply.span()), "mauve");
    EXPECT_EQ(gw2.counters().reads_local, local_before + 1);
  }
  EXPECT_EQ(lf.f->gc->check_replicas_converged(), "");
}

// ------------------------------------------------- connection teardown ---

// A connection that dies with replies still owed must not leak its
// reply-routing entry: the binding is reclaimed at disconnect and the owed
// replies are counted as orphaned drops when their deliveries resolve.
TEST(Gateway, DisconnectWithQueuedRepliesCountsOrphans) {
  GatewayFixture f;
  auto& gw = f.gc->gateway(0);
  ThreadRoleRegion role(gw.role());
  std::vector<ClientReply> replies;
  auto send = [&](const ClientReply& r) { replies.push_back(r); };

  gw.on_request(make_request(9, 1, KvStore::encode_put("a", "1")), send, 42);
  gw.on_request(make_request(9, 2, KvStore::encode_put("a", "2")), send, 42);
  ASSERT_EQ(gw.owned_sessions(), 1u);

  // The connection dies before either delivery resolves.
  gw.on_client_disconnect(9, 42);
  EXPECT_EQ(gw.owned_sessions(), 0u) << "binding leaked after disconnect";
  EXPECT_EQ(gw.counters().orphaned_reply_drops, 2u)
      << "owed replies not accounted at teardown";

  f.gc->sim().run();
  // Deliveries still executed exactly once (session state is replicated),
  // but nobody was owed the replies.
  EXPECT_TRUE(replies.empty());
  EXPECT_EQ(f.gc->store(0).get("a"), "2");
  EXPECT_EQ(f.gc->check_replicas_converged(), "");
}

// -------------------------------------------------------------- real TCP ---

bool fingerprints_converge(TcpGatewayCluster& gc, Time timeout) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(timeout);
  for (;;) {
    auto fps = gc.fingerprints();
    bool equal = !fps.empty();
    for (std::uint64_t fp : fps) equal = equal && fp == fps[0];
    if (equal) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST(GatewayTcp, EndToEndSessionOverSockets) {
  TcpGatewayCluster gc;
  GatewayClient::Options opt;
  opt.client_id = 21;
  opt.endpoints = gc.endpoints();
  GatewayClient client(opt);

  auto r = client.call(KvStore::encode_put("greeting", "hello"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, ClientStatus::kOk);
  EXPECT_EQ(str_of(r.reply), "OK");
  for (int i = 0; i < 20; ++i) {
    r = client.call(KvStore::encode_cas("greeting",
                                        i == 0 ? "hello" : std::to_string(i - 1),
                                        std::to_string(i)));
    ASSERT_TRUE(r.ok) << "cas " << i;
    EXPECT_EQ(str_of(r.reply), "OK") << "cas " << i;
  }
  // Local read on the connected replica.
  auto got = client.read(KvStore::encode_get("greeting"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(KvStore::decode_get_reply(*got), "19");

  ASSERT_TRUE(fingerprints_converge(gc, 10 * kSecond));
  EXPECT_EQ(gc.total_failed_cas(), 0u);
  EXPECT_EQ(gc.check_invariants(), "");
  auto counters = gc.gateway_counters();
  EXPECT_EQ(counters.commands_applied, 21u * 3);  // every replica applied all
  EXPECT_EQ(counters.replies_sent, 22u);          // 21 calls + 1 read
}

// Crash the replica owning the client's connection mid-chain; the client
// reconnects to a different replica and the CAS chain must run exactly once
// (any double apply shows up as failed_cas on the survivors).
TEST(GatewayTcp, ClientSurvivesReplicaCrashExactlyOnce) {
  TcpGatewayClusterConfig cfg;
  cfg.n = 3;
  TcpGatewayCluster gc(cfg);

  GatewayClient::Options opt;
  opt.client_id = 31;
  opt.endpoints = gc.endpoints();
  opt.start_index = 0;  // owned by the replica we will crash
  opt.recv_timeout = 500 * kMillisecond;
  GatewayClient client(opt);

  ASSERT_TRUE(client.call(KvStore::encode_put("x", "0")).ok);

  const int kSteps = 300;
  std::atomic<int> progress{0};
  Thread chain([&] {
    for (int i = 0; i < kSteps; ++i) {
      auto r = client.call(
          KvStore::encode_cas("x", std::to_string(i), std::to_string(i + 1)));
      ASSERT_TRUE(r.ok) << "cas " << i;
      ASSERT_EQ(str_of(r.reply), "OK") << "cas " << i;
      progress.store(i + 1);
    }
  });
  // Crash the owner mid-chain (after it demonstrably made progress, with
  // plenty of the chain left to ride through the failover).
  while (progress.load() < kSteps / 4) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  gc.crash(0);
  chain.join();

  EXPECT_GE(client.reconnects(), 2u) << "client must have failed over";
  ASSERT_TRUE(fingerprints_converge(gc, 10 * kSecond));
  EXPECT_EQ(gc.total_failed_cas(), 0u);
  for (NodeId id = 1; id < 3; ++id) {
    EXPECT_EQ(gc.store(id).get("x"), std::to_string(kSteps));
  }
  EXPECT_EQ(gc.check_invariants(), "");
}

// A slow-loris writer — a real socket trickling one valid frame a byte at a
// time — must not stall the replica: per-connection reader threads mean
// other clients keep completing commands while the loris frame is still
// arriving, and once it finally lands it executes (exactly once) and is
// answered on the loris connection.
TEST(GatewayTcp, SlowLorisWriterDoesNotStallOtherClients) {
  TcpGatewayCluster gc;
  auto eps = gc.endpoints();

  int loris_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(loris_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(eps[0].port);
  ASSERT_EQ(::inet_pton(AF_INET, eps[0].host.c_str(), &addr.sin_addr), 1);
  ASSERT_EQ(::connect(loris_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // One valid frame: hello + PUT, length-prefixed like any client.
  ClientFrame frame;
  ClientHello hello;
  hello.client_id = 61;
  frame.msgs.emplace_back(hello);
  frame.msgs.emplace_back(make_request(61, 1, KvStore::encode_put("loris", "done")));
  Bytes body = encode_client_frame(frame);
  Bytes wire;
  const std::uint32_t n = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
  wire.insert(wire.end(), body.begin(), body.end());

  std::atomic<bool> loris_done{false};
  Thread loris([&] {
    for (std::uint8_t b : wire) {
      if (::send(loris_fd, &b, 1, MSG_NOSIGNAL) != 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
    loris_done.store(true);
  });

  // A well-behaved client on the SAME replica runs a chain meanwhile.
  GatewayClient::Options opt;
  opt.client_id = 62;
  opt.endpoints = eps;
  opt.start_index = 0;
  GatewayClient client(opt);
  ASSERT_TRUE(client.call(KvStore::encode_put("x", "0")).ok);
  int before_loris_done = loris_done.load() ? 0 : 1;
  for (int i = 0; i < 10; ++i) {
    auto r = client.call(
        KvStore::encode_cas("x", std::to_string(i), std::to_string(i + 1)));
    ASSERT_TRUE(r.ok) << "cas " << i;
    ASSERT_EQ(str_of(r.reply), "OK") << "cas " << i;
    before_loris_done += !loris_done.load();
  }
  EXPECT_GT(before_loris_done, 0)
      << "chain never overlapped the loris frame; slow the trickle down";
  loris.join();

  // The trickled frame finally landed: the hello ack (session position 0)
  // and then the request's reply both come back on the loris connection.
  std::vector<ClientReply> replies;
  while (replies.size() < 2) {
    auto reply_frame = gateway_read_frame(loris_fd);
    ASSERT_TRUE(reply_frame.has_value())
        << "loris connection closed after " << replies.size() << " replies";
    for (const auto& msg : reply_frame->msgs) {
      replies.push_back(std::get<ClientReply>(msg));
    }
  }
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].client_id, 61u);
  EXPECT_EQ(replies[0].session_seq, 0u);  // hello ack: nothing executed yet
  EXPECT_EQ(replies[0].status, ClientStatus::kOk);
  EXPECT_EQ(replies[1].client_id, 61u);
  EXPECT_EQ(replies[1].session_seq, 1u);
  EXPECT_EQ(replies[1].status, ClientStatus::kOk);
  ::close(loris_fd);

  ASSERT_TRUE(fingerprints_converge(gc, 10 * kSecond));
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_EQ(gc.store(id).get("loris"), "done") << "node " << int(id);
  }
  EXPECT_EQ(gc.total_failed_cas(), 0u);
  EXPECT_EQ(gc.check_invariants(), "");
}

// The multiplexed pipelined driver end to end: 64 sessions over 4 sockets
// with 4 commands in flight each — the shape the big benchmark rows use —
// must complete every request exactly once and demonstrably batch.
TEST(GatewayTcp, MultiplexedPipelinedDriverExactlyOnce) {
  TcpGatewayCluster gc;
  DriverOptions opt;
  opt.endpoints = gc.endpoints();
  opt.clients = 64;
  opt.requests_per_client = 30;
  opt.connections = 4;
  opt.pipeline = 4;
  opt.value_bytes = 32;

  DriverReport r = run_client_driver(opt);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.requests, 64u * 30u);

  ASSERT_TRUE(fingerprints_converge(gc, 10 * kSecond));
  auto counters = gc.gateway_counters();
  EXPECT_EQ(counters.commands_applied, 64u * 30u * 3);
  EXPECT_GE(counters.coalesced_envelopes, 64u * 30u);
  EXPECT_LT(counters.coalesce_flushes, counters.coalesced_envelopes)
      << "pipelined frames never shared a broadcast envelope";
  EXPECT_EQ(gc.check_invariants(), "");
}

// Reconnect storm at the epoll front-end: 1024 short-lived sessions arrive
// in waves of raw sockets, each sending hello + one PUT on a fresh
// connection; half vanish without reading their replies. Throughout, file
// descriptors and the admission gauge stay bounded; afterwards every
// connection, owned binding, and admitted byte is reclaimed, the orphaned
// replies are counted, and the replicas converge on all 1024 writes.
TEST(GatewayTcp, ReconnectStormBoundedFdsAndAdmission) {
  TcpGatewayClusterConfig cfg;
  TcpGatewayCluster gc(cfg);
  auto eps = gc.endpoints();

  auto count_fds = [] {
    std::size_t n = 0;
    for (auto it = std::filesystem::directory_iterator("/proc/self/fd");
         it != std::filesystem::directory_iterator(); ++it) {
      ++n;
    }
    return n;
  };
  const std::size_t fd_baseline = count_fds();

  constexpr std::size_t kSessions = 1024;
  constexpr std::size_t kWave = 128;
  const std::uint64_t byte_ceiling =
      static_cast<std::uint64_t>(cfg.gateway.admitted_bytes_budget) * cfg.n;

  std::size_t max_fds_seen = 0;
  std::uint64_t max_admitted_seen = 0;
  for (std::size_t wave = 0; wave < kSessions / kWave; ++wave) {
    std::vector<int> fds;
    fds.reserve(kWave);
    for (std::size_t i = 0; i < kWave; ++i) {
      const std::size_t idx = wave * kWave + i;
      const auto& ep = eps[idx % eps.size()];
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(ep.port);
      ASSERT_EQ(::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr), 1);
      ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
          << "session " << idx;
      const std::uint64_t client = 5000 + idx;
      ClientFrame frame;
      ClientHello hello;
      hello.client_id = client;
      frame.msgs.emplace_back(hello);
      frame.msgs.emplace_back(make_request(
          client, 1, KvStore::encode_put("storm" + std::to_string(idx), "1")));
      ASSERT_TRUE(gateway_write_frame(fd, frame)) << "session " << idx;
      // Even sessions slam the connection shut the instant the frame is on
      // the wire — replies are still owed, which is the orphan path under
      // real socket teardown. Odd ones stay to read their replies.
      if (i % 2 == 0) {
        ::close(fd);
      } else {
        fds.push_back(fd);
      }
    }

    max_fds_seen = std::max(max_fds_seen, count_fds());
    max_admitted_seen = std::max(max_admitted_seen, gc.total_admitted_bytes());

    for (std::size_t i = 0; i < fds.size(); ++i) {
      timeval tv{};
      tv.tv_sec = 10;
      ::setsockopt(fds[i], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      std::size_t replies = 0;
      while (replies < 2) {
        auto reply_frame = gateway_read_frame(fds[i]);
        ASSERT_TRUE(reply_frame.has_value())
            << "wave " << wave << " session " << i << " reply " << replies;
        replies += reply_frame->msgs.size();
      }
      ::close(fds[i]);
    }
  }

  // Every wave fit in its own socket allowance on top of the quiescent
  // service. Both ends of each connection live in this process (the cluster
  // is in-process), so a wave costs up to 2x its sockets; the slack covers
  // reply-path eventfds and test-runner noise.
  EXPECT_LE(max_fds_seen, fd_baseline + 2 * kWave + 64)
      << "file descriptors accumulated across waves";
  EXPECT_LE(max_admitted_seen, byte_ceiling)
      << "admission gauge exceeded the configured budget";

  // Quiesce: connections, owned bindings, and admitted bytes all drain to
  // zero once the storm stops.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    std::size_t open = 0;
    for (NodeId id = 0; id < cfg.n; ++id) open += gc.server(id).open_connections();
    if (open == 0 && gc.total_owned_sessions() == 0 &&
        gc.total_admitted_bytes() == 0) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "storm state never drained: open=" << open
        << " owned=" << gc.total_owned_sessions()
        << " admitted=" << gc.total_admitted_bytes();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(count_fds(), fd_baseline + 16) << "fds leaked after quiesce";

  ASSERT_TRUE(fingerprints_converge(gc, 10 * kSecond));
  auto counters = gc.gateway_counters();
  EXPECT_EQ(counters.commands_applied, kSessions * cfg.n)
      << "every storm PUT must execute exactly once per replica";
  EXPECT_GT(counters.orphaned_reply_drops, 0u)
      << "half the storm vanished before its replies; drops must be counted";
  EXPECT_EQ(gc.check_invariants(), "");
}

}  // namespace
}  // namespace fsr
