// Thread-interleaving regression tests for the TCP stack, written to be run
// under TSan (FSR_SANITIZE=thread) as well as in the plain suite. They hammer
// the cross-thread surfaces: application threads posting broadcasts while
// I/O threads deliver, crash() racing in-flight traffic, post_wait() against
// a stopped node, and teardown with posted-but-unexecuted closures.
//
// One broadcaster thread per origin: a node's post() order then matches the
// engine's per-origin numbering, which the invariant checker relies on.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "harness/sim_cluster.h"  // test_payload
#include "harness/tcp_cluster.h"

namespace fsr {
namespace {

constexpr Time kWait = 60 * kSecond;  // generous: TSan slows this a lot

GroupConfig small_group() {
  GroupConfig g;
  g.engine.t = 1;
  g.engine.segment_size = 8192;
  return g;
}

std::vector<Thread> senders(TcpCluster& c, std::size_t nsenders,
                            std::uint64_t per_sender, std::size_t bytes) {
  std::vector<Thread> threads;
  threads.reserve(nsenders);
  for (NodeId s = 0; s < nsenders; ++s) {
    threads.emplace_back([&c, s, per_sender, bytes] {
      for (std::uint64_t i = 1; i <= per_sender; ++i) {
        c.broadcast(s, test_payload(s, i, bytes));
      }
    });
  }
  return threads;
}

TEST(TcpThreads, ConcurrentBroadcastersPreserveTotalOrder) {
  TcpCluster c(4, small_group());
  auto threads = senders(c, 3, 40, 512);
  for (auto& t : threads) t.join();
  ASSERT_TRUE(c.wait_deliveries(120, kWait));
  EXPECT_EQ(c.checker().online_violation(), "");
  EXPECT_EQ(c.check_invariants(), "");
}

TEST(TcpThreads, CrashUnderConcurrentTrafficKeepsInvariants) {
  TcpCluster c(4, small_group());
  auto threads = senders(c, 3, 30, 512);
  // Crash the non-sender while the three broadcaster threads are mid-burst:
  // its I/O thread stops (sockets reset) concurrently with posts everywhere.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  c.crash(3);
  for (auto& t : threads) t.join();

  // post_wait() against the stopped node must run inline, not deadlock.
  bool ran = false;
  c.with_member(3, [&ran](GroupMember&) { ran = true; });
  EXPECT_TRUE(ran);

  ASSERT_TRUE(c.wait_view_size(3, kWait));
  ASSERT_TRUE(c.wait_deliveries(90, kWait));
  EXPECT_EQ(c.checker().online_violation(), "");
  EXPECT_EQ(c.check_invariants(), "");
}

TEST(TcpThreads, ShutdownWithInflightTrafficIsClean) {
  // No wait_deliveries: the cluster is torn down while frames are still in
  // outboxes and closures may still sit in post queues. Exercises stop()'s
  // join + drain path and the wake-pipe lifetime on every node.
  TcpCluster c(3, small_group());
  auto threads = senders(c, 2, 25, 2048);
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.checker().online_violation(), "");
}

TEST(TcpThreads, BroadcastAfterCrashIsHarmless) {
  // Broadcasts against a crashed node are dropped (racing ones may still
  // reach the stopped transport's post queue). Must not touch a dead fd or
  // trip the checker.
  TcpCluster c(3, small_group());
  c.broadcast(0, test_payload(0, 1, 256));
  ASSERT_TRUE(c.wait_deliveries(1, kWait));
  c.crash(2);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    c.broadcast(2, test_payload(2, i, 256));  // dropped: node 2 is crashed
  }
  ASSERT_TRUE(c.wait_view_size(2, kWait));
  c.broadcast(1, test_payload(1, 1, 256));
  ASSERT_TRUE(c.wait_deliveries(2, kWait));
  EXPECT_EQ(c.checker().online_violation(), "");
}

}  // namespace
}  // namespace fsr
