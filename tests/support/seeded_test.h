// Shared support for seeded simulation tests. Any test that derives its
// randomness from a seed should open with FSR_SEED_TRACE(...): gtest then
// appends the seed (and the cluster shape, when given) to every assertion
// failure in scope, so a red run reproduces from the log alone — no
// rerunning the suite to rediscover which parameters failed.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "harness/sim_cluster.h"

namespace fsr::test {

/// "repro: seed=<s>" plus optional free-form context.
inline std::string seed_banner(std::uint64_t seed, const std::string& extra = "") {
  std::string out = "repro: seed=" + std::to_string(seed);
  if (!extra.empty()) out += " " + extra;
  return out;
}

/// Banner carrying everything needed to rebuild a SimCluster run: the RNG
/// seed, the cluster shape and the NetConfig seed.
inline std::string seed_banner(std::uint64_t seed, const ClusterConfig& cfg) {
  std::ostringstream out;
  out << "repro: seed=" << seed << " n=" << cfg.n << " t=" << cfg.group.engine.t
      << " segment=" << cfg.group.engine.segment_size
      << " window=" << cfg.group.engine.window
      << " gc_interval=" << cfg.group.engine.gc_interval
      << " net_seed=" << cfg.net.seed;
  if (cfg.initial_members != 0) out << " initial_members=" << cfg.initial_members;
  return out.str();
}

}  // namespace fsr::test

/// Attach a seed banner to every assertion failure until end of scope.
/// Args: a seed, optionally followed by a ClusterConfig or extra string —
/// see fsr::test::seed_banner overloads.
#define FSR_SEED_TRACE(...) \
  ::testing::ScopedTrace fsr_seed_trace_(__FILE__, __LINE__, ::fsr::test::seed_banner(__VA_ARGS__))
