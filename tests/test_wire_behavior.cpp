// Wire-level behaviour observed through the network frame tap: GC watermark
// circulation is bounded to one ring lap, the per-frame ack cap is honored,
// and piggybacked control rides only on frames that exist anyway.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"
#include "proto/codec.h"

namespace fsr {
namespace {

TEST(WireBehavior, GcWatermarkCirculatesAtMostOneLap) {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.group.engine.t = 1;
  cfg.group.engine.segment_size = 2048;
  cfg.group.engine.gc_interval = 8;
  SimCluster c(cfg);

  // Count GC messages per watermark value: each emitted watermark may be
  // forwarded at most n-1 times (hops_left counts down from n-1).
  std::map<GlobalSeq, int> gc_seen;
  std::uint32_t max_hops = 0;
  c.world().net().set_frame_tap([&](const Frame& f) {
    for (const auto& m : f.msgs) {
      if (const auto* g = std::get_if<GcMsg>(&m)) {
        gc_seen[g->all_delivered]++;
        max_hops = std::max(max_hops, g->hops_left);
      }
    }
  });

  for (int i = 0; i < 60; ++i) {
    c.broadcast(2, test_payload(2, static_cast<std::uint64_t>(i + 1), 2048));
  }
  c.sim().run();
  ASSERT_FALSE(gc_seen.empty()) << "gc_interval=8 with 60 messages must emit GC";
  for (const auto& [w, count] : gc_seen) {
    EXPECT_LE(count, 4) << "GC for watermark " << w << " circulated too far";
  }
  EXPECT_LE(max_hops, 4u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(WireBehavior, MaxAcksPerFrameCapIsHonored) {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.group.engine.t = 1;
  cfg.group.engine.segment_size = 1024;
  cfg.group.engine.max_acks_per_frame = 2;
  SimCluster c(cfg);

  std::size_t max_ctrl_in_frame = 0;
  c.world().net().set_frame_tap([&](const Frame& f) {
    std::size_t ctrl = 0;
    for (const auto& m : f.msgs) {
      if (std::holds_alternative<AckMsg>(m) || std::holds_alternative<GcMsg>(m)) ++ctrl;
    }
    max_ctrl_in_frame = std::max(max_ctrl_in_frame, ctrl);
  });

  for (NodeId s = 0; s < 5; ++s) {
    for (int i = 0; i < 15; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 4096));
    }
  }
  c.sim().run();
  EXPECT_LE(max_ctrl_in_frame, 2u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(WireBehavior, PayloadCrossesEachLinkOncePerMessage) {
  // The throughput mechanism itself (§4.1): count payload-bearing frames on
  // every link for a single broadcast — each of the n links carries the
  // payload at most once, n-1 in total.
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.group.engine.t = 2;
  SimCluster c(cfg);
  std::map<std::pair<NodeId, NodeId>, int> payload_crossings;
  c.world().net().set_frame_tap([&](const Frame& f) {
    for (const auto& m : f.msgs) {
      if (carries_payload(m)) payload_crossings[{f.from, f.to}]++;
    }
  });
  c.broadcast(4, test_payload(4, 1, 5000));
  c.sim().run();
  int total = 0;
  for (const auto& [link, count] : payload_crossings) {
    EXPECT_LE(count, 1) << "link " << link.first << "->" << link.second;
    total += count;
  }
  EXPECT_EQ(total, 5);  // n-1 links
  EXPECT_EQ(c.check_all(), "");
}

TEST(SimulatorExtra, CancelAheadOfRunUntilDeadline) {
  // Exercises run_until's tombstone-skipping path: the earliest event is
  // canceled, and run_until must still honor the deadline for the rest.
  Simulator sim;
  std::vector<int> fired;
  TimerId a = sim.schedule(10, [&] { fired.push_back(1); });
  sim.schedule(20, [&] { fired.push_back(2); });
  sim.schedule(30, [&] { fired.push_back(3); });
  sim.cancel(a);
  EXPECT_EQ(sim.run_until(25), 1u);
  EXPECT_EQ(fired, std::vector<int>{2});
  EXPECT_EQ(sim.now(), 25);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{2, 3}));
}

}  // namespace
}  // namespace fsr
