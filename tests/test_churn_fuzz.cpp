// Membership churn fuzzing: random joins, graceful leaves and crashes
// interleaved with traffic, across many seeds. Safety (integrity, total
// order) must hold unconditionally; the final surviving group must still
// make progress.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "harness/sim_cluster.h"
#include "support/seeded_test.h"

namespace fsr {
namespace {

struct ChurnCase {
  std::uint64_t seed;
};

class ChurnFuzzTest : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(ChurnFuzzTest, SafetyHoldsUnderChurn) {
  Rng rng(GetParam().seed);
  const std::size_t universe = 6 + rng.below(3);  // 6..8 potential nodes
  const std::size_t initial = 3 + rng.below(2);   // 3..4 initial members

  ClusterConfig cfg;
  cfg.n = universe;
  cfg.initial_members = initial;
  cfg.group.engine.t = 1 + static_cast<std::uint32_t>(rng.below(2));
  cfg.group.engine.segment_size = 1024 + rng.below(4096);
  FSR_SEED_TRACE(GetParam().seed, cfg);
  SimCluster c(cfg);

  std::set<NodeId> in_group;      // believed members (approximate tracking)
  std::set<NodeId> outside;       // can join
  std::set<NodeId> gone;          // crashed or left: unusable
  for (std::size_t i = 0; i < universe; ++i) {
    auto id = static_cast<NodeId>(i);
    (i < initial ? in_group : outside).insert(id);
  }

  std::map<NodeId, std::uint64_t> sent;
  Time t = 0;
  int crashes_left = static_cast<int>(cfg.group.engine.t);

  for (int ev = 0; ev < 25; ++ev) {
    t += static_cast<Time>(1 + rng.below(15)) * kMillisecond;
    switch (rng.below(4)) {
      case 0: {  // broadcast burst from a member
        if (in_group.empty()) break;
        auto it = in_group.begin();
        std::advance(it, static_cast<long>(rng.below(in_group.size())));
        NodeId s = *it;
        int burst = 1 + static_cast<int>(rng.below(5));
        for (int b = 0; b < burst; ++b) {
          auto app = ++sent[s];
          std::size_t size = 1 + rng.below(6000);
          c.sim().schedule_at(t, [&c, s, app, size] {
            c.broadcast(s, test_payload(s, app, size));
          });
        }
        break;
      }
      case 1: {  // join
        if (outside.empty() || in_group.empty()) break;
        auto it = outside.begin();
        std::advance(it, static_cast<long>(rng.below(outside.size())));
        NodeId j = *it;
        NodeId contact = *in_group.begin();
        outside.erase(j);
        in_group.insert(j);
        c.sim().schedule_at(t, [&c, j, contact] {
          if (!c.node(j).in_group()) c.node(j).request_join(contact);
        });
        break;
      }
      case 2: {  // graceful leave (keep at least 2 members)
        if (in_group.size() <= 2) break;
        auto it = in_group.begin();
        std::advance(it, static_cast<long>(rng.below(in_group.size())));
        NodeId l = *it;
        in_group.erase(l);
        gone.insert(l);
        c.sim().schedule_at(t, [&c, l] { c.node(l).request_leave(); });
        break;
      }
      default: {  // crash (bounded by t per configuration)
        if (crashes_left <= 0 || in_group.size() <= 2) break;
        auto it = in_group.begin();
        std::advance(it, static_cast<long>(rng.below(in_group.size())));
        NodeId d = *it;
        in_group.erase(d);
        gone.insert(d);
        --crashes_left;
        c.sim().schedule_at(t, [&c, d] { c.crash(d); });
        break;
      }
    }
  }

  c.sim().run();

  // Safety invariants hold across everything that happened.
  ASSERT_EQ(c.check_total_order(), "") << "seed=" << GetParam().seed;
  ASSERT_EQ(c.check_integrity(), "") << "seed=" << GetParam().seed;

  // Liveness: the survivors still form a working group.
  ASSERT_FALSE(in_group.empty());
  NodeId probe = *in_group.begin();
  auto app = ++sent[probe];
  std::size_t before = c.log(probe).size();
  c.broadcast(probe, test_payload(probe, app, 256));
  c.sim().run();
  EXPECT_GT(c.log(probe).size(), before)
      << "seed=" << GetParam().seed << ": group wedged after churn";

  // All current members share one view.
  ViewId vid = 0;
  for (NodeId m : in_group) {
    if (!c.node(m).in_group()) continue;  // join may have raced a leave
    if (vid == 0) vid = c.node(m).view().id;
    EXPECT_EQ(c.node(m).view().id, vid) << "seed=" << GetParam().seed;
  }
}

std::vector<ChurnCase> seeds() {
  std::vector<ChurnCase> out;
  for (std::uint64_t s = 1; s <= 60; ++s) out.push_back({s * 0x9e3779b97f4a7c15ULL});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnFuzzTest, ::testing::ValuesIn(seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace fsr
