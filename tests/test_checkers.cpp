// Self-tests of the safety checkers: each must actually flag a violation
// when fed one. Without these, a silently broken checker would make the
// whole property-test suite vacuous.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"
#include "roundmodel/round_engine.h"

namespace fsr {
namespace {

// A harness exposing direct log injection by replaying deliveries through
// a trivial cluster is awkward; instead, exercise the checkers through the
// round-model engine (whose deliver() we control directly) and through
// deliberately inconsistent SimCluster usage.

class ScriptedProtocol final : public rounds::Protocol {
 public:
  using Script = std::function<void(rounds::RoundEngine&, long long)>;
  explicit ScriptedProtocol(Script script) : script_(std::move(script)) {}
  std::optional<rounds::Send> on_round(int p, long long round) override {
    if (p == 0 && script_) script_(*engine_, round);
    return std::nullopt;
  }
  void on_receive(int, const rounds::Msg&, long long) override {}
  std::string name() const override { return "scripted"; }

 private:
  Script script_;
};

TEST(Checkers, RoundModelOrderCheckerAcceptsConsistentLogs) {
  ScriptedProtocol proto([](rounds::RoundEngine& e, long long round) {
    if (round != 0) return;
    long long a = e.take_app_message(0);
    long long b = e.take_app_message(0);
    for (int p = 0; p < 3; ++p) {
      e.deliver(p, a);
      e.deliver(p, b);
    }
  });
  rounds::RoundEngine engine({3, {0}, 2}, proto);
  engine.run(1);
  EXPECT_EQ(engine.check_total_order(), "");
  EXPECT_EQ(engine.completed(), 2);
}

TEST(Checkers, RoundModelOrderCheckerFlagsReordering) {
  ScriptedProtocol proto([](rounds::RoundEngine& e, long long round) {
    if (round != 0) return;
    long long a = e.take_app_message(0);
    long long b = e.take_app_message(0);
    e.deliver(0, a);
    e.deliver(0, b);
    e.deliver(1, b);  // swapped
    e.deliver(1, a);
    e.deliver(2, a);
    e.deliver(2, b);
  });
  rounds::RoundEngine engine({3, {0}, 2}, proto);
  engine.run(1);
  EXPECT_NE(engine.check_total_order(), "");
}

TEST(Checkers, RoundModelOrderCheckerFlagsPartialOverlapReordering) {
  // Logs of different lengths whose common subsequence disagrees.
  ScriptedProtocol proto([](rounds::RoundEngine& e, long long round) {
    if (round != 0) return;
    long long a = e.take_app_message(0);
    long long b = e.take_app_message(0);
    long long c = e.take_app_message(0);
    e.deliver(0, a);
    e.deliver(0, b);
    e.deliver(0, c);
    e.deliver(1, c);  // only two deliveries, out of relative order
    e.deliver(1, a);
  });
  rounds::RoundEngine engine({2, {0}, 3}, proto);
  engine.run(1);
  EXPECT_NE(engine.check_total_order(), "");
}

TEST(Checkers, SimClusterIntegrityFlagsNeverBroadcastMessages) {
  // Deliver something through a back door: broadcast from the engine
  // directly (bypassing SimCluster::broadcast's bookkeeping) — the
  // integrity checker must notice an unknown (origin, app_msg).
  ClusterConfig cfg;
  cfg.n = 3;
  SimCluster c(cfg);
  c.node(1).broadcast(test_payload(1, 1, 64));  // not via c.broadcast()
  c.sim().run();
  EXPECT_NE(c.check_integrity(), "");
}

TEST(Checkers, SimClusterChecksPassOnHonestRun) {
  ClusterConfig cfg;
  cfg.n = 3;
  SimCluster c(cfg);
  c.broadcast(1, test_payload(1, 1, 64));
  c.sim().run();
  EXPECT_EQ(c.check_integrity(), "");
  EXPECT_EQ(c.check_total_order(), "");
  EXPECT_EQ(c.check_agreement({0, 1, 2}), "");
  EXPECT_EQ(c.check_uniformity({}, {0, 1, 2}), "");
}

}  // namespace
}  // namespace fsr
