#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace fsr {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualDeadlinesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator sim;
  Time second_fired = -1;
  sim.schedule(10, [&] {
    sim.schedule(15, [&] { second_fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(second_fired, 25);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  TimerId id = sim.schedule(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int fired = 0;
  TimerId id = sim.schedule(10, [&] { ++fired; });
  sim.run();
  sim.cancel(id);  // after fire: harmless
  sim.cancel(id);
  sim.schedule(5, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelDefaultConstructedIdIsNoop) {
  Simulator sim;
  sim.cancel(TimerId{});
  bool fired = false;
  sim.schedule(1, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<Time> fired;
  for (Time t = 10; t <= 100; t += 10) {
    sim.schedule(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(50), 5u);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.run(), 5u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenEmpty) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, RunStepsBoundsExecution) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(i, [&] { ++count; });
  EXPECT_EQ(sim.run_steps(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(Simulator, EventsCanScheduleAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] {
    order.push_back(1);
    sim.schedule(0, [&] { order.push_back(2); });
  });
  sim.schedule(10, [&] { order.push_back(3); });
  sim.run();
  // The zero-delay event was scheduled after entry 3, so it runs after it.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, PendingTracksCancellation) {
  Simulator sim;
  auto a = sim.schedule(1, [] {});
  sim.schedule(2, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace fsr
