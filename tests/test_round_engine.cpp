// Mechanics of the round-based model engine itself (§3): single receive per
// round, FIFO inbox queuing, workload accounting, metrics.
#include <gtest/gtest.h>

#include "roundmodel/round_engine.h"

namespace fsr::rounds {
namespace {

/// A protocol where process 0 broadcasts to everyone each round and the
/// receivers do nothing — used to observe the engine's queuing behaviour.
class Flooder final : public Protocol {
 public:
  std::optional<Send> on_round(int p, long long) override {
    if (p != 0) return std::nullopt;
    Msg m;
    m.kind = Msg::Kind::kData;
    m.origin = 0;
    m.bcast = counter_++;
    return Send{{1, 2}, m};
  }
  void on_receive(int p, const Msg& m, long long) override {
    received_.push_back({p, m.bcast});
  }
  std::string name() const override { return "flooder"; }

  long long counter_ = 0;
  std::vector<std::pair<int, long long>> received_;
};

TEST(RoundEngine, OneReceivePerRoundPerProcess) {
  Flooder proto;
  RoundEngine engine({3, {}, 0}, proto);
  engine.run(10);
  // 10 sends to each of 2 receivers, but a message sent in round r is
  // received at the end of round r: each receiver consumed at most 10.
  int for_p1 = 0, for_p2 = 0;
  for (auto& [p, b] : proto.received_) {
    if (p == 1) ++for_p1;
    if (p == 2) ++for_p2;
  }
  EXPECT_EQ(for_p1, 10);
  EXPECT_EQ(for_p2, 10);
}

TEST(RoundEngine, InboxIsFifo) {
  Flooder proto;
  RoundEngine engine({3, {}, 0}, proto);
  engine.run(5);
  long long prev = -1;
  for (auto& [p, b] : proto.received_) {
    if (p != 1) continue;
    EXPECT_GT(b, prev);
    prev = b;
  }
}

/// Sends two messages per round to one receiver: the queue must grow.
class Overloader final : public Protocol {
 public:
  std::optional<Send> on_round(int p, long long) override {
    if (p == 0 || p == 1) {
      Msg m;
      m.bcast = 0;
      return Send{{2}, m};
    }
    return std::nullopt;
  }
  void on_receive(int, const Msg&, long long) override { ++received_; }
  std::string name() const override { return "overloader"; }
  int received_ = 0;
};

TEST(RoundEngine, OverloadedReceiverQueues) {
  Overloader proto;
  RoundEngine engine({3, {}, 0}, proto);
  engine.run(20);
  // 40 messages sent, only one consumed per round.
  EXPECT_EQ(proto.received_, 20);
  EXPECT_GE(engine.max_backlog(), 19u);
}

/// Delivers its own app messages locally and reports them — exercises the
/// workload/metrics plumbing without any networking.
class SelfDeliver final : public Protocol {
 public:
  std::optional<Send> on_round(int p, long long) override {
    if (engine_->has_app_message(p)) {
      long long b = engine_->take_app_message(p);
      for (int q = 0; q < engine_->n(); ++q) engine_->deliver(q, b);
    }
    return std::nullopt;
  }
  void on_receive(int, const Msg&, long long) override {}
  std::string name() const override { return "self"; }
};

TEST(RoundEngine, WorkloadLimitsPerSender) {
  SelfDeliver proto;
  RoundEngine engine({4, {0, 2}, 5}, proto);
  engine.run(50);
  EXPECT_EQ(engine.completed(), 10);
  auto by_origin = engine.completed_by_origin();
  EXPECT_EQ(by_origin[0], 5);
  EXPECT_EQ(by_origin[2], 5);
  EXPECT_EQ(by_origin.count(1), 0u);
}

TEST(RoundEngine, LatencyAndCompletionWindows) {
  SelfDeliver proto;
  RoundEngine engine({2, {0}, 3}, proto);
  engine.run(10);
  EXPECT_EQ(engine.completed(), 3);
  for (long long b = 0; b < 3; ++b) EXPECT_EQ(engine.latency(b), 0);
  EXPECT_EQ(engine.completed_between(0, 3), 3);
  EXPECT_EQ(engine.completed_between(3, 10), 0);
  EXPECT_EQ(engine.origin_of(0), 0);
}

TEST(RoundEngine, TotalOrderCheckerCatchesDivergence) {
  // Deliver in different orders at two processes: must be flagged.
  SelfDeliver proto;
  RoundEngine engine({2, {0}, 2}, proto);
  engine.run(5);
  EXPECT_EQ(engine.check_total_order(), "");

  class Diverger final : public Protocol {
   public:
    std::optional<Send> on_round(int p, long long round) override {
      if (p == 0 && round == 0) {
        long long a = engine_->take_app_message(0);
        long long b = engine_->take_app_message(0);
        engine_->deliver(0, a);
        engine_->deliver(0, b);
        engine_->deliver(1, b);  // reversed at process 1
        engine_->deliver(1, a);
      }
      return std::nullopt;
    }
    void on_receive(int, const Msg&, long long) override {}
    std::string name() const override { return "diverger"; }
  };
  Diverger bad;
  RoundEngine engine2({2, {0}, 2}, bad);
  engine2.run(1);
  EXPECT_NE(engine2.check_total_order(), "");
}

}  // namespace
}  // namespace fsr::rounds
