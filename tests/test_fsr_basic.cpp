// Failure-free end-to-end behaviour of the FSR protocol on the simulated
// cluster: single broadcasts, bursts, every sender position, segmentation,
// and the analytic throughput/fairness properties at cluster scale.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"

namespace fsr {
namespace {

ClusterConfig small_cluster(std::size_t n, std::uint32_t t) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.group.engine.t = t;
  return cfg;
}

TEST(FsrBasic, SingleBroadcastDeliveredEverywhere) {
  SimCluster c(small_cluster(4, 1));
  c.broadcast(2, test_payload(2, 1, 1000));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
    EXPECT_EQ(c.log(n)[0].origin, 2u);
    EXPECT_EQ(c.log(n)[0].bytes, 1000u);
  }
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, LeaderBroadcastDeliveredEverywhere) {
  SimCluster c(small_cluster(5, 2));
  c.broadcast(0, test_payload(0, 1, 500));
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) ASSERT_EQ(c.log(n).size(), 1u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, BackupBroadcastDeliveredEverywhere) {
  SimCluster c(small_cluster(5, 2));
  c.broadcast(1, test_payload(1, 1, 500));  // backup position 1
  c.broadcast(2, test_payload(2, 1, 500));  // backup position 2
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) ASSERT_EQ(c.log(n).size(), 2u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, TwoNodeRing) {
  SimCluster c(small_cluster(2, 1));
  c.broadcast(0, test_payload(0, 1, 100));
  c.broadcast(1, test_payload(1, 1, 100));
  c.sim().run();
  for (NodeId n = 0; n < 2; ++n) ASSERT_EQ(c.log(n).size(), 2u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, EmptyPayloadBroadcast) {
  SimCluster c(small_cluster(3, 1));
  c.broadcast(1, Bytes{});
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u);
    EXPECT_EQ(c.log(n)[0].bytes, 0u);
  }
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, LargeMessageIsSegmentedAndReassembled) {
  ClusterConfig cfg = small_cluster(4, 1);
  cfg.group.engine.segment_size = 1024;
  SimCluster c(cfg);
  c.broadcast(3, test_payload(3, 1, 100 * 1024));  // 100 segments
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u);
    EXPECT_EQ(c.log(n)[0].bytes, 100u * 1024u);
  }
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, BurstFromOneSenderArrivesInOrder) {
  SimCluster c(small_cluster(4, 1));
  for (int i = 0; i < 50; ++i) {
    c.broadcast(2, test_payload(2, static_cast<std::uint64_t>(i + 1), 200));
  }
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 50u);
    for (std::size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(c.log(n)[i].app_msg, i + 1) << "node " << n;
    }
  }
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, ConcurrentSendersAllDelivered) {
  SimCluster c(small_cluster(5, 1));
  for (NodeId s = 0; s < 5; ++s) {
    for (int i = 0; i < 20; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 300));
    }
  }
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) ASSERT_EQ(c.log(n).size(), 100u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, GlobalSequenceNumbersAreGapFreeAndAligned) {
  SimCluster c(small_cluster(4, 1));
  for (NodeId s = 0; s < 4; ++s) c.broadcast(s, test_payload(s, 1, 100));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    const auto& log = c.log(n);
    ASSERT_EQ(log.size(), 4u);
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].seq, c.log(0)[i].seq);
    }
  }
}

TEST(FsrBasic, SingletonGroupDeliversLocally) {
  SimCluster c(small_cluster(1, 0));
  c.broadcast(0, test_payload(0, 1, 999));
  c.broadcast(0, test_payload(0, 2, 1));
  c.sim().run();
  ASSERT_EQ(c.log(0).size(), 2u);
  EXPECT_EQ(c.log(0)[0].bytes, 999u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, TZeroDeliversWithoutBackups) {
  SimCluster c(small_cluster(4, 0));
  for (NodeId s = 0; s < 4; ++s) c.broadcast(s, test_payload(s, 1, 256));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) ASSERT_EQ(c.log(n).size(), 4u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, MaxBackups) {
  // t = n-1: every non-leader is a backup.
  SimCluster c(small_cluster(5, 4));
  for (NodeId s = 0; s < 5; ++s) c.broadcast(s, test_payload(s, 1, 256));
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) ASSERT_EQ(c.log(n).size(), 5u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, InterleavedLargeAndSmallMessages) {
  ClusterConfig cfg = small_cluster(4, 1);
  cfg.group.engine.segment_size = 2048;
  SimCluster c(cfg);
  c.broadcast(1, test_payload(1, 1, 50 * 1024));
  c.broadcast(2, test_payload(2, 1, 64));
  c.broadcast(3, test_payload(3, 1, 30 * 1024));
  c.broadcast(2, test_payload(2, 2, 64));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) ASSERT_EQ(c.log(n).size(), 4u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(FsrBasic, DeliveryCallbackMayRebroadcast) {
  // Reentrancy: respond to a delivery by broadcasting again.
  ClusterConfig cfg = small_cluster(3, 1);
  SimCluster c(cfg);
  bool responded = false;
  // Node 2 replies to the first delivery it sees from node 0.
  // (Uses the engine hook through a manual broadcast scheduled on delivery.)
  c.sim().schedule(0, [&] { c.broadcast(0, test_payload(0, 1, 128)); });
  c.sim().schedule(kSecond, [&] {
    if (!c.log(2).empty() && !responded) {
      responded = true;
      c.broadcast(2, test_payload(2, 1, 128));
    }
  });
  c.sim().run();
  EXPECT_TRUE(responded);
  for (NodeId n = 0; n < 3; ++n) ASSERT_EQ(c.log(n).size(), 2u);
  EXPECT_EQ(c.check_all(), "");
}

// --- parameterized sweep over topologies and sender patterns ---

struct SweepParam {
  std::size_t n;
  std::uint32_t t;
  std::size_t senders;   // first k nodes broadcast
  int msgs_per_sender;
  std::size_t msg_size;
};

class FsrSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FsrSweepTest, AllInvariantsHold) {
  const auto& p = GetParam();
  ClusterConfig cfg = small_cluster(p.n, p.t);
  SimCluster c(cfg);
  for (std::size_t s = 0; s < p.senders; ++s) {
    for (int i = 0; i < p.msgs_per_sender; ++i) {
      c.broadcast(static_cast<NodeId>(s),
                  test_payload(static_cast<NodeId>(s),
                               static_cast<std::uint64_t>(i + 1), p.msg_size));
    }
  }
  c.sim().run();
  std::size_t expected = p.senders * static_cast<std::size_t>(p.msgs_per_sender);
  for (std::size_t n = 0; n < p.n; ++n) {
    ASSERT_EQ(c.log(static_cast<NodeId>(n)).size(), expected)
        << "node " << n << " (n=" << p.n << " t=" << p.t << ")";
  }
  EXPECT_EQ(c.check_all(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, FsrSweepTest,
    ::testing::Values(
        SweepParam{2, 0, 2, 10, 512}, SweepParam{2, 1, 2, 10, 512},
        SweepParam{3, 1, 1, 30, 1024}, SweepParam{3, 2, 3, 10, 256},
        SweepParam{4, 1, 2, 15, 2048}, SweepParam{5, 2, 5, 8, 4096},
        SweepParam{6, 1, 3, 10, 1000}, SweepParam{7, 3, 7, 5, 700},
        SweepParam{8, 2, 4, 8, 1500}, SweepParam{10, 2, 10, 4, 900},
        SweepParam{10, 0, 1, 40, 3000}, SweepParam{12, 4, 6, 5, 512}),
    [](const auto& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + "_t" + std::to_string(p.t) + "_k" +
             std::to_string(p.senders) + "_m" + std::to_string(p.msgs_per_sender) +
             "_b" + std::to_string(p.msg_size);
    });

}  // namespace
}  // namespace fsr
