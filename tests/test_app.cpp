// Replicated state machines on top of FSR: the KV store and the bank
// ledger. Replica consistency (equal fingerprints) is the application-level
// restatement of total order; crashes must never cause divergence among
// survivors.
#include <gtest/gtest.h>

#include <memory>

#include "app/bank.h"
#include "app/kv_store.h"
#include "harness/sim_cluster.h"

namespace fsr {
namespace {

struct KvFixture {
  explicit KvFixture(std::size_t n, std::uint32_t t = 1) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.group.engine.t = t;
    cluster = std::make_unique<SimCluster>(cfg);
    stores.resize(n);
    cluster->set_delivery_tap([this](NodeId node, const Delivery& d) {
      stores[node].apply(d.origin, d.payload);
    });
  }
  std::unique_ptr<SimCluster> cluster;
  std::vector<KvStore> stores;
};

TEST(KvStore, CommandCodecRoundtrip) {
  KvStore kv;
  kv.apply(0, KvStore::encode_put("alpha", "1"));
  kv.apply(0, KvStore::encode_put("beta", "2"));
  EXPECT_EQ(kv.get("alpha"), "1");
  EXPECT_EQ(kv.get("beta"), "2");
  kv.apply(0, KvStore::encode_del("alpha"));
  EXPECT_FALSE(kv.get("alpha").has_value());
  kv.apply(0, KvStore::encode_cas("beta", "2", "3"));
  EXPECT_EQ(kv.get("beta"), "3");
  kv.apply(0, KvStore::encode_cas("beta", "2", "4"));  // stale expected
  EXPECT_EQ(kv.get("beta"), "3");
  EXPECT_EQ(kv.failed_cas(), 1u);
}

TEST(KvStore, MalformedCommandIgnored) {
  KvStore kv;
  kv.apply(0, Bytes{0x01});        // PUT with no fields
  kv.apply(0, Bytes{0x7f, 0x00});  // unknown opcode
  kv.apply(0, Bytes{});            // empty
  EXPECT_EQ(kv.applied_commands(), 0u);
  EXPECT_EQ(kv.size(), 0u);
}

TEST(KvStore, FingerprintDetectsDifferences) {
  KvStore a, b;
  a.apply(0, KvStore::encode_put("k", "v"));
  b.apply(0, KvStore::encode_put("k", "w"));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b.apply(0, KvStore::encode_put("k", "v"));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ReplicatedKv, AllReplicasConverge) {
  KvFixture f(4);
  for (int i = 0; i < 20; ++i) {
    NodeId writer = static_cast<NodeId>(i % 4);
    f.cluster->broadcast(writer, KvStore::encode_put("key" + std::to_string(i % 5),
                                                     "v" + std::to_string(i)));
  }
  f.cluster->sim().run();
  for (NodeId n = 1; n < 4; ++n) {
    EXPECT_EQ(f.stores[0].fingerprint(), f.stores[n].fingerprint()) << "node " << n;
  }
  EXPECT_EQ(f.stores[0].applied_commands(), 20u);
}

TEST(ReplicatedKv, ConcurrentCasResolvesIdenticallyEverywhere) {
  KvFixture f(5);
  f.cluster->broadcast(0, KvStore::encode_put("lock", "free"));
  f.cluster->sim().run();
  // Everyone races to grab the lock; exactly one CAS can win, and every
  // replica must agree on the winner.
  for (NodeId n = 0; n < 5; ++n) {
    f.cluster->broadcast(n, KvStore::encode_cas("lock", "free", "owner" + std::to_string(n)));
  }
  f.cluster->sim().run();
  auto winner = f.stores[0].get("lock");
  ASSERT_TRUE(winner.has_value());
  EXPECT_NE(*winner, "free");
  for (NodeId n = 1; n < 5; ++n) {
    EXPECT_EQ(f.stores[n].get("lock"), winner) << "node " << n;
    EXPECT_EQ(f.stores[n].failed_cas(), 4u) << "node " << n;
  }
}

TEST(ReplicatedKv, SurvivorsConvergeAfterLeaderCrash) {
  KvFixture f(5, 2);
  for (int i = 0; i < 30; ++i) {
    f.cluster->broadcast(static_cast<NodeId>(i % 5),
                         KvStore::encode_put("k" + std::to_string(i), "v"));
  }
  f.cluster->sim().schedule(10 * kMillisecond, [&] { f.cluster->crash(0); });
  f.cluster->sim().run();
  EXPECT_EQ(f.cluster->check_all(), "");
  for (NodeId n = 2; n < 5; ++n) {
    EXPECT_EQ(f.stores[1].fingerprint(), f.stores[n].fingerprint()) << "node " << n;
  }
}

TEST(Bank, CommandsAndInvariants) {
  Bank bank;
  bank.apply(0, Bank::encode_deposit("alice", 100));
  bank.apply(0, Bank::encode_deposit("bob", 50));
  bank.apply(0, Bank::encode_transfer("alice", "bob", 30));
  EXPECT_EQ(bank.balance("alice"), 70);
  EXPECT_EQ(bank.balance("bob"), 80);
  EXPECT_EQ(bank.total(), 150);
  bank.apply(0, Bank::encode_withdraw("alice", 1000));  // rejected
  EXPECT_EQ(bank.rejected(), 1u);
  EXPECT_EQ(bank.total(), 150);
}

TEST(ReplicatedBank, TotalConservedAcrossCrashes) {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.group.engine.t = 2;
  SimCluster cluster(cfg);
  std::vector<Bank> banks(5);
  cluster.set_delivery_tap([&](NodeId node, const Delivery& d) {
    banks[node].apply(d.origin, d.payload);
  });

  for (NodeId n = 0; n < 5; ++n) {
    cluster.broadcast(n, Bank::encode_deposit("acct" + std::to_string(n), 1000));
  }
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    auto from = static_cast<NodeId>(rng.below(5));
    std::string a = "acct" + std::to_string(rng.below(5));
    std::string b = "acct" + std::to_string(rng.below(5));
    if (a != b) {
      cluster.broadcast(from, Bank::encode_transfer(a, b, static_cast<std::int64_t>(rng.below(200))));
    }
  }
  cluster.sim().schedule(15 * kMillisecond, [&] { cluster.crash(1); });
  cluster.sim().schedule(30 * kMillisecond, [&] { cluster.crash(3); });
  cluster.sim().run();
  EXPECT_EQ(cluster.check_all(), "");
  // Survivors agree bit-for-bit and conserve the total.
  for (NodeId n : {NodeId{2}, NodeId{4}}) {
    EXPECT_EQ(banks[0].fingerprint(), banks[n].fingerprint()) << "node " << n;
  }
  EXPECT_EQ(banks[0].total(), 5000);
}

}  // namespace
}  // namespace fsr
