#include "net/cluster_net.h"

#include <gtest/gtest.h>

#include "proto/codec.h"

namespace fsr {
namespace {

Frame make_frame(NodeId from, NodeId to, std::size_t payload_bytes) {
  DataMsg m;
  m.id = MsgId{from, 1};
  m.payload = make_payload(Bytes(payload_bytes, 0x42));
  return Frame{from, to, 0, {m}};
}

TEST(ClusterNet, WireTimeMatchesBandwidthAndOverhead) {
  Simulator sim;
  NetConfig cfg;
  cfg.bandwidth_bps = 100e6;
  cfg.mss = 1448;
  cfg.per_packet_overhead = 90;
  ClusterNet net(sim, cfg, 2);
  // 1448 bytes -> one packet -> 1538 on-wire bytes -> 123.04 us.
  Time t = net.wire_time(1448);
  EXPECT_NEAR(static_cast<double>(t), (1448 + 90) * 8.0 / 100e6 * 1e9, 1.0);
  // 8192 bytes -> 6 packets.
  Time t2 = net.wire_time(8192);
  EXPECT_NEAR(static_cast<double>(t2), (8192 + 6 * 90) * 8.0 / 100e6 * 1e9, 1.0);
}

TEST(ClusterNet, DeliversFrameAfterMarshalWireSwitchAndCpuDelay) {
  Simulator sim;
  NetConfig cfg;
  ClusterNet net(sim, cfg, 2);
  Time delivered_at = -1;
  net.set_deliver([&](const Frame& f) {
    EXPECT_EQ(f.to, 1u);
    delivered_at = sim.now();
  });
  Frame f = make_frame(0, 1, 1000);
  std::size_t bytes = wire_size(f);
  net.send(std::move(f));
  sim.run();
  // The frame carries the sender's own payload, so it pays the marshalling
  // CPU cost before transmission, then wire + switch + receive CPU.
  Time expect =
      net.cpu_time(bytes) + net.wire_time(bytes) + cfg.switch_latency + net.cpu_time(bytes);
  EXPECT_EQ(delivered_at, expect);
}

TEST(ClusterNet, ForwardedFrameSkipsMarshalCpu) {
  // A frame whose payload originated elsewhere goes straight to the NIC.
  Simulator sim;
  NetConfig cfg;
  ClusterNet net(sim, cfg, 3);
  Time delivered_at = -1;
  net.set_deliver([&](const Frame&) { delivered_at = sim.now(); });
  DataMsg m;
  m.id = MsgId{2, 1};  // origin 2, but node 0 sends it (forwarding)
  m.payload = make_payload(Bytes(1000, 0x42));
  Frame f{0, 1, 0, {m}};
  std::size_t bytes = wire_size(f);
  net.send(std::move(f));
  sim.run();
  Time expect = net.wire_time(bytes) + cfg.switch_latency + net.cpu_time(bytes);
  EXPECT_EQ(delivered_at, expect);
}

TEST(ClusterNet, TxSerializesBackToBackFrames) {
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 2);
  std::vector<Time> arrivals;
  net.set_deliver([&](const Frame&) { arrivals.push_back(sim.now()); });
  Frame a = make_frame(0, 1, 8000);
  Frame b = make_frame(0, 1, 8000);
  std::size_t bytes = wire_size(a);
  net.send(std::move(a));
  net.send(std::move(b));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame leaves the NIC one wire-time later; CPU is also busy, so
  // spacing equals the per-frame bottleneck (max of wire and cpu time).
  Time bottleneck = std::max(net.wire_time(bytes), net.cpu_time(bytes));
  EXPECT_EQ(arrivals[1] - arrivals[0], bottleneck);
}

TEST(ClusterNet, SeparateCollisionDomains) {
  // p0->p1 must not interfere with p2->p3 (paper §3).
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 4);
  std::vector<std::pair<NodeId, Time>> arrivals;
  net.set_deliver([&](const Frame& f) { arrivals.push_back({f.to, sim.now()}); });
  net.send(make_frame(0, 1, 8000));
  net.send(make_frame(2, 3, 8000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].second, arrivals[1].second);  // fully parallel
}

TEST(ClusterNet, FullDuplexSendAndReceiveOverlap) {
  // A node can send while receiving (paper §3): two opposite transfers
  // between the same pair complete at the same time.
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 2);
  std::vector<std::pair<NodeId, Time>> arrivals;
  net.set_deliver([&](const Frame& f) { arrivals.push_back({f.to, sim.now()}); });
  net.send(make_frame(0, 1, 8000));
  net.send(make_frame(1, 0, 8000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].second, arrivals[1].second);
}

TEST(ClusterNet, TxAcceptWindowAndReadySignal) {
  // tx_idle means "can accept another frame": up to 4 frames may be
  // pending in the marshalling/queue stages; on_tx_ready fires when
  // capacity frees after a send.
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 2);
  int delivered = 0;
  net.set_deliver([&](const Frame&) { ++delivered; });
  int ready_count = 0;
  net.set_tx_ready([&](NodeId n) {
    EXPECT_EQ(n, 0u);
    ++ready_count;
  });
  EXPECT_TRUE(net.tx_idle(0));
  for (int i = 0; i < 4; ++i) net.send(make_frame(0, 1, 1000));
  EXPECT_FALSE(net.tx_idle(0));  // accept window full
  net.send(make_frame(0, 1, 1000));  // still queued, never dropped
  sim.run();
  EXPECT_EQ(delivered, 5);
  EXPECT_GE(ready_count, 1);  // capacity became available again
  EXPECT_TRUE(net.tx_idle(0));
}

TEST(ClusterNet, CrashedNodeDropsTraffic) {
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 3);
  int delivered = 0;
  net.set_deliver([&](const Frame&) { ++delivered; });
  net.crash(1);
  net.send(make_frame(0, 1, 100));  // to crashed: dropped on arrival
  net.send(make_frame(1, 2, 100));  // from crashed: dropped at source
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_FALSE(net.alive(1));
  EXPECT_TRUE(net.alive(0));
}

TEST(ClusterNet, RxContentionQueuesSecondStream) {
  // Two senders to one receiver: the receiver's CPU serializes them.
  Simulator sim;
  NetConfig cfg;
  ClusterNet net(sim, cfg, 3);
  std::vector<Time> arrivals;
  net.set_deliver([&](const Frame&) { arrivals.push_back(sim.now()); });
  Frame a = make_frame(0, 2, 8000);
  std::size_t bytes = wire_size(a);
  net.send(std::move(a));
  net.send(make_frame(1, 2, 8000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], net.cpu_time(bytes));
}

TEST(ClusterNet, StatsAccumulate) {
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 2);
  net.set_deliver([](const Frame&) {});
  net.send(make_frame(0, 1, 5000));
  sim.run();
  EXPECT_EQ(net.stats(0).frames_sent, 1u);
  EXPECT_EQ(net.stats(1).frames_received, 1u);
  EXPECT_GT(net.stats(0).payload_bytes_sent, 5000u);
  EXPECT_GT(net.stats(0).wire_bytes_sent, net.stats(0).payload_bytes_sent);
}

TEST(ClusterNet, RawWireConfigApproachesTableOneCeiling) {
  // Netperf-style stream (32 KB send size): goodput ~= 94 Mb/s (Table 1).
  Simulator sim;
  NetConfig cfg = NetConfig::raw_wire();
  ClusterNet net(sim, cfg, 2);
  std::uint64_t received_payload = 0;
  net.set_deliver([&](const Frame& f) {
    received_payload += payload_size(std::get<DataMsg>(f.msgs[0]).payload);
  });
  const int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) net.send(make_frame(0, 1, 32 * 1024));
  sim.run();
  double seconds = static_cast<double>(sim.now()) / 1e9;
  double mbps = static_cast<double>(received_payload) * 8.0 / seconds / 1e6;
  EXPECT_GT(mbps, 92.0);
  EXPECT_LT(mbps, 95.0);
}

// --- NetProfile: heterogeneous per-node/per-link network profiles ---

TEST(NetProfile, PerNodeBandwidthAndCpuScaleChangeServiceTimes) {
  Simulator sim;
  NetConfig cfg;
  cfg.bandwidth_bps = 100e6;
  ClusterNet net(sim, cfg, 3);

  NetProfile slow;
  slow.bandwidth_bps = 10e6;  // a 10x slower NIC on node 1
  slow.cpu_scale = 4.0;
  net.set_node_profile(1, slow);

  EXPECT_EQ(net.node_bandwidth_bps(0), 100e6);
  EXPECT_EQ(net.node_bandwidth_bps(1), 10e6);
  // Serialization delay scales inversely with the NIC rate...
  EXPECT_EQ(net.wire_time(1, 1448), 10 * net.wire_time(0, 1448));
  EXPECT_EQ(net.wire_time(0, 1448), net.wire_time(1448));
  // ...and CPU service time scales with cpu_scale.
  EXPECT_EQ(net.cpu_time(1, 1000), 4 * net.cpu_time(0, 1000));
  EXPECT_EQ(net.cpu_time(2, 1000), net.cpu_time(1000));
}

TEST(NetProfile, SlowNodeDelaysItsOwnTransmissionsOnly) {
  auto delivery_time = [](NodeId sender, const NetProfile& profile) {
    Simulator sim;
    ClusterNet net(sim, NetConfig{}, 3);
    net.set_node_profile(1, profile);
    Time at = -1;
    net.set_deliver([&](const Frame&) { at = sim.now(); });
    net.send(make_frame(sender, 2, 4000));
    sim.run();
    return at;
  };
  NetProfile slow;
  slow.bandwidth_bps = 10e6;
  Time fast_sender = delivery_time(0, slow);
  Time slow_sender = delivery_time(1, slow);
  Time baseline = delivery_time(1, NetProfile{});
  EXPECT_EQ(fast_sender, delivery_time(0, NetProfile{}));  // node 0 untouched
  EXPECT_GT(slow_sender, baseline);
}

TEST(NetProfile, SeededLossIsDeterministic) {
  auto run_lossy = [](std::uint64_t seed) {
    Simulator sim;
    NetConfig cfg;
    cfg.seed = seed;
    ClusterNet net(sim, cfg, 2);
    NetProfile lossy;
    lossy.loss_rate = 0.3;
    lossy.retransmit_delay = 300 * kMicrosecond;
    net.set_link_profile(0, 1, lossy);
    std::vector<Time> arrivals;
    net.set_deliver([&](const Frame&) { arrivals.push_back(sim.now()); });
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(i * kMillisecond, [&net] { net.send(make_frame(0, 1, 1000)); });
    }
    sim.run();
    return std::make_pair(arrivals, net.fault_stats().lost_transmissions);
  };
  auto [arrivals_a, lost_a] = run_lossy(42);
  auto [arrivals_b, lost_b] = run_lossy(42);
  EXPECT_GT(lost_a, 0u);
  EXPECT_EQ(lost_a, lost_b);           // same seed => same drop set
  EXPECT_EQ(arrivals_a, arrivals_b);   // ...and identical timing
  auto [arrivals_c, lost_c] = run_lossy(43);
  EXPECT_NE(arrivals_a, arrivals_c);   // different seed => different schedule
}

TEST(NetProfile, LossSurfacesAsLatencyNeverAsAMissingFrame) {
  // The model is TCP-below-the-protocol: a lost transmission costs a
  // retransmit delay, but the channel stays reliable — every frame arrives.
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 2);
  NetProfile lossy;
  lossy.loss_rate = 0.5;
  lossy.retransmit_delay = 200 * kMicrosecond;
  net.set_link_profile(0, 1, lossy);
  int received = 0;
  net.set_deliver([&](const Frame&) { ++received; });
  const int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) {
    sim.schedule_at(i * kMillisecond, [&net] { net.send(make_frame(0, 1, 500)); });
  }
  sim.run();
  EXPECT_EQ(received, kFrames);
  EXPECT_GT(net.fault_stats().lost_transmissions, 0u);
  EXPECT_EQ(net.fault_stats().dropped_cut, 0u);
  EXPECT_EQ(net.fault_stats().dropped_sabotage, 0u);
}

TEST(NetProfile, JitterNeverViolatesPerLinkFifo) {
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 2);
  NetProfile jittery;
  jittery.jitter_max = 500 * kMicrosecond;  // >> back-to-back frame spacing
  net.set_link_profile(0, 1, jittery);
  std::vector<LocalSeq> order;
  std::vector<Time> times;
  net.set_deliver([&](const Frame& f) {
    order.push_back(std::get<DataMsg>(f.msgs[0]).id.lsn);
    times.push_back(sim.now());
  });
  const int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    DataMsg m;
    m.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
    m.payload = make_payload(Bytes(64, 0x42));
    net.send(Frame{0, 1, 0, {m}});
  }
  sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], static_cast<LocalSeq>(i + 1));
    if (i > 0) {
      EXPECT_GE(times[static_cast<std::size_t>(i)], times[static_cast<std::size_t>(i - 1)]);
    }
  }
}

TEST(NetProfile, ExtraLatencyIsDirectional) {
  auto one_way = [](NodeId from, NodeId to, Time extra) {
    Simulator sim;
    ClusterNet net(sim, NetConfig{}, 2);
    if (extra > 0) {
      NetProfile p;
      p.extra_latency = extra;
      net.set_link_profile(0, 1, p);  // only the 0->1 direction
    }
    Time at = -1;
    net.set_deliver([&](const Frame&) { at = sim.now(); });
    net.send(make_frame(from, to, 1000));
    sim.run();
    return at;
  };
  const Time extra = 750 * kMicrosecond;
  EXPECT_EQ(one_way(0, 1, extra), one_way(0, 1, 0) + extra);
  EXPECT_EQ(one_way(1, 0, extra), one_way(1, 0, 0));  // reverse path untouched
}

TEST(NetProfile, HealAllLinksResetsEveryProfile) {
  Simulator sim;
  ClusterNet net(sim, NetConfig{}, 3);
  NetProfile slow;
  slow.bandwidth_bps = 10e6;
  slow.cpu_scale = 2.0;
  net.set_node_profile(1, slow);
  NetProfile lossy;
  lossy.loss_rate = 0.4;
  lossy.jitter_max = 100 * kMicrosecond;
  lossy.extra_latency = 300 * kMicrosecond;
  net.set_link_profile(0, 1, lossy);
  net.set_link_delay(1, 2, 500 * kMicrosecond);
  net.set_link_jitter(50 * kMicrosecond);

  net.heal_all_links();

  EXPECT_TRUE(net.node_profile(1).is_default());
  EXPECT_TRUE(net.link_profile(0, 1).is_default());
  EXPECT_EQ(net.node_bandwidth_bps(1), NetConfig{}.bandwidth_bps);
  EXPECT_EQ(net.wire_time(1, 1448), net.wire_time(1448));

  // Post-heal deliveries behave exactly like a pristine network.
  Time at = -1;
  net.set_deliver([&](const Frame&) { at = sim.now(); });
  Time start = sim.now();
  net.send(make_frame(0, 1, 2000));
  sim.run();
  Simulator sim2;
  ClusterNet pristine(sim2, NetConfig{}, 3);
  Time at2 = -1;
  pristine.set_deliver([&](const Frame&) { at2 = sim2.now(); });
  pristine.send(make_frame(0, 1, 2000));
  sim2.run();
  EXPECT_EQ(at - start, at2);
  EXPECT_EQ(net.fault_stats().lost_transmissions, 0u);
}

}  // namespace
}  // namespace fsr
