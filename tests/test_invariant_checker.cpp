// Self-tests of the protocol-invariant checker: for every property it
// claims to enforce there is a seeded violation it must flag (a silently
// broken checker would make the sim and TCP harness checks vacuous) and a
// consistent history it must accept. Also covers the trace lint's fairness
// windows and the round-model latency bound L(i) = 2n + t - i - 1.
#include <gtest/gtest.h>

#include "checker/invariant_checker.h"
#include "checker/trace_lint.h"
#include "roundmodel/fsr_round.h"
#include "roundmodel/round_engine.h"

namespace fsr {
namespace {

DeliveryRecord rec(NodeId node, NodeId origin, std::uint64_t app, GlobalSeq seq,
                   std::uint64_t hash = 0, ViewId view = 1) {
  return DeliveryRecord{node, 0, origin, app, seq, view, hash, 0, 0};
}

/// Preload a checker with broadcasts m(0,1), m(0,2), m(1,1), m(1,2).
void seed(InvariantChecker& c) {
  for (NodeId origin = 0; origin < 2; ++origin) {
    for (std::uint64_t app = 1; app <= 2; ++app) {
      c.on_broadcast(origin, app, origin * 100 + app);
    }
  }
}

TEST(InvariantChecker, ConsistentHistoryPasses) {
  InvariantChecker c(3);
  seed(c);
  for (NodeId node = 0; node < 3; ++node) {
    c.on_delivery(rec(node, 0, 1, 1, 1));
    c.on_delivery(rec(node, 1, 1, 2, 101));
    c.on_delivery(rec(node, 0, 2, 3, 2));
    c.on_delivery(rec(node, 1, 2, 4, 102));
  }
  EXPECT_EQ(c.online_violation(), "");
  EXPECT_EQ(c.check_all(), "");
}

TEST(InvariantChecker, SeededOrderingViolationIsCaughtOnline) {
  // Nodes 0 and 1 deliver the same two messages under swapped sequence
  // numbers — the canonical total-order violation. The online seq-identity
  // check must trip at the moment node 1 delivers.
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(0, 0, 1, 1, 1));
  c.on_delivery(rec(0, 1, 1, 2, 101));
  EXPECT_EQ(c.online_violation(), "");
  c.on_delivery(rec(1, 1, 1, 1, 101));  // seq 1 already carries m(0,1)
  EXPECT_NE(c.online_violation(), "");
  EXPECT_NE(c.check_all(), "");
}

TEST(InvariantChecker, SeededOrderingViolationIsCaughtOffline) {
  // Same reordering expressed only through delivery order (both nodes
  // invent their own seqs consistent per node): the pairwise total-order
  // pass must catch it even though each node's log is locally well-formed.
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(0, 0, 1, 1, 1));
  c.on_delivery(rec(0, 1, 1, 2, 101));
  c.on_delivery(rec(1, 1, 1, 3, 101));
  c.on_delivery(rec(1, 0, 1, 4, 1));
  EXPECT_NE(c.check_total_order(), "");
  EXPECT_NE(c.check_all(), "");
}

TEST(InvariantChecker, SeqRegressionIsCaughtOnline) {
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(0, 0, 1, 5, 1));
  c.on_delivery(rec(0, 0, 2, 5, 2));  // seq did not advance
  EXPECT_NE(c.online_violation(), "");
}

TEST(InvariantChecker, DuplicateDeliveryIsCaughtOnline) {
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(0, 0, 1, 1, 1));
  c.on_delivery(rec(0, 0, 1, 2, 1));
  EXPECT_NE(c.online_violation(), "");
}

TEST(InvariantChecker, NeverBroadcastDeliveryIsCaught) {
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(0, 2, 99, 1, 7));
  EXPECT_NE(c.online_violation(), "");
  EXPECT_NE(c.check_integrity(), "");
}

TEST(InvariantChecker, PayloadCorruptionIsCaught) {
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(0, 0, 1, 1, /*hash=*/999));
  EXPECT_NE(c.online_violation(), "");
}

TEST(InvariantChecker, ViewRegressionIsCaught) {
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(0, 0, 1, 1, 1, /*view=*/3));
  c.on_delivery(rec(0, 1, 1, 2, 101, /*view=*/2));
  EXPECT_NE(c.online_violation(), "");
}

TEST(InvariantChecker, OriginGapIsCaught) {
  InvariantChecker c(2);
  c.on_broadcast(0, 1, 1);
  c.on_broadcast(0, 2, 2);
  c.on_broadcast(0, 3, 3);
  c.on_delivery(rec(0, 0, 1, 1, 1));
  c.on_delivery(rec(0, 0, 3, 2, 3));  // m(0,2) lost
  EXPECT_EQ(c.online_violation(), "");  // locally just increasing...
  EXPECT_NE(c.check_fifo(), "");        // ...but the gap is a violation
  EXPECT_NE(c.check_all(), "");
}

// ------------------------------------------------- sharded (per-group) ---

DeliveryRecord grec(NodeId node, GroupId group, NodeId origin,
                    std::uint64_t app, GlobalSeq seq, std::uint64_t hash = 0,
                    ViewId view = 1) {
  return DeliveryRecord{node, group, origin, app, seq, view, hash, 0, 0};
}

TEST(InvariantChecker, IndependentGroupSequencesPass) {
  // Two ordering domains legally reuse the same GlobalSeq values: seqs are
  // scoped per group, so identical numbering across groups is NOT aliasing
  // as long as each message stays in the group it was submitted to.
  InvariantChecker c(3);
  for (GroupId g = 0; g < 2; ++g) {
    c.on_broadcast(g, 0, 1, 1000 * g + 1);
    c.on_broadcast(g, 1, 1, 1000 * g + 101);
  }
  for (NodeId node = 0; node < 3; ++node) {
    for (GroupId g = 0; g < 2; ++g) {
      c.on_delivery(grec(node, g, 0, 1, /*seq=*/1, 1000 * g + 1));
      c.on_delivery(grec(node, g, 1, 1, /*seq=*/2, 1000 * g + 101));
    }
  }
  EXPECT_EQ(c.online_violation(), "");
  EXPECT_EQ(c.check_all(), "");
  EXPECT_EQ(c.groups_seen().size(), 2u);
}

TEST(InvariantChecker, PerGroupOrderingViolationIsCaught) {
  // A swapped order inside ONE group must still trip even when another
  // group delivers a perfectly consistent history in parallel — per-group
  // scoping must not dilute the check.
  InvariantChecker c(3);
  for (GroupId g = 0; g < 2; ++g) {
    c.on_broadcast(g, 0, 1, 1000 * g + 1);
    c.on_broadcast(g, 1, 1, 1000 * g + 101);
  }
  // Group 0: consistent on both nodes.
  for (NodeId node = 0; node < 2; ++node) {
    c.on_delivery(grec(node, 0, 0, 1, 1, 1));
    c.on_delivery(grec(node, 0, 1, 1, 2, 101));
  }
  // Group 1: node 1 binds seq 1 to the other message.
  c.on_delivery(grec(0, 1, 0, 1, 1, 1001));
  c.on_delivery(grec(0, 1, 1, 1, 2, 1101));
  EXPECT_EQ(c.online_violation(), "");
  c.on_delivery(grec(1, 1, 1, 1, 1, 1101));
  EXPECT_NE(c.online_violation(), "");
  EXPECT_NE(c.check_all(), "");
}

TEST(InvariantChecker, CrossGroupSequenceAliasingIsCaught) {
  // Deliberate sabotage self-test: a message submitted in group 0 shows up
  // in group 1's delivery stream — some layer leaked a payload across
  // ordering domains. Both the online check and the offline integrity pass
  // must flag it, and the message must say so by name.
  InvariantChecker c(3);
  c.on_broadcast(GroupId{0}, 0, 1, 42);
  c.on_delivery(grec(0, 1, 0, 1, 1, 42));
  EXPECT_NE(c.online_violation(), "");
  EXPECT_NE(c.online_violation().find("aliasing"), std::string::npos)
      << c.online_violation();
  EXPECT_NE(c.check_integrity(), "");
}

TEST(InvariantChecker, UniformityViolationIsCaught) {
  // The crashed node delivered something the survivors never did.
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(2, 0, 1, 1, 1));
  c.note_crashed(2);
  c.on_delivery(rec(0, 1, 1, 1, 101));
  c.on_delivery(rec(1, 1, 1, 1, 101));
  EXPECT_NE(c.check_uniformity({2}, {0, 1}), "");
}

TEST(InvariantChecker, AgreementViolationIsCaught) {
  InvariantChecker c(3);
  seed(c);
  c.on_delivery(rec(0, 0, 1, 1, 1));
  c.on_delivery(rec(1, 1, 1, 1, 101));
  EXPECT_NE(c.check_agreement({0, 1}), "");
}

// --- trace lint ---

std::vector<DeliveryRecord> trace_of(const std::vector<NodeId>& origins) {
  std::vector<DeliveryRecord> log;
  std::map<NodeId, std::uint64_t> counters;
  GlobalSeq seq = 0;
  log.reserve(origins.size());
  for (NodeId o : origins) {
    log.push_back(rec(0, o, ++counters[o], ++seq));
  }
  return log;
}

TEST(TraceLint, RoundRobinTraceIsFair) {
  std::vector<NodeId> origins;
  for (int i = 0; i < 200; ++i) origins.push_back(static_cast<NodeId>(i % 4));
  LintConfig cfg;
  cfg.fairness_window = 16;
  cfg.fairness_max_share = 0.5;
  cfg.max_consecutive_run = 4;
  LintReport rep = lint_trace(trace_of(origins), cfg);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_NEAR(rep.jain_index, 1.0, 1e-9);
  EXPECT_LE(rep.longest_run, 1u);
}

TEST(TraceLint, StarvationTripsTheFairnessWindow) {
  // Two origins active, but origin 0 hogs long stretches.
  std::vector<NodeId> origins;
  for (int block = 0; block < 8; ++block) {
    for (int i = 0; i < 30; ++i) origins.push_back(0);
    origins.push_back(1);
  }
  LintConfig cfg;
  cfg.fairness_window = 16;
  cfg.fairness_max_share = 0.75;
  LintReport rep = lint_trace(trace_of(origins), cfg);
  EXPECT_FALSE(rep.ok());
}

TEST(TraceLint, LongRunTripsTheConsecutiveBound) {
  std::vector<NodeId> origins;
  for (int i = 0; i < 40; ++i) origins.push_back(static_cast<NodeId>(i % 2));
  for (int i = 0; i < 12; ++i) origins.push_back(0);  // burst mid-competition
  for (int i = 0; i < 40; ++i) origins.push_back(static_cast<NodeId>(i % 2));
  LintConfig cfg;
  cfg.fairness_window = 16;
  cfg.max_consecutive_run = 8;
  LintReport rep = lint_trace(trace_of(origins), cfg);
  EXPECT_FALSE(rep.ok());
}

TEST(TraceLint, LoneSenderMayOwnTheWindow) {
  std::vector<NodeId> origins(100, 0);  // only one active origin: no bound
  LintConfig cfg;
  cfg.fairness_window = 16;
  cfg.fairness_max_share = 0.5;
  cfg.max_consecutive_run = 4;
  LintReport rep = lint_trace(trace_of(origins), cfg);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

// --- round-model latency bound ---

TEST(LatencyBound, FsrRoundModelMeetsAnalyticBound) {
  // A single idle-system broadcast from every origin position, for several
  // (n, t): the measured completion latency must satisfy the paper's
  // L(i) = 2n + t - i - 1.
  for (int n : {4, 7}) {
    for (int t : {0, 1, 2}) {
      std::vector<RoundLatencySample> samples;
      for (int origin = 0; origin < n; ++origin) {
        rounds::FsrRound proto(n, t, /*window=*/4);
        rounds::RoundEngine engine({n, {origin}, 1}, proto);
        engine.run(6 * n + 10);
        ASSERT_EQ(engine.completed(), 1) << "n=" << n << " t=" << t << " i=" << origin;
        samples.push_back({static_cast<Position>(origin), engine.latency(0)});
      }
      EXPECT_EQ(check_latency_bound(samples, static_cast<std::uint32_t>(n),
                                    static_cast<std::uint32_t>(t)),
                "")
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(LatencyBound, ExceededBoundIsReported) {
  // n=5, t=1: L(2) = 2*5 + 1 - 2 - 1 = 8. Nine rounds must be flagged.
  std::vector<RoundLatencySample> samples{{2, 9}};
  EXPECT_NE(check_latency_bound(samples, 5, 1), "");
  samples = {{2, 8}};
  EXPECT_EQ(check_latency_bound(samples, 5, 1), "");
}

}  // namespace
}  // namespace fsr
