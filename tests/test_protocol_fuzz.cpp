// Cross-protocol fuzz in the round model: all six protocols (FSR + the five
// taxonomy baselines... fixed, moving, privilege, comm-history,
// dest-agreement) under randomized sender sets, windows and ring sizes.
// Every protocol must maintain total order and deliver every accepted
// broadcast; FSR must additionally complete them all within a bounded
// number of rounds.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "roundmodel/comm_history_round.h"
#include "roundmodel/dest_agreement_round.h"
#include "roundmodel/fixed_seq_round.h"
#include "roundmodel/fsr_round.h"
#include "roundmodel/moving_seq_round.h"
#include "roundmodel/privilege_round.h"
#include "support/seeded_test.h"

namespace fsr::rounds {
namespace {

struct FuzzParam {
  std::uint64_t seed;
};

class ProtocolFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

std::unique_ptr<Protocol> make(int which, int n, Rng& rng) {
  switch (which) {
    case 0: return std::make_unique<FsrRound>(n, 1 + static_cast<int>(rng.below(3)));
    case 1: return std::make_unique<FixedSeqRound>(n, 4 + static_cast<int>(rng.below(20)));
    case 2: return std::make_unique<MovingSeqRound>(n, 4 + static_cast<int>(rng.below(12)));
    case 3:
      return std::make_unique<PrivilegeRound>(n, 1 + static_cast<int>(rng.below(8)),
                                              4 + static_cast<int>(rng.below(20)));
    case 4: return std::make_unique<CommHistoryRound>(n, 4 + static_cast<int>(rng.below(12)));
    default: return std::make_unique<DestAgreementRound>(n, 4 + static_cast<int>(rng.below(20)));
  }
}

TEST_P(ProtocolFuzzTest, AllProtocolsSafeAndLive) {
  Rng rng(GetParam().seed);
  int n = 3 + static_cast<int>(rng.below(8));  // 3..10
  FSR_SEED_TRACE(GetParam().seed, "n=" + std::to_string(n));

  // Random sender set and per-sender counts.
  std::vector<int> senders;
  for (int p = 0; p < n; ++p) {
    if (rng.chance(0.5)) senders.push_back(p);
  }
  if (senders.empty()) senders.push_back(static_cast<int>(rng.below(n)));
  long long per_sender = 3 + static_cast<long long>(rng.below(12));
  long long total = static_cast<long long>(senders.size()) * per_sender;

  for (int which = 0; which < 6; ++which) {
    auto proto = make(which, n, rng);
    RoundEngine engine({n, senders, per_sender}, *proto);
    // Generous horizon: the slowest class (dest-agreement / comm-history)
    // needs ~n rounds per delivery plus stability lag.
    engine.run(total * 4 * n + 40 * n + 200);
    EXPECT_EQ(engine.check_total_order(), "")
        << proto->name() << " seed=" << GetParam().seed << " n=" << n;
    EXPECT_EQ(engine.completed(), total)
        << proto->name() << " seed=" << GetParam().seed << " n=" << n
        << " senders=" << senders.size() << " per=" << per_sender;
  }
}

TEST_P(ProtocolFuzzTest, FsrCompletesWithinAnalyticHorizon) {
  Rng rng(GetParam().seed ^ 0xabcdef);
  int n = 3 + static_cast<int>(rng.below(8));
  int t = 1 + static_cast<int>(rng.below(2));
  FSR_SEED_TRACE(GetParam().seed, "n=" + std::to_string(n) + " t=" + std::to_string(t));
  std::vector<int> senders;
  for (int p = 0; p < n; ++p) {
    if (rng.chance(0.6)) senders.push_back(p);
  }
  if (senders.empty()) senders.push_back(0);
  long long per_sender = 5 + static_cast<long long>(rng.below(10));
  long long total = static_cast<long long>(senders.size()) * per_sender;

  FsrRound proto(n, t);
  RoundEngine engine({n, senders, per_sender}, proto);
  // Throughput >= 1 plus pipeline fill: everything completes within
  // total + latency-bound + slack rounds.
  long long horizon = total + 3 * n + static_cast<long long>(t) + 20;
  engine.run(horizon);
  EXPECT_EQ(engine.completed(), total)
      << "seed=" << GetParam().seed << " n=" << n << " t=" << t
      << " k=" << senders.size();
}

std::vector<FuzzParam> seeds() {
  std::vector<FuzzParam> out;
  for (std::uint64_t s = 1; s <= 50; ++s) out.push_back({s * 1099511628211ULL});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest, ::testing::ValuesIn(seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace fsr::rounds
