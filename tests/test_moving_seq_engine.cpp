// The packet-level moving-sequencer baseline: correctness and its §2.2
// signature — better than the fixed sequencer (no payload fan-out at the
// sequencer) but still below FSR (every sender fans out n-1 copies).
#include <gtest/gtest.h>

#include "baselines/fixed_seq_cluster.h"
#include "baselines/moving_seq_cluster.h"
#include "harness/sim_cluster.h"

namespace fsr::baselines {
namespace {

MovingSeqConfig cfg(std::size_t segment = 4096, std::size_t batch = 8) {
  MovingSeqConfig c;
  c.segment_size = segment;
  c.batch = batch;
  return c;
}

TEST(MovingSeqEngine, SingleBroadcastReachesAll) {
  MovingSeqCluster c(NetConfig{}, 4, cfg());
  c.broadcast(2, test_payload(2, 1, 1000));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
    EXPECT_EQ(c.log(n)[0].origin, 2u);
    EXPECT_EQ(c.log(n)[0].bytes, 1000u);
  }
}

TEST(MovingSeqEngine, ConcurrentSendersTotalOrderAndCompleteness) {
  MovingSeqCluster c(NetConfig{}, 5, cfg());
  for (NodeId s = 0; s < 5; ++s) {
    for (int i = 0; i < 10; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 3000));
    }
  }
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(c.log(n).size(), 50u) << "node " << n;
  EXPECT_EQ(c.check_logs_identical(), "");
}

TEST(MovingSeqEngine, LargeMessageSegmentsAndReassembles) {
  MovingSeqCluster c(NetConfig{}, 3, cfg(8192));
  c.broadcast(1, test_payload(1, 1, 200 * 1024));
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u);
    EXPECT_EQ(c.log(n)[0].bytes, 200u * 1024u);
  }
}

TEST(MovingSeqEngine, WakesParkedTokenForLateSender) {
  MovingSeqCluster c(NetConfig{}, 4, cfg());
  c.sim().run();  // idle: token parks
  c.broadcast(3, test_payload(3, 1, 2000));
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
  }
}

TEST(MovingSeqEngine, BeatsFixedSequencerButNotFsr) {
  // The §2 ordering at n = 6, n-to-n, 100 KB: fixed < moving < FSR.
  const std::size_t n = 6;
  const int msgs = 10;
  const std::size_t size = 100 * 1024;

  auto run_mbps = [&](auto& cluster) {
    for (std::size_t s = 0; s < n; ++s) {
      for (int i = 0; i < msgs; ++i) {
        cluster.broadcast(static_cast<NodeId>(s),
                          test_payload(static_cast<NodeId>(s),
                                       static_cast<std::uint64_t>(i + 1), size));
      }
    }
    cluster.sim().run();
    EXPECT_EQ(cluster.log(0).size(), n * msgs);
    return static_cast<double>(n * msgs * size) * 8.0 /
           static_cast<double>(cluster.log(0).back().at) * 1000.0;
  };

  MovingSeqConfig mcfg;
  mcfg.segment_size = size;
  mcfg.batch = 8;
  MovingSeqCluster moving(NetConfig{}, n, mcfg);
  double moving_mbps = run_mbps(moving);

  FixedSeqConfig fcfg;
  fcfg.segment_size = size;
  fcfg.window = 16;
  FixedSeqCluster fixed(NetConfig{}, n, fcfg);
  double fixed_mbps = run_mbps(fixed);

  ClusterConfig rcfg;
  rcfg.n = n;
  rcfg.group.engine.t = 1;
  rcfg.group.engine.segment_size = size;
  SimCluster ring(rcfg);
  double fsr_mbps = run_mbps(ring);

  EXPECT_GT(moving_mbps, 1.3 * fixed_mbps);
  EXPECT_GT(fsr_mbps, 1.3 * moving_mbps);
}

}  // namespace
}  // namespace fsr::baselines
