// The remaining two protocol classes of the paper's §2 taxonomy in the
// round model: communication history (§2.4) and destination agreement
// (§2.5). Both must be safe (total order, eventual delivery) and must
// exhibit the poor throughput the paper attributes to them.
#include <gtest/gtest.h>

#include "roundmodel/comm_history_round.h"
#include "roundmodel/dest_agreement_round.h"
#include "roundmodel/fsr_round.h"

namespace fsr::rounds {
namespace {

double steady_throughput(Protocol& proto, const WorkloadSpec& spec,
                         long long warmup = 1000, long long window = 4000) {
  RoundEngine engine(spec, proto);
  engine.run(warmup + window);
  EXPECT_EQ(engine.check_total_order(), "") << proto.name();
  return static_cast<double>(engine.completed_between(warmup, warmup + window)) /
         static_cast<double>(window);
}

std::vector<int> all_senders(int n) {
  std::vector<int> s;
  for (int i = 0; i < n; ++i) s.push_back(i);
  return s;
}

// --- communication history ---

TEST(RoundModelCommHistory, DeliversEverythingEventually) {
  CommHistoryRound proto(5);
  RoundEngine engine({5, {0, 2, 4}, 12}, proto);
  engine.run(4000);
  EXPECT_EQ(engine.completed(), 36);
  EXPECT_EQ(engine.check_total_order(), "");
}

TEST(RoundModelCommHistory, SingleMessageHasBoundedLatency) {
  CommHistoryRound proto(6);
  RoundEngine engine({6, {3}, 1}, proto);
  engine.run(100);
  ASSERT_EQ(engine.completed(), 1);
  // Stability needs a clock from everyone: latency is a few rounds, but the
  // single-receive bottleneck of constant heartbeats stretches it.
  EXPECT_LE(engine.latency(0), 40);
}

TEST(RoundModelCommHistory, QuadraticTrafficCollapsesThroughput) {
  // The §2.4 claim: the constant all-to-all clock traffic saturates the
  // single receive slot, so throughput falls with n toward 1/(n-1).
  for (int n : {4, 6, 8}) {
    CommHistoryRound proto(n, /*window=*/6);
    double tp = steady_throughput(proto, {n, {1}, -1});
    EXPECT_LT(tp, 1.6 / static_cast<double>(n - 1)) << "n=" << n;
    EXPECT_GT(tp, 0.4 / static_cast<double>(n - 1)) << "n=" << n;
  }
}

TEST(RoundModelCommHistory, OnlyFullNToNPiggybacksClocks) {
  // Mirroring the paper's footnote 2 for sequencers: when *every* process
  // broadcasts all the time, clock information piggybacks on data and the
  // class becomes throughput-efficient (n/(n-1)); with even one silent
  // process the heartbeat traffic drags it right back down.
  int n = 6;
  {
    CommHistoryRound proto(n, 6);
    double tp = steady_throughput(proto, {n, all_senders(n), -1});
    EXPECT_GT(tp, 1.0);
  }
  {
    CommHistoryRound proto(n, 6);
    double tp = steady_throughput(proto, {n, {0, 1, 2, 3, 4}, -1});  // 5-of-6
    EXPECT_LT(tp, 0.9);
  }
}

TEST(RoundModelCommHistory, TimestampTiesBrokenByOrigin) {
  // Two processes broadcasting in the same round produce clock ties; the
  // (ts, origin) rule must order them identically everywhere.
  CommHistoryRound proto(4);
  RoundEngine engine({4, {1, 2}, 10}, proto);
  engine.run(2000);
  EXPECT_EQ(engine.completed(), 20);
  EXPECT_EQ(engine.check_total_order(), "");
}

// --- destination agreement ---

TEST(RoundModelDestAgreement, DeliversEverythingEventually) {
  DestAgreementRound proto(5);
  RoundEngine engine({5, {1, 3}, 15}, proto);
  engine.run(4000);
  EXPECT_EQ(engine.completed(), 30);
  EXPECT_EQ(engine.check_total_order(), "");
}

TEST(RoundModelDestAgreement, CoordinatorReceiveSlotCapsOneToN) {
  for (int n : {4, 8}) {
    DestAgreementRound proto(n);
    double tp = steady_throughput(proto, {n, {1}, -1});
    EXPECT_LT(tp, 1.3 / static_cast<double>(n - 1)) << "n=" << n;
  }
}

TEST(RoundModelDestAgreement, WellBelowFsrEverywhere) {
  int n = 6;
  FsrRound fsr_p(n, 1);
  DestAgreementRound da_p(n);
  double fsr_tp = steady_throughput(fsr_p, {n, all_senders(n), -1});
  double da_tp = steady_throughput(da_p, {n, all_senders(n), -1});
  EXPECT_GT(fsr_tp, 1.5 * da_tp);
}

TEST(RoundModelDestAgreement, CoordinatorAsSenderStillSafe) {
  DestAgreementRound proto(4);
  RoundEngine engine({4, {0}, 20}, proto);
  engine.run(3000);
  EXPECT_EQ(engine.completed(), 20);
  EXPECT_EQ(engine.check_total_order(), "");
}

}  // namespace
}  // namespace fsr::rounds
