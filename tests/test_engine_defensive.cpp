// Defensive paths of the Engine API, driven directly (no cluster): stale
// and malformed inputs must be dropped without corrupting state, and the
// engine must keep functioning afterwards.
#include <gtest/gtest.h>

#include "common/log.h"
#include "fsr/engine.h"
#include "transport/sim_transport.h"

namespace fsr {
namespace {

struct Rig {
  Rig() : world(NetConfig{}, 3) {
    View v{1, {0, 1, 2}};
    EngineConfig cfg;
    cfg.t = 1;
    engine = std::make_unique<Engine>(world.transport(1), cfg, v,
                                      [this](const Delivery& d) { delivered.push_back(d); });
    TransportHandlers h;
    h.on_frame = [this](const Frame& f) {
      for (const auto& m : f.msgs) engine->on_msg(m);
    };
    h.on_tx_ready = [this] { engine->on_tx_ready(); };
    world.transport(1).set_handlers(std::move(h));
  }
  SimWorld world;
  std::unique_ptr<Engine> engine;
  std::vector<Delivery> delivered;
};

TEST(EngineDefensive, StaleViewMessagesDropped) {
  Rig r;
  DataMsg d;
  d.id = MsgId{0, 1};
  d.view = 99;  // not our view
  d.payload = make_payload(Bytes(10, 1));
  r.engine->on_msg(d);
  SeqMsg s;
  s.id = MsgId{0, 1};
  s.seq = 1;
  s.view = 99;
  r.engine->on_msg(s);
  AckMsg a{MsgId{0, 1}, 1, 99, true};
  r.engine->on_msg(a);
  r.world.sim().run();
  EXPECT_TRUE(r.delivered.empty());
  EXPECT_EQ(r.engine->stored_records(), 0u);
  EXPECT_EQ(r.engine->delivered_watermark(), 0u);
}

TEST(EngineDefensive, AckForUnknownMessageDropped) {
  Rig r;
  set_log_level(LogLevel::kOff);  // the warn is expected; keep output clean
  AckMsg a{MsgId{0, 7}, 3, 1, true};  // right view, no stash, no record
  r.engine->on_msg(a);
  set_log_level(LogLevel::kWarn);
  r.world.sim().run();
  EXPECT_TRUE(r.delivered.empty());
  EXPECT_EQ(r.engine->stored_records(), 0u);
}

TEST(EngineDefensive, DataFromNonMemberDropped) {
  Rig r;
  DataMsg d;
  d.id = MsgId{42, 1};  // node 42 is not in the view
  d.view = 1;
  d.payload = make_payload(Bytes(10, 1));
  r.engine->on_msg(d);
  r.world.sim().run();
  EXPECT_EQ(r.engine->out_fifo_size(), 0u);
}

TEST(EngineDefensive, DuplicateDataCountedAndDropped) {
  Rig r;
  DataMsg d;
  d.id = MsgId{2, 1};  // predecessor-side origin: we stash + forward
  d.view = 1;
  d.payload = make_payload(Bytes(10, 1));
  r.engine->on_msg(d);
  r.engine->on_msg(d);  // duplicate
  EXPECT_EQ(r.engine->stats().duplicates_dropped, 1u);
}

TEST(EngineDefensive, MembershipMessagesIgnoredByEngine) {
  Rig r;
  r.engine->on_msg(FlushReq{5, {0, 1, 2}});
  r.engine->on_msg(JoinReq{9});
  r.engine->on_msg(Heartbeat{1});
  r.world.sim().run();
  EXPECT_FALSE(r.engine->frozen());
  EXPECT_EQ(r.engine->view().id, 1u);
}

TEST(EngineDefensive, StaleGcWatermarkIgnored) {
  Rig r;
  r.engine->on_msg(GcMsg{50, 1, 2});   // fresh watermark, forwarded
  r.engine->on_msg(GcMsg{10, 1, 2});   // stale: lower watermark
  r.engine->on_msg(GcMsg{60, 99, 2});  // wrong view
  r.world.sim().run();
  // No crash, no deliveries; records retention is governed correctly.
  EXPECT_TRUE(r.delivered.empty());
}

TEST(EngineDefensive, BroadcastWhileFrozenIsDeferredNotLost) {
  Rig r;
  r.engine->freeze();
  r.engine->broadcast(Bytes(100, 0x5a));
  r.world.sim().run();
  EXPECT_EQ(r.engine->pending_own(), 1u);
  EXPECT_EQ(r.engine->own_queue_size(), 1u);  // queued, unsent
  EXPECT_EQ(r.engine->stats().segments_sent, 0u);
}

}  // namespace
}  // namespace fsr
