// Focused unit tests of Engine behaviours that the end-to-end suites don't
// pin down explicitly: flow-control windowing, ack piggybacking vs
// standalone acks, recovery-retention garbage collection, duplicate and
// stale-view handling, and freeze semantics.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"

namespace fsr {
namespace {

ClusterConfig base(std::size_t n, std::uint32_t t) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.group.engine.t = t;
  return cfg;
}

TEST(EngineUnit, WindowLimitsOwnSegmentsInFlight) {
  ClusterConfig cfg = base(4, 1);
  cfg.group.engine.window = 4;
  cfg.group.engine.segment_size = 1024;
  SimCluster c(cfg);
  // 20 segments submitted at once; at most `window` may be in flight.
  c.broadcast(2, test_payload(2, 1, 20 * 1024));
  bool violated = false;
  // Poll the in-flight counter as the simulation progresses.
  for (int step = 0; step < 200000 && !c.sim().empty(); ++step) {
    c.sim().run_steps(1);
    if (c.node(2).engine().own_in_flight() > 4) violated = true;
  }
  c.sim().run();
  EXPECT_FALSE(violated);
  EXPECT_EQ(c.log(0).size(), 1u);
  EXPECT_EQ(c.check_all(), "");
}

TEST(EngineUnit, PiggybackingAttachesAcksToPayloadFrames) {
  ClusterConfig cfg = base(5, 1);
  cfg.group.engine.segment_size = 2048;
  SimCluster c(cfg);
  for (NodeId s = 0; s < 5; ++s) {
    for (int i = 0; i < 10; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 8 * 1024));
    }
  }
  c.sim().run();
  std::uint64_t piggybacked = 0;
  for (NodeId n = 0; n < 5; ++n) piggybacked += c.node(n).engine().stats().acks_piggybacked;
  EXPECT_GT(piggybacked, 0u) << "under load, acks must ride payload frames";
  EXPECT_EQ(c.check_all(), "");
}

TEST(EngineUnit, LowLoadAcksGoOutImmediatelyAsTheirOwnFrames) {
  SimCluster c(base(5, 1));
  c.broadcast(3, test_payload(3, 1, 500));  // a single quiet message
  c.sim().run();
  std::uint64_t ack_only = 0;
  for (NodeId n = 0; n < 5; ++n) ack_only += c.node(n).engine().stats().ack_only_frames;
  EXPECT_GT(ack_only, 0u) << "with an idle ring, acks must not wait for payloads";
  EXPECT_EQ(c.log(0).size(), 1u);
}

TEST(EngineUnit, NoPiggybackModeNeverAttaches) {
  ClusterConfig cfg = base(4, 1);
  cfg.group.engine.piggyback_acks = false;
  SimCluster c(cfg);
  for (NodeId s = 0; s < 4; ++s) {
    for (int i = 0; i < 8; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 4096));
    }
  }
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.node(n).engine().stats().acks_piggybacked, 0u) << "node " << n;
  }
  EXPECT_EQ(c.check_all(), "");
}

TEST(EngineUnit, DeferredAckFlushStillDeliversOnIdleRing) {
  // With ack_flush_delay set, a lone message's acks have no payload frame
  // to ride — the flush timer is the only thing that completes stability.
  // Delivery everywhere proves the timer path is live.
  ClusterConfig cfg = base(5, 1);
  cfg.group.engine.ack_flush_delay = 100 * kMicrosecond;
  SimCluster c(cfg);
  c.broadcast(3, test_payload(3, 1, 500));
  c.sim().run();
  for (NodeId n = 0; n < 5; ++n) ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
  EXPECT_EQ(c.check_all(), "");
}

TEST(EngineUnit, AckDeferralUnderLoadStaysCorrect) {
  // Sustained traffic with ack hold-back enabled: ordering, uniformity, and
  // gap-freedom must be untouched, and acks must still ride payload frames.
  ClusterConfig cfg = base(4, 1);
  cfg.group.engine.ack_flush_delay = 200 * kMicrosecond;
  SimCluster c(cfg);
  for (NodeId s = 0; s < 4; ++s) {
    for (int i = 0; i < 20; ++i) {
      c.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 2000));
    }
  }
  c.sim().run();
  EXPECT_EQ(c.check_all(), "");
  for (NodeId n = 0; n < 4; ++n) ASSERT_EQ(c.log(n).size(), 80u) << "node " << n;
  EXPECT_GT(c.engine_counters().piggyback_hits, 0u);
}

TEST(EngineUnit, FramePackingDeliversIdenticallyWithFewerFrames) {
  auto run = [](std::size_t pack) {
    ClusterConfig cfg;
    cfg.n = 4;
    cfg.group.engine.t = 1;
    cfg.group.engine.segment_size = 1024;
    cfg.group.engine.max_payloads_per_frame = pack;
    SimCluster c(cfg);
    for (NodeId s = 0; s < 4; ++s) {
      c.broadcast(s, test_payload(s, 1, 8 * 1024));  // 8 segments each
    }
    c.sim().run();
    EXPECT_EQ(c.check_all(), "");
    std::uint64_t frames = 0;
    std::vector<std::size_t> log_sizes;
    for (NodeId n = 0; n < 4; ++n) {
      frames += c.node(n).engine().stats().frames_sent;
      log_sizes.push_back(c.log(n).size());
    }
    EXPECT_EQ(log_sizes, (std::vector<std::size_t>{4, 4, 4, 4}));
    return frames;
  };
  std::uint64_t paced = run(1);
  std::uint64_t packed = run(8);
  EXPECT_LT(packed, paced)
      << "packing payloads per frame must reduce frame count";
}

TEST(EngineUnit, RetainedRecordsArePrunedByGcWatermark) {
  // A long run must not accumulate unbounded recovery state: the circulating
  // GC watermark prunes records once everyone delivered them.
  ClusterConfig cfg = base(4, 1);
  cfg.group.engine.segment_size = 4096;
  cfg.group.engine.gc_interval = 16;
  cfg.group.engine.window = 8;
  SimCluster c(cfg);
  for (int i = 0; i < 300; ++i) {
    c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 1), 4096));
  }
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    // Everything delivered; retention must be bounded by roughly the GC
    // interval plus in-flight window, nowhere near the 300 sent.
    EXPECT_LT(c.node(n).engine().stored_records(), 100u) << "node " << n;
  }
  EXPECT_EQ(c.log(2).size(), 300u);
}

TEST(EngineUnit, PendingOwnTracksUndeliveredAppMessages) {
  SimCluster c(base(3, 1));
  EXPECT_EQ(c.node(1).engine().pending_own(), 0u);
  c.broadcast(1, test_payload(1, 1, 100));
  c.broadcast(1, test_payload(1, 2, 100));
  EXPECT_EQ(c.node(1).engine().pending_own(), 2u);
  c.sim().run();
  EXPECT_EQ(c.node(1).engine().pending_own(), 0u);
}

TEST(EngineUnit, FrozenEngineQueuesBroadcastsUntilViewInstall) {
  SimCluster c(base(4, 1));
  c.node(2).engine().freeze();
  c.broadcast(2, test_payload(2, 1, 512));
  c.sim().run();
  // Frozen: nothing may have been delivered anywhere.
  for (NodeId n = 0; n < 4; ++n) EXPECT_TRUE(c.log(n).empty());
  // A crash elsewhere triggers the flush; install unfreezes and the queued
  // broadcast goes out in the new view.
  c.crash(3);
  c.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(c.log(n).size(), 1u) << "node " << n;
    EXPECT_EQ(c.log(n)[0].origin, 2u);
  }
}

TEST(EngineUnit, StatsCountersAreConsistent) {
  ClusterConfig cfg = base(4, 1);
  cfg.group.engine.segment_size = 1024;
  SimCluster c(cfg);
  c.broadcast(1, test_payload(1, 1, 10 * 1024));  // 10 segments
  c.sim().run();
  const auto& st = c.node(1).engine().stats();
  EXPECT_EQ(st.segments_sent, 10u);
  EXPECT_EQ(st.segments_delivered, 10u);
  EXPECT_EQ(st.app_delivered, 1u);
  EXPECT_EQ(st.bytes_delivered, 10u * 1024u);
  EXPECT_EQ(st.duplicates_dropped, 0u);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(c.node(n).engine().delivered_watermark(), 10u) << "node " << n;
  }
}

TEST(EngineUnit, ViewIdIsStampedOnDeliveries) {
  SimCluster c(base(4, 1));
  c.broadcast(1, test_payload(1, 1, 128));
  c.sim().run();
  EXPECT_EQ(c.log(0)[0].view, 1u);
  c.crash(3);
  c.sim().run();
  c.broadcast(1, test_payload(1, 2, 128));
  c.sim().run();
  EXPECT_EQ(c.log(0)[1].view, 2u);
}

TEST(EngineUnit, BackupSenderPendingAckPath) {
  // Origin at a backup position exercises the pending-ack conversion at
  // p_t (paper §4.1 case 2); verify per-role delivery counts stay exact.
  for (std::uint32_t t : {1u, 2u, 3u}) {
    SimCluster c(base(6, t));
    for (std::uint32_t b = 1; b <= t; ++b) {
      c.broadcast(b, test_payload(b, 1, 2000));
    }
    c.sim().run();
    for (NodeId n = 0; n < 6; ++n) {
      EXPECT_EQ(c.log(n).size(), static_cast<std::size_t>(t)) << "t=" << t << " node " << n;
    }
    EXPECT_EQ(c.check_all(), "") << "t=" << t;
  }
}

TEST(EngineUnit, ManySmallMessagesInterleavedWithHugeOne) {
  ClusterConfig cfg = base(4, 1);
  cfg.group.engine.segment_size = 1024;
  cfg.group.engine.window = 16;
  SimCluster c(cfg);
  c.broadcast(1, test_payload(1, 1, 500 * 1024));  // 500 segments
  for (int i = 0; i < 50; ++i) {
    c.broadcast(2, test_payload(2, static_cast<std::uint64_t>(i + 1), 64));
  }
  c.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(c.log(n).size(), 51u) << "node " << n;
  }
  EXPECT_EQ(c.check_all(), "");
}

}  // namespace
}  // namespace fsr

namespace fsr {
namespace {

TEST(EngineUnit, CorruptedFlushBlobDoesNotCrashInstall) {
  // Feed install_view a mix of valid and garbage blobs directly: the engine
  // must survive and still install the view using the valid state.
  SimWorld world(NetConfig{}, 2);
  std::vector<Delivery> delivered;
  Engine a(world.transport(0), EngineConfig{}, View{1, {0, 1}},
           [&](const Delivery& d) { delivered.push_back(d); });
  Bytes good = a.collect_flush_state();
  std::vector<Bytes> states;
  states.push_back(good);
  states.push_back(Bytes{0xff, 0x03, 0x99});           // garbage
  states.push_back(Bytes(5, 0x80));                    // unterminated varint
  a.install_view(View{2, {0, 1}}, states);
  EXPECT_EQ(a.view().id, 2u);
  EXPECT_FALSE(a.frozen());
}

}  // namespace
}  // namespace fsr
