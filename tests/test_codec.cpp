#include "proto/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fsr {
namespace {

Frame roundtrip(const Frame& f) {
  Bytes wire = encode_frame(f);
  return decode_frame(wire);
}

TEST(Codec, ByteWriterReaderPrimitives) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.var(0);
  w.var(127);
  w.var(128);
  w.var(~0ULL);
  w.str("hello");
  Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.var(), 0u);
  EXPECT_EQ(r.var(), 127u);
  EXPECT_EQ(r.var(), 128u);
  EXPECT_EQ(r.var(), ~0ULL);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Codec, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(42);
  Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_THROW(r.u8(), CodecError);
}

TEST(Codec, OversizedLengthFieldThrows) {
  ByteWriter w;
  w.var(1'000'000);  // claims a million bytes follow
  w.u8(1);
  Bytes b = w.take();
  ByteReader r(b);
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, DataMsgRoundtrip) {
  DataMsg m;
  m.id = MsgId{7, 42};
  m.view = 3;
  m.frag = FragInfo{9, 2, 13};
  m.payload = make_payload(Bytes{1, 2, 3, 4, 5});
  Frame f{1, 2, 0, {m}};
  Frame g = roundtrip(f);
  ASSERT_EQ(g.msgs.size(), 1u);
  const auto& d = std::get<DataMsg>(g.msgs[0]);
  EXPECT_EQ(d.id, m.id);
  EXPECT_EQ(d.view, 3u);
  EXPECT_EQ(d.frag, m.frag);
  ASSERT_TRUE(d.payload);
  EXPECT_EQ(d.payload, m.payload);
  EXPECT_EQ(g.from, 1u);
  EXPECT_EQ(g.to, 2u);
}

TEST(Codec, SeqMsgRoundtrip) {
  SeqMsg m;
  m.id = MsgId{3, 9};
  m.seq = 1234567;
  m.view = 2;
  m.frag = FragInfo{1, 0, 1};
  m.payload = make_payload(Bytes(1000, 0x5a));
  Frame g = roundtrip(Frame{0, 1, 0, {m}});
  const auto& s = std::get<SeqMsg>(g.msgs[0]);
  EXPECT_EQ(s.seq, 1234567u);
  EXPECT_EQ(s.payload.size(), 1000u);
}

TEST(Codec, AckAndGcRoundtrip) {
  AckMsg a{MsgId{1, 2}, 77, 5, false};
  GcMsg g{1000, 5, 7};
  Frame f{4, 0, 0, {a, g}};
  Frame out = roundtrip(f);
  EXPECT_EQ(std::get<AckMsg>(out.msgs[0]), a);
  EXPECT_EQ(std::get<GcMsg>(out.msgs[1]), g);
}

TEST(Codec, EmptyPayloadDecodesToNull) {
  DataMsg m;
  m.id = MsgId{1, 1};
  m.payload = nullptr;
  Frame out = roundtrip(Frame{0, 1, 0, {m}});
  EXPECT_FALSE(std::get<DataMsg>(out.msgs[0]).payload);
}

TEST(Codec, MembershipMessagesRoundtrip) {
  FlushReq fr{9, {1, 2, 3}};
  FlushState fs{9, 2, Bytes{10, 20, 30}};
  ViewInstall vi{10, {1, 2}, {1, 2}, {Bytes{1}, Bytes{}}};
  JoinReq jr{5};
  LeaveReq lr{6};
  Heartbeat hb{4};
  Frame out = roundtrip(Frame{0, 1, 0, {fr, fs, vi, jr, lr, hb}});
  EXPECT_EQ(std::get<FlushReq>(out.msgs[0]).members, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(std::get<FlushState>(out.msgs[1]).state, (Bytes{10, 20, 30}));
  const auto& v = std::get<ViewInstall>(out.msgs[2]);
  EXPECT_EQ(v.view, 10u);
  EXPECT_EQ(v.states.size(), 2u);
  EXPECT_EQ(v.states[0], Bytes{1});
  EXPECT_TRUE(v.states[1].empty());
  EXPECT_EQ(std::get<JoinReq>(out.msgs[3]).node, 5u);
  EXPECT_EQ(std::get<LeaveReq>(out.msgs[4]).node, 6u);
  EXPECT_EQ(std::get<Heartbeat>(out.msgs[5]).view, 4u);
}

TEST(Codec, WireSizeMatchesEncodedSizeExactly) {
  // The counting sink and the byte sink share the template; this test pins
  // the invariant that the simulator's size model equals the real encoding.
  Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    Frame f;
    f.from = static_cast<NodeId>(rng.below(16));
    f.to = static_cast<NodeId>(rng.below(16));
    std::size_t n = rng.below(5) + 1;
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.below(4)) {
        case 0: {
          DataMsg m;
          m.id = MsgId{static_cast<NodeId>(rng.below(100)), rng.next()};
          m.view = rng.below(1000);
          m.frag = FragInfo{rng.next(), static_cast<std::uint32_t>(rng.below(100)),
                            static_cast<std::uint32_t>(rng.below(100) + 1)};
          m.payload = make_payload(Bytes(rng.below(5000), 0x11));
          f.msgs.emplace_back(std::move(m));
          break;
        }
        case 1: {
          SeqMsg m;
          m.id = MsgId{static_cast<NodeId>(rng.below(100)), rng.next()};
          m.seq = rng.next();
          m.payload = make_payload(Bytes(rng.below(5000), 0x22));
          f.msgs.emplace_back(std::move(m));
          break;
        }
        case 2:
          f.msgs.emplace_back(AckMsg{MsgId{1, rng.next()}, rng.next(), 1, rng.chance(0.5)});
          break;
        default:
          f.msgs.emplace_back(GcMsg{rng.next(), 1, static_cast<std::uint32_t>(rng.below(32))});
      }
    }
    Bytes encoded = encode_frame(f);
    EXPECT_EQ(encoded.size(), wire_size(f));
  }
}

TEST(Codec, FuzzDecodeNeverCrashes) {
  // Random garbage must either decode or throw CodecError — never crash.
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)decode_frame(junk);
    } catch (const CodecError&) {
      // expected for malformed input
    }
  }
}

TEST(Codec, FuzzMutatedValidFramesNeverCrash) {
  Rng rng(99);
  DataMsg m;
  m.id = MsgId{3, 12};
  m.frag = FragInfo{1, 0, 4};
  m.payload = make_payload(Bytes(100, 0x77));
  Bytes valid = encode_frame(Frame{0, 1, 0, {m, AckMsg{MsgId{1, 1}, 5, 1, true}}});
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes mutated = valid;
    std::size_t flips = rng.below(4) + 1;
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 << rng.below(8));
    }
    try {
      (void)decode_frame(mutated);
    } catch (const CodecError&) {
    }
  }
}

TEST(Codec, TrailingBytesRejected) {
  Bytes valid = encode_frame(Frame{0, 1, 0, {AckMsg{MsgId{1, 1}, 5, 1, true}}});
  valid.push_back(0);
  EXPECT_THROW(decode_frame(valid), CodecError);
}

TEST(Codec, CarriesPayloadClassification) {
  EXPECT_TRUE(carries_payload(WireMsg{DataMsg{}}));
  EXPECT_TRUE(carries_payload(WireMsg{SeqMsg{}}));
  EXPECT_FALSE(carries_payload(WireMsg{AckMsg{}}));
  EXPECT_FALSE(carries_payload(WireMsg{GcMsg{}}));
  EXPECT_FALSE(carries_payload(WireMsg{Heartbeat{}}));
}

}  // namespace
}  // namespace fsr
