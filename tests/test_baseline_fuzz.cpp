// Randomized workloads over the three packet-level baseline engines: for
// many seeds, arbitrary sender sets / message sizes / submit times must
// yield complete, identical delivery logs at every node (total order +
// agreement + liveness), like the FSR fuzzers do for the core engine.
#include <gtest/gtest.h>

#include "baselines/fixed_seq_cluster.h"
#include "baselines/moving_seq_cluster.h"
#include "baselines/privilege_cluster.h"
#include "common/rng.h"
#include "harness/sim_cluster.h"
#include "support/seeded_test.h"

namespace fsr::baselines {
namespace {

struct Workload {
  std::size_t n;
  std::vector<std::tuple<NodeId, std::uint64_t, std::size_t, Time>> sends;
  std::size_t total = 0;
};

Workload make_workload(Rng& rng) {
  Workload w;
  w.n = 3 + rng.below(6);
  std::map<NodeId, std::uint64_t> app;
  int msgs = 10 + static_cast<int>(rng.below(40));
  for (int i = 0; i < msgs; ++i) {
    auto s = static_cast<NodeId>(rng.below(w.n));
    w.sends.push_back({s, ++app[s], 1 + rng.below(30000),
                       static_cast<Time>(rng.below(30)) * kMillisecond});
  }
  w.total = w.sends.size();
  return w;
}

template <typename Cluster>
void drive_and_check(Cluster& c, const Workload& w, std::uint64_t seed,
                     const char* name) {
  FSR_SEED_TRACE(seed, std::string(name) + " n=" + std::to_string(w.n) +
                           " msgs=" + std::to_string(w.total));
  for (const auto& [s, app, size, at] : w.sends) {
    NodeId sender = s;
    std::uint64_t a = app;
    std::size_t sz = size;
    c.sim().schedule_at(at, [&c, sender, a, sz] {
      c.broadcast(sender, test_payload(sender, a, sz));
    });
  }
  c.sim().run();
  for (std::size_t node = 0; node < w.n; ++node) {
    ASSERT_EQ(c.log(static_cast<NodeId>(node)).size(), w.total)
        << name << " seed=" << seed << " node=" << node << " n=" << w.n;
  }
  ASSERT_EQ(c.check_logs_identical(), "") << name << " seed=" << seed;
}

struct FuzzParam {
  std::uint64_t seed;
};

class BaselineFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(BaselineFuzzTest, FixedSequencerSafeAndComplete) {
  Rng rng(GetParam().seed);
  Workload w = make_workload(rng);
  FixedSeqConfig cfg;
  cfg.segment_size = 1024 + rng.below(8192);
  cfg.window = 4 + rng.below(16);
  FixedSeqCluster c(NetConfig{}, w.n, cfg);
  drive_and_check(c, w, GetParam().seed, "fixed-seq");
}

TEST_P(BaselineFuzzTest, MovingSequencerSafeAndComplete) {
  Rng rng(GetParam().seed ^ 0x5555);
  Workload w = make_workload(rng);
  MovingSeqConfig cfg;
  cfg.segment_size = 1024 + rng.below(8192);
  cfg.batch = 1 + rng.below(12);
  MovingSeqCluster c(NetConfig{}, w.n, cfg);
  drive_and_check(c, w, GetParam().seed, "moving-seq");
}

TEST_P(BaselineFuzzTest, PrivilegeSafeAndComplete) {
  Rng rng(GetParam().seed ^ 0xaaaa);
  Workload w = make_workload(rng);
  PrivilegeConfig cfg;
  cfg.segment_size = 1024 + rng.below(8192);
  cfg.hold_max = 1 + rng.below(12);
  PrivilegeCluster c(NetConfig{}, w.n, cfg);
  drive_and_check(c, w, GetParam().seed, "privilege");
}

std::vector<FuzzParam> seeds() {
  std::vector<FuzzParam> out;
  for (std::uint64_t s = 1; s <= 20; ++s) out.push_back({s * 0x517cc1b727220a95ULL});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineFuzzTest, ::testing::ValuesIn(seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace fsr::baselines
