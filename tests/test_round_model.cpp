// The paper's round-based model (§3) and analytic claims (§4.3):
//   * FSR latency is exactly L(i) = 2n + t - i - 1 rounds,
//   * FSR throughput >= 1 completed broadcast per round, independent of
//     n, t and the number of senders,
//   * FSR is fair,
//   * the baseline protocol classes behave as §2 describes (sequencer
//     receive bottleneck, moving-sequencer 1/2 cap, privilege trade-off).
#include <gtest/gtest.h>

#include "common/stats.h"
#include "ring/rules.h"
#include "roundmodel/fixed_seq_round.h"
#include "roundmodel/fsr_round.h"
#include "roundmodel/moving_seq_round.h"
#include "roundmodel/privilege_round.h"

namespace fsr::rounds {
namespace {

double steady_throughput(Protocol& proto, const WorkloadSpec& spec,
                         long long warmup = 400, long long window = 2000) {
  RoundEngine engine(spec, proto);
  engine.run(warmup + window);
  EXPECT_EQ(engine.check_total_order(), "") << proto.name();
  return static_cast<double>(engine.completed_between(warmup, warmup + window)) /
         static_cast<double>(window);
}

std::vector<int> all_senders(int n) {
  std::vector<int> s;
  for (int i = 0; i < n; ++i) s.push_back(i);
  return s;
}

// --- FSR latency (paper §4.3.1) ---

TEST(RoundModelFsr, LatencyMatchesFormulaForStandardSenders) {
  for (int n = 3; n <= 12; ++n) {
    for (int t = 0; t <= 3 && t < n - 1; ++t) {
      for (int i = t + 1; i < n; ++i) {
        FsrRound proto(n, t);
        RoundEngine engine({n, {i}, 1}, proto);
        engine.run(6 * n + 10);
        ASSERT_EQ(engine.completed(), 1) << "n=" << n << " t=" << t << " i=" << i;
        auto topo = ring::Topology{static_cast<std::uint32_t>(n),
                                   static_cast<std::uint32_t>(t)};
        // completion_round is 0-based: L hops occupy rounds 0..L-1.
        EXPECT_EQ(engine.latency(0) + 1,
                  static_cast<long long>(topo.analytic_latency(static_cast<Position>(i))))
            << "n=" << n << " t=" << t << " i=" << i;
      }
    }
  }
}

TEST(RoundModelFsr, LatencyIsLinearInN) {
  // Fixed sender position (2), growing ring: L(2) = 2n + t - 3, so latency
  // grows by exactly 2 rounds per added process.
  long long prev = -1;
  for (int n = 4; n <= 12; ++n) {
    FsrRound proto(n, 1);
    RoundEngine engine({n, {2}, 1}, proto);
    engine.run(6 * n + 10);
    ASSERT_EQ(engine.completed(), 1);
    long long lat = engine.latency(0);
    if (prev >= 0) EXPECT_EQ(lat - prev, 2) << "n=" << n;
    prev = lat;
  }
}

// --- FSR throughput (paper §4.3.2) ---

TEST(RoundModelFsr, OneToNThroughputIsOne) {
  for (int n : {3, 5, 8, 10}) {
    FsrRound proto(n, 1);
    double tp = steady_throughput(proto, {n, {n - 1}, -1});
    EXPECT_GE(tp, 0.99) << "n=" << n;
    EXPECT_LE(tp, 1.01) << "n=" << n;
  }
}

TEST(RoundModelFsr, NToNThroughputIsOne) {
  for (int n : {3, 5, 8, 10}) {
    FsrRound proto(n, 1);
    double tp = steady_throughput(proto, {n, all_senders(n), -1});
    EXPECT_GE(tp, 0.99) << "n=" << n;
  }
}

TEST(RoundModelFsr, KToNThroughputIsOne) {
  // The case privilege-based protocols lose (paper §1): k strictly between
  // 1 and n.
  for (int k : {2, 3, 4}) {
    int n = 8;
    std::vector<int> senders;
    for (int i = 0; i < k; ++i) senders.push_back(i * (n / k));
    FsrRound proto(n, 1);
    double tp = steady_throughput(proto, {n, senders, -1});
    EXPECT_GE(tp, 0.99) << "k=" << k;
  }
}

TEST(RoundModelFsr, ThroughputIndependentOfT) {
  for (int t : {0, 1, 2, 3, 4}) {
    FsrRound proto(8, t);
    double tp = steady_throughput(proto, {8, all_senders(8), -1});
    EXPECT_GE(tp, 0.99) << "t=" << t;
  }
}

TEST(RoundModelFsr, FairnessTwoOpposedBurstySenders) {
  // The §2.3 scenario: two senders at opposite sides of the ring. FSR must
  // give them equal shares.
  int n = 8;
  FsrRound proto(n, 1);
  RoundEngine engine({n, {2, 6}, -1}, proto);
  engine.run(3000);
  auto by_origin = engine.completed_by_origin();
  std::vector<double> shares;
  for (auto& [origin, count] : by_origin) shares.push_back(static_cast<double>(count));
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_GT(jain_fairness(shares), 0.999);
  EXPECT_EQ(engine.check_total_order(), "");
}

TEST(RoundModelFsr, FairnessAllSenders) {
  int n = 6;
  FsrRound proto(n, 2);
  RoundEngine engine({n, all_senders(n), -1}, proto);
  engine.run(3000);
  auto by_origin = engine.completed_by_origin();
  std::vector<double> shares;
  for (auto& [origin, count] : by_origin) shares.push_back(static_cast<double>(count));
  ASSERT_EQ(shares.size(), static_cast<std::size_t>(n));
  EXPECT_GT(jain_fairness(shares), 0.99);
}

// --- Fixed sequencer (paper §2.1): receive bottleneck ---

TEST(RoundModelFixedSeq, OneToNThroughputCollapsesWithN) {
  // Sender is not the sequencer: sequencer absorbs data + n-1 ack streams.
  for (int n : {4, 8}) {
    FixedSeqRound proto(n);
    double tp = steady_throughput(proto, {n, {1}, -1}, 800, 4000);
    EXPECT_LT(tp, 1.2 / static_cast<double>(n - 1)) << "n=" << n;
    EXPECT_GT(tp, 0.5 / static_cast<double>(n)) << "n=" << n;
  }
}

TEST(RoundModelFixedSeq, NToNPiggybackingRestoresThroughput) {
  // Footnote 2: acks can be piggybacked only when all processes broadcast
  // all the time — then the sequencer receives one data+ack per round.
  FixedSeqRound proto(6);
  double tp = steady_throughput(proto, {6, all_senders(6), -1});
  EXPECT_GT(tp, 0.9);
}

TEST(RoundModelFixedSeq, DeliversEverythingEventually) {
  FixedSeqRound proto(5);
  RoundEngine engine({5, {1, 3}, 20}, proto);
  engine.run(3000);
  EXPECT_EQ(engine.completed(), 40);
  EXPECT_EQ(engine.check_total_order(), "");
}

// --- Moving sequencer (paper §2.2): capped at 1/2 ---

TEST(RoundModelMovingSeq, ThroughputCappedByDoubleReceive) {
  // Every process must receive both the data broadcast and the seq/token
  // broadcast of each message, except the ones it sent itself. The exact
  // receive-capacity cap is therefore n/(2n-1) for 1-to-n (a process
  // sequences 1/n of the traffic) and 1/(2-2/n) for n-to-n — approaching
  // the paper's 1/2 as n grows, never reaching 1.
  for (int n : {4, 6, 8}) {
    {
      MovingSeqRound proto(n, /*window=*/6);
      double tp = steady_throughput(proto, {n, {1}, -1}, 800, 4000);
      double cap = static_cast<double>(n) / (2.0 * n - 1.0);
      EXPECT_LE(tp, cap + 0.01) << "1-to-n, n=" << n;
      EXPECT_GT(tp, 0.2) << "1-to-n, n=" << n;
    }
    {
      MovingSeqRound proto(n, /*window=*/6);
      double tp = steady_throughput(proto, {n, all_senders(n), -1}, 800, 4000);
      double cap = 1.0 / (2.0 - 2.0 / n);
      EXPECT_LE(tp, cap + 0.01) << "n-to-n, n=" << n;
      EXPECT_LT(tp, 0.7) << "n-to-n, n=" << n;
    }
  }
}

TEST(RoundModelMovingSeq, DeliversEverythingEventually) {
  MovingSeqRound proto(5);
  RoundEngine engine({5, {0, 2, 4}, 15}, proto);
  engine.run(4000);
  EXPECT_EQ(engine.completed(), 45);
  EXPECT_EQ(engine.check_total_order(), "");
}

// --- Privilege (paper §2.3): throughput/fairness trade-off ---

TEST(RoundModelPrivilege, OpposedSendersFairHoldIsSlow) {
  int n = 8;
  PrivilegeRound proto(n, /*hold_max=*/1);
  double tp = steady_throughput(proto, {n, {2, 6}, -1}, 800, 4000);
  // Each message costs ~1 send round plus token travel: far below 1.
  EXPECT_LT(tp, 0.7);
  EXPECT_GT(tp, 0.1);
}

TEST(RoundModelPrivilege, LargeHoldIsFastButUnfair) {
  int n = 8;
  PrivilegeRound proto(n, /*hold_max=*/64);
  RoundEngine engine({n, {2, 6}, -1}, proto);
  engine.run(2000);
  // Throughput near 1 ...
  double tp = static_cast<double>(engine.completed_between(400, 2000)) / 1600.0;
  EXPECT_GT(tp, 0.8);
  // ... but unfair within any window: long runs of one origin dominate the
  // delivery order (the holder keeps the privilege for 64 messages).
  const auto& log = engine.logs()[0];
  ASSERT_GE(log.size(), 128u);
  std::size_t longest_run = 0, run = 0;
  int prev = -1;
  for (long long b : log) {
    int o = engine.origin_of(b);
    run = (o == prev) ? run + 1 : 1;
    prev = o;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_GE(longest_run, 32u);

  // FSR under the identical workload interleaves tightly.
  FsrRound fsr_proto(n, 1);
  RoundEngine fsr_engine({n, {2, 6}, -1}, fsr_proto);
  fsr_engine.run(2000);
  const auto& fsr_log = fsr_engine.logs()[0];
  ASSERT_GE(fsr_log.size(), 128u);
  std::size_t fsr_longest = 0;
  run = 0;
  prev = -1;
  for (long long b : fsr_log) {
    int o = fsr_engine.origin_of(b);
    run = (o == prev) ? run + 1 : 1;
    prev = o;
    fsr_longest = std::max(fsr_longest, run);
  }
  EXPECT_LE(fsr_longest, 4u);
}

TEST(RoundModelPrivilege, SingleSenderWithInfiniteHoldReachesOne) {
  // Even with an unbounded hold, a *uniform* privilege protocol must let
  // the token rotate for stability once the send window fills, so
  // throughput is window/(window + n) — approaching 1 only with a large
  // window (and losing any fairness).
  int n = 6;
  PrivilegeRound proto(n, /*hold_max=*/1 << 20, /*window=*/512);
  double tp = steady_throughput(proto, {n, {0}, -1}, 2000, 6000);
  EXPECT_GT(tp, 0.95);
}

TEST(RoundModelPrivilege, DeliversEverythingEventually) {
  PrivilegeRound proto(5, 4);
  RoundEngine engine({5, {1, 2}, 20}, proto);
  engine.run(4000);
  EXPECT_EQ(engine.completed(), 40);
  EXPECT_EQ(engine.check_total_order(), "");
}

// --- cross-protocol: FSR dominates in the paper's k-to-n scenario ---

TEST(RoundModelComparison, FsrBeatsAllBaselinesForKToN) {
  int n = 8;
  std::vector<int> senders{2, 6};

  FsrRound fsr_p(n, 1);
  double fsr_tp = steady_throughput(fsr_p, {n, senders, -1});

  FixedSeqRound fixed_p(n);
  double fixed_tp = steady_throughput(fixed_p, {n, senders, -1}, 800, 4000);

  MovingSeqRound moving_p(n);
  double moving_tp = steady_throughput(moving_p, {n, senders, -1}, 800, 4000);

  PrivilegeRound priv_p(n, 1);
  double priv_tp = steady_throughput(priv_p, {n, senders, -1}, 800, 4000);

  EXPECT_GT(fsr_tp, 2 * fixed_tp);
  EXPECT_GT(fsr_tp, 1.8 * moving_tp);
  EXPECT_GT(fsr_tp, 1.4 * priv_tp);
  EXPECT_GE(fsr_tp, 0.99);
}

}  // namespace
}  // namespace fsr::rounds
