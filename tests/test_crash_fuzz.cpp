// Randomized crash-fault injection: for many seeds, drive a random workload
// (senders, message sizes, submit times) and crash up to t random processes
// at random times. After quiescence, every safety invariant must hold:
// integrity, total order, agreement among survivors, uniformity for the
// crashed, and — for messages from surviving senders — liveness.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "harness/sim_cluster.h"
#include "support/seeded_test.h"

namespace fsr {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

class CrashFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CrashFuzzTest, InvariantsHoldUnderRandomCrashes) {
  Rng rng(GetParam().seed);

  std::size_t n = 3 + rng.below(7);                    // 3..9 nodes
  auto t = static_cast<std::uint32_t>(rng.below(3) + 1);  // 1..3 backups
  t = ring::effective_t(t, static_cast<std::uint32_t>(n));

  ClusterConfig cfg;
  cfg.n = n;
  cfg.group.engine.t = t;
  cfg.group.engine.segment_size = 512 + rng.below(4096);
  cfg.group.engine.window = 4 + rng.below(32);
  cfg.group.engine.gc_interval = 8 + rng.below(64);
  FSR_SEED_TRACE(GetParam().seed, cfg);
  SimCluster c(cfg);

  // Random workload: every node may send, spread over ~40 ms.
  std::map<NodeId, int> sent;
  int total_msgs = 30 + static_cast<int>(rng.below(60));
  for (int i = 0; i < total_msgs; ++i) {
    auto sender = static_cast<NodeId>(rng.below(n));
    auto app = static_cast<std::uint64_t>(++sent[sender]);
    std::size_t size = 1 + rng.below(12000);
    Time at = static_cast<Time>(rng.below(40)) * kMillisecond;
    c.sim().schedule_at(at, [&c, sender, app, size] {
      c.broadcast(sender, test_payload(sender, app, size));
    });
  }

  // Crash up to t processes at random times.
  std::size_t crashes = rng.below(t + 1);
  std::set<NodeId> doomed;
  while (doomed.size() < crashes) {
    doomed.insert(static_cast<NodeId>(rng.below(n)));
  }
  for (NodeId d : doomed) {
    Time at = static_cast<Time>(5 + rng.below(50)) * kMillisecond;
    c.sim().schedule_at(at, [&c, d] { c.crash(d); });
  }

  c.sim().run();

  ASSERT_EQ(c.check_all(), "") << "seed=" << GetParam().seed << " n=" << n
                               << " t=" << t << " crashes=" << crashes;

  // Liveness: every message from a surviving sender is delivered by every
  // surviving node.
  for (std::size_t i = 0; i < n; ++i) {
    auto node = static_cast<NodeId>(i);
    if (!c.alive(node)) continue;
    for (const auto& [sender, count] : sent) {
      if (doomed.count(sender)) continue;
      int got = 0;
      for (const auto& e : c.log(node)) {
        if (e.origin == sender) ++got;
      }
      EXPECT_EQ(got, count) << "seed=" << GetParam().seed << ": node " << node
                            << " missing messages from live sender " << sender;
    }
  }
}

std::vector<FuzzCase> seeds() {
  std::vector<FuzzCase> out;
  for (std::uint64_t s = 1; s <= 80; ++s) out.push_back({s * 2654435761ULL});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzzTest, ::testing::ValuesIn(seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

// A second family: crashes specifically aimed at the leader + backups
// (the processes that hold recovery state), which is the hardest case for
// uniformity.
class LeadershipCrashFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(LeadershipCrashFuzzTest, RecoveryStateSurvivesTargetedCrashes) {
  Rng rng(GetParam().seed);
  std::size_t n = 5 + rng.below(4);  // 5..8
  std::uint32_t t = 2;

  ClusterConfig cfg;
  cfg.n = n;
  cfg.group.engine.t = t;
  cfg.group.engine.segment_size = 2048;
  FSR_SEED_TRACE(GetParam().seed, cfg);
  SimCluster c(cfg);

  std::map<NodeId, int> sent;
  for (int i = 0; i < 50; ++i) {
    auto sender = static_cast<NodeId>(rng.below(n));
    auto app = static_cast<std::uint64_t>(++sent[sender]);
    Time at = static_cast<Time>(rng.below(30)) * kMillisecond;
    c.sim().schedule_at(at, [&c, sender, app] {
      c.broadcast(sender, test_payload(sender, app, 3000));
    });
  }

  // Crash the leader and the first backup close together, mid-traffic.
  Time first = static_cast<Time>(8 + rng.below(20)) * kMillisecond;
  c.sim().schedule_at(first, [&c] { c.crash(0); });
  c.sim().schedule_at(first + static_cast<Time>(rng.below(6)) * kMillisecond,
                      [&c] { c.crash(1); });

  c.sim().run();
  ASSERT_EQ(c.check_all(), "") << "seed=" << GetParam().seed << " n=" << n;

  for (std::size_t i = 2; i < n; ++i) {
    auto node = static_cast<NodeId>(i);
    for (const auto& [sender, count] : sent) {
      if (sender == 0 || sender == 1) continue;
      int got = 0;
      for (const auto& e : c.log(node)) {
        if (e.origin == sender) ++got;
      }
      EXPECT_EQ(got, count) << "seed=" << GetParam().seed << " node " << node
                            << " sender " << sender;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeadershipCrashFuzzTest,
                         ::testing::ValuesIn(seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace fsr
