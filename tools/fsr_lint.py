#!/usr/bin/env python3
"""Project concurrency lint: enforce the sync.h discipline over the tree.

The Clang thread-safety gate (-Werror=thread-safety) only fires on Clang
builds and only on what the annotations express. This lint closes the
remaining holes with cheap textual rules that hold on every toolchain:

  R1 raw-primitive   No std::mutex / std::recursive_mutex / std::shared_mutex
                     / std::condition_variable* / std::lock_guard /
                     std::unique_lock / std::scoped_lock / std::thread outside
                     the sanctioned wrapper (src/common/sync.h).
                     std::thread::id and std::this_thread remain allowed:
                     identity and sleeping are not synchronization.
  R2 no-detach       No .detach() anywhere: every thread joins (sync.h's
                     Thread doesn't even expose detach; this catches raw
                     escapes in tests/benches too).
  R3 no-block-in-io  Functions annotated FSR_REQUIRES(<role>) must not call
                     blocking primitives (sleep_for, sleep_until, usleep,
                     post_wait, gateway_read_frame, Thread::join): they run
                     on the event thread, where blocking stalls the whole
                     replica. Applies to inline bodies and to out-of-line
                     Class::method definitions whose declaration is annotated.
  R4 guarded-by-ref  Every FSR_GUARDED_BY(x) / FSR_PT_GUARDED_BY(x) argument
                     must name a Mutex / RecursiveMutex / ThreadRole member
                     declared in the same file (catches typo'd or stale
                     capability names that Clang would silently accept as a
                     new expression).

Suppression: append `// fsr-lint: allow(R<n>) <reason>` to the offending
line (or the line above). A reason is mandatory.

Usage:
  tools/fsr_lint.py [--root DIR] [--compile-commands PATH] [--report PATH]

Exit status 0 if clean, 1 if any violation, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

# Files allowed to spell the raw primitives: the wrapper itself.
SANCTIONED = {os.path.join("src", "common", "sync.h")}

# Directories scanned (relative to --root).
SCAN_DIRS = ["src", "tests", "bench", "examples"]
EXTS = {".h", ".hpp", ".cpp", ".cc"}

RAW_PRIMITIVE = re.compile(
    r"std::(?:recursive_mutex|shared_mutex|mutex|condition_variable_any|"
    r"condition_variable|lock_guard|unique_lock|scoped_lock|thread)\b"
    r"(?!::id)"
)
# std::this_thread::... is fine; the RAW_PRIMITIVE regex can't hit it
# (different token), but std::thread::id needs the explicit carve-out above.
DETACH = re.compile(r"\.\s*detach\s*\(")
BLOCKING = re.compile(
    r"\b(?:sleep_for|sleep_until|usleep|post_wait|gateway_read_frame)\s*\(|"
    r"\.\s*join\s*\("
)
GUARDED_BY = re.compile(r"FSR_(?:PT_)?GUARDED_BY\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)")
CAPABILITY_DECL = re.compile(
    r"\b(?:Mutex|RecursiveMutex|ThreadRole)\s+([A-Za-z_][A-Za-z0-9_]*)\s*[;{=]"
)
REQUIRES_ROLE = re.compile(r"FSR_REQUIRES\(\s*([A-Za-z_][A-Za-z0-9_:]*(?:\(\))?)\s*\)")
ALLOW = re.compile(r"//\s*fsr-lint:\s*allow\((R[1-4])\)\s*(\S.*)?$")

LINE_COMMENT = re.compile(r"//.*$")
STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Remove string literals and line comments so rules match code only."""
    return LINE_COMMENT.sub("", STRING_LIT.sub('""', line))


def allowed(lines: list[str], idx: int, rule: str) -> bool:
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW.search(lines[probe])
            if m and m.group(1) == rule and m.group(2):
                return True
    return False


class Linter:
    def __init__(self, root: str):
        self.root = root
        self.violations: list[dict] = []

    def report(self, rel: str, lineno: int, rule: str, msg: str) -> None:
        self.violations.append(
            {"file": rel, "line": lineno, "rule": rule, "message": msg}
        )

    # -- R1/R2: token scans ------------------------------------------------
    def scan_tokens(self, rel: str, lines: list[str]) -> None:
        sanctioned = rel in SANCTIONED
        for i, raw in enumerate(lines):
            code = strip_noise(raw)
            if not sanctioned:
                m = RAW_PRIMITIVE.search(code)
                if m and not allowed(lines, i, "R1"):
                    self.report(
                        rel, i + 1, "R1",
                        f"raw {m.group(0)} outside src/common/sync.h; "
                        "use the fsr wrapper (Mutex/CondVar/Thread/...)",
                    )
            m = DETACH.search(code)
            if m and not allowed(lines, i, "R2"):
                self.report(
                    rel, i + 1, "R2",
                    "thread .detach() is banned: every thread must join",
                )

    # -- R3: blocking calls inside role-annotated bodies -------------------
    def collect_annotated(self, rel: str, text: str) -> set[str]:
        """Method names declared with FSR_REQUIRES on a role capability."""
        names: set[str] = set()
        decl = re.compile(
            r"([A-Za-z_][A-Za-z0-9_]*)\s*\([^;{}]*?\)\s*"
            r"(?:const\s*)?(?:override\s*)?FSR_REQUIRES\(\s*"
            r"([A-Za-z_][A-Za-z0-9_:]*(?:\(\))?)\s*\)",
            re.S,
        )
        for m in decl.finditer(text):
            cap = m.group(2)
            if "role" in cap.lower():
                names.add(m.group(1))
        return names

    def body_span(self, text: str, open_brace: int) -> int:
        depth = 0
        for j in range(open_brace, len(text)):
            c = text[j]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    return j
        return len(text) - 1

    def scan_blocking(self, rel: str, text: str, lines: list[str],
                      annotated: set[str]) -> None:
        # Out-of-line definitions Class::name(...) { ... } for annotated
        # names, plus inline definitions carrying the annotation directly.
        defn = re.compile(
            r"(?:[A-Za-z_][A-Za-z0-9_]*\s*::\s*)?(%s)\s*\([^;{}]*?\)\s*"
            r"(?:const\s*)?(?:override\s*)?(?:FSR_REQUIRES\([^)]*\)\s*)?\{"
            % "|".join(sorted(re.escape(n) for n in annotated))
        ) if annotated else None
        if defn is None:
            return
        for m in defn.finditer(text):
            open_brace = m.end() - 1
            close = self.body_span(text, open_brace)
            body = text[open_brace:close]
            base_line = text.count("\n", 0, open_brace)
            for off, body_line in enumerate(body.split("\n")):
                code = strip_noise(body_line)
                b = BLOCKING.search(code)
                if b:
                    lineno = base_line + off
                    if not allowed(lines, lineno, "R3"):
                        self.report(
                            rel, lineno + 1, "R3",
                            f"blocking call {b.group(0).strip()!r} inside "
                            f"role-annotated '{m.group(1)}' (runs on the "
                            "event thread; it must never block)",
                        )

    # -- R4: GUARDED_BY names a declared capability ------------------------
    def scan_guarded(self, rel: str, lines: list[str]) -> None:
        declared: set[str] = set()
        for raw in lines:
            for m in CAPABILITY_DECL.finditer(strip_noise(raw)):
                declared.add(m.group(1))
        for i, raw in enumerate(lines):
            code = strip_noise(raw)
            if code.lstrip().startswith("#"):
                continue  # macro definitions in sync.h spell FSR_GUARDED_BY(x)
            for m in GUARDED_BY.finditer(code):
                name = m.group(1)
                if name not in declared and not allowed(lines, i, "R4"):
                    self.report(
                        rel, i + 1, "R4",
                        f"FSR_GUARDED_BY({name}) does not name a Mutex/"
                        "RecursiveMutex/ThreadRole declared in this file",
                    )

    def lint_file(self, path: str) -> None:
        rel = os.path.relpath(path, self.root)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            self.report(rel, 0, "IO", f"unreadable: {e}")
            return
        lines = text.split("\n")
        self.scan_tokens(rel, lines)
        if rel.startswith("src" + os.sep):
            annotated = self.collect_annotated(rel, text)
            if annotated:
                self.scan_blocking(rel, text, lines, annotated)
                # Out-of-line bodies live in the sibling .cpp; lint it too
                # under the header's annotation set.
                if rel.endswith(".h"):
                    sib = path[:-2] + ".cpp"
                    if os.path.exists(sib):
                        with open(sib, encoding="utf-8",
                                  errors="replace") as f:
                            sib_text = f.read()
                        self.scan_blocking(os.path.relpath(sib, self.root),
                                           sib_text, sib_text.split("\n"),
                                           annotated)
            self.scan_guarded(rel, lines)


def gather_files(root: str, compile_commands: str | None) -> list[str]:
    files: set[str] = set()
    if compile_commands:
        try:
            with open(compile_commands, encoding="utf-8") as f:
                for entry in json.load(f):
                    p = os.path.normpath(
                        os.path.join(entry.get("directory", root),
                                     entry["file"]))
                    if os.path.splitext(p)[1] in EXTS and \
                            os.path.commonpath([root, p]) == root:
                        files.add(p)
        except (OSError, ValueError, KeyError) as e:
            print(f"fsr_lint: bad compile db {compile_commands}: {e}",
                  file=sys.stderr)
            sys.exit(2)
    for d in SCAN_DIRS:
        top = os.path.join(root, d)
        for dirpath, _, names in os.walk(top):
            for n in names:
                if os.path.splitext(n)[1] in EXTS:
                    files.add(os.path.join(dirpath, n))
    return sorted(files)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json to widen the file list")
    ap.add_argument("--report", default=None,
                    help="write violations as JSON to this path")
    args = ap.parse_args()

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(__file__), ".."))
    linter = Linter(root)
    files = gather_files(root, args.compile_commands)
    for path in files:
        linter.lint_file(path)

    # Deduplicate (a .cpp can be visited directly and via its header's R3
    # pass) and sort for stable output.
    seen: dict = {}
    for v in linter.violations:
        seen[(v["file"], v["line"], v["rule"], v["message"])] = v
    violations = sorted(seen.values(),
                        key=lambda v: (v["file"], v["line"], v["rule"]))

    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump({"files_scanned": len(files),
                       "violations": violations}, f, indent=2)
            f.write("\n")

    for v in violations:
        print(f"{v['file']}:{v['line']}: [{v['rule']}] {v['message']}")
    if violations:
        print(f"fsr_lint: {len(violations)} violation(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"fsr_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
