#!/usr/bin/env python3
"""Diff fresh BENCH_<name>.json reports against committed baseline snapshots.

Usage: check_bench_regression.py <fresh-dir> <baseline-dir> [--threshold PCT]
                                 [--fail]

For every BENCH_*.json in <baseline-dir>, find the same-named report in
<fresh-dir> and compare throughput metrics row by row (rows are matched on
their identity keys: nodes / msg_size / senders / clients / ...). A fresh
value more than --threshold percent (default 15) below the baseline prints
a GitHub Actions ::warning:: annotation.

By default this is a trend-watcher, not a gate: CI runners are shared
hardware, so the exit code is 0 unless a report is missing, unparseable, or
lacks a row the baseline has (schema drift and silently-skipped benches
should be loud; a slow runner should not be). With --fail,
any regression past the threshold also fails the run — meant for the
nightly job, which uses a generous threshold to separate real regressions
from runner noise.
"""

import argparse
import json
import sys
from pathlib import Path

# Higher-is-better throughput metrics worth warning about.
METRICS = ("goodput_mbps", "frames_per_sec", "msgs_per_sec",
           "requests_per_sec")

# Lower-is-better tail-latency metrics: warn when they RISE past the
# threshold. Tail latencies are noisier than throughput on shared runners,
# so the threshold is scaled up.
LATENCY_METRICS = ("p99_ms", "p999_ms")
LATENCY_THRESHOLD_SCALE = 2.0

# Keys that identify a row within a report (whatever subset is present).
# `shards` and `group` scope the sharded-gateway sweep: one aggregate row
# per (shards, clients) point plus a rollup row per ordering domain.
IDENTITY = ("nodes", "msg_size", "msgs_per_sender", "senders", "message_size",
            "rate_per_sender", "clients", "requests_per_client", "tier",
            "variant", "shards", "group")


def load_report(path: Path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != 1:
        raise ValueError(f"{path}: unsupported schema {data.get('schema')!r}")
    return data


def row_key(row):
    return tuple((k, row[k]) for k in IDENTITY if k in row)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh_dir", type=Path)
    ap.add_argument("baseline_dir", type=Path)
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="warn when a metric drops more than this percent")
    ap.add_argument("--fail", action="store_true",
                    help="exit nonzero when any metric regresses past the "
                         "threshold (nightly gate; per-commit CI stays "
                         "warn-only)")
    args = ap.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 1

    hard_error = False
    warnings = 0
    compared = 0
    for base_path in baselines:
        fresh_path = args.fresh_dir / base_path.name
        if not fresh_path.exists():
            print(f"error: {fresh_path} missing (bench not run?)", file=sys.stderr)
            hard_error = True
            continue
        try:
            base = load_report(base_path)
            fresh = load_report(fresh_path)
        except (ValueError, OSError, json.JSONDecodeError) as e:
            print(f"error: {e}", file=sys.stderr)
            hard_error = True
            continue

        fresh_rows = {row_key(r): r for r in fresh.get("results", [])}
        for brow in base.get("results", []):
            key = row_key(brow)
            frow = fresh_rows.get(key)
            if frow is None:
                # A baselined row the fresh run never produced is a broken or
                # silently-skipped bench, not runner noise: always fatal.
                print(f"::error::{base_path.name}: row {dict(key)} missing "
                      "from fresh report (bench skipped or sweep shrank?)",
                      file=sys.stderr)
                hard_error = True
                continue
            for metric in METRICS:
                if metric not in brow or metric not in frow:
                    continue
                old, new = float(brow[metric]), float(frow[metric])
                if old <= 0:
                    continue
                compared += 1
                drop = 100.0 * (old - new) / old
                if drop > args.threshold:
                    print(f"::warning::{base_path.name} {dict(key)}: {metric} "
                          f"{old:.1f} -> {new:.1f} ({drop:+.1f}% below baseline)")
                    warnings += 1
            for metric in LATENCY_METRICS:
                if metric not in brow or metric not in frow:
                    continue
                old, new = float(brow[metric]), float(frow[metric])
                if old <= 0:
                    continue
                compared += 1
                rise = 100.0 * (new - old) / old
                if rise > args.threshold * LATENCY_THRESHOLD_SCALE:
                    print(f"::warning::{base_path.name} {dict(key)}: {metric} "
                          f"{old:.2f} -> {new:.2f} ({rise:+.1f}% above baseline)")
                    warnings += 1

    print(f"bench regression check: {compared} metric(s) compared, "
          f"{warnings} warning(s)")
    if hard_error:
        return 1
    if args.fail and warnings:
        print(f"error: --fail set and {warnings} regression warning(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
