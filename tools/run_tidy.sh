#!/usr/bin/env bash
# clang-tidy gate over the production sources (src/). Zero warnings required:
# .clang-tidy sets WarningsAsErrors '*', so any finding fails the script.
#
# Usage: tools/run_tidy.sh [build-dir]
#   build-dir: a configured build tree with compile_commands.json
#              (default: build; the top-level CMakeLists exports it).
#
# Degrades gracefully when clang-tidy is not installed (exit 0 with a
# notice): developer machines may only carry the gcc toolchain, while CI
# installs clang-tidy and enforces the gate for real.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "run_tidy: clang-tidy not found; skipping (the CI job enforces this gate)." >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  # Reuse the preset that CI and developers configure with, so the tidy run
  # sees exactly the flags of a real build. Only the default preset's build
  # dir can be auto-configured; for other trees, configure first.
  if [[ "$BUILD_DIR" == "build" ]]; then
    echo "run_tidy: $BUILD_DIR/compile_commands.json missing; configuring (cmake --preset default)." >&2
    cmake --preset default >&2
  else
    echo "run_tidy: $BUILD_DIR/compile_commands.json missing." >&2
    echo "run_tidy: configure first, e.g.: cmake --preset default" >&2
    exit 1
  fi
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "run_tidy: $TIDY over ${#SOURCES[@]} files (compile db: $BUILD_DIR)"

JOBS="$(nproc 2> /dev/null || echo 1)"
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" -quiet "${SOURCES[@]}"
else
  "$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
fi
echo "run_tidy: clean"
