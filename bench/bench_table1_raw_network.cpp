// Table 1: raw point-to-point network performance (the paper measured this
// with Netperf on its Fast Ethernet cluster: TCP 94 Mb/s, UDP 93 Mb/s).
// Here: a unidirectional stream across the simulated switch using the
// kernel-fast-path network config (no middleware CPU cost), with TCP-like
// (MSS 1448 + 90 B/packet overhead) and UDP-like (1472 + 66) framing.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "net/cluster_net.h"
#include "proto/codec.h"

namespace {

using namespace fsr;

double stream_goodput_mbps(NetConfig cfg, std::size_t chunk, int chunks) {
  Simulator sim;
  ClusterNet net(sim, cfg, 2);
  std::uint64_t received = 0;
  net.set_deliver([&](const Frame& f) {
    received += payload_size(std::get<DataMsg>(f.msgs[0]).payload);
  });
  for (int i = 0; i < chunks; ++i) {
    DataMsg m;
    m.id = MsgId{0, static_cast<LocalSeq>(i + 1)};
    m.payload = make_payload(Bytes(chunk, 0x55));
    net.send(Frame{0, 1, 0, {m}});
  }
  sim.run();
  double secs = static_cast<double>(sim.now()) / 1e9;
  return static_cast<double>(received) * 8.0 / secs / 1e6;
}

void BM_Table1_RawTcp(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    NetConfig cfg = NetConfig::raw_wire();  // MSS 1448, 90 B/packet
    mbps = stream_goodput_mbps(cfg, 32 * 1024, 200);
  }
  state.counters["Mbps"] = mbps;
}
BENCHMARK(BM_Table1_RawTcp)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Table1_RawUdp(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    NetConfig cfg = NetConfig::raw_wire();
    cfg.mss = 1472;               // UDP payload per Ethernet frame
    cfg.per_packet_overhead = 66; // no TCP header / acks
    mbps = stream_goodput_mbps(cfg, 32 * 1024, 200);
  }
  state.counters["Mbps"] = mbps;
}
BENCHMARK(BM_Table1_RawUdp)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Print the table exactly as the paper reports it.
  double tcp = stream_goodput_mbps(NetConfig::raw_wire(), 32 * 1024, 200);
  NetConfig udp_cfg = NetConfig::raw_wire();
  udp_cfg.mss = 1472;
  udp_cfg.per_packet_overhead = 66;
  double udp = stream_goodput_mbps(udp_cfg, 32 * 1024, 200);

  fsr::bench::print_header("Table 1: raw network performance (paper: TCP 94, UDP 93 Mb/s)",
                           {"Protocol", "Bandwidth"});
  fsr::bench::print_row({"TCP", fsr::bench::fmt(tcp, 1) + " Mb/s"});
  fsr::bench::print_row({"UDP", fsr::bench::fmt(udp, 1) + " Mb/s"});
  fsr::bench::JsonReport report("table1_raw_network");
  report.add_row().str("protocol", "tcp").num("mbps", tcp);
  report.add_row().str("protocol", "udp").num("mbps", udp);
  report.write();
  return 0;
}
