// Engine-only microbenchmark: the FSR protocol core with no sockets, no
// simulator, no codec — frames flow between Engines through an in-memory
// router. This isolates the per-frame CPU cost of the engine data path
// (sequence-window lookups, fairness pick, ack piggybacking, delivery) and
// counts heap allocations per routed frame via a counting operator new.
//
// Two phases per row: all messages are broadcast up front (application-side
// allocations excluded), then the router drains until every node delivered
// everything — the drain is the measured on_frame -> deliver hot path.
//
// Emits BENCH_engine_hot.json (schema 1) like the other benches.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <new>
#include <vector>

#include "bench_common.h"
#include "fsr/engine.h"

// --- allocation counting (whole binary; read around the measured phase) ---

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace fsr;

/// Zero-cost transport: send() parks the frame in a shared router queue;
/// the link is always idle (the engine pumps as fast as it can). The engine
/// uses no timers.
class PipeTransport final : public Transport {
 public:
  PipeTransport(NodeId self, std::deque<Frame>* router) : self_(self), router_(router) {}

  NodeId self() const override { return self_; }
  Time now() const override { return 0; }
  void send(Frame frame) override { router_->push_back(std::move(frame)); }
  bool tx_idle() const override { return true; }
  TimerId set_timer(Time, std::function<void()>) override { return TimerId{}; }
  void cancel_timer(TimerId) override {}

 private:
  NodeId self_;
  std::deque<Frame>* router_;
};

struct HotResult {
  double frames_per_sec = 0;
  double msgs_per_sec = 0;
  double allocs_per_frame = 0;
  std::uint64_t frames_routed = 0;
  bool ok = false;
  EngineCounters counters;  // summed over all engines
};

HotResult run_hot(std::size_t n, std::size_t msg_size, int msgs_per_sender) {
  std::deque<Frame> router;
  View view;
  view.id = 1;
  for (std::size_t i = 0; i < n; ++i) view.members.push_back(static_cast<NodeId>(i));

  EngineConfig cfg;
  cfg.t = 1;
  cfg.segment_size = 8192;
  cfg.window = 64;

  std::uint64_t delivered = 0;
  std::vector<std::unique_ptr<PipeTransport>> transports;
  std::vector<std::unique_ptr<Engine>> engines;
  for (std::size_t i = 0; i < n; ++i) {
    transports.push_back(
        std::make_unique<PipeTransport>(static_cast<NodeId>(i), &router));
    engines.push_back(std::make_unique<Engine>(
        *transports.back(), cfg, view, [&delivered](const Delivery&) { ++delivered; }));
  }

  // Phase 1 (unmeasured): applications submit everything. With the link
  // always idle the origins' DATA frames land in the router immediately.
  for (int m = 0; m < msgs_per_sender; ++m) {
    for (std::size_t s = 0; s < n; ++s) {
      engines[s]->broadcast(
          test_payload(static_cast<NodeId>(s), static_cast<std::uint64_t>(m + 1),
                       msg_size));
    }
  }

  // Phase 2 (measured): route frames until every node delivered everything.
  std::uint64_t target =
      n * n * static_cast<std::uint64_t>(msgs_per_sender);  // per-node x nodes
  HotResult r;
  std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  while (delivered < target && !router.empty()) {
    Frame f = std::move(router.front());
    router.pop_front();
    Engine& dst = *engines[f.to];
    for (const WireMsg& m : f.msgs) dst.on_msg(m);
    ++r.frames_routed;
  }
  auto end = std::chrono::steady_clock::now();
  std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;

  r.ok = delivered >= target;
  double secs = std::chrono::duration<double>(end - start).count();
  if (r.ok && secs > 0 && r.frames_routed > 0) {
    r.frames_per_sec = static_cast<double>(r.frames_routed) / secs;
    r.msgs_per_sec = static_cast<double>(target) / secs;
    r.allocs_per_frame =
        static_cast<double>(allocs) / static_cast<double>(r.frames_routed);
  }
  for (const auto& e : engines) r.counters += e->counters();
  return r;
}

}  // namespace

int main() {
  fsr::bench::JsonReport report("engine_hot");
  report.config("segment_size", std::uint64_t{8192})
      .config("window", std::uint64_t{64})
      .config("t", std::uint64_t{1});

  fsr::bench::print_header(
      "FSR engine hot path (no sockets): on_frame -> deliver",
      {"nodes", "msg size", "frames/s", "msgs/s", "allocs/frame", "pooled%",
       "seg copies"});
  struct RowSpec {
    std::size_t n;
    std::size_t size;
    int msgs;
  };
  for (const RowSpec spec : {RowSpec{4, 64, 4000}, RowSpec{4, 1024, 4000},
                             RowSpec{8, 1024, 2000}, RowSpec{4, 65536, 300}}) {
    HotResult r = run_hot(spec.n, spec.size, spec.msgs);
    std::uint64_t acq = r.counters.records_pooled + r.counters.records_allocated;
    double pooled_pct =
        acq > 0 ? 100.0 * static_cast<double>(r.counters.records_pooled) /
                      static_cast<double>(acq)
                : 100.0;
    fsr::bench::print_row(
        {std::to_string(spec.n), std::to_string(spec.size),
         r.ok ? fsr::bench::fmt(r.frames_per_sec, 0) : "STALL",
         r.ok ? fsr::bench::fmt(r.msgs_per_sec, 0) : "-",
         fsr::bench::fmt(r.allocs_per_frame, 2), fsr::bench::fmt(pooled_pct, 1),
         std::to_string(r.counters.segmentation_copies)});
    auto& row = report.add_row();
    row.num("nodes", static_cast<std::uint64_t>(spec.n))
        .num("msg_size", static_cast<std::uint64_t>(spec.size))
        .num("msgs_per_sender", static_cast<std::uint64_t>(spec.msgs))
        .num("frames_per_sec", r.frames_per_sec)
        .num("msgs_per_sec", r.msgs_per_sec)
        .num("allocs_per_frame", r.allocs_per_frame)
        .num("frames_routed", r.frames_routed)
        .num("ok", std::uint64_t{r.ok ? 1u : 0u});
    fsr::bench::add_engine_counters(row, r.counters);
    if (!r.ok) {
      std::fprintf(stderr, "engine_hot: run stalled (n=%zu size=%zu)\n", spec.n,
                   spec.size);
      report.write();
      return 1;
    }
  }
  report.write();
  return 0;
}
