// Real-socket sanity benchmark: FSR over localhost TCP, n-to-n bursts.
// Unlike the simulator figures this measures the host machine, not the
// paper's testbed — loopback bandwidth is orders of magnitude above
// 100 Mb/s Fast Ethernet — so the value here is (a) the protocol stack
// works end-to-end on real sockets at speed, and (b) a rough sense of the
// per-message processing cost of this implementation.
//
// The 1 KiB rows exercise the zero-copy batched data path where syscall and
// copy overhead dominates; transport counters (syscalls per frame, iovec
// batch sizes, payload copy counts) are attached to every row of the
// BENCH_tcp_ring.json report.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"
#include "harness/tcp_cluster.h"

namespace {

using namespace fsr;

struct TcpResult {
  double mbps = 0;
  double msgs_per_sec = 0;
  bool ok = false;
  TransportCounters counters;      // summed over all nodes
  EngineCounters engine_counters;  // summed over all nodes
};

TcpResult run_tcp(std::size_t n, std::size_t msg_size, int msgs_per_sender) {
  GroupConfig group;
  group.engine.t = 1;
  group.engine.segment_size = 16 * 1024;
  group.engine.window = 64;
  // Loopback TCP is far faster than the engine's one-payload-per-frame
  // pacing assumes; packing and a short ack hold-back amortize per-frame
  // overhead and convert ack-only frames into piggybacks (DESIGN.md §9).
  group.engine.max_payloads_per_frame = 8;
  group.engine.ack_flush_delay = 50 * kMicrosecond;
  TcpCluster cluster(n, group);

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < msgs_per_sender; ++i) {
    for (std::size_t s = 0; s < n; ++s) {
      cluster.broadcast(static_cast<NodeId>(s),
                        test_payload(static_cast<NodeId>(s),
                                     static_cast<std::uint64_t>(i + 1), msg_size));
    }
  }
  std::size_t total = n * static_cast<std::size_t>(msgs_per_sender);
  TcpResult r;
  r.ok = cluster.wait_deliveries(total, 60 * kSecond);
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  if (r.ok && secs > 0) {
    r.mbps = static_cast<double>(total) * static_cast<double>(msg_size) * 8.0 / secs / 1e6;
    r.msgs_per_sec = static_cast<double>(total) / secs;
  }
  r.counters = cluster.counters();
  r.engine_counters = cluster.engine_counters();
  return r;
}

void BM_TcpRing(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto size = static_cast<std::size_t>(state.range(1));
  TcpResult r;
  for (auto _ : state) r = run_tcp(n, size, 50);
  state.counters["Mbps"] = r.mbps;
  state.counters["msgs_per_s"] = r.msgs_per_sec;
  state.counters["ok"] = r.ok ? 1 : 0;
}
BENCHMARK(BM_TcpRing)
    ->ArgsProduct({{2, 3, 4}, {1024, 4096, 65536}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::JsonReport report("tcp_ring");
  report.config("segment_size", std::uint64_t{16 * 1024})
      .config("window", std::uint64_t{64});

  fsr::bench::print_header(
      "FSR over real localhost TCP (host-dependent; protocol smoke + cost)",
      {"nodes", "msg size", "Mb/s", "msgs/s", "sys/frame", "max batch",
       "pooled%"});
  for (std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    for (std::size_t size :
         {std::size_t{1024}, std::size_t{4096}, std::size_t{65536}}) {
      // 1 KiB messages get a longer stream: per-message (not per-byte) costs
      // dominate there and short bursts are all ramp-up.
      int msgs = size <= 1024 ? 500 : 50;
      TcpResult r = run_tcp(n, size, msgs);
      double sys_per_frame =
          r.counters.tx_frames > 0
              ? static_cast<double>(r.counters.tx_syscalls) /
                    static_cast<double>(r.counters.tx_frames)
              : 0;
      std::uint64_t acquisitions =
          r.engine_counters.records_pooled + r.engine_counters.records_allocated;
      double pooled_pct =
          acquisitions > 0
              ? 100.0 * static_cast<double>(r.engine_counters.records_pooled) /
                    static_cast<double>(acquisitions)
              : 100.0;
      fsr::bench::print_row({std::to_string(n), std::to_string(size),
                             r.ok ? fsr::bench::fmt(r.mbps, 1) : "TIMEOUT",
                             r.ok ? fsr::bench::fmt(r.msgs_per_sec, 0) : "-",
                             fsr::bench::fmt(sys_per_frame, 3),
                             std::to_string(r.counters.tx_max_batch),
                             fsr::bench::fmt(pooled_pct, 1)});
      auto& row = report.add_row();
      row.num("nodes", static_cast<std::uint64_t>(n))
          .num("msg_size", static_cast<std::uint64_t>(size))
          .num("msgs_per_sender", static_cast<std::uint64_t>(msgs))
          .num("goodput_mbps", r.mbps)
          .num("msgs_per_sec", r.msgs_per_sec)
          .num("ok", std::uint64_t{r.ok ? 1u : 0u});
      fsr::bench::add_counters(row, r.counters);
      fsr::bench::add_engine_counters(row, r.engine_counters);
    }
  }
  report.write();
  return 0;
}
