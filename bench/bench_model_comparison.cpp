// Figures 1-3 + §2/§4.3.2: throughput of all five TO-broadcast protocol
// classes of the paper's taxonomy in its round-based model (§3), across the
// traffic patterns the paper discusses. One row per (protocol, pattern):
// completed TO-broadcasts per round in steady state.
//
// Expected shape (paper §2):
//   fixed sequencer : ~1/n for 1-to-n (receive bottleneck: data + n-1 ack
//                     streams), ~1 only for n-to-n (acks piggybacked);
//   moving sequencer: capped at n/(2n-1) ~ 1/2 (each delivery costs two
//                     receives: data broadcast + seq/token broadcast);
//   privilege (token): hold_max trades throughput against fairness; the
//                     fair setting wastes token-rotation rounds in k-to-n;
//   comm. history   : quadratic clock/heartbeat traffic saturates the
//                     receive slots (~1/(n-1));
//   dest. agreement : per-message agreement costs proposal + acks +
//                     decision (coordinator receive-bound);
//   FSR             : >= 1 for every pattern, independent of n, t, k.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "roundmodel/comm_history_round.h"
#include "roundmodel/dest_agreement_round.h"
#include "roundmodel/fixed_seq_round.h"
#include "roundmodel/fsr_round.h"
#include "roundmodel/moving_seq_round.h"
#include "roundmodel/privilege_round.h"

namespace {

using namespace fsr;
using namespace fsr::rounds;

enum class Proto { kFsr, kFixed, kMoving, kPrivilege, kCommHistory, kDestAgreement };

std::unique_ptr<Protocol> make_proto(Proto p, int n) {
  switch (p) {
    case Proto::kFsr: return std::make_unique<FsrRound>(n, 1);
    case Proto::kFixed: return std::make_unique<FixedSeqRound>(n);
    case Proto::kMoving: return std::make_unique<MovingSeqRound>(n, 8);
    case Proto::kPrivilege: return std::make_unique<PrivilegeRound>(n, 1);
    case Proto::kCommHistory: return std::make_unique<CommHistoryRound>(n, 8);
    case Proto::kDestAgreement: return std::make_unique<DestAgreementRound>(n);
  }
  return nullptr;
}

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kFsr: return "FSR";
    case Proto::kFixed: return "fixed-seq";
    case Proto::kMoving: return "moving-seq";
    case Proto::kPrivilege: return "privilege";
    case Proto::kCommHistory: return "comm-history";
    case Proto::kDestAgreement: return "dest-agreement";
  }
  return "?";
}

std::vector<int> pattern_senders(const std::string& pattern, int n) {
  if (pattern == "1-to-n") return {1};
  if (pattern == "2-to-n") return {1, 1 + n / 2};  // opposite sides
  std::vector<int> all;
  for (int i = 0; i < n; ++i) all.push_back(i);
  return all;
}

double throughput(Proto p, const std::string& pattern, int n) {
  auto proto = make_proto(p, n);
  RoundEngine engine({n, pattern_senders(pattern, n), -1}, *proto);
  const long long warmup = 1000, window = 4000;
  engine.run(warmup + window);
  if (!engine.check_total_order().empty()) return -1;
  return static_cast<double>(engine.completed_between(warmup, warmup + window)) /
         static_cast<double>(window);
}

void BM_ModelComparison(benchmark::State& state) {
  auto p = static_cast<Proto>(state.range(0));
  int n = static_cast<int>(state.range(1));
  double one = 0, two = 0, all = 0;
  for (auto _ : state) {
    one = throughput(p, "1-to-n", n);
    two = throughput(p, "2-to-n", n);
    all = throughput(p, "n-to-n", n);
  }
  state.SetLabel(proto_name(p));
  state.counters["1-to-n"] = one;
  state.counters["2-to-n"] = two;
  state.counters["n-to-n"] = all;
}
BENCHMARK(BM_ModelComparison)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {5, 10}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::JsonReport report("model_comparison");
  for (int n : {5, 10}) {
    fsr::bench::print_header(
        "Round-model throughput, n = " + std::to_string(n) +
            " (completed TO-broadcasts per round; FSR claim: >= 1 everywhere)",
        {"protocol", "1-to-n", "2-to-n", "n-to-n"});
    for (Proto p : {Proto::kFsr, Proto::kFixed, Proto::kMoving, Proto::kPrivilege,
                    Proto::kCommHistory, Proto::kDestAgreement}) {
      fsr::bench::print_row({proto_name(p), fsr::bench::fmt(throughput(p, "1-to-n", n), 3),
                             fsr::bench::fmt(throughput(p, "2-to-n", n), 3),
                             fsr::bench::fmt(throughput(p, "n-to-n", n), 3)});
      report.add_row()
          .num("processes", static_cast<std::uint64_t>(n))
          .str("protocol", proto_name(p))
          .num("throughput_1_to_n", throughput(p, "1-to-n", n))
          .num("throughput_2_to_n", throughput(p, "2-to-n", n))
          .num("throughput_n_to_n", throughput(p, "n-to-n", n));
    }
  }
  report.write();
  return 0;
}
