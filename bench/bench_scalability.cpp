// Beyond the paper's n <= 10: the paper argues FSR "should also be
// efficient in arbitrarily large clusters" even though it is optimized for
// small ones (§1). This bench extends Figure 8 (throughput, n-to-n) and
// Figure 6 (contention-free latency) to rings of up to 30 processes:
// throughput should stay at the plateau (every message still crosses each
// node's CPU exactly once) while latency keeps growing linearly.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stats.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

WorkloadResult throughput_point(std::size_t n) {
  WorkloadSpec spec;
  spec.cluster = paper_cluster(n);
  spec.n = n;
  spec.senders = n;
  spec.messages_per_sender = static_cast<int>(600 / n) + 10;
  spec.message_size = 100 * 1024;
  return run_workload(spec);
}

double latency_point(std::size_t n) {
  Accumulator acc;
  // Sample a few sender positions (full sweep is O(n^2) runs).
  for (std::size_t sender : {std::size_t{2}, n / 2, n - 1}) {
    SimCluster c(paper_cluster(n));
    c.broadcast(static_cast<NodeId>(sender),
                test_payload(static_cast<NodeId>(sender), 1, 100 * 1024));
    c.sim().run();
    Time done = c.completion_time(static_cast<NodeId>(sender), 1);
    if (done >= 0) acc.add(static_cast<double>(done) / 1e6);
  }
  return acc.mean();
}

void BM_Scalability(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  WorkloadResult r;
  double lat = 0;
  for (auto _ : state) {
    r = throughput_point(n);
    lat = latency_point(n);
  }
  state.counters["Mbps"] = r.goodput_mbps;
  state.counters["latency_ms"] = lat;
}
BENCHMARK(BM_Scalability)->Arg(5)->Arg(10)->Arg(15)->Arg(20)->Arg(30)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::print_header(
      "Scalability beyond the paper's range (n-to-n, 100 KB; expectation: "
      "flat throughput, linear latency)",
      {"processes", "Mb/s", "fairness", "latency (ms)"});
  fsr::bench::JsonReport report("scalability");
  report.config("message_size", std::uint64_t{100 * 1024});
  for (std::size_t n : {std::size_t{5}, std::size_t{10}, std::size_t{15},
                        std::size_t{20}, std::size_t{30}}) {
    WorkloadResult r = throughput_point(n);
    double lat = latency_point(n);
    fsr::bench::print_row({std::to_string(n), fsr::bench::fmt(r.goodput_mbps, 1),
                           fsr::bench::fmt(r.fairness, 3), fsr::bench::fmt(lat, 1)});
    report.add_row()
        .num("processes", static_cast<std::uint64_t>(n))
        .num("goodput_mbps", r.goodput_mbps)
        .num("fairness", r.fairness)
        .num("latency_ms", lat);
  }
  report.write();
  return 0;
}
