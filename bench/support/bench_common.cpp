#include "bench_common.h"

#include <algorithm>
#include <map>

#include "common/stats.h"

namespace fsr::bench {

ClusterConfig paper_cluster(std::size_t n) {
  ClusterConfig cfg;
  cfg.n = n;
  // NetConfig defaults model the paper's testbed: 100 Mb/s switched
  // Ethernet, middleware-grade per-byte processing cost. A little CPU
  // jitter (real machines always have some) prevents the deterministic
  // lock-step phasing artifacts a synchronous ring otherwise exhibits.
  cfg.net.cpu_jitter = 0.05;
  cfg.group.engine.t = 1;
  // The paper broadcasts uniform 100 KB messages; with a 100 KB segment
  // size they travel unsegmented, as on the authors' testbed.
  cfg.group.engine.segment_size = 100 * 1024;
  cfg.group.engine.window = 16;
  return cfg;
}

WorkloadResult run_workload(const WorkloadSpec& spec) {
  ClusterConfig cfg = spec.cluster;
  cfg.n = spec.n;
  SimCluster c(cfg);

  for (std::size_t s = 0; s < spec.senders; ++s) {
    auto sender = static_cast<NodeId>(s);
    for (int i = 0; i < spec.messages_per_sender; ++i) {
      auto app = static_cast<std::uint64_t>(i + 1);
      Bytes payload = test_payload(sender, app, spec.message_size);
      if (spec.rate_per_sender > 0) {
        Time at = static_cast<Time>(static_cast<double>(i) / spec.rate_per_sender * 1e9);
        c.sim().schedule_at(at, [&c, sender, payload = std::move(payload)]() mutable {
          c.broadcast(sender, std::move(payload));
        });
      } else {
        c.broadcast(sender, std::move(payload));
      }
    }
  }
  c.sim().run();

  // Benchmarks are long-running protocol executions; numbers from a run
  // that broke total order or uniformity are meaningless, so fail loudly.
  // check_all() includes everything the checker caught online.
  if (std::string err = c.check_all(); !err.empty()) {
    std::fprintf(stderr, "FATAL: protocol invariant violated during benchmark: %s\n",
                 err.c_str());
    std::abort();
  }

  WorkloadResult r;
  r.lint_report = lint_trace(c.checker().log(0), spec.lint);
  if (!r.lint_report.ok()) {
    std::fprintf(stderr, "FATAL: trace lint failed during benchmark:\n%s\n",
                 r.lint_report.summary().c_str());
    std::abort();
  }
  std::size_t expected =
      spec.senders * static_cast<std::size_t>(spec.messages_per_sender);
  r.completed = true;
  for (std::size_t n = 0; n < spec.n; ++n) {
    if (c.log(static_cast<NodeId>(n)).size() != expected) r.completed = false;
  }

  Time last = 0;
  for (std::size_t n = 0; n < spec.n; ++n) {
    const auto& log = c.log(static_cast<NodeId>(n));
    if (!log.empty()) last = std::max(last, log.back().at);
  }
  r.duration_s = static_cast<double>(last) / 1e9;
  if (r.duration_s <= 0) return r;

  std::uint64_t bytes_at_node0 = 0;
  for (const auto& e : c.log(0)) bytes_at_node0 += e.bytes;
  r.goodput_mbps = static_cast<double>(bytes_at_node0) * 8.0 / r.duration_s / 1e6;

  // Latency: submit -> delivered by every live node.
  Accumulator lat;
  for (std::size_t s = 0; s < spec.senders; ++s) {
    auto sender = static_cast<NodeId>(s);
    for (int i = 0; i < spec.messages_per_sender; ++i) {
      auto app = static_cast<std::uint64_t>(i + 1);
      Time submit = c.submit_time(sender, app);
      Time done = c.completion_time(sender, app);
      if (submit >= 0 && done >= 0) {
        lat.add(static_cast<double>(done - submit) / 1e6);  // ms
      }
    }
  }
  r.mean_latency_ms = lat.mean();

  // Per-sender throughput: the sender's stream size over the time its last
  // message completed (paper §5.1 measures per-sender timers).
  for (std::size_t s = 0; s < spec.senders; ++s) {
    auto sender = static_cast<NodeId>(s);
    Time done = c.completion_time(sender, static_cast<std::uint64_t>(spec.messages_per_sender));
    double secs = done > 0 ? static_cast<double>(done) / 1e9 : r.duration_s;
    double bytes = static_cast<double>(spec.messages_per_sender) *
                   static_cast<double>(spec.message_size);
    r.per_sender_mbps.push_back(bytes * 8.0 / secs / 1e6);
  }

  // Fairness: per-sender delivered counts over the middle half of node 0's
  // log (interleaving share in steady state, excluding ramp-up and drain).
  if (spec.senders > 1) {
    std::map<NodeId, double> counts;
    const auto& log = c.log(0);
    for (std::size_t i = log.size() / 4; i < log.size() * 3 / 4; ++i) {
      counts[log[i].origin] += 1.0;
    }
    std::vector<double> shares;
    for (std::size_t s = 0; s < spec.senders; ++s) {
      shares.push_back(counts[static_cast<NodeId>(s)]);
    }
    r.fairness = jain_fairness(shares);
  }
  return r;
}

void print_header(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& col : cols) std::printf("%16s", col.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "---------------");
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) std::printf("%16s", cell.c_str());
  std::printf("\n");
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace fsr::bench
