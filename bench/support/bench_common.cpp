#include "bench_common.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/stats.h"

namespace fsr::bench {

ClusterConfig paper_cluster(std::size_t n) {
  ClusterConfig cfg;
  cfg.n = n;
  // NetConfig defaults model the paper's testbed: 100 Mb/s switched
  // Ethernet, middleware-grade per-byte processing cost. A little CPU
  // jitter (real machines always have some) prevents the deterministic
  // lock-step phasing artifacts a synchronous ring otherwise exhibits.
  cfg.net.cpu_jitter = 0.05;
  cfg.group.engine.t = 1;
  // The paper broadcasts uniform 100 KB messages; with a 100 KB segment
  // size they travel unsegmented, as on the authors' testbed.
  cfg.group.engine.segment_size = 100 * 1024;
  cfg.group.engine.window = 16;
  return cfg;
}

WorkloadResult run_workload(const WorkloadSpec& spec) {
  ClusterConfig cfg = spec.cluster;
  cfg.n = spec.n;
  SimCluster c(cfg);
  if (spec.prepare) spec.prepare(c);

  for (std::size_t s = 0; s < spec.senders; ++s) {
    auto sender = static_cast<NodeId>(s);
    for (int i = 0; i < spec.messages_per_sender; ++i) {
      auto app = static_cast<std::uint64_t>(i + 1);
      Bytes payload = test_payload(sender, app, spec.message_size);
      if (spec.rate_per_sender > 0) {
        Time at = static_cast<Time>(static_cast<double>(i) / spec.rate_per_sender * 1e9);
        c.sim().schedule_at(at, [&c, sender, payload = std::move(payload)]() mutable {
          c.broadcast(sender, std::move(payload));
        });
      } else {
        c.broadcast(sender, std::move(payload));
      }
    }
  }
  c.sim().run();

  // Benchmarks are long-running protocol executions; numbers from a run
  // that broke total order or uniformity are meaningless, so fail loudly.
  // check_all() includes everything the checker caught online.
  if (std::string err = c.check_all(); !err.empty()) {
    std::fprintf(stderr, "FATAL: protocol invariant violated during benchmark: %s\n",
                 err.c_str());
    std::abort();
  }

  WorkloadResult r;
  r.lint_report = lint_trace(c.checker().log(0), spec.lint);
  if (!r.lint_report.ok()) {
    std::fprintf(stderr, "FATAL: trace lint failed during benchmark:\n%s\n",
                 r.lint_report.summary().c_str());
    std::abort();
  }
  std::size_t expected =
      spec.senders * static_cast<std::size_t>(spec.messages_per_sender);
  r.completed = true;
  for (std::size_t n = 0; n < spec.n; ++n) {
    if (c.log(static_cast<NodeId>(n)).size() != expected) r.completed = false;
  }

  Time last = 0;
  for (std::size_t n = 0; n < spec.n; ++n) {
    const auto& log = c.log(static_cast<NodeId>(n));
    if (!log.empty()) last = std::max(last, log.back().at);
  }
  r.duration_s = static_cast<double>(last) / 1e9;
  if (r.duration_s <= 0) return r;

  std::uint64_t bytes_at_node0 = 0;
  for (const auto& e : c.log(0)) bytes_at_node0 += e.bytes;
  r.goodput_mbps = static_cast<double>(bytes_at_node0) * 8.0 / r.duration_s / 1e6;

  // Latency: submit -> delivered by every live node.
  Accumulator lat;
  for (std::size_t s = 0; s < spec.senders; ++s) {
    auto sender = static_cast<NodeId>(s);
    for (int i = 0; i < spec.messages_per_sender; ++i) {
      auto app = static_cast<std::uint64_t>(i + 1);
      Time submit = c.submit_time(sender, app);
      Time done = c.completion_time(sender, app);
      if (submit >= 0 && done >= 0) {
        lat.add(static_cast<double>(done - submit) / 1e6);  // ms
      }
    }
  }
  r.mean_latency_ms = lat.mean();

  // Per-sender throughput: the sender's stream size over the time its last
  // message completed (paper §5.1 measures per-sender timers).
  for (std::size_t s = 0; s < spec.senders; ++s) {
    auto sender = static_cast<NodeId>(s);
    Time done = c.completion_time(sender, static_cast<std::uint64_t>(spec.messages_per_sender));
    double secs = done > 0 ? static_cast<double>(done) / 1e9 : r.duration_s;
    double bytes = static_cast<double>(spec.messages_per_sender) *
                   static_cast<double>(spec.message_size);
    r.per_sender_mbps.push_back(bytes * 8.0 / secs / 1e6);
  }

  // Fairness: per-sender delivered counts over the middle half of node 0's
  // log (interleaving share in steady state, excluding ramp-up and drain).
  if (spec.senders > 1) {
    std::map<NodeId, double> counts;
    const auto& log = c.log(0);
    for (std::size_t i = log.size() / 4; i < log.size() * 3 / 4; ++i) {
      counts[log[i].origin] += 1.0;
    }
    std::vector<double> shares;
    for (std::size_t s = 0; s < spec.senders; ++s) {
      shares.push_back(counts[static_cast<NodeId>(s)]);
    }
    r.fairness = jain_fairness(shares);
  }
  return r;
}

void print_header(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& col : cols) std::printf("%16s", col.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "---------------");
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) std::printf("%16s", cell.c_str());
  std::printf("\n");
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// --- machine-readable reports ---

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  // JSON has no NaN/Inf; represent them as null so parsers don't choke.
  if (std::isnan(v) || std::isinf(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_object(std::string& out,
                   const std::vector<std::pair<std::string, std::string>>& fields) {
  out += '{';
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(fields[i].first);
    out += "\":";
    out += fields[i].second;
  }
  out += '}';
}

}  // namespace

JsonReport::Row& JsonReport::Row::num(const std::string& key, double v) {
  fields_.emplace_back(key, json_number(v));
  return *this;
}

JsonReport::Row& JsonReport::Row::num(const std::string& key, std::uint64_t v) {
  fields_.emplace_back(key, std::to_string(v));
  return *this;
}

JsonReport::Row& JsonReport::Row::str(const std::string& key, const std::string& v) {
  fields_.emplace_back(key, "\"" + json_escape(v) + "\"");
  return *this;
}

JsonReport& JsonReport::config(const std::string& key, double v) {
  config_.emplace_back(key, json_number(v));
  return *this;
}

JsonReport& JsonReport::config(const std::string& key, std::uint64_t v) {
  config_.emplace_back(key, std::to_string(v));
  return *this;
}

JsonReport& JsonReport::config(const std::string& key, const std::string& v) {
  config_.emplace_back(key, "\"" + json_escape(v) + "\"");
  return *this;
}

JsonReport::Row& JsonReport::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string JsonReport::write() const {
  std::string out = "{\"schema\":1,\"bench\":\"" + json_escape(name_) + "\",\"config\":";
  append_object(out, config_);
  out += ",\"results\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ',';
    append_object(out, rows_[i].fields_);
  }
  out += "]}\n";

  std::string dir = ".";
  if (const char* env = std::getenv("FSR_BENCH_JSON_DIR")) dir = env;
  std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return "";
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return path;
}

void add_counters(JsonReport::Row& row, const TransportCounters& c) {
  row.num("tx_syscalls", c.tx_syscalls)
      .num("rx_syscalls", c.rx_syscalls)
      .num("tx_bytes", c.tx_bytes)
      .num("rx_bytes", c.rx_bytes)
      .num("tx_frames", c.tx_frames)
      .num("rx_frames", c.rx_frames)
      .num("tx_chunks", c.tx_chunks)
      .num("tx_max_batch", c.tx_max_batch)
      .num("tx_payload_refs", c.tx_payload_refs)
      .num("tx_payload_copies", c.tx_payload_copies)
      .num("rx_payload_aliases", c.rx_payload_aliases)
      .num("rx_payload_copies", c.rx_payload_copies)
      .num("rx_compactions", c.rx_compactions)
      .num("rx_compaction_bytes", c.rx_compaction_bytes);
}

void add_engine_counters(JsonReport::Row& row, const EngineCounters& c) {
  row.num("eng_records_pooled", c.records_pooled)
      .num("eng_records_allocated", c.records_allocated)
      .num("eng_window_grows", c.window_grows)
      .num("eng_out_of_window", c.out_of_window)
      .num("eng_piggyback_hits", c.piggyback_hits)
      .num("eng_piggyback_misses", c.piggyback_misses)
      .num("eng_gc_coalesced", c.gc_coalesced)
      .num("eng_segmentation_copies", c.segmentation_copies)
      .num("eng_reassembly_copies", c.reassembly_copies)
      .num("eng_reassembly_bytes", c.reassembly_bytes);
}

void add_gateway_counters(JsonReport::Row& row, const GatewayCounters& c) {
  row.num("gw_requests", c.requests)
      .num("gw_reads", c.reads)
      .num("gw_admitted", c.admitted)
      .num("gw_queued", c.queued)
      .num("gw_duplicate_hits", c.duplicate_hits)
      .num("gw_duplicate_applies_suppressed", c.duplicate_applies_suppressed)
      .num("gw_rejected_window", c.rejected_window)
      .num("gw_rejected_bytes", c.rejected_bytes)
      .num("gw_rejected_malformed", c.rejected_malformed)
      .num("gw_envelope_gaps", c.envelope_gaps)
      .num("gw_commands_applied", c.commands_applied)
      .num("gw_replies_sent", c.replies_sent)
      .num("gw_reply_cache_evictions", c.reply_cache_evictions)
      .num("gw_admitted_bytes_total", c.admitted_bytes_total)
      .num("gw_coalesced_envelopes", c.coalesced_envelopes)
      .num("gw_coalesce_flushes", c.coalesce_flushes)
      .num("gw_reads_local", c.reads_local)
      .num("gw_reads_ordered", c.reads_ordered)
      .num("gw_lease_grants_sent", c.lease_grants_sent)
      .num("gw_lease_grants_applied", c.lease_grants_applied)
      .num("gw_orphaned_reply_drops", c.orphaned_reply_drops);
}

}  // namespace fsr::bench
