// Shared benchmark support: the paper's §5.1 measurement methodology on the
// simulated cluster (barrier start, per-sender streams, throughput measured
// at each receiver), plus table/figure printing helpers.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "checker/trace_lint.h"
#include "gateway/gateway.h"
#include "harness/sim_cluster.h"

namespace fsr::bench {

/// k-to-n saturation experiment per §5.1: the first `senders` nodes each
/// TO-broadcast `messages_per_sender` messages of `message_size` bytes,
/// starting simultaneously (barrier); completion is when every node
/// delivered everything.
struct WorkloadResult {
  double duration_s = 0;             // virtual time, barrier to last delivery
  double goodput_mbps = 0;           // app payload TO-delivered per process
  double mean_latency_ms = 0;        // submit -> last process delivered
  std::vector<double> per_sender_mbps;
  double fairness = 1.0;             // Jain index over per-sender deliveries
  bool completed = false;
  LintReport lint_report;            // trace lint of node 0's delivery order
};

struct WorkloadSpec {
  std::size_t n = 5;
  std::size_t senders = 5;
  int messages_per_sender = 40;
  std::size_t message_size = 100 * 1024;
  ClusterConfig cluster;  // n is overwritten from this spec

  /// If > 0, throttle each sender to this many broadcasts per second
  /// (Fig. 7's rate sweep). 0 = saturation (send next when window frees).
  double rate_per_sender = 0;

  /// Trace-lint bounds applied to node 0's delivery order after the run
  /// (fairness windows). Any violation aborts the benchmark loudly, like a
  /// safety-invariant violation does.
  LintConfig lint;

  /// Called once on the freshly built cluster, before any traffic: install
  /// heterogeneous NetProfiles (slow NICs, lossy links) that NetConfig's
  /// uniform knobs cannot express.
  std::function<void(SimCluster&)> prepare;
};

WorkloadResult run_workload(const WorkloadSpec& spec);

/// Paper-default cluster config for the figure benches (100 Mb/s switched
/// Ethernet, middleware-grade CPU costs, 100 KB messages segmented).
ClusterConfig paper_cluster(std::size_t n);

// --- printing ---

void print_header(const std::string& title, const std::vector<std::string>& cols);
void print_row(const std::vector<std::string>& cells);
std::string fmt(double v, int decimals = 1);

// --- machine-readable reports ---

/// Collects a benchmark's configuration and result rows and writes them as
/// BENCH_<name>.json (schema v1, documented in EXPERIMENTS.md) into
/// $FSR_BENCH_JSON_DIR, or the working directory when unset. Keys keep
/// insertion order; values are numbers or strings.
class JsonReport {
 public:
  class Row {
   public:
    Row& num(const std::string& key, double v);
    Row& num(const std::string& key, std::uint64_t v);
    Row& str(const std::string& key, const std::string& v);

   private:
    friend class JsonReport;
    // Pre-rendered JSON value per key (numbers rendered on insert).
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  JsonReport& config(const std::string& key, double v);
  JsonReport& config(const std::string& key, std::uint64_t v);
  JsonReport& config(const std::string& key, const std::string& v);

  Row& add_row();

  /// Serialize and write BENCH_<name>.json; returns the path written to, or
  /// "" on I/O failure (reported on stderr, never fatal — a benchmark that
  /// ran to completion should not fail on a read-only directory).
  std::string write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Row> rows_;
};

/// Attach a transport-counter snapshot to a report row with a key prefix
/// (e.g. "tx_syscalls", ...). Only the counters meaningful for the backend
/// need be non-zero.
void add_counters(JsonReport::Row& row, const TransportCounters& c);

/// Attach an engine-counter snapshot (window pooling, piggybacking, payload
/// copy discipline) to a report row, keys prefixed "eng_".
void add_engine_counters(JsonReport::Row& row, const EngineCounters& c);

/// Attach a gateway-counter snapshot (sessions, dedupe, admission control)
/// to a report row, keys prefixed "gw_".
void add_gateway_counters(JsonReport::Row& row, const GatewayCounters& c);

}  // namespace fsr::bench
