// Sharded gateway benchmark: the same closed-loop clients as bench_gateway,
// but the replicated KV service runs S independent ordering domains
// (shards) per node behind one ShardRouter — S FSR rings over the shared
// transport, keyspace partitioned by consistent hashing, per-(session,
// shard) exactly-once state replicated through each shard's own TO-stream.
//
// The sweep holds the TOTAL client population fixed and varies S (1/2/4):
// with one ring, ordering throughput is bounded by one sequencer's send
// budget; with S rings the sequencer role for shard g lands on node g%n, so
// the ordering work (and the per-ring ack/batch bookkeeping) spreads across
// the cluster. S=1 runs strict session mode and is directly comparable to
// the 256-client coalesced row of BENCH_gateway.json.
//
// Each sweep point emits one `all_groups` aggregate row (driver throughput
// plus summed gateway/engine counters) and one row per shard carrying that
// shard's slice of the counters — the per-group rollup the regression
// checker tracks so a shard silently going idle is schema drift, not noise.
//
// Host-dependent like bench_gateway: loopback numbers measure implementation
// cost, not protocol ceilings.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gateway/client_driver.h"
#include "gateway/sim_gateway.h"
#include "gateway/tcp_gateway.h"
#include "net/cluster_net.h"

namespace {

using namespace fsr;

constexpr std::size_t kNodes = 3;
constexpr std::size_t kValueBytes = 64;

struct ShardedBenchParams {
  GroupId shards = 1;
  std::size_t clients = 256;
  std::size_t requests_per_client = 100;
  std::size_t connections = 8;
  std::size_t pipeline = 8;
};

struct ShardedBenchResult {
  DriverReport report;
  GatewayCounters gateway_total;
  std::vector<GatewayCounters> gateway_per_shard;
  EngineCounters engine_total;
  std::vector<EngineCounters> engine_per_shard;
  TransportCounters transport;
};

ShardedBenchResult run_sharded_bench(const ShardedBenchParams& p) {
  TcpGatewayClusterConfig cfg;
  cfg.n = kNodes;
  cfg.shards = p.shards;
  cfg.group.engine.t = 1;
  // Same loopback tuning as bench_gateway so S=1 is an apples-to-apples
  // baseline row.
  cfg.group.engine.max_payloads_per_frame = 8;
  cfg.group.engine.ack_flush_delay = 50 * kMicrosecond;
  TcpGatewayCluster gc(cfg);

  DriverOptions opt;
  opt.endpoints = gc.endpoints();
  opt.clients = p.clients;
  opt.requests_per_client = p.requests_per_client;
  opt.value_bytes = kValueBytes;
  opt.connections = p.connections;
  opt.pipeline = p.pipeline;

  ShardedBenchResult r;
  r.report = run_client_driver(opt);
  r.gateway_total = gc.gateway_counters();
  r.engine_total = gc.cluster().engine_counters();
  r.transport = gc.cluster().counters();
  for (GroupId g = 0; g < p.shards; ++g) {
    r.gateway_per_shard.push_back(gc.gateway_counters(g));
    r.engine_per_shard.push_back(gc.cluster().engine_counters(g));
  }
  return r;
}

// --- NIC-tier deployment rows (simulated time) ---------------------------
//
// The loopback TCP rows above measure in-process router cost on whatever
// host runs the bench: on a small machine, S co-located rings share the
// same cores and NICs, so sharding shows overhead, not scale-out. The
// deployment the multi-ring literature (HT-Paxos, Ring Paxos) scales with
// is S rings on *disjoint* machine groups, where the binding resource — the
// sequencer ring's NIC — multiplies with S. These rows model exactly that:
// each shard is its own 3-node ring under the paper's 100 Mb/s NIC tier,
// the fixed client population is split evenly across shards (keys are
// shard-local by construction, as the consistent-hash router guarantees),
// and throughput is measured in SIMULATED time — deterministic, so the S=4
// >= 2x S=1 scaling relation is a CI-gateable property, not runner noise.
//
// Values are large (8 KB) so a single ring is honestly bandwidth-bound at
// this population: S=1 saturates its ring's links and adding shards is the
// only way past that ceiling — the single-ring ceiling the tentpole names.
constexpr std::size_t kNicValueBytes = 8 * 1024;
constexpr double kNicBps = 100e6;

struct NicShardStats {
  double requests_per_sec = 0;  ///< this ring, simulated time
  double elapsed_s = 0;
  std::uint64_t requests = 0;
  GatewayCounters gateway;
  EngineCounters engine;
};

struct NicBenchResult {
  double aggregate_rps = 0;
  std::vector<NicShardStats> per_shard;
};

NicBenchResult run_nic_bench(GroupId shards, std::size_t total_clients,
                             std::size_t requests_per_client) {
  NicBenchResult out;
  const std::size_t per_shard_clients = total_clients / shards;
  const std::string value(kNicValueBytes, 'v');
  for (GroupId g = 0; g < shards; ++g) {
    SimGatewayConfig cfg;
    cfg.cluster.n = kNodes;
    cfg.cluster.net = NetConfig::tier(kNicBps);
    SimGatewayCluster gc(cfg);

    std::vector<std::unique_ptr<SimClient>> clients;
    for (std::size_t c = 0; c < per_shard_clients; ++c) {
      SimClient::Options opt;
      opt.client_id = 1000 + c;
      opt.replica = static_cast<NodeId>(c % kNodes);
      opt.retry_timeout = 2 * kSecond;  // saturated ring: latency is queueing
      clients.push_back(std::make_unique<SimClient>(gc, opt));
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        clients.back()->submit(KvStore::encode_put(
            "s" + std::to_string(c) + ":k" + std::to_string(i % 16), value));
      }
    }
    gc.sim().run();

    NicShardStats s;
    for (auto& cl : clients) s.requests += cl->completed().size();
    s.elapsed_s = static_cast<double>(gc.sim().now()) / kSecond;
    s.requests_per_sec = s.elapsed_s > 0 ? s.requests / s.elapsed_s : 0;
    s.gateway = gc.gateway_counters();
    s.engine = gc.cluster().engine_counters();
    out.per_shard.push_back(s);
    out.aggregate_rps += s.requests_per_sec;
  }
  return out;
}

void BM_GatewaySharded(benchmark::State& state) {
  ShardedBenchParams p;
  p.shards = static_cast<GroupId>(state.range(0));
  ShardedBenchResult r;
  for (auto _ : state) r = run_sharded_bench(p);
  state.counters["req_per_s"] = r.report.requests_per_sec;
  state.counters["p50_ms"] = r.report.p50_ms;
  state.counters["p99_ms"] = r.report.p99_ms;
  state.counters["failures"] = static_cast<double>(r.report.failures);
}
BENCHMARK(BM_GatewaySharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::JsonReport report("gateway_sharded");
  report.config("nodes", std::uint64_t{kNodes})
      .config("value_bytes", std::uint64_t{kValueBytes})
      .config("nic_value_bytes", std::uint64_t{kNicValueBytes})
      .config("nic_bandwidth_bps", kNicBps)
      .config("workload",
              "closed-loop PUT, total client population held fixed per "
              "column; variant=tcp: in-process sharded cluster over "
              "loopback (pipelined sessions, 8 connections, host-"
              "dependent); variant=nic100M: one 3-node ring per shard "
              "under the 100 Mb/s NIC tier, 8 KB values, simulated time "
              "(deterministic)");

  // Identity for the regression checker is (shards, clients,
  // requests_per_client, group); the S=1 256-client row doubles as the
  // continuity anchor against BENCH_gateway.json's coalesced 256 row.
  const ShardedBenchParams rows[] = {
      {.shards = 1, .clients = 64, .requests_per_client = 200},
      {.shards = 2, .clients = 64, .requests_per_client = 200},
      {.shards = 4, .clients = 64, .requests_per_client = 200},
      {.shards = 1, .clients = 256, .requests_per_client = 100},
      {.shards = 2, .clients = 256, .requests_per_client = 100},
      {.shards = 4, .clients = 256, .requests_per_client = 100},
  };

  fsr::bench::print_header(
      "Sharded gateway over real TCP (S ordering domains, fixed client "
      "population; host-dependent)",
      {"shards", "clients", "requests", "req/s", "p50 ms", "p99 ms",
       "p999 ms", "rejects"});
  for (const ShardedBenchParams& p : rows) {
    ShardedBenchResult r = run_sharded_bench(p);
    std::uint64_t rejects =
        r.gateway_total.rejected_window + r.gateway_total.rejected_bytes;
    fsr::bench::print_row(
        {std::to_string(p.shards), std::to_string(p.clients),
         std::to_string(r.report.requests),
         fsr::bench::fmt(r.report.requests_per_sec, 0),
         fsr::bench::fmt(r.report.p50_ms, 3),
         fsr::bench::fmt(r.report.p99_ms, 3),
         fsr::bench::fmt(r.report.p999_ms, 3), std::to_string(rejects)});

    // Aggregate row: driver-visible throughput + summed counters.
    auto& agg = report.add_row();
    agg.num("shards", static_cast<std::uint64_t>(p.shards))
        .num("clients", static_cast<std::uint64_t>(p.clients))
        .num("requests_per_client",
             static_cast<std::uint64_t>(p.requests_per_client))
        .str("variant", "tcp")
        .str("group", "all_groups")
        .num("connections", static_cast<std::uint64_t>(p.connections))
        .num("pipeline", static_cast<std::uint64_t>(p.pipeline))
        .num("requests", r.report.requests)
        .num("failures", r.report.failures)
        .num("requests_per_sec", r.report.requests_per_sec)
        .num("p50_ms", r.report.p50_ms)
        .num("p99_ms", r.report.p99_ms)
        .num("p999_ms", r.report.p999_ms)
        .num("mean_ms", r.report.mean_ms)
        .num("max_ms", r.report.max_ms)
        .num("duplicate_replies", r.report.duplicates)
        .num("client_reconnects", r.report.reconnects);
    fsr::bench::add_gateway_counters(agg, r.gateway_total);
    fsr::bench::add_engine_counters(agg, r.engine_total);
    fsr::bench::add_counters(agg, r.transport);

    // Per-shard rollup rows: each shard's slice of the same counters, so
    // load spread across ordering domains is visible (and regression-
    // checked) shard by shard.
    for (GroupId g = 0; g < p.shards; ++g) {
      auto& row = report.add_row();
      row.num("shards", static_cast<std::uint64_t>(p.shards))
          .num("clients", static_cast<std::uint64_t>(p.clients))
          .num("requests_per_client",
               static_cast<std::uint64_t>(p.requests_per_client))
          .str("variant", "tcp")
          .str("group", std::to_string(g));
      fsr::bench::add_gateway_counters(row, r.gateway_per_shard[g]);
      fsr::bench::add_engine_counters(row, r.engine_per_shard[g]);
    }
  }

  // NIC-tier deployment sweep (simulated time, deterministic): same total
  // client population, S rings on disjoint machine groups. The aggregate
  // rows are the headline — S=1 is the single-ring ceiling, S=4 must clear
  // 2x it (gated in CI; the sim makes the relation reproducible).
  const std::size_t kNicClients = 64;
  const std::size_t kNicRequests = 20;
  fsr::bench::print_header(
      "Sharded deployment, 100 Mb/s NIC tier, 8 KB values (simulated time; "
      "deterministic)",
      {"shards", "clients", "requests", "agg req/s", "per-ring req/s",
       "ring sat s"});
  for (GroupId shards : {GroupId{1}, GroupId{2}, GroupId{4}}) {
    NicBenchResult r = run_nic_bench(shards, kNicClients, kNicRequests);
    std::uint64_t total_requests = 0;
    for (const auto& s : r.per_shard) total_requests += s.requests;
    fsr::bench::print_row(
        {std::to_string(shards), std::to_string(kNicClients),
         std::to_string(total_requests), fsr::bench::fmt(r.aggregate_rps, 0),
         fsr::bench::fmt(r.per_shard[0].requests_per_sec, 0),
         fsr::bench::fmt(r.per_shard[0].elapsed_s, 2)});

    auto& agg = report.add_row();
    agg.num("shards", static_cast<std::uint64_t>(shards))
        .num("clients", static_cast<std::uint64_t>(kNicClients))
        .num("requests_per_client", static_cast<std::uint64_t>(kNicRequests))
        .str("variant", "nic100M")
        .str("group", "all_groups")
        .num("requests", total_requests)
        .num("requests_per_sec", r.aggregate_rps);
    GatewayCounters gw_total;
    EngineCounters eng_total;
    for (GroupId g = 0; g < shards; ++g) {
      const NicShardStats& s = r.per_shard[g];
      gw_total += s.gateway;
      eng_total += s.engine;
      auto& row = report.add_row();
      row.num("shards", static_cast<std::uint64_t>(shards))
          .num("clients", static_cast<std::uint64_t>(kNicClients))
          .num("requests_per_client", static_cast<std::uint64_t>(kNicRequests))
          .str("variant", "nic100M")
          .str("group", std::to_string(g))
          .num("requests", s.requests)
          .num("requests_per_sec", s.requests_per_sec)
          .num("elapsed_sim_s", s.elapsed_s);
      fsr::bench::add_gateway_counters(row, s.gateway);
      fsr::bench::add_engine_counters(row, s.engine);
    }
    fsr::bench::add_gateway_counters(agg, gw_total);
    fsr::bench::add_engine_counters(agg, eng_total);
  }

  report.write();
  return 0;
}
