// Latency *distribution* under load — an extension of Figure 7: the paper
// reports means; queueing theory says the tail degrades first. Reported:
// p50 / p95 / p99 of per-message completion latency (submit -> delivered by
// every process) at increasing offered load, 5 processes, 100 KB messages.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stats.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

struct Dist {
  double p50 = 0, p95 = 0, p99 = 0;
  double achieved = 0;
};

Dist run_point(double offered_mbps) {
  constexpr std::size_t kN = 5;
  constexpr std::size_t kMsg = 100 * 1024;
  ClusterConfig cfg = paper_cluster(kN);
  SimCluster c(cfg);

  double per_sender_bps = offered_mbps * 1e6 / kN;
  double rate = per_sender_bps / (8.0 * static_cast<double>(kMsg));
  int msgs = std::max(10, static_cast<int>(rate * 5.0));
  for (std::size_t s = 0; s < kN; ++s) {
    for (int i = 0; i < msgs; ++i) {
      auto at = static_cast<Time>(static_cast<double>(i) / rate * 1e9);
      auto sender = static_cast<NodeId>(s);
      auto app = static_cast<std::uint64_t>(i + 1);
      c.sim().schedule_at(at, [&c, sender, app] {
        c.broadcast(sender, test_payload(sender, app, kMsg));
      });
    }
  }
  c.sim().run();

  Samples lat;
  Time last = 0;
  for (std::size_t s = 0; s < kN; ++s) {
    for (int i = 0; i < msgs; ++i) {
      Time submit = c.submit_time(static_cast<NodeId>(s), static_cast<std::uint64_t>(i + 1));
      Time done = c.completion_time(static_cast<NodeId>(s), static_cast<std::uint64_t>(i + 1));
      if (submit >= 0 && done >= submit) {
        lat.add(static_cast<double>(done - submit) / 1e6);
        last = std::max(last, done);
      }
    }
  }
  Dist d;
  d.p50 = lat.percentile(50);
  d.p95 = lat.percentile(95);
  d.p99 = lat.percentile(99);
  if (last > 0) {
    d.achieved = static_cast<double>(kN) * msgs * kMsg * 8.0 /
                 static_cast<double>(last) * 1000.0;
  }
  return d;
}

const double kLoads[] = {20, 40, 60, 75, 85};

void BM_LatencyDistribution(benchmark::State& state) {
  double load = kLoads[state.range(0)];
  Dist d{};
  for (auto _ : state) d = run_point(load);
  state.counters["p50_ms"] = d.p50;
  state.counters["p95_ms"] = d.p95;
  state.counters["p99_ms"] = d.p99;
}
BENCHMARK(BM_LatencyDistribution)->DenseRange(0, 4)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::print_header(
      "Latency distribution vs load (5 procs, 100 KB; extends Fig. 7 with "
      "tail percentiles)",
      {"offered Mb/s", "achieved", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
  fsr::bench::JsonReport report("latency_distribution");
  report.config("processes", std::uint64_t{5}).config("message_size", std::uint64_t{100 * 1024});
  for (double load : kLoads) {
    Dist d = run_point(load);
    fsr::bench::print_row({fsr::bench::fmt(load, 0), fsr::bench::fmt(d.achieved, 1),
                           fsr::bench::fmt(d.p50, 1), fsr::bench::fmt(d.p95, 1),
                           fsr::bench::fmt(d.p99, 1)});
    report.add_row()
        .num("offered_mbps", load)
        .num("achieved_mbps", d.achieved)
        .num("p50_ms", d.p50)
        .num("p95_ms", d.p95)
        .num("p99_ms", d.p99);
  }
  report.write();
  return 0;
}
