// NIC-tier sweep on the Fig. 7 harness: 5-process n-to-n saturation runs of
// 100 KB TO-broadcasts across simulated link tiers (100 Mb/s Fast Ethernet
// up to 25 Gb/s), at two CPU cost points. The paper's testbed is wire-bound
// at 100 Mb/s; with middleware-grade per-byte CPU cost (~100 ns/B) the
// protocol stack itself caps goodput near 80 Mb/s, so the faster NICs
// plateau — that plateau IS the measurement. Kernel-grade CPU cost (~2 ns/B)
// shows how far the ring itself scales once the per-byte tax is gone.
//
// Two heterogeneous rows ride along, exercising NetProfile: one node on a
// 10x slower NIC (the ring throttles to its slowest member), and one ring
// link with 0.1% seeded loss surfacing as retransmit latency.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "net/cluster_net.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

constexpr std::size_t kN = 5;
constexpr std::size_t kMsg = 100 * 1024;

struct Tier {
  const char* name;
  double bps;
  double cpu_ns_per_byte;
};

// >= 3 link tiers (the regression baseline pins every row).
const Tier kTiers[] = {
    {"100M-mw", 100e6, 100.0},  // the paper's testbed
    {"1G-mw", 1e9, 100.0},      // faster wire, same middleware CPU: plateau
    {"10G-mw", 10e9, 100.0},
    {"1G-kernel", 1e9, 2.0},  // kernel-grade CPU path: the wire matters again
    {"10G-kernel", 10e9, 2.0},
    {"25G-kernel", 25e9, 2.0},
};

struct Point {
  double goodput_mbps = 0;
  double latency_ms = 0;
  double duration_s = 0;
};

Point run_tier(const Tier& t, const char* variant) {
  WorkloadSpec spec;
  spec.cluster = paper_cluster(kN);
  spec.cluster.net = NetConfig::tier(t.bps, t.cpu_ns_per_byte);
  spec.cluster.net.cpu_jitter = 0.05;  // keep the figure benches' jitter
  spec.n = kN;
  spec.senders = kN;
  spec.message_size = kMsg;
  spec.messages_per_sender = 30;

  if (std::string(variant) == "slow-node") {
    // Node 1's NIC runs at a tenth of the tier rate: the ring throttles to
    // its slowest member, not the average.
    spec.prepare = [&t](SimCluster& c) {
      NetProfile p;
      p.bandwidth_bps = t.bps / 10.0;
      c.world().net().set_node_profile(1, p);
    };
  } else if (std::string(variant) == "lossy-link") {
    // 0.1% loss on ring link 2->3, surfacing as retransmit latency (the
    // channel stays reliable; goodput pays, correctness does not).
    spec.prepare = [](SimCluster& c) {
      NetProfile p;
      p.loss_rate = 0.001;
      p.retransmit_delay = 200 * kMicrosecond;
      c.world().net().set_link_profile(2, 3, p);
    };
  }

  WorkloadResult r = run_workload(spec);
  return Point{r.goodput_mbps, r.mean_latency_ms, r.duration_s};
}

void BM_NetProfileTier(benchmark::State& state) {
  const Tier& t = kTiers[state.range(0)];
  Point p{};
  for (auto _ : state) p = run_tier(t, "uniform");
  state.counters["goodput_Mbps"] = p.goodput_mbps;
  state.counters["latency_ms"] = p.latency_ms;
}
BENCHMARK(BM_NetProfileTier)
    ->DenseRange(0, static_cast<int>(std::size(kTiers)) - 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  print_header(
      "NetProfile NIC-tier sweep (5 procs, 100 KB, saturation; mw = 100 ns/B "
      "middleware CPU, kernel = 2 ns/B)",
      {"tier", "variant", "goodput Mb/s", "latency (ms)"});
  fsr::bench::JsonReport report("netprofile");
  report.config("processes", std::uint64_t{kN})
      .config("message_size", std::uint64_t{kMsg})
      .config("workload", "n-to-n saturation, 30 msgs/sender");

  auto emit = [&](const Tier& t, const char* variant) {
    Point p = run_tier(t, variant);
    print_row({t.name, variant, fmt(p.goodput_mbps, 1), fmt(p.latency_ms, 2)});
    report.add_row()
        .str("tier", t.name)
        .str("variant", variant)
        .num("bandwidth_bps", t.bps)
        .num("cpu_ns_per_byte", t.cpu_ns_per_byte)
        .num("goodput_mbps", p.goodput_mbps)
        .num("latency_ms", p.latency_ms)
        .num("duration_s", p.duration_s);
  };
  for (const Tier& t : kTiers) emit(t, "uniform");
  // Heterogeneous rows on the mid kernel tier.
  emit(kTiers[3], "slow-node");
  emit(kTiers[3], "lossy-link");
  report.write();
  return 0;
}
