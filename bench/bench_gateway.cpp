// Gateway service benchmark: closed-loop clients driving the replicated KV
// service over real localhost TCP — the end-to-end path a deployment sees:
// client socket -> GatewayServer event loops -> session admission ->
// coalesced TO-broadcast -> delivery/execution on every replica -> batched
// response routing back to the owning connection.
//
// The sweep runs two client modes: the small rows (1, 16) keep the legacy
// one-connection-per-client driver for continuity with earlier baselines,
// while the 64/256/1024-client rows multiplex pipelined sessions over a
// handful of connections — the shape the epoll front-end and request
// coalescing exist for. Ablation rows at 256 clients isolate the two main
// effects: `uncoalesced` turns envelope batching off (everything else
// identical), and `read-heavy` switches the gateway to leased reads with a
// 90% GET mix, where a warm lease answers reads locally without a ring
// trip (gw_reads_ordered stays near zero).
//
// Host-dependent like bench_tcp_ring: loopback is much faster than the
// paper's testbed, so treat absolute numbers as implementation cost, not
// protocol ceilings.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gateway/client_driver.h"
#include "gateway/tcp_gateway.h"

namespace {

using namespace fsr;

constexpr std::size_t kNodes = 3;
constexpr std::size_t kValueBytes = 64;

struct GatewayBenchParams {
  std::size_t clients = 1;
  std::size_t requests_per_client = 200;
  std::size_t connections = 0;  ///< 0 = legacy one-connection-per-client
  std::size_t pipeline = 8;
  double read_fraction = 0.0;
  bool coalesce = true;
  GatewayReadMode read_mode = GatewayReadMode::kLocal;
  const char* variant = "coalesced";
};

struct GatewayBenchResult {
  DriverReport report;
  GatewayCounters gateway;
  EngineCounters engine;
  TransportCounters transport;
};

GatewayBenchResult run_gateway_bench(const GatewayBenchParams& p) {
  TcpGatewayClusterConfig cfg;
  cfg.n = kNodes;
  cfg.group.engine.t = 1;
  // Same loopback tuning as bench_tcp_ring: pack payloads and hold acks
  // briefly so per-frame costs amortize at socket speed.
  cfg.group.engine.max_payloads_per_frame = 8;
  cfg.group.engine.ack_flush_delay = 50 * kMicrosecond;
  cfg.gateway.coalesce = p.coalesce;
  cfg.gateway.read_mode = p.read_mode;
  TcpGatewayCluster gc(cfg);

  DriverOptions opt;
  opt.endpoints = gc.endpoints();
  opt.clients = p.clients;
  opt.requests_per_client = p.requests_per_client;
  opt.value_bytes = kValueBytes;
  opt.connections = p.connections;
  opt.pipeline = p.pipeline;
  opt.read_fraction = p.read_fraction;

  GatewayBenchResult r;
  r.report = run_client_driver(opt);
  r.gateway = gc.gateway_counters();
  r.engine = gc.cluster().engine_counters();
  r.transport = gc.cluster().counters();
  return r;
}

void BM_Gateway(benchmark::State& state) {
  GatewayBenchParams p;
  p.clients = static_cast<std::size_t>(state.range(0));
  p.requests_per_client = 200;
  if (p.clients > 16) p.connections = 8;
  GatewayBenchResult r;
  for (auto _ : state) r = run_gateway_bench(p);
  state.counters["req_per_s"] = r.report.requests_per_sec;
  state.counters["p50_ms"] = r.report.p50_ms;
  state.counters["p99_ms"] = r.report.p99_ms;
  state.counters["failures"] = static_cast<double>(r.report.failures);
}
BENCHMARK(BM_Gateway)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::JsonReport report("gateway");
  report.config("nodes", std::uint64_t{kNodes})
      .config("value_bytes", std::uint64_t{kValueBytes})
      .config("workload",
              "closed-loop PUT (read-heavy row: 90% GET), sessions "
              "round-robin over replicas; >=64-client rows multiplex "
              "pipelined sessions over 8 connections");

  // Per-row request counts keep total work roughly even so the big rows
  // don't dominate wall time; identity for the regression checker is
  // (clients, requests_per_client, variant).
  const GatewayBenchParams rows[] = {
      {.clients = 1, .requests_per_client = 2000},
      {.clients = 16, .requests_per_client = 400},
      {.clients = 64, .requests_per_client = 200, .connections = 8},
      {.clients = 256, .requests_per_client = 100, .connections = 8},
      {.clients = 256,
       .requests_per_client = 100,
       .connections = 8,
       .coalesce = false,
       .variant = "uncoalesced"},
      {.clients = 256,
       .requests_per_client = 100,
       .connections = 8,
       .read_fraction = 0.9,
       .read_mode = GatewayReadMode::kLeased,
       .variant = "read-heavy"},
      {.clients = 1024, .requests_per_client = 40, .connections = 8},
      // Tail-latency row: one outstanding command per session, so observed
      // p99 sits near the closed-loop queueing floor (population / req_s)
      // instead of measuring the pipeline depth.
      {.clients = 1024,
       .requests_per_client = 40,
       .connections = 8,
       .pipeline = 1,
       .variant = "depth-1"},
  };

  fsr::bench::print_header(
      "Gateway service over real TCP (closed-loop clients; host-dependent)",
      {"clients", "variant", "requests", "req/s", "p50 ms", "p99 ms",
       "p999 ms", "reads", "rejects"});
  for (const GatewayBenchParams& p : rows) {
    GatewayBenchResult r = run_gateway_bench(p);
    std::uint64_t rejects = r.gateway.rejected_window + r.gateway.rejected_bytes;
    fsr::bench::print_row(
        {std::to_string(p.clients), p.variant,
         std::to_string(r.report.requests),
         fsr::bench::fmt(r.report.requests_per_sec, 0),
         fsr::bench::fmt(r.report.p50_ms, 3), fsr::bench::fmt(r.report.p99_ms, 3),
         fsr::bench::fmt(r.report.p999_ms, 3), std::to_string(r.report.reads),
         std::to_string(rejects)});
    auto& row = report.add_row();
    row.num("clients", static_cast<std::uint64_t>(p.clients))
        .num("requests_per_client",
             static_cast<std::uint64_t>(p.requests_per_client))
        .str("variant", p.variant)
        .num("connections", static_cast<std::uint64_t>(p.connections))
        .num("pipeline", static_cast<std::uint64_t>(p.connections ? p.pipeline : 1))
        .num("requests", r.report.requests)
        .num("reads", r.report.reads)
        .num("failures", r.report.failures)
        .num("requests_per_sec", r.report.requests_per_sec)
        .num("p50_ms", r.report.p50_ms)
        .num("p99_ms", r.report.p99_ms)
        .num("p999_ms", r.report.p999_ms)
        .num("mean_ms", r.report.mean_ms)
        .num("max_ms", r.report.max_ms)
        .num("duplicate_replies", r.report.duplicates)
        .num("client_reconnects", r.report.reconnects);
    fsr::bench::add_gateway_counters(row, r.gateway);
    fsr::bench::add_engine_counters(row, r.engine);
    fsr::bench::add_counters(row, r.transport);
  }
  report.write();
  return 0;
}
