// Gateway service benchmark: closed-loop clients driving the replicated KV
// service over real localhost TCP — the end-to-end path a deployment sees:
// client socket -> GatewayServer -> session admission -> TO-broadcast ->
// delivery/execution on every replica -> response routing back to the
// owning connection.
//
// Each row sweeps the closed-loop client count (sessions spread round-robin
// across the replicas); requests/s and client-observed latency percentiles
// come from the ClientDriver, and the gateway/engine/transport counters
// attached to each row show *how* the number was reached (dedupe hits,
// admission rejections, pooled records, syscalls per frame). Host-dependent
// like bench_tcp_ring: loopback is much faster than the paper's testbed, so
// treat absolute numbers as implementation cost, not protocol ceilings.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gateway/client_driver.h"
#include "gateway/tcp_gateway.h"

namespace {

using namespace fsr;

constexpr std::size_t kNodes = 3;
constexpr std::size_t kValueBytes = 64;

struct GatewayBenchResult {
  DriverReport report;
  GatewayCounters gateway;
  EngineCounters engine;
  TransportCounters transport;
};

GatewayBenchResult run_gateway_bench(std::size_t clients,
                                     std::size_t requests_per_client) {
  TcpGatewayClusterConfig cfg;
  cfg.n = kNodes;
  cfg.group.engine.t = 1;
  // Same loopback tuning as bench_tcp_ring: pack payloads and hold acks
  // briefly so per-frame costs amortize at socket speed.
  cfg.group.engine.max_payloads_per_frame = 8;
  cfg.group.engine.ack_flush_delay = 50 * kMicrosecond;
  TcpGatewayCluster gc(cfg);

  DriverOptions opt;
  opt.endpoints = gc.endpoints();
  opt.clients = clients;
  opt.requests_per_client = requests_per_client;
  opt.value_bytes = kValueBytes;

  GatewayBenchResult r;
  r.report = run_client_driver(opt);
  r.gateway = gc.gateway_counters();
  r.engine = gc.cluster().engine_counters();
  r.transport = gc.cluster().counters();
  return r;
}

void BM_Gateway(benchmark::State& state) {
  auto clients = static_cast<std::size_t>(state.range(0));
  GatewayBenchResult r;
  for (auto _ : state) r = run_gateway_bench(clients, 200);
  state.counters["req_per_s"] = r.report.requests_per_sec;
  state.counters["p50_ms"] = r.report.p50_ms;
  state.counters["p99_ms"] = r.report.p99_ms;
  state.counters["failures"] = static_cast<double>(r.report.failures);
}
BENCHMARK(BM_Gateway)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::JsonReport report("gateway");
  report.config("nodes", std::uint64_t{kNodes})
      .config("value_bytes", std::uint64_t{kValueBytes})
      .config("workload", "closed-loop PUT, sessions round-robin over replicas");

  fsr::bench::print_header(
      "Gateway service over real TCP (closed-loop clients; host-dependent)",
      {"clients", "requests", "req/s", "p50 ms", "p99 ms", "mean ms", "dupes",
       "rejects"});
  for (std::size_t clients : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    // Keep total work roughly even across rows so each runs long enough to
    // measure without the 16-client row dominating wall time.
    std::size_t per_client = clients == 1 ? 2000 : (clients == 4 ? 1000 : 400);
    GatewayBenchResult r = run_gateway_bench(clients, per_client);
    std::uint64_t rejects = r.gateway.rejected_window + r.gateway.rejected_bytes;
    fsr::bench::print_row(
        {std::to_string(clients), std::to_string(r.report.requests),
         fsr::bench::fmt(r.report.requests_per_sec, 0),
         fsr::bench::fmt(r.report.p50_ms, 3), fsr::bench::fmt(r.report.p99_ms, 3),
         fsr::bench::fmt(r.report.mean_ms, 3),
         std::to_string(r.report.duplicates), std::to_string(rejects)});
    auto& row = report.add_row();
    row.num("clients", static_cast<std::uint64_t>(clients))
        .num("requests_per_client", static_cast<std::uint64_t>(per_client))
        .num("requests", r.report.requests)
        .num("failures", r.report.failures)
        .num("requests_per_sec", r.report.requests_per_sec)
        .num("p50_ms", r.report.p50_ms)
        .num("p99_ms", r.report.p99_ms)
        .num("mean_ms", r.report.mean_ms)
        .num("max_ms", r.report.max_ms)
        .num("duplicate_replies", r.report.duplicates)
        .num("client_reconnects", r.report.reconnects);
    fsr::bench::add_gateway_counters(row, r.gateway);
    fsr::bench::add_engine_counters(row, r.engine);
    fsr::bench::add_counters(row, r.transport);
  }
  report.write();
  return 0;
}
