// §2.3 / §4.2.3: the fairness experiment. Two processes at opposite sides
// of the ring broadcast bursts simultaneously. A privilege/token protocol
// must either hog the token (unfair) or pass it constantly (slow); FSR
// gives both senders equal shares at full throughput, with tight
// interleaving. Reported: per-sender shares, Jain index, longest
// consecutive run of one sender in the delivery order, and throughput.
#include <benchmark/benchmark.h>

#include "baselines/privilege_cluster.h"
#include "bench_common.h"
#include "common/stats.h"
#include "roundmodel/fsr_round.h"
#include "roundmodel/privilege_round.h"

namespace {

using namespace fsr;
using namespace fsr::rounds;

struct FairnessResult {
  double throughput = 0;
  double jain = 0;
  std::size_t longest_run = 0;
};

FairnessResult run_round_model(Protocol& proto, int n) {
  RoundEngine engine({n, {2, 2 + n / 2}, -1}, proto);
  const long long warmup = 1000, window = 4000;
  engine.run(warmup + window);
  FairnessResult r;
  r.throughput = static_cast<double>(engine.completed_between(warmup, warmup + window)) /
                 static_cast<double>(window);
  std::vector<double> shares;
  for (auto& [origin, count] : engine.completed_by_origin()) {
    shares.push_back(static_cast<double>(count));
  }
  r.jain = jain_fairness(shares);
  const auto& log = engine.logs()[0];
  std::size_t run = 0;
  int prev = -1;
  for (long long b : log) {
    int o = engine.origin_of(b);
    run = (o == prev) ? run + 1 : 1;
    prev = o;
    r.longest_run = std::max(r.longest_run, run);
  }
  return r;
}

FairnessResult run_packet_fsr(int n) {
  // The same scenario on the packet-level simulator.
  bench::WorkloadSpec spec;
  spec.cluster = bench::paper_cluster(static_cast<std::size_t>(n));
  spec.n = static_cast<std::size_t>(n);
  spec.senders = 0;  // custom drive below
  SimCluster c(spec.cluster);
  NodeId a = 2, b = static_cast<NodeId>(2 + n / 2);
  const int kMsgs = 60;
  for (int i = 0; i < kMsgs; ++i) {
    c.broadcast(a, test_payload(a, static_cast<std::uint64_t>(i + 1), 100 * 1024));
    c.broadcast(b, test_payload(b, static_cast<std::uint64_t>(i + 1), 100 * 1024));
  }
  c.sim().run();
  FairnessResult r;
  const auto& log = c.log(0);
  Time last = log.empty() ? 1 : log.back().at;
  std::uint64_t bytes = 0;
  for (const auto& e : log) bytes += e.bytes;
  r.throughput = static_cast<double>(bytes) * 8.0 / static_cast<double>(last) * 1000.0;
  std::map<NodeId, double> counts;
  std::size_t run = 0, longest = 0;
  NodeId prev = kNoNode;
  for (std::size_t i = log.size() / 4; i < log.size() * 3 / 4; ++i) {
    counts[log[i].origin] += 1;
  }
  for (const auto& e : log) {
    run = (e.origin == prev) ? run + 1 : 1;
    prev = e.origin;
    longest = std::max(longest, run);
  }
  r.longest_run = longest;
  std::vector<double> shares{counts[a], counts[b]};
  r.jain = jain_fairness(shares);
  return r;
}

void BM_FairnessFsrRound(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  FairnessResult r;
  for (auto _ : state) {
    FsrRound proto(n, 1);
    r = run_round_model(proto, n);
  }
  state.counters["throughput"] = r.throughput;
  state.counters["jain"] = r.jain;
}
BENCHMARK(BM_FairnessFsrRound)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_FairnessPrivilege(benchmark::State& state) {
  int n = 8;
  auto hold = static_cast<int>(state.range(0));
  FairnessResult r;
  for (auto _ : state) {
    PrivilegeRound proto(n, hold);
    r = run_round_model(proto, n);
  }
  state.counters["throughput"] = r.throughput;
  state.counters["jain"] = r.jain;
  state.counters["longest_run"] = static_cast<double>(r.longest_run);
}
BENCHMARK(BM_FairnessPrivilege)->Arg(1)->Arg(8)->Arg(64)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  int n = 8;
  fsr::bench::JsonReport report("fairness");
  report.config("ring_size", std::uint64_t{8});
  fsr::bench::print_header(
      "Fairness: two opposed bursty senders, ring of 8 (round model)",
      {"protocol", "throughput", "Jain", "longest run"});
  {
    FsrRound proto(n, 1);
    auto r = run_round_model(proto, n);
    fsr::bench::print_row({"FSR", fsr::bench::fmt(r.throughput, 3),
                           fsr::bench::fmt(r.jain, 3), std::to_string(r.longest_run)});
    report.add_row()
        .str("model", "round")
        .str("protocol", "fsr")
        .num("throughput", r.throughput)
        .num("jain", r.jain)
        .num("longest_run", static_cast<std::uint64_t>(r.longest_run));
  }
  for (int hold : {1, 8, 64}) {
    PrivilegeRound proto(n, hold);
    auto r = run_round_model(proto, n);
    fsr::bench::print_row({"privilege(hold=" + std::to_string(hold) + ")",
                           fsr::bench::fmt(r.throughput, 3), fsr::bench::fmt(r.jain, 3),
                           std::to_string(r.longest_run)});
    report.add_row()
        .str("model", "round")
        .str("protocol", "privilege(hold=" + std::to_string(hold) + ")")
        .num("throughput", r.throughput)
        .num("jain", r.jain)
        .num("longest_run", static_cast<std::uint64_t>(r.longest_run));
  }

  fsr::bench::print_header(
      "Fairness: two opposed bursty senders, packet level (100 KB msgs)",
      {"protocol", "Mb/s", "Jain", "longest run"});
  auto r = run_packet_fsr(n);
  fsr::bench::print_row({"FSR", fsr::bench::fmt(r.throughput, 1),
                         fsr::bench::fmt(r.jain, 3), std::to_string(r.longest_run)});
  report.add_row()
      .str("model", "packet")
      .str("protocol", "fsr")
      .num("mbps", r.throughput)
      .num("jain", r.jain)
      .num("longest_run", static_cast<std::uint64_t>(r.longest_run));
  for (std::size_t hold : {std::size_t{1}, std::size_t{16}}) {
    baselines::PrivilegeConfig pcfg;
    pcfg.segment_size = 100 * 1024;
    pcfg.hold_max = hold;
    baselines::PrivilegeCluster c(NetConfig{}, n, pcfg);
    NodeId a = 2, b = static_cast<NodeId>(2 + n / 2);
    const int kMsgs = 40;
    for (int i = 0; i < kMsgs; ++i) {
      c.broadcast(a, test_payload(a, static_cast<std::uint64_t>(i + 1), 100 * 1024));
      c.broadcast(b, test_payload(b, static_cast<std::uint64_t>(i + 1), 100 * 1024));
    }
    c.sim().run();
    const auto& log = c.log(0);
    std::uint64_t bytes = 0;
    std::size_t longest = 0, run = 0;
    NodeId prev = kNoNode;
    std::map<NodeId, double> counts;
    for (const auto& e : log) {
      bytes += e.bytes;
      counts[e.origin] += 1;
      run = (e.origin == prev) ? run + 1 : 1;
      prev = e.origin;
      longest = std::max(longest, run);
    }
    double mbps = log.empty() ? 0
                              : static_cast<double>(bytes) * 8.0 /
                                    static_cast<double>(log.back().at) * 1000.0;
    fsr::bench::print_row({"privilege(hold=" + std::to_string(hold) + ")",
                           fsr::bench::fmt(mbps, 1),
                           fsr::bench::fmt(jain_fairness({counts[a], counts[b]}), 3),
                           std::to_string(longest)});
    report.add_row()
        .str("model", "packet")
        .str("protocol", "privilege(hold=" + std::to_string(hold) + ")")
        .num("mbps", mbps)
        .num("jain", jain_fairness({counts[a], counts[b]}))
        .num("longest_run", static_cast<std::uint64_t>(longest));
  }
  report.write();
  return 0;
}
