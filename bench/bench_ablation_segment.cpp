// Ablation of §4.1: uniform message size via segmentation. One process
// streams huge (500 KB) messages while another sends small (1 KB) ones.
// With coarse segments the small messages stall behind half-megabyte
// frames on every hop; with fine segments they interleave. Also reports
// the throughput cost of segmentation overhead in the uniform case.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stats.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

struct MixedResult {
  double small_latency_ms = 0;
  double big_mbps = 0;
};

MixedResult run_mixed(std::size_t segment) {
  ClusterConfig cfg = paper_cluster(5);
  cfg.group.engine.segment_size = segment;
  cfg.group.engine.window = 64;
  SimCluster c(cfg);
  const int kBig = 30, kSmall = 40;
  for (int i = 0; i < kBig; ++i) {
    c.broadcast(1, test_payload(1, static_cast<std::uint64_t>(i + 1), 500 * 1024));
  }
  // Small sender drips 1 KB messages at 100 ms intervals through the run.
  for (int i = 0; i < kSmall; ++i) {
    c.sim().schedule_at(static_cast<Time>(i) * 100 * kMillisecond, [&c, i] {
      c.broadcast(3, test_payload(3, static_cast<std::uint64_t>(i + 1), 1024));
    });
  }
  c.sim().run();
  MixedResult r;
  Accumulator lat;
  for (int i = 0; i < kSmall; ++i) {
    Time submit = c.submit_time(3, static_cast<std::uint64_t>(i + 1));
    Time done = c.completion_time(3, static_cast<std::uint64_t>(i + 1));
    if (submit >= 0 && done >= submit) {
      lat.add(static_cast<double>(done - submit) / 1e6);
    }
  }
  r.small_latency_ms = lat.mean();
  Time big_done = c.completion_time(1, kBig);
  if (big_done > 0) {
    r.big_mbps = static_cast<double>(kBig) * 500 * 1024 * 8.0 /
                 static_cast<double>(big_done) * 1000.0;
  }
  return r;
}

const std::size_t kSegments[] = {2048, 8192, 32768, 131072, 524288};

void BM_SegmentMix(benchmark::State& state) {
  std::size_t segment = kSegments[state.range(0)];
  MixedResult r;
  for (auto _ : state) r = run_mixed(segment);
  state.counters["small_latency_ms"] = r.small_latency_ms;
  state.counters["big_Mbps"] = r.big_mbps;
}
BENCHMARK(BM_SegmentMix)->DenseRange(0, 4)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::print_header(
      "Ablation: segment size under mixed traffic (one 500 KB streamer, one "
      "1 KB sender; §4.1: uniform size keeps small messages from stalling)",
      {"segment", "small msg latency", "streamer Mb/s"});
  fsr::bench::JsonReport report("ablation_segment");
  for (std::size_t segment : kSegments) {
    MixedResult r = run_mixed(segment);
    fsr::bench::print_row({std::to_string(segment / 1024) + " KiB",
                           fsr::bench::fmt(r.small_latency_ms, 1) + " ms",
                           fsr::bench::fmt(r.big_mbps, 1)});
    report.add_row()
        .num("segment_size", static_cast<std::uint64_t>(segment))
        .num("small_latency_ms", r.small_latency_ms)
        .num("streamer_mbps", r.big_mbps);
  }
  report.write();
  return 0;
}
