// Figure 7: latency (ms) as a function of throughput. Paper setup (§5.2):
// n-to-n TO-broadcasts of 100 KB messages among 5 processes, senders
// throttled to a given rate; latency stays almost flat until the maximum
// throughput is reached, then queueing blows it up.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

struct Point {
  double offered_mbps;
  double achieved_mbps;
  double latency_ms;
};

Point run_point(double aggregate_offered_mbps) {
  constexpr std::size_t kN = 5;
  constexpr std::size_t kMsg = 100 * 1024;
  WorkloadSpec spec;
  spec.cluster = paper_cluster(kN);
  spec.n = kN;
  spec.senders = kN;
  spec.message_size = kMsg;
  // Per-sender broadcast rate (msgs/s) to hit the aggregate offered load.
  double per_sender_bps = aggregate_offered_mbps * 1e6 / kN;
  spec.rate_per_sender = per_sender_bps / (8.0 * static_cast<double>(kMsg));
  // Enough messages for ~4 virtual seconds of offered load.
  spec.messages_per_sender =
      std::max(6, static_cast<int>(spec.rate_per_sender * 4.0));
  // Continuous validation: run_workload aborts on any safety-invariant
  // violation, and with 5 equal-rate senders the forward list must keep
  // interleaving them — no origin may dominate a steady-state window.
  spec.lint.fairness_window = 20;
  spec.lint.fairness_max_share = 0.9;
  WorkloadResult r = run_workload(spec);
  return Point{aggregate_offered_mbps, r.goodput_mbps, r.mean_latency_ms};
}

const double kOffered[] = {10, 20, 30, 40, 50, 60, 70, 75, 80, 85, 90};

void BM_Fig7(benchmark::State& state) {
  double offered = kOffered[state.range(0)];
  Point p{};
  for (auto _ : state) p = run_point(offered);
  state.counters["offered_Mbps"] = p.offered_mbps;
  state.counters["achieved_Mbps"] = p.achieved_mbps;
  state.counters["latency_ms"] = p.latency_ms;
}
BENCHMARK(BM_Fig7)->DenseRange(0, 10)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  print_header(
      "Figure 7: latency vs throughput (5 procs, 100 KB, throttled senders; "
      "paper: flat until ~79 Mb/s, then a queueing blow-up)",
      {"offered Mb/s", "achieved Mb/s", "latency (ms)"});
  fsr::bench::JsonReport report("fig7_latency_vs_throughput");
  report.config("processes", std::uint64_t{5}).config("message_size", std::uint64_t{100 * 1024});
  for (double offered : kOffered) {
    Point p = run_point(offered);
    print_row({fmt(p.offered_mbps, 0), fmt(p.achieved_mbps, 1), fmt(p.latency_ms, 1)});
    report.add_row()
        .num("offered_mbps", p.offered_mbps)
        .num("achieved_mbps", p.achieved_mbps)
        .num("latency_ms", p.latency_ms);
  }
  report.write();
  return 0;
}
