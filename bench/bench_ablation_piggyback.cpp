// Ablation of §4.2.2: ack piggybacking. With piggybacking on, each
// TO-broadcast effectively sends its payload around the ring once and the
// acks ride for free. With it off, every ack/gc is a separate frame
// competing for NIC and CPU time; per-frame fixed costs and head-of-line
// waits cut goodput and grow latency.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

WorkloadResult run_point(bool piggyback, std::size_t msg_size, int msgs) {
  WorkloadSpec spec;
  spec.cluster = paper_cluster(5);
  spec.cluster.group.engine.piggyback_acks = piggyback;
  spec.cluster.group.engine.segment_size = std::min<std::size_t>(msg_size, 100 * 1024);
  spec.n = 5;
  spec.senders = 5;
  spec.messages_per_sender = msgs;
  spec.message_size = msg_size;
  return run_workload(spec);
}

void BM_Piggyback(benchmark::State& state) {
  bool on = state.range(0) != 0;
  WorkloadResult r;
  for (auto _ : state) r = run_point(on, 4 * 1024, 200);
  state.SetLabel(on ? "piggyback" : "standalone-acks");
  state.counters["Mbps"] = r.goodput_mbps;
  state.counters["latency_ms"] = r.mean_latency_ms;
}
BENCHMARK(BM_Piggyback)->Arg(1)->Arg(0)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Small messages make the per-frame cost of standalone acks visible;
  // with 100 KB payloads the ack overhead nearly vanishes into the
  // payload processing time.
  fsr::bench::print_header(
      "Ablation: ack piggybacking (5-to-5 saturation)",
      {"acks", "message", "Mb/s", "latency (ms)"});
  struct Case {
    std::size_t size;
    int msgs;
  };
  fsr::bench::JsonReport report("ablation_piggyback");
  for (Case cs : {Case{2 * 1024, 400}, Case{8 * 1024, 250}, Case{100 * 1024, 40}}) {
    for (bool on : {true, false}) {
      WorkloadResult r = run_point(on, cs.size, cs.msgs);
      fsr::bench::print_row({on ? "piggybacked" : "standalone",
                             std::to_string(cs.size / 1024) + " KiB",
                             fsr::bench::fmt(r.goodput_mbps, 1),
                             fsr::bench::fmt(r.mean_latency_ms, 1)});
      report.add_row()
          .str("acks", on ? "piggybacked" : "standalone")
          .num("message_size", static_cast<std::uint64_t>(cs.size))
          .num("goodput_mbps", r.goodput_mbps)
          .num("latency_ms", r.mean_latency_ms);
    }
  }
  report.write();
  return 0;
}
