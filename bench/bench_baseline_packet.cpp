// The §2 comparison at packet level, in Mb/s on the identical simulated
// 100 Mb/s testbed: FSR's ring dissemination against the classic fixed
// sequencer, whose NIC must transmit n-1 copies of every payload. This is
// the quantitative version of the paper's motivation (Figures 1 vs 4):
// the sequencer baseline decays like wire/(n-1) while FSR stays flat.
#include <benchmark/benchmark.h>

#include "baselines/fixed_seq_cluster.h"
#include "baselines/moving_seq_cluster.h"
#include "baselines/privilege_cluster.h"
#include "bench_common.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

double fixed_seq_mbps(std::size_t n) {
  baselines::FixedSeqConfig cfg;
  cfg.segment_size = 100 * 1024;
  cfg.window = 16;
  baselines::FixedSeqCluster c(NetConfig{}, n, cfg);
  const int msgs = static_cast<int>(200 / n) + 6;
  for (std::size_t s = 0; s < n; ++s) {
    for (int i = 0; i < msgs; ++i) {
      c.broadcast(static_cast<NodeId>(s),
                  test_payload(static_cast<NodeId>(s),
                               static_cast<std::uint64_t>(i + 1), 100 * 1024));
    }
  }
  c.sim().run();
  if (c.log(1).size() != n * static_cast<std::size_t>(msgs)) return -1;
  return static_cast<double>(n * static_cast<std::size_t>(msgs)) * 100 * 1024 * 8.0 /
         static_cast<double>(c.log(1).back().at) * 1000.0;
}

double privilege_mbps(std::size_t n, std::size_t hold) {
  baselines::PrivilegeConfig cfg;
  cfg.segment_size = 100 * 1024;
  cfg.hold_max = hold;
  baselines::PrivilegeCluster c(NetConfig{}, n, cfg);
  const int msgs = static_cast<int>(120 / n) + 4;
  for (std::size_t s = 0; s < n; ++s) {
    for (int i = 0; i < msgs; ++i) {
      c.broadcast(static_cast<NodeId>(s),
                  test_payload(static_cast<NodeId>(s),
                               static_cast<std::uint64_t>(i + 1), 100 * 1024));
    }
  }
  c.sim().run();
  if (c.log(1).size() != n * static_cast<std::size_t>(msgs)) return -1;
  return static_cast<double>(n * static_cast<std::size_t>(msgs)) * 100 * 1024 * 8.0 /
         static_cast<double>(c.log(1).back().at) * 1000.0;
}

double moving_seq_mbps(std::size_t n) {
  baselines::MovingSeqConfig cfg;
  cfg.segment_size = 100 * 1024;
  cfg.batch = 8;
  baselines::MovingSeqCluster c(NetConfig{}, n, cfg);
  const int msgs = static_cast<int>(120 / n) + 4;
  for (std::size_t s = 0; s < n; ++s) {
    for (int i = 0; i < msgs; ++i) {
      c.broadcast(static_cast<NodeId>(s),
                  test_payload(static_cast<NodeId>(s),
                               static_cast<std::uint64_t>(i + 1), 100 * 1024));
    }
  }
  c.sim().run();
  if (c.log(1).size() != n * static_cast<std::size_t>(msgs)) return -1;
  return static_cast<double>(n * static_cast<std::size_t>(msgs)) * 100 * 1024 * 8.0 /
         static_cast<double>(c.log(1).back().at) * 1000.0;
}

double fsr_mbps(std::size_t n) {
  WorkloadSpec spec;
  spec.cluster = paper_cluster(n);
  spec.n = n;
  spec.senders = n;
  spec.messages_per_sender = static_cast<int>(200 / n) + 6;
  spec.message_size = 100 * 1024;
  WorkloadResult r = run_workload(spec);
  return r.completed ? r.goodput_mbps : -1;
}

void BM_BaselinePacket(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  double fsr = 0, fixed = 0;
  for (auto _ : state) {
    fsr = fsr_mbps(n);
    fixed = fixed_seq_mbps(n);
  }
  state.counters["FSR_Mbps"] = fsr;
  state.counters["fixedseq_Mbps"] = fixed;
  state.counters["privilege_Mbps"] = privilege_mbps(n, 8);
  state.counters["movingseq_Mbps"] = moving_seq_mbps(n);
}
BENCHMARK(BM_BaselinePacket)->DenseRange(2, 10, 2)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::print_header(
      "Packet-level comparison (n-to-n, 100 KB, 100 Mb/s wire): FSR ring vs "
      "fixed sequencer, moving sequencer and privilege/token",
      {"processes", "FSR Mb/s", "fixed-seq", "moving-seq", "privilege", "FSR advantage"});
  fsr::bench::JsonReport report("baseline_packet");
  report.config("message_size", std::uint64_t{100 * 1024});
  for (std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{6},
                        std::size_t{8}, std::size_t{10}}) {
    double a = fsr_mbps(n);
    double b = fixed_seq_mbps(n);
    double m = moving_seq_mbps(n);
    double p = privilege_mbps(n, 8);
    double best = std::max(b, std::max(m, p));
    fsr::bench::print_row({std::to_string(n), fsr::bench::fmt(a, 1), fsr::bench::fmt(b, 1),
                           fsr::bench::fmt(m, 1), fsr::bench::fmt(p, 1),
                           fsr::bench::fmt(a / best, 1) + "x"});
    report.add_row()
        .num("processes", static_cast<std::uint64_t>(n))
        .num("fsr_mbps", a)
        .num("fixed_seq_mbps", b)
        .num("moving_seq_mbps", m)
        .num("privilege_mbps", p);
  }
  report.write();
  return 0;
}
