// Figure 6: latency (ms) as a function of the number of processes.
// Paper setup (§5.2): n-to-n configuration, 100 KB messages, latency
// measured contention-free — one sender, one message — averaged over every
// sender position. The paper's graph is linear in n (~25 ms per process,
// peaking around 230 ms at n = 10).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stats.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

double avg_latency_ms(std::size_t n) {
  Accumulator acc;
  for (std::size_t sender = 0; sender < n; ++sender) {
    WorkloadSpec spec;
    spec.cluster = paper_cluster(n);
    spec.n = n;
    spec.senders = 1;
    spec.messages_per_sender = 1;
    spec.message_size = 100 * 1024;
    // Shift which node broadcasts by running the single message from each
    // position: run_workload uses nodes [0, senders); emulate position by
    // building the cluster manually instead.
    SimCluster c(spec.cluster);
    c.broadcast(static_cast<NodeId>(sender), test_payload(static_cast<NodeId>(sender), 1, spec.message_size));
    c.sim().run();
    Time done = c.completion_time(static_cast<NodeId>(sender), 1);
    if (done >= 0) acc.add(static_cast<double>(done) / 1e6);
  }
  return acc.mean();
}

void BM_Fig6(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  double ms = 0;
  for (auto _ : state) ms = avg_latency_ms(n);
  state.counters["latency_ms"] = ms;
}
BENCHMARK(BM_Fig6)->DenseRange(2, 10)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  print_header(
      "Figure 6: latency vs number of processes (100 KB, contention-free; "
      "paper: linear, ~230 ms at n=10)",
      {"processes", "latency (ms)"});
  fsr::bench::JsonReport report("fig6_latency_vs_n");
  report.config("message_size", std::uint64_t{100 * 1024});
  double prev = 0;
  for (std::size_t n = 2; n <= 10; ++n) {
    double ms = avg_latency_ms(n);
    std::string note = prev > 0 ? ("  (+" + fmt(ms - prev, 1) + ")") : "";
    print_row({std::to_string(n), fmt(ms, 1) + note});
    prev = ms;
    report.add_row().num("processes", static_cast<std::uint64_t>(n)).num("latency_ms", ms);
  }
  report.write();
  return 0;
}
