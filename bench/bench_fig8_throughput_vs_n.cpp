// Figure 8: maximum throughput (Mb/s) as a function of the number of
// processes. Paper setup (§5.3): n-to-n TO-broadcasts of 100 KB messages on
// 100 Mb/s switched Ethernet; FSR sustains ~79 Mb/s independent of n.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

WorkloadResult run_point(std::size_t n) {
  WorkloadSpec spec;
  spec.cluster = paper_cluster(n);
  spec.n = n;
  spec.senders = n;  // n-to-n
  spec.messages_per_sender = static_cast<int>(240 / n) + 8;
  spec.message_size = 100 * 1024;
  return run_workload(spec);
}

void BM_Fig8(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  WorkloadResult r;
  for (auto _ : state) r = run_point(n);
  state.counters["Mbps"] = r.goodput_mbps;
  state.counters["fairness"] = r.fairness;
}
BENCHMARK(BM_Fig8)->DenseRange(2, 10)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  print_header(
      "Figure 8: throughput vs number of processes (n-to-n, 100 KB; paper: "
      "~79 Mb/s, flat)",
      {"processes", "Mb/s", "fairness"});
  fsr::bench::JsonReport report("fig8_throughput_vs_n");
  report.config("message_size", std::uint64_t{100 * 1024});
  for (std::size_t n = 2; n <= 10; ++n) {
    WorkloadResult r = run_point(n);
    print_row({std::to_string(n), fmt(r.goodput_mbps, 1), fmt(r.fairness, 3)});
    report.add_row()
        .num("processes", static_cast<std::uint64_t>(n))
        .num("goodput_mbps", r.goodput_mbps)
        .num("fairness", r.fairness);
  }
  report.write();
  return 0;
}
