// Figure 9: throughput (Mb/s) as a function of the number of senders.
// Paper setup (§5.3): k-to-5 TO-broadcasts of 100 KB messages, k = 1..5.
// FSR reaches the maximum throughput whatever the number of senders — the
// property privilege- and sequencer-based protocols lack.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace fsr;
using namespace fsr::bench;

WorkloadResult run_point(std::size_t k) {
  WorkloadSpec spec;
  spec.cluster = paper_cluster(5);
  spec.n = 5;
  spec.senders = k;
  spec.messages_per_sender = static_cast<int>(240 / k);
  spec.message_size = 100 * 1024;
  return run_workload(spec);
}

void BM_Fig9(benchmark::State& state) {
  auto k = static_cast<std::size_t>(state.range(0));
  WorkloadResult r;
  for (auto _ : state) r = run_point(k);
  state.counters["Mbps"] = r.goodput_mbps;
  state.counters["fairness"] = r.fairness;
}
BENCHMARK(BM_Fig9)->DenseRange(1, 5)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  print_header(
      "Figure 9: throughput vs number of senders (k-to-5, 100 KB; paper: "
      "flat at the ~79 Mb/s maximum)",
      {"senders", "Mb/s", "fairness"});
  fsr::bench::JsonReport report("fig9_throughput_vs_senders");
  report.config("processes", std::uint64_t{5}).config("message_size", std::uint64_t{100 * 1024});
  for (std::size_t k = 1; k <= 5; ++k) {
    WorkloadResult r = run_point(k);
    print_row({std::to_string(k), fmt(r.goodput_mbps, 1), fmt(r.fairness, 3)});
    report.add_row()
        .num("senders", static_cast<std::uint64_t>(k))
        .num("goodput_mbps", r.goodput_mbps)
        .num("fairness", r.fairness);
  }
  report.write();
  return 0;
}
