// §4.3.1: FSR latency in the round model is exactly L(i) = 2n + t - i - 1
// rounds for a standard sender at ring position i. This bench prints the
// measured completion round against the formula for a sweep of (n, t, i).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ring/rules.h"
#include "roundmodel/fsr_round.h"

namespace {

using namespace fsr;
using namespace fsr::rounds;

long long measured_latency(int n, int t, int i) {
  FsrRound proto(n, t);
  RoundEngine engine({n, {i}, 1}, proto);
  engine.run(8 * n + 20);
  if (engine.completed() != 1) return -1;
  return engine.latency(0) + 1;  // completion round is 0-based
}

void BM_ModelLatency(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int t = 1;
  double worst_err = 0;
  for (auto _ : state) {
    for (int i = t + 1; i < n; ++i) {
      auto expect = ring::Topology{static_cast<std::uint32_t>(n),
                                   static_cast<std::uint32_t>(t)}
                        .analytic_latency(static_cast<Position>(i));
      worst_err = std::max(
          worst_err, std::abs(static_cast<double>(measured_latency(n, t, i)) -
                              static_cast<double>(expect)));
    }
  }
  state.counters["max_abs_error_rounds"] = worst_err;
}
BENCHMARK(BM_ModelLatency)->DenseRange(3, 12)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  fsr::bench::JsonReport report("model_latency");
  for (int t : {0, 1, 2}) {
    fsr::bench::print_header(
        "FSR round-model latency, t = " + std::to_string(t) +
            " (rounds; formula L(i) = 2n + t - i - 1, paper §4.3.1)",
        {"n", "sender i", "measured", "formula"});
    for (int n = 4; n <= 12; n += 4) {
      for (int i = t + 1; i < n; i += std::max(1, n / 4)) {
        long long m = measured_latency(n, t, i);
        auto f = ring::Topology{static_cast<std::uint32_t>(n),
                                static_cast<std::uint32_t>(t)}
                     .analytic_latency(static_cast<Position>(i));
        fsr::bench::print_row({std::to_string(n), std::to_string(i), std::to_string(m),
                               std::to_string(f)});
        report.add_row()
            .num("t", static_cast<std::uint64_t>(t))
            .num("n", static_cast<std::uint64_t>(n))
            .num("sender", static_cast<std::uint64_t>(i))
            .num("measured_rounds", static_cast<double>(m))
            .num("formula_rounds", static_cast<double>(f));
      }
    }
  }
  report.write();
  return 0;
}
