#include "common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "common/sync.h"

namespace fsr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;  // serializes whole lines onto stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void log_write(LogLevel level, const std::string& msg) {
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

namespace detail {
std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}
}  // namespace detail

}  // namespace fsr
