// Annotated synchronization primitives for Clang Thread Safety Analysis.
//
// Every lock and every thread in this codebase goes through the wrappers in
// this file. The FSR_* macros expand to Clang's thread-safety attributes
// under Clang and compile away on other compilers, so the same sources build
// with GCC while Clang builds (the `clang-tsa` CMake preset and the
// `clang-threadsafety` CI job) enforce the locking discipline with
// -Werror=thread-safety. `tools/fsr_lint.py` enforces the complementary
// project rules the compiler can't see (no raw std::mutex/std::thread
// outside this file, no blocking calls on I/O-thread-only paths).
//
// Two kinds of capability:
//
//  * Mutex / RecursiveMutex — ordinary lockable capabilities. Guard data
//    with FSR_GUARDED_BY(mu), take them with MutexLock / RecursiveMutexLock,
//    and annotate "caller must hold" helpers with FSR_REQUIRES(mu).
//
//  * ThreadRole — a zero-cost *role* capability modeling "this code runs on
//    thread X" (e.g. a TcpTransport's I/O thread, a Gateway's event thread).
//    There is no lock to take: the thread that *is* the role adopts it once
//    (ThreadRoleRegion) and everything it calls may be FSR_REQUIRES(role).
//    Cross-thread entry points declare FSR_EXCLUDES(role). Statically this
//    turns wrong-thread calls into compile errors wherever the concrete type
//    is visible; dynamically adopt() enforces mutual exclusion (abort on
//    concurrent adoption from two threads), so contracts that flow through
//    type-erased call paths (std::function, Transport&) are still checked at
//    runtime. Asserts are always on in this repo (NDEBUG is stripped).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

// ---------------------------------------------------------------------------
// Attribute macros (Clang thread safety analysis; no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(FSR_NO_THREAD_SAFETY_ATTRIBUTES)
#define FSR_TSA_ATTR__(x) __attribute__((x))
#else
#define FSR_TSA_ATTR__(x)  // no-op
#endif

#define FSR_CAPABILITY(x) FSR_TSA_ATTR__(capability(x))
#define FSR_SCOPED_CAPABILITY FSR_TSA_ATTR__(scoped_lockable)
#define FSR_GUARDED_BY(x) FSR_TSA_ATTR__(guarded_by(x))
#define FSR_PT_GUARDED_BY(x) FSR_TSA_ATTR__(pt_guarded_by(x))
#define FSR_ACQUIRED_BEFORE(...) FSR_TSA_ATTR__(acquired_before(__VA_ARGS__))
#define FSR_ACQUIRED_AFTER(...) FSR_TSA_ATTR__(acquired_after(__VA_ARGS__))
#define FSR_REQUIRES(...) FSR_TSA_ATTR__(requires_capability(__VA_ARGS__))
#define FSR_ACQUIRE(...) FSR_TSA_ATTR__(acquire_capability(__VA_ARGS__))
#define FSR_RELEASE(...) FSR_TSA_ATTR__(release_capability(__VA_ARGS__))
#define FSR_TRY_ACQUIRE(...) FSR_TSA_ATTR__(try_acquire_capability(__VA_ARGS__))
#define FSR_EXCLUDES(...) FSR_TSA_ATTR__(locks_excluded(__VA_ARGS__))
#define FSR_ASSERT_CAPABILITY(x) FSR_TSA_ATTR__(assert_capability(x))
#define FSR_RETURN_CAPABILITY(x) FSR_TSA_ATTR__(lock_returned(x))
#define FSR_NO_THREAD_SAFETY_ANALYSIS FSR_TSA_ATTR__(no_thread_safety_analysis)

namespace fsr {

// Abort with a message. Used for violated threading contracts: these are
// programming errors, never recoverable conditions.
[[noreturn]] inline void sync_fatal(const char* what, const char* who) {
  std::fprintf(stderr, "fsr sync violation: %s (%s)\n", what, who);
  std::abort();
}

// ---------------------------------------------------------------------------
// Mutex / RecursiveMutex
// ---------------------------------------------------------------------------

/// std::mutex with capability annotations. Prefer MutexLock for scoped use;
/// lock()/unlock() exist for CondVar and for the rare manual region.
class FSR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FSR_ACQUIRE() { mu_.lock(); }
  void unlock() FSR_RELEASE() { mu_.unlock(); }
  bool try_lock() FSR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::recursive_mutex with capability annotations. Clang's analysis does
/// not model reentrancy, so annotated code must not *statically* re-acquire
/// one of these; dynamic re-entry through type-erased paths (the transport's
/// post-stop drain) is what the recursion is for.
class FSR_CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() FSR_ACQUIRE() { mu_.lock(); }
  void unlock() FSR_RELEASE() { mu_.unlock(); }

 private:
  std::recursive_mutex mu_;
};

/// Scoped lock for Mutex (std::lock_guard replacement).
class FSR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FSR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FSR_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped lock for RecursiveMutex.
class FSR_SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex& mu) FSR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~RecursiveMutexLock() FSR_RELEASE() { mu_.unlock(); }
  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex& mu_;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// Condition variable that waits on fsr::Mutex. The waits are REQUIRES(mu):
/// callers must hold the mutex (via MutexLock or mu.lock()). The bodies are
/// opted out of analysis because waiting releases and re-acquires the
/// capability internally, which the analysis cannot follow.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) FSR_REQUIRES(mu) FSR_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) FSR_REQUIRES(mu) FSR_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Pred pred) FSR_REQUIRES(mu) FSR_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

// ---------------------------------------------------------------------------
// ThreadRole
// ---------------------------------------------------------------------------

/// A capability that models thread ownership rather than a lock. The thread
/// that plays the role adopts it (normally once, at the top of its loop, via
/// ThreadRoleRegion); methods restricted to that thread are FSR_REQUIRES(role)
/// and entry points that must never run on it are FSR_EXCLUDES(role).
///
/// The runtime check enforces *mutual exclusion*, not permanent affinity:
/// after a transport stops, its role may legitimately be adopted by whichever
/// thread drains the post queue — serialized by the drain mutex — so the
/// owner is a revocable (thread id, depth) pair, not a fixed id. Same-thread
/// re-adoption nests (depth), concurrent adoption from a second thread
/// aborts the process with a diagnostic.
class FSR_CAPABILITY("role") ThreadRole {
 public:
  explicit ThreadRole(const char* name) : name_(name) {}
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Claim the role on the calling thread. Nests on the same thread.
  void adopt() FSR_ACQUIRE() {
    const std::thread::id me = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == me) {
      ++depth_;  // owner-only field: safe without synchronization
      return;
    }
    std::thread::id unowned{};
    if (!owner_.compare_exchange_strong(unowned, me, std::memory_order_acq_rel)) {
      sync_fatal("thread role adopted concurrently from a second thread", name_);
    }
    depth_ = 1;
  }

  /// Drop one level of adoption; the role becomes free at depth zero.
  void release() FSR_RELEASE() {
    if (owner_.load(std::memory_order_relaxed) != std::this_thread::get_id()) {
      sync_fatal("thread role released by a thread that does not hold it", name_);
    }
    if (--depth_ == 0) owner_.store(std::thread::id{}, std::memory_order_release);
  }

  /// True iff the calling thread currently holds the role.
  bool held_by_me() const {
    return owner_.load(std::memory_order_relaxed) == std::this_thread::get_id();
  }

  /// Runtime backing for contracts the static analysis cannot follow
  /// (calls through Transport& or std::function). Tells the analysis the
  /// capability is held from here on.
  void assert_held() const FSR_ASSERT_CAPABILITY(this) {
    if (!held_by_me()) sync_fatal("code ran off its required thread role", name_);
  }

  const char* name() const { return name_; }

 private:
  std::atomic<std::thread::id> owner_{};
  int depth_ = 0;  // touched only by the owning thread
  const char* name_;
};

/// Scoped adoption of a ThreadRole.
class FSR_SCOPED_CAPABILITY ThreadRoleRegion {
 public:
  explicit ThreadRoleRegion(ThreadRole& role) FSR_ACQUIRE(role) : role_(role) { role_.adopt(); }
  ~ThreadRoleRegion() FSR_RELEASE() { role_.release(); }
  ThreadRoleRegion(const ThreadRoleRegion&) = delete;
  ThreadRoleRegion& operator=(const ThreadRoleRegion&) = delete;

 private:
  ThreadRole& role_;
};

// ---------------------------------------------------------------------------
// Thread
// ---------------------------------------------------------------------------

/// std::thread minus detach(): every thread in this codebase is joined.
/// (fsr_lint.py rejects raw std::thread and any .detach() call.)
class Thread {
 public:
  Thread() = default;
  template <typename Fn, typename... Args>
  explicit Thread(Fn&& fn, Args&&... args)
      : t_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}
  Thread(Thread&&) = default;
  Thread& operator=(Thread&&) = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  bool joinable() const { return t_.joinable(); }
  void join() { t_.join(); }
  std::thread::id get_id() const { return t_.get_id(); }

 private:
  std::thread t_;
};

}  // namespace fsr
