// Statistics helpers used by benchmarks and tests: running moments,
// percentiles over full samples, and Jain's fairness index.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace fsr {

/// Running count / mean / min / max / (population) stddev.
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; answers percentile queries. Fine for bench scale
/// (≤ a few million samples).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }

  double mean() const {
    if (values_.empty()) return 0.0;
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  /// p in [0, 100].
  double percentile(double p) {
    if (values_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
    double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, values_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double median() { return percentile(50.0); }
  double max() { return percentile(100.0); }
  double min() { return percentile(0.0); }

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair,
/// 1/n = one party gets everything. Used for the §4.2.3 fairness claims.
inline double jain_fairness(const std::vector<double>& shares) {
  if (shares.empty()) return 1.0;
  double s = 0.0, s2 = 0.0;
  for (double x : shares) {
    s += x;
    s2 += x * x;
  }
  if (s2 == 0.0) return 1.0;
  return s * s / (static_cast<double>(shares.size()) * s2);
}

}  // namespace fsr
