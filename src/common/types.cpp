#include "common/types.h"

namespace fsr {

std::string to_string(const MsgId& id) {
  return "m(" + std::to_string(id.origin) + "," + std::to_string(id.lsn) + ")";
}

}  // namespace fsr
