// Deterministic pseudo-random number generation for simulations and tests.
// xoshiro256** seeded through splitmix64 — fast, reproducible across
// platforms (unlike std::default_random_engine distributions).
#pragma once

#include <cmath>
#include <cstdint>

namespace fsr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Exponentially distributed value with the given mean (Poisson arrivals).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace fsr
