// Bounds-checked binary reader/writer used by the wire codec.
// Little-endian fixed-width integers plus LEB128-style varints.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fsr {

using Bytes = std::vector<std::uint8_t>;

/// Thrown on malformed input (truncated buffer, oversized length field, ...).
/// Callers at trust boundaries (e.g. the TCP reader) catch this and drop the
/// offending connection instead of crashing.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }

  /// Unsigned LEB128 varint (1..10 bytes).
  void var(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed byte string.
  void bytes(std::span<const std::uint8_t> data) {
    var(data.size());
    raw(data);
  }

  void str(std::string_view s) {
    var(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& view() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  template <typename T>
  void fixed(T v) {
    std::uint8_t tmp[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }

  std::uint64_t var() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw CodecError("varint too long");
      std::uint8_t b = u8();
      // The 10th byte holds only bit 63: anything above it would be
      // silently dropped by the shift, so reject it as malformed rather
      // than decode an aliased value.
      if (shift == 63 && (b & 0x7e) != 0) throw CodecError("varint overflows 64 bits");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  Bytes bytes() {
    std::uint64_t len = var();
    auto s = take(check_len(len));
    return Bytes(s.begin(), s.end());
  }

  /// Length-prefixed byte string as a view into the underlying buffer (no
  /// copy). Valid only while the buffer the reader was constructed over
  /// lives; callers that need the bytes past that must copy or hold a
  /// reference to the backing storage.
  std::span<const std::uint8_t> bytes_view() {
    std::uint64_t len = var();
    return take(check_len(len));
  }

  std::string str() {
    std::uint64_t len = var();
    auto s = take(check_len(len));
    return std::string(s.begin(), s.end());
  }

  std::span<const std::uint8_t> raw(std::size_t len) { return take(len); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  std::size_t check_len(std::uint64_t len) const {
    if (len > remaining()) throw CodecError("length field exceeds buffer");
    return static_cast<std::size_t>(len);
  }

  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) throw CodecError("truncated buffer");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  T fixed() {
    auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(s[i]) << (8 * i));
    }
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Receive-side byte accumulator built for zero-copy consumption: bytes are
/// appended into a reference-counted chunk whose storage never moves, so
/// views decoded out of it (e.g. message payloads) stay valid for as long as
/// they hold the chunk's owner — even after the buffer "compacts".
///
/// Invariants that make the aliasing safe:
///   * a chunk's storage is written only in [size, capacity) — bytes that a
///     reader may already reference are never overwritten or moved;
///   * instead of memmove-compacting in place, compaction allocates a fresh
///     chunk and copies only the unconsumed tail (typically a partial
///     message) into it; the old chunk is released and stays alive while
///     any view still references it.
class ChunkBuffer {
 public:
  /// Unconsumed bytes (contiguous; everything appended but not consumed).
  std::span<const std::uint8_t> readable() const {
    return {mem_.get() + pos_, size_ - pos_};
  }

  /// Shared anchor for views into readable(); keeps the storage alive.
  std::shared_ptr<const void> owner() const {
    return std::shared_ptr<const void>(mem_, mem_.get());
  }

  void consume(std::size_t n) { pos_ += n; }

  /// Writable tail span of at least `min_bytes` capacity. May swap in a new
  /// chunk (copying the unconsumed tail); `copied_out`, when non-null, is
  /// incremented by the number of bytes such a compaction copied.
  std::span<std::uint8_t> writable(std::size_t min_bytes,
                                   std::uint64_t* copied_out = nullptr) {
    if (cap_ - size_ < min_bytes) {
      std::size_t carry = size_ - pos_;
      std::size_t cap = std::max(carry + min_bytes, default_chunk_);
      // Raw new[]: deliberately uninitialized — recv() fills it.
      std::shared_ptr<std::uint8_t[]> fresh(new std::uint8_t[cap]);
      if (carry > 0) {
        std::memcpy(fresh.get(), mem_.get() + pos_, carry);
        if (copied_out != nullptr) *copied_out += carry;
      }
      mem_ = std::move(fresh);
      cap_ = cap;
      size_ = carry;
      pos_ = 0;
    }
    return {mem_.get() + size_, cap_ - size_};
  }

  /// Publish `n` bytes written into the span returned by writable(). Growth
  /// stays within the chunk's capacity, so the storage (and every
  /// outstanding view into it) never moves.
  void commit(std::size_t n) { size_ += n; }

  std::size_t size() const { return size_ - pos_; }

  void set_default_chunk_size(std::size_t bytes) { default_chunk_ = bytes; }

 private:
  std::shared_ptr<std::uint8_t[]> mem_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;  // bytes appended into the chunk
  std::size_t pos_ = 0;   // bytes consumed off the front
  std::size_t default_chunk_ = 256 * 1024;
};

}  // namespace fsr
