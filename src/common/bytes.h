// Bounds-checked binary reader/writer used by the wire codec.
// Little-endian fixed-width integers plus LEB128-style varints.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fsr {

using Bytes = std::vector<std::uint8_t>;

/// Thrown on malformed input (truncated buffer, oversized length field, ...).
/// Callers at trust boundaries (e.g. the TCP reader) catch this and drop the
/// offending connection instead of crashing.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }

  /// Unsigned LEB128 varint (1..10 bytes).
  void var(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed byte string.
  void bytes(std::span<const std::uint8_t> data) {
    var(data.size());
    raw(data);
  }

  void str(std::string_view s) {
    var(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& view() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  template <typename T>
  void fixed(T v) {
    std::uint8_t tmp[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }

  std::uint64_t var() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw CodecError("varint too long");
      std::uint8_t b = u8();
      // The 10th byte holds only bit 63: anything above it would be
      // silently dropped by the shift, so reject it as malformed rather
      // than decode an aliased value.
      if (shift == 63 && (b & 0x7e) != 0) throw CodecError("varint overflows 64 bits");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  Bytes bytes() {
    std::uint64_t len = var();
    auto s = take(check_len(len));
    return Bytes(s.begin(), s.end());
  }

  std::string str() {
    std::uint64_t len = var();
    auto s = take(check_len(len));
    return std::string(s.begin(), s.end());
  }

  std::span<const std::uint8_t> raw(std::size_t len) { return take(len); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  std::size_t check_len(std::uint64_t len) const {
    if (len > remaining()) throw CodecError("length field exceeds buffer");
    return static_cast<std::size_t>(len);
  }

  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) throw CodecError("truncated buffer");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  T fixed() {
    auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(s[i]) << (8 * i));
    }
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace fsr
