// Fundamental identifier and time types shared by every module.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace fsr {

/// Stable identity of a process (survives view changes).
using NodeId = std::uint32_t;

/// Position of a process in the ring of the current view. Position 0 is the
/// leader/sequencer; positions 1..t are the backups (paper, Fig. 4).
using Position = std::uint32_t;

/// Monotonically increasing view identifier (VSC layer).
using ViewId = std::uint64_t;

/// Independent ordering domain ("shard"). Each group runs its own FSR ring
/// and sequence space over the shared transport; group 0 is the default for
/// single-ring deployments.
using GroupId = std::uint32_t;

/// Global sequence number assigned by the leader (total order).
using GlobalSeq = std::uint64_t;

/// Per-sender local sequence number, used to build unique message ids.
using LocalSeq = std::uint64_t;

inline constexpr NodeId kNoNode = ~NodeId{0};

/// Unique identifier of a TO-broadcast segment: origin process + its local
/// sequence number. Stable across view changes (re-broadcasts reuse the id so
/// duplicates can be suppressed).
struct MsgId {
  NodeId origin = kNoNode;
  LocalSeq lsn = 0;

  friend auto operator<=>(const MsgId&, const MsgId&) = default;
};

std::string to_string(const MsgId& id);

/// Simulated / wall time in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

}  // namespace fsr

template <>
struct std::hash<fsr::MsgId> {
  std::size_t operator()(const fsr::MsgId& id) const noexcept {
    // splitmix-style combine; ids are dense so this is plenty.
    std::uint64_t x = (std::uint64_t{id.origin} << 40) ^ id.lsn;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x * 0x94d049bb133111ebULL);
  }
};
