// Minimal leveled logger. Protocol code logs through this so tests can
// silence it and examples can turn on tracing.
#pragma once

#include <cstdio>
#include <string>

namespace fsr {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_write(LogLevel level, const std::string& msg);

namespace detail {
std::string log_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace fsr

#define FSR_LOG(level, ...)                                              \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::fsr::log_level())) \
      ::fsr::log_write(level, ::fsr::detail::log_format(__VA_ARGS__));   \
  } while (0)

#define FSR_TRACE(...) FSR_LOG(::fsr::LogLevel::kTrace, __VA_ARGS__)
#define FSR_DEBUG(...) FSR_LOG(::fsr::LogLevel::kDebug, __VA_ARGS__)
#define FSR_INFO(...) FSR_LOG(::fsr::LogLevel::kInfo, __VA_ARGS__)
#define FSR_WARN(...) FSR_LOG(::fsr::LogLevel::kWarn, __VA_ARGS__)
#define FSR_ERROR(...) FSR_LOG(::fsr::LogLevel::kError, __VA_ARGS__)
