// Flat sequence-window record storage for the FSR engine hot path.
//
// The engine stores every sequenced message record from the moment the
// sequence number is learned until the record is known delivered by all
// processes (the GC watermark). Live sequence numbers therefore occupy a
// dense, sliding range (all_delivered, highest_sequenced]; a balanced tree
// keyed by sequence number (the old std::map records_/retained_ pair) pays a
// node allocation plus pointer chasing per frame for what is structurally an
// array index. This class stores records in a contiguous power-of-two ring
// buffer indexed by `seq & mask`:
//
//   * the common-case insert writes into an already-constructed slot —
//     no allocation, no rebalancing ("pooled" placement);
//   * lookup and erase are O(1) loads on contiguous memory;
//   * when the live range outgrows the buffer it doubles (records are
//     re-indexed, amortized O(1) per insert) up to `max_slots`;
//   * sequence numbers beyond a maxed-out window fall back gracefully to an
//     ordered overflow map, promoted back into slots as the base advances.
//
// The window replaces BOTH maps: a delivered record simply stays in its slot
// with `delivered = true` (the old code copied it into `retained_`) until
// `prune_through` drops it, so delivery no longer copies records at all.
//
// Not thread-safe; owned by the single-threaded engine event loop.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "proto/wire.h"

namespace fsr {

/// A sequenced message record: everything the engine must keep to deliver
/// the message and to re-export it in a view-change flush.
struct SeqRecord {
  MsgId id;
  FragInfo frag;
  Payload payload;
  GlobalSeq seq = 0;
  bool stable = false;     ///< stored by leader + t backups; may deliver
  bool delivered = false;  ///< delivered locally, retained for recovery
};

class SeqWindow {
 public:
  /// Where an insert landed, for the engine's pooling counters.
  enum class Placement : std::uint8_t {
    kPooled,    ///< reused an existing slot (no allocation)
    kGrown,     ///< triggered a geometric window growth
    kOverflow,  ///< out of window even at max capacity; overflow map
  };

  explicit SeqWindow(std::size_t initial_slots = 64,
                     std::size_t max_slots = std::size_t{1} << 16)
      : max_slots_(round_pow2(max_slots < 2 ? 2 : max_slots)) {
    std::size_t cap = round_pow2(initial_slots < 2 ? 2 : initial_slots);
    if (cap > max_slots_) cap = max_slots_;
    slots_.resize(cap);
  }

  /// Highest sequence number known pruned; stored records all have
  /// `seq > base()`.
  GlobalSeq base() const { return base_; }

  std::size_t size() const { return count_ + overflow_.size(); }
  bool empty() const { return size() == 0; }
  std::size_t slot_capacity() const { return slots_.size(); }
  std::size_t overflow_size() const { return overflow_.size(); }

  SeqRecord* find(GlobalSeq seq) {
    if (in_window(seq)) {
      Slot& s = slots_[index(seq)];
      if (s.used && s.rec.seq == seq) return &s.rec;
    }
    if (!overflow_.empty()) {
      auto it = overflow_.find(seq);
      if (it != overflow_.end()) return &it->second;
    }
    return nullptr;
  }

  const SeqRecord* find(GlobalSeq seq) const {
    return const_cast<SeqWindow*>(this)->find(seq);
  }

  bool contains(GlobalSeq seq) const { return find(seq) != nullptr; }

  /// Store a record at rec.seq. Pre: `rec.seq > base()` and no record is
  /// stored there yet. Pointers returned by find() are invalidated when the
  /// placement is kGrown.
  Placement insert(SeqRecord rec) {
    assert(rec.seq > base_ && "insert below the pruned base");
    assert(!contains(rec.seq) && "duplicate insert");
    bool grew = false;
    while (!in_window(rec.seq) && slots_.size() < max_slots_) {
      grow();
      grew = true;
    }
    if (!in_window(rec.seq)) {
      GlobalSeq seq = rec.seq;
      overflow_.emplace(seq, std::move(rec));
      return Placement::kOverflow;
    }
    GlobalSeq seq = rec.seq;
    Slot& s = slots_[index(seq)];
    s.rec = std::move(rec);
    s.used = true;
    ++count_;
    if (seq > hi_) hi_ = seq;
    return grew ? Placement::kGrown : Placement::kPooled;
  }

  /// Advance the base to `w`, releasing every record with `seq <= w` and
  /// promoting overflow records that now fit back into slots.
  void prune_through(GlobalSeq w) {
    if (w <= base_) return;
    if (count_ > 0) {
      if (w - base_ >= slots_.size()) {
        for (Slot& s : slots_) release(s);
        count_ = 0;
      } else {
        for (GlobalSeq seq = base_ + 1; seq <= w; ++seq) {
          Slot& s = slots_[index(seq)];
          if (s.used && s.rec.seq == seq) {
            release(s);
            --count_;
          }
        }
      }
    }
    base_ = w;
    if (!overflow_.empty()) {
      overflow_.erase(overflow_.begin(), overflow_.upper_bound(w));
      // Promote overflow records that the advanced base brought in range.
      while (!overflow_.empty() && in_window(overflow_.begin()->first)) {
        auto it = overflow_.begin();
        Slot& s = slots_[index(it->first)];
        assert(!s.used);
        s.rec = std::move(it->second);
        s.used = true;
        ++count_;
        overflow_.erase(it);
      }
    }
  }

  /// Drop everything and restart the window at `new_base` (view install).
  void clear(GlobalSeq new_base) {
    for (Slot& s : slots_) release(s);
    count_ = 0;
    overflow_.clear();
    base_ = new_base;
    hi_ = new_base;
  }

  /// Visit every stored record in ascending sequence order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (count_ > 0) {
      GlobalSeq last = hi_ < base_ + slots_.size() ? hi_ : base_ + slots_.size();
      for (GlobalSeq seq = base_ + 1; seq <= last; ++seq) {
        const Slot& s = slots_[index(seq)];
        if (s.used && s.rec.seq == seq) fn(s.rec);
      }
    }
    for (const auto& [seq, rec] : overflow_) fn(rec);
  }

 private:
  struct Slot {
    SeqRecord rec;
    bool used = false;
  };

  static std::size_t round_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  bool in_window(GlobalSeq seq) const {
    return seq > base_ && seq - base_ <= slots_.size();
  }

  std::size_t index(GlobalSeq seq) const {
    return static_cast<std::size_t>(seq) & (slots_.size() - 1);
  }

  /// Release a slot's resources (the payload's backing buffer) but keep the
  /// slot itself constructed for reuse — this is the record pool.
  static void release(Slot& s) {
    s.used = false;
    s.rec.payload = nullptr;
  }

  void grow() {
    std::vector<Slot> bigger(slots_.size() * 2);
    std::size_t mask = bigger.size() - 1;
    for (Slot& s : slots_) {
      if (!s.used) continue;
      Slot& d = bigger[static_cast<std::size_t>(s.rec.seq) & mask];
      d.rec = std::move(s.rec);
      d.used = true;
    }
    slots_ = std::move(bigger);
  }

  std::vector<Slot> slots_;
  std::size_t max_slots_;
  std::map<GlobalSeq, SeqRecord> overflow_;  // seqs beyond a maxed-out window
  GlobalSeq base_ = 0;   // every stored seq is > base_
  GlobalSeq hi_ = 0;     // highest seq ever slotted (iteration bound)
  std::size_t count_ = 0;
};

}  // namespace fsr
