#include "fsr/engine.h"

#include <cassert>

#include "common/log.h"

namespace fsr {

namespace {

/// Split an application payload into segments of at most `segment_size`
/// bytes. An empty payload still yields one (empty) segment so the message
/// exists on the wire.
std::vector<Bytes> split_payload(const Bytes& payload, std::size_t segment_size) {
  std::vector<Bytes> out;
  if (payload.empty()) {
    out.emplace_back();
    return out;
  }
  for (std::size_t off = 0; off < payload.size(); off += segment_size) {
    std::size_t len = std::min(segment_size, payload.size() - off);
    out.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(off),
                     payload.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  return out;
}

}  // namespace

Engine::Engine(Transport& transport, EngineConfig config, View initial_view,
               DeliverFn deliver)
    : transport_(transport),
      cfg_(config),
      deliver_(std::move(deliver)),
      view_(std::move(initial_view)) {
  assert(!view_.members.empty());
  auto pos = view_.position_of(transport_.self());
  assert(pos.has_value() && "this node must be a member of the initial view");
  my_pos_ = *pos;
  topo_ = ring::Topology{view_.size(), ring::effective_t(cfg_.t, view_.size())};
}

Position Engine::origin_position(NodeId origin) const {
  auto pos = view_.position_of(origin);
  assert(pos.has_value());
  return *pos;
}

NodeId Engine::msg_origin(const WireMsg& m) {
  if (const auto* d = std::get_if<DataMsg>(&m)) return d->id.origin;
  if (const auto* s = std::get_if<SeqMsg>(&m)) return s->id.origin;
  return kNoNode;
}

// --- application API ---

void Engine::broadcast(Bytes payload) {
  std::uint64_t app = next_app_id_++;
  auto segments = split_payload(payload, cfg_.segment_size);
  auto count = static_cast<std::uint32_t>(segments.size());
  for (std::uint32_t i = 0; i < count; ++i) {
    DataMsg m;
    m.id = MsgId{transport_.self(), next_lsn_++};
    m.frag = FragInfo{app, i, count};
    m.payload = make_payload(std::move(segments[i]));
    own_queue_.push_back(std::move(m));
  }
  ++pending_own_;
  pump();
}

// --- receive path ---

void Engine::on_msg(const WireMsg& msg) {
  if (frozen_) {
    // Flush in progress. A member that installed the new view before us may
    // already be sending new-view traffic; it must not be lost. Old-view
    // leftovers in the backlog are filtered by the view check on replay.
    if (frozen_backlog_.size() < 100000) frozen_backlog_.push_back(msg);
    return;
  }
  if (const auto* d = std::get_if<DataMsg>(&msg)) {
    handle_data(*d);
  } else if (const auto* s = std::get_if<SeqMsg>(&msg)) {
    handle_seq(*s);
  } else if (const auto* a = std::get_if<AckMsg>(&msg)) {
    handle_ack(*a);
  } else if (const auto* g = std::get_if<GcMsg>(&msg)) {
    handle_gc(*g);
  } else {
    return;  // membership messages are the VSC layer's business
  }
  pump();
}

void Engine::on_tx_ready() { pump(); }

void Engine::handle_data(const DataMsg& m) {
  if (m.view != view_.id) return;
  NodeId origin = m.id.origin;
  if (origin == transport_.self()) return;  // cannot happen on a sane ring
  if (!view_.contains(origin)) return;
  if (auto it = delivered_lsn_.find(origin);
      it != delivered_lsn_.end() && m.id.lsn <= it->second) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (is_leader()) {
    // First come, first served sequencing (paper §4.2.3), with one fairness
    // twist: if we already served this origin since our last own broadcast,
    // one of our own segments may cut in ahead of it.
    if (auto it = sequenced_lsn_.find(origin);
        it != sequenced_lsn_.end() && m.id.lsn <= it->second) {
      ++stats_.duplicates_dropped;
      return;
    }
    if (own_send_allowed() && forward_list_.count(origin) > 0) {
      sequence_own();
    }
    forward_list_.insert(origin);
    sequence(m.id, m.frag, m.payload);
    return;
  }
  if (seq_of_.count(m.id) > 0 || stash_.count(m.id) > 0) {
    ++stats_.duplicates_dropped;
    return;
  }
  // Stash the payload: if the sequence number later arrives via an ack
  // (origin "behind" us in the ring), this copy is what we deliver.
  stash_[m.id] = Stash{m.frag, m.payload};
  out_fifo_.push_back(m);
}

bool Engine::sequence_own() {
  assert(is_leader());
  if (!own_send_allowed()) return false;
  DataMsg m = std::move(own_queue_.front());
  own_queue_.pop_front();
  m.view = view_.id;
  stash_[m.id] = Stash{m.frag, m.payload};
  ++own_in_flight_;
  ++stats_.segments_sent;
  forward_list_.clear();
  sequence(m.id, m.frag, std::move(m.payload));
  return true;
}

void Engine::sequence(const MsgId& id, const FragInfo& frag, Payload payload) {
  assert(is_leader());
  GlobalSeq s = next_seq_++;
  sequenced_lsn_[id.origin] = id.lsn;
  records_[s] = Record{id, frag, payload, s, false};
  seq_of_[id] = s;

  Position opos = origin_position(id.origin);
  Position stop = topo_.seq_stop(opos);
  if (stop != 0) {
    out_fifo_.push_back(SeqMsg{id, s, view_.id, frag, std::move(payload)});
  } else {
    // Empty SEQ pass (origin at position 1, or singleton ring): the leader
    // itself is the SEQ stop and emits the ack.
    switch (topo_.ack_at_seq_stop(opos)) {
      case ring::AckKind::kStable:
        emit_ack(id, s, true);
        break;
      case ring::AckKind::kPending:
        emit_ack(id, s, false);
        break;
      case ring::AckKind::kNone:
        break;
    }
  }
  if (topo_.leader_delivers_at_sequencing()) {
    mark_stable(s);
  }
}

void Engine::handle_seq(const SeqMsg& m) {
  if (m.view != view_.id) return;
  if (m.seq < next_deliver_) {
    ++stats_.duplicates_dropped;
    return;
  }
  auto opos_opt = view_.position_of(m.id.origin);
  if (!opos_opt) return;
  Position opos = *opos_opt;

  if (records_.count(m.seq) == 0) {
    records_[m.seq] = Record{m.id, m.frag, m.payload, m.seq, false};
    seq_of_[m.id] = m.seq;
    stash_.erase(m.id);
  }

  if (my_pos_ != topo_.seq_stop(opos)) {
    out_fifo_.push_back(m);
  } else {
    switch (topo_.ack_at_seq_stop(opos)) {
      case ring::AckKind::kStable:
        emit_ack(m.id, m.seq, true);
        break;
      case ring::AckKind::kPending:
        emit_ack(m.id, m.seq, false);
        break;
      case ring::AckKind::kNone:
        break;
    }
  }

  if (topo_.deliver_on_seq(my_pos_)) {
    // The pair has now been stored by the leader and all t backups.
    mark_stable(m.seq);
  }
}

void Engine::handle_ack(const AckMsg& a) {
  if (a.view != view_.id) return;
  if (a.seq < next_deliver_) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (records_.count(a.seq) == 0) {
    // We hold the payload from the DATA pass (or it is our own message);
    // the ack supplies the sequence number.
    auto sit = stash_.find(a.id);
    if (sit == stash_.end()) {
      FSR_WARN("node %u: ack for unknown %s seq=%llu dropped", transport_.self(),
               to_string(a.id).c_str(), static_cast<unsigned long long>(a.seq));
      return;
    }
    records_[a.seq] = Record{a.id, sit->second.frag, sit->second.payload, a.seq, false};
    seq_of_[a.id] = a.seq;
    stash_.erase(sit);
  }

  if (a.stable) {
    if (my_pos_ != topo_.stable_ack_stop()) pending_ctrl_.push_back(a);
    mark_stable(a.seq);
  } else {
    // Pending acks circulate only among the backups (positions 1..t).
    if (my_pos_ == topo_.pending_ack_stop()) {
      // We are p_t: the pair is now stored by the leader and all backups.
      AckMsg stable = a;
      stable.stable = true;
      if (my_pos_ != topo_.stable_ack_stop()) pending_ctrl_.push_back(stable);
      mark_stable(a.seq);
    } else {
      assert(my_pos_ < topo_.pending_ack_stop());
      pending_ctrl_.push_back(a);
    }
  }
}

void Engine::handle_gc(const GcMsg& g) {
  if (g.view != view_.id) return;
  if (g.all_delivered > all_delivered_) {
    all_delivered_ = g.all_delivered;
    retained_.erase(retained_.begin(), retained_.upper_bound(all_delivered_));
  }
  if (g.hops_left > 1) {
    GcMsg fwd = g;
    --fwd.hops_left;
    pending_ctrl_.push_back(fwd);
  }
}

void Engine::emit_ack(const MsgId& id, GlobalSeq seq, bool stable) {
  pending_ctrl_.push_back(AckMsg{id, seq, view_.id, stable});
  ++stats_.acks_emitted;
}

void Engine::mark_stable(GlobalSeq seq) {
  auto it = records_.find(seq);
  if (it == records_.end()) return;  // already delivered
  it->second.stable = true;
  try_deliver();
}

void Engine::try_deliver() {
  bool delivered_any = false;
  for (;;) {
    auto it = records_.find(next_deliver_);
    if (it == records_.end() || !it->second.stable) break;
    Record rec = std::move(it->second);
    records_.erase(it);
    seq_of_.erase(rec.id);
    ++next_deliver_;
    delivered_any = true;
    deliver_record(rec);
  }
  if (!delivered_any) return;

  // If we are the last-delivering process (the stable-ack stop), our
  // delivered watermark is the all-delivered watermark; circulate it so
  // everyone can prune recovery retention (bounded memory).
  if (my_pos_ == topo_.stable_ack_stop() && view_.size() > 1) {
    GlobalSeq w = next_deliver_ - 1;
    all_delivered_ = w;
    retained_.erase(retained_.begin(), retained_.upper_bound(w));
    if (w >= last_gc_emitted_ + cfg_.gc_interval) {
      last_gc_emitted_ = w;
      pending_ctrl_.push_back(GcMsg{w, view_.id, topo_.n - 1});
    }
  }
}

void Engine::deliver_record(const Record& rec) {
  NodeId origin = rec.id.origin;
  delivered_lsn_[origin] = rec.id.lsn;
  stash_.erase(rec.id);
  retained_[rec.seq] = rec;
  if (origin == transport_.self() && own_in_flight_ > 0) --own_in_flight_;

  ++stats_.segments_delivered;
  stats_.bytes_delivered += payload_size(rec.payload);

  // Single-segment message (the common case below segment_size): the
  // record's payload view is handed to the application as-is — no
  // reassembly copy, the delivery aliases the transport's receive buffer.
  if (rec.frag.count == 1) {
    reasm_.erase(origin);  // drop any stale partial (mid-message join)
    Delivery d;
    d.origin = origin;
    d.app_msg = rec.frag.app_msg;
    d.seq = rec.seq;
    d.view = view_.id;
    d.payload = rec.payload;
    ++stats_.app_delivered;
    if (origin == transport_.self() && pending_own_ > 0) --pending_own_;
    if (deliver_) deliver_(d);
    return;
  }

  // Reassembly: per-origin segments arrive in index order because the leader
  // sequences each origin's stream FIFO. A process that joined mid-message
  // may first see index > 0; it skips until the next message boundary.
  auto& r = reasm_[origin];
  if (rec.frag.index == 0) {
    r = Reassembly{rec.frag.app_msg, 0, {}};
  } else if (r.app_msg != rec.frag.app_msg || r.next_index != rec.frag.index) {
    return;  // mid-message join; drop partial
  }
  if (rec.payload) r.data.insert(r.data.end(), rec.payload.begin(), rec.payload.end());
  ++r.next_index;
  if (r.next_index == rec.frag.count) {
    Delivery d;
    d.origin = origin;
    d.app_msg = rec.frag.app_msg;
    d.seq = rec.seq;
    d.view = view_.id;
    d.payload = make_payload(std::move(r.data));
    r = Reassembly{};
    ++stats_.app_delivered;
    if (origin == transport_.self() && pending_own_ > 0) --pending_own_;
    if (deliver_) deliver_(d);
  }
}

// --- send path ---

std::optional<WireMsg> Engine::pick_next_payload() {
  if (is_leader()) {
    // The leader's outgoing payloads are all SEQ messages, already in fair
    // sequencing order (fairness was applied when sequencing). If the SEQ
    // pipeline is empty, inject an own segment. (A work-conserving leader
    // keeps a modest sequencing advantage over ring senders at saturation;
    // the paper's remedy is periodic leader rotation, §4.3.1.)
    if (out_fifo_.empty() && own_send_allowed()) sequence_own();
    if (out_fifo_.empty()) return std::nullopt;
    WireMsg m = std::move(out_fifo_.front());
    out_fifo_.pop_front();
    return m;
  }

  // Already-sequenced traffic is forwarded unconditionally: delaying the
  // SEQ pass only delays everyone's deliveries. The fairness mechanism
  // (§4.2.3, Fig. 5) arbitrates the *incoming buffer* of DATA messages
  // still traveling toward the sequencer against our own broadcasts.
  for (auto it = out_fifo_.begin(); it != out_fifo_.end(); ++it) {
    if (std::holds_alternative<SeqMsg>(*it)) {
      WireMsg m = std::move(*it);
      out_fifo_.erase(it);
      return m;
    }
    break;  // head is DATA: fairness decides below
  }

  if (own_send_allowed()) {
    // Fairness (§4.2.3): before sending an own segment, forward buffered
    // DATA from every origin not yet in the forward list. Overtaking a
    // forward-listed origin's message is safe: delivery is strictly by
    // global sequence number, so forwarding order only affects fairness.
    for (auto it = out_fifo_.begin(); it != out_fifo_.end(); ++it) {
      NodeId origin = msg_origin(*it);
      if (forward_list_.count(origin) > 0) continue;
      WireMsg m = std::move(*it);
      out_fifo_.erase(it);
      forward_list_.insert(origin);
      return m;
    }
    // Everyone buffered has been served since our last own send: our turn.
    DataMsg m = std::move(own_queue_.front());
    own_queue_.pop_front();
    m.view = view_.id;
    stash_[m.id] = Stash{m.frag, m.payload};
    ++own_in_flight_;
    ++stats_.segments_sent;
    forward_list_.clear();
    return WireMsg{std::move(m)};
  }

  if (!out_fifo_.empty()) {
    WireMsg m = std::move(out_fifo_.front());
    out_fifo_.pop_front();
    forward_list_.insert(msg_origin(m));
    return m;
  }
  return std::nullopt;
}

void Engine::pump() {
  if (frozen_ || in_pump_) return;
  if (view_.size() <= 1) {
    // Singleton group: sequencing and delivery happen locally.
    while (!own_queue_.empty()) {
      DataMsg m = std::move(own_queue_.front());
      own_queue_.pop_front();
      m.view = view_.id;
      stash_[m.id] = Stash{m.frag, m.payload};
      ++stats_.segments_sent;
      sequence(m.id, m.frag, std::move(m.payload));
    }
    pending_ctrl_.clear();
    return;
  }
  // Fill the transport's accept window: assemble frames while it can take
  // them (on_tx_ready resumes us when capacity frees up again).
  in_pump_ = true;
  while (!frozen_ && transport_.tx_idle()) {
    Frame f;
    f.from = transport_.self();
    f.to = successor();

    if (!cfg_.piggyback_acks) {
      // Ablation: every ack/gc is its own frame (paper §4.2.2 argues
      // piggybacking is what lets the payload circle the ring only once).
      if (!pending_ctrl_.empty()) {
        f.msgs.push_back(std::move(pending_ctrl_.front()));
        pending_ctrl_.pop_front();
        ++stats_.ack_only_frames;
      } else if (auto m = pick_next_payload()) {
        f.msgs.push_back(std::move(*m));
      } else {
        break;
      }
    } else {
      auto m = pick_next_payload();
      bool have_payload = m.has_value();
      if (m) f.msgs.push_back(std::move(*m));
      std::size_t k = std::min(pending_ctrl_.size(), cfg_.max_acks_per_frame);
      for (std::size_t i = 0; i < k; ++i) {
        f.msgs.push_back(std::move(pending_ctrl_.front()));
        pending_ctrl_.pop_front();
        if (have_payload) ++stats_.acks_piggybacked;
      }
      if (f.msgs.empty()) break;
      if (!have_payload) ++stats_.ack_only_frames;
    }

    ++stats_.frames_sent;
    transport_.send(std::move(f));
  }
  in_pump_ = false;
}

// --- VSC recovery (§4.2.1) ---

Bytes Engine::collect_flush_state(bool include_snapshot) {
  freeze();
  ByteWriter w;
  w.var(next_deliver_ - 1);  // delivered watermark

  // Every sequenced pair we store: undelivered records plus the retained
  // delivered ones not yet known delivered-by-all.
  w.var(records_.size() + retained_.size());
  auto put_record = [&w](const Record& r) {
    w.u32(r.id.origin);
    w.var(r.id.lsn);
    w.var(r.seq);
    w.var(r.frag.app_msg);
    w.var(r.frag.index);
    w.var(r.frag.count);
    if (r.payload) {
      w.bytes(r.payload.span());
    } else {
      w.var(0);
    }
  };
  for (const auto& [seq, rec] : retained_) put_record(rec);
  for (const auto& [seq, rec] : records_) put_record(rec);
  if (include_snapshot && snapshot_take_) {
    w.u8(1);
    w.bytes(snapshot_take_());
  } else {
    w.u8(0);
  }
  FSR_DEBUG("node %u flush state: view %llu watermark %llu, %zu retained [%llu..%llu], %zu records [%llu..%llu]",
            transport_.self(), (unsigned long long)view_.id,
            (unsigned long long)(next_deliver_ - 1), retained_.size(),
            retained_.empty() ? 0ULL : (unsigned long long)retained_.begin()->first,
            retained_.empty() ? 0ULL : (unsigned long long)retained_.rbegin()->first,
            records_.size(),
            records_.empty() ? 0ULL : (unsigned long long)records_.begin()->first,
            records_.empty() ? 0ULL : (unsigned long long)records_.rbegin()->first);
  return w.take();
}

void Engine::stage_recovery_states(const std::vector<Bytes>& states) {
  for (const auto& blob : states) {
    if (blob.empty()) continue;
    try {
      ByteReader r(blob);
      (void)r.var();  // watermark
      std::uint64_t count = r.var();
      for (std::uint64_t i = 0; i < count; ++i) {
        Record rec;
        rec.id.origin = r.u32();
        rec.id.lsn = r.var();
        rec.seq = r.var();
        rec.frag.app_msg = r.var();
        rec.frag.index = static_cast<std::uint32_t>(r.var());
        rec.frag.count = static_cast<std::uint32_t>(r.var());
        Bytes p = r.bytes();
        rec.payload = p.empty() ? nullptr : make_payload(std::move(p));
        rec.stable = false;  // staged, NOT deliverable yet
        if (rec.seq >= next_deliver_ && records_.count(rec.seq) == 0) {
          seq_of_[rec.id] = rec.seq;
          records_.emplace(rec.seq, std::move(rec));
        }
      }
    } catch (const CodecError& e) {
      FSR_ERROR("node %u: corrupted staged state ignored: %s", transport_.self(),
                e.what());
    }
  }
}

void Engine::install_view(const View& view, const std::vector<Bytes>& states) {
  assert(view.id > view_.id);
  auto my_new_pos = view.position_of(transport_.self());
  assert(my_new_pos.has_value() && "cannot install a view we are not part of");

  ++stats_.view_changes;
  const bool was_member = view_.id != 0;

  // 1. Merge all members' flush states.
  GlobalSeq max_watermark = 0;
  std::map<GlobalSeq, Record> merged;
  Bytes snapshot;
  bool have_snapshot = false;
  GlobalSeq snapshot_watermark = 0;
  for (const auto& blob : states) {
    if (blob.empty()) continue;  // fresh joiner
    try {
      ByteReader r(blob);
      GlobalSeq watermark = r.var();
      max_watermark = std::max(max_watermark, watermark);
      std::uint64_t count = r.var();
      for (std::uint64_t i = 0; i < count; ++i) {
        Record rec;
        rec.id.origin = r.u32();
        rec.id.lsn = r.var();
        rec.seq = r.var();
        rec.frag.app_msg = r.var();
        rec.frag.index = static_cast<std::uint32_t>(r.var());
        rec.frag.count = static_cast<std::uint32_t>(r.var());
        Bytes p = r.bytes();
        rec.payload = p.empty() ? nullptr : make_payload(std::move(p));
        rec.stable = true;  // agreed by the whole new view => stable
        merged.emplace(rec.seq, std::move(rec));
      }
      if (!r.done() && r.u8() != 0) {
        // Prefer the freshest snapshot (highest watermark).
        Bytes snap = r.bytes();
        if (!have_snapshot || watermark > snapshot_watermark) {
          snapshot = std::move(snap);
          snapshot_watermark = watermark;
          have_snapshot = true;
        }
      }
    } catch (const CodecError& e) {
      // A truncated/corrupted blob must not take the process down; the
      // records parsed before the error still contribute to the union.
      FSR_ERROR("node %u: corrupted flush state ignored: %s", transport_.self(),
                e.what());
    }
  }

  GlobalSeq horizon =
      std::max(max_watermark, merged.empty() ? 0 : merged.rbegin()->first);
  FSR_DEBUG("node %u installing view %llu: merged %zu [%llu..%llu], max_watermark %llu, horizon %llu, my next_deliver %llu",
            transport_.self(), (unsigned long long)view.id, merged.size(),
            merged.empty() ? 0ULL : (unsigned long long)merged.begin()->first,
            merged.empty() ? 0ULL : (unsigned long long)merged.rbegin()->first,
            (unsigned long long)max_watermark, (unsigned long long)horizon,
            (unsigned long long)next_deliver_);

  if (!was_member && next_deliver_ == 1) {
    if (have_snapshot && snapshot_install_) {
      // State transfer: adopt a member's application state as of its
      // delivered watermark, then replay the union from there.
      snapshot_install_(snapshot);
      next_deliver_ = snapshot_watermark + 1;
    } else {
      // No snapshot: the joiner starts at the group's current horizon
      // rather than replaying from sequence 1.
      next_deliver_ = max_watermark + 1;
    }
  }

  // 2. Deliver every merged pair we have not yet delivered, in sequence
  //    order. Any pair delivered by a crashed process was stored by the
  //    leader + t backups, at least one of which survived and reported it,
  //    so it appears here — this is what makes delivery uniform.
  //
  //    The union can have a hole: a message whose origin sat at ring
  //    position 1 has an empty SEQ pass, so its (m, seq) pair lives only at
  //    the leader until the pending ack propagates — if the leader crashes
  //    in that window, the sequence number dies with it. Nothing at or
  //    beyond a hole was delivered by anyone (holes only occur above every
  //    watermark), so those sequence numbers are abandoned — consistently,
  //    since all members process the same union — and each affected message
  //    is re-broadcast by its origin in the new view.
  std::map<LocalSeq, DataMsg> rebroadcast;
  bool gapped = false;
  for (auto& [seq, rec] : merged) {
    if (seq < next_deliver_) continue;
    if (!gapped && seq == next_deliver_) {
      ++next_deliver_;
      deliver_record(rec);
      continue;
    }
    if (!gapped) {
      gapped = true;
      FSR_INFO("node %u: recovery union hole at seq %llu (expected %llu); "
               "orphaned messages will be re-broadcast by their origins",
               transport_.self(), static_cast<unsigned long long>(seq),
               static_cast<unsigned long long>(next_deliver_));
    }
    if (rec.id.origin == transport_.self()) {
      DataMsg m;
      m.id = rec.id;
      m.frag = rec.frag;
      m.payload = rec.payload;
      rebroadcast.emplace(rec.id.lsn, std::move(m));
    }
  }

  // 3. Collect own messages broadcast but not delivered (paper: "All
  //    processes TO-broadcast any message in view v_r+1 that they have
  //    TO-broadcast in view v_r but not yet TO-delivered in v_r").
  //    Sequenced-but-undelivered own messages were either delivered through
  //    the union above or orphaned into `rebroadcast`; the stash holds the
  //    ones whose sequence number we never learned.
  LocalSeq own_delivered = 0;
  if (auto it = delivered_lsn_.find(transport_.self()); it != delivered_lsn_.end()) {
    own_delivered = it->second;
  }
  for (const auto& [id, st] : stash_) {
    if (id.origin != transport_.self() || id.lsn <= own_delivered) continue;
    DataMsg m;
    m.id = id;
    m.frag = st.frag;
    m.payload = st.payload;
    rebroadcast.emplace(id.lsn, std::move(m));
  }

  // 4. Reset per-view state.
  view_ = view;
  my_pos_ = *my_new_pos;
  topo_ = ring::Topology{view_.size(), ring::effective_t(cfg_.t, view_.size())};
  out_fifo_.clear();
  forward_list_.clear();
  pending_ctrl_.clear();
  records_.clear();
  seq_of_.clear();
  stash_.clear();
  retained_.clear();
  all_delivered_ = 0;
  last_gc_emitted_ = 0;
  own_in_flight_ = 0;
  next_deliver_ = std::max(next_deliver_, horizon + 1);
  next_seq_ = next_deliver_;
  sequenced_lsn_ = delivered_lsn_;
  // Reassembly buffers of departed members can never complete.
  for (auto it = reasm_.begin(); it != reasm_.end();) {
    if (!view_.contains(it->first)) {
      it = reasm_.erase(it);
    } else {
      ++it;
    }
  }

  // 5. Requeue own undelivered messages ahead of anything not yet sent.
  for (auto rit = rebroadcast.rbegin(); rit != rebroadcast.rend(); ++rit) {
    own_queue_.push_front(std::move(rit->second));
  }

  frozen_ = false;

  // Replay traffic that arrived during the flush (new-view messages from
  // members that resumed before us; stale ones are dropped by view checks).
  std::deque<WireMsg> backlog;
  backlog.swap(frozen_backlog_);
  for (const auto& msg : backlog) on_msg(msg);

  pump();
}

}  // namespace fsr
