#include "fsr/engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "common/log.h"

namespace fsr {

Engine::Engine(Transport& transport, EngineConfig config, View initial_view,
               DeliverFn deliver)
    : transport_(transport),
      cfg_(config),
      deliver_(std::move(deliver)),
      view_(std::move(initial_view)),
      window_(config.window_slots, config.max_window_slots) {
  assert(!view_.members.empty());
  auto pos = view_.position_of(transport_.self());
  assert(pos.has_value() && "this node must be a member of the initial view");
  my_pos_ = *pos;
  topo_ = ring::Topology{view_.size(), ring::effective_t(cfg_.t, view_.size())};
}

Position Engine::origin_position(NodeId origin) const {
  auto pos = view_.position_of(origin);
  assert(pos.has_value());
  return *pos;
}

NodeId Engine::msg_origin(const WireMsg& m) {
  if (const auto* d = std::get_if<DataMsg>(&m)) return d->id.origin;
  if (const auto* s = std::get_if<SeqMsg>(&m)) return s->id.origin;
  return kNoNode;
}

void Engine::store_record(SeqRecord rec) {
  switch (window_.insert(std::move(rec))) {
    case SeqWindow::Placement::kPooled:
      ++counters_.records_pooled;
      break;
    case SeqWindow::Placement::kGrown:
      ++counters_.records_allocated;
      ++counters_.window_grows;
      break;
    case SeqWindow::Placement::kOverflow:
      ++counters_.records_allocated;
      ++counters_.out_of_window;
      break;
  }
}

// --- application API ---

void Engine::broadcast(Payload whole) {
  std::uint64_t app = next_app_id_++;
  // Segmentation is zero-copy: one refcounted buffer, aliasing sub-views.
  std::uint32_t count = segment_count(whole.size(), cfg_.segment_size);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto [off, len] = segment_bounds(whole.size(), cfg_.segment_size, i);
    DataMsg m;
    m.id = MsgId{transport_.self(), next_lsn_++};
    m.frag = FragInfo{app, i, count};
    m.payload = whole.sub(off, len);
    own_queue_.push_back(std::move(m));
  }
  ++pending_own_;
  pump();
}

// --- receive path ---

void Engine::on_msg(const WireMsg& msg) {
  if (frozen_) {
    // Flush in progress. A member that installed the new view before us may
    // already be sending new-view traffic; it must not be lost. Old-view
    // leftovers in the backlog are filtered by the view check on replay.
    if (frozen_backlog_.size() < 100000) frozen_backlog_.push_back(msg);
    return;
  }
  if (const auto* d = std::get_if<DataMsg>(&msg)) {
    handle_data(*d);
  } else if (const auto* s = std::get_if<SeqMsg>(&msg)) {
    handle_seq(*s);
  } else if (const auto* a = std::get_if<AckMsg>(&msg)) {
    handle_ack(*a);
  } else if (const auto* g = std::get_if<GcMsg>(&msg)) {
    handle_gc(*g);
  } else {
    return;  // membership messages are the VSC layer's business
  }
  pump();
}

void Engine::on_tx_ready() { pump(); }

void Engine::handle_data(const DataMsg& m) {
  if (m.view != view_.id) return;
  NodeId origin = m.id.origin;
  if (origin == transport_.self()) return;  // cannot happen on a sane ring
  if (!view_.contains(origin)) return;
  if (auto it = delivered_lsn_.find(origin);
      it != delivered_lsn_.end() && m.id.lsn <= it->second) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (is_leader()) {
    // First come, first served sequencing (paper §4.2.3), with one fairness
    // twist: if we already served this origin since our last own broadcast,
    // one of our own segments may cut in ahead of it.
    if (auto it = sequenced_lsn_.find(origin);
        it != sequenced_lsn_.end() && m.id.lsn <= it->second) {
      ++stats_.duplicates_dropped;
      return;
    }
    if (own_send_allowed() && forward_list_.count(origin) > 0) {
      sequence_own();
    }
    forward_list_.insert(origin);
    sequence(m.id, m.frag, m.payload);
    return;
  }
  if (seq_of_.count(m.id) > 0 || stash_.count(m.id) > 0) {
    ++stats_.duplicates_dropped;
    return;
  }
  // Stash the payload: if the sequence number later arrives via an ack
  // (origin "behind" us in the ring), this copy is what we deliver.
  stash_[m.id] = Stash{m.frag, m.payload};
  push_out(origin, m);
}

bool Engine::sequence_own() {
  assert(is_leader());
  if (!own_send_allowed()) return false;
  DataMsg m = std::move(own_queue_.front());
  own_queue_.pop_front();
  m.view = view_.id;
  stash_[m.id] = Stash{m.frag, m.payload};
  ++own_in_flight_;
  ++stats_.segments_sent;
  forward_list_.clear();
  sequence(m.id, m.frag, std::move(m.payload));
  return true;
}

void Engine::sequence(const MsgId& id, const FragInfo& frag, Payload payload) {
  assert(is_leader());
  GlobalSeq s = next_seq_++;
  sequenced_lsn_[id.origin] = id.lsn;
  store_record(SeqRecord{id, frag, payload, s, false, false});
  seq_of_[id] = s;

  Position opos = origin_position(id.origin);
  Position stop = topo_.seq_stop(opos);
  if (stop != 0) {
    push_out(id.origin, SeqMsg{id, s, view_.id, frag, std::move(payload)});
  } else {
    // Empty SEQ pass (origin at position 1, or singleton ring): the leader
    // itself is the SEQ stop and emits the ack.
    switch (topo_.ack_at_seq_stop(opos)) {
      case ring::AckKind::kStable:
        emit_ack(id, s, true);
        break;
      case ring::AckKind::kPending:
        emit_ack(id, s, false);
        break;
      case ring::AckKind::kNone:
        break;
    }
  }
  if (topo_.leader_delivers_at_sequencing()) {
    mark_stable(s);
  }
}

void Engine::handle_seq(const SeqMsg& m) {
  if (m.view != view_.id) return;
  if (m.seq < next_deliver_) {
    ++stats_.duplicates_dropped;
    return;
  }
  auto opos_opt = view_.position_of(m.id.origin);
  if (!opos_opt) return;
  Position opos = *opos_opt;

  if (!window_.contains(m.seq)) {
    store_record(SeqRecord{m.id, m.frag, m.payload, m.seq, false, false});
    seq_of_[m.id] = m.seq;
    stash_.erase(m.id);
  }

  if (my_pos_ != topo_.seq_stop(opos)) {
    push_out(m.id.origin, m);
  } else {
    switch (topo_.ack_at_seq_stop(opos)) {
      case ring::AckKind::kStable:
        emit_ack(m.id, m.seq, true);
        break;
      case ring::AckKind::kPending:
        emit_ack(m.id, m.seq, false);
        break;
      case ring::AckKind::kNone:
        break;
    }
  }

  if (topo_.deliver_on_seq(my_pos_)) {
    // The pair has now been stored by the leader and all t backups.
    mark_stable(m.seq);
  }
}

void Engine::handle_ack(const AckMsg& a) {
  if (a.view != view_.id) return;
  if (a.seq < next_deliver_) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (!window_.contains(a.seq)) {
    // We hold the payload from the DATA pass (or it is our own message);
    // the ack supplies the sequence number.
    auto sit = stash_.find(a.id);
    if (sit == stash_.end()) {
      FSR_WARN("node %u: ack for unknown %s seq=%llu dropped", transport_.self(),
               to_string(a.id).c_str(), static_cast<unsigned long long>(a.seq));
      return;
    }
    store_record(
        SeqRecord{a.id, sit->second.frag, sit->second.payload, a.seq, false, false});
    seq_of_[a.id] = a.seq;
    stash_.erase(sit);
  }

  if (a.stable) {
    if (my_pos_ != topo_.stable_ack_stop()) pending_acks_.push_back(a);
    mark_stable(a.seq);
  } else {
    // Pending acks circulate only among the backups (positions 1..t).
    if (my_pos_ == topo_.pending_ack_stop()) {
      // We are p_t: the pair is now stored by the leader and all backups.
      AckMsg stable = a;
      stable.stable = true;
      if (my_pos_ != topo_.stable_ack_stop()) pending_acks_.push_back(stable);
      mark_stable(a.seq);
    } else {
      assert(my_pos_ < topo_.pending_ack_stop());
      pending_acks_.push_back(a);
    }
  }
}

void Engine::handle_gc(const GcMsg& g) {
  if (g.view != view_.id) return;
  if (g.all_delivered > all_delivered_) {
    all_delivered_ = g.all_delivered;
    // Prune only what we have delivered ourselves: a watermark ahead of our
    // own progress (corrupt or reordered GC) must not drop undelivered
    // records — the old split retained_/records_ maps got this for free.
    window_.prune_through(std::min(all_delivered_, next_deliver_ - 1));
  }
  if (g.hops_left > 1) {
    GcMsg fwd = g;
    --fwd.hops_left;
    queue_gc(fwd);
  }
}

void Engine::emit_ack(const MsgId& id, GlobalSeq seq, bool stable) {
  pending_acks_.push_back(AckMsg{id, seq, view_.id, stable});
  ++stats_.acks_emitted;
}

void Engine::queue_gc(const GcMsg& g) {
  // One pending GC slot: a newer watermark subsumes an unsent older one
  // (same view, same remaining path), so coalescing loses nothing.
  if (pending_gc_) {
    ++counters_.gc_coalesced;
    if (g.all_delivered <= pending_gc_->all_delivered) return;
  }
  pending_gc_ = g;
}

void Engine::mark_stable(GlobalSeq seq) {
  SeqRecord* rec = window_.find(seq);
  if (rec == nullptr || rec->delivered) return;  // already delivered
  rec->stable = true;
  try_deliver();
}

void Engine::try_deliver() {
  bool delivered_any = false;
  while (true) {
    SeqRecord* rec = window_.find(next_deliver_);
    if (rec == nullptr || !rec->stable || rec->delivered) break;
    // The record stays in its slot (retained for recovery until the GC
    // watermark passes it); copy out what delivery needs first — the
    // delivery callback may reenter broadcast() and grow the window,
    // invalidating `rec`.
    rec->delivered = true;
    MsgId id = rec->id;
    FragInfo frag = rec->frag;
    GlobalSeq seq = rec->seq;
    Payload payload = rec->payload;
    seq_of_.erase(id);
    ++next_deliver_;
    delivered_any = true;
    deliver_segment(id, frag, seq, payload);
  }
  if (!delivered_any) return;

  // If we are the last-delivering process (the stable-ack stop), our
  // delivered watermark is the all-delivered watermark; circulate it so
  // everyone can prune recovery retention (bounded memory). In a singleton
  // group we are trivially the last deliverer: prune locally, nothing to
  // circulate.
  if (my_pos_ == topo_.stable_ack_stop()) {
    GlobalSeq w = next_deliver_ - 1;
    all_delivered_ = w;
    window_.prune_through(w);
    if (view_.size() > 1 && w >= last_gc_emitted_ + cfg_.gc_interval) {
      last_gc_emitted_ = w;
      queue_gc(GcMsg{w, view_.id, topo_.n - 1});
    }
  }
}

void Engine::deliver_segment(const MsgId& id, const FragInfo& frag,
                             GlobalSeq seq, const Payload& payload) {
  NodeId origin = id.origin;
  delivered_lsn_[origin] = id.lsn;
  stash_.erase(id);
  if (origin == transport_.self() && own_in_flight_ > 0) --own_in_flight_;

  ++stats_.segments_delivered;
  stats_.bytes_delivered += payload_size(payload);

  // Single-segment message (the common case below segment_size): the
  // record's payload view is handed to the application as-is — no
  // reassembly copy, the delivery aliases the transport's receive buffer.
  if (frag.count == 1) {
    reasm_.erase(origin);  // drop any stale partial (mid-message join)
    Delivery d;
    d.group = cfg_.group;
    d.origin = origin;
    d.app_msg = frag.app_msg;
    d.seq = seq;
    d.view = view_.id;
    d.payload = payload;
    ++stats_.app_delivered;
    if (origin == transport_.self() && pending_own_ > 0) --pending_own_;
    if (deliver_) deliver_(d);
    return;
  }

  // Reassembly: per-origin segments arrive in index order because the leader
  // sequences each origin's stream FIFO. A process that joined mid-message
  // may first see index > 0; it skips until the next message boundary.
  // Segment views are gathered without copying; the output buffer is
  // materialized exactly once, when the final segment arrives.
  auto& r = reasm_[origin];
  if (frag.index == 0) {
    r.app_msg = frag.app_msg;
    r.next_index = 0;
    r.parts.clear();
    r.bytes = 0;
  } else if (r.app_msg != frag.app_msg || r.next_index != frag.index) {
    return;  // mid-message join; drop partial
  }
  if (payload) {
    r.parts.push_back(payload);
    r.bytes += payload.size();
  }
  ++r.next_index;
  if (r.next_index == frag.count) {
    Bytes data(r.bytes);
    std::size_t off = 0;
    for (const Payload& p : r.parts) {
      if (p.empty()) continue;
      std::memcpy(data.data() + off, p.data(), p.size());
      off += p.size();
    }
    counters_.reassembly_copies += r.parts.size();
    counters_.reassembly_bytes += r.bytes;
    Delivery d;
    d.group = cfg_.group;
    d.origin = origin;
    d.app_msg = frag.app_msg;
    d.seq = seq;
    d.view = view_.id;
    d.payload = make_payload(std::move(data));
    r = Reassembly{};
    ++stats_.app_delivered;
    if (origin == transport_.self() && pending_own_ > 0) --pending_own_;
    if (deliver_) deliver_(d);
  }
}

// --- send path ---

void Engine::push_out(NodeId origin, WireMsg msg) {
  out_queues_[origin].push_back(OutMsg{next_arrival_++, std::move(msg)});
  ++out_count_;
}

std::deque<Engine::OutMsg>* Engine::min_out_queue(bool skip_forward_listed,
                                                  NodeId* origin) {
  // A min over at most ring-size queue fronts — this is the "index" that
  // replaces the old linear FIFO scan (the scan visited every queued
  // message; this visits every origin once).
  std::deque<OutMsg>* best = nullptr;
  std::uint64_t best_arrival = 0;
  for (auto& [node, q] : out_queues_) {
    if (q.empty()) continue;
    if (skip_forward_listed && forward_list_.count(node) > 0) continue;
    if (best == nullptr || q.front().arrival < best_arrival) {
      best = &q;
      best_arrival = q.front().arrival;
      *origin = node;
    }
  }
  return best;
}

WireMsg Engine::pop_out(std::deque<OutMsg>& q) {
  WireMsg m = std::move(q.front().msg);
  q.pop_front();
  --out_count_;
  return m;
}

std::optional<WireMsg> Engine::pick_next_payload() {
  NodeId origin = kNoNode;
  if (is_leader()) {
    // The leader's outgoing payloads are all SEQ messages, already in fair
    // sequencing order (fairness was applied when sequencing). If the SEQ
    // pipeline is empty, inject an own segment. (A work-conserving leader
    // keeps a modest sequencing advantage over ring senders at saturation;
    // the paper's remedy is periodic leader rotation, §4.3.1.)
    if (out_count_ == 0 && own_send_allowed()) sequence_own();
    std::deque<OutMsg>* q = min_out_queue(false, &origin);
    if (q == nullptr) return std::nullopt;
    return pop_out(*q);
  }

  // Already-sequenced traffic at the head of the line is forwarded
  // unconditionally: delaying the SEQ pass only delays everyone's
  // deliveries. The fairness mechanism (§4.2.3, Fig. 5) arbitrates the
  // *incoming buffer* of DATA messages still traveling toward the sequencer
  // against our own broadcasts.
  std::deque<OutMsg>* head = min_out_queue(false, &origin);
  if (head != nullptr && std::holds_alternative<SeqMsg>(head->front().msg)) {
    return pop_out(*head);
  }

  if (own_send_allowed()) {
    // Fairness (§4.2.3): before sending an own segment, forward buffered
    // traffic from every origin not yet in the forward list. Overtaking a
    // forward-listed origin's message is safe: delivery is strictly by
    // global sequence number, so forwarding order only affects fairness.
    if (std::deque<OutMsg>* q = min_out_queue(true, &origin)) {
      forward_list_.insert(origin);
      return pop_out(*q);
    }
    // Everyone buffered has been served since our last own send: our turn.
    DataMsg m = std::move(own_queue_.front());
    own_queue_.pop_front();
    m.view = view_.id;
    stash_[m.id] = Stash{m.frag, m.payload};
    ++own_in_flight_;
    ++stats_.segments_sent;
    forward_list_.clear();
    return WireMsg{std::move(m)};
  }

  if (head != nullptr) {
    forward_list_.insert(origin);
    return pop_out(*head);
  }
  return std::nullopt;
}

void Engine::pump() {
  if (frozen_ || in_pump_) return;
  if (view_.size() <= 1) {
    // Singleton group: sequencing and delivery happen locally.
    while (!own_queue_.empty()) {
      DataMsg m = std::move(own_queue_.front());
      own_queue_.pop_front();
      m.view = view_.id;
      stash_[m.id] = Stash{m.frag, m.payload};
      ++stats_.segments_sent;
      sequence(m.id, m.frag, std::move(m.payload));
    }
    clear_pending_ctrl();
    return;
  }
  // Fill the transport's accept window: assemble frames while it can take
  // them (on_tx_ready resumes us when capacity frees up again).
  in_pump_ = true;
  while (!frozen_ && transport_.tx_idle()) {
    Frame f;
    f.from = transport_.self();
    f.to = successor();

    if (!cfg_.piggyback_acks) {
      // Ablation: every ack/gc is its own frame (paper §4.2.2 argues
      // piggybacking is what lets the payload circle the ring only once).
      if (pending_ctrl_count() > 0) {
        f.msgs.push_back(pop_pending_ctrl());
        ++stats_.ack_only_frames;
        ++counters_.piggyback_misses;
      } else if (auto m = pick_next_payload()) {
        f.msgs.push_back(std::move(*m));
      } else {
        break;
      }
    } else {
      auto m = pick_next_payload();
      bool have_payload = m.has_value();
      if (m) f.msgs.push_back(std::move(*m));
      for (std::size_t i = 1; have_payload && i < cfg_.max_payloads_per_frame;
           ++i) {
        auto extra = pick_next_payload();
        if (!extra) break;
        f.msgs.push_back(std::move(*extra));
      }
      if (!have_payload && !ack_flush_now_ && cfg_.ack_flush_delay > 0 &&
          pending_ctrl_count() > 0) {
        // No payload to ride right now; under load one is usually a frame
        // away. Hold the acks briefly instead of burning an ack-only frame.
        arm_ack_flush();
        break;
      }
      std::size_t k = std::min(pending_ctrl_count(), cfg_.max_acks_per_frame);
      for (std::size_t i = 0; i < k; ++i) {
        f.msgs.push_back(pop_pending_ctrl());
        if (have_payload) {
          ++stats_.acks_piggybacked;
          ++counters_.piggyback_hits;
        } else {
          ++counters_.piggyback_misses;
        }
      }
      if (f.msgs.empty()) break;
      if (!have_payload) ++stats_.ack_only_frames;
    }

    ++stats_.frames_sent;
    transport_.send(std::move(f));
  }
  in_pump_ = false;
}

void Engine::arm_ack_flush() {
  if (ack_flush_armed_) return;
  ack_flush_armed_ = true;
  transport_.set_timer(cfg_.ack_flush_delay, [this] {
    ack_flush_armed_ = false;
    if (frozen_ || pending_ctrl_count() == 0) return;
    ack_flush_now_ = true;
    pump();
    ack_flush_now_ = false;
  });
}

WireMsg Engine::pop_pending_ctrl() {
  if (!pending_acks_.empty()) {
    WireMsg m{pending_acks_.front()};
    pending_acks_.pop_front();
    return m;
  }
  assert(pending_gc_.has_value());
  WireMsg m{*pending_gc_};
  pending_gc_.reset();
  return m;
}

// --- VSC recovery (§4.2.1) ---

Bytes Engine::collect_flush_state(bool include_snapshot) {
  freeze();
  ByteWriter w;
  w.var(next_deliver_ - 1);  // delivered watermark

  // Every sequenced pair we store. The window iterates in ascending
  // sequence order, which reproduces the old encoding exactly: delivered-
  // retained records (seq < next_deliver_) first, undelivered ones after.
  w.var(window_.size());
  window_.for_each([&w](const SeqRecord& r) {
    w.u32(r.id.origin);
    w.var(r.id.lsn);
    w.var(r.seq);
    w.var(r.frag.app_msg);
    w.var(r.frag.index);
    w.var(r.frag.count);
    if (r.payload) {
      w.bytes(r.payload.span());
    } else {
      w.var(0);
    }
  });
  if (include_snapshot && snapshot_take_) {
    w.u8(1);
    w.bytes(snapshot_take_());
  } else {
    w.u8(0);
  }
  FSR_DEBUG("node %u flush state: view %llu watermark %llu, %zu records, base %llu",
            transport_.self(), (unsigned long long)view_.id,
            (unsigned long long)(next_deliver_ - 1), window_.size(),
            (unsigned long long)window_.base());
  return w.take();
}

void Engine::stage_recovery_states(const std::vector<Bytes>& states) {
  for (const auto& blob : states) {
    if (blob.empty()) continue;
    try {
      ByteReader r(blob);
      (void)r.var();  // watermark
      std::uint64_t count = r.var();
      for (std::uint64_t i = 0; i < count; ++i) {
        SeqRecord rec;
        rec.id.origin = r.u32();
        rec.id.lsn = r.var();
        rec.seq = r.var();
        rec.frag.app_msg = r.var();
        rec.frag.index = static_cast<std::uint32_t>(r.var());
        rec.frag.count = static_cast<std::uint32_t>(r.var());
        Bytes p = r.bytes();
        rec.payload = p.empty() ? nullptr : make_payload(std::move(p));
        rec.stable = false;  // staged, NOT deliverable yet
        if (rec.seq >= next_deliver_ && !window_.contains(rec.seq)) {
          seq_of_[rec.id] = rec.seq;
          store_record(std::move(rec));
        }
      }
    } catch (const CodecError& e) {
      FSR_ERROR("node %u: corrupted staged state ignored: %s", transport_.self(),
                e.what());
    }
  }
}

void Engine::install_view(const View& view, const std::vector<Bytes>& states) {
  assert(view.id > view_.id);
  auto my_new_pos = view.position_of(transport_.self());
  assert(my_new_pos.has_value() && "cannot install a view we are not part of");

  ++stats_.view_changes;
  const bool was_member = view_.id != 0;

  // 1. Merge all members' flush states.
  GlobalSeq max_watermark = 0;
  std::map<GlobalSeq, SeqRecord> merged;
  Bytes snapshot;
  bool have_snapshot = false;
  GlobalSeq snapshot_watermark = 0;
  for (const auto& blob : states) {
    if (blob.empty()) continue;  // fresh joiner
    try {
      ByteReader r(blob);
      GlobalSeq watermark = r.var();
      max_watermark = std::max(max_watermark, watermark);
      std::uint64_t count = r.var();
      for (std::uint64_t i = 0; i < count; ++i) {
        SeqRecord rec;
        rec.id.origin = r.u32();
        rec.id.lsn = r.var();
        rec.seq = r.var();
        rec.frag.app_msg = r.var();
        rec.frag.index = static_cast<std::uint32_t>(r.var());
        rec.frag.count = static_cast<std::uint32_t>(r.var());
        Bytes p = r.bytes();
        rec.payload = p.empty() ? nullptr : make_payload(std::move(p));
        rec.stable = true;  // agreed by the whole new view => stable
        merged.emplace(rec.seq, std::move(rec));
      }
      if (!r.done() && r.u8() != 0) {
        // Prefer the freshest snapshot (highest watermark).
        Bytes snap = r.bytes();
        if (!have_snapshot || watermark > snapshot_watermark) {
          snapshot = std::move(snap);
          snapshot_watermark = watermark;
          have_snapshot = true;
        }
      }
    } catch (const CodecError& e) {
      // A truncated/corrupted blob must not take the process down; the
      // records parsed before the error still contribute to the union.
      FSR_ERROR("node %u: corrupted flush state ignored: %s", transport_.self(),
                e.what());
    }
  }

  GlobalSeq horizon =
      std::max(max_watermark, merged.empty() ? 0 : merged.rbegin()->first);
  FSR_DEBUG("node %u installing view %llu: merged %zu [%llu..%llu], max_watermark %llu, horizon %llu, my next_deliver %llu",
            transport_.self(), (unsigned long long)view.id, merged.size(),
            merged.empty() ? 0ULL : (unsigned long long)merged.begin()->first,
            merged.empty() ? 0ULL : (unsigned long long)merged.rbegin()->first,
            (unsigned long long)max_watermark, (unsigned long long)horizon,
            (unsigned long long)next_deliver_);

  if (!was_member && next_deliver_ == 1) {
    if (have_snapshot && snapshot_install_) {
      // State transfer: adopt a member's application state as of its
      // delivered watermark, then replay the union from there.
      snapshot_install_(snapshot);
      next_deliver_ = snapshot_watermark + 1;
    } else {
      // No snapshot: the joiner starts at the group's current horizon
      // rather than replaying from sequence 1.
      next_deliver_ = max_watermark + 1;
    }
  }

  // 2. Deliver every merged pair we have not yet delivered, in sequence
  //    order. Any pair delivered by a crashed process was stored by the
  //    leader + t backups, at least one of which survived and reported it,
  //    so it appears here — this is what makes delivery uniform.
  //
  //    The union can have a hole: a message whose origin sat at ring
  //    position 1 has an empty SEQ pass, so its (m, seq) pair lives only at
  //    the leader until the pending ack propagates — if the leader crashes
  //    in that window, the sequence number dies with it. Nothing at or
  //    beyond a hole was delivered by anyone (holes only occur above every
  //    watermark), so those sequence numbers are abandoned — consistently,
  //    since all members process the same union — and each affected message
  //    is re-broadcast by its origin in the new view.
  std::map<LocalSeq, DataMsg> rebroadcast;
  bool gapped = false;
  for (auto& [seq, rec] : merged) {
    if (seq < next_deliver_) continue;
    if (!gapped && seq == next_deliver_) {
      ++next_deliver_;
      deliver_segment(rec.id, rec.frag, rec.seq, rec.payload);
      continue;
    }
    if (!gapped) {
      gapped = true;
      FSR_INFO("node %u: recovery union hole at seq %llu (expected %llu); "
               "orphaned messages will be re-broadcast by their origins",
               transport_.self(), static_cast<unsigned long long>(seq),
               static_cast<unsigned long long>(next_deliver_));
    }
    if (rec.id.origin == transport_.self()) {
      DataMsg m;
      m.id = rec.id;
      m.frag = rec.frag;
      m.payload = rec.payload;
      rebroadcast.emplace(rec.id.lsn, std::move(m));
    }
  }

  // 3. Collect own messages broadcast but not delivered (paper: "All
  //    processes TO-broadcast any message in view v_r+1 that they have
  //    TO-broadcast in view v_r but not yet TO-delivered in v_r").
  //    Sequenced-but-undelivered own messages were either delivered through
  //    the union above or orphaned into `rebroadcast`; the stash holds the
  //    ones whose sequence number we never learned.
  LocalSeq own_delivered = 0;
  if (auto it = delivered_lsn_.find(transport_.self()); it != delivered_lsn_.end()) {
    own_delivered = it->second;
  }
  for (const auto& [id, st] : stash_) {
    if (id.origin != transport_.self() || id.lsn <= own_delivered) continue;
    DataMsg m;
    m.id = id;
    m.frag = st.frag;
    m.payload = st.payload;
    rebroadcast.emplace(id.lsn, std::move(m));
  }

  // 4. Reset per-view state.
  view_ = view;
  my_pos_ = *my_new_pos;
  topo_ = ring::Topology{view_.size(), ring::effective_t(cfg_.t, view_.size())};
  out_queues_.clear();
  out_count_ = 0;
  forward_list_.clear();
  clear_pending_ctrl();
  seq_of_.clear();
  stash_.clear();
  all_delivered_ = 0;
  last_gc_emitted_ = 0;
  own_in_flight_ = 0;
  next_deliver_ = std::max(next_deliver_, horizon + 1);
  next_seq_ = next_deliver_;
  window_.clear(next_deliver_ - 1);
  // Per-origin delivery state of departed members is dead weight (and under
  // churn would otherwise accumulate forever): drop it with the view.
  for (auto it = delivered_lsn_.begin(); it != delivered_lsn_.end();) {
    it = view_.contains(it->first) ? std::next(it) : delivered_lsn_.erase(it);
  }
  sequenced_lsn_ = delivered_lsn_;
  // Reassembly buffers of departed members can never complete.
  for (auto it = reasm_.begin(); it != reasm_.end();) {
    if (!view_.contains(it->first)) {
      it = reasm_.erase(it);
    } else {
      ++it;
    }
  }

  // 5. Requeue own undelivered messages ahead of anything not yet sent.
  for (auto rit = rebroadcast.rbegin(); rit != rebroadcast.rend(); ++rit) {
    own_queue_.push_front(std::move(rit->second));
  }

  frozen_ = false;

  // Replay traffic that arrived during the flush (new-view messages from
  // members that resumed before us; stale ones are dropped by view checks).
  std::deque<WireMsg> backlog;
  backlog.swap(frozen_backlog_);
  for (const auto& msg : backlog) on_msg(msg);

  pump();
}

}  // namespace fsr
