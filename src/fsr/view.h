// A view: the agreed membership and ring order produced by the VSC layer
// (paper §4.2). members[0] is the leader/sequencer; members[1..t] are the
// backups.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace fsr {

struct View {
  ViewId id = 0;
  std::vector<NodeId> members;  // ring order

  std::optional<Position> position_of(NodeId node) const {
    auto it = std::find(members.begin(), members.end(), node);
    if (it == members.end()) return std::nullopt;
    return static_cast<Position>(it - members.begin());
  }

  NodeId at(Position p) const { return members[p % members.size()]; }
  NodeId leader() const { return members.front(); }
  std::uint32_t size() const { return static_cast<std::uint32_t>(members.size()); }
  bool contains(NodeId node) const { return position_of(node).has_value(); }

  friend bool operator==(const View&, const View&) = default;
};

inline std::string to_string(const View& v) {
  std::string s = "view " + std::to_string(v.id) + " {";
  for (std::size_t i = 0; i < v.members.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(v.members[i]);
  }
  return s + "}";
}

}  // namespace fsr
