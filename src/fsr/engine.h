// The FSR protocol engine (the paper's core contribution, §4).
//
// One Engine instance runs per process. It is a single-threaded, event-
// driven state machine fed by:
//   * on_msg()        — DATA / SEQ / ACK / GC messages from the predecessor,
//   * on_tx_ready()   — the outbound link drained (send pacing),
//   * broadcast()     — the application submits a payload,
//   * collect_flush_state() / install_view() — VSC recovery hooks (§4.2.1).
//
// Responsibilities: sequencing (when leader), uniform ordered delivery,
// fairness scheduling with the forward list (§4.2.3), ack piggybacking
// (§4.2.2), segmentation/reassembly of large payloads (§4.1), own-broadcast
// window flow control, and view-change recovery.
//
// Hot-path data layout: sequenced records live in a flat ring-buffer
// sequence window (seq_window.h) instead of ordered maps, segmentation and
// reassembly move Payload views instead of bytes, and outbound payload
// messages are indexed per origin so the fairness pick is O(ring size)
// instead of a linear FIFO scan. EngineCounters observes all of it.
//
// Reentrancy: the delivery callback may call broadcast(). Engine methods
// must not be called concurrently (single-threaded event loop per node).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fsr/seq_window.h"
#include "fsr/view.h"
#include "proto/wire.h"
#include "ring/rules.h"
#include "transport/transport.h"

namespace fsr {

struct EngineConfig {
  /// The ordering domain this engine belongs to. Deliveries are stamped with
  /// it and, under a GroupMux, outgoing frames inherit it from the engine's
  /// transport channel. Single-ring deployments leave 0.
  GroupId group = 0;

  /// Number of backup processes / tolerated failures (clamped to view size
  /// minus one per view).
  std::uint32_t t = 1;

  /// Application payloads are segmented into chunks of this many bytes so
  /// large messages cannot stall small ones on the ring (paper §4.1).
  std::size_t segment_size = 8192;

  /// Maximum own segments in flight (sent, not yet delivered locally).
  /// Backpressure beyond this queues in the engine (the "local queues"
  /// whose growth explains the latency blow-up in Fig. 7).
  std::size_t window = 32;

  /// Piggyback acks on payload frames (§4.2.2). When false every ack is
  /// sent as its own frame (ablation).
  bool piggyback_acks = true;

  /// Cap on acks attached to a single frame.
  std::size_t max_acks_per_frame = 128;

  /// Payload messages packed into one frame while the link is idle. The
  /// paper's ring paces one payload per frame (the default); raising this
  /// amortizes per-frame encode/parse overhead on fast transports without
  /// changing the protocol — a frame's messages are processed in order, so
  /// k packed payloads are indistinguishable from k back-to-back frames.
  std::size_t max_payloads_per_frame = 1;

  /// When nonzero and no payload is queued, acks are held up to this long
  /// for a payload frame to ride (§4.2.2) before being flushed standalone
  /// by a timer. 0 (the default) sends ack-only frames immediately. Under
  /// load the next payload is typically one frame away, so a few tens of
  /// microseconds converts most ack-only frames into piggybacks.
  Time ack_flush_delay = 0;

  /// The last-delivering process (position t-1) circulates its delivered
  /// watermark every this-many sequence numbers so retained recovery records
  /// can be pruned (a pair is only forgotten once delivered by all).
  GlobalSeq gc_interval = 64;

  /// Initial sequence-window capacity in records (rounded up to a power of
  /// two). The window grows geometrically while the live sequence range
  /// outruns it.
  std::size_t window_slots = 64;

  /// Growth cap: past this many slots, far-future sequence numbers fall back
  /// to an ordered overflow map instead of growing the ring further.
  std::size_t max_window_slots = std::size_t{1} << 16;
};

/// Hot-path health counters: allocation/copy discipline of the engine core.
/// On the steady-state fast path records are pooled (no allocation) and
/// segmentation copies nothing; these counters make that a testable claim,
/// mirroring TransportCounters one layer up.
struct EngineCounters {
  // Sequence-window record storage.
  std::uint64_t records_pooled = 0;     ///< inserts that reused a window slot
  std::uint64_t records_allocated = 0;  ///< inserts that had to allocate
  std::uint64_t window_grows = 0;       ///< geometric window growths
  std::uint64_t out_of_window = 0;      ///< inserts past a maxed-out window

  // Ack/GC piggybacking (§4.2.2).
  std::uint64_t piggyback_hits = 0;    ///< ctrl msgs that rode a payload frame
  std::uint64_t piggyback_misses = 0;  ///< ctrl msgs that needed an ack-only frame
  std::uint64_t gc_coalesced = 0;      ///< GC watermarks merged before sending

  // Payload copy discipline. Segmentation aliases the application buffer
  // (must stay 0); reassembly materializes one output buffer per multi-
  // segment message at delivery time.
  std::uint64_t segmentation_copies = 0;
  std::uint64_t reassembly_copies = 0;  ///< segment views gathered at delivery
  std::uint64_t reassembly_bytes = 0;   ///< bytes materialized by reassembly

  EngineCounters& operator+=(const EngineCounters& o) {
    records_pooled += o.records_pooled;
    records_allocated += o.records_allocated;
    window_grows += o.window_grows;
    out_of_window += o.out_of_window;
    piggyback_hits += o.piggyback_hits;
    piggyback_misses += o.piggyback_misses;
    gc_coalesced += o.gc_coalesced;
    segmentation_copies += o.segmentation_copies;
    reassembly_copies += o.reassembly_copies;
    reassembly_bytes += o.reassembly_bytes;
    return *this;
  }
};

/// A fully reassembled application message handed to the delivery callback.
/// Deliveries happen in the same order at every process (total order).
struct Delivery {
  GroupId group = 0;          // ordering domain the sequence belongs to
  NodeId origin = kNoNode;
  std::uint64_t app_msg = 0;  // per-origin application message counter
  GlobalSeq seq = 0;          // global sequence of the final segment
  ViewId view = 0;            // view in which delivery happened
  /// Zero-copy for single-segment messages: the view aliases the transport's
  /// receive buffer (hold the Payload — it shares ownership — to keep the
  /// bytes past the callback). Reassembled multi-segment messages own fresh
  /// storage.
  Payload payload;
};

class Engine {
 public:
  using DeliverFn = std::function<void(const Delivery&)>;

  Engine(Transport& transport, EngineConfig config, View initial_view,
         DeliverFn deliver);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- application API ---

  /// TO-broadcast a payload to the group. Never blocks; segments are queued
  /// under the flow-control window.
  void broadcast(Bytes payload) { broadcast(make_payload(std::move(payload))); }

  /// Zero-copy variant: the payload view (e.g. a gateway request aliasing a
  /// client connection's receive buffer) is segmented into aliasing
  /// sub-views and never copied on the way into the ring.
  void broadcast(Payload payload);

  /// Own application messages accepted but not yet delivered locally.
  std::size_t pending_own() const { return pending_own_; }

  // --- transport wiring ---

  /// Feed one received wire message (non-FSR message kinds are ignored).
  void on_msg(const WireMsg& msg);

  /// The outbound link drained; the engine may assemble the next frame.
  void on_tx_ready();

  // --- VSC recovery hooks (§4.2.1) ---

  /// Stop all sending (flush started). Incoming FSR traffic is buffered by
  /// on_msg() while frozen and replayed after the next install (traffic of
  /// the *new* view can arrive before our install when a faster member
  /// resumes first; old-view traffic is filtered by the view check on
  /// replay).
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Serialize this process's recovery state: delivered watermark and every
  /// sequenced (m, seq) pair it stores (undelivered + retained), plus — when
  /// `include_snapshot` and a snapshot hook is installed — an application
  /// snapshot for joiner state transfer. Implicitly freezes.
  Bytes collect_flush_state(bool include_snapshot = false);

  /// Application state-transfer hooks: `take` serializes the app state as
  /// of the engine's delivered watermark (called while frozen), `install`
  /// replaces a joiner's app state before recovery deliveries resume.
  void set_snapshot_hooks(std::function<Bytes()> take,
                          std::function<void(const Bytes&)> install) {
    snapshot_take_ = std::move(take);
    snapshot_install_ = std::move(install);
  }

  /// Stage the recovery union of a proposed install WITHOUT delivering:
  /// absorb every sequenced pair into our store so that, should the install
  /// round die with its coordinator, our next flush blob re-exports the
  /// union (this is what keeps delivery-at-install uniform).
  void stage_recovery_states(const std::vector<Bytes>& states);

  /// Install the agreed new view. `states` are the flush blobs of all new-
  /// view members; the union of their sequenced pairs is delivered (in
  /// sequence order) before normal operation resumes, and own pending
  /// messages are re-broadcast in the new view (§4.2.1).
  void install_view(const View& view, const std::vector<Bytes>& states);

  // --- introspection ---

  const View& view() const { return view_; }
  Position position() const { return my_pos_; }
  bool is_leader() const { return my_pos_ == 0; }
  const ring::Topology& topology() const { return topo_; }
  GlobalSeq delivered_watermark() const { return next_deliver_ - 1; }
  /// Records stored for delivery or recovery retention (both live in the
  /// sequence window now; delivered ones carry the `delivered` flag).
  std::size_t stored_records() const { return window_.size(); }
  std::size_t out_fifo_size() const { return out_count_; }
  std::size_t own_in_flight() const { return own_in_flight_; }
  std::size_t own_queue_size() const { return own_queue_.size(); }
  std::size_t window_capacity() const { return window_.slot_capacity(); }
  std::size_t window_overflow() const { return window_.overflow_size(); }
  /// Origins with per-origin delivery state (shrinks when members depart).
  std::size_t tracked_origins() const { return delivered_lsn_.size(); }

  const EngineCounters& counters() const { return counters_; }

  /// Ordering domain this engine serves (EngineConfig::group).
  GroupId group() const { return cfg_.group; }

  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_delivered = 0;
    std::uint64_t app_delivered = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t acks_emitted = 0;
    std::uint64_t acks_piggybacked = 0;
    std::uint64_t ack_only_frames = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t view_changes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Payload seen on the DATA pass (or own send), sequence not yet known.
  struct Stash {
    FragInfo frag;
    Payload payload;
  };

  /// In-progress reassembly: segment views gathered without copying; the
  /// output buffer is materialized once, when the final segment delivers.
  struct Reassembly {
    std::uint64_t app_msg = 0;
    std::uint32_t next_index = 0;
    std::vector<Payload> parts;
    std::size_t bytes = 0;
  };

  /// Outbound payload message, stamped with a global arrival number so the
  /// per-origin queues can reproduce the old FIFO's ordering exactly.
  struct OutMsg {
    std::uint64_t arrival = 0;
    WireMsg msg;
  };

  void handle_data(const DataMsg& m);
  void handle_seq(const SeqMsg& m);
  void handle_ack(const AckMsg& m);
  void handle_gc(const GcMsg& m);

  /// Leader only: assign the next global sequence number and start the SEQ
  /// pass (or emit the ack directly when the pass is empty).
  void sequence(const MsgId& id, const FragInfo& frag, Payload payload);

  /// Leader only: pop one own segment (if allowed) and sequence it.
  bool sequence_own();

  void emit_ack(const MsgId& id, GlobalSeq seq, bool stable);
  void queue_gc(const GcMsg& g);
  void mark_stable(GlobalSeq seq);
  void try_deliver();

  /// Deliver one sequenced segment to the application (fields are passed by
  /// value/ref, never a window pointer: the callback may reenter broadcast()
  /// and grow the window, invalidating record pointers).
  void deliver_segment(const MsgId& id, const FragInfo& frag, GlobalSeq seq,
                       const Payload& payload);

  /// Insert into the sequence window, crediting the pooling counters.
  void store_record(SeqRecord rec);

  /// Fairness scheduler (§4.2.3): next payload message for the successor.
  std::optional<WireMsg> pick_next_payload();

  // Outbound index helpers (see pick_next_payload).
  void push_out(NodeId origin, WireMsg msg);
  std::deque<OutMsg>* min_out_queue(bool skip_forward_listed, NodeId* origin);
  WireMsg pop_out(std::deque<OutMsg>& q);

  std::size_t pending_ctrl_count() const {
    return pending_acks_.size() + (pending_gc_ ? 1 : 0);
  }
  WireMsg pop_pending_ctrl();
  void clear_pending_ctrl() {
    pending_acks_.clear();
    pending_gc_.reset();
  }

  /// Assemble and send the next frame if the link is free. Only entry
  /// points (broadcast / on_msg / on_tx_ready / install_view) call this.
  void pump();

  /// Schedule a standalone ack flush `ack_flush_delay` from now (no-op if
  /// one is already pending); pump() holds acks back until then so they can
  /// ride the next payload frame instead.
  void arm_ack_flush();

  bool own_send_allowed() const {
    return !own_queue_.empty() && own_in_flight_ < cfg_.window;
  }

  NodeId successor() const { return view_.at(topo_.succ(my_pos_)); }
  Position origin_position(NodeId origin) const;
  static NodeId msg_origin(const WireMsg& m);

  Transport& transport_;
  EngineConfig cfg_;
  DeliverFn deliver_;

  View view_;
  ring::Topology topo_;
  Position my_pos_ = 0;

  bool frozen_ = false;
  bool in_pump_ = false;  // guards against reentrant pumping
  bool ack_flush_armed_ = false;  // a deferred ack-flush timer is pending
  bool ack_flush_now_ = false;    // the timer fired: send acks standalone

  // Sender side.
  LocalSeq next_lsn_ = 1;
  std::uint64_t next_app_id_ = 1;
  std::deque<DataMsg> own_queue_;   // own segments not yet sent
  std::size_t own_in_flight_ = 0;   // own segments sent, not delivered
  std::size_t pending_own_ = 0;     // own app messages not delivered

  // Leader side.
  GlobalSeq next_seq_ = 1;
  std::unordered_map<NodeId, LocalSeq> sequenced_lsn_;  // dedupe at leader

  // Forwarding & fairness. Outbound DATA/SEQ messages to forward sit in
  // per-origin FIFO queues stamped with a global arrival number: the
  // fairness pick (oldest message from an origin not yet served since our
  // last own send) is a min over ring-size queue fronts instead of a linear
  // FIFO scan. Overtaking is safe: delivery is strictly by global sequence
  // with gap buffering, so forwarding order never affects correctness, only
  // fairness.
  std::unordered_map<NodeId, std::deque<OutMsg>> out_queues_;
  std::size_t out_count_ = 0;       // total queued across out_queues_
  std::uint64_t next_arrival_ = 1;  // global arrival stamp
  std::set<NodeId> forward_list_;   // origins forwarded since last own send

  // Pending control traffic, piggybacked on frames (§4.2.2). Acks keep
  // their emission order; GC watermarks coalesce into a single slot (a newer
  // watermark subsumes an unsent older one), making GC queuing O(1).
  std::deque<AckMsg> pending_acks_;
  std::optional<GcMsg> pending_gc_;

  // Delivery side. The sequence window holds every sequenced record from
  // the moment the sequence number is learned until the GC watermark proves
  // it delivered-by-all (undelivered records and delivered-retained records
  // in one flat structure).
  GlobalSeq next_deliver_ = 1;
  SeqWindow window_;
  std::unordered_map<MsgId, GlobalSeq> seq_of_;  // sequenced undelivered ids
  std::unordered_map<MsgId, Stash> stash_;
  std::unordered_map<NodeId, LocalSeq> delivered_lsn_;
  std::unordered_map<NodeId, Reassembly> reasm_;

  // Messages received while frozen, replayed after the view installs.
  std::deque<WireMsg> frozen_backlog_;

  // Application state-transfer hooks (optional).
  std::function<Bytes()> snapshot_take_;
  std::function<void(const Bytes&)> snapshot_install_;

  // GC watermark circulation (prunes the window's delivered tail).
  GlobalSeq all_delivered_ = 0;
  GlobalSeq last_gc_emitted_ = 0;

  Stats stats_;
  EngineCounters counters_;
};

}  // namespace fsr
