// The FSR protocol engine (the paper's core contribution, §4).
//
// One Engine instance runs per process. It is a single-threaded, event-
// driven state machine fed by:
//   * on_msg()        — DATA / SEQ / ACK / GC messages from the predecessor,
//   * on_tx_ready()   — the outbound link drained (send pacing),
//   * broadcast()     — the application submits a payload,
//   * collect_flush_state() / install_view() — VSC recovery hooks (§4.2.1).
//
// Responsibilities: sequencing (when leader), uniform ordered delivery,
// fairness scheduling with the forward list (§4.2.3), ack piggybacking
// (§4.2.2), segmentation/reassembly of large payloads (§4.1), own-broadcast
// window flow control, and view-change recovery.
//
// Reentrancy: the delivery callback may call broadcast(). Engine methods
// must not be called concurrently (single-threaded event loop per node).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fsr/view.h"
#include "proto/wire.h"
#include "ring/rules.h"
#include "transport/transport.h"

namespace fsr {

struct EngineConfig {
  /// Number of backup processes / tolerated failures (clamped to view size
  /// minus one per view).
  std::uint32_t t = 1;

  /// Application payloads are segmented into chunks of this many bytes so
  /// large messages cannot stall small ones on the ring (paper §4.1).
  std::size_t segment_size = 8192;

  /// Maximum own segments in flight (sent, not yet delivered locally).
  /// Backpressure beyond this queues in the engine (the "local queues"
  /// whose growth explains the latency blow-up in Fig. 7).
  std::size_t window = 32;

  /// Piggyback acks on payload frames (§4.2.2). When false every ack is
  /// sent as its own frame (ablation).
  bool piggyback_acks = true;

  /// Cap on acks attached to a single frame.
  std::size_t max_acks_per_frame = 128;

  /// The last-delivering process (position t-1) circulates its delivered
  /// watermark every this-many sequence numbers so retained recovery records
  /// can be pruned (a pair is only forgotten once delivered by all).
  GlobalSeq gc_interval = 64;
};

/// A fully reassembled application message handed to the delivery callback.
/// Deliveries happen in the same order at every process (total order).
struct Delivery {
  NodeId origin = kNoNode;
  std::uint64_t app_msg = 0;  // per-origin application message counter
  GlobalSeq seq = 0;          // global sequence of the final segment
  ViewId view = 0;            // view in which delivery happened
  /// Zero-copy for single-segment messages: the view aliases the transport's
  /// receive buffer (hold the Payload — it shares ownership — to keep the
  /// bytes past the callback). Reassembled multi-segment messages own fresh
  /// storage.
  Payload payload;
};

class Engine {
 public:
  using DeliverFn = std::function<void(const Delivery&)>;

  Engine(Transport& transport, EngineConfig config, View initial_view,
         DeliverFn deliver);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- application API ---

  /// TO-broadcast a payload to the group. Never blocks; segments are queued
  /// under the flow-control window.
  void broadcast(Bytes payload);

  /// Own application messages accepted but not yet delivered locally.
  std::size_t pending_own() const { return pending_own_; }

  // --- transport wiring ---

  /// Feed one received wire message (non-FSR message kinds are ignored).
  void on_msg(const WireMsg& msg);

  /// The outbound link drained; the engine may assemble the next frame.
  void on_tx_ready();

  // --- VSC recovery hooks (§4.2.1) ---

  /// Stop all sending (flush started). Incoming FSR traffic is buffered by
  /// on_msg() while frozen and replayed after the next install (traffic of
  /// the *new* view can arrive before our install when a faster member
  /// resumes first; old-view traffic is filtered by the view check on
  /// replay).
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Serialize this process's recovery state: delivered watermark and every
  /// sequenced (m, seq) pair it stores (undelivered + retained), plus — when
  /// `include_snapshot` and a snapshot hook is installed — an application
  /// snapshot for joiner state transfer. Implicitly freezes.
  Bytes collect_flush_state(bool include_snapshot = false);

  /// Application state-transfer hooks: `take` serializes the app state as
  /// of the engine's delivered watermark (called while frozen), `install`
  /// replaces a joiner's app state before recovery deliveries resume.
  void set_snapshot_hooks(std::function<Bytes()> take,
                          std::function<void(const Bytes&)> install) {
    snapshot_take_ = std::move(take);
    snapshot_install_ = std::move(install);
  }

  /// Stage the recovery union of a proposed install WITHOUT delivering:
  /// absorb every sequenced pair into our store so that, should the install
  /// round die with its coordinator, our next flush blob re-exports the
  /// union (this is what keeps delivery-at-install uniform).
  void stage_recovery_states(const std::vector<Bytes>& states);

  /// Install the agreed new view. `states` are the flush blobs of all new-
  /// view members; the union of their sequenced pairs is delivered (in
  /// sequence order) before normal operation resumes, and own pending
  /// messages are re-broadcast in the new view (§4.2.1).
  void install_view(const View& view, const std::vector<Bytes>& states);

  // --- introspection ---

  const View& view() const { return view_; }
  Position position() const { return my_pos_; }
  bool is_leader() const { return my_pos_ == 0; }
  const ring::Topology& topology() const { return topo_; }
  GlobalSeq delivered_watermark() const { return next_deliver_ - 1; }
  std::size_t stored_records() const { return records_.size() + retained_.size(); }
  std::size_t out_fifo_size() const { return out_fifo_.size(); }
  std::size_t own_in_flight() const { return own_in_flight_; }
  std::size_t own_queue_size() const { return own_queue_.size(); }

  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_delivered = 0;
    std::uint64_t app_delivered = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t acks_emitted = 0;
    std::uint64_t acks_piggybacked = 0;
    std::uint64_t ack_only_frames = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t view_changes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Sequenced message record kept until locally delivered.
  struct Record {
    MsgId id;
    FragInfo frag;
    Payload payload;
    GlobalSeq seq = 0;
    bool stable = false;
  };

  /// Payload seen on the DATA pass (or own send), sequence not yet known.
  struct Stash {
    FragInfo frag;
    Payload payload;
  };

  struct Reassembly {
    std::uint64_t app_msg = 0;
    std::uint32_t next_index = 0;
    Bytes data;
  };

  void handle_data(const DataMsg& m);
  void handle_seq(const SeqMsg& m);
  void handle_ack(const AckMsg& m);
  void handle_gc(const GcMsg& m);

  /// Leader only: assign the next global sequence number and start the SEQ
  /// pass (or emit the ack directly when the pass is empty).
  void sequence(const MsgId& id, const FragInfo& frag, Payload payload);

  /// Leader only: pop one own segment (if allowed) and sequence it.
  bool sequence_own();

  void emit_ack(const MsgId& id, GlobalSeq seq, bool stable);
  void mark_stable(GlobalSeq seq);
  void try_deliver();
  void deliver_record(const Record& rec);

  /// Fairness scheduler (§4.2.3): next payload message for the successor.
  std::optional<WireMsg> pick_next_payload();

  /// Assemble and send the next frame if the link is free. Only entry
  /// points (broadcast / on_msg / on_tx_ready / install_view) call this.
  void pump();

  bool own_send_allowed() const {
    return !own_queue_.empty() && own_in_flight_ < cfg_.window;
  }

  NodeId successor() const { return view_.at(topo_.succ(my_pos_)); }
  Position origin_position(NodeId origin) const;
  static NodeId msg_origin(const WireMsg& m);

  Transport& transport_;
  EngineConfig cfg_;
  DeliverFn deliver_;

  View view_;
  ring::Topology topo_;
  Position my_pos_ = 0;

  bool frozen_ = false;
  bool in_pump_ = false;  // guards against reentrant pumping

  // Sender side.
  LocalSeq next_lsn_ = 1;
  std::uint64_t next_app_id_ = 1;
  std::deque<DataMsg> own_queue_;   // own segments not yet sent
  std::size_t own_in_flight_ = 0;   // own segments sent, not delivered
  std::size_t pending_own_ = 0;     // own app messages not delivered

  // Leader side.
  GlobalSeq next_seq_ = 1;
  std::unordered_map<NodeId, LocalSeq> sequenced_lsn_;  // dedupe at leader

  // Forwarding & fairness. out_fifo_ holds DATA and SEQ messages to forward
  // in arrival order; the fairness scan may let an own segment or a
  // not-yet-served origin overtake it (safe: delivery is strictly by global
  // sequence with gap buffering, so forwarding order never affects
  // correctness, only fairness).
  std::deque<WireMsg> out_fifo_;
  std::set<NodeId> forward_list_;  // origins forwarded since last own send
  std::deque<WireMsg> pending_ctrl_;  // acks + gc, piggybacked on frames

  // Delivery side.
  GlobalSeq next_deliver_ = 1;
  std::map<GlobalSeq, Record> records_;
  std::unordered_map<MsgId, GlobalSeq> seq_of_;  // sequenced undelivered ids
  std::unordered_map<MsgId, Stash> stash_;
  std::unordered_map<NodeId, LocalSeq> delivered_lsn_;
  std::unordered_map<NodeId, Reassembly> reasm_;

  // Messages received while frozen, replayed after the view installs.
  std::deque<WireMsg> frozen_backlog_;

  // Application state-transfer hooks (optional).
  std::function<Bytes()> snapshot_take_;
  std::function<void(const Bytes&)> snapshot_install_;

  // Recovery retention: delivered records kept until known delivered by all
  // (pruned by the circulating GC watermark).
  std::map<GlobalSeq, Record> retained_;
  GlobalSeq all_delivered_ = 0;
  GlobalSeq last_gc_emitted_ = 0;

  Stats stats_;
};

}  // namespace fsr
