// A packet-level privilege-based (token ring) TO-broadcast engine (paper
// §2.3, Fig. 3 — the class FSR is built to beat) over the same Transport
// and cluster model as FSR, for Mb/s and fairness comparison on identical
// hardware assumptions.
//
// Only the token holder may broadcast: it sequences up to `hold_max` of its
// own segments per visit, disseminating each by unicast fan-out (the
// paper's setting is point-to-point TCP — no IP multicast), updates its
// cumulative-ack entry in the token and passes the token on. A sequence
// number is uniformly stable once every member's token entry covers it
// (i.e. after a full rotation); the current stability watermark is
// piggybacked on every payload frame.
//
// The §2.3 trade-off is structural: small hold_max interleaves senders
// fairly but pays a token rotation per few messages; large hold_max
// approaches the NIC fan-out limit but serves senders in long bursts.
// Failure-free only (benchmark baseline).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "fsr/engine.h"  // Delivery
#include "fsr/view.h"
#include "transport/transport.h"

namespace fsr::baselines {

struct PrivilegeConfig {
  std::size_t segment_size = 100 * 1024;
  std::size_t hold_max = 8;  // segments a holder may send per token visit
};

class PrivilegeEngine {
 public:
  using DeliverFn = std::function<void(const Delivery&)>;

  PrivilegeEngine(Transport& transport, PrivilegeConfig config, View view,
                  DeliverFn deliver);

  PrivilegeEngine(const PrivilegeEngine&) = delete;
  PrivilegeEngine& operator=(const PrivilegeEngine&) = delete;

  void broadcast(Bytes payload);
  void on_frame(const Frame& frame);
  void on_tx_ready();

  GlobalSeq delivered_watermark() const { return next_deliver_ - 1; }

 private:
  struct Record {
    MsgId id;
    FragInfo frag;
    Payload payload;
  };

  struct Reassembly {
    std::uint64_t app_msg = 0;
    std::uint32_t next_index = 0;
    Bytes data;
  };

  void handle_seq(const SeqMsg& m);
  void handle_token(const TokenMsg& t);
  void handle_request();
  void handle_stable(GlobalSeq w);
  void try_deliver();
  void pump();
  Position my_pos() const { return *view_.position_of(transport_.self()); }

  Transport& transport_;
  PrivilegeConfig cfg_;
  DeliverFn deliver_;
  View view_;

  bool in_pump_ = false;

  // Sender side.
  LocalSeq next_lsn_ = 1;
  std::uint64_t next_app_id_ = 1;
  std::deque<DataMsg> own_queue_;  // segments awaiting the privilege

  // Token state (valid while holding).
  bool holder_ = false;
  bool parked_ = false;  // idle token held quietly until someone needs it
  TokenMsg token_;
  std::size_t sent_in_visit_ = 0;
  std::deque<std::pair<NodeId, SeqMsg>> fanout_;  // unicast copies to send
  bool pass_pending_ = false;                     // token goes out after fanout
  bool request_sent_ = false;                     // asked the parked holder once

  // Delivery side.
  GlobalSeq received_contig_ = 0;
  GlobalSeq stable_seen_ = 0;
  GlobalSeq next_deliver_ = 1;
  std::map<GlobalSeq, Record> records_;
  std::unordered_map<NodeId, Reassembly> reasm_;
};

}  // namespace fsr::baselines
