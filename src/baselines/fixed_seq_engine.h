// A packet-level uniform fixed-sequencer TO-broadcast engine (paper §2.1,
// Fig. 1) running over the same Transport/cluster model as FSR, so the two
// can be compared in Mb/s on the identical simulated testbed.
//
// Protocol: senders unicast DATA to the sequencer; the sequencer assigns
// sequence numbers and *broadcasts* each (m, seq) — which on a unicast
// network means n-1 physical sends through its single NIC; receivers return
// cumulative acks (piggybacked on their own DATA when they are senders);
// once every process acked seq s, the sequencer announces the stability
// watermark (piggybacked on the next SEQ broadcast) and everyone delivers
// in order.
//
// The broadcast fan-out is the point: the sequencer's NIC must carry
// (n-1) copies of every payload, so its TX serializer caps goodput near
// wire/(n-1) — the bottleneck FSR's ring dissemination removes.
//
// Failure-free only (benchmark baseline; no view changes).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "fsr/engine.h"  // Delivery, EngineConfig field types
#include "fsr/view.h"
#include "transport/transport.h"

namespace fsr::baselines {

struct FixedSeqConfig {
  std::size_t segment_size = 100 * 1024;
  std::size_t window = 16;  // own segments in flight per sender
};

class FixedSeqEngine {
 public:
  using DeliverFn = std::function<void(const Delivery&)>;

  FixedSeqEngine(Transport& transport, FixedSeqConfig config, View view,
                 DeliverFn deliver);

  FixedSeqEngine(const FixedSeqEngine&) = delete;
  FixedSeqEngine& operator=(const FixedSeqEngine&) = delete;

  void broadcast(Bytes payload);
  void on_frame(const Frame& frame);
  void on_tx_ready();

  bool is_sequencer() const { return transport_.self() == view_.leader(); }
  GlobalSeq delivered_watermark() const { return next_deliver_ - 1; }

 private:
  struct Record {
    MsgId id;
    FragInfo frag;
    Payload payload;
  };

  struct Reassembly {
    std::uint64_t app_msg = 0;
    std::uint32_t next_index = 0;
    Bytes data;
  };

  void handle_data(const DataMsg& m);
  void handle_seq(const SeqMsg& m);
  void handle_ack(const AckMsg& a);
  void handle_stable(GlobalSeq w);
  void sequence(const MsgId& id, const FragInfo& frag, Payload payload);
  void recompute_stable();
  void try_deliver();
  void pump();

  Transport& transport_;
  FixedSeqConfig cfg_;
  DeliverFn deliver_;
  View view_;

  bool in_pump_ = false;

  // Sender side.
  LocalSeq next_lsn_ = 1;
  std::uint64_t next_app_id_ = 1;
  std::deque<DataMsg> own_queue_;
  std::size_t own_in_flight_ = 0;
  GlobalSeq acked_ = 0;  // cumulative ack already sent to the sequencer

  // Sequencer side.
  GlobalSeq next_seq_ = 1;
  std::deque<std::pair<NodeId, SeqMsg>> bcast_queue_;  // fan-out sends
  std::unordered_map<NodeId, GlobalSeq> acked_by_;
  GlobalSeq stable_ = 0;
  GlobalSeq announced_stable_ = 0;

  // Delivery side (all nodes).
  GlobalSeq received_contig_ = 0;  // highest contiguous SEQ received
  GlobalSeq stable_seen_ = 0;      // stability watermark learned
  GlobalSeq next_deliver_ = 1;
  std::map<GlobalSeq, Record> records_;
  std::unordered_map<NodeId, Reassembly> reasm_;
};

}  // namespace fsr::baselines
