// A packet-level moving-sequencer TO-broadcast engine (paper §2.2, Fig. 2,
// Chang–Maxemchuk style) over the same Transport/cluster model as FSR.
//
// Senders disseminate their own payload directly (unicast fan-out to every
// other member — the paper's setting is point-to-point TCP). A token
// rotates; the holder assigns sequence numbers to the unsequenced messages
// it has received so far and fans out *tiny* assignment messages (SeqMsg
// without payload — receivers pair the sequence number with the payload
// they already stored). Uniform stability: the token carries per-member
// cumulative watermarks; their minimum is safe to deliver and is
// disseminated piggybacked on payload and token frames.
//
// Compared with the fixed sequencer this removes the payload fan-out from
// the sequencer's NIC (its §2.2 selling point) — but every *sender* still
// fans out n-1 payload copies, so the class lands between the fixed
// sequencer and FSR on throughput. Failure-free only (benchmark baseline).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "fsr/engine.h"  // Delivery
#include "fsr/view.h"
#include "transport/transport.h"

namespace fsr::baselines {

struct MovingSeqConfig {
  std::size_t segment_size = 100 * 1024;
  std::size_t batch = 8;  // assignments per token visit
};

class MovingSeqEngine {
 public:
  using DeliverFn = std::function<void(const Delivery&)>;

  MovingSeqEngine(Transport& transport, MovingSeqConfig config, View view,
                  DeliverFn deliver);

  MovingSeqEngine(const MovingSeqEngine&) = delete;
  MovingSeqEngine& operator=(const MovingSeqEngine&) = delete;

  void broadcast(Bytes payload);
  void on_frame(const Frame& frame);
  void on_tx_ready();

  GlobalSeq delivered_watermark() const { return next_deliver_ - 1; }

  // Introspection (tests/diagnostics).
  GlobalSeq received_contig() const { return received_contig_; }
  GlobalSeq stable_seen() const { return stable_seen_; }
  std::size_t unsequenced_count() const { return unsequenced_.size(); }
  std::size_t store_size() const { return store_.size(); }

 private:
  struct Stored {
    FragInfo frag;
    Payload payload;
  };

  struct Reassembly {
    std::uint64_t app_msg = 0;
    std::uint32_t next_index = 0;
    Bytes data;
  };

  void handle_data(const DataMsg& m);
  void handle_assign(const SeqMsg& m);
  void record_assignment(GlobalSeq seq, const MsgId& id);
  bool slot_valid(GlobalSeq seq) const;
  void advance_contig();
  void handle_token(const TokenMsg& t);
  void handle_stable(GlobalSeq w);
  void note_unsequenced(const MsgId& id);
  void try_deliver();
  void pump();
  Position my_pos() const { return *view_.position_of(transport_.self()); }

  Transport& transport_;
  MovingSeqConfig cfg_;
  DeliverFn deliver_;
  View view_;

  bool in_pump_ = false;

  // Sender side.
  LocalSeq next_lsn_ = 1;
  std::uint64_t next_app_id_ = 1;
  std::deque<DataMsg> own_queue_;                      // not yet disseminated
  std::deque<std::pair<NodeId, DataMsg>> data_fanout_; // payload copies to send

  // Token / sequencing state.
  bool holder_ = false;
  bool parked_ = false;
  bool request_sent_ = false;
  TokenMsg token_;
  std::size_t assigned_in_visit_ = 0;
  bool pass_pending_ = false;
  std::deque<std::pair<NodeId, SeqMsg>> assign_fanout_;  // tiny control sends
  std::deque<MsgId> unsequenced_;                        // arrival order

  // Duplicate-assignment resolution: two holders can assign the same id
  // when a token overtakes an assignment fan-out on another link. The
  // lowest sequence number wins deterministically; later slots for the same
  // id become null (skipped by everyone — safe because a slot only becomes
  // deliverable after every lower slot's assignment has been seen).
  std::unordered_map<MsgId, GlobalSeq> first_seq_;

  // Delivery side.
  std::unordered_map<MsgId, Stored> store_;   // payloads by id
  std::map<GlobalSeq, MsgId> assignments_;    // seq -> id
  GlobalSeq received_contig_ = 0;  // contiguous assignments with payload
  GlobalSeq stable_seen_ = 0;
  GlobalSeq next_deliver_ = 1;
  std::unordered_map<NodeId, Reassembly> reasm_;
};

}  // namespace fsr::baselines
