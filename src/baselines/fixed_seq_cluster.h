// Simulated cluster fixture for the packet-level fixed-sequencer baseline
// (mirrors harness/SimCluster for the FSR engine; failure-free).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/fixed_seq_engine.h"
#include "transport/sim_transport.h"

namespace fsr::baselines {

class FixedSeqCluster {
 public:
  struct LogEntry {
    NodeId origin = kNoNode;
    std::uint64_t app_msg = 0;
    std::size_t bytes = 0;
    Time at = 0;
  };

  FixedSeqCluster(NetConfig net, std::size_t n, FixedSeqConfig config)
      : world_(net, n), logs_(n) {
    View v;
    v.id = 1;
    for (std::size_t i = 0; i < n; ++i) v.members.push_back(static_cast<NodeId>(i));
    for (std::size_t i = 0; i < n; ++i) {
      auto id = static_cast<NodeId>(i);
      engines_.push_back(std::make_unique<FixedSeqEngine>(
          world_.transport(id), config, v, [this, id](const Delivery& d) {
            logs_[id].push_back(
                LogEntry{d.origin, d.app_msg, d.payload.size(), world_.sim().now()});
          }));
      TransportHandlers h;
      h.on_frame = [this, id](const Frame& f) { engines_[id]->on_frame(f); };
      h.on_tx_ready = [this, id] { engines_[id]->on_tx_ready(); };
      world_.transport(id).set_handlers(std::move(h));
    }
  }

  Simulator& sim() { return world_.sim(); }
  std::size_t size() const { return engines_.size(); }

  void broadcast(NodeId from, Bytes payload) {
    engines_[from]->broadcast(std::move(payload));
  }

  const std::vector<LogEntry>& log(NodeId node) const { return logs_[node]; }

  /// Empty if all logs are identical (total order + agreement).
  std::string check_logs_identical() const {
    for (std::size_t n = 1; n < logs_.size(); ++n) {
      if (logs_[n].size() != logs_[0].size()) {
        return "node " + std::to_string(n) + " delivered " +
               std::to_string(logs_[n].size()) + " vs " + std::to_string(logs_[0].size());
      }
      for (std::size_t i = 0; i < logs_[n].size(); ++i) {
        if (logs_[n][i].origin != logs_[0][i].origin ||
            logs_[n][i].app_msg != logs_[0][i].app_msg) {
          return "divergence at index " + std::to_string(i) + " on node " +
                 std::to_string(n);
        }
      }
    }
    return {};
  }

 private:
  SimWorld world_;
  std::vector<std::unique_ptr<FixedSeqEngine>> engines_;
  std::vector<std::vector<LogEntry>> logs_;
};

}  // namespace fsr::baselines
