#include "baselines/fixed_seq_engine.h"

#include <cassert>

namespace fsr::baselines {

FixedSeqEngine::FixedSeqEngine(Transport& transport, FixedSeqConfig config,
                               View view, DeliverFn deliver)
    : transport_(transport),
      cfg_(config),
      deliver_(std::move(deliver)),
      view_(std::move(view)) {
  assert(view_.contains(transport_.self()));
  if (is_sequencer()) {
    for (NodeId m : view_.members) acked_by_[m] = 0;
  }
}

void FixedSeqEngine::broadcast(Bytes payload) {
  std::uint64_t app = next_app_id_++;
  // Zero-copy segmentation: aliasing views into one refcounted buffer.
  Payload whole = make_payload(std::move(payload));
  std::uint32_t count = segment_count(whole.size(), cfg_.segment_size);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto [off, len] = segment_bounds(whole.size(), cfg_.segment_size, i);
    DataMsg m;
    m.id = MsgId{transport_.self(), next_lsn_++};
    m.view = view_.id;
    m.frag = FragInfo{app, i, count};
    m.payload = whole.sub(off, len);
    own_queue_.push_back(std::move(m));
  }
  pump();
}

void FixedSeqEngine::on_frame(const Frame& frame) {
  for (const auto& msg : frame.msgs) {
    if (const auto* d = std::get_if<DataMsg>(&msg)) {
      handle_data(*d);
    } else if (const auto* s = std::get_if<SeqMsg>(&msg)) {
      handle_seq(*s);
    } else if (const auto* a = std::get_if<AckMsg>(&msg)) {
      handle_ack(*a);
    } else if (const auto* g = std::get_if<GcMsg>(&msg)) {
      handle_stable(g->all_delivered);
    }
  }
  pump();
}

void FixedSeqEngine::on_tx_ready() { pump(); }

void FixedSeqEngine::handle_data(const DataMsg& m) {
  assert(is_sequencer());
  sequence(m.id, m.frag, m.payload);
}

void FixedSeqEngine::sequence(const MsgId& id, const FragInfo& frag, Payload payload) {
  GlobalSeq s = next_seq_++;
  records_[s] = Record{id, frag, payload};
  received_contig_ = s;  // the sequencer holds everything it assigned
  acked_by_[transport_.self()] = s;
  SeqMsg out;
  out.id = id;
  out.seq = s;
  out.view = view_.id;
  out.frag = frag;
  out.payload = std::move(payload);
  for (NodeId m : view_.members) {
    if (m != transport_.self()) bcast_queue_.push_back({m, out});
  }
  recompute_stable();
}

void FixedSeqEngine::handle_seq(const SeqMsg& m) {
  records_.emplace(m.seq, Record{m.id, m.frag, m.payload});
  while (records_.count(received_contig_ + 1) > 0) ++received_contig_;
  try_deliver();
}

void FixedSeqEngine::handle_ack(const AckMsg& a) {
  assert(is_sequencer());
  auto& w = acked_by_[a.id.origin];
  w = std::max(w, a.seq);
  recompute_stable();
}

void FixedSeqEngine::handle_stable(GlobalSeq w) {
  stable_seen_ = std::max(stable_seen_, w);
  try_deliver();
}

void FixedSeqEngine::recompute_stable() {
  GlobalSeq s = next_seq_;
  for (const auto& [node, w] : acked_by_) s = std::min(s, w);
  stable_ = std::max(stable_, s);
  stable_seen_ = std::max(stable_seen_, stable_);
  try_deliver();
}

void FixedSeqEngine::try_deliver() {
  for (;;) {
    if (next_deliver_ > stable_seen_) break;
    auto it = records_.find(next_deliver_);
    if (it == records_.end()) break;
    Record rec = std::move(it->second);
    records_.erase(it);
    ++next_deliver_;

    NodeId origin = rec.id.origin;
    if (origin == transport_.self() && own_in_flight_ > 0) --own_in_flight_;
    auto& r = reasm_[origin];
    if (rec.frag.index == 0) r = Reassembly{rec.frag.app_msg, 0, {}};
    if (rec.payload) r.data.insert(r.data.end(), rec.payload.begin(), rec.payload.end());
    ++r.next_index;
    if (r.next_index == rec.frag.count) {
      Delivery d;
      d.origin = origin;
      d.app_msg = rec.frag.app_msg;
      d.seq = next_deliver_ - 1;
      d.view = view_.id;
      d.payload = make_payload(std::move(r.data));
      r = Reassembly{};
      if (deliver_) deliver_(d);
    }
  }
}

void FixedSeqEngine::pump() {
  if (in_pump_) return;
  in_pump_ = true;
  while (transport_.tx_idle()) {
    if (is_sequencer()) {
      // Inject own segments into the sequencing stream.
      if (bcast_queue_.empty() && !own_queue_.empty() && own_in_flight_ < cfg_.window) {
        DataMsg m = std::move(own_queue_.front());
        own_queue_.pop_front();
        ++own_in_flight_;
        sequence(m.id, m.frag, std::move(m.payload));
      }
      if (!bcast_queue_.empty()) {
        auto [dest, msg] = std::move(bcast_queue_.front());
        bcast_queue_.pop_front();
        Frame f;
        f.from = transport_.self();
        f.to = dest;
        f.msgs.push_back(std::move(msg));
        // Piggyback the latest stability watermark on every fan-out frame.
        if (stable_ > 0) f.msgs.push_back(GcMsg{stable_, view_.id, 1});
        announced_stable_ = std::max(announced_stable_, stable_);
        transport_.send(std::move(f));
        continue;
      }
      if (stable_ > announced_stable_) {
        // Idle stability announcement: one frame per member.
        announced_stable_ = stable_;
        for (NodeId m : view_.members) {
          if (m == transport_.self()) continue;
          Frame f;
          f.from = transport_.self();
          f.to = m;
          f.msgs.push_back(GcMsg{stable_, view_.id, 1});
          transport_.send(std::move(f));
        }
        continue;
      }
      break;
    }

    // Non-sequencer: DATA (with a piggybacked cumulative ack) or a
    // standalone ack.
    bool own_ok = !own_queue_.empty() && own_in_flight_ < cfg_.window;
    bool ack_due = received_contig_ > acked_;
    if (!own_ok && !ack_due) break;
    Frame f;
    f.from = transport_.self();
    f.to = view_.leader();
    if (own_ok) {
      DataMsg m = std::move(own_queue_.front());
      own_queue_.pop_front();
      ++own_in_flight_;
      f.msgs.push_back(std::move(m));
    }
    if (ack_due) {
      AckMsg a;
      a.id = MsgId{transport_.self(), 0};
      a.seq = received_contig_;
      a.view = view_.id;
      a.stable = false;
      acked_ = received_contig_;
      f.msgs.push_back(a);
    }
    transport_.send(std::move(f));
  }
  in_pump_ = false;
}

}  // namespace fsr::baselines
