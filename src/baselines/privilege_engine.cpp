#include "baselines/privilege_engine.h"

#include <algorithm>
#include <cassert>

namespace fsr::baselines {

PrivilegeEngine::PrivilegeEngine(Transport& transport, PrivilegeConfig config,
                                 View view, DeliverFn deliver)
    : transport_(transport),
      cfg_(config),
      deliver_(std::move(deliver)),
      view_(std::move(view)) {
  assert(view_.contains(transport_.self()));
  if (my_pos() == 0) {
    // The first member starts with the token.
    holder_ = true;
    token_.next_seq = 1;
    token_.view = view_.id;
    token_.acked.assign(view_.size(), 0);
  }
}

void PrivilegeEngine::broadcast(Bytes payload) {
  std::uint64_t app = next_app_id_++;
  // Zero-copy segmentation: aliasing views into one refcounted buffer.
  Payload whole = make_payload(std::move(payload));
  std::uint32_t count = segment_count(whole.size(), cfg_.segment_size);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto [off, len] = segment_bounds(whole.size(), cfg_.segment_size, i);
    DataMsg m;
    m.id = MsgId{transport_.self(), next_lsn_++};
    m.view = view_.id;
    m.frag = FragInfo{app, i, count};
    m.payload = whole.sub(off, len);
    own_queue_.push_back(std::move(m));
  }
  pump();
}

void PrivilegeEngine::on_frame(const Frame& frame) {
  for (const auto& msg : frame.msgs) {
    if (const auto* s = std::get_if<SeqMsg>(&msg)) {
      handle_seq(*s);
    } else if (const auto* t = std::get_if<TokenMsg>(&msg)) {
      handle_token(*t);
    } else if (const auto* g = std::get_if<GcMsg>(&msg)) {
      handle_stable(g->all_delivered);
    } else if (std::holds_alternative<Heartbeat>(msg)) {
      handle_request();
    }
  }
  pump();
}

void PrivilegeEngine::handle_request() {
  // Someone wants the privilege: a parked holder resumes rotation.
  if (holder_ && parked_) {
    parked_ = false;
    token_.idle_laps = 0;
  }
}

void PrivilegeEngine::on_tx_ready() { pump(); }

void PrivilegeEngine::handle_seq(const SeqMsg& m) {
  records_.emplace(m.seq, Record{m.id, m.frag, m.payload});
  while (records_.count(received_contig_ + 1) > 0) ++received_contig_;
  try_deliver();
}

void PrivilegeEngine::handle_token(const TokenMsg& t) {
  holder_ = true;
  parked_ = false;
  request_sent_ = false;
  token_ = t;
  if (token_.acked.size() != view_.size()) token_.acked.assign(view_.size(), 0);
  sent_in_visit_ = 0;
  try_deliver();
}

void PrivilegeEngine::handle_stable(GlobalSeq w) {
  stable_seen_ = std::max(stable_seen_, w);
  try_deliver();
}

void PrivilegeEngine::try_deliver() {
  for (;;) {
    if (next_deliver_ > stable_seen_) break;
    auto it = records_.find(next_deliver_);
    if (it == records_.end()) break;
    Record rec = std::move(it->second);
    records_.erase(it);
    ++next_deliver_;

    NodeId origin = rec.id.origin;
    auto& r = reasm_[origin];
    if (rec.frag.index == 0) r = Reassembly{rec.frag.app_msg, 0, {}};
    if (rec.payload) r.data.insert(r.data.end(), rec.payload.begin(), rec.payload.end());
    ++r.next_index;
    if (r.next_index == rec.frag.count) {
      Delivery d;
      d.origin = origin;
      d.app_msg = rec.frag.app_msg;
      d.seq = next_deliver_ - 1;
      d.view = view_.id;
      d.payload = make_payload(std::move(r.data));
      r = Reassembly{};
      if (deliver_) deliver_(d);
    }
  }
}

void PrivilegeEngine::pump() {
  if (in_pump_) return;
  in_pump_ = true;
  if (view_.size() <= 1) {
    // Singleton: sequence and deliver locally.
    while (!own_queue_.empty()) {
      DataMsg m = std::move(own_queue_.front());
      own_queue_.pop_front();
      GlobalSeq s = token_.next_seq++;
      records_.emplace(s, Record{m.id, m.frag, m.payload});
      stable_seen_ = std::max(stable_seen_, s);
    }
    try_deliver();
    in_pump_ = false;
    return;
  }
  while (transport_.tx_idle()) {
    if (!holder_) {
      // A sender without the privilege nudges the (possibly parked) holder.
      if (!own_queue_.empty() && !request_sent_) {
        request_sent_ = true;
        for (NodeId member : view_.members) {
          if (member == transport_.self()) continue;
          Frame f;
          f.from = transport_.self();
          f.to = member;
          f.msgs.push_back(Heartbeat{view_.id});
          transport_.send(std::move(f));
        }
        continue;
      }
      break;
    }
    if (parked_) {
      if (own_queue_.empty()) break;  // stay parked until there is work
      parked_ = false;
      token_.idle_laps = 0;
      sent_in_visit_ = 0;
    }

    // 1. Drain pending fan-out copies of already-sequenced segments.
    if (!fanout_.empty()) {
      auto [dest, msg] = std::move(fanout_.front());
      fanout_.pop_front();
      Frame f;
      f.from = transport_.self();
      f.to = dest;
      f.msgs.push_back(std::move(msg));
      if (stable_seen_ > 0) f.msgs.push_back(GcMsg{stable_seen_, view_.id, 1});
      transport_.send(std::move(f));
      continue;
    }

    // 2. Pass the token if we decided to (after the fan-out drained).
    if (pass_pending_) {
      pass_pending_ = false;
      holder_ = false;
      Frame f;
      f.from = transport_.self();
      f.to = view_.at(my_pos() + 1);
      f.msgs.push_back(token_);
      if (stable_seen_ > 0) f.msgs.push_back(GcMsg{stable_seen_, view_.id, 1});
      transport_.send(std::move(f));
      continue;
    }

    // 3. Sequence the next own segment, or decide to pass.
    if (!own_queue_.empty() && sent_in_visit_ < cfg_.hold_max) {
      DataMsg m = std::move(own_queue_.front());
      own_queue_.pop_front();
      ++sent_in_visit_;
      SeqMsg out;
      out.id = m.id;
      out.seq = token_.next_seq++;
      out.view = view_.id;
      out.frag = m.frag;
      out.payload = std::move(m.payload);
      records_.emplace(out.seq, Record{out.id, out.frag, out.payload});
      while (records_.count(received_contig_ + 1) > 0) ++received_contig_;
      for (NodeId member : view_.members) {
        if (member != transport_.self()) fanout_.push_back({member, out});
      }
      continue;
    }

    // Nothing (more) to send this visit: refresh our token entry and pass
    // (or park the token after a full idle rotation, so an idle ring goes
    // quiet; a Heartbeat request wakes it).
    token_.acked[my_pos()] = received_contig_;
    GlobalSeq stable = *std::min_element(token_.acked.begin(), token_.acked.end());
    stable_seen_ = std::max(stable_seen_, stable);
    try_deliver();
    if (sent_in_visit_ == 0) {
      // idle_laps counts idle *visits*; three full rotations guarantee the
      // ack entries converged and the stability watermark reached everyone
      // (a freshly sequenced payload can lag behind the token: the token is
      // tiny and skips the marshal stage the payload still sits in).
      if (++token_.idle_laps > 3 * view_.size()) {
        parked_ = true;
        continue;
      }
    } else {
      token_.idle_laps = 0;
    }
    pass_pending_ = true;
  }
  in_pump_ = false;
}

}  // namespace fsr::baselines
