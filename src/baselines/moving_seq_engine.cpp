#include "baselines/moving_seq_engine.h"

#include <algorithm>
#include <cassert>

namespace fsr::baselines {

MovingSeqEngine::MovingSeqEngine(Transport& transport, MovingSeqConfig config,
                                 View view, DeliverFn deliver)
    : transport_(transport),
      cfg_(config),
      deliver_(std::move(deliver)),
      view_(std::move(view)) {
  assert(view_.contains(transport_.self()));
  if (my_pos() == 0) {
    holder_ = true;
    token_.next_seq = 1;
    token_.view = view_.id;
    token_.acked.assign(view_.size(), 0);
  }
}

void MovingSeqEngine::broadcast(Bytes payload) {
  std::uint64_t app = next_app_id_++;
  // Zero-copy segmentation: aliasing views into one refcounted buffer.
  Payload whole = make_payload(std::move(payload));
  std::uint32_t count = segment_count(whole.size(), cfg_.segment_size);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto [off, len] = segment_bounds(whole.size(), cfg_.segment_size, i);
    DataMsg m;
    m.id = MsgId{transport_.self(), next_lsn_++};
    m.view = view_.id;
    m.frag = FragInfo{app, i, count};
    m.payload = whole.sub(off, len);
    own_queue_.push_back(std::move(m));
  }
  pump();
}

void MovingSeqEngine::on_frame(const Frame& frame) {
  for (const auto& msg : frame.msgs) {
    if (const auto* d = std::get_if<DataMsg>(&msg)) {
      handle_data(*d);
    } else if (const auto* s = std::get_if<SeqMsg>(&msg)) {
      handle_assign(*s);
    } else if (const auto* t = std::get_if<TokenMsg>(&msg)) {
      handle_token(*t);
    } else if (const auto* g = std::get_if<GcMsg>(&msg)) {
      handle_stable(g->all_delivered);
    } else if (std::holds_alternative<Heartbeat>(msg)) {
      // Someone wants sequencing service: unpark the token.
      if (holder_ && parked_) {
        parked_ = false;
        token_.idle_laps = 0;
      }
    }
  }
  pump();
}

void MovingSeqEngine::on_tx_ready() { pump(); }

void MovingSeqEngine::note_unsequenced(const MsgId& id) {
  if (first_seq_.count(id) == 0) unsequenced_.push_back(id);
}

void MovingSeqEngine::record_assignment(GlobalSeq seq, const MsgId& id) {
  assignments_.emplace(seq, id);
  auto [it, inserted] = first_seq_.emplace(id, seq);
  if (!inserted && seq < it->second) it->second = seq;
}

bool MovingSeqEngine::slot_valid(GlobalSeq seq) const {
  auto it = assignments_.find(seq);
  if (it == assignments_.end()) return false;
  auto fit = first_seq_.find(it->second);
  return fit != first_seq_.end() && fit->second == seq;
}

void MovingSeqEngine::advance_contig() {
  for (;;) {
    GlobalSeq next = received_contig_ + 1;
    auto it = assignments_.find(next);
    if (it == assignments_.end()) break;
    // A valid (deliverable) slot counts once its payload is here; a null
    // slot (duplicate assignment, lower seq won) counts unconditionally.
    if (slot_valid(next) && store_.count(it->second) == 0) break;
    ++received_contig_;
  }
}

void MovingSeqEngine::handle_data(const DataMsg& m) {
  if (store_.emplace(m.id, Stored{m.frag, m.payload}).second) {
    note_unsequenced(m.id);
  }
  advance_contig();
  try_deliver();
}

void MovingSeqEngine::handle_assign(const SeqMsg& m) {
  record_assignment(m.seq, m.id);
  advance_contig();
  try_deliver();
}

void MovingSeqEngine::handle_token(const TokenMsg& t) {
  holder_ = true;
  parked_ = false;
  request_sent_ = false;
  token_ = t;
  if (token_.acked.size() != view_.size()) token_.acked.assign(view_.size(), 0);
  assigned_in_visit_ = 0;
  try_deliver();
}

void MovingSeqEngine::handle_stable(GlobalSeq w) {
  stable_seen_ = std::max(stable_seen_, w);
  try_deliver();
}

void MovingSeqEngine::try_deliver() {
  for (;;) {
    if (next_deliver_ > stable_seen_) break;
    auto it = assignments_.find(next_deliver_);
    if (it == assignments_.end()) break;
    if (!slot_valid(next_deliver_)) {
      // Null slot: the id was delivered under a lower sequence number.
      assignments_.erase(it);
      ++next_deliver_;
      continue;
    }
    auto sit = store_.find(it->second);
    if (sit == store_.end()) break;
    MsgId id = it->second;
    Stored st = std::move(sit->second);
    store_.erase(sit);
    assignments_.erase(it);
    ++next_deliver_;

    auto& r = reasm_[id.origin];
    if (st.frag.index == 0) r = Reassembly{st.frag.app_msg, 0, {}};
    if (st.payload) r.data.insert(r.data.end(), st.payload.begin(), st.payload.end());
    ++r.next_index;
    if (r.next_index == st.frag.count) {
      Delivery d;
      d.origin = id.origin;
      d.app_msg = st.frag.app_msg;
      d.seq = next_deliver_ - 1;
      d.view = view_.id;
      d.payload = make_payload(std::move(r.data));
      r = Reassembly{};
      if (deliver_) deliver_(d);
    }
  }
}

void MovingSeqEngine::pump() {
  if (in_pump_) return;
  in_pump_ = true;
  if (view_.size() <= 1) {
    while (!own_queue_.empty()) {
      DataMsg m = std::move(own_queue_.front());
      own_queue_.pop_front();
      GlobalSeq s = token_.next_seq++;
      store_.emplace(m.id, Stored{m.frag, m.payload});
      record_assignment(s, m.id);
      stable_seen_ = std::max(stable_seen_, s);
    }
    try_deliver();
    in_pump_ = false;
    return;
  }

  while (transport_.tx_idle()) {
    // 1. Disseminate own payloads (independent of the token).
    if (!own_queue_.empty() && data_fanout_.empty()) {
      DataMsg m = std::move(own_queue_.front());
      own_queue_.pop_front();
      store_.emplace(m.id, Stored{m.frag, m.payload});
      note_unsequenced(m.id);
      for (NodeId member : view_.members) {
        if (member != transport_.self()) data_fanout_.push_back({member, m});
      }
    }
    if (!data_fanout_.empty()) {
      auto [dest, msg] = std::move(data_fanout_.front());
      data_fanout_.pop_front();
      Frame f;
      f.from = transport_.self();
      f.to = dest;
      f.msgs.push_back(std::move(msg));
      if (stable_seen_ > 0) f.msgs.push_back(GcMsg{stable_seen_, view_.id, 1});
      transport_.send(std::move(f));
      continue;
    }

    if (!holder_) {
      // Unsequenced backlog but no token in sight: nudge the holder.
      if (!unsequenced_.empty() && !request_sent_) {
        request_sent_ = true;
        for (NodeId member : view_.members) {
          if (member == transport_.self()) continue;
          Frame f;
          f.from = transport_.self();
          f.to = member;
          f.msgs.push_back(Heartbeat{view_.id});
          transport_.send(std::move(f));
        }
        continue;
      }
      break;
    }
    if (parked_) {
      if (unsequenced_.empty()) break;
      parked_ = false;
      token_.idle_laps = 0;
      assigned_in_visit_ = 0;
    }

    // 2. Drain assignment fan-out (tiny control frames).
    if (!assign_fanout_.empty()) {
      auto [dest, msg] = std::move(assign_fanout_.front());
      assign_fanout_.pop_front();
      Frame f;
      f.from = transport_.self();
      f.to = dest;
      f.msgs.push_back(std::move(msg));
      if (stable_seen_ > 0) f.msgs.push_back(GcMsg{stable_seen_, view_.id, 1});
      transport_.send(std::move(f));
      continue;
    }

    // 3. Pass the token once the fan-out drained.
    if (pass_pending_) {
      pass_pending_ = false;
      holder_ = false;
      Frame f;
      f.from = transport_.self();
      f.to = view_.at(my_pos() + 1);
      f.msgs.push_back(token_);
      if (stable_seen_ > 0) f.msgs.push_back(GcMsg{stable_seen_, view_.id, 1});
      transport_.send(std::move(f));
      continue;
    }

    // 4. Assign sequence numbers to pending messages.
    while (!unsequenced_.empty() && first_seq_.count(unsequenced_.front()) > 0) {
      unsequenced_.pop_front();  // another holder beat us to it
    }
    if (!unsequenced_.empty() && assigned_in_visit_ < cfg_.batch) {
      MsgId id = unsequenced_.front();
      unsequenced_.pop_front();
      ++assigned_in_visit_;
      GlobalSeq s = token_.next_seq++;
      record_assignment(s, id);
      advance_contig();
      SeqMsg out;
      out.id = id;
      out.seq = s;
      out.view = view_.id;
      // No payload: receivers already hold it from the sender's fan-out.
      for (NodeId member : view_.members) {
        if (member != transport_.self()) assign_fanout_.push_back({member, out});
      }
      continue;
    }

    // 5. Nothing to assign: update the token entry and pass (or park after
    //    enough idle rotations for stability to converge and spread).
    token_.acked[my_pos()] = received_contig_;
    GlobalSeq stable = *std::min_element(token_.acked.begin(), token_.acked.end());
    stable_seen_ = std::max(stable_seen_, stable);
    try_deliver();
    if (assigned_in_visit_ == 0) {
      if (++token_.idle_laps > 3 * view_.size()) {
        parked_ = true;
        continue;
      }
    } else {
      token_.idle_laps = 0;
    }
    pass_pending_ = true;
  }
  in_pump_ = false;
}

}  // namespace fsr::baselines
