#include "app/kv_store.h"

#include "common/bytes.h"
#include "common/log.h"

namespace fsr {

namespace {

Bytes encode(KvStore::Op op, std::initializer_list<std::string_view> fields) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  for (auto f : fields) w.str(f);
  return w.take();
}

}  // namespace

Bytes KvStore::encode_put(std::string_view key, std::string_view value) {
  return encode(Op::kPut, {key, value});
}

Bytes KvStore::encode_del(std::string_view key) { return encode(Op::kDel, {key}); }

Bytes KvStore::encode_cas(std::string_view key, std::string_view expected,
                          std::string_view value) {
  return encode(Op::kCas, {key, expected, value});
}

void KvStore::apply(NodeId, std::span<const std::uint8_t> command) {
  try {
    ByteReader r(command);
    auto op = static_cast<Op>(r.u8());
    switch (op) {
      case Op::kPut: {
        std::string key = r.str();
        std::string value = r.str();
        data_[key] = std::move(value);
        break;
      }
      case Op::kDel: {
        data_.erase(r.str());
        break;
      }
      case Op::kCas: {
        std::string key = r.str();
        std::string expected = r.str();
        std::string value = r.str();
        auto it = data_.find(key);
        if (it != data_.end() && it->second == expected) {
          it->second = std::move(value);
        } else {
          ++failed_cas_;
        }
        break;
      }
      default:
        FSR_WARN("kv: unknown opcode %u ignored", static_cast<unsigned>(op));
        return;
    }
    ++applied_;
  } catch (const CodecError& e) {
    FSR_WARN("kv: malformed command ignored: %s", e.what());
  }
}

std::uint64_t KvStore::fingerprint() const {
  // FNV-1a over sorted (key, value) pairs; std::map iterates sorted.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  for (const auto& [k, v] : data_) {
    mix(k);
    mix(v);
  }
  return h;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace fsr
