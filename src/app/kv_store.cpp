#include "app/kv_store.h"

#include "common/bytes.h"
#include "common/log.h"

namespace fsr {

namespace {

Bytes encode(KvStore::Op op, std::initializer_list<std::string_view> fields) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  for (auto f : fields) w.str(f);
  return w.take();
}

}  // namespace

Bytes KvStore::encode_put(std::string_view key, std::string_view value) {
  return encode(Op::kPut, {key, value});
}

Bytes KvStore::encode_del(std::string_view key) { return encode(Op::kDel, {key}); }

Bytes KvStore::encode_cas(std::string_view key, std::string_view expected,
                          std::string_view value) {
  return encode(Op::kCas, {key, expected, value});
}

namespace {

Bytes reply_str(std::string_view s) { return Bytes(s.begin(), s.end()); }

}  // namespace

Bytes KvStore::encode_get(std::string_view key) {
  ByteWriter w;
  w.str(key);
  return w.take();
}

std::optional<std::string> KvStore::decode_get_reply(std::span<const std::uint8_t> reply) {
  if (reply.empty() || reply[0] != '=') return std::nullopt;
  return std::string(reply.begin() + 1, reply.end());
}

void KvStore::apply(NodeId origin, std::span<const std::uint8_t> command) {
  apply_with_reply(origin, command);
}

Bytes KvStore::apply_with_reply(NodeId, std::span<const std::uint8_t> command) {
  try {
    ByteReader r(command);
    auto op = static_cast<Op>(r.u8());
    switch (op) {
      case Op::kPut: {
        std::string key = r.str();
        std::string value = r.str();
        data_[key] = std::move(value);
        ++applied_;
        return reply_str("OK");
      }
      case Op::kDel: {
        data_.erase(r.str());
        ++applied_;
        return reply_str("OK");
      }
      case Op::kCas: {
        std::string key = r.str();
        std::string expected = r.str();
        std::string value = r.str();
        auto it = data_.find(key);
        ++applied_;
        if (it != data_.end() && it->second == expected) {
          it->second = std::move(value);
          return reply_str("OK");
        }
        ++failed_cas_;
        return reply_str("FAIL");
      }
      default:
        FSR_WARN("kv: unknown opcode %u ignored", static_cast<unsigned>(op));
        return reply_str("ERR");
    }
  } catch (const CodecError& e) {
    FSR_WARN("kv: malformed command ignored: %s", e.what());
    return reply_str("ERR");
  }
}

Bytes KvStore::query(std::span<const std::uint8_t> q) const {
  try {
    ByteReader r(q);
    std::string key = r.str();
    auto it = data_.find(key);
    if (it == data_.end()) return reply_str("!");
    Bytes out;
    out.reserve(it->second.size() + 1);
    out.push_back('=');
    out.insert(out.end(), it->second.begin(), it->second.end());
    return out;
  } catch (const CodecError&) {
    return reply_str("?");
  }
}

std::uint64_t KvStore::fingerprint() const {
  // FNV-1a over sorted (key, value) pairs; std::map iterates sorted.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  for (const auto& [k, v] : data_) {
    mix(k);
    mix(v);
  }
  return h;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace fsr
