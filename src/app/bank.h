// A replicated bank ledger: deposits, withdrawals and transfers. Whether a
// withdrawal succeeds depends on every previous command — any divergence in
// delivery order between replicas shows up instantly as different balances.
// The conserved total (deposits minus withdrawals) gives a cheap global
// invariant for stress tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "app/state_machine.h"

namespace fsr {

class Bank final : public StateMachine {
 public:
  enum class Op : std::uint8_t { kDeposit = 1, kWithdraw = 2, kTransfer = 3 };

  static Bytes encode_deposit(std::string_view account, std::int64_t amount);
  static Bytes encode_withdraw(std::string_view account, std::int64_t amount);
  static Bytes encode_transfer(std::string_view from, std::string_view to,
                               std::int64_t amount);

  void apply(NodeId origin, std::span<const std::uint8_t> command) override;
  std::uint64_t fingerprint() const override;

  std::int64_t balance(const std::string& account) const;
  std::int64_t total() const;  // sum of all balances
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t applied() const { return applied_; }

 private:
  std::map<std::string, std::int64_t> accounts_;
  std::uint64_t applied_ = 0;
  std::uint64_t rejected_ = 0;  // insufficient funds
};

}  // namespace fsr
