#include "app/bank.h"

#include "common/bytes.h"
#include "common/log.h"

namespace fsr {

Bytes Bank::encode_deposit(std::string_view account, std::int64_t amount) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kDeposit));
  w.str(account);
  w.u64(static_cast<std::uint64_t>(amount));
  return w.take();
}

Bytes Bank::encode_withdraw(std::string_view account, std::int64_t amount) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kWithdraw));
  w.str(account);
  w.u64(static_cast<std::uint64_t>(amount));
  return w.take();
}

Bytes Bank::encode_transfer(std::string_view from, std::string_view to,
                            std::int64_t amount) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kTransfer));
  w.str(from);
  w.str(to);
  w.u64(static_cast<std::uint64_t>(amount));
  return w.take();
}

void Bank::apply(NodeId, std::span<const std::uint8_t> command) {
  try {
    ByteReader r(command);
    auto op = static_cast<Op>(r.u8());
    switch (op) {
      case Op::kDeposit: {
        std::string account = r.str();
        auto amount = static_cast<std::int64_t>(r.u64());
        accounts_[account] += amount;
        break;
      }
      case Op::kWithdraw: {
        std::string account = r.str();
        auto amount = static_cast<std::int64_t>(r.u64());
        auto it = accounts_.find(account);
        if (it == accounts_.end() || it->second < amount) {
          ++rejected_;
        } else {
          it->second -= amount;
        }
        break;
      }
      case Op::kTransfer: {
        std::string from = r.str();
        std::string to = r.str();
        auto amount = static_cast<std::int64_t>(r.u64());
        auto it = accounts_.find(from);
        if (it == accounts_.end() || it->second < amount) {
          ++rejected_;
        } else {
          it->second -= amount;
          accounts_[to] += amount;
        }
        break;
      }
      default:
        FSR_WARN("bank: unknown opcode ignored");
        return;
    }
    ++applied_;
  } catch (const CodecError& e) {
    FSR_WARN("bank: malformed command ignored: %s", e.what());
  }
}

std::uint64_t Bank::fingerprint() const {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix_str = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  for (const auto& [name, bal] : accounts_) {
    mix_str(name);
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(static_cast<std::uint64_t>(bal) >> (8 * i));
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::int64_t Bank::balance(const std::string& account) const {
  auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second;
}

std::int64_t Bank::total() const {
  std::int64_t sum = 0;
  for (const auto& [name, bal] : accounts_) sum += bal;
  return sum;
}

}  // namespace fsr
