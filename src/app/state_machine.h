// State-machine replication on top of TO-broadcast — the application the
// paper motivates (§1): every replica applies the same commands in the same
// order, so replica state stays identical despite crashes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "common/types.h"
#include "vsc/group.h"

namespace fsr {

/// A deterministic state machine: applies commands, answers queries, and
/// can fingerprint its state (for replica-consistency checks).
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply a command delivered by TO-broadcast. Must be deterministic. The
  /// span may alias the transport's receive buffer — copy whatever must
  /// outlive the call.
  virtual void apply(NodeId origin, std::span<const std::uint8_t> command) = 0;

  /// Apply a command and produce a client-visible reply (the gateway caches
  /// it per session for exactly-once retries, so it too must be a
  /// deterministic function of state + command). Defaults to apply() with
  /// an empty reply for machines without a reply vocabulary.
  virtual Bytes apply_with_reply(NodeId origin, std::span<const std::uint8_t> command) {
    apply(origin, command);
    return {};
  }

  /// Answer a read-only query from local state, without broadcasting (the
  /// paper's footnote 1: reads need not be totally ordered). Must not
  /// mutate state. Default: no query vocabulary, empty answer.
  virtual Bytes query(std::span<const std::uint8_t> q) const {
    (void)q;
    return {};
  }

  /// A digest of the full state; equal digests <=> equal replicas.
  virtual std::uint64_t fingerprint() const = 0;
};

/// Binds a StateMachine to a GroupMember: commands submitted on any replica
/// are TO-broadcast and applied everywhere in the identical total order.
/// Read-only queries go straight to the local state machine (the paper's
/// footnote 1: reads need not be broadcast).
class Replica {
 public:
  Replica(GroupMember& member, StateMachine& machine)
      : member_(member), machine_(machine) {}

  /// Submit a command for replicated execution.
  void submit(Bytes command) { member_.broadcast(std::move(command)); }

  /// Wire this replica's apply loop into the group's delivery callback.
  /// (Use when constructing the GroupMember.)
  static Engine::DeliverFn apply_fn(StateMachine& machine,
                                    std::function<void(const Delivery&)> tap = {}) {
    return [&machine, tap = std::move(tap)](const Delivery& d) {
      machine.apply(d.origin, d.payload);
      if (tap) tap(d);
    };
  }

  GroupMember& member() { return member_; }
  StateMachine& machine() { return machine_; }
  std::uint64_t fingerprint() const { return machine_.fingerprint(); }

 private:
  GroupMember& member_;
  StateMachine& machine_;
};

}  // namespace fsr
