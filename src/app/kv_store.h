// A replicated key-value store: the canonical state machine for testing and
// demonstrating total order broadcast. Commands are PUT / DEL / CAS
// (compare-and-swap); CAS is where ordering visibly matters — replicas that
// disagreed on command order would diverge immediately.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "app/state_machine.h"

namespace fsr {

class KvStore final : public StateMachine {
 public:
  enum class Op : std::uint8_t { kPut = 1, kDel = 2, kCas = 3 };

  // --- command encoding (what gets TO-broadcast) ---
  static Bytes encode_put(std::string_view key, std::string_view value);
  static Bytes encode_del(std::string_view key);
  static Bytes encode_cas(std::string_view key, std::string_view expected,
                          std::string_view value);

  /// Read-only query encoding (answered locally via query(), never
  /// broadcast) and its reply decoding: "=<value>" when present, "!" when
  /// absent, "?" on a malformed query.
  static Bytes encode_get(std::string_view key);
  static std::optional<std::string> decode_get_reply(std::span<const std::uint8_t> reply);

  // --- StateMachine ---
  void apply(NodeId origin, std::span<const std::uint8_t> command) override;
  /// Replies: "OK" for put/del and a successful CAS, "FAIL" for a lost CAS
  /// (ordering made visible to the client), "ERR" for malformed commands.
  Bytes apply_with_reply(NodeId origin, std::span<const std::uint8_t> command) override;
  Bytes query(std::span<const std::uint8_t> q) const override;
  std::uint64_t fingerprint() const override;

  // --- local (read-only) queries ---
  std::optional<std::string> get(const std::string& key) const;
  std::size_t size() const { return data_.size(); }
  const std::map<std::string, std::string>& contents() const { return data_; }
  std::uint64_t applied_commands() const { return applied_; }
  std::uint64_t failed_cas() const { return failed_cas_; }

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
  std::uint64_t failed_cas_ = 0;
};

}  // namespace fsr
