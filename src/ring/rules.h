// Pure FSR routing arithmetic (paper §4.1, Fig. 4). Positions are indices in
// the current view's ring: 0 = leader/sequencer, 1..t = backups, the rest
// are standard processes. All messages travel clockwise (to the successor).
//
// A broadcast originated at position i proceeds as:
//   DATA pass : p_i -> p_{i+1} -> ... -> p_0          (omitted when i == 0)
//   SEQ  pass : p_0 -> p_1 -> ... -> p_{i-1}          (payload + seq number)
//   ACK  pass : emitted at the SEQ stop; "stable" acks certify the pair is
//               stored by the leader and all t backups, "pending" acks (only
//               when the origin is a backup) circulate until p_t which
//               converts them to stable.
//
// Delivery (uniform total order):
//   * a process at position j >= t delivers on receiving SEQ (at that point
//     p_0..p_t all store the pair -> stable despite t crashes);
//   * the leader delivers at sequencing time iff t == 0;
//   * every other process delivers on receiving a stable ACK.
//
// These functions are pure so the exact hop-by-hop behaviour is verified by
// exhaustive truth-table tests over all (n, t, i, j).
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.h"

namespace fsr::ring {

enum class AckKind : std::uint8_t {
  kNone,     // no ack needed (everyone already delivered)
  kStable,   // certifies stability; receivers deliver
  kPending,  // backup-origin case: not yet stable, circulates to p_t
};

struct Topology {
  std::uint32_t n = 1;  // ring size
  std::uint32_t t = 0;  // number of backups (tolerated failures), t < n

  constexpr Position succ(Position p) const { return (p + 1) % n; }
  constexpr Position pred(Position p) const { return (p + n - 1) % n; }

  constexpr bool is_leader(Position p) const { return p == 0; }
  constexpr bool is_backup(Position p) const { return p >= 1 && p <= t; }
  constexpr bool is_standard(Position p) const { return p > t; }

  /// Last process of the SEQ pass: the predecessor of the origin.
  constexpr Position seq_stop(Position origin) const { return pred(origin); }

  /// Does the SEQ pass (p_1 .. p_{origin-1}) reach position j at all?
  /// (j == 0 never: the leader sends the SEQ pass, it does not receive it.)
  constexpr bool seq_pass_covers(Position origin, Position j) const {
    if (j == 0) return false;
    Position stop = seq_stop(origin);
    if (stop == 0) return false;  // origin == 1: empty pass
    return j <= stop && !(origin != 0 && j >= origin);
  }

  /// May position j deliver upon receiving the SEQ message?
  constexpr bool deliver_on_seq(Position j) const { return j >= t; }

  /// Does the leader deliver its own sequencing output immediately?
  constexpr bool leader_delivers_at_sequencing() const { return t == 0; }

  /// What kind of ack does the SEQ-stop process emit?
  constexpr AckKind ack_at_seq_stop(Position origin) const {
    Position stop = seq_stop(origin);
    if (stop < t) return AckKind::kPending;  // origin is a backup (1..t)
    if (stop == stable_ack_stop()) return AckKind::kNone;  // i==0 && t==0
    return AckKind::kStable;
  }

  /// A pending ack circulates until p_t (which converts it to stable).
  constexpr Position pending_ack_stop() const { return t; }

  /// A stable ack circulates until p_{t-1} (p_{n-1} when t == 0).
  constexpr Position stable_ack_stop() const { return (t + n - 1) % n; }

  /// Number of rounds from the initial send until the last process delivers,
  /// for a standard-origin broadcast in an idle system (paper §4.3.1):
  /// L(i) = 2n + t - i - 1.
  constexpr std::uint32_t analytic_latency(Position origin) const {
    return 2 * n + t - origin - 1;
  }
};

/// Effective number of backups for a view of size n: t cannot meet or exceed
/// the ring size (t < n, paper §4).
constexpr std::uint32_t effective_t(std::uint32_t configured_t, std::uint32_t n) {
  return n == 0 ? 0 : (configured_t < n ? configured_t : n - 1);
}

}  // namespace fsr::ring
