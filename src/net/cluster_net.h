// Packet-level model of a small cluster on a fully switched, full-duplex
// Ethernet LAN (the paper's testbed, §5.1). Substitutes for the physical
// dual-Itanium / Fast Ethernet cluster:
//
//   * per-node TX serializer: one NIC per node; frames leave one at a time
//     at the configured line rate, with per-MSS-packet Ethernet/IP/TCP
//     overhead (this is what makes Netperf-style raw TCP top out at
//     ~94 Mb/s on a 100 Mb/s wire — Table 1);
//   * a switch with separate collision domains: traffic p1->p2 never
//     interferes with p3->p4 (paper §3); modeled as a constant
//     store-and-forward latency per frame;
//   * per-node CPU: a single-server queue charging a fixed + per-byte
//     processing cost (a) on every received frame before it reaches the
//     protocol and (b) on every first-hop frame carrying a payload the
//     sender itself originated (marshalling an own message through the
//     middleware stack costs the same as receiving one). This models the
//     paper's DREAM/Java layer; it pulls FSR goodput below the raw-wire
//     ceiling (79 vs 94 Mb/s) and keeps it flat across n and k — every
//     TO-broadcast passes through every node's CPU exactly once.
//
// Full duplex: TX and RX paths of a node are independent, so a node can
// simultaneously send and receive (paper §3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "proto/wire.h"
#include "sim/simulator.h"

namespace fsr {

struct NetConfig {
  /// Line rate of every NIC, bits per second (paper: 100 Mb/s Fast Ethernet).
  double bandwidth_bps = 100e6;

  /// Switch store-and-forward + propagation latency per frame.
  Time switch_latency = 30 * kMicrosecond;

  /// TCP payload bytes per on-wire packet (MSS).
  std::uint32_t mss = 1448;

  /// Ethernet + IP + TCP + preamble + inter-frame gap bytes charged per
  /// on-wire packet. 1448/(1448+90) = 94.1% -> the Table 1 raw TCP number.
  std::uint32_t per_packet_overhead = 90;

  /// Per-frame fixed receive-processing cost (kernel + middleware entry).
  Time cpu_fixed = 30 * kMicrosecond;

  /// Per-byte receive-processing cost in ns (deserialize + copy through the
  /// middleware stack). 100 ns/B reproduces the paper's ~79 Mb/s plateau on
  /// its Java stack; the raw-network benchmark uses ~0 (kernel fast path).
  double cpu_per_byte_ns = 100.0;

  /// Relative uniform jitter applied to each CPU service time (0 = fully
  /// deterministic). Real machines always have some: without it the
  /// lock-step ring settles into periodic patterns whose efficiency
  /// depends brittly on n and k (phase-locking artifacts).
  double cpu_jitter = 0.0;

  /// Seed for the jitter stream (runs remain reproducible).
  std::uint64_t seed = 1;

  static NetConfig raw_wire() {
    NetConfig c;
    c.cpu_fixed = 2 * kMicrosecond;
    c.cpu_per_byte_ns = 2.0;
    return c;
  }

  /// A tier above the paper's testbed: same switch, kernel-grade CPU path
  /// (the middleware cost is what flattens FSR's curve once the wire is no
  /// longer the bottleneck — bench_netprofile charts exactly that).
  static NetConfig tier(double bps, double cpu_ns_per_byte = 100.0) {
    NetConfig c;
    c.bandwidth_bps = bps;
    c.cpu_per_byte_ns = cpu_ns_per_byte;
    return c;
  }
};

/// Heterogeneous override for one node's NIC/CPU or one directed link.
/// Zero-valued fields inherit the global NetConfig; a default-constructed
/// profile is "no override" (resetting to it clears the override).
///
/// Node profiles model hardware diversity ("node 3 is on a 10x slower
/// NIC", "node 2 is a slow machine"): they scale the node's TX line rate
/// and CPU service times.
///
/// Link profiles model path diversity ("ring link 2->3 drops 0.1%"):
/// constant extra latency, seeded per-frame jitter, and seeded loss.
/// Loss does NOT violate the paper's reliable-FIFO-channel assumption:
/// the cluster runs over TCP, where a lost wire packet surfaces to the
/// protocol as *latency* (retransmission), never as a missing frame. A
/// "lost" frame is therefore charged `retransmit_delay` extra arrival
/// latency per lost transmission (geometric under repeated loss) and the
/// per-link FIFO clamp keeps it from being overtaken. The drop decisions
/// derive from NetConfig::seed and the link endpoints, so the same seed
/// reproduces the same drop set.
struct NetProfile {
  /// NIC line rate override, bits/s (node profile; 0 = inherit).
  double bandwidth_bps = 0;

  /// Multiplier on CPU service times (node profile; models a slow or
  /// oversubscribed machine). 1.0 = inherit.
  double cpu_scale = 1.0;

  /// Per-transmission loss probability in [0, 1) (link profile).
  double loss_rate = 0;

  /// Extra arrival latency charged per lost transmission (link profile).
  Time retransmit_delay = 200 * kMicrosecond;

  /// Seeded per-frame extra latency, uniform in [0, jitter_max] (link
  /// profile; per-link FIFO still holds via the arrival clamp).
  Time jitter_max = 0;

  /// Constant extra one-way latency (link profile).
  Time extra_latency = 0;

  bool is_default() const {
    return bandwidth_bps == 0 && cpu_scale == 1.0 && loss_rate == 0 &&
           jitter_max == 0 && extra_latency == 0;
  }
};

/// Simulated cluster network. NodeIds are 0..n-1.
class ClusterNet {
 public:
  using DeliverFn = std::function<void(const Frame&)>;
  using TxReadyFn = std::function<void(NodeId)>;

  ClusterNet(Simulator& sim, NetConfig config, std::size_t n_nodes);

  /// Protocol receive entry point (called after RX CPU processing).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Invoked when a node's NIC TX queue drains (enables send pacing and
  /// ack piggybacking decisions upstream).
  void set_tx_ready(TxReadyFn fn) { tx_ready_ = std::move(fn); }

  /// Observe every frame as it is submitted to the network (tracing).
  void set_frame_tap(DeliverFn fn) { frame_tap_ = std::move(fn); }

  /// Queue a frame on frame.from's NIC. Destination must differ from source.
  void send(Frame frame);

  /// True if the node's outbound path can accept another frame: nothing is
  /// marshalling and nothing is queued behind the (possibly active) wire
  /// serializer. This lets a sender overlap marshalling of the next frame
  /// with transmission of the current one while keeping at most one frame
  /// queued (so ack piggybacking still sees batched control traffic).
  bool tx_idle(NodeId node) const;

  /// Crash-stop: the node stops sending, receiving and processing. Frames
  /// already on the wire to it are dropped on arrival.
  void crash(NodeId node);
  bool alive(NodeId node) const { return !nodes_[node].crashed; }

  // --- deterministic fault injection (driven by src/harness/fault_plan) ---
  //
  // All link faults act at the NIC->switch hand-off: frames a node already
  // fully transmitted are "in the switch" and keep their scheduled arrival.
  // Per-link FIFO order is always preserved (the paper assumes reliable
  // FIFO channels): when injected delays vary, arrivals are clamped so no
  // frame overtakes an earlier one on the same directed link.

  /// Extra one-way latency (on top of switch_latency) for every frame
  /// entering the switch on `from`->`to` from now on. 0 clears.
  void set_link_delay(NodeId from, NodeId to, Time extra);

  /// Seeded per-frame extra latency, uniform in [0, max_extra], applied to
  /// every link (inter-link reordering; per-link FIFO still holds). The
  /// stream derives from NetConfig::seed, so runs stay reproducible.
  void set_link_jitter(Time max_extra);

  /// Cut the directed link: frames entering the switch while cut are
  /// buffered (released in FIFO order on heal) or, with `drop`, discarded.
  /// Dropping frames to a live node violates the reliable-channel
  /// assumption — it exists to seed deliberate violations.
  void cut_link(NodeId from, NodeId to, bool drop = false);
  void heal_link(NodeId from, NodeId to);
  /// Heal every cut link AND reset every node/link NetProfile and injected
  /// delay/jitter to defaults — the full "network back to a uniform
  /// cluster" reset the harness runs between scenario phases.
  void heal_all_links();
  bool link_cut(NodeId from, NodeId to) const;

  /// Discard the next `count` frames entering the switch on `from`->`to`
  /// (sabotage: violates reliable channels on purpose).
  void drop_frames(NodeId from, NodeId to, std::size_t count);

  // --- heterogeneous network profiles (see NetProfile) ---

  /// Override one node's NIC line rate / CPU scale. A default-constructed
  /// profile clears the override. Takes effect for frames entering the TX
  /// or CPU stage from now on; in-service frames keep their schedule.
  void set_node_profile(NodeId node, const NetProfile& profile);

  /// Override one directed link's loss / jitter / extra latency. A
  /// default-constructed profile clears the override. The loss and jitter
  /// streams are seeded from (NetConfig::seed, from, to), so a run's drop
  /// set is a pure function of the seed.
  void set_link_profile(NodeId from, NodeId to, const NetProfile& profile);

  const NetProfile& node_profile(NodeId node) const { return nodes_[node].profile; }
  NetProfile link_profile(NodeId from, NodeId to) const;

  /// Node's effective NIC line rate (profile override or the global rate).
  double node_bandwidth_bps(NodeId node) const {
    return nodes_[node].profile.bandwidth_bps > 0 ? nodes_[node].profile.bandwidth_bps
                                                  : config_.bandwidth_bps;
  }

  struct FaultStats {
    std::uint64_t frames_held = 0;        // buffered by a cut link
    std::uint64_t frames_released = 0;    // released on heal
    std::uint64_t dropped_cut = 0;        // discarded by a drop-mode cut
    std::uint64_t dropped_sabotage = 0;   // discarded by drop_frames()
    std::uint64_t dropped_to_crashed = 0; // arrived at a crashed node
    std::uint64_t lost_transmissions = 0; // lossy-link retransmits (frame still
                                          // arrives, delayed — TCP semantics)
  };
  const FaultStats& fault_stats() const { return fault_stats_; }

  std::size_t size() const { return nodes_.size(); }
  const NetConfig& config() const { return config_; }

  /// Time a frame of `bytes` payload occupies the wire at the global line
  /// rate, including per-packet protocol overhead.
  Time wire_time(std::size_t bytes) const;

  /// Same, at `node`'s effective line rate (NetProfile override).
  Time wire_time(NodeId node, std::size_t bytes) const;

  /// Receive-side CPU cost for a frame of `bytes` at the global CPU speed.
  Time cpu_time(std::size_t bytes) const;

  /// Same, scaled by `node`'s NetProfile::cpu_scale.
  Time cpu_time(NodeId node, std::size_t bytes) const;

  struct NodeStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t payload_bytes_sent = 0;  // encoded frame bytes
    std::uint64_t wire_bytes_sent = 0;     // including per-packet overhead
    Time cpu_busy = 0;                     // total CPU service time
    Time tx_busy = 0;                      // total wire serialization time
  };
  const NodeStats& stats(NodeId node) const { return nodes_[node].stats; }

 private:
  struct PendingFrame {
    Frame frame;
    std::size_t bytes;      // encoded size, computed once at send()
    bool outbound = false;  // CPU stage feeds TX (true) or delivery (false)
  };

  struct Node {
    std::deque<PendingFrame> tx_queue;
    bool tx_busy = false;
    std::deque<PendingFrame> cpu_queue;
    bool cpu_busy = false;
    std::size_t outbound_in_cpu = 0;  // frames still marshalling before TX
    bool ready_announced = false;     // tx_ready fired since the last send
    bool crashed = false;
    NetProfile profile;  // NIC/CPU override (bandwidth_bps, cpu_scale)
    NodeStats stats;
  };

  /// Per-directed-link fault state, lazily allocated on the first fault
  /// call so the fault-free fast path stays untouched.
  struct LinkState {
    Time extra_delay = 0;
    bool cut = false;
    bool drop_while_cut = false;
    std::size_t drop_next = 0;
    Time last_arrival = 0;  // FIFO clamp under varying delays
    std::deque<PendingFrame> held;
    NetProfile profile;  // loss / jitter / extra latency override
    /// Seeded loss+jitter stream for this link (allocated with the profile;
    /// per-link so one link's draws never perturb another's).
    std::unique_ptr<Rng> profile_rng;
  };

  void enqueue_tx(NodeId node, PendingFrame pf);
  void start_tx(NodeId node);
  void finish_tx(NodeId node, PendingFrame pf);
  void route_to_switch(PendingFrame pf);
  void schedule_arrival(LinkState& link, Time when, PendingFrame pf);
  void arrive(PendingFrame pf);
  void start_cpu(NodeId node);
  void maybe_tx_ready(NodeId node);

  LinkState& link(NodeId from, NodeId to);
  const LinkState* find_link(NodeId from, NodeId to) const;

  Simulator& sim_;
  NetConfig config_;
  std::vector<Node> nodes_;
  DeliverFn deliver_;
  TxReadyFn tx_ready_;
  DeliverFn frame_tap_;
  Rng jitter_rng_;

  bool faults_active_ = false;
  std::vector<LinkState> links_;  // n*n, indexed from * n + to; see link()
  Time link_jitter_max_ = 0;
  Rng link_rng_;
  FaultStats fault_stats_;
};

}  // namespace fsr
