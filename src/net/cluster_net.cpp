#include "net/cluster_net.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "proto/codec.h"

namespace fsr {

namespace {

/// Does this frame carry a payload that the sending node itself originated
/// (first hop of an own message)? Such frames pay the marshalling CPU cost
/// before transmission.
bool own_payload_first_hop(const Frame& f) {
  for (const auto& m : f.msgs) {
    if (const auto* d = std::get_if<DataMsg>(&m)) {
      if (d->id.origin == f.from) return true;
    } else if (const auto* s = std::get_if<SeqMsg>(&m)) {
      if (s->id.origin == f.from) return true;
    }
  }
  return false;
}

}  // namespace

ClusterNet::ClusterNet(Simulator& sim, NetConfig config, std::size_t n_nodes)
    : sim_(sim),
      config_(config),
      nodes_(n_nodes),
      jitter_rng_(config.seed),
      link_rng_(config.seed ^ 0x5eedfa17b0a7ULL) {}

Time ClusterNet::wire_time(std::size_t bytes) const {
  std::size_t packets = bytes == 0 ? 1 : (bytes + config_.mss - 1) / config_.mss;
  std::size_t on_wire = bytes + packets * config_.per_packet_overhead;
  double seconds = static_cast<double>(on_wire) * 8.0 / config_.bandwidth_bps;
  return static_cast<Time>(std::llround(seconds * 1e9));
}

Time ClusterNet::wire_time(NodeId node, std::size_t bytes) const {
  double bps = node_bandwidth_bps(node);
  if (bps == config_.bandwidth_bps) return wire_time(bytes);
  std::size_t packets = bytes == 0 ? 1 : (bytes + config_.mss - 1) / config_.mss;
  std::size_t on_wire = bytes + packets * config_.per_packet_overhead;
  double seconds = static_cast<double>(on_wire) * 8.0 / bps;
  return static_cast<Time>(std::llround(seconds * 1e9));
}

Time ClusterNet::cpu_time(std::size_t bytes) const {
  return config_.cpu_fixed +
         static_cast<Time>(std::llround(config_.cpu_per_byte_ns * static_cast<double>(bytes)));
}

Time ClusterNet::cpu_time(NodeId node, std::size_t bytes) const {
  Time t = cpu_time(bytes);
  double scale = nodes_[node].profile.cpu_scale;
  if (scale != 1.0) t = static_cast<Time>(std::llround(static_cast<double>(t) * scale));
  return t;
}

void ClusterNet::send(Frame frame) {
  assert(frame.from < nodes_.size() && frame.to < nodes_.size());
  assert(frame.from != frame.to && "no self-loop links in the cluster");
  NodeId from = frame.from;
  Node& src = nodes_[from];
  if (src.crashed) return;
  if (frame_tap_) frame_tap_(frame);
  std::size_t bytes = wire_size(frame);
  src.stats.frames_sent++;
  src.stats.payload_bytes_sent += bytes;
  src.ready_announced = false;
  bool marshal = own_payload_first_hop(frame);
  PendingFrame pf{std::move(frame), bytes, /*outbound=*/true};
  if (marshal) {
    ++src.outbound_in_cpu;
    src.cpu_queue.push_back(std::move(pf));
    if (!src.cpu_busy) start_cpu(from);
  } else {
    enqueue_tx(from, std::move(pf));
  }
}

void ClusterNet::enqueue_tx(NodeId node, PendingFrame pf) {
  Node& n = nodes_[node];
  n.tx_queue.push_back(std::move(pf));
  if (!n.tx_busy) start_tx(node);
}

bool ClusterNet::tx_idle(NodeId node) const {
  // "Can accept another frame": up to two frames may be pending (one
  // marshalling and/or one queued behind the active wire serializer), so a
  // forwarded frame can keep the link busy while an own frame marshals.
  const Node& n = nodes_[node];
  return !n.crashed && n.outbound_in_cpu + n.tx_queue.size() < 4;
}

void ClusterNet::crash(NodeId node) {
  Node& n = nodes_[node];
  n.crashed = true;
  n.tx_queue.clear();
  n.cpu_queue.clear();
  n.outbound_in_cpu = 0;
  // In-flight TX/CPU completions check `crashed` before acting.
}

void ClusterNet::start_tx(NodeId node) {
  Node& n = nodes_[node];
  assert(!n.tx_busy && !n.tx_queue.empty());
  n.tx_busy = true;
  PendingFrame pf = std::move(n.tx_queue.front());
  n.tx_queue.pop_front();
  Time t = wire_time(node, pf.bytes);
  std::size_t packets = pf.bytes == 0 ? 1 : (pf.bytes + config_.mss - 1) / config_.mss;
  n.stats.wire_bytes_sent += pf.bytes + packets * config_.per_packet_overhead;
  n.stats.tx_busy += t;
  sim_.schedule(t, [this, node, pf = std::move(pf)]() mutable {
    finish_tx(node, std::move(pf));
  });
  maybe_tx_ready(node);
}

void ClusterNet::finish_tx(NodeId node, PendingFrame pf) {
  Node& n = nodes_[node];
  n.tx_busy = false;
  if (n.crashed) return;
  // Hand to the switch; arrives at the destination after the switch latency
  // plus any injected link fault.
  pf.outbound = false;
  route_to_switch(std::move(pf));
  if (!n.tx_queue.empty()) {
    start_tx(node);
  } else {
    maybe_tx_ready(node);
  }
}

void ClusterNet::route_to_switch(PendingFrame pf) {
  if (!faults_active_) {
    sim_.schedule(config_.switch_latency,
                  [this, pf = std::move(pf)]() mutable { arrive(std::move(pf)); });
    return;
  }
  LinkState& l = link(pf.frame.from, pf.frame.to);
  if (l.drop_next > 0) {
    --l.drop_next;
    ++fault_stats_.dropped_sabotage;
    return;
  }
  if (l.cut) {
    if (l.drop_while_cut) {
      ++fault_stats_.dropped_cut;
    } else {
      l.held.push_back(std::move(pf));
      ++fault_stats_.frames_held;
    }
    return;
  }
  Time extra = l.extra_delay + l.profile.extra_latency;
  if (l.profile.loss_rate > 0 && l.profile_rng) {
    // Each transmission is lost independently; a loss costs one retransmit
    // delay and the frame goes again (TCP below the protocol: loss is
    // latency, never a missing frame). Bounded like a real retry budget so
    // a pathological loss_rate cannot spin forever.
    for (int tries = 0; tries < 16 && l.profile_rng->chance(l.profile.loss_rate); ++tries) {
      extra += l.profile.retransmit_delay;
      ++fault_stats_.lost_transmissions;
    }
  }
  if (l.profile.jitter_max > 0 && l.profile_rng) {
    extra += static_cast<Time>(
        l.profile_rng->below(static_cast<std::uint64_t>(l.profile.jitter_max) + 1));
  }
  if (link_jitter_max_ > 0) {
    extra += static_cast<Time>(
        link_rng_.below(static_cast<std::uint64_t>(link_jitter_max_) + 1));
  }
  schedule_arrival(l, sim_.now() + config_.switch_latency + extra, std::move(pf));
}

void ClusterNet::schedule_arrival(LinkState& l, Time when, PendingFrame pf) {
  // FIFO clamp: an arrival may never be scheduled before an earlier frame
  // on the same link (equal deadlines keep scheduling order, which is the
  // hand-off order).
  if (when < l.last_arrival) when = l.last_arrival;
  l.last_arrival = when;
  sim_.schedule_at(when, [this, pf = std::move(pf)]() mutable { arrive(std::move(pf)); });
}

ClusterNet::LinkState& ClusterNet::link(NodeId from, NodeId to) {
  if (links_.empty()) links_.resize(nodes_.size() * nodes_.size());
  faults_active_ = true;
  return links_[from * nodes_.size() + to];
}

const ClusterNet::LinkState* ClusterNet::find_link(NodeId from, NodeId to) const {
  if (links_.empty()) return nullptr;
  return &links_[from * nodes_.size() + to];
}

void ClusterNet::set_link_delay(NodeId from, NodeId to, Time extra) {
  if (!faults_active_ && extra == 0) return;
  link(from, to).extra_delay = extra;
}

void ClusterNet::set_link_jitter(Time max_extra) {
  if (!faults_active_ && max_extra == 0) return;
  if (links_.empty()) links_.resize(nodes_.size() * nodes_.size());
  faults_active_ = true;
  link_jitter_max_ = max_extra;
}

void ClusterNet::cut_link(NodeId from, NodeId to, bool drop) {
  LinkState& l = link(from, to);
  l.cut = true;
  l.drop_while_cut = drop;
}

void ClusterNet::heal_link(NodeId from, NodeId to) {
  const LinkState* existing = find_link(from, to);
  if (existing == nullptr || !existing->cut) return;
  LinkState& l = link(from, to);
  l.cut = false;
  l.drop_while_cut = false;
  // Release buffered frames in FIFO order; the arrival clamp keeps them
  // ahead of anything handed to the switch after the heal.
  while (!l.held.empty()) {
    PendingFrame pf = std::move(l.held.front());
    l.held.pop_front();
    ++fault_stats_.frames_released;
    schedule_arrival(l, sim_.now() + config_.switch_latency + l.extra_delay,
                     std::move(pf));
  }
}

void ClusterNet::heal_all_links() {
  for (NodeId from = 0; from < nodes_.size(); ++from) {
    for (NodeId to = 0; to < nodes_.size(); ++to) {
      if (from != to) heal_link(from, to);
    }
  }
  // Full reset back to the uniform cluster: injected delays, global jitter,
  // and every node/link NetProfile.
  for (auto& n : nodes_) n.profile = NetProfile{};
  for (auto& l : links_) {
    l.extra_delay = 0;
    l.profile = NetProfile{};
    l.profile_rng.reset();
  }
  link_jitter_max_ = 0;
}

void ClusterNet::set_node_profile(NodeId node, const NetProfile& profile) {
  Node& n = nodes_[node];
  n.profile = profile;
  if (n.profile.cpu_scale <= 0) n.profile.cpu_scale = 1.0;
}

void ClusterNet::set_link_profile(NodeId from, NodeId to, const NetProfile& profile) {
  if (profile.is_default() && links_.empty()) return;
  LinkState& l = link(from, to);
  l.profile = profile;
  if (l.profile.loss_rate < 0) l.profile.loss_rate = 0;
  if (l.profile.loss_rate > 0 || l.profile.jitter_max > 0) {
    // (Re)seed per set: the drop/jitter set after a profile change is a pure
    // function of (seed, from, to) and the frame count since the change.
    l.profile_rng = std::make_unique<Rng>(config_.seed ^ 0x9e7f11aa55ULL ^
                                          (static_cast<std::uint64_t>(from) << 32) ^
                                          (static_cast<std::uint64_t>(to) << 16));
  } else {
    l.profile_rng.reset();
  }
}

NetProfile ClusterNet::link_profile(NodeId from, NodeId to) const {
  const LinkState* l = find_link(from, to);
  return l != nullptr ? l->profile : NetProfile{};
}

bool ClusterNet::link_cut(NodeId from, NodeId to) const {
  const LinkState* l = find_link(from, to);
  return l != nullptr && l->cut;
}

void ClusterNet::drop_frames(NodeId from, NodeId to, std::size_t count) {
  link(from, to).drop_next += count;
}

void ClusterNet::maybe_tx_ready(NodeId node) {
  Node& n = nodes_[node];
  if (n.crashed || n.ready_announced || !tx_idle(node)) return;
  n.ready_announced = true;
  // Deferred so a send() from inside the callback cannot reenter mid-call.
  sim_.schedule(0, [this, node] {
    if (!nodes_[node].crashed && tx_ready_) tx_ready_(node);
  });
}

void ClusterNet::arrive(PendingFrame pf) {
  NodeId to = pf.frame.to;
  Node& dst = nodes_[to];
  if (dst.crashed) {
    ++fault_stats_.dropped_to_crashed;
    return;
  }
  dst.cpu_queue.push_back(std::move(pf));
  if (!dst.cpu_busy) start_cpu(to);
}

void ClusterNet::start_cpu(NodeId node) {
  Node& n = nodes_[node];
  assert(!n.cpu_busy && !n.cpu_queue.empty());
  n.cpu_busy = true;
  PendingFrame pf = std::move(n.cpu_queue.front());
  n.cpu_queue.pop_front();
  Time t = cpu_time(node, pf.bytes);
  if (config_.cpu_jitter > 0) {
    double factor = 1.0 + config_.cpu_jitter * (2.0 * jitter_rng_.uniform() - 1.0);
    t = static_cast<Time>(std::llround(static_cast<double>(t) * factor));
  }
  n.stats.cpu_busy += t;
  sim_.schedule(t, [this, node, pf = std::move(pf)]() mutable {
    Node& nd = nodes_[node];
    if (nd.crashed) {
      nd.cpu_busy = false;
      return;
    }
    // cpu_busy stays set while the callbacks below run: they may reenter
    // send(), which must queue behind us rather than start a second
    // concurrent CPU job.
    if (pf.outbound) {
      // Marshalling of an own message finished: it may hit the wire now.
      assert(nd.outbound_in_cpu > 0);
      --nd.outbound_in_cpu;
      enqueue_tx(node, std::move(pf));
      maybe_tx_ready(node);
    } else {
      nd.stats.frames_received++;
      if (deliver_) deliver_(pf.frame);
    }
    nd.cpu_busy = false;
    if (!nd.crashed && !nd.cpu_queue.empty()) start_cpu(node);
  });
}

}  // namespace fsr
