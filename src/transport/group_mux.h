// Multiplexes several independent ordering domains ("groups") over one
// physical transport. Each group gets a Transport facade: send() stamps the
// group id onto outgoing frames, and the mux dispatches inbound frames to
// the owning facade by Frame::group. Peer-down and tx-ready events fan out
// to every group — the underlying link, failure detector, and NIC are
// shared, only the protocol state machines above are per-group.
//
// Everything runs on the base transport's event thread: the mux installs
// itself as the base's handler set, and all facade calls (engine sends,
// timers) already happen on that thread, exactly as with a bare transport.
//
// The tx-ready fan-out rotates its starting group so that when several
// engines are waiting to piggyback onto an idle link, no fixed group gets
// first claim on the outbound path every time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "transport/transport.h"

namespace fsr {

class GroupMux {
 public:
  /// `base` must outlive the mux; `groups` >= 1. The mux takes over base's
  /// handlers — nothing else may call base.set_handlers afterwards.
  GroupMux(Transport& base, GroupId groups);

  GroupMux(const GroupMux&) = delete;
  GroupMux& operator=(const GroupMux&) = delete;

  GroupId groups() const { return static_cast<GroupId>(channels_.size()); }

  /// The per-group transport facade. Stable for the mux's lifetime.
  Transport& channel(GroupId g) { return *channels_.at(g); }

  /// Frames whose group id named no channel (peer misconfiguration or
  /// corruption) — dropped, never delivered to any group.
  std::uint64_t dropped_unknown_group() const { return dropped_unknown_group_; }

  /// Per-group data-path slice (frames only; bytes stay with the base).
  const TransportCounters& group_counters(GroupId g) const {
    return channels_.at(g)->counters();
  }

 private:
  /// Transport facade for one group. Forwards everything to the base except
  /// that outgoing frames are stamped with the group id and inbound
  /// dispatch / event fan-out is done by the owning mux.
  class Channel : public Transport {
   public:
    Channel(Transport& base, GroupId group) : base_(base), group_(group) {}

    NodeId self() const override { return base_.self(); }
    Time now() const override { return base_.now(); }
    void send(Frame frame) override;
    bool tx_idle() const override { return base_.tx_idle(); }
    TimerId set_timer(Time delay, std::function<void()> fn) override {
      return base_.set_timer(delay, std::move(fn));
    }
    void cancel_timer(TimerId id) override { base_.cancel_timer(id); }

   private:
    friend class GroupMux;
    Transport& base_;
    const GroupId group_;
  };

  void dispatch_frame(const Frame& frame);
  void fan_out_tx_ready();
  void fan_out_peer_down(NodeId node);

  Transport& base_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::uint64_t dropped_unknown_group_ = 0;
  std::size_t tx_ready_start_ = 0;
};

}  // namespace fsr
