// Abstract point-to-point transport. The FSR engine and the VSC layer are
// written against this interface only, so the identical protocol state
// machine runs on the deterministic cluster simulator (SimTransport) and on
// real TCP sockets (TcpTransport).
//
// Send pacing contract: a caller that wants piggybacking should keep at most
// one payload frame outstanding per destination and assemble the next frame
// when on_link_ready fires (the previous frame has fully left the NIC /
// socket buffer). send() itself never blocks and never drops.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "proto/wire.h"
#include "sim/simulator.h"

namespace fsr {

/// Data-path accounting shared by every transport backend. For TcpTransport
/// these measure real syscalls and buffer traffic; for SimTransport only the
/// frame/byte counters are meaningful. Counters are written by the
/// transport's event thread — read them from that thread (post/post_wait on
/// TCP) or after the transport stopped.
struct TransportCounters {
  // Syscalls (TCP only).
  std::uint64_t tx_syscalls = 0;  ///< sendmsg/writev calls that moved >= 1 byte
  std::uint64_t rx_syscalls = 0;  ///< recv calls that returned >= 1 byte

  // Volume.
  std::uint64_t tx_bytes = 0;   ///< bytes handed to the kernel (incl. prefixes)
  std::uint64_t rx_bytes = 0;   ///< bytes received from the kernel
  std::uint64_t tx_frames = 0;  ///< frames accepted by send()
  std::uint64_t rx_frames = 0;  ///< frames decoded and delivered to on_frame

  // Scatter-gather batching (TCP only).
  std::uint64_t tx_chunks = 0;     ///< iovec entries submitted across all sendmsg calls
  std::uint64_t tx_max_batch = 0;  ///< largest iovec batch in a single sendmsg

  // Payload copy discipline. The steady-state data path must not copy
  // payload bytes: received payloads alias the receive chunk, sent payloads
  // are transmitted by reference from the scatter-gather outbox.
  std::uint64_t tx_payload_refs = 0;    ///< payloads enqueued by reference (zero-copy)
  std::uint64_t tx_payload_copies = 0;  ///< payloads copied into the wire buffer
  std::uint64_t rx_payload_aliases = 0; ///< payloads decoded as views into the rx chunk
  std::uint64_t rx_payload_copies = 0;  ///< payloads copied out of the rx buffer

  // Receive-buffer management (TCP only). Compactions copy only the
  // unconsumed tail (a partial frame), never full decoded payloads.
  std::uint64_t rx_compactions = 0;
  std::uint64_t rx_compaction_bytes = 0;

  TransportCounters& operator+=(const TransportCounters& o) {
    tx_syscalls += o.tx_syscalls;
    rx_syscalls += o.rx_syscalls;
    tx_bytes += o.tx_bytes;
    rx_bytes += o.rx_bytes;
    tx_frames += o.tx_frames;
    rx_frames += o.rx_frames;
    tx_chunks += o.tx_chunks;
    tx_max_batch = tx_max_batch > o.tx_max_batch ? tx_max_batch : o.tx_max_batch;
    tx_payload_refs += o.tx_payload_refs;
    tx_payload_copies += o.tx_payload_copies;
    rx_payload_aliases += o.rx_payload_aliases;
    rx_payload_copies += o.rx_payload_copies;
    rx_compactions += o.rx_compactions;
    rx_compaction_bytes += o.rx_compaction_bytes;
    return *this;
  }
};

struct TransportHandlers {
  /// A frame addressed to this node has been received (after the receive
  /// path's processing cost, in the simulator).
  std::function<void(const Frame&)> on_frame;

  /// This node's outbound path drained: all frames handed to send() have
  /// left the NIC. Fired once per transition busy -> idle.
  std::function<void()> on_tx_ready;

  /// The transport noticed a peer is gone (TCP: connection reset/heartbeat
  /// loss; simulator: crash injection). Feeds the perfect failure detector.
  std::function<void(NodeId)> on_peer_down;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual NodeId self() const = 0;
  virtual Time now() const = 0;

  virtual void send(Frame frame) = 0;

  /// True if nothing is queued or in flight on this node's outbound path.
  virtual bool tx_idle() const = 0;

  virtual TimerId set_timer(Time delay, std::function<void()> fn) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  void set_handlers(TransportHandlers handlers) { handlers_ = std::move(handlers); }

  /// Data-path counters (see TransportCounters for the threading contract).
  const TransportCounters& counters() const { return counters_; }

 protected:
  TransportHandlers handlers_;
  TransportCounters counters_;
};

}  // namespace fsr
