// Abstract point-to-point transport. The FSR engine and the VSC layer are
// written against this interface only, so the identical protocol state
// machine runs on the deterministic cluster simulator (SimTransport) and on
// real TCP sockets (TcpTransport).
//
// Send pacing contract: a caller that wants piggybacking should keep at most
// one payload frame outstanding per destination and assemble the next frame
// when on_link_ready fires (the previous frame has fully left the NIC /
// socket buffer). send() itself never blocks and never drops.
#pragma once

#include <functional>

#include "common/types.h"
#include "proto/wire.h"
#include "sim/simulator.h"

namespace fsr {

struct TransportHandlers {
  /// A frame addressed to this node has been received (after the receive
  /// path's processing cost, in the simulator).
  std::function<void(const Frame&)> on_frame;

  /// This node's outbound path drained: all frames handed to send() have
  /// left the NIC. Fired once per transition busy -> idle.
  std::function<void()> on_tx_ready;

  /// The transport noticed a peer is gone (TCP: connection reset/heartbeat
  /// loss; simulator: crash injection). Feeds the perfect failure detector.
  std::function<void(NodeId)> on_peer_down;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual NodeId self() const = 0;
  virtual Time now() const = 0;

  virtual void send(Frame frame) = 0;

  /// True if nothing is queued or in flight on this node's outbound path.
  virtual bool tx_idle() const = 0;

  virtual TimerId set_timer(Time delay, std::function<void()> fn) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  void set_handlers(TransportHandlers handlers) { handlers_ = std::move(handlers); }

 protected:
  TransportHandlers handlers_;
};

}  // namespace fsr
