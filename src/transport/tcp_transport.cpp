#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.h"
#include "proto/codec.h"

namespace fsr {

namespace {

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// recv() chunk granularity; the ChunkBuffer always offers at least this much
/// writable tail so a drain needs few syscalls.
constexpr std::size_t kRecvChunk = 64 * 1024;

/// Max iovec entries per sendmsg. Linux caps at IOV_MAX (1024); 64 frames per
/// syscall is already far past the point of diminishing returns.
constexpr std::size_t kMaxIov = 64;

}  // namespace

TcpTransport::TcpTransport(TcpConfig config) : cfg_(std::move(config)) {}

TcpTransport::~TcpTransport() {
  stop();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

Time TcpTransport::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TcpTransport::set_peer_port(NodeId peer, std::uint16_t port) {
  assert(!running_.load() && "set_peer_port is a pre-start bootstrap call");
  for (auto& p : cfg_.peers) {
    if (p.id == peer) p.port = port;
  }
}

void TcpTransport::bind() {
  if (listen_fd_ >= 0) return;
  const TcpPeer* me = nullptr;
  for (const auto& p : cfg_.peers) {
    if (p.id == cfg_.self) me = &p;
  }
  assert(me && "self must appear in the peer list");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  assert(listen_fd_ >= 0);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(me->port);
  ::inet_pton(AF_INET, me->host.c_str(), &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    FSR_ERROR("node %u: bind to %s:%u failed: %s", cfg_.self, me->host.c_str(),
              me->port, std::strerror(errno));  // NOLINT(concurrency-mt-unsafe): pre-start, single-threaded
    assert(false && "bind failed");
  }
  ::listen(listen_fd_, 16);
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  bound_port_ = ntohs(bound.sin_port);

  // The wake pipe outlives stop(): application threads may still post()
  // against a stopped transport (e.g. a harness crash() racing a broadcast),
  // and writing to a closed — possibly reused — fd would corrupt whoever
  // owns it now. It is created once and closed only in the destructor.
  if (wake_pipe_[0] < 0) {
    if (::pipe(wake_pipe_) != 0) assert(false && "pipe failed");
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
  }
}

void TcpTransport::start() {
  bind();
  running_.store(true);
  io_dead_.store(false);
  io_thread_ = Thread([this] { io_loop(); });
}

void TcpTransport::stop() {
  if (io_role_.held_by_me()) {
    sync_fatal("stop() called from the transport's own I/O thread", "TcpTransport");
  }
  if (!running_.exchange(false)) return;
  char b = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_pipe_[1], &b, 1);
  if (io_thread_.joinable()) io_thread_.join();
  // Run closures that were posted but never reached the I/O thread: a
  // post_wait() racing this stop() would otherwise block forever. io_dead_
  // is published only after the join, so post-stop drainers (here and in
  // post()) are ordered after every I/O-thread access to the engine.
  io_dead_.store(true);
  // The I/O thread is gone; adopt its role for the final drain and the
  // socket teardown. drain_mutex_ keeps post()-side drainers out, so the
  // role is never contended.
  RecursiveMutexLock drain_lock(drain_mutex_);
  ThreadRoleRegion io(io_role_);
  drain_posted();
  for (auto& c : conns_) {
    if (c.fd >= 0) {
      FSR_DEBUG("node %u: stop() closing fd=%d peer=%d", cfg_.self, c.fd,
               c.peer == kNoNode ? -1 : (int)c.peer);
      ::close(c.fd);
    }
    pending_tx_bytes_ -= c.outbox_bytes;
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void TcpTransport::post(std::function<void()> fn) {
  bool was_empty;
  {
    MutexLock lock(post_mutex_);
    was_empty = posted_.empty();
    posted_.push_back(std::move(fn));
  }
  // One wakeup byte per empty->non-empty transition: drain_posted() empties
  // the whole queue per wakeup, so further bytes would only add syscalls.
  if (was_empty) {
    char b = 1;
    [[maybe_unused]] ssize_t w = ::write(wake_pipe_[1], &b, 1);
  }
  // No I/O thread left to run the closure: drain it ourselves. If io_dead_
  // still reads false here, stop()'s own drain (which runs after it is set
  // and loops until the queue is empty) is guaranteed to pick our closure
  // up — the shared post_mutex_ orders the two cases.
  if (io_dead_.load()) drain_stopped();
}

void TcpTransport::post_wait(std::function<void()> fn) {
  if (io_role_.held_by_me()) {
    sync_fatal("post_wait() called from the I/O thread it would wait on", "TcpTransport");
  }
  Mutex m;
  CondVar cv;
  bool done = false;
  post([&] {
    fn();
    MutexLock lock(m);
    done = true;
    cv.notify_one();
  });
  MutexLock lock(m);
  cv.wait(m, [&] { return done; });
}

// --- Transport interface ---

void TcpTransport::check_io_call(const char* what) const {
  // The GroupMember/Engine constructors arm timers on the constructing
  // thread before start(): that single-threaded setup phase is the one
  // legitimate role-free caller. Anywhere else, the Transport-interface
  // entry points must run under io_role_ (I/O thread or post-stop drain).
  if (!io_role_.held_by_me() && running_.load()) {
    sync_fatal(what, "TcpTransport: Transport call off the I/O thread");
  }
}

TcpTransport::EncodedFrame TcpTransport::encode_for_wire(const Frame& frame) {
  // Sink for the templated codec that builds an outbox chunk chain directly:
  // header/control bytes accumulate in an owned buffer, large payloads become
  // reference chunks (transmitted by sendmsg scatter-gather, never copied).
  // The 4-byte length prefix is reserved up front and patched at the end, so
  // a frame is encoded in one pass with no re-copy.
  struct ChainWriter {
    EncodedFrame& out;
    TransportCounters& ctr;
    std::size_t copy_threshold;
    Bytes cur;

    void fixed(std::uint64_t v, int nbytes) {
      for (int i = 0; i < nbytes; ++i) {
        cur.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    }
    void u8(std::uint8_t v) { cur.push_back(v); }
    void u16(std::uint16_t v) { fixed(v, 2); }
    void u32(std::uint32_t v) { fixed(v, 4); }
    void u64(std::uint64_t v) { fixed(v, 8); }
    void var(std::uint64_t v) {
      while (v >= 0x80) {
        cur.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
      }
      cur.push_back(static_cast<std::uint8_t>(v));
    }
    void raw(std::span<const std::uint8_t> d) {
      cur.insert(cur.end(), d.begin(), d.end());
    }
    void bytes(std::span<const std::uint8_t> d) {
      var(d.size());
      raw(d);
    }
    void str(std::string_view s) {
      var(s.size());
      cur.insert(cur.end(), s.begin(), s.end());
    }
    void raw_ref(const Payload& p) {
      if (p.size() <= copy_threshold) {
        raw(p.span());
        ++ctr.tx_payload_copies;
        return;
      }
      flush();
      out.chunks.push_back(OutChunk{Bytes{}, p});
      ++ctr.tx_payload_refs;
    }
    void flush() {
      if (cur.empty()) return;
      out.chunks.push_back(OutChunk{std::move(cur), Payload{}});
      cur.clear();
    }
  };

  EncodedFrame out;
  ChainWriter w{out, counters_, cfg_.tx_copy_threshold, Bytes{}};
  w.cur.reserve(256);
  for (int i = 0; i < 4; ++i) w.cur.push_back(0);  // length prefix placeholder
  encode_frame(w, frame);
  w.flush();
  std::size_t total = 0;
  for (const auto& ch : out.chunks) total += ch.size();
  auto body = static_cast<std::uint32_t>(total - 4);
  for (int i = 0; i < 4; ++i) {
    out.chunks.front().own[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body >> (8 * i));
  }
  out.bytes = total;
  return out;
}

void TcpTransport::send(Frame frame) {
  check_io_call("send");
  // Sends racing stop() (drained posted closures) are dropped: the sockets
  // are gone and a crash-stop cluster treats a stopped node as crashed.
  if (!running_.load()) return;
  frame.from = cfg_.self;
  NodeId to = frame.to;
  std::ptrdiff_t ci = outgoing_conn_idx(to);
  if (ci < 0 && std::find(down_.begin(), down_.end(), to) != down_.end()) return;
  EncodedFrame wire = encode_for_wire(frame);
  ++counters_.tx_frames;
  if (ci < 0) {
    if (!connect_peer(to)) {
      // connect_peer may have just declared the peer down — don't resurrect
      // its unsent queue.
      if (std::find(down_.begin(), down_.end(), to) != down_.end()) return;
      pending_tx_bytes_ += wire.bytes;
      unsent_.push_back({to, std::move(wire)});
      if (!tx_idle()) busy_ = true;
      return;
    }
    ci = outgoing_conn_idx(to);
  }
  enqueue_chunks(conns_[static_cast<std::size_t>(ci)], std::move(wire));
  if (!tx_idle()) busy_ = true;
  // No eager write: the frame is flushed — coalesced with everything else
  // queued this loop iteration — by flush_marked() before the next poll.
  mark_for_flush(static_cast<std::size_t>(ci));
}

bool TcpTransport::tx_idle() const {
  check_io_call("tx_idle");
  return pending_tx_bytes_ < cfg_.tx_high_watermark;
}

TimerId TcpTransport::set_timer(Time delay, std::function<void()> fn) {
  check_io_call("set_timer");
  std::uint64_t serial = next_timer_serial_++;
  timer_heap_.push_back(Timer{now() + delay, serial, std::move(fn)});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
  pending_timers_.insert(serial);
  return TimerId{serial};
}

void TcpTransport::cancel_timer(TimerId id) {
  check_io_call("cancel_timer");
  if (!id.valid()) return;
  // Lazy deletion: tombstone the serial; the heap entry is dropped when it
  // reaches the top. Cancelling an already-fired (or unknown) id is a no-op.
  if (pending_timers_.erase(id.serial_) > 0) cancelled_timers_.insert(id.serial_);
}

// --- internals (I/O thread) ---

std::ptrdiff_t TcpTransport::outgoing_conn_idx(NodeId peer) const {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    const Conn& c = conns_[i];
    if (c.outgoing && c.peer == peer && c.fd >= 0) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

void TcpTransport::enqueue_chunks(Conn& conn, EncodedFrame&& frame) {
  conn.outbox_bytes += frame.bytes;
  pending_tx_bytes_ += frame.bytes;
  for (auto& ch : frame.chunks) conn.outbox.push_back(std::move(ch));
}

void TcpTransport::mark_for_flush(std::size_t idx) {
  Conn& c = conns_[idx];
  if (c.flush_queued) return;
  c.flush_queued = true;
  flush_pending_.push_back(idx);
}

void TcpTransport::flush_marked() {
  // Runs once per loop iteration: every frame queued during the iteration
  // leaves in as few sendmsg calls as the iovec cap allows. Callbacks fired
  // from handle_writable (on_tx_ready) may queue more — keep going until no
  // connection is marked, so nothing waits a full poll timeout.
  while (!flush_pending_.empty()) {
    std::vector<std::size_t> pending;
    pending.swap(flush_pending_);
    for (std::size_t idx : pending) {
      if (idx >= conns_.size()) continue;
      conns_[idx].flush_queued = false;
      if (conns_[idx].fd >= 0 && !conns_[idx].outbox.empty()) handle_writable(idx);
    }
  }
}

bool TcpTransport::connect_peer(NodeId peer) {
  const TcpPeer* target = nullptr;
  for (const auto& p : cfg_.peers) {
    if (p.id == peer) target = &p;
  }
  if (!target) return false;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target->port);
  ::inet_pton(AF_INET, target->host.c_str(), &addr.sin_addr);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    // Schedule a retry; report down after the budget is exhausted.
    int attempts = ++connect_attempts_[peer];
    if (attempts > cfg_.connect_retries) {
      report_peer_down(peer);
    } else {
      reconnect_at_[peer] = now() + cfg_.connect_retry_delay;
    }
    return false;
  }
  FSR_DEBUG("node %u: connect to peer %u fd=%d", cfg_.self, peer, fd);
  Conn c;
  c.fd = fd;
  c.peer = peer;
  c.outgoing = true;
  c.hello_done = true;  // hello is the first thing in the outbox
  OutChunk hello;
  hello.own.resize(4);
  for (int i = 0; i < 4; ++i) {
    hello.own[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(cfg_.self >> (8 * i));
  }
  c.outbox_bytes = hello.own.size();
  pending_tx_bytes_ += hello.own.size();
  c.outbox.push_back(std::move(hello));
  conns_.push_back(std::move(c));
  return true;
}

void TcpTransport::report_peer_down(NodeId peer) {
  if (std::find(down_.begin(), down_.end(), peer) != down_.end()) return;
  down_.push_back(peer);
  reconnect_at_.erase(peer);
  for (auto it = unsent_.begin(); it != unsent_.end();) {
    if (it->first == peer) {
      pending_tx_bytes_ -= it->second.bytes;
      it = unsent_.erase(it);
    } else {
      ++it;
    }
  }
  FSR_INFO("node %u: peer %u is down", cfg_.self, peer);
  if (handlers_.on_peer_down) handlers_.on_peer_down(peer);
  maybe_tx_ready();
}

void TcpTransport::maybe_tx_ready() {
  if (busy_ && tx_idle()) {
    busy_ = false;
    if (handlers_.on_tx_ready) handlers_.on_tx_ready();
  }
}

void TcpTransport::accept_new() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    FSR_DEBUG("node %u: accepted fd=%d", cfg_.self, fd);
    set_nonblocking(fd);
    set_nodelay(fd);
    Conn c;
    c.fd = fd;
    c.outgoing = false;
    conns_.push_back(std::move(c));
  }
}

void TcpTransport::handle_readable(std::size_t idx) {
  for (;;) {
    Conn& c = conns_[idx];
    std::uint64_t copied_before = counters_.rx_compaction_bytes;
    auto buf = c.read_buf.writable(kRecvChunk, &counters_.rx_compaction_bytes);
    if (counters_.rx_compaction_bytes != copied_before) ++counters_.rx_compactions;
    ssize_t n = ::recv(c.fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      c.read_buf.commit(static_cast<std::size_t>(n));
      ++counters_.rx_syscalls;
      counters_.rx_bytes += static_cast<std::uint64_t>(n);
      // A short read means the socket buffer is drained (level-triggered
      // poll re-arms if more arrives); a full read may leave bytes behind.
      if (static_cast<std::size_t>(n) == buf.size()) continue;
      break;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or error: in a crash-stop cluster an unexpected close is a crash.
    FSR_DEBUG("node %u: conn to peer %u readable fault (n=%zd errno=%d %s out=%d)",
             cfg_.self, c.peer, n, n < 0 ? errno : 0,
             n < 0 ? std::strerror(errno) : "EOF", c.outgoing ? 1 : 0);  // NOLINT(concurrency-mt-unsafe): diagnostics only; errno text may be imprecise under races
    close_conn(idx, /*peer_fault=*/true);
    return;
  }

  // The frame handler may open connections (growing conns_ and invalidating
  // references), so conns_[idx] is re-resolved on every access. The chunk
  // storage itself never moves, so spans into it stay valid throughout.
  if (!conns_[idx].hello_done) {
    auto data = conns_[idx].read_buf.readable();
    if (data.size() < 4) return;
    NodeId peer = 0;
    for (int i = 0; i < 4; ++i) {
      peer |= static_cast<NodeId>(data[static_cast<std::size_t>(i)]) << (8 * i);
    }
    conns_[idx].peer = peer;
    conns_[idx].hello_done = true;
    conns_[idx].read_buf.consume(4);
  }
  // One owner handle for every frame parsed out of this drain: payloads
  // decoded below alias the chunk and share its ownership (zero-copy).
  auto owner = conns_[idx].read_buf.owner();
  std::size_t pos = 0;
  for (;;) {
    if (conns_[idx].fd < 0) break;  // closed mid-parse
    auto data = conns_[idx].read_buf.readable();
    if (data.size() - pos < 4) break;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    if (len > 64u * 1024 * 1024) {
      FSR_WARN("node %u: insane frame length %u from peer %d", cfg_.self, len,
               conns_[idx].peer == kNoNode ? -1 : (int)conns_[idx].peer);
      close_conn(idx, true);  // insane length: corrupted stream
      return;
    }
    if (data.size() - pos - 4 < len) break;
    try {
      PayloadDecodeCounters pdc;
      Frame frame = decode_frame(data.subspan(pos + 4, len), owner, &pdc);
      counters_.rx_payload_aliases += pdc.aliased;
      counters_.rx_payload_copies += pdc.copied;
      pos += 4 + len;
      ++counters_.rx_frames;
      if (handlers_.on_frame) handlers_.on_frame(frame);
    } catch (const CodecError& e) {
      FSR_WARN("node %u: dropping connection after codec error: %s", cfg_.self,
               e.what());
      close_conn(idx, true);
      return;
    }
  }
  conns_[idx].read_buf.consume(pos);
}

void TcpTransport::handle_writable(std::size_t idx) {
  Conn& c = conns_[idx];
  while (!c.outbox.empty()) {
    // Gather up to kMaxIov outbox chunks — typically many frames — into a
    // single sendmsg. The first chunk may already be partially written.
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    std::size_t batch_bytes = 0;
    for (auto it = c.outbox.begin(); it != c.outbox.end() && niov < kMaxIov; ++it) {
      const std::uint8_t* base = it->data();
      std::size_t len = it->size();
      if (niov == 0) {
        base += c.out_offset;
        len -= c.out_offset;
      }
      iov[niov].iov_base = const_cast<std::uint8_t*>(base);
      iov[niov].iov_len = len;
      batch_bytes += len;
      ++niov;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    ssize_t n = ::sendmsg(c.fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOTCONN ||
          errno == EINPROGRESS) {
        return;  // poll will tell us when to continue
      }
      FSR_DEBUG("node %u: conn to peer %u writable fault (errno=%d %s)", cfg_.self,
               c.peer, errno, std::strerror(errno));  // NOLINT(concurrency-mt-unsafe): diagnostics only
      close_conn(idx, true);
      return;
    }
    ++counters_.tx_syscalls;
    counters_.tx_bytes += static_cast<std::uint64_t>(n);
    counters_.tx_chunks += niov;
    counters_.tx_max_batch = std::max<std::uint64_t>(counters_.tx_max_batch, niov);
    c.outbox_bytes -= static_cast<std::size_t>(n);
    pending_tx_bytes_ -= static_cast<std::size_t>(n);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      std::size_t avail = c.outbox.front().size() - c.out_offset;
      if (left >= avail) {
        left -= avail;
        c.outbox.pop_front();
        c.out_offset = 0;
      } else {
        c.out_offset += left;
        left = 0;
      }
    }
    if (static_cast<std::size_t>(n) < batch_bytes) return;  // short write: wait for POLLOUT
  }
  maybe_tx_ready();
}

void TcpTransport::close_conn(std::size_t idx, bool peer_fault) {
  Conn& c = conns_[idx];
  NodeId peer = c.peer;
  FSR_DEBUG("node %u: closing conn idx=%zu fd=%d peer=%d out=%d fault=%d", cfg_.self,
           idx, c.fd, peer == kNoNode ? -1 : (int)peer, c.outgoing ? 1 : 0,
           peer_fault ? 1 : 0);
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  pending_tx_bytes_ -= c.outbox_bytes;
  c.outbox.clear();
  c.outbox_bytes = 0;
  c.out_offset = 0;
  if (peer_fault && peer != kNoNode && running_.load()) {
    report_peer_down(peer);
  }
}

void TcpTransport::drain_posted() {
  // Caller holds io_role_: before stop() the I/O thread is the only drainer;
  // afterwards drain_stopped() serializes drainers and lends them the role,
  // so engine code never runs in parallel with itself.
  for (;;) {
    std::function<void()> fn;
    {
      MutexLock lock(post_mutex_);
      if (posted_.empty()) return;
      fn = std::move(posted_.front());
      posted_.pop_front();
    }
    fn();
  }
}

void TcpTransport::drain_stopped() {
  // Post-stop path only (io_dead_ true). drain_mutex_ is recursive because a
  // drained closure may itself post() and re-enter; the nested adoption of
  // io_role_ on the same thread nests too.
  RecursiveMutexLock drain_lock(drain_mutex_);
  ThreadRoleRegion io(io_role_);
  drain_posted();
}

void TcpTransport::fire_due_timers() {
  Time t = now();
  // Collect first: a timer callback may add or cancel timers. The serial
  // rides along and is re-checked right before invoking, so a callback
  // cancelling a later timer that is *also* due in this batch still wins.
  std::vector<std::pair<std::uint64_t, std::function<void()>>> due;
  while (!timer_heap_.empty()) {
    const Timer& top = timer_heap_.front();
    if (cancelled_timers_.erase(top.serial) > 0) {
      std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
      timer_heap_.pop_back();
      continue;
    }
    if (top.deadline > t) break;
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
    due.emplace_back(timer_heap_.back().serial,
                     std::move(timer_heap_.back().fn));
    timer_heap_.pop_back();
  }
  for (auto& [serial, fn] : due) {
    if (pending_timers_.erase(serial) == 0) {
      // Cancelled after collection: its heap entry is already gone, so the
      // tombstone left by cancel_timer must go too.
      cancelled_timers_.erase(serial);
      continue;
    }
    fn();
  }
}

Time TcpTransport::next_timer_deadline() {
  while (!timer_heap_.empty() &&
         cancelled_timers_.erase(timer_heap_.front().serial) > 0) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
    timer_heap_.pop_back();
  }
  return timer_heap_.empty() ? Time{-1} : timer_heap_.front().deadline;
}

void TcpTransport::io_loop() {
  // This thread *is* the I/O role for as long as the loop runs; stop()
  // re-adopts it only after the join.
  ThreadRoleRegion io(io_role_);
  while (running_.load()) {
    // Drop closed connections. Safe: flush_pending_ was emptied at the end
    // of the previous iteration, so no stored index survives the erase.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& c) { return c.fd < 0; }),
                 conns_.end());

    // Retry pending connects whose backoff expired.
    Time t = now();
    for (auto it = reconnect_at_.begin(); it != reconnect_at_.end();) {
      if (it->second <= t) {
        NodeId peer = it->first;
        it = reconnect_at_.erase(it);
        if (connect_peer(peer)) {
          // Move frames that were waiting for the connection into its
          // outbox (their bytes are already in pending_tx_bytes_).
          auto ci = static_cast<std::size_t>(outgoing_conn_idx(peer));
          for (auto uit = unsent_.begin(); uit != unsent_.end();) {
            if (uit->first == peer) {
              pending_tx_bytes_ -= uit->second.bytes;
              enqueue_chunks(conns_[ci], std::move(uit->second));
              uit = unsent_.erase(uit);
            } else {
              ++uit;
            }
          }
        }
      } else {
        ++it;
      }
    }

    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& c : conns_) {
      short events = POLLIN;
      if (c.outgoing && !c.outbox.empty()) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
    }

    int timeout_ms = 50;
    Time deadline = next_timer_deadline();
    if (deadline >= 0) {
      auto ms = static_cast<int>((deadline - now()) / kMillisecond);
      timeout_ms = std::max(0, std::min(timeout_ms, ms));
    }
    if (!reconnect_at_.empty()) timeout_ms = std::min(timeout_ms, 20);

    ::poll(fds.data(), fds.size(), timeout_ms);
    if (!running_.load()) break;

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    drain_posted();
    if (fds[1].revents & POLLIN) accept_new();

    // Note: conns_ may grow during callbacks (new outgoing connections);
    // only the first `fds.size() - 2` entries correspond to polled fds.
    std::size_t polled = fds.size() - 2;
    for (std::size_t i = 0; i < polled && i < conns_.size(); ++i) {
      short rev = fds[i + 2].revents;
      if (conns_[i].fd < 0) continue;
      if (rev & (POLLERR | POLLHUP)) {
        // Half-closed or reset: try reading what remains, then fault.
        if (rev & POLLIN) handle_readable(i);
        if (conns_[i].fd >= 0) {
          FSR_DEBUG("node %u: conn to peer %u POLLERR/HUP (rev=0x%x out=%d)",
                   cfg_.self, conns_[i].peer, rev, conns_[i].outgoing ? 1 : 0);
          close_conn(i, true);
        }
        continue;
      }
      if (rev & POLLIN) handle_readable(i);
      if (conns_[i].fd >= 0 && (rev & POLLOUT)) handle_writable(i);
    }

    fire_due_timers();
    // Single flush point: everything queued during this iteration —
    // drained posts, frame handlers, timers — coalesces here.
    flush_marked();
  }
}

}  // namespace fsr
