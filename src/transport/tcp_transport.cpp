#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.h"
#include "proto/codec.h"

namespace fsr {

namespace {

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Bytes frame_with_length_prefix(const Frame& frame) {
  Bytes body = encode_frame(frame);
  Bytes out;
  out.reserve(body.size() + 4);
  auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

TcpTransport::TcpTransport(TcpConfig config) : cfg_(std::move(config)) {}

TcpTransport::~TcpTransport() {
  stop();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

Time TcpTransport::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TcpTransport::set_peer_port(NodeId peer, std::uint16_t port) {
  assert(!running_.load() && "set_peer_port is a pre-start bootstrap call");
  for (auto& p : cfg_.peers) {
    if (p.id == peer) p.port = port;
  }
}

void TcpTransport::bind() {
  if (listen_fd_ >= 0) return;
  const TcpPeer* me = nullptr;
  for (const auto& p : cfg_.peers) {
    if (p.id == cfg_.self) me = &p;
  }
  assert(me && "self must appear in the peer list");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  assert(listen_fd_ >= 0);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(me->port);
  ::inet_pton(AF_INET, me->host.c_str(), &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    FSR_ERROR("node %u: bind to %s:%u failed: %s", cfg_.self, me->host.c_str(),
              me->port, std::strerror(errno));
    assert(false && "bind failed");
  }
  ::listen(listen_fd_, 16);
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  bound_port_ = ntohs(bound.sin_port);

  // The wake pipe outlives stop(): application threads may still post()
  // against a stopped transport (e.g. a harness crash() racing a broadcast),
  // and writing to a closed — possibly reused — fd would corrupt whoever
  // owns it now. It is created once and closed only in the destructor.
  if (wake_pipe_[0] < 0) {
    if (::pipe(wake_pipe_) != 0) assert(false && "pipe failed");
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
  }
}

void TcpTransport::start() {
  bind();
  running_.store(true);
  io_dead_.store(false);
  io_thread_ = std::thread([this] { io_loop(); });
}

void TcpTransport::stop() {
  if (!running_.exchange(false)) return;
  char b = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_pipe_[1], &b, 1);
  if (io_thread_.joinable()) io_thread_.join();
  // Run closures that were posted but never reached the I/O thread: a
  // post_wait() racing this stop() would otherwise block forever. io_dead_
  // is published only after the join, so post-stop drainers (here and in
  // post()) are ordered after every I/O-thread access to the engine.
  io_dead_.store(true);
  drain_posted();
  for (auto& c : conns_) {
    if (c.fd >= 0) {
      FSR_DEBUG("node %u: stop() closing fd=%d peer=%d", cfg_.self, c.fd,
               c.peer == kNoNode ? -1 : (int)c.peer);
      ::close(c.fd);
    }
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void TcpTransport::post(std::function<void()> fn) {
  {
    std::lock_guard lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  char b = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_pipe_[1], &b, 1);
  // No I/O thread left to run the closure: drain it ourselves. If io_dead_
  // still reads false here, stop()'s own drain (which runs after it is set
  // and loops until the queue is empty) is guaranteed to pick our closure
  // up — the shared post_mutex_ orders the two cases.
  if (io_dead_.load()) drain_posted();
}

void TcpTransport::post_wait(std::function<void()> fn) {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  post([&] {
    fn();
    std::lock_guard lock(m);
    done = true;
    cv.notify_one();
  });
  std::unique_lock lock(m);
  cv.wait(lock, [&] { return done; });
}

// --- Transport interface ---

void TcpTransport::send(Frame frame) {
  frame.from = cfg_.self;
  NodeId to = frame.to;
  Bytes wire = frame_with_length_prefix(frame);
  Conn* conn = outgoing_conn(to);
  if (conn == nullptr) {
    if (std::find(down_.begin(), down_.end(), to) != down_.end()) return;
    if (!connect_peer(to)) {
      unsent_.push_back({to, std::move(wire)});
      return;
    }
    conn = outgoing_conn(to);
  }
  conn->outbox_bytes += wire.size();
  conn->outbox.push_back(std::move(wire));
  if (!tx_idle()) busy_ = true;
  // The poll loop flushes; try an eager write so small sends don't wait a
  // poll cycle.
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (&conns_[i] == conn) {
      handle_writable(i);
      break;
    }
  }
}

bool TcpTransport::tx_idle() const {
  std::size_t pending = 0;
  for (const auto& c : conns_) pending += c.outbox_bytes;
  for (const auto& [peer, bytes] : unsent_) pending += bytes.size();
  return pending < cfg_.tx_high_watermark;
}

TimerId TcpTransport::set_timer(Time delay, std::function<void()> fn) {
  std::uint64_t serial = next_timer_serial_++;
  timers_.push_back(Timer{now() + delay, serial, std::move(fn)});
  return TimerId{serial};
}

void TcpTransport::cancel_timer(TimerId id) {
  if (!id.valid()) return;
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [&](const Timer& t) { return t.serial == id.serial_; }),
                timers_.end());
}

// --- internals (I/O thread) ---

TcpTransport::Conn* TcpTransport::outgoing_conn(NodeId peer) {
  for (auto& c : conns_) {
    if (c.outgoing && c.peer == peer && c.fd >= 0) return &c;
  }
  return nullptr;
}

bool TcpTransport::connect_peer(NodeId peer) {
  const TcpPeer* target = nullptr;
  for (const auto& p : cfg_.peers) {
    if (p.id == peer) target = &p;
  }
  if (!target) return false;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target->port);
  ::inet_pton(AF_INET, target->host.c_str(), &addr.sin_addr);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    // Schedule a retry; report down after the budget is exhausted.
    int attempts = ++connect_attempts_[peer];
    if (attempts > cfg_.connect_retries) {
      report_peer_down(peer);
    } else {
      reconnect_at_[peer] = now() + cfg_.connect_retry_delay;
    }
    return false;
  }
  FSR_DEBUG("node %u: connect to peer %u fd=%d", cfg_.self, peer, fd);
  Conn c;
  c.fd = fd;
  c.peer = peer;
  c.outgoing = true;
  c.hello_done = true;  // hello is the first thing in the outbox
  Bytes hello(4);
  for (int i = 0; i < 4; ++i) hello[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(cfg_.self >> (8 * i));
  c.outbox_bytes = hello.size();
  c.outbox.push_back(std::move(hello));
  conns_.push_back(std::move(c));
  return true;
}

void TcpTransport::report_peer_down(NodeId peer) {
  if (std::find(down_.begin(), down_.end(), peer) != down_.end()) return;
  down_.push_back(peer);
  reconnect_at_.erase(peer);
  unsent_.erase(std::remove_if(unsent_.begin(), unsent_.end(),
                               [&](const auto& p) { return p.first == peer; }),
                unsent_.end());
  FSR_INFO("node %u: peer %u is down", cfg_.self, peer);
  if (handlers_.on_peer_down) handlers_.on_peer_down(peer);
}

void TcpTransport::accept_new() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    FSR_DEBUG("node %u: accepted fd=%d", cfg_.self, fd);
    set_nonblocking(fd);
    set_nodelay(fd);
    Conn c;
    c.fd = fd;
    c.outgoing = false;
    conns_.push_back(std::move(c));
  }
}

void TcpTransport::handle_readable(std::size_t idx) {
  Conn& c = conns_[idx];
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.read_buf.insert(c.read_buf.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or error: in a crash-stop cluster an unexpected close is a crash.
    FSR_DEBUG("node %u: conn to peer %u readable fault (n=%zd errno=%d %s out=%d)",
             cfg_.self, c.peer, n, n < 0 ? errno : 0,
             n < 0 ? std::strerror(errno) : "EOF", c.outgoing ? 1 : 0);
    close_conn(idx, /*peer_fault=*/true);
    return;
  }

  // The frame handler may open connections (growing conns_ and invalidating
  // references), so conns_[idx] is re-resolved on every access.
  std::size_t pos = 0;
  if (!conns_[idx].hello_done) {
    if (conns_[idx].read_buf.size() < 4) return;
    NodeId peer = 0;
    for (int i = 0; i < 4; ++i) {
      peer |= static_cast<NodeId>(conns_[idx].read_buf[static_cast<std::size_t>(i)])
              << (8 * i);
    }
    conns_[idx].peer = peer;
    conns_[idx].hello_done = true;
    pos = 4;
  }
  for (;;) {
    if (conns_[idx].fd < 0) return;  // closed mid-parse
    if (conns_[idx].read_buf.size() - pos < 4) break;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(
                 conns_[idx].read_buf[pos + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    if (len > 64u * 1024 * 1024) {
      FSR_WARN("node %u: insane frame length %u from peer %d", cfg_.self, len,
               conns_[idx].peer == kNoNode ? -1 : (int)conns_[idx].peer);
      close_conn(idx, true);  // insane length: corrupted stream
      return;
    }
    if (conns_[idx].read_buf.size() - pos - 4 < len) break;
    try {
      Frame frame = decode_frame(
          std::span<const std::uint8_t>(conns_[idx].read_buf.data() + pos + 4, len));
      pos += 4 + len;
      if (handlers_.on_frame) handlers_.on_frame(frame);
    } catch (const CodecError& e) {
      FSR_WARN("node %u: dropping connection after codec error: %s", cfg_.self,
               e.what());
      close_conn(idx, true);
      return;
    }
  }
  auto& rbuf = conns_[idx].read_buf;
  rbuf.erase(rbuf.begin(), rbuf.begin() + static_cast<std::ptrdiff_t>(pos));
}

void TcpTransport::handle_writable(std::size_t idx) {
  Conn& c = conns_[idx];
  while (!c.outbox.empty()) {
    const Bytes& front = c.outbox.front();
    ssize_t n = ::send(c.fd, front.data() + c.out_offset, front.size() - c.out_offset,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOTCONN ||
          errno == EINPROGRESS) {
        return;  // poll will tell us when to continue
      }
      FSR_DEBUG("node %u: conn to peer %u writable fault (errno=%d %s)", cfg_.self,
               c.peer, errno, std::strerror(errno));
      close_conn(idx, true);
      return;
    }
    c.out_offset += static_cast<std::size_t>(n);
    c.outbox_bytes -= static_cast<std::size_t>(n);
    if (c.out_offset == front.size()) {
      c.outbox.pop_front();
      c.out_offset = 0;
    }
  }
  if (busy_ && tx_idle()) {
    busy_ = false;
    if (handlers_.on_tx_ready) handlers_.on_tx_ready();
  }
}

void TcpTransport::close_conn(std::size_t idx, bool peer_fault) {
  Conn& c = conns_[idx];
  NodeId peer = c.peer;
  FSR_DEBUG("node %u: closing conn idx=%zu fd=%d peer=%d out=%d fault=%d", cfg_.self,
           idx, c.fd, peer == kNoNode ? -1 : (int)peer, c.outgoing ? 1 : 0,
           peer_fault ? 1 : 0);
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  if (peer_fault && peer != kNoNode && running_.load()) {
    report_peer_down(peer);
  }
}

void TcpTransport::drain_posted() {
  // drain_mutex_ makes closure execution mutually exclusive: before stop()
  // the I/O thread is the only drainer, afterwards concurrent post() callers
  // may drain and must not run engine code in parallel. Recursive because a
  // drained closure may itself post().
  std::lock_guard drain_lock(drain_mutex_);
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard lock(post_mutex_);
      if (posted_.empty()) return;
      fn = std::move(posted_.front());
      posted_.pop_front();
    }
    fn();
  }
}

void TcpTransport::fire_due_timers() {
  Time t = now();
  // Collect first: a timer callback may add or cancel timers.
  std::vector<std::function<void()>> due;
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->deadline <= t) {
      due.push_back(std::move(it->fn));
      it = timers_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& fn : due) fn();
}

void TcpTransport::io_loop() {
  while (running_.load()) {
    // Retry pending connects whose backoff expired.
    Time t = now();
    for (auto it = reconnect_at_.begin(); it != reconnect_at_.end();) {
      if (it->second <= t) {
        NodeId peer = it->first;
        it = reconnect_at_.erase(it);
        if (connect_peer(peer)) {
          // Flush frames that were waiting for the connection.
          Conn* conn = outgoing_conn(peer);
          for (auto uit = unsent_.begin(); uit != unsent_.end();) {
            if (uit->first == peer) {
              conn->outbox_bytes += uit->second.size();
              conn->outbox.push_back(std::move(uit->second));
              uit = unsent_.erase(uit);
            } else {
              ++uit;
            }
          }
        }
      } else {
        ++it;
      }
    }

    // Drop closed connections.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& c) { return c.fd < 0; }),
                 conns_.end());

    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& c : conns_) {
      short events = POLLIN;
      if (c.outgoing && !c.outbox.empty()) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
    }

    int timeout_ms = 50;
    for (const auto& timer : timers_) {
      auto ms = static_cast<int>((timer.deadline - now()) / kMillisecond);
      timeout_ms = std::max(0, std::min(timeout_ms, ms));
    }
    if (!reconnect_at_.empty()) timeout_ms = std::min(timeout_ms, 20);

    ::poll(fds.data(), fds.size(), timeout_ms);
    if (!running_.load()) break;

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    drain_posted();
    if (fds[1].revents & POLLIN) accept_new();

    // Note: conns_ may grow during callbacks (new outgoing connections);
    // only the first `fds.size() - 2` entries correspond to polled fds.
    std::size_t polled = fds.size() - 2;
    for (std::size_t i = 0; i < polled && i < conns_.size(); ++i) {
      short rev = fds[i + 2].revents;
      if (conns_[i].fd < 0) continue;
      if (rev & (POLLERR | POLLHUP)) {
        // Half-closed or reset: try reading what remains, then fault.
        if (rev & POLLIN) handle_readable(i);
        if (conns_[i].fd >= 0) {
          FSR_DEBUG("node %u: conn to peer %u POLLERR/HUP (rev=0x%x out=%d)",
                   cfg_.self, conns_[i].peer, rev, conns_[i].outgoing ? 1 : 0);
          close_conn(i, true);
        }
        continue;
      }
      if (rev & POLLIN) handle_readable(i);
      if (conns_[i].fd >= 0 && (rev & POLLOUT)) handle_writable(i);
    }

    fire_due_timers();
  }
}

}  // namespace fsr
