// Real-network transport: the same Transport interface the simulator
// implements, backed by TCP sockets (the paper's implementation also ran
// point-to-point TCP channels on the cluster, Table 1).
//
// Threading model: one I/O thread per TcpTransport runs a poll() loop and
// executes ALL protocol callbacks (on_frame / on_tx_ready / on_peer_down /
// timers) — the engine and VSC layer stay single-threaded, exactly as on
// the simulator. Application threads interact via post(), which marshals a
// closure onto the I/O thread (wakeup through a self-pipe).
//
// The contract is capability-checked: io_role() is a ThreadRole held by
// whichever thread is currently allowed to run protocol code — the I/O
// thread while the transport runs, a post-stop drainer (serialized by
// drain_mutex_) afterwards. Methods marked FSR_REQUIRES(io_role_) are
// compile-errors off that thread under Clang wherever the concrete type is
// visible; calls arriving through the Transport interface are covered by
// runtime asserts instead (see check_io_call). The single-threaded setup
// phase before start() may call the timer/send API without the role.
//
// Connections: one outgoing connection per peer, established lazily on
// first send and identified by a hello carrying the sender's NodeId;
// inbound connections are read-only. A send to a peer whose connection
// cannot be (re)established within the configured retries reports the peer
// down — together with connection resets this approximates the perfect
// failure detector of the model (§3) well enough for a crash-stop cluster.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/sync.h"
#include "transport/transport.h"

namespace fsr {

struct TcpPeer {
  NodeId id = kNoNode;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpConfig {
  NodeId self = kNoNode;
  std::vector<TcpPeer> peers;  // must include self (for the listen address)

  /// Outbox size above which tx_idle() reports busy (send pacing, which is
  /// also what makes ack piggybacking effective on TCP).
  std::size_t tx_high_watermark = 256 * 1024;

  /// Payloads at most this large are copied into the frame's header buffer
  /// instead of being enqueued by reference: below this size one contiguous
  /// buffer beats the per-iovec bookkeeping. Payloads above it are never
  /// copied (counted in TransportCounters::tx_payload_refs).
  std::size_t tx_copy_threshold = 256;

  /// Reconnect attempts before a peer is reported down.
  int connect_retries = 30;
  Time connect_retry_delay = 100 * kMillisecond;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen (no thread yet). Useful with port 0: read bound_port()
  /// afterwards and distribute it to the peers before start().
  void bind();

  /// Update a peer's port before start() (ephemeral-port bootstrap).
  void set_peer_port(NodeId peer, std::uint16_t port);

  /// Start the I/O thread (binds first if bind() was not called). Call
  /// after set_handlers().
  void start();

  /// Stop the I/O thread and close every socket. Must not be called from
  /// the I/O thread itself (it joins it).
  void stop() FSR_EXCLUDES(io_role_);

  /// Run `fn` on the I/O thread (thread-safe; the only correct way to
  /// reach the engine from outside).
  void post(std::function<void()> fn);

  /// Run `fn` on the I/O thread and wait for it to finish. Calling this
  /// from the I/O thread itself would self-deadlock; statically excluded
  /// and checked at runtime.
  void post_wait(std::function<void()> fn) FSR_EXCLUDES(io_role_);

  std::uint16_t bound_port() const { return bound_port_; }

  /// The capability guarding all I/O-thread-only state. Code that reaches
  /// this transport through a type-erased path (a posted closure, the
  /// Transport interface) re-asserts it with io_role().assert_held().
  ThreadRole& io_role() FSR_RETURN_CAPABILITY(io_role_) { return io_role_; }

  // --- Transport interface (I/O thread only, except noted) ---
  NodeId self() const override { return cfg_.self; }
  Time now() const override;
  void send(Frame frame) override FSR_REQUIRES(io_role_);
  bool tx_idle() const override FSR_REQUIRES(io_role_);
  TimerId set_timer(Time delay, std::function<void()> fn) override FSR_REQUIRES(io_role_);
  void cancel_timer(TimerId id) override FSR_REQUIRES(io_role_);

 private:
  /// One element of a connection's outbox chain: either bytes this
  /// connection owns (frame headers, control messages, small payloads) or a
  /// reference-counted payload view transmitted without copying.
  struct OutChunk {
    Bytes own;
    Payload ref;

    const std::uint8_t* data() const { return ref ? ref.data() : own.data(); }
    std::size_t size() const { return ref ? ref.size() : own.size(); }
  };

  struct Conn {
    int fd = -1;
    NodeId peer = kNoNode;
    bool outgoing = false;
    bool hello_done = false;
    bool flush_queued = false;  // in flush_pending_ for this loop iteration
    ChunkBuffer read_buf;
    std::deque<OutChunk> outbox;  // outgoing connections only
    std::size_t outbox_bytes = 0;
    std::size_t out_offset = 0;  // progress within outbox.front()
  };

  /// An encoded frame as a chain of chunks, ready to splice into an outbox.
  struct EncodedFrame {
    std::vector<OutChunk> chunks;
    std::size_t bytes = 0;
  };

  EncodedFrame encode_for_wire(const Frame& frame) FSR_REQUIRES(io_role_);

  void io_loop();  // adopts io_role_ for its whole lifetime
  void accept_new() FSR_REQUIRES(io_role_);
  void handle_readable(std::size_t idx) FSR_REQUIRES(io_role_);
  void handle_writable(std::size_t idx) FSR_REQUIRES(io_role_);
  void flush_marked() FSR_REQUIRES(io_role_);
  void mark_for_flush(std::size_t idx) FSR_REQUIRES(io_role_);
  void close_conn(std::size_t idx, bool peer_fault) FSR_REQUIRES(io_role_);
  bool connect_peer(NodeId peer) FSR_REQUIRES(io_role_);
  std::ptrdiff_t outgoing_conn_idx(NodeId peer) const FSR_REQUIRES(io_role_);
  void enqueue_chunks(Conn& conn, EncodedFrame&& frame) FSR_REQUIRES(io_role_);
  void drain_posted() FSR_REQUIRES(io_role_);
  /// Post-stop drain: adopts io_role_ (serialized by drain_mutex_) and runs
  /// whatever closures remain, so post()/post_wait() callers cannot strand.
  void drain_stopped();
  void maybe_tx_ready() FSR_REQUIRES(io_role_);  // fire on_tx_ready once per busy -> idle
  void fire_due_timers() FSR_REQUIRES(io_role_);
  Time next_timer_deadline() FSR_REQUIRES(io_role_);  // pops lazily-cancelled heap tops
  void report_peer_down(NodeId peer) FSR_REQUIRES(io_role_);
  /// Runtime backing for the Transport-interface entry points, which reach
  /// us type-erased: require io_role_ unless this is the single-threaded
  /// setup phase before start() (GroupMember arms its timers there).
  void check_io_call(const char* what) const;

  TcpConfig cfg_;
  std::atomic<bool> running_{false};
  /// False only while the I/O thread may still run closures; set (after the
  /// join) by stop(). When true, post() drains the queue itself (through
  /// drain_stopped()) so posted work — and post_wait() callers — cannot
  /// strand.
  std::atomic<bool> io_dead_{true};
  /// Held by the I/O thread for the duration of io_loop(); re-adopted under
  /// drain_mutex_ by post-stop drainers and by stop()'s teardown.
  ThreadRole io_role_{"TcpTransport::io"};
  Thread io_thread_;
  // Pre-start bootstrap state (bind/set_peer_port run single-threaded before
  // the I/O thread exists); wake_pipe_[1] is written from any thread and is
  // created once, closed only in the destructor.
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t bound_port_ = 0;

  Mutex post_mutex_;
  RecursiveMutex drain_mutex_;  // serializes post-stop closure execution
  std::deque<std::function<void()>> posted_ FSR_GUARDED_BY(post_mutex_);

  std::vector<Conn> conns_ FSR_GUARDED_BY(io_role_);
  std::vector<std::size_t> flush_pending_
      FSR_GUARDED_BY(io_role_);  // conn indices to flush this iteration
  std::map<NodeId, int> connect_attempts_ FSR_GUARDED_BY(io_role_);
  std::map<NodeId, Time> reconnect_at_ FSR_GUARDED_BY(io_role_);
  std::deque<std::pair<NodeId, EncodedFrame>> unsent_
      FSR_GUARDED_BY(io_role_);  // awaiting (re)connect
  std::vector<NodeId> down_ FSR_GUARDED_BY(io_role_);
  /// Sum of every connection's outbox_bytes plus all unsent_ frame bytes,
  /// maintained incrementally so tx_idle() is O(1).
  std::size_t pending_tx_bytes_ FSR_GUARDED_BY(io_role_) = 0;
  bool busy_ FSR_GUARDED_BY(io_role_) =
      false;  // tx filled past the watermark; announce when it drains

  // Timers: a lazy-deletion binary min-heap. cancel_timer() marks the serial
  // and the heap drops cancelled entries when they surface at the top, so
  // set/cancel/fire are all O(log n) instead of the old O(n) vector scans.
  struct Timer {
    Time deadline;
    std::uint64_t serial;
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      // std::push_heap builds a max-heap; invert for earliest-deadline-first
      // (serial breaks ties so same-deadline timers fire in creation order).
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.serial > b.serial;
    }
  };
  std::uint64_t next_timer_serial_ FSR_GUARDED_BY(io_role_) = 1;
  std::vector<Timer> timer_heap_ FSR_GUARDED_BY(io_role_);
  std::unordered_set<std::uint64_t> pending_timers_
      FSR_GUARDED_BY(io_role_);  // serials in the heap, not cancelled
  std::unordered_set<std::uint64_t> cancelled_timers_
      FSR_GUARDED_BY(io_role_);  // tombstones awaiting pop
};

}  // namespace fsr
