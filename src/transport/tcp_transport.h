// Real-network transport: the same Transport interface the simulator
// implements, backed by TCP sockets (the paper's implementation also ran
// point-to-point TCP channels on the cluster, Table 1).
//
// Threading model: one I/O thread per TcpTransport runs a poll() loop and
// executes ALL protocol callbacks (on_frame / on_tx_ready / on_peer_down /
// timers) — the engine and VSC layer stay single-threaded, exactly as on
// the simulator. Application threads interact via post(), which marshals a
// closure onto the I/O thread (wakeup through a self-pipe).
//
// Connections: one outgoing connection per peer, established lazily on
// first send and identified by a hello carrying the sender's NodeId;
// inbound connections are read-only. A send to a peer whose connection
// cannot be (re)established within the configured retries reports the peer
// down — together with connection resets this approximates the perfect
// failure detector of the model (§3) well enough for a crash-stop cluster.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "transport/transport.h"

namespace fsr {

struct TcpPeer {
  NodeId id = kNoNode;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpConfig {
  NodeId self = kNoNode;
  std::vector<TcpPeer> peers;  // must include self (for the listen address)

  /// Outbox size above which tx_idle() reports busy (send pacing, which is
  /// also what makes ack piggybacking effective on TCP).
  std::size_t tx_high_watermark = 256 * 1024;

  /// Payloads at most this large are copied into the frame's header buffer
  /// instead of being enqueued by reference: below this size one contiguous
  /// buffer beats the per-iovec bookkeeping. Payloads above it are never
  /// copied (counted in TransportCounters::tx_payload_refs).
  std::size_t tx_copy_threshold = 256;

  /// Reconnect attempts before a peer is reported down.
  int connect_retries = 30;
  Time connect_retry_delay = 100 * kMillisecond;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen (no thread yet). Useful with port 0: read bound_port()
  /// afterwards and distribute it to the peers before start().
  void bind();

  /// Update a peer's port before start() (ephemeral-port bootstrap).
  void set_peer_port(NodeId peer, std::uint16_t port);

  /// Start the I/O thread (binds first if bind() was not called). Call
  /// after set_handlers().
  void start();

  /// Stop the I/O thread and close every socket.
  void stop();

  /// Run `fn` on the I/O thread (thread-safe; the only correct way to
  /// reach the engine from outside).
  void post(std::function<void()> fn);

  /// Run `fn` on the I/O thread and wait for it to finish.
  void post_wait(std::function<void()> fn);

  std::uint16_t bound_port() const { return bound_port_; }

  // --- Transport interface (I/O thread only, except noted) ---
  NodeId self() const override { return cfg_.self; }
  Time now() const override;
  void send(Frame frame) override;
  bool tx_idle() const override;
  TimerId set_timer(Time delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;

 private:
  /// One element of a connection's outbox chain: either bytes this
  /// connection owns (frame headers, control messages, small payloads) or a
  /// reference-counted payload view transmitted without copying.
  struct OutChunk {
    Bytes own;
    Payload ref;

    const std::uint8_t* data() const { return ref ? ref.data() : own.data(); }
    std::size_t size() const { return ref ? ref.size() : own.size(); }
  };

  struct Conn {
    int fd = -1;
    NodeId peer = kNoNode;
    bool outgoing = false;
    bool hello_done = false;
    bool flush_queued = false;  // in flush_pending_ for this loop iteration
    ChunkBuffer read_buf;
    std::deque<OutChunk> outbox;  // outgoing connections only
    std::size_t outbox_bytes = 0;
    std::size_t out_offset = 0;  // progress within outbox.front()
  };

  /// An encoded frame as a chain of chunks, ready to splice into an outbox.
  struct EncodedFrame {
    std::vector<OutChunk> chunks;
    std::size_t bytes = 0;
  };

  EncodedFrame encode_for_wire(const Frame& frame);

  void io_loop();
  void accept_new();
  void handle_readable(std::size_t idx);
  void handle_writable(std::size_t idx);
  void flush_marked();
  void mark_for_flush(std::size_t idx);
  void close_conn(std::size_t idx, bool peer_fault);
  bool connect_peer(NodeId peer);
  std::ptrdiff_t outgoing_conn_idx(NodeId peer) const;
  void enqueue_chunks(Conn& conn, EncodedFrame&& frame);
  void drain_posted();
  void maybe_tx_ready();  // fire on_tx_ready once per busy -> idle transition
  void fire_due_timers();
  Time next_timer_deadline();  // pops lazily-cancelled heap tops
  void report_peer_down(NodeId peer);

  TcpConfig cfg_;
  std::atomic<bool> running_{false};
  /// False only while the I/O thread may still run closures; set (after the
  /// join) by stop(). When true, post() drains the queue itself so posted
  /// work — and post_wait() callers — cannot strand.
  std::atomic<bool> io_dead_{true};
  std::thread io_thread_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t bound_port_ = 0;

  std::mutex post_mutex_;
  std::recursive_mutex drain_mutex_;  // serializes closure execution
  std::deque<std::function<void()>> posted_;

  std::vector<Conn> conns_;
  std::vector<std::size_t> flush_pending_;  // conn indices to flush this iteration
  std::map<NodeId, int> connect_attempts_;
  std::map<NodeId, Time> reconnect_at_;
  std::deque<std::pair<NodeId, EncodedFrame>> unsent_;  // awaiting (re)connect
  std::vector<NodeId> down_;
  /// Sum of every connection's outbox_bytes plus all unsent_ frame bytes,
  /// maintained incrementally so tx_idle() is O(1).
  std::size_t pending_tx_bytes_ = 0;
  bool busy_ = false;  // tx filled past the watermark; announce when it drains

  // Timers: a lazy-deletion binary min-heap. cancel_timer() marks the serial
  // and the heap drops cancelled entries when they surface at the top, so
  // set/cancel/fire are all O(log n) instead of the old O(n) vector scans.
  struct Timer {
    Time deadline;
    std::uint64_t serial;
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      // std::push_heap builds a max-heap; invert for earliest-deadline-first
      // (serial breaks ties so same-deadline timers fire in creation order).
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.serial > b.serial;
    }
  };
  std::uint64_t next_timer_serial_ = 1;
  std::vector<Timer> timer_heap_;
  std::unordered_set<std::uint64_t> pending_timers_;    // serials in the heap, not cancelled
  std::unordered_set<std::uint64_t> cancelled_timers_;  // tombstones awaiting pop
};

}  // namespace fsr
