// Transport backend over the simulated cluster network. One SimWorld owns
// the simulator, the network and one SimTransport endpoint per node; crash
// injection notifies every surviving endpoint after a configurable perfect-
// failure-detector delay (paper §3: failure detector P).
#pragma once

#include <memory>
#include <vector>

#include "net/cluster_net.h"
#include "transport/transport.h"

namespace fsr {

class SimWorld;

class SimTransport final : public Transport {
 public:
  SimTransport(SimWorld& world, NodeId self) : world_(world), self_(self) {}

  NodeId self() const override { return self_; }
  Time now() const override;
  void send(Frame frame) override;
  bool tx_idle() const override;
  TimerId set_timer(Time delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;

 private:
  friend class SimWorld;
  SimWorld& world_;
  NodeId self_;
};

class SimWorld {
 public:
  SimWorld(NetConfig config, std::size_t n_nodes,
           Time fd_detection_delay = 2 * kMillisecond);

  Simulator& sim() { return sim_; }
  ClusterNet& net() { return net_; }
  std::size_t size() const { return transports_.size(); }

  SimTransport& transport(NodeId node) { return *transports_[node]; }

  /// Crash-stop `node` now; every surviving endpoint's on_peer_down fires
  /// after the detection delay (`detection_delay` < 0 uses the world's
  /// default). The detector stays perfect either way: detection always
  /// happens and no live node is ever suspected — fault plans only vary
  /// *when* within the detection window each crash is noticed.
  void crash(NodeId node, Time detection_delay = -1);

  /// Crash `node` without the perfect failure detector noticing (models a
  /// hang rather than a clean crash): only heartbeat timeouts can catch it.
  void crash_silent(NodeId node);
  bool alive(NodeId node) const { return net_.alive(node); }

 private:
  friend class SimTransport;

  Simulator sim_;
  ClusterNet net_;
  Time fd_delay_;
  std::vector<std::unique_ptr<SimTransport>> transports_;
};

}  // namespace fsr
