#include "transport/sim_transport.h"

#include <cassert>

#include "proto/codec.h"

namespace fsr {

Time SimTransport::now() const { return world_.sim_.now(); }

void SimTransport::send(Frame frame) {
  frame.from = self_;
  ++counters_.tx_frames;
  counters_.tx_bytes += wire_size(frame);
  world_.net_.send(std::move(frame));
}

bool SimTransport::tx_idle() const { return world_.net_.tx_idle(self_); }

TimerId SimTransport::set_timer(Time delay, std::function<void()> fn) {
  // Crash-stop: a crashed endpoint takes no further steps, so timers armed
  // before the crash must never fire for it. Checked at fire time — the
  // crash may land between arming and expiry.
  return world_.sim_.schedule(delay, [this, fn = std::move(fn)] {
    if (world_.net_.alive(self_)) fn();
  });
}

void SimTransport::cancel_timer(TimerId id) { world_.sim_.cancel(id); }

SimWorld::SimWorld(NetConfig config, std::size_t n_nodes, Time fd_detection_delay)
    : net_(sim_, config, n_nodes), fd_delay_(fd_detection_delay) {
  transports_.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    transports_.push_back(std::make_unique<SimTransport>(*this, static_cast<NodeId>(i)));
  }
  net_.set_deliver([this](const Frame& frame) {
    auto& t = *transports_[frame.to];
    ++t.counters_.rx_frames;
    t.counters_.rx_bytes += wire_size(frame);
    if (t.handlers_.on_frame) t.handlers_.on_frame(frame);
  });
  net_.set_tx_ready([this](NodeId node) {
    auto& handlers = transports_[node]->handlers_;
    if (handlers.on_tx_ready) handlers.on_tx_ready();
  });
}

void SimWorld::crash_silent(NodeId node) {
  assert(node < transports_.size());
  net_.crash(node);
}

void SimWorld::crash(NodeId node, Time detection_delay) {
  assert(node < transports_.size());
  if (!net_.alive(node)) return;
  net_.crash(node);
  // Perfect failure detector: every surviving process learns of the crash
  // after the detection delay, and no process is ever falsely suspected.
  sim_.schedule(detection_delay < 0 ? fd_delay_ : detection_delay, [this, node] {
    for (auto& t : transports_) {
      if (t->self() == node || !net_.alive(t->self())) continue;
      if (t->handlers_.on_peer_down) t->handlers_.on_peer_down(node);
    }
  });
}

}  // namespace fsr
