#include "transport/group_mux.h"

#include <cassert>
#include <utility>

namespace fsr {

GroupMux::GroupMux(Transport& base, GroupId groups) : base_(base) {
  assert(groups >= 1);
  channels_.reserve(groups);
  for (GroupId g = 0; g < groups; ++g) {
    channels_.push_back(std::make_unique<Channel>(base, g));
  }
  TransportHandlers h;
  h.on_frame = [this](const Frame& f) { dispatch_frame(f); };
  h.on_tx_ready = [this] { fan_out_tx_ready(); };
  h.on_peer_down = [this](NodeId node) { fan_out_peer_down(node); };
  base_.set_handlers(std::move(h));
}

void GroupMux::Channel::send(Frame frame) {
  frame.group = group_;
  ++counters_.tx_frames;
  base_.send(std::move(frame));
}

void GroupMux::dispatch_frame(const Frame& frame) {
  if (frame.group >= channels_.size()) {
    ++dropped_unknown_group_;
    return;
  }
  Channel& ch = *channels_[frame.group];
  ++ch.counters_.rx_frames;
  if (ch.handlers_.on_frame) ch.handlers_.on_frame(frame);
}

void GroupMux::fan_out_tx_ready() {
  // Rotate the starting group: a tx-ready edge is consumed by whichever
  // group grabs the link first, so fairness across groups matters.
  const std::size_t n = channels_.size();
  const std::size_t start = tx_ready_start_;
  tx_ready_start_ = (tx_ready_start_ + 1) % n;
  for (std::size_t i = 0; i < n; ++i) {
    Channel& ch = *channels_[(start + i) % n];
    if (ch.handlers_.on_tx_ready) ch.handlers_.on_tx_ready();
    // The link may have gone busy again; later groups see a busy link and
    // simply defer to their next tx-ready edge.
    if (!base_.tx_idle()) break;
  }
}

void GroupMux::fan_out_peer_down(NodeId node) {
  for (auto& ch : channels_) {
    if (ch->handlers_.on_peer_down) ch->handlers_.on_peer_down(node);
  }
}

}  // namespace fsr
