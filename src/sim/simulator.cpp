#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace fsr {

TimerId Simulator::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

TimerId Simulator::schedule_at(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  std::uint64_t serial = next_serial_++;
  queue_.push(Event{when, serial, std::move(fn)});
  pending_.insert(serial);
  return TimerId{serial};
}

void Simulator::cancel(TimerId id) {
  if (!id.valid()) return;
  // Only a genuinely pending event gets a tombstone: double-cancel and
  // cancel-after-fire are no-ops, so they cannot skew the live count (the
  // old decrement-on-any-cancel let a fired-then-canceled timer understate
  // pending(), and a later real cancel overstate it — leaving empty()
  // false forever with nothing runnable, a livelock for every harness that
  // drains on empty()).
  if (pending_.erase(id.serial_) == 0) return;
  canceled_.insert(id.serial_);
}

bool Simulator::pop_one() {
  while (!queue_.empty()) {
    // priority_queue::top is const; we move the closure out via const_cast,
    // which is safe because the element is popped immediately after.
    auto& top = const_cast<Event&>(queue_.top());
    if (auto c = canceled_.find(top.serial); c != canceled_.end()) {
      canceled_.erase(c);
      queue_.pop();
      continue;
    }
    Time when = top.when;
    auto fn = std::move(top.fn);
    pending_.erase(top.serial);
    queue_.pop();
    now_ = when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (pop_one()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(Time until) {
  std::uint64_t n = 0;
  for (;;) {
    // Skip canceled entries so the deadline check sees a live event.
    while (!queue_.empty() && canceled_.count(queue_.top().serial) > 0) {
      canceled_.erase(queue_.top().serial);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > until) break;
    pop_one();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::uint64_t Simulator::run_steps(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && pop_one()) ++n;
  return n;
}

std::uint64_t Simulator::run_until_capped(Time until, std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events) {
    while (!queue_.empty() && canceled_.count(queue_.top().serial) > 0) {
      canceled_.erase(queue_.top().serial);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > until) {
      if (now_ < until) now_ = until;
      break;
    }
    pop_one();
    ++n;
  }
  return n;
}

bool Simulator::empty() const { return pending_.empty(); }

}  // namespace fsr
