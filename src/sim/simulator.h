// Deterministic discrete-event simulation engine: a virtual clock and an
// event queue with stable FIFO tie-breaking, plus cancelable timers.
// Everything in the simulated world (network model, protocol timers, workload
// generators) schedules through one Simulator instance; runs are fully
// reproducible for a given seed and schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace fsr {

class Simulator;

/// Handle for canceling a scheduled event. Default-constructed handles are
/// inert. Cancellation is O(1) (tombstone).
class TimerId {
 public:
  TimerId() = default;
  bool valid() const { return serial_ != 0; }

 private:
  friend class Simulator;
  friend class TcpTransport;  // the other timer-id issuer
  explicit TimerId(std::uint64_t serial) : serial_(serial) {}
  std::uint64_t serial_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedule `fn` to run at now() + delay (delay >= 0). Events with equal
  /// deadlines run in scheduling order.
  TimerId schedule(Time delay, std::function<void()> fn);

  /// Schedule at an absolute virtual time (>= now()).
  TimerId schedule_at(Time when, std::function<void()> fn);

  /// Cancel a pending event; harmless if it already ran or was canceled.
  void cancel(TimerId id);

  /// Run events until the queue is empty. Returns the number executed.
  std::uint64_t run();

  /// Run events with deadline <= until; leaves now() == until unless the
  /// queue drains first. Returns the number executed.
  std::uint64_t run_until(Time until);

  /// Execute a bounded number of events (for step-debugging in tests).
  std::uint64_t run_steps(std::uint64_t max_events);

  /// Run events with deadline <= until, executing at most max_events.
  /// now() advances to `until` only if the event budget was not exhausted
  /// first. Returns the number executed.
  std::uint64_t run_until_capped(Time until, std::uint64_t max_events);

  bool empty() const;
  std::size_t pending() const { return pending_.size(); }

  /// Total events executed since construction (across all run_* calls).
  /// Schedule-exploration harnesses use this as a runaway-schedule guard.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time when;
    std::uint64_t serial;  // tie-break: FIFO among equal deadlines
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return serial > other.serial;
    }
  };

  bool pop_one();

  Time now_ = 0;
  std::uint64_t next_serial_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  /// Serials of scheduled-but-not-yet-fired/canceled events: the ground
  /// truth for empty()/pending(), and what makes cancel-after-fire a no-op
  /// (a stale cancel must not skew the live count — harnesses spin on
  /// empty(), so a skewed count is a harness livelock).
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> canceled_;  // tombstones of canceled events
};

}  // namespace fsr
