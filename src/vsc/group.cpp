#include "vsc/group.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace fsr {

namespace {

View joiner_placeholder(NodeId self) {
  return View{0, {self}};
}

}  // namespace

GroupMember::GroupMember(Transport& transport, GroupConfig config,
                         View initial_view, Engine::DeliverFn deliver,
                         ViewChangeFn on_view_change)
    : transport_(transport),
      cfg_(config),
      engine_(transport, config.engine,
              initial_view.contains(transport.self()) ? initial_view
                                                      : joiner_placeholder(transport.self()),
              std::move(deliver)),
      on_view_change_(std::move(on_view_change)) {
  max_proposed_ = engine_.view().id;
  TransportHandlers handlers;
  handlers.on_frame = [this](const Frame& frame) { on_frame(frame); };
  handlers.on_tx_ready = [this] { engine_.on_tx_ready(); };
  handlers.on_peer_down = [this](NodeId node) { on_peer_down(node); };
  transport_.set_handlers(std::move(handlers));
  arm_heartbeat();
  arm_rotation();
}

void GroupMember::arm_rotation() {
  if (cfg_.rotation_interval <= 0) return;
  transport_.cancel_timer(rotation_timer_);
  rotation_timer_ = transport_.set_timer(cfg_.rotation_interval, [this] {
    if (i_am_coordinator() && !round_ && engine_.view().size() > 1) {
      rotate_leader();
    }
    arm_rotation();
  });
}

void GroupMember::arm_heartbeat() {
  if (cfg_.heartbeat_interval <= 0) return;
  last_predecessor_activity_ = transport_.now();
  transport_.cancel_timer(heartbeat_timer_);
  heartbeat_timer_ =
      transport_.set_timer(cfg_.heartbeat_interval, [this] { on_heartbeat_tick(); });
}

NodeId GroupMember::nearest_alive_neighbor(int dir) const {
  const View& v = engine_.view();
  auto me = v.position_of(transport_.self());
  if (!me) return kNoNode;
  for (std::size_t step = 1; step < v.size(); ++step) {
    NodeId m = dir > 0 ? v.at(*me + step) : v.at(*me + v.size() - step);
    if (failed_.count(m) == 0) return m;
  }
  return kNoNode;
}

void GroupMember::on_heartbeat_tick() {
  const View& v = engine_.view();
  if (!left_ && in_group() && v.size() > 1) {
    // Keep the nearest live successor's silence monitor fed.
    NodeId succ = nearest_alive_neighbor(+1);
    if (succ != kNoNode && succ != transport_.self()) send_to(succ, Heartbeat{v.id});
    // Watch the nearest live predecessor: any frame from it counts as life.
    // When the watched node changes (view change, or its own watcher died
    // and we inherited it), restart the silence clock so the new target
    // gets a full timeout before we may suspect it.
    NodeId pred = nearest_alive_neighbor(-1);
    if (pred != monitored_pred_) {
      monitored_pred_ = pred;
      last_predecessor_activity_ = transport_.now();
    }
    if (pred != kNoNode && pred != transport_.self() && cfg_.heartbeat_timeout > 0 &&
        transport_.now() - last_predecessor_activity_ > cfg_.heartbeat_timeout) {
      FSR_INFO("node %u: predecessor %u silent beyond timeout, suspecting it",
               transport_.self(), pred);
      on_peer_down(pred);
    }
  }
  heartbeat_timer_ =
      transport_.set_timer(cfg_.heartbeat_interval, [this] { on_heartbeat_tick(); });
}

void GroupMember::on_frame(const Frame& frame) {
  const View& v = engine_.view();
  if (auto me = v.position_of(transport_.self()); me && v.size() > 1) {
    if (frame.from == monitored_pred_ || frame.from == v.at(*me + v.size() - 1)) {
      last_predecessor_activity_ = transport_.now();
    }
  }
  for (const auto& msg : frame.msgs) {
    if (std::holds_alternative<DataMsg>(msg) || std::holds_alternative<SeqMsg>(msg) ||
        std::holds_alternative<AckMsg>(msg) || std::holds_alternative<GcMsg>(msg)) {
      if (!left_) engine_.on_msg(msg);
    } else {
      handle_membership(msg, frame.from);
    }
  }
}

void GroupMember::handle_membership(const WireMsg& msg, NodeId from) {
  if (const auto* fr = std::get_if<FlushReq>(&msg)) {
    handle_flush_req(*fr, from);
  } else if (const auto* fs = std::get_if<FlushState>(&msg)) {
    handle_flush_state(*fs);
  } else if (const auto* vi = std::get_if<ViewInstall>(&msg)) {
    handle_view_install(*vi, from);
  } else if (const auto* ia = std::get_if<InstallAck>(&msg)) {
    handle_install_ack(*ia);
  } else if (const auto* cv = std::get_if<CommitView>(&msg)) {
    handle_commit_view(*cv);
  } else if (const auto* jr = std::get_if<JoinReq>(&msg)) {
    handle_join_req(*jr);
  } else if (const auto* lr = std::get_if<LeaveReq>(&msg)) {
    handle_leave_req(*lr);
  } else if (const auto* cr = std::get_if<CrashReport>(&msg)) {
    on_peer_down(cr->node);
  }
}

void GroupMember::send_to(NodeId to, WireMsg msg) {
  if (to == transport_.self()) {
    handle_membership(msg, to);
    return;
  }
  Frame f;
  f.from = transport_.self();
  f.to = to;
  f.msgs.push_back(std::move(msg));
  transport_.send(std::move(f));
}

// --- failure handling & coordination ---

void GroupMember::on_peer_down(NodeId node) {
  if (!failed_.insert(node).second) return;  // already known
  pending_joins_.erase(node);
  pending_leaves_.erase(node);
  if (left_) return;
  // Relay to members that have no direct connection to the dead process
  // (on TCP only direct peers see the reset).
  for (NodeId m : engine_.view().members) {
    if (m != transport_.self() && m != node && failed_.count(m) == 0) {
      send_to(m, CrashReport{node});
    }
  }
  maybe_coordinate();
}

std::optional<NodeId> GroupMember::coordinator() const {
  const View& v = engine_.view();
  if (v.id == 0) return std::nullopt;  // not yet a member
  for (NodeId m : v.members) {
    if (failed_.count(m) == 0) return m;
  }
  return std::nullopt;
}

bool GroupMember::i_am_coordinator() const {
  return !left_ && coordinator() == transport_.self();
}

void GroupMember::maybe_coordinate() {
  if (!i_am_coordinator()) return;

  const View& v = engine_.view();
  std::vector<NodeId> new_members;
  std::vector<NodeId> participants;
  for (NodeId m : v.members) {
    if (failed_.count(m)) continue;
    participants.push_back(m);
    if (pending_leaves_.count(m) == 0) new_members.push_back(m);
  }
  for (NodeId j : pending_joins_) {
    if (failed_.count(j) || v.contains(j)) continue;
    participants.push_back(j);
    new_members.push_back(j);
  }

  bool membership_changed = new_members != v.members;
  if (!membership_changed && !round_) return;  // steady, nothing to do
  if (round_ && round_->new_members == new_members &&
      round_->participants == participants) {
    return;  // the running flush already targets this membership
  }
  start_flush(std::move(new_members));
}

void GroupMember::start_flush(std::vector<NodeId> new_members) {
  const View& v = engine_.view();
  std::vector<NodeId> participants;
  for (NodeId m : v.members) {
    if (failed_.count(m) == 0) participants.push_back(m);
  }
  for (NodeId m : new_members) {
    if (std::find(participants.begin(), participants.end(), m) == participants.end()) {
      participants.push_back(m);
    }
  }

  ViewId proposed = ++max_proposed_;
  bool has_joiner = false;
  for (NodeId m : new_members) {
    if (!v.contains(m)) has_joiner = true;
  }
  FSR_INFO("node %u proposes view %llu (%zu members, %zu participants%s)",
           transport_.self(), static_cast<unsigned long long>(proposed),
           new_members.size(), participants.size(),
           has_joiner ? ", with joiner" : "");
  round_ = FlushRound{proposed, participants, std::move(new_members), {}};
  for (NodeId p : round_->participants) {
    send_to(p, FlushReq{proposed, round_->new_members, has_joiner});
  }
}

void GroupMember::handle_flush_req(const FlushReq& req, NodeId from) {
  if (req.proposed < max_proposed_) {
    FSR_INFO("node %u: stale flush req %llu < %llu", transport_.self(),
             (unsigned long long)req.proposed, (unsigned long long)max_proposed_);
    return;
  }
  FSR_INFO("node %u: flush req %llu from %u, replying", transport_.self(),
           (unsigned long long)req.proposed, from);
  max_proposed_ = req.proposed;
  Bytes blob = engine_.collect_flush_state(req.want_snapshot);
  send_to(from, FlushState{req.proposed, transport_.self(), std::move(blob)});
}

void GroupMember::handle_flush_state(const FlushState& st) {
  if (!round_ || st.proposed != round_->proposed) return;
  if (std::find(round_->participants.begin(), round_->participants.end(), st.from) ==
      round_->participants.end()) {
    return;
  }
  round_->states[st.from] = st.state;
  FSR_INFO("node %u: flush state from %u (%zu/%zu)", transport_.self(), st.from,
           round_->states.size(), round_->participants.size());
  if (round_->states.size() < round_->participants.size()) return;

  // Phase two: distribute the union for STAGING; delivery waits until every
  // participant acknowledged storage (otherwise a member that installs
  // early and then crashes together with the coordinator could have
  // delivered messages no survivor knows).
  ViewInstall vi;
  vi.view = round_->proposed;
  vi.members = round_->new_members;
  for (auto& [owner, blob] : round_->states) {
    vi.state_owners.push_back(owner);
    vi.states.push_back(blob);
  }
  round_->install_sent = true;
  round_->install_acks.clear();
  for (NodeId p : round_->participants) {
    if (p != transport_.self()) send_to(p, vi);
  }
  handle_view_install(vi, transport_.self());  // stage + self-ack
}

void GroupMember::handle_view_install(const ViewInstall& vi, NodeId from) {
  if (vi.view <= engine_.view().id) return;  // stale
  if (staged_install_ && staged_install_->view > vi.view) return;
  max_proposed_ = std::max(max_proposed_, vi.view);
  engine_.stage_recovery_states(vi.states);
  staged_install_ = vi;
  FSR_INFO("node %u: staged view %llu, acking to %u", transport_.self(),
           (unsigned long long)vi.view, from);
  send_to(from, InstallAck{vi.view, transport_.self()});
}

void GroupMember::handle_install_ack(const InstallAck& ack) {
  if (!round_ || !round_->install_sent || ack.view != round_->proposed) return;
  round_->install_acks.insert(ack.from);
  if (round_->install_acks.size() < round_->participants.size()) return;

  // Everyone stored the union: commit.
  auto participants = round_->participants;
  auto members = round_->new_members;
  ViewId view = round_->proposed;
  round_.reset();
  for (NodeId m : members) pending_joins_.erase(m);
  for (NodeId p : participants) {
    if (std::find(members.begin(), members.end(), p) == members.end()) {
      pending_leaves_.erase(p);
    }
  }
  for (NodeId p : participants) {
    if (p != transport_.self()) send_to(p, CommitView{view});
  }
  handle_commit_view(CommitView{view});
}

void GroupMember::handle_commit_view(const CommitView& cv) {
  if (!staged_install_ || staged_install_->view != cv.view) return;
  if (cv.view <= engine_.view().id) return;
  ViewInstall vi = std::move(*staged_install_);
  staged_install_.reset();
  apply_install(vi);
}

void GroupMember::apply_install(const ViewInstall& vi) {
  if (vi.view <= engine_.view().id) return;  // stale
  max_proposed_ = std::max(max_proposed_, vi.view);
  if (round_ && vi.view >= round_->proposed) round_.reset();

  View v{vi.view, vi.members};
  if (!v.contains(transport_.self())) {
    // We left (or were excluded): this member is done.
    left_ = true;
    FSR_INFO("node %u left the group at view %llu", transport_.self(),
             static_cast<unsigned long long>(vi.view));
    if (on_view_change_) on_view_change_(v);
    return;
  }
  FSR_INFO("node %u: installing %s", transport_.self(), to_string(v).c_str());
  engine_.install_view(v, vi.states);
  // The ring (and thus our predecessor) changed; restart the silence clock
  // and let the next tick re-resolve whom to watch.
  last_predecessor_activity_ = transport_.now();
  monitored_pred_ = kNoNode;
  if (on_view_change_) on_view_change_(v);
  // A membership request may have arrived mid-flush.
  maybe_coordinate();
}

// --- join / leave / rotation ---

void GroupMember::request_join(NodeId contact) {
  assert(!in_group() && "already a member");
  left_ = false;
  send_to(contact, JoinReq{transport_.self()});
}

void GroupMember::request_leave() {
  if (!in_group()) return;
  // Drain first: a member that leaves with undelivered own broadcasts would
  // lose them (after departure nobody can re-broadcast them). Retry until
  // the engine's pending-own count reaches zero.
  if (engine_.pending_own() > 0) {
    transport_.set_timer(2 * kMillisecond, [this] { request_leave(); });
    return;
  }
  auto coord = coordinator();
  if (!coord) return;
  send_to(*coord, LeaveReq{transport_.self()});
}

void GroupMember::rotate_leader() {
  if (!i_am_coordinator() || round_) return;
  const View& v = engine_.view();
  if (v.size() < 2) return;
  std::vector<NodeId> rotated(v.members.begin() + 1, v.members.end());
  rotated.push_back(v.members.front());
  start_flush(std::move(rotated));
}

void GroupMember::handle_join_req(const JoinReq& req) {
  if (left_) return;
  auto coord = coordinator();
  if (!coord) return;
  if (*coord != transport_.self()) {
    send_to(*coord, req);  // forward to whoever coordinates
    return;
  }
  if (engine_.view().contains(req.node) || failed_.count(req.node)) return;
  pending_joins_.insert(req.node);
  maybe_coordinate();
}

void GroupMember::handle_leave_req(const LeaveReq& req) {
  if (left_) return;
  auto coord = coordinator();
  if (!coord) return;
  if (*coord != transport_.self()) {
    send_to(*coord, req);
    return;
  }
  if (!engine_.view().contains(req.node)) return;
  pending_leaves_.insert(req.node);
  maybe_coordinate();
}

}  // namespace fsr
