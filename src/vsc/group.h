// Virtually synchronous group membership (paper §3, §4.2.1), built on a
// perfect failure detector (the transport's on_peer_down) and reliable
// point-to-point channels.
//
// View-change protocol (coordinator-driven flush):
//   1. On a membership event (crash / join / leave / leader rotation) the
//      coordinator — the first non-failed member of the current ring —
//      proposes a new view id and sends FLUSH_REQ to every participant.
//   2. Each participant freezes its FSR engine, serializes its recovery
//      state and replies FLUSH_STATE.
//   3. When the coordinator has every participant's state it distributes
//      VIEW_INSTALL carrying all blobs. Members STAGE the union (absorb its
//      records) and ack; once every participant acked, the coordinator
//      sends COMMIT_VIEW and everyone installs: the FSR engine performs the
//      paper's §4.2.1 recovery — deliver the union of sequenced-undelivered
//      pairs, then re-broadcast own pending messages in the new view. The
//      two phases make union delivery uniform even when the coordinator and
//      early receivers crash together.
//
// Concurrent failures (including of the coordinator) are handled by the
// monotonic proposal id: whoever becomes coordinator restarts the flush with
// a higher id, and stale rounds are ignored. This terminates because the
// failure detector is perfect (no false suspicions) and fewer than n
// processes crash.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "fsr/engine.h"
#include "fsr/view.h"
#include "transport/transport.h"

namespace fsr {

struct GroupConfig {
  EngineConfig engine;

  /// Optional ring heartbeats: each member periodically sends a Heartbeat to
  /// its successor and suspects its predecessor after `heartbeat_timeout`
  /// of silence (any frame counts as life). Catches hangs that produce no
  /// connection reset. 0 disables (the simulator's perfect failure detector
  /// or TCP resets then carry detection alone).
  Time heartbeat_interval = 0;
  Time heartbeat_timeout = 0;

  /// Optional periodic leader rotation (paper §4.3.1): the coordinator
  /// moves the leader role to the next ring position every interval,
  /// evening out the position-dependent latency L(i) across processes.
  /// 0 disables. NOTE: like heartbeats, the timer re-arms forever — drive
  /// simulations with run_until().
  Time rotation_interval = 0;
};

class GroupMember {
 public:
  using ViewChangeFn = std::function<void(const View&)>;

  /// If `initial_view` contains this node, start as a steady member of it.
  /// Otherwise the node starts outside the group and must request_join().
  GroupMember(Transport& transport, GroupConfig config, View initial_view,
              Engine::DeliverFn deliver, ViewChangeFn on_view_change = {});

  GroupMember(const GroupMember&) = delete;
  GroupMember& operator=(const GroupMember&) = delete;

  // --- application API ---

  void broadcast(Bytes payload) { engine_.broadcast(std::move(payload)); }

  /// Zero-copy variant (see Engine::broadcast(Payload)).
  void broadcast(Payload payload) { engine_.broadcast(std::move(payload)); }

  /// Ask to be admitted to the group via a current member.
  void request_join(NodeId contact);

  /// Ask to leave the group gracefully (participates in one last flush).
  void request_leave();

  /// Rotate the leader role to the next ring position (paper §4.3.1:
  /// periodically moving the leader evens out per-sender latency). Only the
  /// current coordinator honors this.
  void rotate_leader();

  /// Application state-transfer hooks for joins (see Engine).
  void set_snapshot_hooks(std::function<Bytes()> take,
                          std::function<void(const Bytes&)> install) {
    engine_.set_snapshot_hooks(std::move(take), std::move(install));
  }

  // --- introspection ---

  const View& view() const { return engine_.view(); }
  bool in_group() const { return !left_ && view().id != 0 && view().contains(self()); }
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  GroupId group() const { return engine_.group(); }
  NodeId self() const { return transport_.self(); }
  bool flushing() const { return engine_.frozen(); }

  /// The member's transport, for services layered on top (the gateway arms
  /// its coalescing/lease timers here: deterministic under SimTransport,
  /// runtime-role-checked under TcpTransport).
  Transport& transport() { return transport_; }

 private:
  void on_frame(const Frame& frame);
  void on_peer_down(NodeId node);
  void handle_membership(const WireMsg& msg, NodeId from);

  void maybe_coordinate();
  void start_flush(std::vector<NodeId> new_members);
  void handle_flush_req(const FlushReq& req, NodeId from);
  void handle_flush_state(const FlushState& st);
  void handle_view_install(const ViewInstall& vi, NodeId from);
  void handle_install_ack(const InstallAck& ack);
  void handle_commit_view(const CommitView& cv);
  void apply_install(const ViewInstall& vi);
  void handle_join_req(const JoinReq& req);
  void handle_leave_req(const LeaveReq& req);

  /// First member of the current view not known to have failed.
  std::optional<NodeId> coordinator() const;
  bool i_am_coordinator() const;
  void send_to(NodeId to, WireMsg msg);

  Transport& transport_;
  GroupConfig cfg_;
  Engine engine_;
  ViewChangeFn on_view_change_;

  std::set<NodeId> failed_;
  bool left_ = false;

  /// Highest proposal id seen anywhere (also bumped on installs).
  ViewId max_proposed_ = 0;

  /// Coordinator-side flush round state.
  struct FlushRound {
    ViewId proposed = 0;
    std::vector<NodeId> participants;  // who must report state
    std::vector<NodeId> new_members;   // the view being formed
    std::map<NodeId, Bytes> states;
    bool install_sent = false;         // phase two: awaiting install acks
    std::set<NodeId> install_acks;
  };
  std::optional<FlushRound> round_;

  /// Member-side staged install, delivered on CommitView.
  std::optional<ViewInstall> staged_install_;

  /// Membership changes requested while a flush is already running.
  std::set<NodeId> pending_joins_;
  std::set<NodeId> pending_leaves_;

  // Ring heartbeat monitoring (optional).
  void arm_heartbeat();
  void on_heartbeat_tick();
  /// Nearest ring neighbor not yet known failed (`dir` +1 = successor,
  /// -1 = predecessor); kNoNode when no other live member exists. Skipping
  /// failed members keeps the monitoring ring closed when adjacent members
  /// crash — a dead node's only watcher may itself be dead, and the
  /// detector owes strong completeness to the survivors.
  NodeId nearest_alive_neighbor(int dir) const;
  TimerId heartbeat_timer_;
  Time last_predecessor_activity_ = 0;
  /// Whom the silence monitor currently watches; changes reset the clock.
  NodeId monitored_pred_ = kNoNode;

  // Periodic leader rotation (optional).
  void arm_rotation();
  TimerId rotation_timer_;
};

}  // namespace fsr
