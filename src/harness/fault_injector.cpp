#include "harness/fault_injector.h"

#include <cassert>

namespace fsr {

namespace {

bool frame_matches(const Frame& frame, const FaultTrigger& t) {
  if (t.from != kNoNode && frame.from != t.from) return false;
  if (t.msg_kind < 0) return true;
  for (const auto& m : frame.msgs) {
    if (static_cast<int>(m.index()) == t.msg_kind) return true;
  }
  return false;
}

}  // namespace

FaultInjector::FaultInjector(SimCluster& cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)), state_(plan_.events.size()) {}

void FaultInjector::arm() {
  assert(!armed_ && "arm() must be called exactly once");
  armed_ = true;
  cluster_.world().net().set_frame_tap([this](const Frame& f) { on_frame(f); });
  cluster_.set_view_tap([this](NodeId, const View& v) { on_view(v); });
  cluster_.checker().set_context_provider([this] {
    if (last_applied_.empty()) return std::string("no fault applied yet");
    return "after fault " + last_applied_ + " at t=" +
           std::to_string(cluster_.sim().now() / kMicrosecond) + "us";
  });
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultTrigger& t = plan_.events[i].trigger;
    if (t.kind == FaultTrigger::Kind::kAtTime) {
      state_[i].fired = true;
      cluster_.sim().schedule_at(t.at + t.delay, [this, i] { apply(i); });
    }
  }
}

void FaultInjector::on_frame(const Frame& frame) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultTrigger& t = plan_.events[i].trigger;
    if (state_[i].fired || t.kind != FaultTrigger::Kind::kOnFrame) continue;
    if (!frame_matches(frame, t)) continue;
    if (++state_[i].matches >= t.nth) fire(i);
  }
}

void FaultInjector::on_view(const View& view) {
  // Count each new view id once (every member installs the same view).
  if (view.id <= max_view_seen_) return;
  max_view_seen_ = view.id;
  ++view_changes_;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultTrigger& t = plan_.events[i].trigger;
    if (state_[i].fired || t.kind != FaultTrigger::Kind::kOnViewChange) continue;
    if (view_changes_ >= t.nth) fire(i);
  }
}

void FaultInjector::fire(std::size_t index) {
  state_[index].fired = true;
  // Defer: taps run mid-frame inside the network/protocol; mutating the
  // world there would corrupt the state being processed.
  cluster_.sim().schedule(plan_.events[index].trigger.delay, [this, index] { apply(index); });
}

void FaultInjector::apply(std::size_t index) {
  const FaultAction& a = plan_.events[index].action;
  ++applied_;
  last_applied_ = "#" + std::to_string(index) + " " + describe(plan_.events[index]);
  ClusterNet& net = cluster_.world().net();
  switch (a.kind) {
    case FaultAction::Kind::kCrash:
      if (cluster_.alive(a.node)) cluster_.crash(a.node, a.fd_delay);
      break;
    case FaultAction::Kind::kCrashSilent:
      if (cluster_.alive(a.node)) cluster_.crash_silent(a.node);
      break;
    case FaultAction::Kind::kLinkDelay: {
      net.set_link_delay(a.a, a.b, a.amount);
      Time span = a.duration > 0 ? a.duration : kMillisecond;
      cluster_.sim().schedule(span, [this, a] {
        cluster_.world().net().set_link_delay(a.a, a.b, 0);
      });
      break;
    }
    case FaultAction::Kind::kLinkJitter: {
      net.set_link_jitter(a.amount);
      Time span = a.duration > 0 ? a.duration : kMillisecond;
      cluster_.sim().schedule(span, [this] {
        cluster_.world().net().set_link_jitter(0);
      });
      break;
    }
    case FaultAction::Kind::kPartition: {
      auto in_side = [&a](NodeId n) {
        for (NodeId s : a.side) {
          if (s == n) return true;
        }
        return false;
      };
      std::vector<std::pair<NodeId, NodeId>> cut;
      for (NodeId x = 0; x < cluster_.size(); ++x) {
        for (NodeId y = 0; y < cluster_.size(); ++y) {
          if (x == y || in_side(x) == in_side(y)) continue;
          net.cut_link(x, y, a.drop_on_heal);
          cut.emplace_back(x, y);
        }
      }
      // A partition must always heal: plans model *transient* outages, and
      // frames buffered forever would turn every run into a liveness
      // failure of the harness rather than the protocol.
      Time span = a.duration > 0 ? a.duration : kMillisecond;
      cluster_.sim().schedule(span, [this, cut = std::move(cut)] {
        for (auto [x, y] : cut) cluster_.world().net().heal_link(x, y);
      });
      break;
    }
    case FaultAction::Kind::kDropFrames:
      net.drop_frames(a.a, a.b, a.count);
      break;
    case FaultAction::Kind::kRotateLeader:
      // Only the current coordinator honors the request; asking everyone
      // alive avoids tracking coordinatorship here.
      for (NodeId n = 0; n < cluster_.size(); ++n) {
        if (cluster_.alive(n)) cluster_.node(n).rotate_leader();
      }
      break;
    case FaultAction::Kind::kNodeProfile: {
      net.set_node_profile(a.node, a.profile);
      Time span = a.duration > 0 ? a.duration : kMillisecond;
      cluster_.sim().schedule(span, [this, a] {
        cluster_.world().net().set_node_profile(a.node, NetProfile{});
      });
      break;
    }
    case FaultAction::Kind::kLinkProfile: {
      net.set_link_profile(a.a, a.b, a.profile);
      Time span = a.duration > 0 ? a.duration : kMillisecond;
      cluster_.sim().schedule(span, [this, a] {
        cluster_.world().net().set_link_profile(a.a, a.b, NetProfile{});
      });
      break;
    }
  }
}

}  // namespace fsr
