// In-process cluster over real TCP sockets: n GroupMembers, each with its
// own TcpTransport (I/O thread) on a localhost ephemeral port. Used by the
// integration tests, the TCP example and the TCP benchmark. Thread-safe
// observation of per-node delivery logs; crash() hard-stops a node's
// transport so peers observe connection resets (crash-stop semantics).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "checker/invariant_checker.h"
#include "common/sync.h"
#include "transport/group_mux.h"
#include "transport/tcp_transport.h"
#include "vsc/group.h"

namespace fsr {

class TcpCluster {
 public:
  struct LogEntry {
    GroupId group = 0;
    NodeId origin = kNoNode;
    std::uint64_t app_msg = 0;
    GlobalSeq seq = 0;
    std::size_t bytes = 0;
    std::uint64_t payload_hash = 0;
  };

  /// Observes every delivery on the delivering node's I/O thread (after the
  /// log and the invariant checker). Fixed at construction: it runs on n
  /// I/O threads, so there is no race-free way to install it later.
  using DeliveryTap = std::function<void(NodeId, const Delivery&)>;

  /// With `autostart` false the I/O threads are not started; finish wiring
  /// (e.g. construct per-node gateways the tap points at) and call
  /// start_all(). Nothing flows before start_all().
  /// `groups` > 1 hosts that many independent ordering domains per node
  /// over the shared transport (each group's initial ring rotated by the
  /// group id so sequencer duty spreads across nodes).
  TcpCluster(std::size_t n, GroupConfig group, DeliveryTap tap = {},
             bool autostart = true, GroupId groups = 1);
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  /// Start every node's I/O thread (no-op when autostart did it).
  void start_all();

  std::size_t size() const { return nodes_.size(); }
  GroupId groups() const { return groups_; }

  /// TO-broadcast from `from` (thread-safe; posts to the node's I/O thread).
  void broadcast(NodeId from, Bytes payload) { broadcast(from, GroupId{0}, std::move(payload)); }
  void broadcast(NodeId from, GroupId group, Bytes payload);

  /// TO-broadcast from code already running on `from`'s I/O thread (the
  /// gateway's submit path): registers with the checker and hands the
  /// Payload through without copying or re-posting.
  void submit_from_io(NodeId from, Payload payload) {
    submit_from_io(from, GroupId{0}, std::move(payload));
  }
  void submit_from_io(NodeId from, GroupId group, Payload payload);

  /// Hard-stop a node (sockets die; peers detect the crash).
  void crash(NodeId node);
  bool alive(NodeId node) const { return !nodes_[node]->crashed.load(); }

  /// Snapshot of a node's delivery log.
  std::vector<LogEntry> log(NodeId node) const;

  /// Wait (wall clock) until every live node delivered at least `count`
  /// messages; false on timeout.
  bool wait_deliveries(std::size_t count, Time timeout);

  /// Wait until every live node is in a view of the given size.
  bool wait_view_size(std::uint32_t members, Time timeout);

  /// Run a function on a node's I/O thread and wait (e.g. leave requests).
  void with_member(NodeId node, const std::function<void(GroupMember&)>& fn);

  /// The node's transport (for post()/post_wait() marshalling) and member.
  /// The member reference is stable; touch it only from its I/O thread.
  TcpTransport& transport(NodeId node) { return *nodes_[node]->transport; }
  GroupMember& member(NodeId node) { return *nodes_[node]->members[0]; }
  GroupMember& member(NodeId node, GroupId g) { return *nodes_[node]->members.at(g); }

  /// Sum of every live node's transport counters (each snapshot taken on
  /// its I/O thread, per the TransportCounters threading contract).
  TransportCounters counters() const;

  /// Sum of every live node's engine counters across all groups (same
  /// threading contract: each engine's counters are snapshotted on its own
  /// I/O thread).
  EngineCounters engine_counters() const;

  /// One group's slice of the same rollup.
  EngineCounters engine_counters(GroupId g) const;

  /// The protocol-invariant checker fed by every node's delivery stream
  /// (concurrently, from the n I/O threads). Online findings surface here
  /// the moment they happen.
  const InvariantChecker& checker() const { return checker_; }

  /// All safety invariants over everything delivered so far ("" = hold).
  /// `correct` = nodes never crashed via crash(). Nodes that left the group
  /// gracefully stop delivering, so only call after traffic has quiesced or
  /// exclude leavers via crash().
  std::string check_invariants() const { return checker_.check_all(); }

 private:
  struct Node {
    std::unique_ptr<TcpTransport> transport;
    /// Fans the transport out to the node's per-group members.
    std::unique_ptr<GroupMux> mux;
    std::vector<std::unique_ptr<GroupMember>> members;  // [group]
    mutable Mutex mutex;
    std::vector<LogEntry> log FSR_GUARDED_BY(mutex);
    std::atomic<bool> crashed{false};
    // Touched only on the node's I/O thread (mirrors the engine numbering);
    // guarded by the transport's role capability, asserted at runtime in
    // submit_from_io because the role lives behind the Transport interface.
    std::vector<std::uint64_t> app_counters;  // [group]
  };

  InvariantChecker checker_;
  GroupId groups_ = 1;
  std::vector<std::unique_ptr<Node>> nodes_;
  DeliveryTap tap_;  // fixed at construction; read from I/O threads
  bool started_ = false;
};

}  // namespace fsr
