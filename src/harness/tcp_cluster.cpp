#include "harness/tcp_cluster.h"

#include <chrono>
#include <thread>

#include <cstdlib>

#include "common/log.h"
#include "harness/sim_cluster.h"  // hash_bytes

namespace fsr {

namespace {
Time wall_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

TcpCluster::TcpCluster(std::size_t n, GroupConfig group, DeliveryTap tap,
                       bool autostart, GroupId groups)
    : checker_(n), groups_(groups), tap_(std::move(tap)) {
  // Construction is single-threaded; no I/O thread exists yet and nothing
  // else reads the environment.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* lvl = std::getenv("FSR_LOG")) {
    if (std::string(lvl) == "debug") set_log_level(LogLevel::kDebug);
    if (std::string(lvl) == "info") set_log_level(LogLevel::kInfo);
  }
  std::vector<TcpPeer> peers;
  for (std::size_t i = 0; i < n; ++i) {
    peers.push_back(TcpPeer{static_cast<NodeId>(i), "127.0.0.1", 0});
  }

  // Phase 1: bind every listener on an ephemeral port.
  for (std::size_t i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    TcpConfig cfg;
    cfg.self = static_cast<NodeId>(i);
    cfg.peers = peers;
    node->transport = std::make_unique<TcpTransport>(cfg);
    node->transport->bind();
    nodes_.push_back(std::move(node));
  }
  // Phase 2: distribute the real ports.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      nodes_[i]->transport->set_peer_port(static_cast<NodeId>(j),
                                          nodes_[j]->transport->bound_port());
    }
  }
  // Phase 3: per-group members over each node's mux + I/O threads. Each
  // group's initial ring is the member set rotated by the group id, so
  // sequencer duty (position 0) spreads across nodes.
  for (std::size_t i = 0; i < n; ++i) {
    Node* node = nodes_[i].get();
    auto id = static_cast<NodeId>(i);
    node->mux = std::make_unique<GroupMux>(*node->transport, groups);
    node->app_counters.assign(groups, 0);
    node->members.reserve(groups);
    for (GroupId g = 0; g < groups; ++g) {
      View initial;
      initial.id = 1;
      for (std::size_t k = 0; k < n; ++k) {
        initial.members.push_back(static_cast<NodeId>((g + k) % n));
      }
      GroupConfig gc = group;
      gc.engine.group = g;
      node->members.push_back(std::make_unique<GroupMember>(
          node->mux->channel(g), gc, initial, [this, node, id](const Delivery& d) {
            std::uint64_t hash = hash_bytes(d.payload);
            {
              MutexLock lock(node->mutex);
              node->log.push_back(LogEntry{d.group, d.origin, d.app_msg, d.seq,
                                           d.payload.size(), hash});
            }
            checker_.on_delivery(DeliveryRecord{id, d.group, d.origin, d.app_msg,
                                                d.seq, d.view, hash,
                                                d.payload.size(), wall_now()});
            if (tap_) tap_(id, d);
          }));
    }
  }
  if (autostart) start_all();
}

void TcpCluster::start_all() {
  if (started_) return;
  started_ = true;
  for (auto& node : nodes_) node->transport->start();
}

TcpCluster::~TcpCluster() {
  for (auto& node : nodes_) node->transport->stop();
}

void TcpCluster::broadcast(NodeId from, GroupId group, Bytes payload) {
  Node* node = nodes_[from].get();
  if (node->crashed.load()) return;
  // The submission is registered on the I/O thread so the mirrored app_msg
  // counter agrees with the engine's numbering even when several
  // application threads broadcast through one node concurrently.
  std::uint64_t hash = hash_bytes(payload);
  node->transport->post(
      [this, from, group, node, hash, payload = std::move(payload)]() mutable {
        checker_.on_broadcast(group, from, ++node->app_counters[group], hash);
        node->members[group]->broadcast(std::move(payload));
      });
}

void TcpCluster::submit_from_io(NodeId from, GroupId group, Payload payload) {
  Node* node = nodes_[from].get();
  // "Runs on `from`'s I/O thread" is not expressible statically from here
  // (the role belongs to nodes_[from]->transport); enforce it at runtime.
  node->transport->io_role().assert_held();
  if (node->crashed.load()) return;
  checker_.on_broadcast(group, from, ++node->app_counters[group],
                        hash_bytes(payload.span()));
  node->members[group]->broadcast(std::move(payload));
}

void TcpCluster::crash(NodeId node) {
  nodes_[node]->crashed.store(true);
  checker_.note_crashed(node);
  nodes_[node]->transport->stop();
}

std::vector<TcpCluster::LogEntry> TcpCluster::log(NodeId node) const {
  MutexLock lock(nodes_[node]->mutex);
  return nodes_[node]->log;
}

bool TcpCluster::wait_deliveries(std::size_t count, Time timeout) {
  Time deadline = wall_now() + timeout;
  for (;;) {
    bool ok = true;
    for (const auto& node : nodes_) {
      if (node->crashed.load()) continue;
      MutexLock lock(node->mutex);
      if (node->log.size() < count) ok = false;
    }
    if (ok) return true;
    if (wall_now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool TcpCluster::wait_view_size(std::uint32_t members, Time timeout) {
  Time deadline = wall_now() + timeout;
  for (;;) {
    bool ok = true;
    for (auto& node : nodes_) {
      if (node->crashed.load()) continue;
      std::uint32_t got = 0;
      bool flushing = true;
      bool in_group = true;
      node->transport->post_wait([&] {
        // Every group of the node must have settled into the target view.
        got = node->members[0]->view().size();
        flushing = false;
        in_group = node->members[0]->in_group();
        for (const auto& m : node->members) {
          if (m->view().size() != got) flushing = true;  // not settled yet
          if (m->flushing()) flushing = true;
        }
      });
      if (!in_group) continue;  // left the group; not part of the view
      if (got != members || flushing) ok = false;
    }
    if (ok) return true;
    if (wall_now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TransportCounters TcpCluster::counters() const {
  TransportCounters total;
  for (const auto& node : nodes_) {
    if (node->crashed.load()) continue;
    TransportCounters c;
    node->transport->post_wait([&] { c = node->transport->counters(); });
    total += c;
  }
  return total;
}

EngineCounters TcpCluster::engine_counters() const {
  EngineCounters total;
  for (const auto& node : nodes_) {
    if (node->crashed.load()) continue;
    EngineCounters c;
    node->transport->post_wait([&] {
      for (const auto& m : node->members) c += m->engine().counters();
    });
    total += c;
  }
  return total;
}

EngineCounters TcpCluster::engine_counters(GroupId g) const {
  EngineCounters total;
  for (const auto& node : nodes_) {
    if (node->crashed.load()) continue;
    EngineCounters c;
    node->transport->post_wait([&] { c = node->members.at(g)->engine().counters(); });
    total += c;
  }
  return total;
}

void TcpCluster::with_member(NodeId node, const std::function<void(GroupMember&)>& fn) {
  Node* n = nodes_[node].get();
  n->transport->post_wait([&] { fn(*n->members[0]); });
}

}  // namespace fsr
