// Gateway-level chaos engine: seeded client-misbehavior shapes — slow-loris
// writers, reconnect storms, duplicate floods — composed with the FaultPlan
// network/crash underlay, run against a SimGatewayCluster under an
// exactly-once + bounded-memory + convergence oracle, with greedy shrinking
// down to a one-line repro.
//
// Sibling of SwarmRunner (harness/swarm.h), one layer up the stack: the
// swarm stresses the broadcast protocol with well-behaved senders; the
// chaos runner stresses the session/admission layer above it with senders
// that retry, reconnect, replay and stall on purpose. The oracle is the
// gateway's whole contract at once:
//   * exactly-once — every client runs a chained CAS on its own key
//     (seq k: CAS(key, v_{k-1}, v_k)), so a double execution makes some CAS
//     fail; `failed_cas == 0` on every live replica is the invariant, and a
//     "FAIL" reply reaching a client is the same bug seen client-side.
//   * bounded memory — admitted bytes never exceed the configured budget
//     and cached replies never exceed sessions * reply_cache, sampled by a
//     periodic probe *during* the run, not just at the end.
//   * convergence + the full broadcast checker — replica fingerprints
//     match and SimCluster::check_all stays clean.
//   * client liveness — every well-behaved client finishes its commands
//     (loris sessions are exempt: stalling is their job).
//
// `sabotage_double_execute` plants a real exactly-once violation (a client
// command re-broadcast as a plain payload, skipping the session table) so
// tests can prove each shape's oracle actually fires and shrinks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gateway/sim_gateway.h"
#include "harness/fault_plan.h"

namespace fsr {

enum class ChaosShape : std::uint8_t {
  kSlowLoris,       // over-window pipelined writers that trickle and stall
  kReconnectStorm,  // clients re-bind to random replicas mid-command
  kDuplicateFlood,  // replays of already-executed requests, in bulk
};

const char* chaos_shape_name(ChaosShape s);

/// One seeded client-misbehavior event (the shape's own fault vocabulary,
/// layered over the network/crash FaultPlan).
struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kReconnect,        // client re-binds to `replica`
    kFloodDuplicates,  // re-send `count` copies of executed requests
    kLorisBurst,       // pipeline `count` oversized requests at once
  };
  Kind kind = Kind::kReconnect;
  Time at = 0;
  std::size_t client = 0;   // client slot the event targets
  NodeId replica = kNoNode; // kReconnect target / kFloodDuplicates entry point
  std::uint32_t count = 1;  // kFloodDuplicates / kLorisBurst volume
};

/// A full chaos script: shape events + network underlay, both shrinkable.
struct ChaosPlan {
  std::uint64_t seed = 0;
  ChaosShape shape = ChaosShape::kReconnectStorm;
  FaultPlan faults;                     // network/crash underlay
  std::vector<ChaosEvent> client_events;
  /// Self-test hook: re-broadcast client 0's first command as a *plain*
  /// payload mid-run. Plain payloads skip the session table, so the command
  /// applies twice — the planted violation the oracle must catch.
  bool sabotage_double_execute = false;
};

struct ChaosConfig {
  std::string name = "chaos";
  ChaosShape shape = ChaosShape::kReconnectStorm;
  SimGatewayConfig gateway;  // cluster shape + gateway admission knobs
  FaultPlanConfig faults;    // underlay generation (n taken from cluster)

  std::size_t clients = 3;         // well-behaved chained-CAS sessions
  int commands_per_client = 8;
  Time submit_horizon = 20 * kMillisecond;
  Time client_retry = 5 * kMillisecond;
  std::size_t client_max_attempts = 100;

  std::size_t max_chaos_events = 6;    // shape events per plan (>= 1)
  std::size_t loris_value_bytes = 1024;  // chained-CAS value padding for loris

  Time probe_interval = kMillisecond;  // memory-bound sampling period
  Time run_horizon = 2 * kSecond;      // for configs whose timers re-arm
  std::uint64_t max_events = 20'000'000;
};

struct ChaosResult {
  bool ok = true;
  std::uint64_t seed = 0;
  std::string violation;
  ChaosPlan plan;
  std::uint64_t commands_completed = 0;
  GatewayCounters counters;            // summed across replicas at the end
  std::size_t max_admitted_bytes = 0;  // probe-observed peak, any replica
  std::size_t max_reply_cache_entries = 0;
  std::uint64_t events_executed = 0;
};

struct ChaosFailure {
  ChaosResult result;
  ChaosPlan minimized;
  std::string repro;
};

/// Generate a chaos plan from `seed`. Same seed + config => same plan.
ChaosPlan make_chaos_plan(std::uint64_t seed, const ChaosConfig& cfg);

std::string describe(const ChaosEvent& event);
std::string describe(const ChaosPlan& plan);

class ChaosRunner {
 public:
  explicit ChaosRunner(ChaosConfig config);

  ChaosResult run_seed(std::uint64_t seed) const;
  ChaosResult run_plan(std::uint64_t seed, const ChaosPlan& plan) const;

  /// Greedy removal over fault events then shape events, until no single
  /// removal preserves the failure (sabotage flags are never removed — a
  /// fully shrunk sabotage run reads `events=[] sabotage`).
  ChaosPlan shrink(std::uint64_t seed, const ChaosPlan& plan) const;

  std::vector<ChaosFailure> run_range(
      std::uint64_t first, std::uint64_t count,
      const std::function<void(const ChaosFailure&)>& on_failure = {}) const;

  std::string format_repro(const ChaosResult& result, const ChaosPlan& minimized) const;

  const ChaosConfig& config() const { return cfg_; }

 private:
  ChaosConfig cfg_;
};

}  // namespace fsr
