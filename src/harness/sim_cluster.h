// Test/benchmark harness: a complete simulated FSR cluster — simulator,
// network model, one GroupMember per node — with per-node delivery logs.
// Every submission and delivery is streamed into an InvariantChecker
// (src/checker), which validates the paper's safety properties online; the
// check_* methods here are thin façades over it.
#pragma once

#include <map>
#include <memory>
#include <tuple>
#include <set>
#include <string>
#include <vector>

#include "checker/invariant_checker.h"
#include "net/cluster_net.h"
#include "transport/group_mux.h"
#include "transport/sim_transport.h"
#include "vsc/group.h"

namespace fsr {

struct ClusterConfig {
  std::size_t n = 4;
  NetConfig net;
  GroupConfig group;
  Time fd_delay = 2 * kMillisecond;

  /// Independent ordering domains hosted by every node. Each group runs its
  /// own ring/engine over the shared per-node transport (via GroupMux), with
  /// its initial ring order rotated by the group id so leaders spread across
  /// nodes (group g's sequencer starts at node g mod members).
  GroupId groups = 1;

  /// If nonzero, only the first `initial_members` nodes form the initial
  /// view; the rest start outside the group and may request_join() later.
  std::size_t initial_members = 0;
};

class SimCluster {
 public:
  struct LogEntry {
    GroupId group = 0;
    NodeId origin = kNoNode;
    std::uint64_t app_msg = 0;
    GlobalSeq seq = 0;
    ViewId view = 0;
    std::size_t bytes = 0;
    Time at = 0;
    std::uint64_t payload_hash = 0;
  };

  explicit SimCluster(ClusterConfig config);

  Simulator& sim() { return world_.sim(); }
  SimWorld& world() { return world_; }
  std::size_t size() const { return members_.size(); }
  GroupId groups() const { return cfg_.groups; }
  /// The node's group-0 member (the only one in single-group clusters).
  GroupMember& node(NodeId id) { return *members_[id][0]; }
  /// The node's member in a specific ordering domain.
  GroupMember& member(NodeId id, GroupId g) { return *members_[id].at(g); }
  const ClusterConfig& config() const { return cfg_; }

  /// TO-broadcast from a node; records the submit time for latency queries.
  void broadcast(NodeId from, Bytes payload) {
    broadcast(from, GroupId{0}, std::move(payload));
  }
  void broadcast(NodeId from, GroupId group, Bytes payload);

  /// Zero-copy variant: registers with the checker, then hands the Payload
  /// through un-copied (the gateway's submit path).
  void broadcast(NodeId from, Payload payload) {
    broadcast(from, GroupId{0}, std::move(payload));
  }
  void broadcast(NodeId from, GroupId group, Payload payload);

  /// Observe every delivery (in addition to the internal log) — e.g. to
  /// feed replicated state machines in application tests.
  void set_delivery_tap(std::function<void(NodeId, const Delivery&)> tap) {
    tap_ = std::move(tap);
  }

  /// Observe every view installation (node, new view) — the fault injector
  /// uses this for "on Nth view change" trigger points.
  void set_view_tap(std::function<void(NodeId, const View&)> tap) {
    view_tap_ = std::move(tap);
  }

  /// Install per-node application snapshot hooks (joiner state transfer)
  /// for the group-0 members (state transfer is a per-ring mechanism; tests
  /// that exercise it run single-group clusters).
  void set_snapshot_hooks(std::function<Bytes(NodeId)> take,
                          std::function<void(NodeId, const Bytes&)> install) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      auto id = static_cast<NodeId>(i);
      members_[i][0]->set_snapshot_hooks([take, id] { return take(id); },
                                         [install, id](const Bytes& b) { install(id, b); });
    }
  }

  /// Crash-stop with perfect-FD notification after `fd_delay` (< 0: the
  /// cluster's configured default detection delay).
  void crash(NodeId node, Time fd_delay = -1);

  /// Crash without perfect-FD notification (models a hang); only heartbeat
  /// timeouts (GroupConfig::heartbeat_*) can detect it. NOTE: heartbeats
  /// re-arm timers forever, so drive such clusters with sim().run_until().
  void crash_silent(NodeId node);
  bool alive(NodeId node) const { return world_.alive(node); }

  const std::vector<LogEntry>& log(NodeId node) const { return logs_[node]; }

  /// Submit time of (origin, app_msg) in a group, or -1 if unknown.
  Time submit_time(NodeId origin, std::uint64_t app_msg, GroupId group = 0) const;

  /// Time at which every live node delivered (origin, app_msg) in a group;
  /// -1 if some live node has not.
  Time completion_time(NodeId origin, std::uint64_t app_msg, GroupId group = 0) const;

  /// Sum of every node's engine counters across all groups (window pooling,
  /// piggybacking, copy discipline) — includes crashed nodes: the simulator
  /// is single-threaded, so their frozen counters are still readable.
  EngineCounters engine_counters() const {
    EngineCounters total;
    for (const auto& node : members_) {
      for (const auto& m : node) total += m->engine().counters();
    }
    return total;
  }

  /// One group's slice of the same rollup.
  EngineCounters engine_counters(GroupId g) const {
    EngineCounters total;
    for (const auto& node : members_) total += node.at(g)->engine().counters();
    return total;
  }

  /// The protocol-invariant checker fed by this cluster (online findings,
  /// raw DeliveryRecords for trace lints, ...). The non-const overload
  /// lets harnesses install a provenance context provider.
  const InvariantChecker& checker() const { return checker_; }
  InvariantChecker& checker() { return checker_; }

  // --- invariant checkers (façade over checker()): "" = invariant holds ---

  /// Total order: every pair of logs agrees on the order and identity of
  /// common deliveries (each is a prefix-consistent subsequence).
  std::string check_total_order() const;

  /// Agreement: all nodes in `correct` have identical logs.
  std::string check_agreement(const std::set<NodeId>& correct) const;

  /// Integrity: no duplicates, every delivered message was broadcast, and
  /// payload hashes match the broadcast payloads.
  std::string check_integrity() const;

  /// Uniformity: every crashed node's log is a prefix of every correct
  /// node's log (whatever a failed process delivered, all deliver).
  std::string check_uniformity(const std::set<NodeId>& crashed,
                               const std::set<NodeId>& correct) const;

  /// All invariants at once (crashed = nodes crashed via crash()).
  std::string check_all() const;

 private:
  ClusterConfig cfg_;
  SimWorld world_;
  InvariantChecker checker_;
  /// One mux per node fans the shared transport out to the node's members.
  std::vector<std::unique_ptr<GroupMux>> muxes_;
  std::vector<std::vector<std::unique_ptr<GroupMember>>> members_;  // [node][group]
  std::vector<std::vector<LogEntry>> logs_;
  std::map<std::pair<NodeId, GroupId>, std::uint64_t> next_app_counter_;
  std::map<std::tuple<GroupId, NodeId, std::uint64_t>, Time> submit_times_;
  std::set<NodeId> crashed_;
  std::function<void(NodeId, const Delivery&)> tap_;
  std::function<void(NodeId, const View&)> view_tap_;
};

/// FNV-1a, for payload integrity checking without storing payloads.
std::uint64_t hash_bytes(std::span<const std::uint8_t> b);

/// Deterministic payload of `size` bytes derived from (origin, app_msg).
Bytes test_payload(NodeId origin, std::uint64_t app_msg, std::size_t size);

}  // namespace fsr
