// Seeded schedule-exploration ("swarm") testing: generate thousands of
// random FaultPlans per cluster configuration, run each against a seeded
// workload to quiescence under the full InvariantChecker + trace lint +
// liveness oracle, and shrink any failure to a minimal plan by greedy
// event removal. Every run is a pure function of (config, seed), so a
// failure reduces to a one-line repro: config name + seed + minimized
// plan.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "checker/trace_lint.h"
#include "harness/fault_injector.h"
#include "harness/fault_plan.h"
#include "harness/sim_cluster.h"

namespace fsr {

/// One swarm configuration: cluster shape + workload + fault knobs.
struct SwarmConfig {
  std::string name = "swarm";  // printed in repro lines
  ClusterConfig cluster;       // n, t, segment size, heartbeats, ...
  FaultPlanConfig faults;      // plan-generation knobs (n is taken from cluster)

  std::size_t senders = 2;  // nodes 0..senders-1 broadcast
  int messages = 24;        // total messages across senders
  std::size_t min_payload = 1;
  std::size_t max_payload = 4096;
  Time submit_horizon = 25 * kMillisecond;  // submissions fall in [0, horizon)

  /// Every message from a node alive at the end must be delivered by every
  /// node alive at the end (catches wedges and lost frames, which pure
  /// safety checks can miss when *everyone* hangs identically).
  bool check_liveness = true;

  /// Trace-lint bounds applied to a surviving node's log (default: collect
  /// stats only — fairness bounds are opt-in, faults legally skew shares).
  LintConfig lint;

  /// Virtual-time horizon for configurations whose timers re-arm forever
  /// (heartbeats / rotation); ignored when the run can drain naturally.
  Time run_horizon = 2 * kSecond;

  /// Runaway-schedule guard: a run executing more simulator events than
  /// this without quiescing is itself reported as a violation.
  std::uint64_t max_events = 20'000'000;
};

struct SwarmResult {
  bool ok = true;
  std::uint64_t seed = 0;
  std::string violation;  // first failed property, with fault provenance
  FaultPlan plan;         // as run
  std::uint64_t deliveries = 0;
  std::uint64_t events_executed = 0;
};

struct SwarmFailure {
  SwarmResult result;  // the failing run
  FaultPlan minimized; // greedy-shrunk plan; still fails under the same seed
  std::string repro;   // one line: config, seed, minimized plan, violation
};

class SwarmRunner {
 public:
  explicit SwarmRunner(SwarmConfig config);

  /// Run the plan generated from `seed` (plan + workload both derive from
  /// it). Deterministic: same seed, same result.
  SwarmResult run_seed(std::uint64_t seed) const;

  /// Run an explicit plan under the workload derived from `seed`.
  SwarmResult run_plan(std::uint64_t seed, const FaultPlan& plan) const;

  /// Greedy event-removal shrinking: repeatedly drop single events while
  /// the run still fails, until no single removal preserves the failure.
  FaultPlan shrink(std::uint64_t seed, const FaultPlan& plan) const;

  /// Run seeds [first, first + count); every failure is shrunk and
  /// reported (and passed to `on_failure`, if set, as it is found).
  std::vector<SwarmFailure> run_range(
      std::uint64_t first, std::uint64_t count,
      const std::function<void(const SwarmFailure&)>& on_failure = {}) const;

  std::string format_repro(const SwarmResult& result, const FaultPlan& minimized) const;

  const SwarmConfig& config() const { return cfg_; }

 private:
  SwarmConfig cfg_;
};

}  // namespace fsr
