#include "harness/fault_plan.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace fsr {

namespace {

std::string format_time(Time t) {
  if (t < 0) return "default";
  if (t % kMillisecond == 0) return std::to_string(t / kMillisecond) + "ms";
  if (t % kMicrosecond == 0) return std::to_string(t / kMicrosecond) + "us";
  return std::to_string(t) + "ns";
}

std::string format_bandwidth(double bps) {
  if (bps >= 1e9) return std::to_string(static_cast<long long>(bps / 1e9)) + "Gbps";
  return std::to_string(static_cast<long long>(bps / 1e6)) + "Mbps";
}

std::string format_percent(double fraction) {
  // Loss rates are multiples of 0.05%; render with two decimals, no trailing
  // float noise: 0.0015 -> "0.15%".
  long long hundredths = static_cast<long long>(fraction * 10000 + 0.5);
  std::string s = std::to_string(hundredths / 100) + "." +
                  std::to_string((hundredths % 100) / 10) +
                  std::to_string(hundredths % 10);
  return s + "%";
}

std::string kind_name(int msg_kind) {
  if (msg_kind == wire_msg_kind<DataMsg>) return "DATA";
  if (msg_kind == wire_msg_kind<SeqMsg>) return "SEQ";
  if (msg_kind == wire_msg_kind<AckMsg>) return "ACK";
  if (msg_kind == wire_msg_kind<FlushReq>) return "FLUSH_REQ";
  if (msg_kind == wire_msg_kind<FlushState>) return "FLUSH_STATE";
  if (msg_kind == wire_msg_kind<ViewInstall>) return "VIEW_INSTALL";
  if (msg_kind == wire_msg_kind<CommitView>) return "COMMIT_VIEW";
  return "#" + std::to_string(msg_kind);
}

FaultTrigger random_trigger(Rng& rng, const FaultPlanConfig& cfg) {
  FaultTrigger t;
  switch (rng.below(8)) {
    case 0:
    case 1:
    case 2: {  // plain virtual-time trigger
      t.kind = FaultTrigger::Kind::kAtTime;
      t.at = static_cast<Time>(rng.below(static_cast<std::uint64_t>(cfg.horizon) + 1));
      break;
    }
    case 3:
    case 4:
    case 5: {  // Nth frame, optionally filtered by sender and message kind
      t.kind = FaultTrigger::Kind::kOnFrame;
      t.nth = 1 + rng.below(cfg.max_trigger_frames);
      if (rng.chance(0.5)) t.from = static_cast<NodeId>(rng.below(cfg.n));
      switch (rng.below(6)) {
        case 0: t.msg_kind = wire_msg_kind<DataMsg>; break;
        case 1: t.msg_kind = wire_msg_kind<SeqMsg>; break;
        case 2: t.msg_kind = wire_msg_kind<AckMsg>; break;
        case 3:  // mid-state-transfer: a flush blob is on the wire
          t.msg_kind = wire_msg_kind<FlushState>;
          t.nth = 1 + rng.below(4);
          break;
        default: break;  // any frame
      }
      // Filtered triggers match rarely; keep their counts reachable.
      if (t.msg_kind >= 0 && t.msg_kind != wire_msg_kind<DataMsg>) {
        t.nth = 1 + rng.below(30);
      }
      break;
    }
    default: {  // Nth view change
      t.kind = FaultTrigger::Kind::kOnViewChange;
      t.nth = 1 + rng.below(2);
      break;
    }
  }
  t.delay = static_cast<Time>(rng.below(2 * kMillisecond));
  return t;
}

}  // namespace

FaultPlan make_fault_plan(std::uint64_t seed, const FaultPlanConfig& cfg) {
  Rng rng(seed ^ 0xfa71bb0c4de5ed5ULL);
  FaultPlan plan;
  plan.seed = seed;
  if (cfg.max_events == 0 || cfg.n < 2) return plan;

  std::size_t n_events = rng.below(cfg.max_events + 1);
  std::set<NodeId> crash_targets;

  for (std::size_t i = 0; i < n_events; ++i) {
    FaultEvent ev;
    ev.trigger = random_trigger(rng, cfg);
    FaultAction& a = ev.action;

    // Pick an action kind allowed by the config; fall back to rotation
    // (always safe) when a draw is disallowed or the crash budget is spent.
    // The two NetProfile cases only enter the draw when opted in, so legacy
    // seeds keep generating byte-identical plans.
    switch (rng.below(cfg.allow_net_profiles ? 8 : 6)) {
      case 0:
      case 1: {  // crash (bounded by the budget, distinct targets)
        if (crash_targets.size() >= cfg.max_crashes) {
          if (!cfg.allow_rotation) continue;
          a.kind = FaultAction::Kind::kRotateLeader;
          break;
        }
        NodeId victim = static_cast<NodeId>(rng.below(cfg.n));
        while (crash_targets.count(victim) > 0) {
          victim = static_cast<NodeId>((victim + 1) % cfg.n);
        }
        crash_targets.insert(victim);
        a.node = victim;
        if (cfg.allow_silent_crashes && rng.chance(0.3)) {
          a.kind = FaultAction::Kind::kCrashSilent;
        } else {
          a.kind = FaultAction::Kind::kCrash;
          if (rng.chance(0.5)) {
            a.fd_delay = static_cast<Time>(
                rng.below(3 * kMillisecond) + 200 * kMicrosecond);
          }
        }
        break;
      }
      case 2: {  // transient partition, buffer-then-release
        if (!cfg.allow_partitions) continue;
        a.kind = FaultAction::Kind::kPartition;
        std::size_t side_size = (cfg.n >= 5 && rng.chance(0.3)) ? 2 : 1;
        std::set<NodeId> side;
        while (side.size() < side_size) {
          side.insert(static_cast<NodeId>(rng.below(cfg.n)));
        }
        a.side.assign(side.begin(), side.end());
        a.duration = static_cast<Time>(
            rng.below(static_cast<std::uint64_t>(cfg.max_link_disruption)) +
            300 * kMicrosecond);
        a.drop_on_heal = cfg.allow_sabotage && rng.chance(0.3);
        break;
      }
      case 3: {  // delay spike on one directed link
        if (!cfg.allow_link_delays) continue;
        a.kind = FaultAction::Kind::kLinkDelay;
        a.a = static_cast<NodeId>(rng.below(cfg.n));
        a.b = static_cast<NodeId>(rng.below(cfg.n));
        if (a.a == a.b) a.b = static_cast<NodeId>((a.b + 1) % cfg.n);
        a.amount = static_cast<Time>(rng.below(2 * kMillisecond) + 50 * kMicrosecond);
        a.duration = static_cast<Time>(
            rng.below(static_cast<std::uint64_t>(cfg.max_link_disruption)) +
            500 * kMicrosecond);
        break;
      }
      case 4: {  // bounded per-frame jitter on every link
        if (!cfg.allow_link_delays) continue;
        a.kind = FaultAction::Kind::kLinkJitter;
        a.amount = static_cast<Time>(rng.below(300 * kMicrosecond) + 10 * kMicrosecond);
        a.duration = static_cast<Time>(
            rng.below(static_cast<std::uint64_t>(cfg.max_link_disruption)) +
            500 * kMicrosecond);
        break;
      }
      case 6: {  // heterogeneous node hardware: slower NIC and/or CPU
        a.kind = FaultAction::Kind::kNodeProfile;
        a.node = static_cast<NodeId>(rng.below(cfg.n));
        static const double kSlowdowns[] = {2, 4, 8, 10};
        if (rng.chance(0.8)) {
          a.profile.bandwidth_bps =
              cfg.profile_base_bandwidth_bps / kSlowdowns[rng.below(4)];
        }
        static const double kCpuScales[] = {1, 2, 4};
        a.profile.cpu_scale = kCpuScales[rng.below(3)];
        a.duration = static_cast<Time>(
            rng.below(static_cast<std::uint64_t>(cfg.max_link_disruption)) +
            500 * kMicrosecond);
        break;
      }
      case 7: {  // lossy / jittery / long directed link
        a.kind = FaultAction::Kind::kLinkProfile;
        a.a = static_cast<NodeId>(rng.below(cfg.n));
        a.b = static_cast<NodeId>(rng.below(cfg.n));
        if (a.a == a.b) a.b = static_cast<NodeId>((a.b + 1) % cfg.n);
        // Loss surfaces as retransmission latency (TCP semantics), so the
        // reliable-channel assumption — and thus the oracle — still holds.
        a.profile.loss_rate = 0.0005 * static_cast<double>(1 + rng.below(40));
        a.profile.retransmit_delay =
            static_cast<Time>(rng.below(900 * kMicrosecond) + 100 * kMicrosecond);
        if (rng.chance(0.5)) {
          a.profile.jitter_max = static_cast<Time>(rng.below(200 * kMicrosecond));
        }
        if (rng.chance(0.5)) {
          a.profile.extra_latency = static_cast<Time>(rng.below(200 * kMicrosecond));
        }
        a.duration = static_cast<Time>(
            rng.below(static_cast<std::uint64_t>(cfg.max_link_disruption)) +
            500 * kMicrosecond);
        break;
      }
      default: {  // leader churn
        if (!cfg.allow_rotation) continue;
        a.kind = FaultAction::Kind::kRotateLeader;
        break;
      }
    }
    plan.events.push_back(std::move(ev));
  }
  return plan;
}

std::string describe(const FaultTrigger& t) {
  std::string out;
  switch (t.kind) {
    case FaultTrigger::Kind::kAtTime:
      out = "t=" + format_time(t.at);
      break;
    case FaultTrigger::Kind::kOnFrame:
      out = "frame#" + std::to_string(t.nth);
      if (t.from != kNoNode || t.msg_kind >= 0) {
        out += "(";
        if (t.from != kNoNode) out += "from=" + std::to_string(t.from);
        if (t.msg_kind >= 0) {
          if (t.from != kNoNode) out += ",";
          out += kind_name(t.msg_kind);
        }
        out += ")";
      }
      break;
    case FaultTrigger::Kind::kOnViewChange:
      out = "view#" + std::to_string(t.nth);
      break;
  }
  if (t.delay > 0) out += "+" + format_time(t.delay);
  return out;
}

std::string describe(const FaultAction& a) {
  switch (a.kind) {
    case FaultAction::Kind::kCrash:
      return "crash(" + std::to_string(a.node) + ",fd=" + format_time(a.fd_delay) + ")";
    case FaultAction::Kind::kCrashSilent:
      return "crash_silent(" + std::to_string(a.node) + ")";
    case FaultAction::Kind::kLinkDelay:
      return "delay(" + std::to_string(a.a) + "->" + std::to_string(a.b) + ",+" +
             format_time(a.amount) + "," + format_time(a.duration) + ")";
    case FaultAction::Kind::kLinkJitter:
      return "jitter(" + format_time(a.amount) + "," + format_time(a.duration) + ")";
    case FaultAction::Kind::kPartition: {
      std::string side;
      for (NodeId n : a.side) {
        if (!side.empty()) side += ",";
        side += std::to_string(n);
      }
      return "partition({" + side + "}," + (a.drop_on_heal ? "drop" : "buffer") + "," +
             format_time(a.duration) + ")";
    }
    case FaultAction::Kind::kDropFrames:
      return "drop(" + std::to_string(a.a) + "->" + std::to_string(a.b) + ",x" +
             std::to_string(a.count) + ")";
    case FaultAction::Kind::kRotateLeader:
      return "rotate";
    case FaultAction::Kind::kNodeProfile: {
      std::string out = "nic(node=" + std::to_string(a.node);
      if (a.profile.bandwidth_bps > 0) {
        out += ",bw=" + format_bandwidth(a.profile.bandwidth_bps);
      }
      if (a.profile.cpu_scale != 1.0) {
        out += ",cpu=x" + std::to_string(static_cast<long long>(a.profile.cpu_scale));
      }
      return out + "," + format_time(a.duration) + ")";
    }
    case FaultAction::Kind::kLinkProfile: {
      std::string out =
          "linkprof(" + std::to_string(a.a) + "->" + std::to_string(a.b);
      if (a.profile.loss_rate > 0) {
        out += ",loss=" + format_percent(a.profile.loss_rate) +
               ",rtx=" + format_time(a.profile.retransmit_delay);
      }
      if (a.profile.jitter_max > 0) out += ",jit=" + format_time(a.profile.jitter_max);
      if (a.profile.extra_latency > 0) {
        out += ",lat=" + format_time(a.profile.extra_latency);
      }
      return out + "," + format_time(a.duration) + ")";
    }
  }
  return "?";
}

std::string describe(const FaultEvent& ev) {
  return describe(ev.trigger) + " -> " + describe(ev.action);
}

std::string describe(const FaultPlan& plan) {
  std::string out = "seed=" + std::to_string(plan.seed) + " events=[";
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    if (i > 0) out += "; ";
    out += describe(plan.events[i]);
  }
  out += "]";
  return out;
}

}  // namespace fsr
