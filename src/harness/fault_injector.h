// Applies a FaultPlan to a live SimCluster: arms time triggers on the
// simulator, watches the network's frame tap for frame-count triggers and
// the cluster's view tap for view-change triggers, and translates actions
// into ClusterNet / SimWorld fault primitives. Actions always apply via a
// zero-delay simulator event, never from inside the tap callback (the
// network is mid-frame there). Also wires itself into the cluster's
// InvariantChecker as the provenance context, so the first violation of a
// run is tagged with the last fault applied and the virtual time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/fault_plan.h"
#include "harness/sim_cluster.h"

namespace fsr {

class FaultInjector {
 public:
  /// Claims the cluster's frame tap, view tap and checker context. Call
  /// arm() once before running the simulation.
  FaultInjector(SimCluster& cluster, FaultPlan plan);

  void arm();

  /// Number of actions applied so far and a description of the last one
  /// ("" if none) — this is what tags checker violations.
  std::size_t applied() const { return applied_; }
  const std::string& last_applied() const { return last_applied_; }

  const FaultPlan& plan() const { return plan_; }

 private:
  void on_frame(const Frame& frame);
  void on_view(const View& view);
  void fire(std::size_t index);
  void apply(std::size_t index);

  SimCluster& cluster_;
  FaultPlan plan_;

  struct EventState {
    bool fired = false;
    std::uint64_t matches = 0;  // frames / view changes seen so far
  };
  std::vector<EventState> state_;
  ViewId max_view_seen_ = 0;
  std::uint64_t view_changes_ = 0;
  bool armed_ = false;

  std::size_t applied_ = 0;
  std::string last_applied_;
};

}  // namespace fsr
