#include "harness/chaos.h"

#include <algorithm>
#include <memory>
#include <set>

#include "app/kv_store.h"
#include "common/rng.h"
#include "harness/fault_injector.h"
#include "proto/client_codec.h"

namespace fsr {

namespace {

std::string format_time(Time t) {
  if (t % kMillisecond == 0) return std::to_string(t / kMillisecond) + "ms";
  if (t % kMicrosecond == 0) return std::to_string(t / kMicrosecond) + "us";
  return std::to_string(t) + "ns";
}

// Chained-CAS workload: seq 1 is PUT(key, v_1) (KvStore CAS fails on a
// missing key), seq k>1 is CAS(key, v_{k-1}, v_k). The command for any
// (client, seq) is reconstructible — floods replay byte-identical requests
// — and a double execution either fails a later CAS in the chain
// (failed_cas > 0) or, when it lands after the chain's end, leaves the key
// at the wrong final value; the oracle checks both.
std::string chain_value(std::uint64_t k, std::size_t pad) {
  std::string v = "v" + std::to_string(k);
  if (v.size() < pad) v.resize(pad, '.');
  return v;
}

std::string client_key(std::size_t slot) { return "chaos/c" + std::to_string(slot); }
std::string loris_key(std::size_t slot) { return "chaos/loris" + std::to_string(slot); }

Bytes chain_command(const std::string& key, std::uint64_t seq, std::size_t pad) {
  if (seq <= 1) return KvStore::encode_put(key, chain_value(1, pad));
  return KvStore::encode_cas(key, chain_value(seq - 1, pad), chain_value(seq, pad));
}

ClientRequest make_request(std::uint64_t client_id, std::uint64_t seq,
                           const Bytes& command) {
  ClientRequest req;
  req.client_id = client_id;
  req.session_seq = seq;
  req.envelope = make_payload(encode_envelope(client_id, seq, command));
  req.command = parse_envelope(req.envelope)->command;
  return req;
}

constexpr std::uint64_t kLorisClientBase = 0x1000;

}  // namespace

const char* chaos_shape_name(ChaosShape s) {
  switch (s) {
    case ChaosShape::kSlowLoris: return "slow_loris";
    case ChaosShape::kReconnectStorm: return "reconnect_storm";
    case ChaosShape::kDuplicateFlood: return "duplicate_flood";
  }
  return "?";
}

ChaosRunner::ChaosRunner(ChaosConfig config) : cfg_(std::move(config)) {
  cfg_.faults.n = cfg_.gateway.cluster.n;
  if (cfg_.clients == 0) cfg_.clients = 1;
  if (cfg_.max_chaos_events == 0) cfg_.max_chaos_events = 1;
}

ChaosPlan make_chaos_plan(std::uint64_t seed, const ChaosConfig& cfg) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.shape = cfg.shape;
  FaultPlanConfig fcfg = cfg.faults;
  fcfg.n = cfg.gateway.cluster.n;
  plan.faults = make_fault_plan(seed ^ 0x8c8f3a2b19eULL, fcfg);

  Rng rng(seed ^ 0x51c3d9a77b5ULL);
  const std::size_t n = cfg.gateway.cluster.n;
  const std::size_t n_events = 1 + rng.below(cfg.max_chaos_events);
  for (std::size_t i = 0; i < n_events; ++i) {
    ChaosEvent ev;
    ev.at = static_cast<Time>(
        rng.below(static_cast<std::uint64_t>(cfg.submit_horizon) * 3 / 2 + 1));
    ev.client = rng.below(std::max<std::size_t>(cfg.clients, 1));
    ev.replica = static_cast<NodeId>(rng.below(n));
    switch (cfg.shape) {
      case ChaosShape::kReconnectStorm:
        ev.kind = ChaosEvent::Kind::kReconnect;
        break;
      case ChaosShape::kDuplicateFlood:
        ev.kind = ChaosEvent::Kind::kFloodDuplicates;
        ev.count = static_cast<std::uint32_t>(8 + rng.below(56));
        break;
      case ChaosShape::kSlowLoris:
        ev.kind = ChaosEvent::Kind::kLorisBurst;
        // Sized to overflow the window and sometimes the queue behind it,
        // so bursts draw rejections, not just queueing.
        ev.count = static_cast<std::uint32_t>(
            cfg.gateway.gateway.session_window +
            cfg.gateway.gateway.session_queue / 2 +
            rng.below(cfg.gateway.gateway.session_queue + 8));
        break;
    }
    plan.client_events.push_back(ev);
  }
  return plan;
}

std::string describe(const ChaosEvent& ev) {
  switch (ev.kind) {
    case ChaosEvent::Kind::kReconnect:
      return "reconnect(c" + std::to_string(ev.client) + "->r" +
             std::to_string(ev.replica) + ",t=" + format_time(ev.at) + ")";
    case ChaosEvent::Kind::kFloodDuplicates:
      return "flood(c" + std::to_string(ev.client) + ",r" + std::to_string(ev.replica) +
             ",x" + std::to_string(ev.count) + ",t=" + format_time(ev.at) + ")";
    case ChaosEvent::Kind::kLorisBurst:
      return "loris(c" + std::to_string(ev.client) + ",x" + std::to_string(ev.count) +
             ",t=" + format_time(ev.at) + ")";
  }
  return "?";
}

std::string describe(const ChaosPlan& plan) {
  std::string out = "shape=";
  out += chaos_shape_name(plan.shape);
  out += " events=[";
  for (std::size_t i = 0; i < plan.client_events.size(); ++i) {
    if (i > 0) out += "; ";
    out += describe(plan.client_events[i]);
  }
  out += "]";
  if (plan.sabotage_double_execute) out += " sabotage=double_execute";
  out += " faults{" + describe(plan.faults) + "}";
  return out;
}

ChaosResult ChaosRunner::run_seed(std::uint64_t seed) const {
  return run_plan(seed, make_chaos_plan(seed, cfg_));
}

ChaosResult ChaosRunner::run_plan(std::uint64_t seed, const ChaosPlan& plan) const {
  ChaosResult result;
  result.seed = seed;
  result.plan = plan;

  SimGatewayCluster gc(cfg_.gateway);
  SimCluster& cluster = gc.cluster();
  FaultInjector injector(cluster, plan.faults);
  injector.arm();

  const std::size_t n = gc.size();

  // Well-behaved closed-loop clients: chained CAS on a private key each.
  std::vector<std::unique_ptr<SimClient>> clients;
  clients.reserve(cfg_.clients);
  for (std::size_t c = 0; c < cfg_.clients; ++c) {
    SimClient::Options o;
    o.client_id = 1 + c;
    o.replica = static_cast<NodeId>(c % n);
    o.retry_timeout = cfg_.client_retry;
    o.max_attempts = cfg_.client_max_attempts;
    clients.push_back(std::make_unique<SimClient>(gc, o));
  }

  // Seeded submissions: per-client times sorted so the chain is submitted
  // in seq order. Independent of the fault/chaos streams, so shrinking a
  // plan never perturbs the traffic it shrinks against.
  Rng rng(seed ^ 0x3c6ef372fe94fULL);
  for (std::size_t c = 0; c < cfg_.clients; ++c) {
    std::vector<Time> at;
    for (int k = 0; k < cfg_.commands_per_client; ++k) {
      at.push_back(static_cast<Time>(
          rng.below(static_cast<std::uint64_t>(cfg_.submit_horizon))));
    }
    std::sort(at.begin(), at.end());
    for (int k = 1; k <= cfg_.commands_per_client; ++k) {
      Bytes cmd = chain_command(client_key(c), static_cast<std::uint64_t>(k), 0);
      cluster.sim().schedule_at(at[static_cast<std::size_t>(k - 1)],
                                [&clients, c, cmd] { clients[c]->submit(cmd); });
    }
  }

  // Slow-loris sessions: a sliding-window writer that re-sends from its
  // lowest unacknowledged seq, so bursts overlap (duplicates of admitted
  // seqs) and rejected seqs are retried by the next burst — contiguous
  // seqs, no fabricated gaps, exactly the backpressure path under test.
  // Each loris holds ONE connection for its whole life (that is the
  // attack); a cross-replica burst would instead trip the gateway's
  // fabricated-seq check on a partition-stale replica.
  struct Loris {
    std::uint64_t base = 1;          // lowest seq not yet acknowledged kOk
    std::set<std::uint64_t> acked;   // out-of-order acks above base
    NodeId replica = kNoNode;        // pinned on first burst
  };
  std::vector<Loris> loris(cfg_.clients);

  auto run_loris = [&](std::size_t slot, std::uint32_t count, NodeId hint) {
    Loris& ls = loris[slot];
    if (ls.replica == kNoNode) {
      ls.replica = gc.alive(hint) ? hint : gc.pick_alive();
    }
    NodeId r = ls.replica;
    if (r == kNoNode || !gc.alive(r)) return;  // its connection died with it
    const std::uint64_t cid = kLorisClientBase + slot;
    Gateway& gw = gc.gateway(r);
    ThreadRoleRegion role(gw.role());
    const std::uint64_t start = ls.base;
    for (std::uint32_t j = 0; j < count; ++j) {
      const std::uint64_t seq = start + j;
      ClientRequest req = make_request(
          cid, seq, chain_command(loris_key(slot), seq, cfg_.loris_value_bytes));
      gw.on_request(req,
                    [&ls](const ClientReply& rep) {
                      if (rep.status != ClientStatus::kOk) return;
                      ls.acked.insert(rep.session_seq);
                      while (ls.acked.count(ls.base) > 0) {
                        ls.acked.erase(ls.base);
                        ++ls.base;
                      }
                    },
                    /*conn_serial=*/1);
    }
  };

  // Duplicate flood: replay byte-identical copies of the client's executed
  // requests (reconstructed from the chain) at some replica. A null reply
  // channel means the flood never steals the real client's binding; the
  // session table alone must keep execution exactly-once.
  auto run_flood = [&](std::size_t slot, std::uint32_t count, NodeId hint) {
    NodeId r = gc.alive(hint) ? hint : gc.pick_alive();
    if (r == kNoNode) return;
    const std::uint64_t cid = 1 + slot;
    Gateway& gw = gc.gateway(r);
    ThreadRoleRegion role(gw.role());
    const std::uint64_t le = gw.last_executed(cid);
    for (std::uint32_t j = 0; j < count; ++j) {
      const std::uint64_t seq = le > 0 ? 1 + (j % le) : 1;
      ClientRequest req =
          make_request(cid, seq, chain_command(client_key(slot), seq, 0));
      gw.on_request(req, Gateway::SendReplyFn{}, /*conn_serial=*/0);
    }
  };

  auto run_reconnect = [&](std::size_t slot, NodeId hint) {
    NodeId r = gc.alive(hint) ? hint : gc.pick_alive();
    if (r == kNoNode) return;
    clients[slot]->connect(r);
  };

  for (const ChaosEvent& ev : plan.client_events) {
    cluster.sim().schedule_at(ev.at, [&, ev] {
      switch (ev.kind) {
        case ChaosEvent::Kind::kReconnect: run_reconnect(ev.client, ev.replica); break;
        case ChaosEvent::Kind::kFloodDuplicates:
          run_flood(ev.client, ev.count, ev.replica);
          break;
        case ChaosEvent::Kind::kLorisBurst:
          run_loris(ev.client, ev.count, ev.replica);
          break;
      }
    });
  }

  // Planted exactly-once violation for the self-tests: client 0's first
  // command re-broadcast as a *plain* payload skips the session table and
  // applies a second time. Whichever copy executes second loses its CAS,
  // so the oracle fires regardless of delivery order.
  if (plan.sabotage_double_execute) {
    cluster.sim().schedule_at(cfg_.submit_horizon / 2, [&] {
      NodeId origin = gc.pick_alive();
      if (origin == kNoNode) return;
      cluster.broadcast(origin, make_payload(chain_command(client_key(0), 1, 0)));
    });
  }

  // Memory-bound probe: sampled *during* the run — a transient budget
  // overshoot that drains by quiescence is still a violation.
  std::string mem_violation;
  const std::size_t budget = cfg_.gateway.gateway.admitted_bytes_budget;
  const std::size_t cache_per_session = cfg_.gateway.gateway.reply_cache;
  std::size_t max_admitted = 0;
  std::size_t max_cache = 0;
  auto probe = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      auto id = static_cast<NodeId>(i);
      if (!gc.alive(id)) continue;
      Gateway& gw = gc.gateway(id);
      ThreadRoleRegion role(gw.role());
      const std::size_t ab = gw.admitted_bytes();
      const std::size_t rc = gw.reply_cache_entries();
      const std::size_t cache_limit = gw.sessions() * cache_per_session;
      max_admitted = std::max(max_admitted, ab);
      max_cache = std::max(max_cache, rc);
      if (mem_violation.empty() && ab > budget) {
        mem_violation = "admission memory unbounded: node " + std::to_string(id) +
                        " admitted_bytes " + std::to_string(ab) + " > budget " +
                        std::to_string(budget);
      }
      if (mem_violation.empty() && rc > cache_limit) {
        mem_violation = "reply cache unbounded: node " + std::to_string(id) + " holds " +
                        std::to_string(rc) + " entries > " +
                        std::to_string(gw.sessions()) + " sessions * " +
                        std::to_string(cache_per_session);
      }
    }
  };
  if (cfg_.probe_interval > 0) {
    const Time probe_end = 2 * cfg_.submit_horizon;
    for (Time t = 0; t <= probe_end; t += cfg_.probe_interval) {
      cluster.sim().schedule_at(t, probe);
    }
  }

  // Heartbeat / rotation timers re-arm forever; those configurations run to
  // a horizon instead of natural quiescence (mirrors SwarmRunner).
  const bool drains = cfg_.gateway.cluster.group.heartbeat_interval == 0 &&
                      cfg_.gateway.cluster.group.rotation_interval == 0;
  Simulator& sim = cluster.sim();
  const std::uint64_t before = sim.executed();
  if (drains) {
    while (!sim.empty() && sim.executed() - before < cfg_.max_events) {
      sim.run_steps(16384);
    }
    if (!sim.empty()) {
      result.ok = false;
      result.violation = "did not quiesce within " + std::to_string(cfg_.max_events) +
                         " events (runaway schedule)";
    }
  } else {
    sim.run_until_capped(cfg_.run_horizon, cfg_.max_events);
    if (sim.executed() - before >= cfg_.max_events) {
      result.ok = false;
      result.violation = "event budget exhausted before run horizon";
    }
  }
  result.events_executed = sim.executed() - before;
  probe();  // end-state bounds too
  result.max_admitted_bytes = max_admitted;
  result.max_reply_cache_entries = max_cache;
  result.counters = gc.gateway_counters();
  for (std::size_t c = 0; c < cfg_.clients; ++c) {
    result.commands_completed += clients[c]->completed().size();
  }
  if (!result.ok) return result;

  // Oracle, broadest property first: broadcast invariants, then replica
  // convergence, then exactly-once, then client liveness, then memory.
  std::string violation = cluster.check_all();

  if (violation.empty()) violation = gc.check_replicas_converged();

  if (violation.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      auto id = static_cast<NodeId>(i);
      if (!gc.alive(id)) continue;
      if (gc.store(id).failed_cas() > 0) {
        violation = "exactly-once violated: node " + std::to_string(id) +
                    " failed_cas=" + std::to_string(gc.store(id).failed_cas());
        break;
      }
    }
  }

  if (violation.empty()) {
    for (std::size_t c = 0; c < cfg_.clients && violation.empty(); ++c) {
      const SimClient& cl = *clients[c];
      if (cl.gave_up() > 0) {
        violation = "liveness: client " + std::to_string(c) + " gave up after " +
                    std::to_string(cfg_.client_max_attempts) + " attempts";
        break;
      }
      if (cl.completed().size() != static_cast<std::size_t>(cfg_.commands_per_client)) {
        violation = "liveness: client " + std::to_string(c) + " completed " +
                    std::to_string(cl.completed().size()) + "/" +
                    std::to_string(cfg_.commands_per_client) + " commands";
        break;
      }
      for (const SimClient::Done& d : cl.completed()) {
        if (d.status != ClientStatus::kOk) {
          violation = "client " + std::to_string(c) + " seq " + std::to_string(d.seq) +
                      " finished with status " +
                      client_status_name(d.status);
          break;
        }
        const std::string reply(d.reply.begin(), d.reply.end());
        if (reply != "OK") {
          violation = "exactly-once violated: client " + std::to_string(c) +
                      " seq " + std::to_string(d.seq) + " CAS reply '" + reply + "'";
          break;
        }
      }
    }
  }

  // Final-state check: a completed chain must leave its key at v_last on
  // every live replica. Catches a double-applied PUT landing *after* the
  // chain's last CAS, which failed_cas alone cannot see.
  if (violation.empty()) {
    const std::string want = chain_value(
        static_cast<std::uint64_t>(cfg_.commands_per_client), 0);
    for (std::size_t c = 0; c < cfg_.clients && violation.empty(); ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        auto id = static_cast<NodeId>(i);
        if (!gc.alive(id)) continue;
        auto got = gc.store(id).get(client_key(c));
        if (!got || *got != want) {
          violation = "exactly-once violated: node " + std::to_string(id) + " key " +
                      client_key(c) + " ended at '" + (got ? *got : "<absent>") +
                      "' expected '" + want + "'";
          break;
        }
      }
    }
  }

  if (violation.empty()) violation = mem_violation;

  if (!violation.empty()) {
    result.ok = false;
    result.violation = violation;
    if (injector.applied() > 0) {
      result.violation += " (last fault applied: " + injector.last_applied() + ")";
    }
  }
  return result;
}

ChaosPlan ChaosRunner::shrink(std::uint64_t seed, const ChaosPlan& plan) const {
  ChaosPlan current = plan;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < current.faults.events.size(); ++i) {
      ChaosPlan candidate = current;
      candidate.faults.events.erase(candidate.faults.events.begin() +
                                    static_cast<long>(i));
      if (!run_plan(seed, candidate).ok) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (std::size_t i = 0; i < current.client_events.size(); ++i) {
      ChaosPlan candidate = current;
      candidate.client_events.erase(candidate.client_events.begin() +
                                    static_cast<long>(i));
      if (!run_plan(seed, candidate).ok) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return current;
}

std::vector<ChaosFailure> ChaosRunner::run_range(
    std::uint64_t first, std::uint64_t count,
    const std::function<void(const ChaosFailure&)>& on_failure) const {
  std::vector<ChaosFailure> failures;
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    ChaosResult result = run_seed(seed);
    if (result.ok) continue;
    ChaosFailure failure;
    failure.minimized = shrink(seed, result.plan);
    failure.repro = format_repro(result, failure.minimized);
    failure.result = std::move(result);
    if (on_failure) on_failure(failure);
    failures.push_back(std::move(failure));
  }
  return failures;
}

std::string ChaosRunner::format_repro(const ChaosResult& result,
                                      const ChaosPlan& minimized) const {
  return "chaos repro: config=" + cfg_.name + " seed=" + std::to_string(result.seed) +
         " plan{" + describe(minimized) + "} violation{" + result.violation + "}";
}

}  // namespace fsr
