#include "harness/swarm.h"

#include <algorithm>
#include <memory>

#include "common/rng.h"

namespace fsr {

SwarmRunner::SwarmRunner(SwarmConfig config) : cfg_(std::move(config)) {
  cfg_.faults.n = cfg_.cluster.n;
  if (cfg_.senders == 0 || cfg_.senders > cfg_.cluster.n) cfg_.senders = cfg_.cluster.n;
}

SwarmResult SwarmRunner::run_seed(std::uint64_t seed) const {
  return run_plan(seed, make_fault_plan(seed, cfg_.faults));
}

SwarmResult SwarmRunner::run_plan(std::uint64_t seed, const FaultPlan& plan) const {
  SwarmResult result;
  result.seed = seed;
  result.plan = plan;

  SimCluster cluster(cfg_.cluster);
  FaultInjector injector(cluster, plan);
  injector.arm();

  // Seeded workload, independent of the fault stream so shrinking a plan
  // never perturbs the traffic it is shrinking against.
  Rng rng(seed ^ 0x77aff1c5eedULL);
  std::vector<int> submitted(cfg_.cluster.n, 0);
  for (int i = 0; i < cfg_.messages; ++i) {
    auto sender = static_cast<NodeId>(rng.below(cfg_.senders));
    std::size_t size =
        cfg_.min_payload + rng.below(cfg_.max_payload - cfg_.min_payload + 1);
    Time at = static_cast<Time>(rng.below(static_cast<std::uint64_t>(cfg_.submit_horizon)));
    cluster.sim().schedule_at(at, [&cluster, &submitted, sender, size] {
      if (!cluster.alive(sender)) return;
      ++submitted[sender];
      cluster.broadcast(
          sender, test_payload(sender, static_cast<std::uint64_t>(submitted[sender]), size));
    });
  }

  // Heartbeat / rotation timers re-arm forever, so those configurations
  // run to a generous horizon instead of natural quiescence.
  const bool drains = cfg_.cluster.group.heartbeat_interval == 0 &&
                      cfg_.cluster.group.rotation_interval == 0;
  Simulator& sim = cluster.sim();
  std::uint64_t before = sim.executed();
  if (drains) {
    while (!sim.empty() && sim.executed() - before < cfg_.max_events) {
      sim.run_steps(16384);
    }
    if (!sim.empty()) {
      result.ok = false;
      result.violation = "did not quiesce within " + std::to_string(cfg_.max_events) +
                         " events (runaway schedule)";
    }
  } else {
    sim.run_until_capped(cfg_.run_horizon, cfg_.max_events);
    if (sim.executed() - before >= cfg_.max_events) {
      result.ok = false;
      result.violation = "event budget exhausted before run horizon";
    }
  }
  result.events_executed = sim.executed() - before;
  result.deliveries = cluster.checker().deliveries();
  if (!result.ok) return result;

  // Safety: every paper property, online findings included.
  std::string violation = cluster.check_all();

  // Liveness: submissions from end-alive senders reach every end-alive node.
  if (violation.empty() && cfg_.check_liveness) {
    for (NodeId node = 0; node < cluster.size() && violation.empty(); ++node) {
      if (!cluster.alive(node)) continue;
      std::vector<int> got(cfg_.cluster.n, 0);
      for (const auto& e : cluster.log(node)) ++got[e.origin];
      for (NodeId origin = 0; origin < cluster.size(); ++origin) {
        if (!cluster.alive(origin)) continue;
        if (got[origin] != submitted[origin]) {
          violation = "liveness: node " + std::to_string(node) + " delivered " +
                      std::to_string(got[origin]) + "/" +
                      std::to_string(submitted[origin]) +
                      " messages from live origin " + std::to_string(origin);
          break;
        }
      }
    }
  }

  // Trace lint on a surviving node's log (bounds are opt-in via cfg_.lint).
  if (violation.empty()) {
    for (NodeId node = 0; node < cluster.size(); ++node) {
      if (!cluster.alive(node)) continue;
      LintReport lint = lint_trace(cluster.checker().log(node), cfg_.lint);
      if (!lint.ok()) violation = "trace lint: " + lint.violations.front();
      break;
    }
  }

  if (!violation.empty()) {
    result.ok = false;
    result.violation = violation;
    if (injector.applied() > 0) {
      result.violation += " (last fault applied: " + injector.last_applied() + ")";
    }
  }
  return result;
}

FaultPlan SwarmRunner::shrink(std::uint64_t seed, const FaultPlan& plan) const {
  FaultPlan current = plan;
  bool progress = true;
  while (progress && !current.events.empty()) {
    progress = false;
    for (std::size_t i = 0; i < current.events.size(); ++i) {
      FaultPlan candidate = current;
      candidate.events.erase(candidate.events.begin() + static_cast<long>(i));
      if (!run_plan(seed, candidate).ok) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return current;
}

std::vector<SwarmFailure> SwarmRunner::run_range(
    std::uint64_t first, std::uint64_t count,
    const std::function<void(const SwarmFailure&)>& on_failure) const {
  std::vector<SwarmFailure> failures;
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    SwarmResult result = run_seed(seed);
    if (result.ok) continue;
    SwarmFailure failure;
    failure.minimized = shrink(seed, result.plan);
    failure.repro = format_repro(result, failure.minimized);
    failure.result = std::move(result);
    if (on_failure) on_failure(failure);
    failures.push_back(std::move(failure));
  }
  return failures;
}

std::string SwarmRunner::format_repro(const SwarmResult& result,
                                      const FaultPlan& minimized) const {
  return "swarm repro: config=" + cfg_.name + " seed=" + std::to_string(result.seed) +
         " plan{" + describe(minimized) + "} violation{" + result.violation + "}";
}

}  // namespace fsr
