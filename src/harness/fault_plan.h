// Deterministic fault scripts for the simulated cluster. A FaultPlan is a
// list of (trigger, action) pairs: triggers fire on virtual time, on the
// Nth matching frame entering the network, or on the Nth view change —
// *protocol* points rather than wall-clock guesses, so a plan aims faults
// at narrow schedule windows (mid-state-transfer, right after a view
// change) reproducibly. Plans are plain data: they can be generated from a
// seed (make_fault_plan), shrunk event-by-event (SwarmRunner), and printed
// as a one-line repro (describe).
//
// Fault catalogue vs the paper's model (§3):
//   * crash / crash_silent  — crash-stop processes, the paper's only fault
//     class; `fd_delay` varies when within the detection window the perfect
//     failure detector reports (never a false suspicion).
//   * link delay / jitter / buffering partition — reliable FIFO channels
//     with adversarial timing: frames are delayed or held and released,
//     never lost or reordered within a link. Safety AND liveness must
//     survive these.
//   * node / link NetProfile — heterogeneous hardware: a slower NIC or CPU
//     on one node, seeded loss (surfacing as retransmission latency, TCP
//     semantics) or jitter on one directed link. Still within the model:
//     channels stay reliable FIFO, so safety AND liveness must survive.
//   * drop-mode partition / frame drops — violate the reliable-channel
//     assumption on purpose (generated only when `allow_sabotage`): the
//     harness's own tests use them to prove the oracle catches violations.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"
#include "net/cluster_net.h"
#include "proto/wire.h"

namespace fsr {

namespace detail {
template <class T, class... Ts>
constexpr int index_in(const std::variant<Ts...>*) {
  int i = 0;
  int found = -1;
  ((std::is_same_v<T, Ts> ? (found = i, ++i) : ++i), ...);
  return found;
}
}  // namespace detail

/// Variant index of message type M inside WireMsg, for frame-kind trigger
/// filters (e.g. wire_msg_kind<FlushState> = "mid-state-transfer").
template <class M>
inline constexpr int wire_msg_kind = detail::index_in<M>(static_cast<const WireMsg*>(nullptr));

/// When a fault fires.
struct FaultTrigger {
  enum class Kind : std::uint8_t {
    kAtTime,        // at virtual time `at`
    kOnFrame,       // when the Nth frame matching (from, msg_kind) is sent
    kOnViewChange,  // when the Nth view change is first observed
  };
  Kind kind = Kind::kAtTime;
  Time at = 0;            // kAtTime
  std::uint64_t nth = 1;  // kOnFrame / kOnViewChange, 1-based
  NodeId from = kNoNode;  // kOnFrame filter: sending node (kNoNode = any)
  int msg_kind = -1;      // kOnFrame filter: WireMsg variant index (-1 = any)
  Time delay = 0;         // virtual time between trigger and action
};

/// What happens when the trigger fires.
struct FaultAction {
  enum class Kind : std::uint8_t {
    kCrash,         // crash-stop, perfect-FD notification after fd_delay
    kCrashSilent,   // crash with no FD notification (models a hang)
    kLinkDelay,     // add `amount` one-way latency on a->b for `duration`
    kLinkJitter,    // per-frame extra latency in [0, amount] on all links
    kPartition,     // cut `side` from the rest (both directions)
    kDropFrames,    // drop next `count` frames on a->b (sabotage)
    kRotateLeader,  // ask the coordinator to rotate the leader role
    kNodeProfile,   // heterogeneous NIC/CPU on `node` for `duration`
    kLinkProfile,   // loss/jitter/latency profile on a->b for `duration`
  };
  Kind kind = Kind::kCrash;
  NodeId node = kNoNode;            // kCrash / kCrashSilent / kNodeProfile target
  Time fd_delay = -1;               // kCrash: detection delay (-1 = default)
  NodeId a = kNoNode, b = kNoNode;  // link endpoints
  Time amount = 0;                  // kLinkDelay / kLinkJitter
  Time duration = 0;                // kLinkDelay/kLinkJitter/kPartition/k*Profile
  bool drop_on_heal = false;        // kPartition: drop instead of buffering
  std::vector<NodeId> side;         // kPartition: one side of the cut
  std::uint32_t count = 1;          // kDropFrames
  NetProfile profile;               // kNodeProfile / kLinkProfile payload
};

struct FaultEvent {
  FaultTrigger trigger;
  FaultAction action;
};

/// A deterministic fault script for one simulated run.
struct FaultPlan {
  std::uint64_t seed = 0;  // seed that generated it (0 = hand-written)
  std::vector<FaultEvent> events;
};

/// Knobs for seeded plan generation. Defaults generate only faults that
/// respect the paper's assumptions (crash-stop within the crash budget,
/// reliable FIFO channels, perfect FD) so every generated plan must run
/// violation-free.
struct FaultPlanConfig {
  std::size_t n = 4;               // cluster size (targets drawn from 0..n-1)
  std::uint32_t max_crashes = 1;   // keep <= t to stay within the model
  std::size_t max_events = 6;      // faults per plan (plans may be empty)
  Time horizon = 40 * kMillisecond;        // time triggers fall in [0, horizon]
  std::uint64_t max_trigger_frames = 300;  // frame triggers fire by this count
  bool allow_silent_crashes = false;  // sound only with heartbeats enabled
  bool allow_partitions = true;
  bool allow_link_delays = true;
  bool allow_rotation = true;
  bool allow_sabotage = false;  // frame drops: violates reliable channels
  Time max_link_disruption = 5 * kMillisecond;  // cap on delays / cut spans
  // Heterogeneous-hardware generation (kNodeProfile / kLinkProfile). Off by
  // default: enabling it changes the generator's draw sequence, which would
  // silently re-map every existing seed to a different plan.
  bool allow_net_profiles = false;
  double profile_base_bandwidth_bps = 100e6;  // slow-NIC rates derive from this
};

/// Generate a random plan from `seed`. Same seed + config => same plan.
FaultPlan make_fault_plan(std::uint64_t seed, const FaultPlanConfig& cfg);

std::string describe(const FaultTrigger& trigger);
std::string describe(const FaultAction& action);
std::string describe(const FaultEvent& event);

/// One-line rendering of the whole plan — the repro format printed when a
/// swarm run fails.
std::string describe(const FaultPlan& plan);

}  // namespace fsr
