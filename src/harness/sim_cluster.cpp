#include "harness/sim_cluster.h"

#include <algorithm>

namespace fsr {

std::uint64_t hash_bytes(const Bytes& b) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t c : b) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

Bytes test_payload(NodeId origin, std::uint64_t app_msg, std::size_t size) {
  Bytes b(size);
  std::uint64_t x = (std::uint64_t{origin} << 32) ^ app_msg ^ 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < size; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b[i] = static_cast<std::uint8_t>(x);
  }
  return b;
}

SimCluster::SimCluster(ClusterConfig config)
    : cfg_(config), world_(config.net, config.n, config.fd_delay), logs_(config.n) {
  View initial;
  initial.id = 1;
  std::size_t members_n =
      config.initial_members == 0 ? config.n : config.initial_members;
  for (std::size_t i = 0; i < members_n; ++i) {
    initial.members.push_back(static_cast<NodeId>(i));
  }
  members_.reserve(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    auto id = static_cast<NodeId>(i);
    members_.push_back(std::make_unique<GroupMember>(
        world_.transport(id), config.group, initial,
        [this, id](const Delivery& d) {
          logs_[id].push_back(LogEntry{d.origin, d.app_msg, d.seq, d.view,
                                       d.payload.size(), world_.sim().now(),
                                       hash_bytes(d.payload)});
          if (tap_) tap_(id, d);
        }));
  }
}

void SimCluster::broadcast(NodeId from, Bytes payload) {
  // The engine numbers own app messages 1, 2, ...; mirror that here.
  std::uint64_t app_msg = ++next_app_counter_[from];
  submit_times_[{from, app_msg}] = world_.sim().now();
  submit_hashes_[{from, app_msg}] = hash_bytes(payload);
  members_[from]->broadcast(std::move(payload));
}

void SimCluster::crash(NodeId node) {
  crashed_.insert(node);
  world_.crash(node);
}

void SimCluster::crash_silent(NodeId node) {
  crashed_.insert(node);
  world_.crash_silent(node);
}

Time SimCluster::submit_time(NodeId origin, std::uint64_t app_msg) const {
  auto it = submit_times_.find({origin, app_msg});
  return it == submit_times_.end() ? -1 : it->second;
}

Time SimCluster::completion_time(NodeId origin, std::uint64_t app_msg) const {
  Time worst = -1;
  for (std::size_t i = 0; i < logs_.size(); ++i) {
    if (crashed_.count(static_cast<NodeId>(i))) continue;
    const auto& log = logs_[i];
    auto it = std::find_if(log.begin(), log.end(), [&](const LogEntry& e) {
      return e.origin == origin && e.app_msg == app_msg;
    });
    if (it == log.end()) return -1;
    worst = std::max(worst, it->at);
  }
  return worst;
}

namespace {

std::string describe(const SimCluster::LogEntry& e) {
  return "m(" + std::to_string(e.origin) + "," + std::to_string(e.app_msg) + ")";
}

}  // namespace

std::string SimCluster::check_total_order() const {
  // Pairwise: the common subsequence of two logs must appear in the same
  // order in both. Since each (origin, app_msg) appears at most once per log
  // (checked by integrity), it suffices to compare the restriction of each
  // log to the other's delivered set.
  for (std::size_t a = 0; a < logs_.size(); ++a) {
    for (std::size_t b = a + 1; b < logs_.size(); ++b) {
      std::set<std::pair<NodeId, std::uint64_t>> in_b;
      for (const auto& e : logs_[b]) in_b.insert({e.origin, e.app_msg});
      std::vector<std::pair<NodeId, std::uint64_t>> ra;
      for (const auto& e : logs_[a]) {
        if (in_b.count({e.origin, e.app_msg})) ra.push_back({e.origin, e.app_msg});
      }
      std::set<std::pair<NodeId, std::uint64_t>> in_a;
      for (const auto& e : logs_[a]) in_a.insert({e.origin, e.app_msg});
      std::vector<std::pair<NodeId, std::uint64_t>> rb;
      for (const auto& e : logs_[b]) {
        if (in_a.count({e.origin, e.app_msg})) rb.push_back({e.origin, e.app_msg});
      }
      if (ra != rb) {
        return "total order violated between node " + std::to_string(a) + " and node " +
               std::to_string(b);
      }
    }
  }
  return {};
}

std::string SimCluster::check_agreement(const std::set<NodeId>& correct) const {
  const std::vector<LogEntry>* ref = nullptr;
  NodeId ref_id = kNoNode;
  for (NodeId n : correct) {
    const auto& log = logs_[n];
    if (!ref) {
      ref = &log;
      ref_id = n;
      continue;
    }
    if (log.size() != ref->size()) {
      return "agreement violated: node " + std::to_string(n) + " delivered " +
             std::to_string(log.size()) + " messages, node " + std::to_string(ref_id) +
             " delivered " + std::to_string(ref->size());
    }
    for (std::size_t i = 0; i < log.size(); ++i) {
      if (log[i].origin != (*ref)[i].origin || log[i].app_msg != (*ref)[i].app_msg ||
          log[i].payload_hash != (*ref)[i].payload_hash) {
        return "agreement violated at index " + std::to_string(i) + ": node " +
               std::to_string(n) + " delivered " + describe(log[i]) + ", node " +
               std::to_string(ref_id) + " delivered " + describe((*ref)[i]);
      }
    }
  }
  return {};
}

std::string SimCluster::check_integrity() const {
  for (std::size_t n = 0; n < logs_.size(); ++n) {
    std::set<std::pair<NodeId, std::uint64_t>> seen;
    for (const auto& e : logs_[n]) {
      auto key = std::make_pair(e.origin, e.app_msg);
      if (!seen.insert(key).second) {
        return "node " + std::to_string(n) + " delivered " + describe(e) + " twice";
      }
      auto it = submit_hashes_.find(key);
      if (it == submit_hashes_.end()) {
        return "node " + std::to_string(n) + " delivered never-broadcast " + describe(e);
      }
      if (it->second != e.payload_hash) {
        return "node " + std::to_string(n) + " delivered corrupted payload for " +
               describe(e);
      }
    }
  }
  return {};
}

std::string SimCluster::check_uniformity(const std::set<NodeId>& crashed,
                                         const std::set<NodeId>& correct) const {
  for (NodeId c : crashed) {
    const auto& clog = logs_[c];
    for (NodeId s : correct) {
      const auto& slog = logs_[s];
      if (clog.size() > slog.size()) {
        return "uniformity violated: crashed node " + std::to_string(c) +
               " delivered more than correct node " + std::to_string(s);
      }
      for (std::size_t i = 0; i < clog.size(); ++i) {
        if (clog[i].origin != slog[i].origin || clog[i].app_msg != slog[i].app_msg) {
          return "uniformity violated: crashed node " + std::to_string(c) +
                 " delivered " + describe(clog[i]) + " at index " + std::to_string(i) +
                 " but correct node " + std::to_string(s) + " delivered " +
                 describe(slog[i]);
        }
      }
    }
  }
  return {};
}

std::string SimCluster::check_all() const {
  std::set<NodeId> correct;
  for (std::size_t i = 0; i < logs_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (crashed_.count(id) == 0) correct.insert(id);
  }
  if (auto err = check_integrity(); !err.empty()) return err;
  if (auto err = check_total_order(); !err.empty()) return err;
  if (auto err = check_agreement(correct); !err.empty()) return err;
  if (auto err = check_uniformity(crashed_, correct); !err.empty()) return err;
  return {};
}

}  // namespace fsr
