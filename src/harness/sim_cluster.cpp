#include "harness/sim_cluster.h"

#include <algorithm>
#include <cstring>

namespace fsr {

std::uint64_t hash_bytes(std::span<const std::uint8_t> b) {
  // FNV-style fold taken 8 bytes per step: this runs on every broadcast and
  // every delivery in both harnesses (the checker compares it for equality
  // only), and the byte-at-a-time chain was measurable in TCP bench runs.
  std::uint64_t h = 1469598103934665603ULL;
  const std::uint8_t* p = b.data();
  std::size_t n = b.size();
  for (; n >= 8; p += 8, n -= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * 1099511628211ULL;
  }
  if (n > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = (h ^ (tail + n)) * 1099511628211ULL;
  }
  return h;
}

Bytes test_payload(NodeId origin, std::uint64_t app_msg, std::size_t size) {
  Bytes b(size);
  std::uint64_t x = (std::uint64_t{origin} << 32) ^ app_msg ^ 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < size; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b[i] = static_cast<std::uint8_t>(x);
  }
  return b;
}

SimCluster::SimCluster(ClusterConfig config)
    : cfg_(config),
      world_(config.net, config.n, config.fd_delay),
      checker_(config.n),
      logs_(config.n) {
  std::size_t members_n =
      config.initial_members == 0 ? config.n : config.initial_members;
  // Each group's initial ring is the same member set rotated by the group
  // id, so sequencer duty (position 0) spreads across nodes instead of
  // stacking every group's leader on node 0.
  muxes_.reserve(config.n);
  members_.resize(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    auto id = static_cast<NodeId>(i);
    muxes_.push_back(std::make_unique<GroupMux>(world_.transport(id), config.groups));
    members_[i].reserve(config.groups);
    for (GroupId g = 0; g < config.groups; ++g) {
      View initial;
      initial.id = 1;
      for (std::size_t k = 0; k < members_n; ++k) {
        initial.members.push_back(static_cast<NodeId>((g + k) % members_n));
      }
      GroupConfig gc = config.group;
      gc.engine.group = g;
      members_[i].push_back(std::make_unique<GroupMember>(
          muxes_[i]->channel(g), gc, initial,
          [this, id](const Delivery& d) {
            std::uint64_t hash = hash_bytes(d.payload);
            Time at = world_.sim().now();
            logs_[id].push_back(LogEntry{d.group, d.origin, d.app_msg, d.seq, d.view,
                                         d.payload.size(), at, hash});
            checker_.on_delivery(DeliveryRecord{id, d.group, d.origin, d.app_msg,
                                                d.seq, d.view, hash,
                                                d.payload.size(), at});
            if (tap_) tap_(id, d);
          },
          [this, id](const View& v) {
            if (view_tap_) view_tap_(id, v);
          }));
    }
  }
}

void SimCluster::broadcast(NodeId from, GroupId group, Bytes payload) {
  // The engine numbers own app messages 1, 2, ... per group; mirror that.
  std::uint64_t app_msg = ++next_app_counter_[{from, group}];
  submit_times_[{group, from, app_msg}] = world_.sim().now();
  checker_.on_broadcast(group, from, app_msg, hash_bytes(payload));
  members_[from].at(group)->broadcast(std::move(payload));
}

void SimCluster::broadcast(NodeId from, GroupId group, Payload payload) {
  std::uint64_t app_msg = ++next_app_counter_[{from, group}];
  submit_times_[{group, from, app_msg}] = world_.sim().now();
  checker_.on_broadcast(group, from, app_msg, hash_bytes(payload.span()));
  members_[from].at(group)->broadcast(std::move(payload));
}

void SimCluster::crash(NodeId node, Time fd_delay) {
  crashed_.insert(node);
  checker_.note_crashed(node);
  world_.crash(node, fd_delay);
}

void SimCluster::crash_silent(NodeId node) {
  crashed_.insert(node);
  checker_.note_crashed(node);
  world_.crash_silent(node);
}

Time SimCluster::submit_time(NodeId origin, std::uint64_t app_msg, GroupId group) const {
  auto it = submit_times_.find({group, origin, app_msg});
  return it == submit_times_.end() ? -1 : it->second;
}

Time SimCluster::completion_time(NodeId origin, std::uint64_t app_msg,
                                 GroupId group) const {
  Time worst = -1;
  for (std::size_t i = 0; i < logs_.size(); ++i) {
    if (crashed_.count(static_cast<NodeId>(i))) continue;
    const auto& log = logs_[i];
    auto it = std::find_if(log.begin(), log.end(), [&](const LogEntry& e) {
      return e.group == group && e.origin == origin && e.app_msg == app_msg;
    });
    if (it == log.end()) return -1;
    worst = std::max(worst, it->at);
  }
  return worst;
}

std::string SimCluster::check_total_order() const { return checker_.check_total_order(); }

std::string SimCluster::check_agreement(const std::set<NodeId>& correct) const {
  return checker_.check_agreement(correct);
}

std::string SimCluster::check_integrity() const { return checker_.check_integrity(); }

std::string SimCluster::check_uniformity(const std::set<NodeId>& crashed,
                                         const std::set<NodeId>& correct) const {
  return checker_.check_uniformity(crashed, correct);
}

std::string SimCluster::check_all() const { return checker_.check_all(); }

}  // namespace fsr
