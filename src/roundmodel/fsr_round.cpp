#include "roundmodel/fsr_round.h"

#include <cassert>

namespace fsr::rounds {

namespace {
constexpr long long kStableFlag = 1;
}

FsrRound::FsrRound(int n, int t, int window)
    : topo_{static_cast<std::uint32_t>(n),
            ring::effective_t(static_cast<std::uint32_t>(t), static_cast<std::uint32_t>(n))},
      window_(window < 0 ? 4 * n : window),
      procs_(static_cast<std::size_t>(n)) {}

std::optional<Send> FsrRound::on_round(int p, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  auto payload = pick(p);

  Msg out;
  if (payload) {
    out = *payload;
  } else if (!me.ctrl.empty()) {
    out = me.ctrl.front();
    me.ctrl.erase(me.ctrl.begin());
  } else {
    return std::nullopt;
  }
  // Piggyback all remaining control messages for free (§4.2.2).
  for (auto& c : me.ctrl) out.piggy.push_back(std::move(c));
  me.ctrl.clear();

  int succ = static_cast<int>(topo_.succ(static_cast<Position>(p)));
  return Send{{succ}, std::move(out)};
}

std::optional<Msg> FsrRound::pick(int p) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  auto mypos = static_cast<Position>(p);
  const bool own_ok = engine_->has_app_message(p) && me.outstanding < window_;

  if (topo_.is_leader(mypos)) {
    if (me.out_fifo.empty() && own_ok) {
      long long bcast = engine_->take_app_message(p);
      me.stash[bcast] = p;
      ++me.outstanding;
      sequence(me, p, bcast);
      try_deliver(p);
    }
    if (me.out_fifo.empty()) return std::nullopt;
    Msg m = std::move(me.out_fifo.front());
    me.out_fifo.pop_front();
    return m;
  }

  if (own_ok) {
    for (auto it = me.out_fifo.begin(); it != me.out_fifo.end(); ++it) {
      if (me.forward_list.count(it->origin) > 0) continue;
      Msg m = std::move(*it);
      me.out_fifo.erase(it);
      me.forward_list.insert(m.origin);
      return m;
    }
    long long bcast = engine_->take_app_message(p);
    me.stash[bcast] = p;
    ++me.outstanding;
    me.forward_list.clear();
    Msg m;
    m.kind = Msg::Kind::kData;
    m.origin = p;
    m.bcast = bcast;
    return m;
  }

  if (!me.out_fifo.empty()) {
    Msg m = std::move(me.out_fifo.front());
    me.out_fifo.pop_front();
    me.forward_list.insert(m.origin);
    return m;
  }
  return std::nullopt;
}

void FsrRound::sequence(Proc& leader, int origin, long long bcast) {
  long long s = leader.next_seq++;
  Msg rec;
  rec.kind = Msg::Kind::kSeq;
  rec.origin = origin;
  rec.bcast = bcast;
  rec.seq = s;
  leader.records[s] = rec;
  if (topo_.leader_delivers_at_sequencing()) leader.stable.insert(s);

  auto opos = static_cast<Position>(origin);
  Position stop = topo_.seq_stop(opos);
  if (stop != 0) {
    leader.out_fifo.push_back(rec);
  } else {
    switch (topo_.ack_at_seq_stop(opos)) {
      case ring::AckKind::kStable: {
        Msg a = rec;
        a.kind = Msg::Kind::kAck;
        leader.ctrl.push_back(a);
        break;
      }
      case ring::AckKind::kPending: {
        Msg a = rec;
        a.kind = Msg::Kind::kPendingAck;
        leader.ctrl.push_back(a);
        break;
      }
      case ring::AckKind::kNone:
        break;
    }
  }
}

void FsrRound::on_receive(int p, const Msg& m, long long) {
  handle(p, m);
  for (const auto& extra : m.piggy) handle(p, extra);
  try_deliver(p);
}

void FsrRound::handle(int p, const Msg& m) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  switch (m.kind) {
    case Msg::Kind::kData: {
      if (topo_.is_leader(static_cast<Position>(p))) {
        // Fairness at the sequencer: an own message may cut in ahead of an
        // origin already served since the leader's last own broadcast.
        if (engine_->has_app_message(p) && me.outstanding < window_ &&
            me.forward_list.count(m.origin) > 0) {
          long long own = engine_->take_app_message(p);
          me.stash[own] = p;
          ++me.outstanding;
          me.forward_list.clear();
          sequence(me, p, own);
        }
        me.forward_list.insert(m.origin);
        sequence(me, m.origin, m.bcast);
      } else {
        me.stash[m.bcast] = m.origin;
        me.out_fifo.push_back(m);
      }
      break;
    }
    case Msg::Kind::kSeq:
      handle_seq_arrival(p, m);
      break;
    case Msg::Kind::kAck:
      handle_ack_arrival(p, m, true);
      break;
    case Msg::Kind::kPendingAck:
      handle_ack_arrival(p, m, false);
      break;
    default:
      break;
  }
}

void FsrRound::handle_seq_arrival(int p, const Msg& m) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  auto mypos = static_cast<Position>(p);
  auto opos = static_cast<Position>(m.origin);

  Msg rec = m;
  rec.piggy.clear();
  me.records.emplace(m.seq, rec);
  me.stash.erase(m.bcast);

  if (mypos != topo_.seq_stop(opos)) {
    me.out_fifo.push_back(rec);
  } else {
    switch (topo_.ack_at_seq_stop(opos)) {
      case ring::AckKind::kStable: {
        Msg a = rec;
        a.kind = Msg::Kind::kAck;
        me.ctrl.push_back(a);
        break;
      }
      case ring::AckKind::kPending: {
        Msg a = rec;
        a.kind = Msg::Kind::kPendingAck;
        me.ctrl.push_back(a);
        break;
      }
      case ring::AckKind::kNone:
        break;
    }
  }
  if (topo_.deliver_on_seq(mypos)) me.stable.insert(m.seq);
}

void FsrRound::handle_ack_arrival(int p, const Msg& m, bool stable) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  auto mypos = static_cast<Position>(p);
  if (m.seq < me.next_deliver) return;  // already delivered

  if (me.records.count(m.seq) == 0) {
    assert(me.stash.count(m.bcast) > 0 && "ack without payload");
    Msg rec = m;
    rec.kind = Msg::Kind::kSeq;
    rec.piggy.clear();
    me.records[m.seq] = rec;
    me.stash.erase(m.bcast);
  }

  if (stable) {
    me.stable.insert(m.seq);
    if (mypos != topo_.stable_ack_stop()) {
      Msg fwd = m;
      fwd.kind = Msg::Kind::kAck;
      fwd.piggy.clear();
      me.ctrl.push_back(fwd);
    }
  } else {
    if (mypos == topo_.pending_ack_stop()) {
      me.stable.insert(m.seq);
      if (mypos != topo_.stable_ack_stop()) {
        Msg fwd = m;
        fwd.kind = Msg::Kind::kAck;
        fwd.piggy.clear();
        me.ctrl.push_back(fwd);
      }
    } else {
      Msg fwd = m;
      fwd.kind = Msg::Kind::kPendingAck;
      fwd.piggy.clear();
      me.ctrl.push_back(fwd);
    }
  }
}

void FsrRound::try_deliver(int p) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  for (;;) {
    auto it = me.records.find(me.next_deliver);
    if (it == me.records.end() || me.stable.count(me.next_deliver) == 0) break;
    const Msg& rec = it->second;
    if (rec.origin == p && me.outstanding > 0) --me.outstanding;
    engine_->deliver(p, rec.bcast);
    me.stash.erase(rec.bcast);
    me.stable.erase(me.next_deliver);
    me.records.erase(it);
    ++me.next_deliver;
  }
}

}  // namespace fsr::rounds
