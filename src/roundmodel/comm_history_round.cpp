#include "roundmodel/comm_history_round.h"

#include <algorithm>

namespace fsr::rounds {

CommHistoryRound::CommHistoryRound(int n, int window)
    : n_(n), window_(window < 0 ? 4 * n : window), procs_(static_cast<std::size_t>(n)) {
  for (auto& p : procs_) p.heard.assign(static_cast<std::size_t>(n), -1);
}

std::optional<Send> CommHistoryRound::on_round(int p, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  std::vector<int> dests;
  for (int q = 0; q < n_; ++q) {
    if (q != p) dests.push_back(q);
  }

  if (engine_->has_app_message(p) && me.outstanding < window_) {
    long long bcast = engine_->take_app_message(p);
    ++me.outstanding;
    ++me.clock;
    Msg m;
    m.kind = Msg::Kind::kData;
    m.origin = p;
    m.bcast = bcast;
    m.aux = me.clock;
    me.heard[static_cast<std::size_t>(p)] = me.clock;
    me.rounds_since_hb = 0;  // the data message carries our clock
    me.pending.insert(PendingMsg{me.clock, p, bcast});
    try_deliver(p);
    return Send{std::move(dests), std::move(m)};
  }

  // Nothing to say: emit a clock heartbeat so others' messages can become
  // stable. Heartbeats are rate-matched to the receive capacity (one every
  // n-1 rounds) — any faster and the quadratic background traffic drowns
  // the single receive slot entirely; even so, heartbeats consume the
  // lion's share of every inbox, which is this class's downfall.
  if (++me.rounds_since_hb < n_ - 1) {
    try_deliver(p);
    return std::nullopt;
  }
  me.rounds_since_hb = 0;
  ++me.clock;
  me.heard[static_cast<std::size_t>(p)] = me.clock;
  Msg hb;
  hb.kind = Msg::Kind::kToken;  // reused as "clock only"
  hb.origin = p;
  hb.aux = me.clock;
  try_deliver(p);
  return Send{std::move(dests), std::move(hb)};
}

void CommHistoryRound::on_receive(int p, const Msg& m, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  me.clock = std::max(me.clock, m.aux);
  auto& heard = me.heard[static_cast<std::size_t>(m.origin)];
  heard = std::max(heard, m.aux);
  if (m.kind == Msg::Kind::kData) {
    me.pending.insert(PendingMsg{m.aux, m.origin, m.bcast});
  }
  try_deliver(p);
}

void CommHistoryRound::try_deliver(int p) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  // The earliest pending message is deliverable once every process's heard
  // clock is beyond its timestamp: no earlier message can still arrive.
  while (!me.pending.empty()) {
    const PendingMsg& head = *me.pending.begin();
    long long min_heard = *std::min_element(me.heard.begin(), me.heard.end());
    if (min_heard < head.ts) break;
    if (head.origin == p && me.outstanding > 0) --me.outstanding;
    engine_->deliver(p, head.bcast);
    me.pending.erase(me.pending.begin());
  }
}

}  // namespace fsr::rounds
