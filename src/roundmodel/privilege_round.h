// Privilege-based (token ring, Totem-style) TO-broadcast in the round model
// (paper §2.3, Fig. 3): only the token holder may broadcast; it sequences
// its own messages directly using the token's sequence counter, sending up
// to `hold_max` messages per token visit before passing the token on.
// Stability for uniform delivery comes from per-process cumulative acks
// carried by the token (a full rotation certifies everyone received it).
//
// This is the protocol class FSR is built to beat: throughput is high only
// if a sender may hold the token for long (hold_max large), which is unfair;
// with fair (small) hold_max, token rotation burns rounds — the paper's
// performance/fairness trade-off (§2.3).
#pragma once

#include <map>
#include <vector>

#include "roundmodel/round_engine.h"

namespace fsr::rounds {

class PrivilegeRound final : public Protocol {
 public:
  /// hold_max: messages a holder may send per token visit.
  PrivilegeRound(int n, int hold_max = 1, int window = -1);

  std::optional<Send> on_round(int p, long long round) override;
  void on_receive(int p, const Msg& m, long long round) override;
  std::string name() const override { return "privilege"; }

 private:
  struct Proc {
    bool holder = false;
    int sent_in_visit = 0;
    std::vector<long long> token_acks;  // valid while holder
    std::map<long long, Msg> records;
    long long received_contig = -1;
    long long stable = -1;
    long long next_deliver = 0;
    int outstanding = 0;
  };

  void try_deliver(int p);

  int n_;
  int hold_max_;
  int window_;
  long long next_seq_ = 0;  // conceptually carried by the token
  std::vector<Proc> procs_;
};

}  // namespace fsr::rounds
