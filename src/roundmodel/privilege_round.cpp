#include "roundmodel/privilege_round.h"

#include <algorithm>

namespace fsr::rounds {

PrivilegeRound::PrivilegeRound(int n, int hold_max, int window)
    : n_(n),
      hold_max_(hold_max),
      window_(window < 0 ? 4 * n : window),
      procs_(static_cast<std::size_t>(n)) {
  procs_[0].holder = true;
  procs_[0].token_acks.assign(static_cast<std::size_t>(n), -1);
}

std::optional<Send> PrivilegeRound::on_round(int p, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  if (!me.holder) return std::nullopt;

  me.token_acks[static_cast<std::size_t>(p)] =
      std::max(me.token_acks[static_cast<std::size_t>(p)], me.received_contig);
  long long token_stable = *std::min_element(me.token_acks.begin(), me.token_acks.end());
  me.stable = std::max(me.stable, token_stable);
  try_deliver(p);

  auto token_piggy = [&] {
    std::vector<Msg> piggy;
    for (int q = 0; q < n_; ++q) {
      Msg a;
      a.kind = Msg::Kind::kAck;
      a.origin = q;
      a.aux = me.token_acks[static_cast<std::size_t>(q)];
      piggy.push_back(a);
    }
    return piggy;
  };

  if (engine_->has_app_message(p) && me.outstanding < window_ &&
      me.sent_in_visit < hold_max_) {
    long long bcast = engine_->take_app_message(p);
    ++me.outstanding;
    ++me.sent_in_visit;
    Msg s;
    s.kind = Msg::Kind::kSeq;
    s.origin = p;
    s.bcast = bcast;
    s.seq = next_seq_++;
    me.records[s.seq] = s;
    while (me.records.count(me.received_contig + 1) > 0) ++me.received_contig;
    me.token_acks[static_cast<std::size_t>(p)] = me.received_contig;
    s.aux = me.stable;
    std::vector<int> dests;
    for (int q = 0; q < n_; ++q) {
      if (q != p) dests.push_back(q);
    }
    return Send{std::move(dests), std::move(s)};
  }

  // Pass the privilege on.
  Msg t;
  t.kind = Msg::Kind::kToken;
  t.aux = me.stable;
  t.piggy = token_piggy();
  me.holder = false;
  me.sent_in_visit = 0;
  return Send{{(p + 1) % n_}, std::move(t)};
}

void PrivilegeRound::on_receive(int p, const Msg& m, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  switch (m.kind) {
    case Msg::Kind::kSeq:
      me.records[m.seq] = m;
      while (me.records.count(me.received_contig + 1) > 0) ++me.received_contig;
      me.stable = std::max(me.stable, m.aux);
      break;
    case Msg::Kind::kToken:
      me.holder = true;
      me.sent_in_visit = 0;
      me.stable = std::max(me.stable, m.aux);
      me.token_acks.assign(static_cast<std::size_t>(n_), -1);
      for (const auto& a : m.piggy) {
        if (a.kind == Msg::Kind::kAck) {
          me.token_acks[static_cast<std::size_t>(a.origin)] = a.aux;
        }
      }
      break;
    default:
      break;
  }
  try_deliver(p);
}

void PrivilegeRound::try_deliver(int p) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  while (me.next_deliver <= me.stable) {
    auto it = me.records.find(me.next_deliver);
    if (it == me.records.end()) break;
    if (it->second.origin == p && me.outstanding > 0) --me.outstanding;
    engine_->deliver(p, it->second.bcast);
    ++me.next_deliver;
  }
}

}  // namespace fsr::rounds
