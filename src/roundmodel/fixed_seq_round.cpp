#include "roundmodel/fixed_seq_round.h"

#include <algorithm>
#include <cassert>

namespace fsr::rounds {

FixedSeqRound::FixedSeqRound(int n, int window)
    : n_(n), window_(window < 0 ? 4 * n : window), procs_(static_cast<std::size_t>(n)) {
  seq_.acked_by.assign(static_cast<std::size_t>(n), -1);
}

std::optional<Send> FixedSeqRound::on_round(int p, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];

  if (p == seq_proc_) {
    // Inject own app messages directly into the sequencing queue (the
    // sequencer orders its own messages first come, first served with the
    // arriving ones).
    if (engine_->has_app_message(p) && me.outstanding < window_) {
      long long bcast = engine_->take_app_message(p);
      ++me.outstanding;
      Msg m;
      m.kind = Msg::Kind::kSeq;
      m.origin = p;
      m.bcast = bcast;
      m.seq = seq_.next_seq++;
      me.records[m.seq] = m;
      seq_.seq_queue.push_back(m);
      seq_.acked_by[static_cast<std::size_t>(p)] = seq_.next_seq - 1;
      recompute_stable();
    }
    if (!seq_.seq_queue.empty()) {
      Msg out = std::move(seq_.seq_queue.front());
      seq_.seq_queue.pop_front();
      out.aux = seq_.stable;  // piggyback the stability watermark
      seq_.announced_stable = std::max(seq_.announced_stable, seq_.stable);
      std::vector<int> dests;
      for (int q = 0; q < n_; ++q) {
        if (q != p) dests.push_back(q);
      }
      return Send{std::move(dests), std::move(out)};
    }
    if (seq_.stable > seq_.announced_stable) {
      seq_.announced_stable = seq_.stable;
      Msg out;
      out.kind = Msg::Kind::kStable;
      out.aux = seq_.stable;
      std::vector<int> dests;
      for (int q = 0; q < n_; ++q) {
        if (q != p) dests.push_back(q);
      }
      return Send{std::move(dests), std::move(out)};
    }
    return std::nullopt;
  }

  // Non-sequencer: send own data (with a piggybacked cumulative ack) or a
  // standalone ack.
  if (engine_->has_app_message(p) && me.outstanding < window_) {
    long long bcast = engine_->take_app_message(p);
    ++me.outstanding;
    Msg m;
    m.kind = Msg::Kind::kData;
    m.origin = p;
    m.bcast = bcast;
    if (me.received_contig > me.acked) {
      Msg ack;
      ack.kind = Msg::Kind::kAck;
      ack.origin = p;
      ack.aux = me.received_contig;
      me.acked = me.received_contig;
      m.piggy.push_back(std::move(ack));
    }
    return Send{{seq_proc_}, std::move(m)};
  }
  // Standalone acks are sent by pure receivers every round; a process that
  // also broadcasts piggybacks its acks on its data (footnote 2 of the
  // paper) and only falls back to a standalone ack when stability lags far
  // behind (window stalled).
  bool pure_receiver = !engine_->has_app_message(p);
  bool stalled = me.received_contig - me.acked > static_cast<long long>(2 * window_);
  if (me.received_contig > me.acked && (pure_receiver || stalled)) {
    Msg ack;
    ack.kind = Msg::Kind::kAck;
    ack.origin = p;
    ack.aux = me.received_contig;
    me.acked = me.received_contig;
    return Send{{seq_proc_}, std::move(ack)};
  }
  return std::nullopt;
}

void FixedSeqRound::on_receive(int p, const Msg& m, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  auto handle_one = [&](const Msg& one) {
    if (p == seq_proc_) {
      if (one.kind == Msg::Kind::kData) {
        Msg s;
        s.kind = Msg::Kind::kSeq;
        s.origin = one.origin;
        s.bcast = one.bcast;
        s.seq = seq_.next_seq++;
        me.records[s.seq] = s;
        seq_.seq_queue.push_back(s);
        seq_.acked_by[static_cast<std::size_t>(p)] = seq_.next_seq - 1;
        recompute_stable();
      } else if (one.kind == Msg::Kind::kAck) {
        auto& w = seq_.acked_by[static_cast<std::size_t>(one.origin)];
        w = std::max(w, one.aux);
        recompute_stable();
      }
    } else {
      if (one.kind == Msg::Kind::kSeq) {
        me.records[one.seq] = one;
        while (me.records.count(me.received_contig + 1) > 0) ++me.received_contig;
        me.stable = std::max(me.stable, one.aux);
      } else if (one.kind == Msg::Kind::kStable) {
        me.stable = std::max(me.stable, one.aux);
      }
    }
  };
  handle_one(m);
  for (const auto& extra : m.piggy) handle_one(extra);
  try_deliver(p);
}

void FixedSeqRound::recompute_stable() {
  long long s = seq_.next_seq;  // upper bound
  for (long long w : seq_.acked_by) s = std::min(s, w);
  seq_.stable = std::max(seq_.stable, s);
  Proc& me = procs_[static_cast<std::size_t>(seq_proc_)];
  me.stable = seq_.stable;
  try_deliver(seq_proc_);
}

void FixedSeqRound::try_deliver(int p) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  while (me.next_deliver <= me.stable) {
    auto it = me.records.find(me.next_deliver);
    if (it == me.records.end()) break;
    if (it->second.origin == p && me.outstanding > 0) --me.outstanding;
    engine_->deliver(p, it->second.bcast);
    me.records.erase(it);
    ++me.next_deliver;
  }
}

}  // namespace fsr::rounds
