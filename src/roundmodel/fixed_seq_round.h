// Uniform fixed-sequencer TO-broadcast in the round model (paper §2.1,
// Fig. 1): senders unicast to the sequencer, the sequencer broadcasts
// (m, seq), receivers ack back to the sequencer (cumulative acks,
// piggybacked on their own data when they are also senders), and the
// sequencer broadcasts a stability watermark.
//
// The sequencer's single receive slot per round is the bottleneck: for
// 1-to-n traffic it must absorb the sender's data AND n-1 ack streams,
// capping throughput near 1/n. Only in n-to-n (acks piggybacked on data)
// does it approach 1 (paper footnote 2).
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "roundmodel/round_engine.h"

namespace fsr::rounds {

class FixedSeqRound final : public Protocol {
 public:
  explicit FixedSeqRound(int n, int window = -1);

  std::optional<Send> on_round(int p, long long round) override;
  void on_receive(int p, const Msg& m, long long round) override;
  std::string name() const override { return "fixed-seq"; }

 private:
  struct Proc {
    std::map<long long, Msg> records;        // seq -> sequenced message
    long long received_contig = -1;          // highest contiguous seq received
    long long acked = -1;                    // watermark already sent to sequencer
    long long stable = -1;                   // stability watermark learned
    long long next_deliver = 0;
    int outstanding = 0;
  };

  struct Sequencer {
    long long next_seq = 0;
    std::deque<Msg> seq_queue;               // sequenced, waiting to broadcast
    std::vector<long long> acked_by;         // per process
    long long stable = -1;
    long long announced_stable = -1;
  };

  void try_deliver(int p);
  void recompute_stable();

  int n_;
  int window_;
  int seq_proc_ = 0;
  std::vector<Proc> procs_;
  Sequencer seq_;
};

}  // namespace fsr::rounds
