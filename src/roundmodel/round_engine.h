// The paper's round-based computation model (§3): in each round r every
// process (1) computes a message, (2) unicasts or best-effort broadcasts it,
// and (3) receives AT MOST ONE message sent in an earlier round — pending
// arrivals queue at the receiver. The single-receive rule is what models a
// full-duplex NIC and makes sequencer-style protocols receiver-bound.
//
// Throughput = completed TO-broadcasts per round (a broadcast completes when
// every process has delivered it). A protocol is throughput efficient if
// this is >= 1 (paper §1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fsr::rounds {

/// One abstract message. Protocols interpret the fields as they need;
/// `piggy` models piggybacked small control items (ids/acks), which ride
/// for free on a message (paper §4.2.2).
struct Msg {
  enum class Kind : std::uint8_t {
    kData,
    kSeq,
    kAck,
    kPendingAck,
    kStable,
    kToken,
  };
  Kind kind = Kind::kData;
  int from = -1;          // physical sender (stamped by the engine)
  int origin = -1;        // process that initiated the broadcast
  long long bcast = -1;   // broadcast instance id (engine-assigned)
  long long seq = -1;     // global sequence number, if assigned
  long long aux = -1;     // protocol-specific (e.g. stable watermark, hops)
  std::vector<Msg> piggy; // piggybacked control messages (no extra cost)
};

/// What a process emits in one round: one message to one or more targets.
struct Send {
  std::vector<int> dests;
  Msg msg;
};

class RoundEngine;

class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual void attach(RoundEngine& engine) { engine_ = &engine; }
  /// Decide this round's send for process p (state as of the round start).
  virtual std::optional<Send> on_round(int p, long long round) = 0;
  /// Process p consumes one queued message at the end of a round.
  virtual void on_receive(int p, const Msg& m, long long round) = 0;
  virtual std::string name() const = 0;

 protected:
  RoundEngine* engine_ = nullptr;
};

/// Per-process application workload: which processes broadcast and how much.
struct WorkloadSpec {
  int n = 5;
  std::vector<int> senders;        // process ids that broadcast
  long long per_sender = -1;       // messages per sender; -1 = unbounded
};

class RoundEngine {
 public:
  RoundEngine(WorkloadSpec workload, Protocol& protocol);

  /// Run the model for `rounds` rounds.
  void run(long long rounds);

  int n() const { return n_; }
  long long round() const { return round_; }

  // --- protocol-side API ---

  /// Does process p have an application message waiting to broadcast?
  bool has_app_message(int p) const;

  /// Start the next application broadcast of p; returns its instance id.
  long long take_app_message(int p);

  /// Protocol reports that process p TO-delivered broadcast `bcast`.
  void deliver(int p, long long bcast);

  // --- metrics ---

  /// Broadcasts completed (delivered by all n) so far.
  long long completed() const { return static_cast<long long>(completion_round_.size()); }

  /// Completed broadcasts whose completion fell in [from, to) rounds.
  long long completed_between(long long from, long long to) const;

  /// Rounds from take_app_message to completion, for completed broadcast b.
  long long latency(long long bcast) const;

  /// Per-origin completed counts (fairness).
  std::map<int, long long> completed_by_origin() const;

  /// Origin process of a broadcast instance.
  int origin_of(long long bcast) const {
    return bcasts_[static_cast<std::size_t>(bcast)].origin;
  }

  /// Delivery logs (per process, broadcast ids in delivery order).
  const std::vector<std::vector<long long>>& logs() const { return logs_; }

  /// Empty string if all logs are pairwise prefix-consistent (total order)
  /// and duplicate-free.
  std::string check_total_order() const;

  /// Largest receive-queue backlog observed (diagnostic).
  std::size_t max_backlog() const { return max_backlog_; }

 private:
  struct BcastInfo {
    int origin = -1;
    long long start_round = -1;
    int delivered_count = 0;
    std::vector<bool> delivered_by;
  };

  WorkloadSpec workload_;
  Protocol& protocol_;
  int n_;
  long long round_ = 0;
  long long next_bcast_ = 0;
  std::vector<long long> sent_by_;              // per process, app msgs taken
  std::vector<std::deque<Msg>> inbox_;
  std::vector<BcastInfo> bcasts_;
  std::map<long long, long long> completion_round_;  // bcast -> round
  std::vector<std::vector<long long>> logs_;
  std::size_t max_backlog_ = 0;
};

}  // namespace fsr::rounds
