#include "roundmodel/moving_seq_round.h"

#include <algorithm>

namespace fsr::rounds {

MovingSeqRound::MovingSeqRound(int n, int window)
    : n_(n), window_(window < 0 ? 4 * n : window), procs_(static_cast<std::size_t>(n)) {
  procs_[0].holder = true;
  procs_[0].token_acks.assign(static_cast<std::size_t>(n), -1);
}

std::optional<Send> MovingSeqRound::on_round(int p, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  int succ = (p + 1) % n_;

  if (me.holder) {
    me.token_acks[static_cast<std::size_t>(p)] =
        std::max(me.token_acks[static_cast<std::size_t>(p)], me.received_contig);

    // Drop entries another holder already sequenced.
    while (!me.unsequenced.empty() && me.sequenced.count(me.unsequenced.front().first)) {
      me.unsequenced.pop_front();
    }

    auto token_piggy = [&] {
      std::vector<Msg> piggy;
      for (int q = 0; q < n_; ++q) {
        Msg a;
        a.kind = Msg::Kind::kAck;
        a.origin = q;
        a.aux = me.token_acks[static_cast<std::size_t>(q)];
        piggy.push_back(a);
      }
      return piggy;
    };

    long long token_stable = *std::min_element(me.token_acks.begin(), me.token_acks.end());
    me.stable = std::max(me.stable, token_stable);
    try_deliver(p);

    if (!me.unsequenced.empty()) {
      auto [bcast, origin] = me.unsequenced.front();
      me.unsequenced.pop_front();
      Msg s;
      s.kind = Msg::Kind::kSeq;
      s.origin = origin;
      s.bcast = bcast;
      s.seq = next_seq_++;
      s.aux = me.stable;
      me.records[s.seq] = s;
      me.sequenced.insert(bcast);
      while (me.records.count(me.received_contig + 1) > 0) ++me.received_contig;
      me.token_acks[static_cast<std::size_t>(p)] = me.received_contig;
      s.piggy = token_piggy();
      me.holder = false;  // the seq broadcast hands the token to succ(p)
      std::vector<int> dests;
      for (int q = 0; q < n_; ++q) {
        if (q != p) dests.push_back(q);
      }
      try_deliver(p);
      return Send{std::move(dests), std::move(s)};
    }

    // Nothing to sequence: pass the token along.
    Msg t;
    t.kind = Msg::Kind::kToken;
    t.aux = me.stable;
    t.piggy = token_piggy();
    me.holder = false;
    return Send{{succ}, std::move(t)};
  }

  // Non-holder: broadcast own data if any.
  if (engine_->has_app_message(p) && me.outstanding < window_) {
    long long bcast = engine_->take_app_message(p);
    ++me.outstanding;
    note_data(p, bcast, p);  // our own copy
    Msg d;
    d.kind = Msg::Kind::kData;
    d.origin = p;
    d.bcast = bcast;
    std::vector<int> dests;
    for (int q = 0; q < n_; ++q) {
      if (q != p) dests.push_back(q);
    }
    return Send{std::move(dests), std::move(d)};
  }
  return std::nullopt;
}

void MovingSeqRound::note_data(int p, long long bcast, int origin) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  if (!me.seen.insert(bcast).second) return;
  if (me.sequenced.count(bcast) == 0) me.unsequenced.push_back({bcast, origin});
}

void MovingSeqRound::on_receive(int p, const Msg& m, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  switch (m.kind) {
    case Msg::Kind::kData:
      note_data(p, m.bcast, m.origin);
      break;
    case Msg::Kind::kSeq: {
      me.records[m.seq] = m;
      me.sequenced.insert(m.bcast);
      me.seen.insert(m.bcast);
      while (me.records.count(me.received_contig + 1) > 0) ++me.received_contig;
      me.stable = std::max(me.stable, m.aux);
      // The seq broadcast carries the token to the holder's successor.
      if (p == (m.from + 1) % n_) {
        me.holder = true;
        me.token_acks.assign(static_cast<std::size_t>(n_), -1);
        for (const auto& a : m.piggy) {
          if (a.kind == Msg::Kind::kAck) {
            me.token_acks[static_cast<std::size_t>(a.origin)] = a.aux;
          }
        }
      }
      break;
    }
    case Msg::Kind::kToken: {
      me.holder = true;
      me.stable = std::max(me.stable, m.aux);
      me.token_acks.assign(static_cast<std::size_t>(n_), -1);
      for (const auto& a : m.piggy) {
        if (a.kind == Msg::Kind::kAck) {
          me.token_acks[static_cast<std::size_t>(a.origin)] = a.aux;
        }
      }
      break;
    }
    default:
      break;
  }
  try_deliver(p);
}

void MovingSeqRound::try_deliver(int p) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  while (me.next_deliver <= me.stable) {
    auto it = me.records.find(me.next_deliver);
    if (it == me.records.end()) break;
    if (it->second.origin == p && me.outstanding > 0) --me.outstanding;
    engine_->deliver(p, it->second.bcast);
    ++me.next_deliver;
  }
}

}  // namespace fsr::rounds
