// Destination-agreement TO-broadcast in the round model (paper §2.5,
// Chandra–Toueg style): the delivery order is decided by running an
// agreement per message (batch): a coordinator proposes the next message's
// sequence, every destination acknowledges the proposal, and the
// coordinator broadcasts the decision; processes deliver on decision.
//
// This is deliberately the "modular but expensive" construction the paper
// describes: each delivery costs a proposal broadcast, n-1 ack unicasts and
// a decision broadcast, so the coordinator's receive slot and every
// process's two-receives-per-delivery cap the throughput well below 1.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "roundmodel/round_engine.h"

namespace fsr::rounds {

class DestAgreementRound final : public Protocol {
 public:
  explicit DestAgreementRound(int n, int window = -1);

  std::optional<Send> on_round(int p, long long round) override;
  void on_receive(int p, const Msg& m, long long round) override;
  std::string name() const override { return "dest-agreement"; }

 private:
  struct Proc {
    std::map<long long, Msg> proposals;  // seq -> proposed message
    long long decided = -1;              // decision watermark
    long long acked = -1;                // proposal watermark acked so far
    long long received_contig = -1;      // contiguous proposals received
    long long next_deliver = 0;
    int outstanding = 0;
  };

  struct Coordinator {
    std::deque<std::pair<long long, int>> unordered;  // (bcast, origin)
    long long next_seq = 0;
    std::vector<long long> acked_by;
    long long decided = -1;
    long long announced_decided = -1;
    bool proposal_outstanding = false;  // at most one unacked proposal wave
  };

  void try_deliver(int p);
  void recompute_decided();

  int n_;
  int window_;
  int coord_ = 0;
  std::vector<Proc> procs_;
  Coordinator co_;
};

}  // namespace fsr::rounds
