#include "roundmodel/round_engine.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace fsr::rounds {

RoundEngine::RoundEngine(WorkloadSpec workload, Protocol& protocol)
    : workload_(std::move(workload)),
      protocol_(protocol),
      n_(workload_.n),
      sent_by_(static_cast<std::size_t>(n_), 0),
      inbox_(static_cast<std::size_t>(n_)),
      logs_(static_cast<std::size_t>(n_)) {
  protocol_.attach(*this);
}

bool RoundEngine::has_app_message(int p) const {
  if (std::find(workload_.senders.begin(), workload_.senders.end(), p) ==
      workload_.senders.end()) {
    return false;
  }
  return workload_.per_sender < 0 ||
         sent_by_[static_cast<std::size_t>(p)] < workload_.per_sender;
}

long long RoundEngine::take_app_message(int p) {
  assert(has_app_message(p));
  ++sent_by_[static_cast<std::size_t>(p)];
  long long id = next_bcast_++;
  BcastInfo info;
  info.origin = p;
  info.start_round = round_;
  info.delivered_by.assign(static_cast<std::size_t>(n_), false);
  bcasts_.push_back(std::move(info));
  return id;
}

void RoundEngine::deliver(int p, long long bcast) {
  assert(bcast >= 0 && bcast < static_cast<long long>(bcasts_.size()));
  BcastInfo& info = bcasts_[static_cast<std::size_t>(bcast)];
  assert(!info.delivered_by[static_cast<std::size_t>(p)] && "duplicate delivery");
  info.delivered_by[static_cast<std::size_t>(p)] = true;
  logs_[static_cast<std::size_t>(p)].push_back(bcast);
  if (++info.delivered_count == n_) {
    completion_round_[bcast] = round_;
  }
}

void RoundEngine::run(long long rounds) {
  for (long long r = 0; r < rounds; ++r) {
    // 1-2: every process computes and sends its message for this round.
    std::vector<std::optional<Send>> sends(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      sends[static_cast<std::size_t>(p)] = protocol_.on_round(p, round_);
    }
    for (int p = 0; p < n_; ++p) {
      auto& s = sends[static_cast<std::size_t>(p)];
      if (!s) continue;
      s->msg.from = p;
      for (int dest : s->dests) {
        assert(dest >= 0 && dest < n_ && dest != p);
        inbox_[static_cast<std::size_t>(dest)].push_back(s->msg);
      }
    }
    // 3: every process receives at most one message.
    for (int p = 0; p < n_; ++p) {
      auto& q = inbox_[static_cast<std::size_t>(p)];
      max_backlog_ = std::max(max_backlog_, q.size());
      if (q.empty()) continue;
      Msg m = std::move(q.front());
      q.pop_front();
      protocol_.on_receive(p, m, round_);
    }
    ++round_;
  }
}

long long RoundEngine::completed_between(long long from, long long to) const {
  long long count = 0;
  for (const auto& [bcast, at] : completion_round_) {
    if (at >= from && at < to) ++count;
  }
  return count;
}

long long RoundEngine::latency(long long bcast) const {
  auto it = completion_round_.find(bcast);
  if (it == completion_round_.end()) return -1;
  return it->second - bcasts_[static_cast<std::size_t>(bcast)].start_round;
}

std::map<int, long long> RoundEngine::completed_by_origin() const {
  std::map<int, long long> out;
  for (const auto& [bcast, at] : completion_round_) {
    out[bcasts_[static_cast<std::size_t>(bcast)].origin]++;
  }
  return out;
}

std::string RoundEngine::check_total_order() const {
  for (std::size_t a = 0; a < logs_.size(); ++a) {
    std::set<long long> seen;
    for (long long b : logs_[a]) {
      if (!seen.insert(b).second) {
        return "process " + std::to_string(a) + " delivered broadcast " +
               std::to_string(b) + " twice";
      }
    }
  }
  for (std::size_t a = 0; a < logs_.size(); ++a) {
    for (std::size_t b = a + 1; b < logs_.size(); ++b) {
      std::set<long long> in_b(logs_[b].begin(), logs_[b].end());
      std::vector<long long> ra;
      for (long long x : logs_[a]) {
        if (in_b.count(x)) ra.push_back(x);
      }
      std::set<long long> in_a(logs_[a].begin(), logs_[a].end());
      std::vector<long long> rb;
      for (long long x : logs_[b]) {
        if (in_a.count(x)) rb.push_back(x);
      }
      if (ra != rb) {
        return "total order violated between process " + std::to_string(a) +
               " and process " + std::to_string(b);
      }
    }
  }
  return {};
}

}  // namespace fsr::rounds
