// Moving-sequencer TO-broadcast in the round model (paper §2.2, Fig. 2,
// Chang–Maxemchuk style): senders broadcast data to everyone; a token
// rotates among the processes; the token holder assigns the next sequence
// number to the oldest unsequenced message it has received and broadcasts
// (m, seq) — which also hands the token to its successor. Stability (for
// uniform delivery) comes from per-process cumulative acks carried by the
// token: a sequence number is stable once every process's token entry
// covers it.
//
// Every process must receive both the data broadcast and the seq/token
// broadcast for each message — two receive slots per delivery — so
// throughput cannot exceed 1/2 (the paper's argument for why moving
// sequencers never reach 1).
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "roundmodel/round_engine.h"

namespace fsr::rounds {

class MovingSeqRound final : public Protocol {
 public:
  explicit MovingSeqRound(int n, int window = -1);

  std::optional<Send> on_round(int p, long long round) override;
  void on_receive(int p, const Msg& m, long long round) override;
  std::string name() const override { return "moving-seq"; }

 private:
  struct Proc {
    bool holder = false;
    std::vector<long long> token_acks;       // valid while holder
    std::deque<std::pair<long long, int>> unsequenced;  // (bcast, origin) FIFO
    std::set<long long> seen;                // bcasts received (dedupe)
    std::set<long long> sequenced;           // bcasts already sequenced (global info via kSeq)
    std::map<long long, Msg> records;        // seq -> message
    long long received_contig = -1;
    long long stable = -1;
    long long next_deliver = 0;
    int outstanding = 0;
  };

  void try_deliver(int p);
  void note_data(int p, long long bcast, int origin);

  int n_;
  int window_;
  long long next_seq_ = 0;  // conceptually carried by the token
  std::vector<Proc> procs_;
};

}  // namespace fsr::rounds
