// FSR in the round-based model (§3/§4.3): the exact hop rules of the
// protocol (shared with the packet-level engine via ring::Topology), with
// free piggybacking of acks. Used to verify the analytic claims: throughput
// >= 1 regardless of n, t and the number of senders; latency
// L(i) = 2n + t - i - 1; perfect fairness.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "ring/rules.h"
#include "roundmodel/round_engine.h"

namespace fsr::rounds {

class FsrRound final : public Protocol {
 public:
  /// `window`: own broadcasts in flight per process; must cover the ring
  /// latency (~2n rounds) for a single sender to reach throughput 1.
  FsrRound(int n, int t, int window = -1);

  std::optional<Send> on_round(int p, long long round) override;
  void on_receive(int p, const Msg& m, long long round) override;
  std::string name() const override { return "fsr"; }

 private:
  struct Proc {
    std::deque<Msg> out_fifo;     // DATA / SEQ to forward
    std::vector<Msg> ctrl;        // acks to piggyback / send
    std::set<int> forward_list;
    std::map<long long, Msg> records;  // seq -> message (stable in aux: 1/0)
    std::set<long long> stable;
    std::map<long long, int> stash;    // bcast -> origin (payload held)
    long long next_deliver = 0;
    int outstanding = 0;               // own in flight
    long long next_seq = 0;            // leader only
  };

  void handle(int p, const Msg& m);
  void handle_seq_arrival(int p, const Msg& m);
  void handle_ack_arrival(int p, const Msg& m, bool stable);
  void sequence(Proc& leader, int origin, long long bcast);
  void try_deliver(int p);
  std::optional<Msg> pick(int p);

  ring::Topology topo_;
  int window_;
  std::vector<Proc> procs_;
};

}  // namespace fsr::rounds
