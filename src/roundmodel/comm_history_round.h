// Communication-history TO-broadcast in the round model (paper §2.4,
// Lamport-clock / Newtop style): senders may broadcast at any time; every
// message carries a logical clock, and a message is delivered once the
// receiver has heard a higher clock from *every* other process (so nothing
// earlier can still arrive). Total order = (timestamp, origin).
//
// Silent processes must therefore emit clock heartbeats continuously, so
// each broadcast costs a quadratic number of messages — with the §3 single-
// receive-per-round rule the inboxes of all processes become the
// bottleneck, which is exactly the paper's "poor throughput" argument for
// this class.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "roundmodel/round_engine.h"

namespace fsr::rounds {

class CommHistoryRound final : public Protocol {
 public:
  explicit CommHistoryRound(int n, int window = -1);

  std::optional<Send> on_round(int p, long long round) override;
  void on_receive(int p, const Msg& m, long long round) override;
  std::string name() const override { return "comm-history"; }

 private:
  struct PendingMsg {
    long long ts = 0;
    int origin = -1;
    long long bcast = -1;

    bool operator<(const PendingMsg& o) const {
      if (ts != o.ts) return ts < o.ts;
      return origin < o.origin;
    }
  };

  struct Proc {
    long long clock = 0;
    std::vector<long long> heard;  // highest clock seen from each process
    std::set<PendingMsg> pending;  // undelivered, ordered by (ts, origin)
    int outstanding = 0;
    int rounds_since_hb = 1 << 20;  // send a heartbeat immediately at start
  };

  void try_deliver(int p);

  int n_;
  int window_;
  std::vector<Proc> procs_;
};

}  // namespace fsr::rounds
