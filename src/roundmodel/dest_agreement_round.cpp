#include "roundmodel/dest_agreement_round.h"

#include <algorithm>

namespace fsr::rounds {

DestAgreementRound::DestAgreementRound(int n, int window)
    : n_(n), window_(window < 0 ? 4 * n : window), procs_(static_cast<std::size_t>(n)) {
  co_.acked_by.assign(static_cast<std::size_t>(n), -1);
}

std::optional<Send> DestAgreementRound::on_round(int p, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  std::vector<int> others;
  for (int q = 0; q < n_; ++q) {
    if (q != p) others.push_back(q);
  }

  if (p == coord_) {
    // Inject own app messages into the agreement queue.
    if (engine_->has_app_message(p) && me.outstanding < window_) {
      long long bcast = engine_->take_app_message(p);
      ++me.outstanding;
      co_.unordered.push_back({bcast, p});
    }
    // Propose the next unordered message.
    if (!co_.unordered.empty()) {
      auto [bcast, origin] = co_.unordered.front();
      co_.unordered.pop_front();
      Msg prop;
      prop.kind = Msg::Kind::kSeq;
      prop.origin = origin;
      prop.bcast = bcast;
      prop.seq = co_.next_seq++;
      prop.aux = co_.decided;  // piggyback the decision watermark
      me.proposals[prop.seq] = prop;
      while (me.proposals.count(me.received_contig + 1) > 0) ++me.received_contig;
      co_.acked_by[static_cast<std::size_t>(p)] = me.received_contig;
      recompute_decided();
      return Send{std::move(others), std::move(prop)};
    }
    // No proposal to make: announce new decisions if any.
    if (co_.decided > co_.announced_decided) {
      co_.announced_decided = co_.decided;
      Msg dec;
      dec.kind = Msg::Kind::kStable;
      dec.aux = co_.decided;
      return Send{std::move(others), std::move(dec)};
    }
    return std::nullopt;
  }

  // Non-coordinator: forward own app messages to the coordinator, with the
  // cumulative proposal-ack piggybacked; otherwise send standalone acks.
  if (engine_->has_app_message(p) && me.outstanding < window_) {
    long long bcast = engine_->take_app_message(p);
    ++me.outstanding;
    Msg d;
    d.kind = Msg::Kind::kData;
    d.origin = p;
    d.bcast = bcast;
    if (me.received_contig > me.acked) {
      Msg ack;
      ack.kind = Msg::Kind::kAck;
      ack.origin = p;
      ack.aux = me.received_contig;
      me.acked = me.received_contig;
      d.piggy.push_back(std::move(ack));
    }
    return Send{{coord_}, std::move(d)};
  }
  if (me.received_contig > me.acked) {
    Msg ack;
    ack.kind = Msg::Kind::kAck;
    ack.origin = p;
    ack.aux = me.received_contig;
    me.acked = me.received_contig;
    return Send{{coord_}, std::move(ack)};
  }
  return std::nullopt;
}

void DestAgreementRound::on_receive(int p, const Msg& m, long long) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  auto handle_one = [&](const Msg& one) {
    if (p == coord_) {
      if (one.kind == Msg::Kind::kData) {
        co_.unordered.push_back({one.bcast, one.origin});
      } else if (one.kind == Msg::Kind::kAck) {
        auto& w = co_.acked_by[static_cast<std::size_t>(one.origin)];
        w = std::max(w, one.aux);
        recompute_decided();
      }
    } else {
      if (one.kind == Msg::Kind::kSeq) {
        me.proposals[one.seq] = one;
        while (me.proposals.count(me.received_contig + 1) > 0) ++me.received_contig;
        me.decided = std::max(me.decided, one.aux);
      } else if (one.kind == Msg::Kind::kStable) {
        me.decided = std::max(me.decided, one.aux);
      }
    }
  };
  handle_one(m);
  for (const auto& extra : m.piggy) handle_one(extra);
  try_deliver(p);
}

void DestAgreementRound::recompute_decided() {
  long long d = co_.next_seq;
  for (long long w : co_.acked_by) d = std::min(d, w);
  co_.decided = std::max(co_.decided, d);
  procs_[static_cast<std::size_t>(coord_)].decided = co_.decided;
  try_deliver(coord_);
}

void DestAgreementRound::try_deliver(int p) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  while (me.next_deliver <= me.decided) {
    auto it = me.proposals.find(me.next_deliver);
    if (it == me.proposals.end()) break;
    if (it->second.origin == p && me.outstanding > 0) --me.outstanding;
    engine_->deliver(p, it->second.bcast);
    me.proposals.erase(it);
    ++me.next_deliver;
  }
}

}  // namespace fsr::rounds
