// All protocol messages that cross the network, for both the FSR layer
// (DATA / SEQ / ACK, paper §4) and the VSC membership layer (§4.2.1).
// A Frame is the unit handed to a Transport: one or more messages for a
// single destination. Piggybacking (§4.2.2) = appending AckMsg entries to a
// frame that already carries a payload message.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace fsr {

/// An immutable, reference-counted byte range: the owner keeps the backing
/// storage alive while the view points anywhere inside it. This is what lets
/// payloads travel the whole data path without being copied — a decoded
/// payload aliases the transport's receive buffer, forwarding it around the
/// ring enqueues the same bytes for scatter-gather transmission, and the
/// simulator shares one buffer across every hop.
///
/// A default-constructed (or nullptr-assigned) Payload is "absent" and
/// distinct from a present-but-empty one (make_payload(Bytes{}) is truthy
/// with size 0), matching the previous shared_ptr<const Bytes> semantics.
class Payload {
 public:
  Payload() = default;
  Payload(std::nullptr_t) {}  // NOLINT(google-explicit-constructor): mirrors shared_ptr
  Payload(std::shared_ptr<const void> owner, std::span<const std::uint8_t> bytes)
      : owner_(std::move(owner)), data_(bytes.data()), size_(bytes.size()) {}

  explicit operator bool() const { return owner_ != nullptr; }

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* begin() const { return data_; }
  const std::uint8_t* end() const { return data_ + size_; }

  std::span<const std::uint8_t> span() const { return {data_, size_}; }
  operator std::span<const std::uint8_t>() const { return span(); }  // NOLINT(google-explicit-constructor)

  /// Aliasing view of a sub-range: shares this view's owner, copies nothing.
  /// This is what makes segmentation zero-copy — every segment of a large
  /// application message is a window into the one original buffer.
  Payload sub(std::size_t off, std::size_t len) const {
    return Payload{owner_, {data_ + off, len}};
  }

  /// The backing storage anchor (shared with every other view into it).
  const std::shared_ptr<const void>& owner() const { return owner_; }

  /// Content equality (presence and bytes), for tests and checkers.
  friend bool operator==(const Payload& a, const Payload& b) {
    if (!a.owner_ || !b.owner_) return a.owner_ == nullptr && b.owner_ == nullptr;
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::shared_ptr<const void> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Wrap owned bytes in a Payload (one allocation, no copy of the contents).
inline Payload make_payload(Bytes b) {
  auto owned = std::make_shared<const Bytes>(std::move(b));
  std::span<const std::uint8_t> view(*owned);
  return Payload{std::move(owned), view};
}

inline std::size_t payload_size(const Payload& p) { return p.size(); }

/// Number of segments a payload of `total` bytes splits into under
/// `segment_size`. An empty payload still occupies one (empty) segment so the
/// message exists on the wire.
inline std::uint32_t segment_count(std::size_t total, std::size_t segment_size) {
  if (total == 0) return 1;
  return static_cast<std::uint32_t>((total + segment_size - 1) / segment_size);
}

/// Bounds of segment `i`: `{offset, length}` into the whole payload. With
/// Payload::sub this yields aliasing segment views instead of copies.
inline std::pair<std::size_t, std::size_t> segment_bounds(std::size_t total,
                                                          std::size_t segment_size,
                                                          std::uint32_t i) {
  std::size_t off = static_cast<std::size_t>(i) * segment_size;
  std::size_t len = off < total ? std::min(segment_size, total - off) : 0;
  return {off, len};
}

/// Segmentation header: which application message this segment belongs to
/// (per-origin counter) and its position in it (paper §4.1: uniform message
/// size via segmenting large messages).
struct FragInfo {
  std::uint64_t app_msg = 0;
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  friend bool operator==(const FragInfo&, const FragInfo&) = default;
};

/// Pre-sequencing payload segment, forwarded clockwise from its origin to
/// the leader (message m1 in Fig. 4).
struct DataMsg {
  MsgId id;
  ViewId view = 0;
  FragInfo frag;
  Payload payload;
};

/// Post-sequencing segment: (m, seq(m)), forwarded from the leader to the
/// predecessor of the origin (messages m2/m3 in Fig. 4).
struct SeqMsg {
  MsgId id;
  GlobalSeq seq = 0;
  ViewId view = 0;
  FragInfo frag;
  Payload payload;
};

/// Acknowledgment (message m4 in Fig. 4). `stable == true` certifies the
/// pair is stored by the leader and all t backups, so receivers may deliver;
/// a pending ack (backup-sender case, §4.1 case 2) circulates only until
/// backup p_t, which converts it to a stable ack.
struct AckMsg {
  MsgId id;
  GlobalSeq seq = 0;
  ViewId view = 0;
  bool stable = true;

  friend bool operator==(const AckMsg&, const AckMsg&) = default;
};

/// Garbage-collection watermark. The process at the stable-ack stop position
/// (p_{t-1}) is always the *last* to deliver a message, so its delivered
/// watermark equals the all-delivered watermark. It periodically circulates
/// that watermark (piggybacked like an ack) so every process can prune
/// records retained for view-change recovery. A pair may only be forgotten
/// once it is known to be delivered by all (paper §4: backups keep copies of
/// messages "that have not yet been delivered by all processes").
struct GcMsg {
  GlobalSeq all_delivered = 0;
  ViewId view = 0;
  std::uint32_t hops_left = 0;

  friend bool operator==(const GcMsg&, const GcMsg&) = default;
};

/// Rotating token of the privilege-based baseline (paper §2.3, Fig. 3):
/// carries the sequence counter and the per-member cumulative-ack
/// watermarks whose minimum is the uniform-stability point.
struct TokenMsg {
  GlobalSeq next_seq = 1;
  ViewId view = 0;
  std::uint32_t idle_laps = 0;   // consecutive visits with nothing sent
  std::vector<GlobalSeq> acked;  // parallel to the view's member list

  friend bool operator==(const TokenMsg&, const TokenMsg&) = default;
};

// --- VSC membership messages (paper §4.2.1) ---

struct Heartbeat {
  ViewId view = 0;
};

/// Coordinator asks members of the proposed view to stop sending and report
/// their recovery state.
struct FlushReq {
  ViewId proposed = 0;
  std::vector<NodeId> members;
  /// The proposed view admits a joiner: members should attach an
  /// application snapshot to their flush state (state transfer).
  bool want_snapshot = false;
};

/// A member's reply: an opaque recovery blob produced by the protocol layer
/// (for FSR: delivered watermark, sequenced-undelivered pairs, own pending
/// messages).
struct FlushState {
  ViewId proposed = 0;
  NodeId from = kNoNode;
  Bytes state;
};

/// Phase one of the two-phase install: the coordinator distributes the
/// agreed view and every member's recovery blob. Receivers STAGE the union
/// (absorb the records so any later flush re-exports them) and ack — they
/// must not deliver yet: delivering before every participant stored the
/// union would break uniformity if the coordinator and the early receiver
/// both crash.
struct ViewInstall {
  ViewId view = 0;
  std::vector<NodeId> members;
  std::vector<NodeId> state_owners;
  std::vector<Bytes> states;  // parallel to state_owners
};

/// A participant's acknowledgment that it staged the install.
struct InstallAck {
  ViewId view = 0;
  NodeId from = kNoNode;
};

/// Phase two: every participant staged the union; deliver and switch views.
struct CommitView {
  ViewId view = 0;
};

struct JoinReq {
  NodeId node = kNoNode;
};

/// Relays a locally detected crash to members without a direct connection
/// to the dead process (on TCP only direct peers observe the reset; the
/// simulator's perfect failure detector notifies everyone natively).
struct CrashReport {
  NodeId node = kNoNode;
};

struct LeaveReq {
  NodeId node = kNoNode;
};

using WireMsg = std::variant<DataMsg, SeqMsg, AckMsg, GcMsg, TokenMsg, Heartbeat, FlushReq,
                             FlushState, ViewInstall, InstallAck, CommitView, JoinReq,
                             LeaveReq, CrashReport>;

/// Unit of transmission between two directly connected processes. `group`
/// names the ordering domain the messages belong to; multiplexed deployments
/// (sharded rings) dispatch inbound frames to the owning protocol instance
/// by this field, single-ring deployments leave it 0.
struct Frame {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  GroupId group = 0;
  std::vector<WireMsg> msgs;
};

/// True if the message carries a (possibly large) payload; ack/control
/// messages are the small ones eligible for piggybacking.
bool carries_payload(const WireMsg& msg);

const char* wire_msg_name(const WireMsg& msg);

}  // namespace fsr
