// Client-facing wire protocol of the gateway subsystem: the frame family a
// client speaks to any replica (over a gateway TCP connection or the sim
// harness). It is deliberately separate from the intra-cluster WireMsg
// family — clients are untrusted, so every field is varint-hardened and a
// version byte leads every frame (see client_codec.h).
//
// Exactly-once contract: a client owns a session (its client_id) and
// numbers commands 1, 2, 3, ... (session_seq). The gateway TO-broadcasts
// the request as a *gateway envelope*; every replica executes an envelope
// only when its session_seq is the session's next, so duplicate retries —
// including retries redirected to a different replica after a crash — are
// suppressed at delivery time and answered from the session's reply cache.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "proto/wire.h"

namespace fsr {

inline constexpr std::uint8_t kClientProtoVersion = 1;

/// First byte of every TO-broadcast gateway envelope. Applications sharing a
/// gateway-fronted group must not start raw commands with this byte (the
/// KvStore/Bank opcodes are all < 0x10; the whole 0xC5..0xC8 family below is
/// reserved for the gateway).
inline constexpr std::uint8_t kEnvelopeMagic = 0xC5;

/// A coalesced batch of gateway envelopes: [0xC6] followed by back-to-back
/// self-delimiting sub-envelopes (each starting 0xC5 or 0xC7). The gateway
/// accumulates many small client requests into one of these per broadcast —
/// the inverse of the engine's segmentation — so per-broadcast ring costs
/// amortize over every command in the batch.
inline constexpr std::uint8_t kBatchEnvelopeMagic = 0xC6;

/// An ordered read riding the TO-stream: [0xC7][varint client_id]
/// [varint read_seq][varint len][query]. Broadcast when a replica cannot
/// serve a read locally (no valid sequencer lease); answered at delivery by
/// the replica that admitted it. Deterministically read-only on every
/// replica.
inline constexpr std::uint8_t kReadEnvelopeMagic = 0xC7;

/// A sequencer lease grant riding the TO-stream: [0xC8][varint view_id]
/// [varint duration_ns]. Broadcast by the leader; each replica that delivers
/// it may serve reads locally until delivery-time + duration, as long as the
/// grant's view is still the installed view and no flush is in progress.
inline constexpr std::uint8_t kLeaseEnvelopeMagic = 0xC8;

enum class ClientStatus : std::uint8_t {
  kOk = 0,              ///< executed; reply attached
  kRejectedWindow = 1,  ///< session window + queue full; resend later
  kRejectedBytes = 2,   ///< gateway byte budget exhausted; resend later
  kNotMember = 3,       ///< replica not (yet) in a group view; try another
  kBadRequest = 4,      ///< malformed frame or out-of-order session_seq
};

const char* client_status_name(ClientStatus s);

/// Opens (or re-binds after reconnect) a session on this connection.
struct ClientHello {
  std::uint64_t client_id = 0;
};

/// One replicated command. `command` is the opaque state-machine input;
/// `envelope` is set by the zero-copy decoder to the broadcast-ready
/// envelope bytes (kEnvelopeMagic .. end of command) aliasing the receive
/// buffer, so admitting a request never copies the payload.
struct ClientRequest {
  std::uint64_t client_id = 0;
  std::uint64_t session_seq = 0;
  Payload command;
  Payload envelope;
};

/// A read-only query answered by the local replica without broadcasting
/// (the paper's footnote 1: reads need not be totally ordered).
struct ClientRead {
  std::uint64_t client_id = 0;
  std::uint64_t read_seq = 0;  ///< echoed in the reply (not a session seq)
  Payload query;
};

struct ClientReply {
  std::uint64_t client_id = 0;
  std::uint64_t session_seq = 0;  ///< or the echoed read_seq for reads
  ClientStatus status = ClientStatus::kOk;
  bool duplicate = false;  ///< served from the session's reply cache
  Payload reply;
};

using ClientMsg = std::variant<ClientHello, ClientRequest, ClientRead, ClientReply>;

/// Unit of transmission on a client connection (length-prefixed on TCP).
struct ClientFrame {
  std::vector<ClientMsg> msgs;
};

/// A gateway envelope parsed back out of a TO-delivered payload.
struct GatewayCommand {
  std::uint64_t client_id = 0;
  std::uint64_t session_seq = 0;
  Payload command;  ///< aliases the delivered payload
};

/// An ordered-read envelope parsed back out of a TO-delivered payload.
struct GatewayReadCommand {
  std::uint64_t client_id = 0;
  std::uint64_t read_seq = 0;
  Payload query;  ///< aliases the delivered payload
};

/// A lease grant parsed back out of a TO-delivered payload.
struct LeaseGrant {
  std::uint64_t view_id = 0;
  std::int64_t duration = 0;  ///< nanoseconds from delivery time
};

}  // namespace fsr
