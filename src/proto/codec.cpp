#include "proto/codec.h"

namespace fsr {

using codec_detail::Tag;

bool carries_payload(const WireMsg& msg) {
  return std::holds_alternative<DataMsg>(msg) || std::holds_alternative<SeqMsg>(msg);
}

const char* wire_msg_name(const WireMsg& msg) {
  struct Namer {
    const char* operator()(const DataMsg&) { return "DATA"; }
    const char* operator()(const SeqMsg&) { return "SEQ"; }
    const char* operator()(const AckMsg&) { return "ACK"; }
    const char* operator()(const GcMsg&) { return "GC"; }
    const char* operator()(const TokenMsg&) { return "TOKEN"; }
    const char* operator()(const Heartbeat&) { return "HEARTBEAT"; }
    const char* operator()(const FlushReq&) { return "FLUSH_REQ"; }
    const char* operator()(const FlushState&) { return "FLUSH_STATE"; }
    const char* operator()(const ViewInstall&) { return "VIEW_INSTALL"; }
    const char* operator()(const InstallAck&) { return "INSTALL_ACK"; }
    const char* operator()(const CommitView&) { return "COMMIT_VIEW"; }
    const char* operator()(const JoinReq&) { return "JOIN_REQ"; }
    const char* operator()(const LeaveReq&) { return "LEAVE_REQ"; }
    const char* operator()(const CrashReport&) { return "CRASH_REPORT"; }
  };
  return std::visit(Namer{}, msg);
}

std::size_t wire_size(const WireMsg& msg) {
  CountingWriter w;
  encode_msg(w, msg);
  return w.size();
}

std::size_t wire_size(const Frame& frame) {
  CountingWriter w;
  encode_frame(w, frame);
  return w.size();
}

Bytes encode_frame(const Frame& frame) {
  ByteWriter w(wire_size(frame));
  encode_frame(w, frame);
  return w.take();
}

namespace {

/// Decode-time payload policy: with an owner, payloads alias the receive
/// buffer (zero-copy); without one they are copied into fresh storage.
struct DecodeCtx {
  const std::shared_ptr<const void>* owner = nullptr;  // null or empty => copy
  PayloadDecodeCounters* counters = nullptr;
};

MsgId get_msg_id(ByteReader& r) {
  MsgId id;
  id.origin = r.u32();
  id.lsn = r.var();
  return id;
}

// Largest segment count a single application message may claim. Caps what a
// malicious DATA stream can make the reassembly path retain (count *
// segment_size bytes) and rejects garbage headers early.
constexpr std::uint64_t kMaxFragCount = 1u << 20;

FragInfo get_frag(ByteReader& r) {
  FragInfo f;
  f.app_msg = r.var();
  std::uint64_t index = r.var();
  std::uint64_t count = r.var();
  if (count == 0 || count > kMaxFragCount) throw CodecError("bad fragment count");
  if (index >= count) throw CodecError("fragment index out of range");
  f.index = static_cast<std::uint32_t>(index);
  f.count = static_cast<std::uint32_t>(count);
  return f;
}

// GCC 12 emits a spurious -Wfree-nonheap-object here when it inlines the
// moved-from vector's destructor (GCC PR 104475 family); the code is a
// plain move of a heap-backed vector.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
Payload get_payload(ByteReader& r, const DecodeCtx& ctx) {
  std::span<const std::uint8_t> view = r.bytes_view();
  if (view.empty()) return nullptr;
  if (ctx.owner != nullptr && *ctx.owner != nullptr) {
    if (ctx.counters != nullptr) ++ctx.counters->aliased;
    return Payload{*ctx.owner, view};
  }
  if (ctx.counters != nullptr) {
    ++ctx.counters->copied;
    ctx.counters->copied_bytes += view.size();
  }
  return make_payload(Bytes(view.begin(), view.end()));
}
#pragma GCC diagnostic pop

std::vector<NodeId> get_node_list(ByteReader& r) {
  std::uint64_t n = r.var();
  if (n > r.remaining() / 4) throw CodecError("node list too long");
  std::vector<NodeId> nodes(static_cast<std::size_t>(n));
  for (auto& node : nodes) node = r.u32();
  return nodes;
}

WireMsg decode_msg(ByteReader& r, const DecodeCtx& ctx) {
  auto tag = static_cast<Tag>(r.u8());
  switch (tag) {
    case Tag::kData: {
      DataMsg m;
      m.id = get_msg_id(r);
      m.view = r.var();
      m.frag = get_frag(r);
      m.payload = get_payload(r, ctx);
      return m;
    }
    case Tag::kSeq: {
      SeqMsg m;
      m.id = get_msg_id(r);
      m.seq = r.var();
      m.view = r.var();
      m.frag = get_frag(r);
      m.payload = get_payload(r, ctx);
      return m;
    }
    case Tag::kAck: {
      AckMsg m;
      m.id = get_msg_id(r);
      m.seq = r.var();
      m.view = r.var();
      m.stable = r.u8() != 0;
      return m;
    }
    case Tag::kGc: {
      GcMsg m;
      m.all_delivered = r.var();
      m.view = r.var();
      m.hops_left = static_cast<std::uint32_t>(r.var());
      return m;
    }
    case Tag::kToken: {
      TokenMsg m;
      m.next_seq = r.var();
      m.view = r.var();
      m.idle_laps = static_cast<std::uint32_t>(r.var());
      std::uint64_t n = r.var();
      if (n > r.remaining()) throw CodecError("token ack list too long");
      m.acked.resize(static_cast<std::size_t>(n));
      for (auto& a : m.acked) a = r.var();
      return m;
    }
    case Tag::kHeartbeat: {
      Heartbeat m;
      m.view = r.var();
      return m;
    }
    case Tag::kFlushReq: {
      FlushReq m;
      m.proposed = r.var();
      m.members = get_node_list(r);
      m.want_snapshot = r.u8() != 0;
      return m;
    }
    case Tag::kFlushState: {
      FlushState m;
      m.proposed = r.var();
      m.from = r.u32();
      m.state = r.bytes();
      return m;
    }
    case Tag::kViewInstall: {
      ViewInstall m;
      m.view = r.var();
      m.members = get_node_list(r);
      m.state_owners = get_node_list(r);
      std::uint64_t n = r.var();
      if (n > r.remaining()) throw CodecError("state list too long");
      m.states.resize(static_cast<std::size_t>(n));
      for (auto& s : m.states) s = r.bytes();
      return m;
    }
    case Tag::kInstallAck: {
      InstallAck m;
      m.view = r.var();
      m.from = r.u32();
      return m;
    }
    case Tag::kCommitView: {
      CommitView m;
      m.view = r.var();
      return m;
    }
    case Tag::kJoinReq: {
      JoinReq m;
      m.node = r.u32();
      return m;
    }
    case Tag::kLeaveReq: {
      LeaveReq m;
      m.node = r.u32();
      return m;
    }
    case Tag::kCrashReport: {
      CrashReport m;
      m.node = r.u32();
      return m;
    }
  }
  throw CodecError("unknown message tag");
}

Frame decode_frame_ctx(std::span<const std::uint8_t> data, const DecodeCtx& ctx) {
  ByteReader r(data);
  Frame f;
  f.from = r.u32();
  f.to = r.u32();
  f.group = static_cast<GroupId>(r.var());
  std::uint64_t n = r.var();
  if (n > r.remaining()) throw CodecError("message count too long");
  f.msgs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) f.msgs.push_back(decode_msg(r, ctx));
  if (!r.done()) throw CodecError("trailing bytes after frame");
  return f;
}

}  // namespace

WireMsg decode_msg(ByteReader& r) { return decode_msg(r, DecodeCtx{}); }

Frame decode_frame(std::span<const std::uint8_t> data) {
  return decode_frame_ctx(data, DecodeCtx{});
}

Frame decode_frame(std::span<const std::uint8_t> data,
                   const std::shared_ptr<const void>& owner,
                   PayloadDecodeCounters* counters) {
  return decode_frame_ctx(data, DecodeCtx{&owner, counters});
}

}  // namespace fsr
