// Wire codec: Frame <-> bytes. encode() is templated over a Sink so the same
// serialization logic drives both the real byte encoder (TCP transport) and
// a counting sink (the simulator's frame-size model) — the two can never
// drift apart, which a round-trip + size-agreement test also enforces.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "proto/wire.h"

namespace fsr {

/// Sink that only measures; mirrors the ByteWriter interface.
class CountingWriter {
 public:
  void u8(std::uint8_t) { ++n_; }
  void u16(std::uint16_t) { n_ += 2; }
  void u32(std::uint32_t) { n_ += 4; }
  void u64(std::uint64_t) { n_ += 8; }
  void var(std::uint64_t v) {
    ++n_;
    while (v >= 0x80) {
      ++n_;
      v >>= 7;
    }
  }
  void raw(std::span<const std::uint8_t> d) { n_ += d.size(); }
  void bytes(std::span<const std::uint8_t> d) {
    var(d.size());
    n_ += d.size();
  }
  void str(std::string_view s) {
    var(s.size());
    n_ += s.size();
  }
  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
};

namespace codec_detail {

template <typename Sink>
void put_msg_id(Sink& w, const MsgId& id) {
  w.u32(id.origin);
  w.var(id.lsn);
}

template <typename Sink>
void put_frag(Sink& w, const FragInfo& f) {
  w.var(f.app_msg);
  w.var(f.index);
  w.var(f.count);
}

template <typename Sink>
void put_payload(Sink& w, const Payload& p) {
  if (p) {
    w.var(p.size());
    // Sinks that can transmit by reference (scatter-gather transports) take
    // the payload view itself instead of copying the bytes into the buffer.
    if constexpr (requires { w.raw_ref(p); }) {
      w.raw_ref(p);
    } else {
      w.raw(p.span());
    }
  } else {
    w.var(0);
  }
}

template <typename Sink>
void put_node_list(Sink& w, const std::vector<NodeId>& nodes) {
  w.var(nodes.size());
  for (NodeId n : nodes) w.u32(n);
}

enum class Tag : std::uint8_t {
  kData = 1,
  kSeq = 2,
  kAck = 3,
  kHeartbeat = 4,
  kFlushReq = 5,
  kFlushState = 6,
  kViewInstall = 7,
  kJoinReq = 8,
  kLeaveReq = 9,
  kGc = 10,
  kCrashReport = 11,
  kToken = 12,
  kInstallAck = 13,
  kCommitView = 14,
};

template <typename Sink>
struct MsgEncoder {
  Sink& w;

  void operator()(const DataMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kData));
    put_msg_id(w, m.id);
    w.var(m.view);
    put_frag(w, m.frag);
    put_payload(w, m.payload);
  }
  void operator()(const SeqMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kSeq));
    put_msg_id(w, m.id);
    w.var(m.seq);
    w.var(m.view);
    put_frag(w, m.frag);
    put_payload(w, m.payload);
  }
  void operator()(const AckMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kAck));
    put_msg_id(w, m.id);
    w.var(m.seq);
    w.var(m.view);
    w.u8(m.stable ? 1 : 0);
  }
  void operator()(const GcMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kGc));
    w.var(m.all_delivered);
    w.var(m.view);
    w.var(m.hops_left);
  }
  void operator()(const TokenMsg& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kToken));
    w.var(m.next_seq);
    w.var(m.view);
    w.var(m.idle_laps);
    w.var(m.acked.size());
    for (GlobalSeq a : m.acked) w.var(a);
  }
  void operator()(const Heartbeat& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kHeartbeat));
    w.var(m.view);
  }
  void operator()(const FlushReq& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kFlushReq));
    w.var(m.proposed);
    put_node_list(w, m.members);
    w.u8(m.want_snapshot ? 1 : 0);
  }
  void operator()(const FlushState& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kFlushState));
    w.var(m.proposed);
    w.u32(m.from);
    w.bytes(m.state);
  }
  void operator()(const ViewInstall& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kViewInstall));
    w.var(m.view);
    put_node_list(w, m.members);
    put_node_list(w, m.state_owners);
    w.var(m.states.size());
    for (const auto& s : m.states) w.bytes(s);
  }
  void operator()(const InstallAck& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kInstallAck));
    w.var(m.view);
    w.u32(m.from);
  }
  void operator()(const CommitView& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kCommitView));
    w.var(m.view);
  }
  void operator()(const JoinReq& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kJoinReq));
    w.u32(m.node);
  }
  void operator()(const LeaveReq& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kLeaveReq));
    w.u32(m.node);
  }
  void operator()(const CrashReport& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kCrashReport));
    w.u32(m.node);
  }
};

}  // namespace codec_detail

template <typename Sink>
void encode_msg(Sink& w, const WireMsg& msg) {
  std::visit(codec_detail::MsgEncoder<Sink>{w}, msg);
}

template <typename Sink>
void encode_frame(Sink& w, const Frame& frame) {
  w.u32(frame.from);
  w.u32(frame.to);
  w.var(frame.group);
  w.var(frame.msgs.size());
  for (const auto& m : frame.msgs) encode_msg(w, m);
}

/// Encoded size in bytes without materializing the encoding.
std::size_t wire_size(const WireMsg& msg);
std::size_t wire_size(const Frame& frame);

Bytes encode_frame(const Frame& frame);

/// How decode_frame produced the payloads of DATA/SEQ messages: aliased
/// (zero-copy views into the caller's buffer) vs copied out of it.
struct PayloadDecodeCounters {
  std::uint64_t aliased = 0;
  std::uint64_t copied = 0;
  std::uint64_t copied_bytes = 0;
};

/// Throws CodecError on malformed input.
Frame decode_frame(std::span<const std::uint8_t> data);

/// Zero-copy decode: payloads are returned as views sharing `owner`, which
/// must keep `data`'s storage alive (e.g. the transport's receive chunk).
/// With a null owner payloads are copied, as in the plain overload.
Frame decode_frame(std::span<const std::uint8_t> data,
                   const std::shared_ptr<const void>& owner,
                   PayloadDecodeCounters* counters = nullptr);

WireMsg decode_msg(ByteReader& r);

}  // namespace fsr
