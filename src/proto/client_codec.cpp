#include "proto/client_codec.h"

#include <limits>

#include "proto/codec.h"

namespace fsr {

namespace {

using client_codec_detail::Tag;

/// Sanity cap on messages per client frame: a frame is one TCP read, and a
/// hostile length field must not provoke a giant allocation.
constexpr std::uint64_t kMaxMsgsPerFrame = 1024;

template <typename Sink>
struct ClientMsgEncoder {
  Sink& w;

  void operator()(const ClientHello& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kHello));
    w.var(m.client_id);
  }
  void operator()(const ClientRequest& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kRequest));
    // The request body from the magic byte onward IS the gateway envelope:
    // the decoder hands it back as one aliasing view, so admitting the
    // request broadcasts these exact bytes without a copy.
    w.u8(kEnvelopeMagic);
    w.var(m.client_id);
    w.var(m.session_seq);
    w.var(m.command.size());
    w.raw(m.command.span());
  }
  void operator()(const ClientRead& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kRead));
    w.var(m.client_id);
    w.var(m.read_seq);
    w.var(m.query.size());
    w.raw(m.query.span());
  }
  void operator()(const ClientReply& m) {
    w.u8(static_cast<std::uint8_t>(Tag::kReply));
    w.var(m.client_id);
    w.var(m.session_seq);
    w.u8(static_cast<std::uint8_t>(m.status));
    w.u8(m.duplicate ? 1 : 0);
    w.var(m.reply.size());
    w.raw(m.reply.span());
  }
};

template <typename Sink>
void encode_client_frame_to(Sink& w, const ClientFrame& frame) {
  w.u8(kClientProtoVersion);
  w.var(frame.msgs.size());
  for (const auto& m : frame.msgs) std::visit(ClientMsgEncoder<Sink>{w}, m);
}

/// Length-prefixed bytes as a Payload: aliasing view when `owner` is set,
/// otherwise an owned copy.
Payload read_payload(ByteReader& r, const std::shared_ptr<const void>& owner) {
  std::span<const std::uint8_t> view = r.bytes_view();
  if (owner) return Payload{owner, view};
  return make_payload(Bytes(view.begin(), view.end()));
}

ClientStatus read_status(ByteReader& r) {
  std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(ClientStatus::kBadRequest)) {
    throw CodecError("client frame: unknown status code");
  }
  return static_cast<ClientStatus>(raw);
}

}  // namespace

const char* client_status_name(ClientStatus s) {
  switch (s) {
    case ClientStatus::kOk:
      return "ok";
    case ClientStatus::kRejectedWindow:
      return "rejected-window";
    case ClientStatus::kRejectedBytes:
      return "rejected-bytes";
    case ClientStatus::kNotMember:
      return "not-member";
    case ClientStatus::kBadRequest:
      return "bad-request";
  }
  return "unknown";
}

std::size_t client_wire_size(const ClientFrame& frame) {
  CountingWriter w;
  encode_client_frame_to(w, frame);
  return w.size();
}

Bytes encode_client_frame(const ClientFrame& frame) {
  ByteWriter w(client_wire_size(frame));
  encode_client_frame_to(w, frame);
  return w.take();
}

ClientFrame decode_client_frame(std::span<const std::uint8_t> data,
                                const std::shared_ptr<const void>& owner) {
  ByteReader r(data);
  std::uint8_t version = r.u8();
  if (version != kClientProtoVersion) {
    throw CodecError("client frame: unsupported protocol version " +
                     std::to_string(version));
  }
  std::uint64_t count = r.var();
  if (count > kMaxMsgsPerFrame) {
    throw CodecError("client frame: message count exceeds frame cap");
  }
  ClientFrame frame;
  frame.msgs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    auto tag = static_cast<Tag>(r.u8());
    switch (tag) {
      case Tag::kHello: {
        ClientHello m;
        m.client_id = r.var();
        frame.msgs.emplace_back(m);
        break;
      }
      case Tag::kRequest: {
        // The envelope starts at the magic byte: remember the offset so the
        // whole [magic .. command end) range can be returned as one view.
        std::size_t env_begin = data.size() - r.remaining();
        if (r.u8() != kEnvelopeMagic) {
          throw CodecError("client frame: request missing envelope magic");
        }
        ClientRequest m;
        m.client_id = r.var();
        m.session_seq = r.var();
        m.command = read_payload(r, owner);
        std::size_t env_end = data.size() - r.remaining();
        std::span<const std::uint8_t> env = data.subspan(env_begin, env_end - env_begin);
        m.envelope = owner ? Payload{owner, env}
                           : make_payload(Bytes(env.begin(), env.end()));
        frame.msgs.emplace_back(std::move(m));
        break;
      }
      case Tag::kRead: {
        ClientRead m;
        m.client_id = r.var();
        m.read_seq = r.var();
        m.query = read_payload(r, owner);
        frame.msgs.emplace_back(std::move(m));
        break;
      }
      case Tag::kReply: {
        ClientReply m;
        m.client_id = r.var();
        m.session_seq = r.var();
        m.status = read_status(r);
        m.duplicate = r.u8() != 0;
        m.reply = read_payload(r, owner);
        frame.msgs.emplace_back(std::move(m));
        break;
      }
      default:
        throw CodecError("client frame: unknown message tag");
    }
  }
  if (!r.done()) throw CodecError("client frame: trailing bytes");
  return frame;
}

Bytes encode_envelope(std::uint64_t client_id, std::uint64_t session_seq,
                      std::span<const std::uint8_t> command) {
  ByteWriter w(command.size() + 24);
  w.u8(kEnvelopeMagic);
  w.var(client_id);
  w.var(session_seq);
  w.var(command.size());
  w.raw(command);
  return w.take();
}

Bytes encode_read_envelope(std::uint64_t client_id, std::uint64_t read_seq,
                           std::span<const std::uint8_t> query) {
  ByteWriter w(query.size() + 24);
  w.u8(kReadEnvelopeMagic);
  w.var(client_id);
  w.var(read_seq);
  w.var(query.size());
  w.raw(query);
  return w.take();
}

std::optional<GatewayReadCommand> parse_read_envelope(const Payload& delivered) {
  if (!delivered || delivered.empty() || *delivered.data() != kReadEnvelopeMagic) {
    return std::nullopt;
  }
  ByteReader r(delivered.span());
  r.u8();  // magic, checked above
  GatewayReadCommand cmd;
  cmd.client_id = r.var();
  cmd.read_seq = r.var();
  std::span<const std::uint8_t> view = r.bytes_view();
  std::size_t off = static_cast<std::size_t>(view.data() - delivered.data());
  cmd.query = delivered.sub(off, view.size());
  if (!r.done()) throw CodecError("gateway read envelope: trailing bytes");
  return cmd;
}

Bytes encode_lease_envelope(std::uint64_t view_id, std::int64_t duration) {
  if (duration < 0) duration = 0;
  ByteWriter w(24);
  w.u8(kLeaseEnvelopeMagic);
  w.var(view_id);
  w.var(static_cast<std::uint64_t>(duration));
  return w.take();
}

std::optional<LeaseGrant> parse_lease_envelope(const Payload& delivered) {
  if (!delivered || delivered.empty() || *delivered.data() != kLeaseEnvelopeMagic) {
    return std::nullopt;
  }
  ByteReader r(delivered.span());
  r.u8();  // magic, checked above
  LeaseGrant grant;
  grant.view_id = r.var();
  std::uint64_t dur = r.var();
  if (dur > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    throw CodecError("gateway lease envelope: duration overflows Time");
  }
  grant.duration = static_cast<std::int64_t>(dur);
  if (!r.done()) throw CodecError("gateway lease envelope: trailing bytes");
  return grant;
}

std::optional<std::vector<Payload>> parse_batch_envelope(const Payload& delivered) {
  if (!delivered || delivered.empty() ||
      *delivered.data() != kBatchEnvelopeMagic) {
    return std::nullopt;
  }
  std::span<const std::uint8_t> data = delivered.span();
  std::vector<Payload> subs;
  std::size_t off = 1;
  while (off < data.size()) {
    const std::uint8_t magic = data[off];
    if (magic != kEnvelopeMagic && magic != kReadEnvelopeMagic) {
      throw CodecError("gateway batch: unknown sub-envelope magic");
    }
    // Every sub-envelope shares the [magic][varint][varint][varint len][len
    // bytes] shape, so one scan delimits both kinds.
    ByteReader r(data.subspan(off));
    r.u8();
    r.var();
    r.var();
    std::uint64_t len = r.var();
    if (len > r.remaining()) {
      throw CodecError("gateway batch: sub-envelope length overruns batch");
    }
    std::size_t header = data.size() - off - r.remaining();
    std::size_t sub_len = header + static_cast<std::size_t>(len);
    subs.push_back(delivered.sub(off, sub_len));
    off += sub_len;
  }
  if (subs.empty()) throw CodecError("gateway batch: empty batch");
  return subs;
}

void EnvelopeBatch::append(const Payload& envelope) {
  if (buf_.empty()) {
    buf_.reserve(1024);
    buf_.push_back(kBatchEnvelopeMagic);
  }
  buf_.insert(buf_.end(), envelope.begin(), envelope.end());
  ++count_;
}

Payload EnvelopeBatch::take() {
  Payload out;
  if (count_ == 1) {
    // Unwrap: skip the batch magic, ship the lone envelope as itself.
    Bytes one(buf_.begin() + 1, buf_.end());
    out = make_payload(std::move(one));
  } else if (count_ > 1) {
    out = make_payload(std::move(buf_));
  }
  buf_ = Bytes{};
  count_ = 0;
  return out;
}

std::optional<GatewayCommand> parse_envelope(const Payload& delivered) {
  if (!delivered || delivered.empty() || *delivered.data() != kEnvelopeMagic) {
    return std::nullopt;
  }
  ByteReader r(delivered.span());
  r.u8();  // magic, checked above
  GatewayCommand cmd;
  cmd.client_id = r.var();
  cmd.session_seq = r.var();
  std::span<const std::uint8_t> view = r.bytes_view();
  std::size_t off = static_cast<std::size_t>(view.data() - delivered.data());
  cmd.command = delivered.sub(off, view.size());
  if (!r.done()) throw CodecError("gateway envelope: trailing bytes");
  return cmd;
}

}  // namespace fsr
