// Codec for the client-facing frame family (client_wire.h). Mirrors the
// intra-cluster codec's discipline: a templated encoder over a Sink (real
// writer and counting writer can never drift), varint-hardened decoding via
// ByteReader, and zero-copy payload decode — command/query/reply bytes come
// back as views sharing the caller's receive chunk.
#pragma once

#include <memory>
#include <optional>

#include "common/bytes.h"
#include "proto/client_wire.h"

namespace fsr {

namespace client_codec_detail {

enum class Tag : std::uint8_t {
  kHello = 1,
  kRequest = 2,
  kRead = 3,
  kReply = 4,
};

}  // namespace client_codec_detail

/// Encoded size of a frame without materializing it.
std::size_t client_wire_size(const ClientFrame& frame);

/// version byte + message list. Payload-bearing fields are written inline
/// (client frames are small; the zero-copy discipline matters on the decode
/// and broadcast side, not here).
Bytes encode_client_frame(const ClientFrame& frame);

/// Throws CodecError on malformed or version-mismatched input. With a
/// non-null `owner` (which must keep `data`'s storage alive), command /
/// query / reply bytes and the request's broadcast-ready `envelope` are
/// returned as aliasing views; with a null owner they are copied.
ClientFrame decode_client_frame(std::span<const std::uint8_t> data,
                                const std::shared_ptr<const void>& owner = nullptr);

/// Build a gateway envelope from scratch (sim clients and tests; the TCP
/// path gets envelopes for free as views into the request frame).
Bytes encode_envelope(std::uint64_t client_id, std::uint64_t session_seq,
                      std::span<const std::uint8_t> command);

/// Parse a TO-delivered payload as a gateway envelope. Returns nullopt when
/// the payload is not an envelope (first byte != kEnvelopeMagic) — such
/// deliveries are plain application commands. Throws CodecError when the
/// magic matches but the envelope is malformed.
std::optional<GatewayCommand> parse_envelope(const Payload& delivered);

/// Build an ordered-read envelope (kReadEnvelopeMagic framing).
Bytes encode_read_envelope(std::uint64_t client_id, std::uint64_t read_seq,
                           std::span<const std::uint8_t> query);

/// Parse a TO-delivered payload as an ordered-read envelope. nullopt when the
/// first byte is not kReadEnvelopeMagic; CodecError when it is but the rest
/// is malformed.
std::optional<GatewayReadCommand> parse_read_envelope(const Payload& delivered);

/// Build a lease-grant envelope (kLeaseEnvelopeMagic framing).
Bytes encode_lease_envelope(std::uint64_t view_id, std::int64_t duration);

/// Parse a TO-delivered payload as a lease grant. Same nullopt/throw contract
/// as the other envelope parsers.
std::optional<LeaseGrant> parse_lease_envelope(const Payload& delivered);

/// Split a TO-delivered coalesced batch (kBatchEnvelopeMagic) into its
/// sub-envelope views, each aliasing `delivered` and starting with
/// kEnvelopeMagic or kReadEnvelopeMagic, in admission order. nullopt when the
/// first byte is not the batch magic; CodecError on an empty batch, an
/// unknown sub-envelope magic, or a truncated/overflowing sub-envelope.
std::optional<std::vector<Payload>> parse_batch_envelope(const Payload& delivered);

/// Accumulates admitted envelopes into one broadcast-ready batch payload.
/// Appends copy the (small) envelope bytes into the batch's contiguous
/// buffer — the one copy that buys a whole batch a single ring slot.
class EnvelopeBatch {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t count() const { return count_; }
  /// Bytes the flushed payload would occupy (magic byte included).
  std::size_t bytes() const { return buf_.size(); }

  void append(const Payload& envelope);

  /// The finished batch as one payload; resets the builder. A single-entry
  /// batch is emitted unwrapped (plain 0xC5/0xC7 envelope) — no batch
  /// framing overhead when coalescing found nothing to coalesce.
  Payload take();

 private:
  Bytes buf_;
  std::size_t count_ = 0;
};

}  // namespace fsr
