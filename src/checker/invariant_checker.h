// Mechanical checker for the paper's TO-broadcast properties (§3-§4),
// shared by the simulated and the real-TCP harnesses. The harness feeds
// every submission (on_broadcast) and every delivery (on_delivery); the
// checker validates online — at the moment of the event — what can be
// validated incrementally, and offers full-trace passes for the rest:
//
//   online   per-(node, group) global-sequence monotonicity (no regressions,
//            no duplicate seqs), per-(node, group) view monotonicity,
//            at-most-once delivery of each (group, origin, app_msg),
//            cross-node agreement on what identity each (group, seq)
//            carries (two nodes delivering different messages under one seq
//            is an order violation the instant the second delivery
//            happens), payload-hash integrity against the recorded
//            submission, and cross-group sequence aliasing (a delivery in a
//            group its message was never submitted to).
//   offline  pairwise total order over common subsequences, agreement
//            (identical logs among correct processes), uniformity (every
//            crashed process's log is a prefix of every correct one's),
//            and per-origin FIFO/no-gap delivery — each applied per group;
//            ordering across groups is deliberately unconstrained.
//
// All feed methods are thread-safe: the TCP harness calls them from n
// I/O threads concurrently. Violations are sticky — once a run trips any
// check, online_violation() reports the first one forever, so soak tests
// and benches fail loudly even if later events look consistent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "common/types.h"

namespace fsr {

/// One TO-delivery as observed at a process.
struct DeliveryRecord {
  NodeId node = kNoNode;    // delivering process
  GroupId group = 0;        // ordering domain the seq belongs to
  NodeId origin = kNoNode;  // broadcaster
  std::uint64_t app_msg = 0;
  GlobalSeq seq = 0;
  ViewId view = 0;
  std::uint64_t payload_hash = 0;
  std::size_t bytes = 0;
  Time at = 0;
};

struct CheckerConfig {
  /// Deliveries of (origin, app_msg) pairs never announced via
  /// on_broadcast() are integrity violations. Disable for harnesses that
  /// cannot observe submissions.
  bool require_known_broadcasts = true;

  /// Treat a per-origin app_msg gap (m5 delivered after m3 with m4 missing)
  /// as a violation in check_all(). FIFO order itself is always checked.
  bool require_gap_free_origins = true;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(std::size_t n, CheckerConfig config = {});

  // --- event feed (thread-safe) ---

  /// Record a submission; later deliveries of (group, origin, app_msg) must
  /// carry this payload hash. The 3-arg overload records against group 0.
  void on_broadcast(GroupId group, NodeId origin, std::uint64_t app_msg,
                    std::uint64_t payload_hash);
  void on_broadcast(NodeId origin, std::uint64_t app_msg, std::uint64_t payload_hash) {
    on_broadcast(GroupId{0}, origin, app_msg, payload_hash);
  }

  /// Record a delivery and run every online check against it.
  void on_delivery(const DeliveryRecord& rec);

  /// Mark a process crashed (it becomes subject to the uniformity check and
  /// exempt from agreement).
  void note_crashed(NodeId node);

  /// Per-event provenance: `fn` is invoked (under the feed lock — it must
  /// not call back into the checker) whenever an online check records a
  /// violation, and its result is appended to the message. The fault-
  /// injection harness uses this to tag the first violation with the fault
  /// event and virtual time that triggered it, so a swarm failure reads
  /// "what broke" and "right after which injected fault" in one line.
  void set_context_provider(std::function<std::string()> fn);

  // --- queries ---

  std::size_t n() const { return n_; }
  std::uint64_t deliveries() const;
  std::set<NodeId> crashed() const;
  std::vector<DeliveryRecord> log(NodeId node) const;
  /// A node's deliveries restricted to one ordering domain.
  std::vector<DeliveryRecord> log(NodeId node, GroupId group) const;
  /// Every group that appeared in any submission or delivery so far.
  std::set<GroupId> groups_seen() const;

  /// First violation any online check detected, or "" if none so far.
  std::string online_violation() const;

  // --- full-trace passes: empty string means the property holds ---

  /// Total order: every pair of logs agrees on the order and identity of
  /// common deliveries (each is a prefix-consistent subsequence).
  std::string check_total_order() const;

  /// Agreement: all nodes in `correct` have identical logs.
  std::string check_agreement(const std::set<NodeId>& correct) const;

  /// Integrity: no duplicates, every delivery was broadcast, hashes match.
  std::string check_integrity() const;

  /// Uniformity: every crashed node's log is a prefix of every correct
  /// node's log (whatever a failed process delivered, all deliver).
  std::string check_uniformity(const std::set<NodeId>& crashed,
                               const std::set<NodeId>& correct) const;

  /// Per-origin FIFO: each node's deliveries from one origin have strictly
  /// increasing, gap-free app_msg counters.
  std::string check_fifo() const;

  /// Every property at once, online findings included (correct = every
  /// node not marked crashed).
  std::string check_all() const;

 private:
  struct Identity {
    NodeId origin;
    std::uint64_t app_msg;
    std::uint64_t payload_hash;
    friend bool operator==(const Identity&, const Identity&) = default;
  };

  /// (group, origin, app_msg): the unit of message identity. Sequence spaces
  /// and submission counters are independent per group, so every check keys
  /// on the group first.
  using MsgKey = std::tuple<GroupId, NodeId, std::uint64_t>;

  void record_violation(std::string what) FSR_REQUIRES(mutex_);
  std::string check_total_order_locked() const FSR_REQUIRES(mutex_);
  std::string check_agreement_locked(const std::set<NodeId>& correct) const FSR_REQUIRES(mutex_);
  std::string check_integrity_locked() const FSR_REQUIRES(mutex_);
  std::string check_uniformity_locked(const std::set<NodeId>& crashed,
                                      const std::set<NodeId>& correct) const
      FSR_REQUIRES(mutex_);
  std::string check_fifo_locked(bool require_gap_free) const FSR_REQUIRES(mutex_);
  std::set<GroupId> groups_in_logs_locked() const FSR_REQUIRES(mutex_);

  std::size_t n_;
  CheckerConfig cfg_;

  mutable Mutex mutex_;
  std::vector<std::vector<DeliveryRecord>> logs_ FSR_GUARDED_BY(mutex_);
  std::vector<std::map<std::pair<GroupId, NodeId>, std::uint64_t>> last_app_
      FSR_GUARDED_BY(mutex_);  // per node: (group, origin) -> app_msg
  std::vector<std::map<GroupId, std::pair<GlobalSeq, ViewId>>> last_seq_view_
      FSR_GUARDED_BY(mutex_);  // per node: group -> (seq, view) watermark
  std::map<MsgKey, std::uint64_t> submitted_
      FSR_GUARDED_BY(mutex_);  // -> hash
  std::map<std::pair<NodeId, std::uint64_t>, std::set<GroupId>> submitted_groups_
      FSR_GUARDED_BY(mutex_);  // which group(s) an identity was submitted in
  std::map<std::pair<GroupId, GlobalSeq>, Identity> seq_identity_
      FSR_GUARDED_BY(mutex_);  // per-group global seq -> message
  std::set<NodeId> crashed_ FSR_GUARDED_BY(mutex_);
  std::uint64_t deliveries_ FSR_GUARDED_BY(mutex_) = 0;
  std::string first_violation_ FSR_GUARDED_BY(mutex_);
  std::function<std::string()> context_ FSR_GUARDED_BY(mutex_);
};

/// Render a (origin, app_msg) pair the way every checker message does.
std::string describe_msg(NodeId origin, std::uint64_t app_msg);

}  // namespace fsr
