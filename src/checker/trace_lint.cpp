#include "checker/trace_lint.h"

#include <algorithm>
#include <set>

namespace fsr {

std::string LintReport::summary() const {
  std::string s = "origins=" + std::to_string(per_origin.size()) +
                  " worst_window_share=" + std::to_string(worst_window_share) +
                  " longest_run=" + std::to_string(longest_run) +
                  " jain=" + std::to_string(jain_index);
  for (const auto& v : violations) s += "\n  violation: " + v;
  return s;
}

LintReport lint_trace(const std::vector<DeliveryRecord>& log, const LintConfig& cfg) {
  LintReport rep;
  for (const auto& e : log) rep.per_origin[e.origin]++;

  // Jain's index over per-origin totals.
  if (!rep.per_origin.empty()) {
    double sum = 0.0, sumsq = 0.0;
    for (const auto& [origin, count] : rep.per_origin) {
      auto x = static_cast<double>(count);
      sum += x;
      sumsq += x * x;
    }
    rep.jain_index = sumsq > 0.0
                         ? (sum * sum) / (static_cast<double>(rep.per_origin.size()) * sumsq)
                         : 1.0;
  }

  // Sliding fairness window: within any stretch of `fairness_window`
  // deliveries where enough origins are active, measure the dominant
  // origin's share and the longest single-origin run.
  const std::size_t w = cfg.fairness_window;
  if (w >= 2 && log.size() >= w) {
    std::map<NodeId, std::size_t> in_window;
    for (std::size_t i = 0; i < log.size(); ++i) {
      in_window[log[i].origin]++;
      if (i >= w) {
        auto it = in_window.find(log[i - w].origin);
        if (--it->second == 0) in_window.erase(it);
      }
      if (i + 1 < w) continue;
      if (in_window.size() < cfg.fairness_min_active) continue;
      std::size_t dominant = 0;
      NodeId dominant_origin = kNoNode;
      for (const auto& [origin, count] : in_window) {
        if (count > dominant) {
          dominant = count;
          dominant_origin = origin;
        }
      }
      double share = static_cast<double>(dominant) / static_cast<double>(w);
      if (share > rep.worst_window_share) rep.worst_window_share = share;
      if (cfg.fairness_max_share > 0.0 && share > cfg.fairness_max_share) {
        rep.violations.push_back(
            "origin " + std::to_string(dominant_origin) + " took " +
            std::to_string(dominant) + "/" + std::to_string(w) +
            " deliveries ending at index " + std::to_string(i) + " (share " +
            std::to_string(share) + " > " + std::to_string(cfg.fairness_max_share) +
            ") while " + std::to_string(in_window.size()) + " origins were active");
        return rep;  // first finding is enough; windows overlap heavily
      }
    }

    // Longest single-origin run, counted only where the surrounding window
    // shows competition (a lone active sender may run forever).
    std::size_t run = 1;
    std::map<NodeId, std::size_t> around;
    for (std::size_t i = 0; i < std::min(log.size(), w); ++i) around[log[i].origin]++;
    for (std::size_t i = 1; i < log.size(); ++i) {
      if (i + w / 2 < log.size()) around[log[i + w / 2].origin]++;
      if (i > w / 2) {
        auto it = around.find(log[i - w / 2 - 1].origin);
        if (it != around.end() && --it->second == 0) around.erase(it);
      }
      if (log[i].origin == log[i - 1].origin) {
        ++run;
        if (around.size() >= cfg.fairness_min_active && run > rep.longest_run) {
          rep.longest_run = run;
          if (cfg.max_consecutive_run > 0 && run > cfg.max_consecutive_run) {
            rep.violations.push_back(
                "origin " + std::to_string(log[i].origin) + " delivered " +
                std::to_string(run) + " consecutive messages ending at index " +
                std::to_string(i) + " (bound " +
                std::to_string(cfg.max_consecutive_run) + ") while " +
                std::to_string(around.size()) + " origins were active");
            return rep;
          }
        }
      } else {
        run = 1;
      }
    }
  }
  return rep;
}

std::string check_latency_bound(const std::vector<RoundLatencySample>& samples,
                                std::uint32_t n, std::uint32_t t) {
  ring::Topology topo{n, t};
  for (const auto& s : samples) {
    auto bound = static_cast<long long>(topo.analytic_latency(s.origin_pos));
    if (s.rounds > bound) {
      return "broadcast from position " + std::to_string(s.origin_pos) + " took " +
             std::to_string(s.rounds) + " rounds, above L(i) = 2n + t - i - 1 = " +
             std::to_string(bound) + " (n=" + std::to_string(n) +
             ", t=" + std::to_string(t) + ")";
    }
  }
  return {};
}

}  // namespace fsr
