#include "checker/invariant_checker.h"

#include <algorithm>

namespace fsr {

std::string describe_msg(NodeId origin, std::uint64_t app_msg) {
  return "m(" + std::to_string(origin) + "," + std::to_string(app_msg) + ")";
}

namespace {

std::string describe(const DeliveryRecord& e) { return describe_msg(e.origin, e.app_msg); }

std::string group_tag(GroupId g) { return "group " + std::to_string(g); }

/// A node's log restricted to one ordering domain (order preserved).
std::vector<const DeliveryRecord*> restrict_log(const std::vector<DeliveryRecord>& log,
                                                GroupId g) {
  std::vector<const DeliveryRecord*> out;
  for (const auto& e : log) {
    if (e.group == g) out.push_back(&e);
  }
  return out;
}

}  // namespace

InvariantChecker::InvariantChecker(std::size_t n, CheckerConfig config)
    : n_(n), cfg_(config), logs_(n), last_app_(n), last_seq_view_(n) {}

void InvariantChecker::record_violation(std::string what) {
  if (!first_violation_.empty()) return;
  if (context_) {
    std::string ctx = context_();
    if (!ctx.empty()) what += " [" + ctx + "]";
  }
  first_violation_ = std::move(what);
}

void InvariantChecker::set_context_provider(std::function<std::string()> fn) {
  MutexLock lock(mutex_);
  context_ = std::move(fn);
}

void InvariantChecker::on_broadcast(GroupId group, NodeId origin, std::uint64_t app_msg,
                                    std::uint64_t payload_hash) {
  MutexLock lock(mutex_);
  submitted_[{group, origin, app_msg}] = payload_hash;
  submitted_groups_[{origin, app_msg}].insert(group);
}

void InvariantChecker::on_delivery(const DeliveryRecord& rec) {
  MutexLock lock(mutex_);
  if (rec.node >= n_) {
    record_violation("delivery at unknown node " + std::to_string(rec.node));
    return;
  }
  auto& log = logs_[rec.node];
  const std::string where = "node " + std::to_string(rec.node) + " delivering " +
                            group_tag(rec.group) + " " + describe(rec);

  // Each group's sequence numbers are one namespace for the whole run (the
  // engine resumes next_seq from the recovery horizon on every view
  // install), so a process must observe them strictly increasing *within the
  // group*. Groups are independent domains: no cross-group seq relation.
  auto [sv, first_in_group] =
      last_seq_view_[rec.node].try_emplace(rec.group, std::pair{rec.seq, rec.view});
  if (!first_in_group) {
    auto& [last_seq, last_view] = sv->second;
    if (rec.seq <= last_seq) {
      record_violation(where + ": seq " + std::to_string(rec.seq) +
                       " not above previous " + std::to_string(last_seq));
    }
    if (rec.view < last_view) {
      record_violation(where + ": view regressed " + std::to_string(last_view) +
                       " -> " + std::to_string(rec.view));
    }
    last_seq = rec.seq;
    last_view = rec.view;
  }

  // All processes must agree on which message each (group, seq) carries —
  // disagreement here IS a total-order violation, caught at the instant the
  // second process delivers.
  Identity id{rec.origin, rec.app_msg, rec.payload_hash};
  auto [it, inserted] = seq_identity_.try_emplace({rec.group, rec.seq}, id);
  if (!inserted && !(it->second == id)) {
    record_violation(where + ": seq " + std::to_string(rec.seq) + " already carried " +
                     describe_msg(it->second.origin, it->second.app_msg));
  }

  // At-most-once per process and per-origin FIFO, online: within a group the
  // origin's counter must move strictly forward (equal or lower = duplicate
  // or reordering). Counters in different groups are unrelated streams.
  auto [last, first_from_origin] =
      last_app_[rec.node].try_emplace(std::pair{rec.group, rec.origin}, rec.app_msg);
  if (!first_from_origin) {
    if (rec.app_msg <= last->second) {
      record_violation(where + ": origin counter went backwards (last was " +
                       describe_msg(rec.origin, last->second) +
                       "): duplicate or FIFO violation");
    }
    last->second = rec.app_msg;
  }

  // Payload integrity against the recorded submission — in this group. A
  // delivery whose identity was only ever submitted in a *different* group
  // is cross-group sequence aliasing: some layer leaked a message across
  // ordering domains (e.g. a mux dispatch bug), which per-group bookkeeping
  // would otherwise mask as a mere unknown broadcast.
  auto sub = submitted_.find({rec.group, rec.origin, rec.app_msg});
  if (sub == submitted_.end()) {
    auto aliased = submitted_groups_.find({rec.origin, rec.app_msg});
    if (aliased != submitted_groups_.end() && !aliased->second.count(rec.group)) {
      record_violation(where + ": cross-group aliasing — message was submitted in " +
                       group_tag(*aliased->second.begin()) + ", not " +
                       group_tag(rec.group));
    } else if (cfg_.require_known_broadcasts) {
      record_violation(where + ": message was never broadcast");
    }
  } else if (sub->second != rec.payload_hash) {
    record_violation(where + ": payload hash mismatch");
  }

  log.push_back(rec);
  ++deliveries_;
}

void InvariantChecker::note_crashed(NodeId node) {
  MutexLock lock(mutex_);
  crashed_.insert(node);
}

std::uint64_t InvariantChecker::deliveries() const {
  MutexLock lock(mutex_);
  return deliveries_;
}

std::set<NodeId> InvariantChecker::crashed() const {
  MutexLock lock(mutex_);
  return crashed_;
}

std::vector<DeliveryRecord> InvariantChecker::log(NodeId node) const {
  MutexLock lock(mutex_);
  return logs_[node];
}

std::vector<DeliveryRecord> InvariantChecker::log(NodeId node, GroupId group) const {
  MutexLock lock(mutex_);
  std::vector<DeliveryRecord> out;
  for (const auto& e : logs_[node]) {
    if (e.group == group) out.push_back(e);
  }
  return out;
}

std::set<GroupId> InvariantChecker::groups_seen() const {
  MutexLock lock(mutex_);
  std::set<GroupId> gs;
  for (const auto& [key, hash] : submitted_) gs.insert(std::get<0>(key));
  for (const auto& log : logs_) {
    for (const auto& e : log) gs.insert(e.group);
  }
  return gs;
}

std::string InvariantChecker::online_violation() const {
  MutexLock lock(mutex_);
  return first_violation_;
}

// --- full-trace passes ---
//
// Each pass partitions the logs by group and applies the single-ring
// property within every partition: the properties quantify over one
// ordering domain, and any relation the harness observed *across* groups is
// deliberately unconstrained (that independence is what sharding buys).

std::set<GroupId> InvariantChecker::groups_in_logs_locked() const {
  std::set<GroupId> gs;
  for (const auto& log : logs_) {
    for (const auto& e : log) gs.insert(e.group);
  }
  if (gs.empty()) gs.insert(0);
  return gs;
}

std::string InvariantChecker::check_total_order() const {
  MutexLock lock(mutex_);
  return check_total_order_locked();
}

std::string InvariantChecker::check_total_order_locked() const {
  // Pairwise, per group: the common subsequence of two logs must appear in
  // the same order in both. Since each (group, origin, app_msg) appears at
  // most once per log (checked by integrity), it suffices to compare the
  // restriction of each log to the other's delivered set.
  using Key = std::pair<NodeId, std::uint64_t>;
  for (GroupId g : groups_in_logs_locked()) {
    for (std::size_t a = 0; a < logs_.size(); ++a) {
      for (std::size_t b = a + 1; b < logs_.size(); ++b) {
        auto la = restrict_log(logs_[a], g);
        auto lb = restrict_log(logs_[b], g);
        std::set<Key> in_a, in_b;
        for (const auto* e : la) in_a.insert({e->origin, e->app_msg});
        for (const auto* e : lb) in_b.insert({e->origin, e->app_msg});
        std::vector<Key> ra, rb;
        for (const auto* e : la) {
          if (in_b.count({e->origin, e->app_msg})) ra.push_back({e->origin, e->app_msg});
        }
        for (const auto* e : lb) {
          if (in_a.count({e->origin, e->app_msg})) rb.push_back({e->origin, e->app_msg});
        }
        if (ra != rb) {
          return "total order violated in " + group_tag(g) + " between node " +
                 std::to_string(a) + " and node " + std::to_string(b);
        }
      }
    }
  }
  return {};
}

std::string InvariantChecker::check_agreement(const std::set<NodeId>& correct) const {
  MutexLock lock(mutex_);
  return check_agreement_locked(correct);
}

std::string InvariantChecker::check_agreement_locked(const std::set<NodeId>& correct) const {
  for (GroupId g : groups_in_logs_locked()) {
    std::vector<const DeliveryRecord*> ref;
    bool have_ref = false;
    NodeId ref_id = kNoNode;
    for (NodeId n : correct) {
      auto log = restrict_log(logs_[n], g);
      if (!have_ref) {
        ref = std::move(log);
        have_ref = true;
        ref_id = n;
        continue;
      }
      if (log.size() != ref.size()) {
        return "agreement violated in " + group_tag(g) + ": node " + std::to_string(n) +
               " delivered " + std::to_string(log.size()) + " messages, node " +
               std::to_string(ref_id) + " delivered " + std::to_string(ref.size());
      }
      for (std::size_t i = 0; i < log.size(); ++i) {
        if (log[i]->origin != ref[i]->origin || log[i]->app_msg != ref[i]->app_msg ||
            log[i]->payload_hash != ref[i]->payload_hash) {
          return "agreement violated in " + group_tag(g) + " at index " +
                 std::to_string(i) + ": node " + std::to_string(n) + " delivered " +
                 describe(*log[i]) + ", node " + std::to_string(ref_id) +
                 " delivered " + describe(*ref[i]);
        }
      }
    }
  }
  return {};
}

std::string InvariantChecker::check_integrity() const {
  MutexLock lock(mutex_);
  return check_integrity_locked();
}

std::string InvariantChecker::check_integrity_locked() const {
  for (std::size_t n = 0; n < logs_.size(); ++n) {
    std::set<MsgKey> seen;
    for (const auto& e : logs_[n]) {
      MsgKey key{e.group, e.origin, e.app_msg};
      if (!seen.insert(key).second) {
        return "node " + std::to_string(n) + " delivered " + group_tag(e.group) + " " +
               describe(e) + " twice";
      }
      auto it = submitted_.find(key);
      if (it == submitted_.end()) {
        auto aliased = submitted_groups_.find({e.origin, e.app_msg});
        if (aliased != submitted_groups_.end() && !aliased->second.count(e.group)) {
          return "node " + std::to_string(n) + " delivered " + describe(e) + " in " +
                 group_tag(e.group) + " but it was submitted in " +
                 group_tag(*aliased->second.begin()) + " (cross-group aliasing)";
        }
        if (cfg_.require_known_broadcasts) {
          return "node " + std::to_string(n) + " delivered never-broadcast " +
                 describe(e);
        }
      } else if (it->second != e.payload_hash) {
        return "node " + std::to_string(n) + " delivered corrupted payload for " +
               describe(e);
      }
    }
  }
  return {};
}

std::string InvariantChecker::check_uniformity(const std::set<NodeId>& crashed,
                                               const std::set<NodeId>& correct) const {
  MutexLock lock(mutex_);
  return check_uniformity_locked(crashed, correct);
}

std::string InvariantChecker::check_uniformity_locked(
    const std::set<NodeId>& crashed, const std::set<NodeId>& correct) const {
  for (GroupId g : groups_in_logs_locked()) {
    for (NodeId c : crashed) {
      auto clog = restrict_log(logs_[c], g);
      for (NodeId s : correct) {
        auto slog = restrict_log(logs_[s], g);
        if (clog.size() > slog.size()) {
          return "uniformity violated in " + group_tag(g) + ": crashed node " +
                 std::to_string(c) + " delivered more than correct node " +
                 std::to_string(s);
        }
        for (std::size_t i = 0; i < clog.size(); ++i) {
          if (clog[i]->origin != slog[i]->origin || clog[i]->app_msg != slog[i]->app_msg) {
            return "uniformity violated in " + group_tag(g) + ": crashed node " +
                   std::to_string(c) + " delivered " + describe(*clog[i]) +
                   " at index " + std::to_string(i) + " but correct node " +
                   std::to_string(s) + " delivered " + describe(*slog[i]);
          }
        }
      }
    }
  }
  return {};
}

std::string InvariantChecker::check_fifo() const {
  MutexLock lock(mutex_);
  return check_fifo_locked(cfg_.require_gap_free_origins);
}

std::string InvariantChecker::check_fifo_locked(bool require_gap_free) const {
  // Channels are FIFO and rebroadcast-after-view-change preserves submission
  // order, so each node sees every origin's counter strictly increasing
  // within a group; a *gap* means a message was lost while a later one from
  // the same (group, origin) stream survived — impossible without an
  // ordering bug.
  for (std::size_t n = 0; n < logs_.size(); ++n) {
    std::map<std::pair<GroupId, NodeId>, std::uint64_t> last;
    for (const auto& e : logs_[n]) {
      auto [it, first] = last.try_emplace(std::pair{e.group, e.origin}, e.app_msg);
      if (!first) {
        if (e.app_msg <= it->second) {
          return "node " + std::to_string(n) + " delivered " + group_tag(e.group) +
                 " " + describe(e) + " after " + describe_msg(e.origin, it->second) +
                 " (FIFO violation)";
        }
        if (require_gap_free && e.app_msg != it->second + 1) {
          return "node " + std::to_string(n) + " delivered " + group_tag(e.group) +
                 " " + describe(e) + " after " + describe_msg(e.origin, it->second) +
                 " (gap: " + std::to_string(e.app_msg - it->second - 1) +
                 " message(s) lost)";
        }
        it->second = e.app_msg;
      }
    }
  }
  return {};
}

std::string InvariantChecker::check_all() const {
  MutexLock lock(mutex_);
  if (!first_violation_.empty()) return first_violation_;
  std::set<NodeId> correct;
  for (std::size_t i = 0; i < logs_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (crashed_.count(id) == 0) correct.insert(id);
  }
  if (auto err = check_integrity_locked(); !err.empty()) return err;
  if (auto err = check_total_order_locked(); !err.empty()) return err;
  if (auto err = check_agreement_locked(correct); !err.empty()) return err;
  if (auto err = check_uniformity_locked(crashed_, correct); !err.empty()) return err;
  if (auto err = check_fifo_locked(cfg_.require_gap_free_origins); !err.empty()) {
    return err;
  }
  return {};
}

}  // namespace fsr
