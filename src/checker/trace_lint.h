// Offline trace analysis that complements InvariantChecker's hard safety
// checks with the paper's *performance* properties:
//
//   - fairness (§4.3): the leader serves its forward list round-robin, so
//     in any window of consecutive deliveries where k >= 2 origins are
//     active, no origin may hog the window. lint_trace() measures the worst
//     window share and the longest single-origin run and compares them to
//     the configured bounds (bounds are opt-in because bursty workloads
//     legitimately produce long runs when only one sender is active).
//   - the round-model latency bound (§4.3.1): a broadcast originated at
//     ring position i completes within L(i) = 2n + t - i - 1 rounds in an
//     idle system. check_latency_bound() verifies measured samples.
//
// Used by the soak test and the figure benches so long-running paths
// continuously validate behaviour instead of only final-state checks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "checker/invariant_checker.h"
#include "ring/rules.h"

namespace fsr {

struct LintConfig {
  /// Window (in deliveries) over which fairness shares are measured.
  std::size_t fairness_window = 64;

  /// If > 0: flag any window where >= `fairness_min_active` origins appear
  /// but one origin exceeds this share of the window.
  double fairness_max_share = 0.0;
  std::size_t fairness_min_active = 2;

  /// If > 0: flag any single-origin run longer than this while at least
  /// `fairness_min_active` origins are active in the surrounding window.
  std::size_t max_consecutive_run = 0;
};

struct LintReport {
  std::vector<std::string> violations;  // configured bounds exceeded
  std::map<NodeId, std::uint64_t> per_origin;  // deliveries by origin (node 0's log)
  double worst_window_share = 0.0;     // max origin share over any active window
  std::size_t longest_run = 0;         // longest single-origin run in an active window
  double jain_index = 1.0;             // over per-origin totals

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Analyze one process's delivery order (total order makes any correct
/// process's log representative).
LintReport lint_trace(const std::vector<DeliveryRecord>& log, const LintConfig& cfg);

/// One measured round-model latency: a broadcast from ring position
/// `origin_pos` that took `rounds` rounds from submission to completion.
struct RoundLatencySample {
  Position origin_pos = 0;
  long long rounds = 0;
};

/// Verify every sample against L(i) = 2n + t - i - 1 ("" = all within
/// bound).
std::string check_latency_bound(const std::vector<RoundLatencySample>& samples,
                                std::uint32_t n, std::uint32_t t);

}  // namespace fsr
