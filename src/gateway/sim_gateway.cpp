#include "gateway/sim_gateway.h"

#include <sstream>

namespace fsr {

namespace {
ClusterConfig with_groups(ClusterConfig c, GroupId shards) {
  c.groups = shards == 0 ? 1 : shards;
  return c;
}
}  // namespace

SimGatewayCluster::SimGatewayCluster(SimGatewayConfig config)
    : cluster_(with_groups(config.cluster, config.shards)),
      shards_(config.shards == 0 ? 1 : config.shards) {
  const std::size_t n = cluster_.size();
  GatewayConfig gw_cfg = config.gateway;
  // Routed shards see gappy per-session seq subsequences.
  gw_cfg.sparse_sessions = shards_ > 1;
  stores_.reserve(n);
  gateways_.resize(n);
  routers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<NodeId>(i);
    // One KvStore per node shared by all its shard gateways: the keyspace
    // partition is disjoint, so each key's commands arrive from exactly one
    // shard's delivery stream and replicas converge key by key.
    stores_.push_back(std::make_unique<KvStore>());
    std::vector<Gateway*> raw;
    for (GroupId g = 0; g < shards_; ++g) {
      gateways_[i].push_back(std::make_unique<Gateway>(
          cluster_.member(id, g), *stores_.back(), gw_cfg,
          [this, id, g](Payload p) { cluster_.broadcast(id, g, std::move(p)); }));
      raw.push_back(gateways_[i].back().get());
    }
    routers_.push_back(
        std::make_unique<ShardRouter>(std::move(raw), ShardMap(shards_)));
  }
  // All deliveries flow through the delivering group's gateway: envelopes
  // execute with exactly-once session semantics, plain broadcasts apply
  // directly.
  cluster_.set_delivery_tap([this](NodeId id, const Delivery& d) {
    Gateway& gw = *gateways_[id][d.group];
    ThreadRoleRegion role(gw.role());
    gw.on_delivery(d);
  });
}

NodeId SimGatewayCluster::pick_alive(NodeId except) const {
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (id != except && cluster_.alive(id)) return id;
  }
  return kNoNode;
}

std::string SimGatewayCluster::check_replicas_converged() const {
  std::uint64_t want = 0;
  NodeId ref = kNoNode;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_.alive(id)) continue;
    std::uint64_t fp = stores_[i]->fingerprint();
    if (ref == kNoNode) {
      ref = id;
      want = fp;
    } else if (fp != want) {
      std::ostringstream os;
      os << "replica divergence: node " << int(id) << " fingerprint " << fp
         << " != node " << int(ref) << " fingerprint " << want;
      return os.str();
    }
  }
  return "";
}

GatewayCounters SimGatewayCluster::gateway_counters() const {
  GatewayCounters total;
  for (const auto& node : gateways_) {
    for (const auto& g : node) {
      Gateway& gw = *g;
      ThreadRoleRegion role(gw.role());
      total += gw.counters();
    }
  }
  return total;
}

GatewayCounters SimGatewayCluster::gateway_counters(GroupId shard) const {
  GatewayCounters total;
  for (const auto& node : gateways_) {
    Gateway& gw = *node.at(shard);
    ThreadRoleRegion role(gw.role());
    total += gw.counters();
  }
  return total;
}

SimClient::SimClient(SimGatewayCluster& gc, Options opt)
    : gc_(gc), opt_(opt), replica_(opt.replica) {
  conn_epoch_ = 1;
}

SimClient::~SimClient() {
  // Real clients close their connection; tear down any binding still
  // pointing at this object so a late delivery can't call into freed memory.
  for (std::size_t i = 0; i < gc_.size(); ++i) {
    ShardRouter& rt = gc_.router(static_cast<NodeId>(i));
    ThreadRoleRegion role(rt.role());
    rt.on_client_disconnect(opt_.client_id, 0);
  }
  gc_.sim().cancel(retry_timer_);
}

void SimClient::submit(Bytes command) {
  pending_.push_back(std::move(command));
  gc_.sim().schedule(0, [this] { maybe_send(); });
}

void SimClient::connect(NodeId replica) {
  NodeId old = replica_;
  std::uint64_t old_epoch = conn_epoch_;
  replica_ = replica;
  ++conn_epoch_;
  if (old != replica && old != kNoNode) {
    ShardRouter& rt = gc_.router(old);
    ThreadRoleRegion role(rt.role());
    rt.on_client_disconnect(opt_.client_id, old_epoch);
  }
}

void SimClient::maybe_send() {
  if (outstanding_ || pending_.empty()) return;
  current_cmd_ = std::move(pending_.front());
  pending_.pop_front();
  current_seq_ = next_seq_++;
  outstanding_ = true;
  attempts_ = 0;
  send_attempt();
}

void SimClient::send_attempt() {
  ++attempts_;
  ++attempts_total_;
  ClientRequest req;
  req.client_id = opt_.client_id;
  req.session_seq = current_seq_;
  req.envelope =
      make_payload(encode_envelope(opt_.client_id, current_seq_, current_cmd_));
  req.command = parse_envelope(req.envelope)->command;
  std::uint64_t epoch = conn_epoch_;
  // Replies arrive from inside Gateway::on_delivery; bounce them through the
  // event queue so the client never re-enters the gateway mid-delivery. All
  // requests go through the replica's ShardRouter (with one shard it simply
  // forwards to shard 0's gateway).
  ShardRouter& rt = gc_.router(replica_);
  ThreadRoleRegion role(rt.role());
  rt.on_request(
      req,
      [this, epoch](const ClientReply& r) {
        if (epoch != conn_epoch_) return;  // stale connection
        ClientReply copy = r;
        gc_.sim().schedule(0, [this, epoch, copy] {
          if (epoch == conn_epoch_) on_reply(copy);
        });
      },
      conn_epoch_);
  gc_.sim().cancel(retry_timer_);
  retry_timer_ = gc_.sim().schedule(opt_.retry_timeout, [this] { on_timeout(); });
}

void SimClient::on_reply(const ClientReply& r) {
  if (!outstanding_ || r.session_seq != current_seq_) return;
  switch (r.status) {
    case ClientStatus::kOk:
    case ClientStatus::kBadRequest: {
      gc_.sim().cancel(retry_timer_);
      Done d;
      d.seq = current_seq_;
      d.status = r.status;
      d.duplicate = r.duplicate;
      d.reply = Bytes(r.reply.begin(), r.reply.end());
      d.attempts = attempts_;
      completed_.push_back(std::move(d));
      outstanding_ = false;
      maybe_send();
      return;
    }
    case ClientStatus::kRejectedWindow:
    case ClientStatus::kRejectedBytes:
      // Backpressure: keep the retry timer armed and try again later.
      return;
    case ClientStatus::kNotMember:
      gc_.sim().cancel(retry_timer_);
      retry_timer_ = gc_.sim().schedule(opt_.retry_timeout, [this] { on_timeout(); });
      return;
  }
}

void SimClient::on_timeout() {
  if (!outstanding_) return;
  if (attempts_ >= opt_.max_attempts) {
    ++gave_up_;
    return;  // stalls the client; tests size max_attempts to never hit this
  }
  if (!gc_.alive(replica_)) failover();
  send_attempt();
}

void SimClient::failover() {
  NodeId next = gc_.pick_alive(replica_);
  if (next == kNoNode) return;
  connect(next);
}

}  // namespace fsr
